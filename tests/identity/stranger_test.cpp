#include "identity/stranger.hpp"

#include <gtest/gtest.h>

namespace bc::identity {
namespace {

using bartercast::ReputationEngine;

TEST(AdaptiveEstimator, StartsAtInitial) {
  AdaptiveStrangerEstimator e(0.5, -0.2);
  EXPECT_DOUBLE_EQ(e.value(), -0.2);
  EXPECT_EQ(e.observations(), 0u);
}

TEST(AdaptiveEstimator, ConvergesTowardObservations) {
  AdaptiveStrangerEstimator e(0.3, 0.0);
  for (int i = 0; i < 100; ++i) e.observe(-0.8);
  EXPECT_NEAR(e.value(), -0.8, 1e-6);
  EXPECT_EQ(e.observations(), 100u);
}

TEST(AdaptiveEstimator, EwmaWeighting) {
  AdaptiveStrangerEstimator e(0.5, 0.0);
  e.observe(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.5);
  e.observe(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25);
}

TEST(StrangerPolicy, IsStrangerSemantics) {
  graph::FlowGraph g;
  ReputationEngine engine;
  // Nobody known at all: everyone is a stranger.
  EXPECT_TRUE(StrangerPolicy::is_stranger(engine, g, 0, 1));
  // Self is never a stranger.
  EXPECT_FALSE(StrangerPolicy::is_stranger(engine, g, 0, 0));
  // Direct flow in either direction ends strangerhood.
  g.add_capacity(1, 0, 100);
  EXPECT_FALSE(StrangerPolicy::is_stranger(engine, g, 0, 1));
  g.add_capacity(0, 2, 100);
  EXPECT_FALSE(StrangerPolicy::is_stranger(engine, g, 0, 2));
  // A disconnected third party stays a stranger.
  g.add_capacity(5, 6, 100);
  EXPECT_TRUE(StrangerPolicy::is_stranger(engine, g, 0, 5));
}

TEST(StrangerPolicy, TwoHopKnowledgeEndsStrangerhood) {
  graph::FlowGraph g;
  g.add_capacity(2, 1, 100);
  g.add_capacity(1, 0, 100);
  ReputationEngine engine;
  EXPECT_FALSE(StrangerPolicy::is_stranger(engine, g, 0, 2));
}

TEST(StrangerPolicy, NeutralGivesZeroToStrangers) {
  graph::FlowGraph g;
  ReputationEngine engine;
  AdaptiveStrangerEstimator est(0.1, -0.9);
  const auto policy = StrangerPolicy::neutral();
  EXPECT_DOUBLE_EQ(
      policy.effective_reputation(engine, g, 0, 1, est), 0.0);
}

TEST(StrangerPolicy, FixedPenaltyApplied) {
  graph::FlowGraph g;
  ReputationEngine engine;
  AdaptiveStrangerEstimator est;
  const auto policy = StrangerPolicy::fixed(-0.4);
  EXPECT_DOUBLE_EQ(policy.effective_reputation(engine, g, 0, 1, est), -0.4);
  EXPECT_DOUBLE_EQ(policy.fixed_penalty(), -0.4);
}

TEST(StrangerPolicy, AdaptiveUsesEstimator) {
  graph::FlowGraph g;
  ReputationEngine engine;
  AdaptiveStrangerEstimator est(0.5, 0.0);
  est.observe(-0.6);
  const auto policy = StrangerPolicy::adaptive();
  EXPECT_DOUBLE_EQ(policy.effective_reputation(engine, g, 0, 1, est), -0.3);
}

TEST(StrangerPolicy, KnownPeersGetRealReputation) {
  graph::FlowGraph g;
  g.add_capacity(1, 0, kGiB);
  ReputationEngine engine;
  AdaptiveStrangerEstimator est(0.1, -0.9);
  // All three policies agree on a known peer.
  for (const auto& policy :
       {StrangerPolicy::neutral(), StrangerPolicy::fixed(-0.8),
        StrangerPolicy::adaptive()}) {
    EXPECT_DOUBLE_EQ(policy.effective_reputation(engine, g, 0, 1, est),
                     engine.reputation(g, 0, 1));
  }
}

TEST(StrangerPolicyDeathTest, PenaltyRange) {
  EXPECT_DEATH((void)StrangerPolicy::fixed(0.5), "penalty");
  EXPECT_DEATH((void)StrangerPolicy::fixed(-1.5), "penalty");
}

}  // namespace
}  // namespace bc::identity
