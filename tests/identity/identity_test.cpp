#include "identity/identity.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bc::identity {
namespace {

TEST(IdentityManager, RegisterIssuesDistinctIdentities) {
  IdentityManager ids(IdentityScheme::kPermanent);
  const PeerId a = ids.register_user(1);
  const PeerId b = ids.register_user(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(ids.current_identity(1), a);
  EXPECT_EQ(ids.current_identity(2), b);
  EXPECT_EQ(ids.num_users(), 2u);
  EXPECT_EQ(ids.num_identities_issued(), 2u);
}

TEST(IdentityManager, OwnerLookup) {
  IdentityManager ids(IdentityScheme::kCheap);
  const PeerId a = ids.register_user(7);
  EXPECT_EQ(ids.owner_of(a), 7u);
  EXPECT_FALSE(ids.owner_of(a + 100).has_value());
  EXPECT_TRUE(ids.is_active(a));
}

TEST(IdentityManager, WhitewashMintsFreshIdentity) {
  IdentityManager ids(IdentityScheme::kCheap);
  const PeerId first = ids.register_user(1);
  const PeerId second = ids.whitewash(1);
  EXPECT_NE(first, second);
  EXPECT_EQ(ids.current_identity(1), second);
  EXPECT_EQ(ids.identity_count(1), 2u);
  // The retired identity still maps back to the user (forensics), but is
  // no longer active.
  EXPECT_EQ(ids.owner_of(first), 1u);
  EXPECT_FALSE(ids.is_active(first));
  EXPECT_TRUE(ids.is_active(second));
}

TEST(IdentityManager, RepeatedWashing) {
  IdentityManager ids(IdentityScheme::kCheap);
  ids.register_user(1);
  for (int i = 0; i < 10; ++i) ids.whitewash(1);
  EXPECT_EQ(ids.identity_count(1), 11u);
  EXPECT_EQ(ids.num_identities_issued(), 11u);
  EXPECT_EQ(ids.num_users(), 1u);
}

TEST(IdentityManager, IdentitiesNeverReused) {
  IdentityManager ids(IdentityScheme::kCheap);
  ids.register_user(1);
  ids.register_user(2);
  std::set<PeerId> seen;
  seen.insert(ids.current_identity(1));
  seen.insert(ids.current_identity(2));
  for (int i = 0; i < 5; ++i) {
    seen.insert(ids.whitewash(1));
    seen.insert(ids.whitewash(2));
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(IdentityManagerDeathTest, PermanentSchemeForbidsWashing) {
  IdentityManager ids(IdentityScheme::kPermanent);
  ids.register_user(1);
  EXPECT_DEATH(ids.whitewash(1), "cheap");
}

TEST(IdentityManagerDeathTest, UnknownUser) {
  IdentityManager ids(IdentityScheme::kCheap);
  EXPECT_DEATH(ids.current_identity(9), "unknown");
  EXPECT_DEATH(ids.whitewash(9), "unknown");
}

TEST(IdentityManagerDeathTest, DoubleRegistration) {
  IdentityManager ids(IdentityScheme::kCheap);
  ids.register_user(1);
  EXPECT_DEATH(ids.register_user(1), "twice");
}

}  // namespace
}  // namespace bc::identity
