#include "analysis/deployment_observer.hpp"

#include <gtest/gtest.h>

#include "trace/deployment.hpp"

namespace bc::analysis {
namespace {

trace::DeploymentPopulation small_population(std::uint64_t seed) {
  trace::DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 400;
  return trace::generate_deployment(cfg);
}

ObserverConfig small_observer(std::uint64_t seed) {
  ObserverConfig cfg;
  cfg.seed = seed;
  cfg.direct_partners = 60;
  return cfg;
}

TEST(Observer, ProducesOneReputationPerPeer) {
  const auto pop = small_population(1);
  const auto result = run_observer(pop, small_observer(1));
  EXPECT_EQ(result.reputations.size(), pop.num_peers);
  EXPECT_EQ(result.net_contribution.size(), pop.num_peers);
  EXPECT_GT(result.messages_logged, 0u);
  EXPECT_GT(result.records_applied, 0u);
}

TEST(Observer, ReputationsBounded) {
  const auto result = run_observer(small_population(2), small_observer(2));
  for (double r : result.reputations) {
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Observer, IdlePeersHaveZeroReputation) {
  const auto pop = small_population(3);
  const auto result = run_observer(pop, small_observer(3));
  for (PeerId i = 0; i < pop.num_peers; ++i) {
    if (pop.total_up[i] == 0 && pop.total_down[i] == 0) {
      EXPECT_EQ(result.reputations[i], 0.0) << "idle peer " << i;
    }
  }
}

TEST(Observer, FractionsPartitionUnity) {
  const auto result = run_observer(small_population(4), small_observer(4));
  const double total = result.fraction_negative() + result.fraction_zero() +
                       result.fraction_positive();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Observer, MoreNegativeThanPositive) {
  // The paper's deployment shape: downloaders dominate uploaders.
  const auto result = run_observer(small_population(5), small_observer(5));
  EXPECT_GT(result.fraction_negative(), result.fraction_positive());
}

TEST(Observer, CdfIsMonotone) {
  const auto result = run_observer(small_population(6), small_observer(6));
  const auto cdf = result.reputation_cdf();
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Observer, Deterministic) {
  const auto a = run_observer(small_population(7), small_observer(7));
  const auto b = run_observer(small_population(7), small_observer(7));
  EXPECT_EQ(a.reputations, b.reputations);
}

TEST(Observer, NetContributionSignCorrelatesWithReputation) {
  const auto pop = small_population(8);
  const auto result = run_observer(pop, small_observer(8));
  // Among peers with nonzero reputation, negative contributors should get
  // negative reputations much more often than positive ones.
  std::size_t consistent = 0, inconsistent = 0;
  for (PeerId i = 0; i < pop.num_peers; ++i) {
    const double r = result.reputations[i];
    const Bytes net = result.net_contribution[i];
    if (r == 0.0 || net == 0) continue;
    if ((r > 0) == (net > 0)) {
      ++consistent;
    } else {
      ++inconsistent;
    }
  }
  EXPECT_GT(consistent, inconsistent);
}

}  // namespace
}  // namespace bc::analysis
