#include "analysis/plot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace bc::analysis {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct PlotFixture : ::testing::Test {
  PlotFixture() : metrics(2.0 * kDay, 6.0 * kHour) {
    metrics.reputation_sharers.add(3.0 * kHour, 0.1);
    metrics.reputation_freeriders.add(3.0 * kHour, -0.1);
    metrics.speed_sharers.add(3.0 * kHour, 1024.0);
    metrics.speed_freeriders.add(3.0 * kHour, 512.0);
    community::PeerOutcome o;
    o.peer = 0;
    o.total_uploaded = gib(2.0);
    o.total_downloaded = gib(1.0);
    o.final_system_reputation = 0.4;
    metrics.outcomes.push_back(o);
    dir = std::filesystem::temp_directory_path() / "bc_plot_test";
    std::filesystem::create_directories(dir);
  }
  ~PlotFixture() override {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  community::Metrics metrics;
  std::filesystem::path dir;
};

TEST_F(PlotFixture, ReputationPlotFiles) {
  const std::string gp =
      write_reputation_plot(metrics, dir.string(), "rep");
  ASSERT_FALSE(gp.empty());
  EXPECT_TRUE(std::filesystem::exists(dir / "rep.dat"));
  EXPECT_TRUE(std::filesystem::exists(dir / "rep.gp"));
  const std::string dat = slurp((dir / "rep.dat").string());
  EXPECT_NE(dat.find("0.100000"), std::string::npos);
  EXPECT_NE(dat.find("-0.100000"), std::string::npos);
  const std::string script = slurp(gp);
  EXPECT_NE(script.find("sharers"), std::string::npos);
  EXPECT_NE(script.find("freeriders"), std::string::npos);
}

TEST_F(PlotFixture, SpeedPlotConvertsToKiB) {
  const std::string gp = write_speed_plot(metrics, dir.string(), "speed");
  ASSERT_FALSE(gp.empty());
  const std::string dat = slurp((dir / "speed.dat").string());
  EXPECT_NE(dat.find("1.000000"), std::string::npos);  // 1024 B/s -> 1 KiB/s
}

TEST_F(PlotFixture, ScatterPlotHasOutcome) {
  const std::string gp = write_scatter_plot(metrics, dir.string(), "sc");
  ASSERT_FALSE(gp.empty());
  const std::string dat = slurp((dir / "sc.dat").string());
  EXPECT_NE(dat.find("1.000000 0.400000 0"), std::string::npos);
}

TEST_F(PlotFixture, CdfPlot) {
  const std::vector<CdfPoint> cdf{{-0.5, 0.25}, {0.0, 0.75}, {0.5, 1.0}};
  const std::string gp = write_cdf_plot(cdf, dir.string(), "cdf", "rep");
  ASSERT_FALSE(gp.empty());
  const std::string dat = slurp((dir / "cdf.dat").string());
  EXPECT_NE(dat.find("0.750000"), std::string::npos);
}

TEST_F(PlotFixture, UnwritableDirectoryReturnsEmpty) {
  EXPECT_EQ(write_reputation_plot(metrics, "/nonexistent/dir", "x"), "");
}

}  // namespace
}  // namespace bc::analysis
