#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

namespace bc::analysis {
namespace {

community::Metrics fake_metrics() {
  community::Metrics m(10.0 * kDay, kDay);
  // Two sharers with positive contribution/reputation, two freeriders
  // negative — a perfectly consistent world.
  for (int i = 0; i < 4; ++i) {
    community::PeerOutcome o;
    o.peer = static_cast<PeerId>(i);
    o.behavior = i < 2 ? "sharer" : "lazy-freerider";
    o.freerider = i >= 2;
    o.total_uploaded = i < 2 ? gib(2.0 + i) : 0;
    o.total_downloaded = gib(1.0);
    o.final_system_reputation = i < 2 ? 0.3 + 0.1 * i : -0.4 - 0.1 * i;
    m.outcomes.push_back(o);
  }
  m.speed_sharers.add(0.5 * kDay, 1000.0);
  m.speed_sharers.add(9.5 * kDay, 2000.0);
  m.speed_freeriders.add(9.5 * kDay, 500.0);
  m.reputation_sharers.add(9.5 * kDay, 0.35);
  m.reputation_freeriders.add(9.5 * kDay, -0.5);
  return m;
}

TEST(ContributionPoints, MapsOutcomes) {
  const auto pts = contribution_points(fake_metrics());
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_FALSE(pts[0].freerider);
  EXPECT_TRUE(pts[3].freerider);
  EXPECT_NEAR(pts[0].net_contribution_gib, 1.0, 1e-9);
  EXPECT_NEAR(pts[2].net_contribution_gib, -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(pts[1].system_reputation, 0.4);
}

TEST(ContributionCorrelation, ConsistentWorldIsStronglyPositive) {
  EXPECT_GT(contribution_correlation(fake_metrics()), 0.8);
  EXPECT_GT(contribution_rank_correlation(fake_metrics()), 0.7);
}

TEST(ReputationTable, OneRowPerNonEmptyBin) {
  const auto t = reputation_table(fake_metrics(), kDay);
  EXPECT_EQ(t.num_rows(), 1u);  // only the day-9 bin has data
  EXPECT_EQ(t.num_cols(), 3u);
}

TEST(SpeedTable, ConvertsToKiB) {
  const auto t = speed_table(fake_metrics(), kDay);
  EXPECT_EQ(t.num_rows(), 2u);  // day-0 bin (sharers only) and day-9 bin
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("2.0"), std::string::npos);  // 2000 B/s ~ 2.0 KiB/s
}

TEST(TailSpeedRatio, ComputesFromTailBins) {
  // Tail of one day: sharers 2000, freeriders 500 -> ratio 0.25.
  EXPECT_NEAR(tail_speed_ratio(fake_metrics(), kDay), 0.25, 1e-9);
}

TEST(TailSpeedRatio, ZeroSharersGivesZero) {
  community::Metrics m(kDay, kHour);
  m.speed_freeriders.add(23.5 * kHour, 100.0);
  EXPECT_EQ(tail_speed_ratio(m, kHour), 0.0);
}

}  // namespace
}  // namespace bc::analysis
