#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bc::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.events_processed(), 0u);
  EXPECT_FALSE(e.step());
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, TiesRunInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5.0, [&] { order.push_back(1); });
  e.schedule_at(5.0, [&] { order.push_back(2); });
  e.schedule_at(5.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ScheduleAfterUsesDelay) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(10.0, [&] {
    e.schedule_after(5.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.events_processed(), 0u);
}

TEST(Engine, CancelIsIdempotent) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.cancel(id);
  e.cancel(id);
  e.run();
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) e.schedule_after(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 4.0);
}

TEST(Engine, PeriodicFiresRepeatedly) {
  Engine e;
  int count = 0;
  e.schedule_periodic(10.0, 10.0, [&] { ++count; });
  e.run_until(45.0);
  EXPECT_EQ(count, 4);  // t = 10, 20, 30, 40
  EXPECT_EQ(e.now(), 45.0);
}

TEST(Engine, PeriodicCancelStops) {
  Engine e;
  int count = 0;
  EventId id = e.schedule_periodic(1.0, 1.0, [&] { ++count; });
  e.schedule_at(3.5, [&] { e.cancel(id); });
  e.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Engine, PeriodicCanCancelItself) {
  Engine e;
  int count = 0;
  EventId id = 0;
  id = e.schedule_periodic(1.0, 1.0, [&] {
    ++count;
    if (count == 2) e.cancel(id);
  });
  e.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine e;
  std::vector<double> fired;
  e.schedule_at(1.0, [&] { fired.push_back(1.0); });
  e.schedule_at(2.0, [&] { fired.push_back(2.0); });
  e.schedule_at(3.0, [&] { fired.push_back(3.0); });
  e.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(e.now(), 2.0);
  e.run_until(5.0);
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  e.run_until(100.0);
  EXPECT_EQ(e.now(), 100.0);
}

TEST(Engine, PendingEventsCount) {
  Engine e;
  e.schedule_at(1.0, [] {});
  const EventId id = e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending_events(), 2u);
  e.cancel(id);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(EngineDeathTest, PastSchedulingRejected) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_DEATH(e.schedule_at(1.0, [] {}), "past");
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  double last = -1.0;
  bool monotone = true;
  for (int i = 999; i >= 0; --i) {
    e.schedule_at(static_cast<double>(i % 100), [&, i] {
      if (e.now() < last) monotone = false;
      last = e.now();
      (void)i;
    });
  }
  e.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.events_processed(), 1000u);
}

}  // namespace
}  // namespace bc::sim
