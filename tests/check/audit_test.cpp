// ScopedAudit behaviour: runtime gating, failure routing, counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/audit.hpp"
#include "check/invariants.hpp"

namespace bc::check {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    set_failure_handler([this](const std::string& name, const Report& report) {
      failures_.emplace_back(name, report.size());
    });
  }

  void TearDown() override {
    set_failure_handler(nullptr);
    set_enabled(kValidateBuild);
  }

  std::vector<std::pair<std::string, std::size_t>> failures_;
};

TEST_F(AuditTest, CleanAuditReportsNothing) {
  const std::uint64_t before = ScopedAudit::audits_run();
  {
    ScopedAudit audit("test.clean", [](Report&) {});
  }
  EXPECT_EQ(ScopedAudit::audits_run(), before + 1);
  EXPECT_TRUE(failures_.empty());
}

TEST_F(AuditTest, ViolationsRouteThroughHandlerAtScopeExit) {
  const std::uint64_t before = ScopedAudit::violations_found();
  {
    ScopedAudit audit("test.broken", [](Report& r) {
      r.fail("test.invariant", "synthetic violation");
      r.fail("test.other", "second synthetic violation");
    });
  }
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_EQ(failures_[0].first, "test.broken");
  EXPECT_EQ(failures_[0].second, 2u);
  EXPECT_EQ(ScopedAudit::violations_found(), before + 2);
}

TEST_F(AuditTest, CheckNowThenDismissRunsExactlyOnce) {
  ScopedAudit audit("test.once", [](Report& r) {
    r.fail("test.invariant", "synthetic violation");
  });
  EXPECT_FALSE(audit.check_now());
  audit.dismiss();
  // Destructor must not re-run after dismiss(); we observe that through the
  // handler call count once the scope closes.
  EXPECT_EQ(failures_.size(), 1u);
}

TEST_F(AuditTest, DisabledAuditIsSkipped) {
  set_enabled(false);
  const std::uint64_t before = ScopedAudit::audits_run();
  {
    ScopedAudit audit("test.skipped", [](Report& r) {
      r.fail("test.invariant", "should never surface");
    });
    EXPECT_TRUE(audit.check_now());  // disabled -> vacuously clean
  }
  EXPECT_EQ(ScopedAudit::audits_run(), before);
  EXPECT_TRUE(failures_.empty());
}

TEST_F(AuditTest, ReportFailureIgnoresCleanReports) {
  Report clean;
  report_failure("test.noop", clean);
  EXPECT_TRUE(failures_.empty());

  Report broken;
  broken.fail("test.invariant", "synthetic violation");
  report_failure("test.direct", broken);
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_EQ(failures_[0].first, "test.direct");
}

TEST(AuditConfig, RuntimeToggleRoundTrips) {
  const bool before = enabled();
  set_enabled(!before);
  EXPECT_EQ(enabled(), !before);
  set_enabled(before);
  EXPECT_EQ(enabled(), before);
}

}  // namespace
}  // namespace bc::check
