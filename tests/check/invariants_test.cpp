// Unit coverage for the bc::check validators, including the acceptance
// scenario: a deliberately corrupted ledger must be caught.
#include <gtest/gtest.h>

#include "bartercast/history.hpp"
#include "bartercast/message.hpp"
#include "bartercast/reputation.hpp"
#include "check/invariants.hpp"
#include "community/simulator.hpp"
#include "graph/flow_graph.hpp"
#include "graph/maxflow.hpp"
#include "sim/engine.hpp"
#include "trace/generator.hpp"

namespace bc::check {
namespace {

using bartercast::BarterCastMessage;
using bartercast::BarterRecord;
using bartercast::MessageSelection;
using bartercast::PrivateHistory;

// --- ledger -----------------------------------------------------------------

TEST(CheckHistory, CleanHistoryPasses) {
  PrivateHistory h(0);
  h.record_upload(1, 1000, 1.0);
  h.record_download(1, 400, 2.0);
  h.touch(2, 3.0);
  Report r;
  check_history(h, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(CheckLedger, SymmetricLedgersConserve) {
  PrivateHistory a(0), b(1), c(2);
  // 0 uploads 500 to 1; 1 uploads 200 to 2.
  a.record_upload(1, 500, 1.0);
  b.record_download(0, 500, 1.0);
  b.record_upload(2, 200, 2.0);
  c.record_download(1, 200, 2.0);
  Report r;
  check_ledger_conservation({&a, &b, &c}, 700, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(CheckLedger, CorruptedLedgerIsCaught) {
  PrivateHistory a(0), b(1);
  a.record_upload(1, 500, 1.0);
  b.record_download(0, 500, 1.0);
  // Corruption: peer 0 books 100 extra uploaded bytes that peer 1 never
  // received (e.g. a lost accounting update).
  a.record_upload(1, 100, 2.0);
  Report r;
  check_ledger_conservation({&a, &b}, 500, r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("ledger.conservation")) << r.to_string();
  EXPECT_TRUE(r.has("ledger.global_balance")) << r.to_string();
  EXPECT_TRUE(r.has("ledger.ground_truth")) << r.to_string();
}

TEST(CheckLedger, GroundTruthMismatchIsCaught) {
  PrivateHistory a(0), b(1);
  a.record_upload(1, 500, 1.0);
  b.record_download(0, 500, 1.0);
  Report r;
  // Internally symmetric but the transport claims a different total: the
  // ledgers dropped (or invented) a transfer.
  check_ledger_conservation({&a, &b}, 800, r);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("ledger.ground_truth")) << r.to_string();
  EXPECT_FALSE(r.has("ledger.conservation"));
}

TEST(CheckLedger, NegativeExpectedSkipsGroundTruth) {
  PrivateHistory a(0), b(1);
  a.record_upload(1, 500, 1.0);
  b.record_download(0, 500, 1.0);
  Report r;
  check_ledger_conservation({&a, &b}, -1, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

// --- flow graph / reputation -------------------------------------------------

TEST(CheckFlowGraph, CleanGraphPasses) {
  graph::FlowGraph g;
  g.add_capacity(0, 1, 100);
  g.add_capacity(1, 2, 50);
  g.add_capacity(2, 0, 25);
  g.remove_node(2);
  Report r;
  check_flow_graph(g, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(CheckReputation, BoundsAndMinCutHold) {
  graph::FlowGraph g;
  // Chain 0 -> 1 -> 2 plus direct edge 0 -> 2.
  g.add_capacity(0, 1, 1000);
  g.add_capacity(1, 2, 600);
  g.add_capacity(0, 2, 300);
  g.add_capacity(2, 0, 50);
  const bartercast::ReputationEngine engine;
  Report r;
  check_reputation_bounds(engine, g, 0, {1, 2}, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
  // Sanity of the bound the validator enforces: two-hop flow 0->2 is
  // min(1000,600) + 300 = 900, and the trivial cuts allow
  // min(out(0), in(2)) = min(1300, 900) = 900.
  EXPECT_EQ(graph::max_flow_two_hop(g, 0, 2), 900);
  EXPECT_EQ(std::min(g.out_capacity(0), g.in_capacity(2)), 900);
}

TEST(CheckReputation, AllMaxflowModesStayBounded) {
  graph::FlowGraph g;
  for (PeerId i = 0; i < 6; ++i) {
    for (PeerId j = 0; j < 6; ++j) {
      if (i != j) g.add_capacity(i, j, static_cast<Bytes>(37 * (i + 2 * j + 1)));
    }
  }
  for (const auto mode : {bartercast::MaxflowMode::kTwoHopExact,
                          bartercast::MaxflowMode::kBoundedFordFulkerson,
                          bartercast::MaxflowMode::kFullFordFulkerson}) {
    bartercast::ReputationConfig cfg;
    cfg.mode = mode;
    const bartercast::ReputationEngine engine(cfg);
    Report r;
    check_reputation_bounds(engine, g, 0, {1, 2, 3, 4, 5}, r);
    EXPECT_TRUE(r.ok()) << r.to_string();
  }
}

// --- engine -------------------------------------------------------------------

TEST(CheckEngine, MonotoneQueuePasses) {
  sim::Engine e;
  e.schedule_at(5.0, [] {});
  e.schedule_at(1.0, [] {});
  Report r;
  check_engine(e, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
  e.run();
  check_engine(e, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(e.next_event_time(), std::nullopt);
}

TEST(CheckEngine, NextEventTimeExposesQueueHead) {
  sim::Engine e;
  e.schedule_at(3.0, [] {});
  e.schedule_at(7.0, [] {});
  ASSERT_TRUE(e.next_event_time().has_value());
  EXPECT_DOUBLE_EQ(*e.next_event_time(), 3.0);
  e.step();
  ASSERT_TRUE(e.next_event_time().has_value());
  EXPECT_DOUBLE_EQ(*e.next_event_time(), 7.0);
}

// --- messages ------------------------------------------------------------------

TEST(CheckMessage, HonestMessagePasses) {
  PrivateHistory h(3);
  for (PeerId p = 0; p < 30; ++p) {
    if (p == 3) continue;
    h.record_upload(p, 100 * (p + 1), static_cast<Seconds>(p));
    h.record_download(p, 50 * (p + 1), static_cast<Seconds>(p) + 0.5);
  }
  MessageSelection sel;  // Nh = Nr = 10
  const BarterCastMessage msg = bartercast::build_message(h, sel, 40.0);
  Report r;
  check_message(msg, sel, r);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_LE(msg.records.size(), sel.nh + sel.nr);
}

TEST(CheckMessage, MalformedMessagesAreCaught) {
  MessageSelection sel;
  sel.nh = 1;
  sel.nr = 1;

  BarterCastMessage msg;
  msg.sender = 0;
  msg.sent_at = 1.0;
  msg.records.push_back({0, 1, 100, 50});  // fine
  msg.records.push_back({2, 3, 10, 10});   // third-party claim
  msg.records.push_back({0, 0, 10, 10});   // self record
  Report r;
  check_message(msg, sel, r);
  EXPECT_TRUE(r.has("message.record_limit")) << r.to_string();
  EXPECT_TRUE(r.has("message.third_party")) << r.to_string();
  EXPECT_TRUE(r.has("message.self_record")) << r.to_string();

  BarterCastMessage dup;
  dup.sender = 0;
  dup.sent_at = 2.0;
  dup.records.push_back({0, 1, 100, 50});
  dup.records.push_back({0, 1, 90, 40});
  Report r2;
  check_message(dup, sel, r2);
  EXPECT_TRUE(r2.has("message.duplicate")) << r2.to_string();

  BarterCastMessage neg;
  neg.sender = 0;
  neg.sent_at = 3.0;
  neg.records.push_back({0, 1, -5, 0});
  Report r3;
  check_message(neg, sel, r3);
  EXPECT_TRUE(r3.has("message.negative")) << r3.to_string();

  BarterCastMessage bad_sender;
  bad_sender.sender = kInvalidPeer;
  bad_sender.sent_at = -1.0;
  Report r4;
  check_message(bad_sender, sel, r4);
  EXPECT_TRUE(r4.has("message.sender")) << r4.to_string();
  EXPECT_TRUE(r4.has("message.timestamp")) << r4.to_string();
}

// --- end to end -----------------------------------------------------------------

TEST(CheckSimulator, FullAuditPassesOnRealRun) {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 11;
  tcfg.num_peers = 12;
  tcfg.num_swarms = 2;
  tcfg.duration = 6.0 * kHour;
  tcfg.file_size_min = mib(10);
  tcfg.file_size_max = mib(30);
  tcfg.requests_per_peer_min = 1;
  tcfg.requests_per_peer_max = 2;

  community::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.policy = bartercast::ReputationPolicy::ban(-0.5);

  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  Report r;
  sim.audit(r);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

}  // namespace
}  // namespace bc::check
