#include "net/overlay.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bc::net {
namespace {

struct TestPayload final : Payload {
  explicit TestPayload(int v) : value(v) {}
  int value;
};

struct Fixture : ::testing::Test {
  Fixture() : overlay(engine, Rng(1)) {}

  void add_peer(PeerId id, bool connectable, bool online = true) {
    overlay.register_peer(
        id,
        [this, id](PeerId from, const Payload& p) {
          const auto* tp = dynamic_cast<const TestPayload*>(&p);
          received.push_back({id, from, tp != nullptr ? tp->value : -1});
        },
        connectable);
    if (online) overlay.set_online(id, true);
  }

  struct Delivery {
    PeerId to;
    PeerId from;
    int value;
  };

  sim::Engine engine;
  Overlay overlay;
  std::vector<Delivery> received;
};

TEST_F(Fixture, DeliversAfterLatency) {
  add_peer(1, true);
  add_peer(2, true);
  EXPECT_TRUE(overlay.send(1, 2, std::make_unique<TestPayload>(42)));
  EXPECT_TRUE(received.empty());  // not synchronous
  engine.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].to, 2u);
  EXPECT_EQ(received[0].from, 1u);
  EXPECT_EQ(received[0].value, 42);
  EXPECT_GT(engine.now(), 0.0);
  EXPECT_EQ(overlay.stats().delivered, 1u);
}

TEST_F(Fixture, OfflineSenderDropsImmediately) {
  add_peer(1, true, /*online=*/false);
  add_peer(2, true);
  EXPECT_FALSE(overlay.send(1, 2, std::make_unique<TestPayload>(1)));
  engine.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(overlay.stats().dropped_sender_offline, 1u);
}

TEST_F(Fixture, OfflineReceiverDropsImmediately) {
  add_peer(1, true);
  add_peer(2, true, /*online=*/false);
  EXPECT_FALSE(overlay.send(1, 2, std::make_unique<TestPayload>(1)));
  EXPECT_EQ(overlay.stats().dropped_receiver_offline, 1u);
}

TEST_F(Fixture, ReceiverGoingOfflineBeforeDeliveryDrops) {
  add_peer(1, true);
  add_peer(2, true);
  EXPECT_TRUE(overlay.send(1, 2, std::make_unique<TestPayload>(1)));
  overlay.set_online(2, false);  // goes offline before the latency elapses
  engine.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(overlay.stats().dropped_receiver_offline, 1u);
}

TEST_F(Fixture, TwoNatedPeersCannotCommunicate) {
  add_peer(1, false);
  add_peer(2, false);
  EXPECT_FALSE(overlay.can_communicate(1, 2));
  EXPECT_FALSE(overlay.send(1, 2, std::make_unique<TestPayload>(1)));
  EXPECT_EQ(overlay.stats().dropped_unconnectable, 1u);
}

TEST_F(Fixture, OneConnectableSideSuffices) {
  add_peer(1, false);
  add_peer(2, true);
  EXPECT_TRUE(overlay.can_communicate(1, 2));
  EXPECT_TRUE(overlay.can_communicate(2, 1));
}

TEST_F(Fixture, NoSelfCommunication) {
  add_peer(1, true);
  EXPECT_FALSE(overlay.can_communicate(1, 1));
}

TEST_F(Fixture, OfflinePeerNotCommunicable) {
  add_peer(1, true);
  add_peer(2, true, /*online=*/false);
  EXPECT_FALSE(overlay.can_communicate(1, 2));
  overlay.set_online(2, true);
  EXPECT_TRUE(overlay.can_communicate(1, 2));
}

TEST_F(Fixture, UnregisteredPeerQueries) {
  EXPECT_FALSE(overlay.is_registered(9));
  EXPECT_FALSE(overlay.online(9));
  EXPECT_FALSE(overlay.connectable(9));
  add_peer(9, true);
  EXPECT_TRUE(overlay.is_registered(9));
}

TEST_F(Fixture, LatencyWithinConfiguredBounds) {
  add_peer(1, true);
  add_peer(2, true);
  for (int i = 0; i < 20; ++i) {
    overlay.send(1, 2, std::make_unique<TestPayload>(i));
  }
  engine.run();
  EXPECT_EQ(received.size(), 20u);
  EXPECT_LE(engine.now(), 0.25);  // default LatencyModel max
}

TEST_F(Fixture, ManyMessagesAllCounted) {
  add_peer(1, true);
  add_peer(2, true);
  add_peer(3, false);
  overlay.send(1, 2, std::make_unique<TestPayload>(1));
  overlay.send(2, 3, std::make_unique<TestPayload>(2));
  overlay.send(3, 1, std::make_unique<TestPayload>(3));
  engine.run();
  EXPECT_EQ(overlay.stats().sent, 3u);
  EXPECT_EQ(overlay.stats().delivered, 3u);
}

TEST(OverlayDeathTest, DoubleRegistrationRejected) {
  sim::Engine engine;
  Overlay overlay(engine, Rng(1));
  overlay.register_peer(1, [](PeerId, const Payload&) {}, true);
  EXPECT_DEATH(overlay.register_peer(1, [](PeerId, const Payload&) {}, true),
               "twice");
}

TEST(OverlayDeathTest, SetOnlineUnknownPeerRejected) {
  sim::Engine engine;
  Overlay overlay(engine, Rng(1));
  EXPECT_DEATH(overlay.set_online(5, true), "unknown");
}

}  // namespace
}  // namespace bc::net
