// Incremental invalidation must never change a single bit of any
// reputation. Two guarantees are pinned here:
//
//  1. A CachedReputation serving a mutating SharedHistory returns, for
//     every query, exactly the value a cold engine recomputes from scratch
//     on the current graph — bit-for-bit, across interleaved local
//     transfers and gossip merges — while actually reusing entries
//     (otherwise the dirty tracking silently degraded to full recompute).
//  2. The community batch sweep built on those caches stays bit-identical
//     at any thread count.
//
// Registered under the `parallel` ctest label (and thereby the tsan CI
// job) because the batch sweep is the consumer the invalidation was built
// for.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "bartercast/reputation.hpp"
#include "bartercast/shared_history.hpp"
#include "community/simulator.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace bc::community {
namespace {

TEST(IncrementalDeterminism, CachedSweepMatchesColdRecompute) {
  Rng rng(7);
  bartercast::SharedHistory view(0);
  bartercast::CachedReputation cache(view, bartercast::ReputationEngine{});
  ASSERT_TRUE(cache.incremental());
  const bartercast::ReputationEngine cold;
  constexpr PeerId kPeers = 10;
  Bytes claim = 0;  // strictly increasing so every gossip merge changes
  for (int round = 0; round < 60; ++round) {
    const PeerId u = static_cast<PeerId>(rng.uniform_int(1, kPeers - 1));
    PeerId v = static_cast<PeerId>(rng.uniform_int(1, kPeers - 2));
    if (v >= u) ++v;
    claim += rng.uniform_int(1, 100) * kMiB;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        view.record_local_upload(u, 10 * kMiB);
        break;
      case 1:
        view.record_local_download(u, 10 * kMiB);
        break;
      default: {
        bartercast::BarterCastMessage msg;
        msg.sender = u;
        msg.sent_at = static_cast<Seconds>(round);
        msg.records = {{u, v, claim, 0}};
        ASSERT_EQ(view.apply_message(msg).applied, 1u);
      }
    }
    // Full sweep through the cache; every value must equal a cold
    // recompute on the current graph, bit for bit.
    for (PeerId s = 1; s < kPeers; ++s) {
      const double cached = cache.reputation(s);
      const double fresh = cold.reputation(view, s);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(cached),
                std::bit_cast<std::uint64_t>(fresh))
          << "round " << round << " subject " << s;
    }
  }
  // The sweep must have reused entries: with per-subject tracking only the
  // mutated two-hop neighbourhood misses each round.
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_LT(cache.misses(), cache.hits());
}

trace::Trace small_trace(std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 12;
  cfg.num_swarms = 2;
  cfg.duration = 6.0 * kHour;
  cfg.file_size_min = mib(10);
  cfg.file_size_max = mib(30);
  cfg.requests_per_peer_min = 1;
  cfg.requests_per_peer_max = 2;
  return trace::generate(cfg);
}

std::string reputation_fingerprint(std::size_t threads) {
  ScenarioConfig cfg;
  cfg.seed = 31;
  cfg.policy = bartercast::ReputationPolicy::rank_ban(-0.5);
  cfg.threads = threads;
  CommunitySimulator sim(small_trace(5), cfg);
  sim.run();
  std::ostringstream out;
  for (const auto& o : sim.metrics().outcomes) {
    out << o.peer << ','
        << std::bit_cast<std::uint64_t>(o.final_system_reputation) << '\n';
  }
  return out.str();
}

TEST(IncrementalDeterminism, BatchSweepBitIdenticalAcrossThreadCounts) {
  const std::string serial = reputation_fingerprint(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(reputation_fingerprint(4), serial);
}

}  // namespace
}  // namespace bc::community
