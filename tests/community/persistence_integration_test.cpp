// Cross-module integration: node state captured from a full community run
// survives a save/load round trip with identical reputations — i.e. a
// client that persists its BarterCast database across restarts resumes with
// exactly the same view of the world.
#include <gtest/gtest.h>

#include "bartercast/persistence.hpp"
#include "community/simulator.hpp"
#include "trace/generator.hpp"

namespace bc::community {
namespace {

TEST(PersistenceIntegration, SimulatedNodesRoundTrip) {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 21;
  tcfg.num_peers = 18;
  tcfg.num_swarms = 3;
  tcfg.duration = 12.0 * kHour;
  tcfg.file_size_min = mib(20);
  tcfg.file_size_max = mib(80);

  ScenarioConfig cfg;
  cfg.seed = 21;
  CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();

  for (PeerId p = 0; p < sim.num_trace_peers(); ++p) {
    const auto& original = sim.node(p);
    const std::string state = bartercast::save_node_to_string(original);
    std::string error;
    const auto loaded =
        bartercast::load_node_from_string(state, cfg.node, &error);
    ASSERT_NE(loaded, nullptr) << "peer " << p << ": " << error;

    // Identical private history totals.
    EXPECT_EQ(loaded->history().total_uploaded(),
              original.history().total_uploaded());
    EXPECT_EQ(loaded->history().total_downloaded(),
              original.history().total_downloaded());
    // Identical subjective graph.
    EXPECT_EQ(loaded->view().graph().num_edges(),
              original.view().graph().num_edges());
    EXPECT_EQ(loaded->view().graph().total_capacity(),
              original.view().graph().total_capacity());
    // Identical reputations for every known peer.
    bartercast::ReputationEngine engine(cfg.node.reputation);
    for (PeerId subject = 0; subject < sim.num_trace_peers(); ++subject) {
      if (subject == p) continue;
      EXPECT_DOUBLE_EQ(
          engine.reputation(loaded->view().graph(), p, subject),
          engine.reputation(original.view().graph(), p, subject))
          << "evaluator " << p << " subject " << subject;
    }
  }
}

TEST(PersistenceIntegration, StateFilesAreDeterministic) {
  // Two identical runs produce byte-identical state files.
  trace::GeneratorConfig tcfg;
  tcfg.seed = 23;
  tcfg.num_peers = 12;
  tcfg.num_swarms = 2;
  tcfg.duration = 6.0 * kHour;
  tcfg.file_size_min = mib(20);
  tcfg.file_size_max = mib(50);
  ScenarioConfig cfg;
  cfg.seed = 23;

  CommunitySimulator a(trace::generate(tcfg), cfg);
  CommunitySimulator b(trace::generate(tcfg), cfg);
  a.run();
  b.run();
  for (PeerId p = 0; p < a.num_trace_peers(); ++p) {
    EXPECT_EQ(bartercast::save_node_to_string(a.node(p)),
              bartercast::save_node_to_string(b.node(p)))
        << "peer " << p;
  }
}

}  // namespace
}  // namespace bc::community
