#include "community/metrics.hpp"

#include <gtest/gtest.h>

namespace bc::community {
namespace {

TEST(Metrics, BinCountCoversDuration) {
  Metrics m(100.0, 30.0);
  EXPECT_EQ(m.speed_sharers.num_bins(), 4u);  // ceil(100/30)
  EXPECT_EQ(m.duration, 100.0);
}

TEST(Metrics, TailSpeedAveragesTrailingBins) {
  Metrics m(100.0, 10.0);
  // Bins centered at 5, 15, ..., 95. Fill all with distinct values.
  for (int i = 0; i < 10; ++i) {
    m.speed_sharers.add(i * 10.0 + 5.0, static_cast<double>(i));
  }
  // Tail of 20 s -> bins centered at 85 and 95 -> values 8 and 9.
  EXPECT_DOUBLE_EQ(m.tail_speed(m.speed_sharers, 20.0), 8.5);
}

TEST(Metrics, TailSpeedSkipsEmptyBins) {
  Metrics m(100.0, 10.0);
  m.speed_freeriders.add(95.0, 4.0);
  // Last 30 s includes empty bins at 75 and 85; only 95 counts.
  EXPECT_DOUBLE_EQ(m.tail_speed(m.speed_freeriders, 30.0), 4.0);
}

TEST(Metrics, TailSpeedEmptyTailIsZero) {
  Metrics m(100.0, 10.0);
  m.speed_sharers.add(5.0, 42.0);
  EXPECT_DOUBLE_EQ(m.tail_speed(m.speed_sharers, 20.0), 0.0);
}

TEST(PeerOutcome, NetContribution) {
  PeerOutcome o;
  o.total_uploaded = 700;
  o.total_downloaded = 300;
  EXPECT_EQ(o.net_contribution(), 400);
  o.total_uploaded = 100;
  EXPECT_EQ(o.net_contribution(), -200);
}

}  // namespace
}  // namespace bc::community
