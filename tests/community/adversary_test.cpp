// Integration tests of the adversary behaviours (§5.4) at small scale:
// what ignoring and lying actually do to the reputation fabric.
#include <gtest/gtest.h>

#include "community/simulator.hpp"
#include "trace/generator.hpp"

namespace bc::community {
namespace {

trace::Trace adversary_trace(std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 24;
  cfg.num_swarms = 3;
  cfg.duration = kDay;
  cfg.file_size_min = mib(30);
  cfg.file_size_max = mib(120);
  cfg.requests_per_peer_min = 2;
  cfg.requests_per_peer_max = 3;
  return trace::generate(cfg);
}

ScenarioConfig adversary_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.reputation_probe_interval = 2.0 * kHour;
  cfg.series_bin = 2.0 * kHour;
  return cfg;
}

/// How many trace evaluators hold a nonzero opinion of `subject`.
std::size_t evaluators_knowing(CommunitySimulator& sim, PeerId subject) {
  std::size_t known = 0;
  for (PeerId j = 0; j < sim.num_trace_peers(); ++j) {
    if (j == subject) continue;
    // node() is const; go through system_reputation-style access instead.
    if (sim.node(j).view().graph().has_node(subject)) ++known;
  }
  return known;
}

TEST(Adversaries, IgnorersAreLessVisibleThanTalkers) {
  trace::Trace tr = adversary_trace(1);
  ScenarioConfig cfg = adversary_scenario(1);
  cfg.freerider_fraction = 0.5;
  cfg.ignorer_fraction = 0.25;
  CommunitySimulator sim(std::move(tr), cfg);
  sim.run();

  // Average visibility (graph presence at evaluators) per class.
  double ignorer_vis = 0.0, talker_vis = 0.0;
  std::size_t ignorers = 0, talkers = 0;
  for (PeerId p = 0; p < sim.num_trace_peers(); ++p) {
    const double vis = static_cast<double>(evaluators_knowing(sim, p));
    if (sim.behavior(p).name() == "ignoring-freerider") {
      ignorer_vis += vis;
      ++ignorers;
    } else if (sim.behavior(p).name() == "lazy-freerider") {
      talker_vis += vis;
      ++talkers;
    }
  }
  ASSERT_GT(ignorers, 0u);
  ASSERT_GT(talkers, 0u);
  // Ignorers still appear in others' views (their partners report the
  // transfers), but less often than protocol-following freeriders, whose
  // own messages advertise their edges too.
  EXPECT_LE(ignorer_vis / static_cast<double>(ignorers),
            talker_vis / static_cast<double>(talkers));
}

TEST(Adversaries, LiarsBoostTheirOwnReputation) {
  // Same world twice: in one, a fraction of freeriders lies. Lying
  // freeriders must end with a higher average system reputation than the
  // honest lazy freeriders in the same run (the §5.4 self-boost).
  trace::Trace tr = adversary_trace(2);
  ScenarioConfig cfg = adversary_scenario(2);
  cfg.freerider_fraction = 0.5;
  cfg.liar_fraction = 0.25;
  CommunitySimulator sim(std::move(tr), cfg);
  sim.run();

  double liar_rep = 0.0, lazy_rep = 0.0;
  std::size_t liars = 0, lazies = 0;
  for (const auto& o : sim.metrics().outcomes) {
    if (o.behavior == "lying-freerider") {
      liar_rep += o.final_system_reputation;
      ++liars;
    } else if (o.behavior == "lazy-freerider") {
      lazy_rep += o.final_system_reputation;
      ++lazies;
    }
  }
  ASSERT_GT(liars, 0u);
  ASSERT_GT(lazies, 0u);
  EXPECT_GT(liar_rep / static_cast<double>(liars),
            lazy_rep / static_cast<double>(lazies));
}

TEST(Adversaries, LiarBoostIsBoundedByRealService) {
  // Even a population where every freerider lies cannot push a liar's
  // reputation past what saturated honest contribution would produce.
  trace::Trace tr = adversary_trace(3);
  ScenarioConfig cfg = adversary_scenario(3);
  cfg.freerider_fraction = 0.5;
  cfg.liar_fraction = 0.5;
  cfg.liar_claimed_upload = gib(1000.0);
  CommunitySimulator sim(std::move(tr), cfg);
  sim.run();
  for (const auto& o : sim.metrics().outcomes) {
    EXPECT_GE(o.final_system_reputation, -1.0);
    EXPECT_LE(o.final_system_reputation, 1.0);
  }
}

TEST(Adversaries, HonestWorldHasNoDroppedRecords) {
  // With everyone following the protocol, the only records dropped are
  // claims about the receiver's own edges (which honest senders do emit:
  // their records about *their* transfers with the receiver).
  trace::Trace tr = adversary_trace(4);
  ScenarioConfig cfg = adversary_scenario(4);
  CommunitySimulator sim(std::move(tr), cfg);
  sim.run();
  const auto& msg = sim.metrics().messages;
  EXPECT_GT(msg.records_applied, 0u);
  // Dropped records exist (own-edge claims) but are a minority.
  EXPECT_LT(msg.records_dropped(), msg.records_applied);
}

}  // namespace
}  // namespace bc::community
