#include <gtest/gtest.h>

#include "community/metrics.hpp"

namespace bc::community {
namespace {

PeerOutcome outcome(Behavior b, Bytes late_bytes, Seconds late_time) {
  PeerOutcome o;
  o.behavior = b;
  o.late_downloaded = late_bytes;
  o.late_time_downloading = late_time;
  return o;
}

TEST(LateClassSpeed, PoolsAcrossClassMembers) {
  Metrics m(kDay, kHour);
  m.outcomes.push_back(outcome(Behavior::kSharer, 1000, 10.0));
  m.outcomes.push_back(outcome(Behavior::kSharer, 3000, 10.0));
  m.outcomes.push_back(outcome(Behavior::kLazyFreerider, 500, 5.0));
  // Pooled: (1000+3000)/(10+10) = 200; freeriders: 500/5 = 100.
  EXPECT_DOUBLE_EQ(m.late_class_speed(false), 200.0);
  EXPECT_DOUBLE_EQ(m.late_class_speed(true), 100.0);
}

TEST(LateClassSpeed, AllFreeriderKindsCount) {
  Metrics m(kDay, kHour);
  m.outcomes.push_back(outcome(Behavior::kLazyFreerider, 100, 1.0));
  m.outcomes.push_back(outcome(Behavior::kIgnoringFreerider, 200, 1.0));
  m.outcomes.push_back(outcome(Behavior::kLyingFreerider, 300, 1.0));
  EXPECT_DOUBLE_EQ(m.late_class_speed(true), 200.0);
  EXPECT_DOUBLE_EQ(m.late_class_speed(false), 0.0);
}

TEST(LateClassSpeed, EmptyClassIsZero) {
  Metrics m(kDay, kHour);
  EXPECT_DOUBLE_EQ(m.late_class_speed(true), 0.0);
  EXPECT_DOUBLE_EQ(m.late_class_speed(false), 0.0);
}

TEST(LateClassSpeed, ZeroTimePeersIgnoredInDenominator) {
  Metrics m(kDay, kHour);
  m.outcomes.push_back(outcome(Behavior::kSharer, 0, 0.0));
  m.outcomes.push_back(outcome(Behavior::kSharer, 100, 1.0));
  EXPECT_DOUBLE_EQ(m.late_class_speed(false), 100.0);
}

}  // namespace
}  // namespace bc::community
