#include <gtest/gtest.h>

#include "community/metrics.hpp"

namespace bc::community {
namespace {

PeerOutcome outcome(bool freerider, Bytes late_bytes, Seconds late_time) {
  PeerOutcome o;
  o.freerider = freerider;
  o.behavior = freerider ? "lazy-freerider" : "sharer";
  o.late_downloaded = late_bytes;
  o.late_time_downloading = late_time;
  return o;
}

TEST(LateClassSpeed, PoolsAcrossClassMembers) {
  Metrics m(kDay, kHour);
  m.outcomes.push_back(outcome(false, 1000, 10.0));
  m.outcomes.push_back(outcome(false, 3000, 10.0));
  m.outcomes.push_back(outcome(true, 500, 5.0));
  // Pooled: (1000+3000)/(10+10) = 200; freeriders: 500/5 = 100.
  EXPECT_DOUBLE_EQ(m.late_class_speed(false), 200.0);
  EXPECT_DOUBLE_EQ(m.late_class_speed(true), 100.0);
}

TEST(LateClassSpeed, AllFreeriderKindsCount) {
  // The class split keys on the freerider flag, not the behavior name.
  Metrics m(kDay, kHour);
  auto lazy = outcome(true, 100, 1.0);
  auto ignoring = outcome(true, 200, 1.0);
  ignoring.behavior = "ignoring-freerider";
  auto lying = outcome(true, 300, 1.0);
  lying.behavior = "lying-freerider";
  m.outcomes.push_back(lazy);
  m.outcomes.push_back(ignoring);
  m.outcomes.push_back(lying);
  EXPECT_DOUBLE_EQ(m.late_class_speed(true), 200.0);
  EXPECT_DOUBLE_EQ(m.late_class_speed(false), 0.0);
}

TEST(LateClassSpeed, EmptyClassIsZero) {
  Metrics m(kDay, kHour);
  EXPECT_DOUBLE_EQ(m.late_class_speed(true), 0.0);
  EXPECT_DOUBLE_EQ(m.late_class_speed(false), 0.0);
}

TEST(LateClassSpeed, ZeroTimePeersIgnoredInDenominator) {
  Metrics m(kDay, kHour);
  m.outcomes.push_back(outcome(false, 0, 0.0));
  m.outcomes.push_back(outcome(false, 100, 1.0));
  EXPECT_DOUBLE_EQ(m.late_class_speed(false), 100.0);
}

}  // namespace
}  // namespace bc::community
