// ScenarioConfig::validate(): the fail-fast contract for population
// fractions and adversary knobs, including the simulator's rejection path
// (construction aborts with the validation message).
#include <gtest/gtest.h>

#include "community/simulator.hpp"
#include "trace/generator.hpp"

namespace bc::community {
namespace {

TEST(ScenarioValidate, DefaultsAreValid) {
  EXPECT_TRUE(ScenarioConfig{}.validate().empty());
}

TEST(ScenarioValidate, FractionRangeChecked) {
  ScenarioConfig cfg;
  cfg.freerider_fraction = 1.5;
  EXPECT_NE(cfg.validate().find("within [0, 1]"), std::string::npos);
  cfg.freerider_fraction = -0.1;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(ScenarioValidate, DisobeyersMustFitFreeriderPool) {
  // The constraint that used to be only a doc comment.
  ScenarioConfig cfg;
  cfg.freerider_fraction = 0.3;
  cfg.ignorer_fraction = 0.2;
  cfg.liar_fraction = 0.2;
  const std::string error = cfg.validate();
  EXPECT_NE(error.find("exceeds freerider_fraction"), std::string::npos);
  EXPECT_NE(error.find("drawn from the freerider population"),
            std::string::npos);
}

TEST(ScenarioValidate, BoundaryDisobeyersAccepted) {
  ScenarioConfig cfg;
  cfg.freerider_fraction = 0.5;
  cfg.ignorer_fraction = 0.25;
  cfg.liar_fraction = 0.25;
  EXPECT_TRUE(cfg.validate().empty()) << cfg.validate();
}

TEST(ScenarioValidate, PopulationSpecChecked) {
  ScenarioConfig cfg;
  cfg.population = "sharer:0.5,unknown-thing:0.5";
  EXPECT_NE(cfg.validate().find("unknown behavior"), std::string::npos);
  cfg.population = "sharer:0.5:0.5";
  EXPECT_FALSE(cfg.validate().empty());
  cfg.population = "sharer:0.4,sybil-region:0.2";
  EXPECT_TRUE(cfg.validate().empty()) << cfg.validate();
}

TEST(ScenarioValidate, AdversaryKnobsChecked) {
  ScenarioConfig cfg;
  cfg.strategic_seed_fraction = 1.5;
  EXPECT_NE(cfg.validate().find("strategic_seed_fraction"),
            std::string::npos);
  cfg = ScenarioConfig{};
  cfg.mobile_duty_cycle = 0.0;
  EXPECT_NE(cfg.validate().find("mobile_duty_cycle"), std::string::npos);
  cfg = ScenarioConfig{};
  cfg.mobile_churn_period = -1.0;
  EXPECT_NE(cfg.validate().find("mobile_churn_period"), std::string::npos);
}

TEST(ScenarioValidateDeathTest, SimulatorRejectsInvalidConfig) {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 1;
  tcfg.num_peers = 8;
  tcfg.num_swarms = 1;
  tcfg.duration = kHour;
  trace::Trace tr = trace::generate(tcfg);

  ScenarioConfig cfg;
  cfg.freerider_fraction = 0.3;
  cfg.ignorer_fraction = 0.2;
  cfg.liar_fraction = 0.2;
  EXPECT_DEATH(CommunitySimulator(std::move(tr), cfg),
               "freerider population");
}

TEST(ScenarioValidateDeathTest, SimulatorRejectsBadPopulationSpec) {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 2;
  tcfg.num_peers = 8;
  tcfg.num_swarms = 1;
  tcfg.duration = kHour;
  trace::Trace tr = trace::generate(tcfg);

  ScenarioConfig cfg;
  cfg.population = "sharer:0.5,bogus:0.5";
  EXPECT_DEATH(CommunitySimulator(std::move(tr), cfg), "unknown behavior");
}

}  // namespace
}  // namespace bc::community
