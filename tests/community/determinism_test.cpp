// Bit-exact determinism of the community simulator (guards future
// parallelism work): two runs from the same trace seed and scenario config
// must produce bit-identical metrics, down to the floating-point bit
// patterns of every time-series bin and reputation value.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "community/simulator.hpp"
#include "trace/generator.hpp"

namespace bc::community {
namespace {

trace::Trace small_trace(std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 16;
  cfg.num_swarms = 2;
  cfg.duration = 10.0 * kHour;
  cfg.file_size_min = mib(15);
  cfg.file_size_max = mib(40);
  cfg.requests_per_peer_min = 1;
  cfg.requests_per_peer_max = 2;
  return trace::generate(cfg);
}

void put_double(std::ostringstream& out, double v) {
  // Doubles go out as raw bit patterns: "equal enough" is not determinism.
  out << std::bit_cast<std::uint64_t>(v) << ',';
}

void put_series(std::ostringstream& out, const TimeSeries& s) {
  out << s.num_bins() << ';';
  for (std::size_t i = 0; i < s.num_bins(); ++i) {
    out << s.bin_count(i) << ':';
    put_double(out, s.bin_mean(i));
  }
  out << '\n';
}

std::string fingerprint(const Metrics& m) {
  std::ostringstream out;
  put_series(out, m.reputation_sharers);
  put_series(out, m.reputation_freeriders);
  put_series(out, m.speed_sharers);
  put_series(out, m.speed_freeriders);
  for (const auto& o : m.outcomes) {
    out << o.peer << ',' << o.behavior << ','
        << o.total_uploaded << ',' << o.total_downloaded << ','
        << o.files_requested << ',' << o.files_completed << ',';
    put_double(out, o.final_system_reputation);
    put_double(out, o.time_downloading);
    out << o.late_downloaded << ',';
    put_double(out, o.late_time_downloading);
    out << '\n';
  }
  out << m.messages.messages_sent << ',' << m.messages.messages_received << ','
      << m.messages.records_applied << ',' << m.messages.records_dropped() << ','
      << m.messages.gossip_exchanges << '\n';
  return out.str();
}

std::string run_once(std::uint64_t trace_seed, std::uint64_t scenario_seed) {
  ScenarioConfig cfg;
  cfg.seed = scenario_seed;
  cfg.policy = bartercast::ReputationPolicy::rank_ban(-0.5);
  CommunitySimulator sim(small_trace(trace_seed), cfg);
  sim.run();
  return fingerprint(sim.metrics());
}

TEST(Determinism, SameSeedsGiveBitIdenticalMetrics) {
  const std::string first = run_once(21, 9);
  const std::string second = run_once(21, 9);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, DifferentScenarioSeedDiverges) {
  // A sanity check that the fingerprint is actually sensitive to the run:
  // changing the scenario seed must change some recorded bit.
  const std::string first = run_once(21, 9);
  const std::string other = run_once(21, 10);
  EXPECT_NE(first, other);
}

}  // namespace
}  // namespace bc::community
