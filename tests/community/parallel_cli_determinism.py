#!/usr/bin/env python3
"""End-to-end byte-identity of swarm_simulation across --threads 1/2/4/8.

Satellite of the parallel reputation pool (ctest label `parallel`): the
whole observable surface of the example binary must not change with the
thread count —

  * stdout of a plain run (tables, correlation, message totals),
  * the metrics CSV (counters/gauges/histogram buckets),
  * the metrics JSON minus its "profile" object (wall times are the one
    legitimately nondeterministic export; everything else must match),
  * the windowed NDJSON metrics stream (--metrics-stream), byte for byte:
    the sharded instruments merge integer state in ascending slot order,
    so even the in-flight window deltas may not move with the pool size.

Usage: parallel_cli_determinism.py <path-to-swarm_simulation>
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

THREAD_COUNTS = (1, 2, 4, 8)


def run_checked(cmd):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit(f"FAIL: {' '.join(map(str, cmd))} exited "
                 f"{proc.returncode}\n{proc.stdout}\n{proc.stderr}")
    return proc


def collect(binary, threads, tmpdir):
    """Returns (plain stdout, csv bytes, json sans profile, stream bytes)."""
    plain = run_checked([binary, f"--threads={threads}"])
    csv_path = Path(tmpdir) / f"metrics_{threads}.csv"
    json_path = Path(tmpdir) / f"metrics_{threads}.json"
    stream_path = Path(tmpdir) / f"stream_{threads}.ndjson"
    run_checked([binary, f"--threads={threads}",
                 f"--metrics-csv={csv_path}", f"--metrics-out={json_path}",
                 f"--metrics-stream={stream_path}"])
    doc = json.loads(json_path.read_text(encoding="utf-8"))
    doc.pop("profile", None)  # wall times differ run to run by design
    return plain.stdout, csv_path.read_bytes(), doc, stream_path.read_bytes()


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: parallel_cli_determinism.py <swarm_simulation>")
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmpdir:
        results = {t: collect(binary, t, tmpdir) for t in THREAD_COUNTS}
    base_out, base_csv, base_json, base_stream = results[THREAD_COUNTS[0]]
    failures = []
    for t in THREAD_COUNTS[1:]:
        out, csv, doc, stream = results[t]
        if out != base_out:
            failures.append(f"stdout differs between --threads=1 and "
                            f"--threads={t}")
        if csv != base_csv:
            failures.append(f"metrics CSV differs between --threads=1 and "
                            f"--threads={t}")
        if doc != base_json:
            failures.append(f"metrics JSON (sans profile) differs between "
                            f"--threads=1 and --threads={t}")
        if stream != base_stream:
            failures.append(f"NDJSON metrics stream differs between "
                            f"--threads=1 and --threads={t}")
    if failures:
        sys.exit("FAIL:\n  " + "\n  ".join(failures))
    print(f"OK: swarm_simulation byte-identical for --threads "
          f"{'/'.join(map(str, THREAD_COUNTS))}")


if __name__ == "__main__":
    main()
