// Bit-exact equivalence of serial and parallel reputation evaluation: the
// same trace and scenario must fingerprint identically for threads = 1, 2
// and 8. This is the in-process half of the `parallel` ctest label (the
// CLI half diffs swarm_simulation's bytes); run it under the tsan preset
// to additionally prove the pool handoff is race-free.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "community/simulator.hpp"
#include "trace/generator.hpp"

namespace bc::community {
namespace {

trace::Trace small_trace(std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 16;
  cfg.num_swarms = 2;
  cfg.duration = 10.0 * kHour;
  cfg.file_size_min = mib(15);
  cfg.file_size_max = mib(40);
  cfg.requests_per_peer_min = 1;
  cfg.requests_per_peer_max = 2;
  return trace::generate(cfg);
}

void put_double(std::ostringstream& out, double v) {
  // Raw bit patterns: "equal enough" is not the contract, identical is.
  out << std::bit_cast<std::uint64_t>(v) << ',';
}

void put_series(std::ostringstream& out, const TimeSeries& s) {
  out << s.num_bins() << ';';
  for (std::size_t i = 0; i < s.num_bins(); ++i) {
    out << s.bin_count(i) << ':';
    put_double(out, s.bin_mean(i));
  }
  out << '\n';
}

std::string fingerprint(const Metrics& m) {
  std::ostringstream out;
  put_series(out, m.reputation_sharers);
  put_series(out, m.reputation_freeriders);
  put_series(out, m.speed_sharers);
  put_series(out, m.speed_freeriders);
  for (const auto& o : m.outcomes) {
    out << o.peer << ',' << o.behavior << ','
        << o.total_uploaded << ',' << o.total_downloaded << ','
        << o.files_requested << ',' << o.files_completed << ',';
    put_double(out, o.final_system_reputation);
    out << '\n';
  }
  out << m.messages.messages_sent << ',' << m.messages.messages_received
      << ',' << m.messages.records_applied << '\n';
  return out.str();
}

std::string run_with_threads(std::size_t threads) {
  ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.policy = bartercast::ReputationPolicy::rank_ban(-0.5);
  cfg.threads = threads;
  CommunitySimulator sim(small_trace(21), cfg);
  sim.run();
  return fingerprint(sim.metrics());
}

TEST(ParallelDeterminism, ThreadCountDoesNotChangeAnyBit) {
  const std::string serial = run_with_threads(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(run_with_threads(2), serial);
  EXPECT_EQ(run_with_threads(8), serial);
}

TEST(ParallelDeterminism, ParallelRunIsRepeatable) {
  EXPECT_EQ(run_with_threads(4), run_with_threads(4));
}

}  // namespace
}  // namespace bc::community
