#include "community/behavior.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace bc::community {
namespace {

std::size_t count(const std::vector<Behavior>& v, Behavior b) {
  return static_cast<std::size_t>(std::count(v.begin(), v.end(), b));
}

TEST(Behavior, Predicates) {
  EXPECT_FALSE(is_freerider(Behavior::kSharer));
  EXPECT_TRUE(is_freerider(Behavior::kLazyFreerider));
  EXPECT_TRUE(is_freerider(Behavior::kIgnoringFreerider));
  EXPECT_TRUE(is_freerider(Behavior::kLyingFreerider));

  EXPECT_TRUE(sends_messages(Behavior::kSharer));
  EXPECT_TRUE(sends_messages(Behavior::kLazyFreerider));
  EXPECT_FALSE(sends_messages(Behavior::kIgnoringFreerider));
  EXPECT_TRUE(sends_messages(Behavior::kLyingFreerider));

  EXPECT_FALSE(lies(Behavior::kSharer));
  EXPECT_TRUE(lies(Behavior::kLyingFreerider));
}

TEST(Behavior, Names) {
  EXPECT_EQ(behavior_name(Behavior::kSharer), "sharer");
  EXPECT_EQ(behavior_name(Behavior::kLyingFreerider), "lying-freerider");
}

TEST(AssignBehaviors, ExactCounts) {
  Rng rng(1);
  const auto v = assign_behaviors(100, 0.5, 0.1, 0.2, rng);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(count(v, Behavior::kSharer), 50u);
  EXPECT_EQ(count(v, Behavior::kIgnoringFreerider), 10u);
  EXPECT_EQ(count(v, Behavior::kLyingFreerider), 20u);
  EXPECT_EQ(count(v, Behavior::kLazyFreerider), 20u);
}

TEST(AssignBehaviors, AllSharers) {
  Rng rng(2);
  const auto v = assign_behaviors(10, 0.0, 0.0, 0.0, rng);
  EXPECT_EQ(count(v, Behavior::kSharer), 10u);
}

TEST(AssignBehaviors, AllFreeriders) {
  Rng rng(3);
  const auto v = assign_behaviors(10, 1.0, 0.0, 0.0, rng);
  EXPECT_EQ(count(v, Behavior::kLazyFreerider), 10u);
}

TEST(AssignBehaviors, DeterministicInRng) {
  Rng a(9), b(9);
  EXPECT_EQ(assign_behaviors(50, 0.5, 0.1, 0.1, a),
            assign_behaviors(50, 0.5, 0.1, 0.1, b));
}

TEST(AssignBehaviors, AssignmentIsShuffled) {
  Rng rng(4);
  const auto v = assign_behaviors(100, 0.5, 0.0, 0.0, rng);
  // The first 50 peers must not all be freeriders (random placement).
  std::size_t first_half_freeriders = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (is_freerider(v[i])) ++first_half_freeriders;
  }
  EXPECT_GT(first_half_freeriders, 10u);
  EXPECT_LT(first_half_freeriders, 40u);
}

TEST(AssignBehaviorsDeathTest, DisobeyersExceedFreeriders) {
  Rng rng(5);
  EXPECT_DEATH(assign_behaviors(100, 0.3, 0.2, 0.2, rng), "freerider");
}

}  // namespace
}  // namespace bc::community
