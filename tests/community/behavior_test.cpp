#include "community/behavior.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "community/scenario.hpp"

namespace bc::community {
namespace {

std::size_t count(const std::vector<const PeerBehavior*>& v,
                  std::string_view name) {
  return static_cast<std::size_t>(
      std::count_if(v.begin(), v.end(), [&](const PeerBehavior* b) {
        return b->name() == name;
      }));
}

TEST(BehaviorRegistry, BuiltinsAndPredicates) {
  auto& reg = BehaviorRegistry::instance();
  EXPECT_FALSE(reg.at("sharer").freerider());
  EXPECT_TRUE(reg.at("lazy-freerider").freerider());
  EXPECT_TRUE(reg.at("ignoring-freerider").freerider());
  EXPECT_TRUE(reg.at("lying-freerider").freerider());

  EXPECT_TRUE(reg.at("sharer").sends_messages());
  EXPECT_TRUE(reg.at("lazy-freerider").sends_messages());
  EXPECT_FALSE(reg.at("ignoring-freerider").sends_messages());
  EXPECT_TRUE(reg.at("lying-freerider").sends_messages());

  // The extended zoo is registered too.
  EXPECT_NE(reg.find("sybil-region"), nullptr);
  EXPECT_NE(reg.find("slanderer"), nullptr);
  EXPECT_NE(reg.find("strategic-uploader"), nullptr);
  EXPECT_NE(reg.find("mobile-churner"), nullptr);
  EXPECT_FALSE(reg.at("mobile-churner").freerider());
}

TEST(BehaviorRegistry, AliasesAndNormalization) {
  auto& reg = BehaviorRegistry::instance();
  EXPECT_EQ(reg.find("lazy"), reg.find("lazy-freerider"));
  EXPECT_EQ(reg.find("liar"), reg.find("lying-freerider"));
  // '_' and '-' are interchangeable in lookups.
  EXPECT_EQ(reg.find("sybil_region"), reg.find("sybil-region"));
  EXPECT_EQ(reg.find("no-such-behavior"), nullptr);
}

TEST(BehaviorRegistry, NamesAreSortedCanonical) {
  const auto names = BehaviorRegistry::instance().names();
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // Aliases are not listed.
  EXPECT_EQ(std::find(names.begin(), names.end(), "lazy"), names.end());
}

TEST(Behavior, SeedDurationPolicy) {
  ScenarioConfig cfg;
  auto& reg = BehaviorRegistry::instance();
  EXPECT_DOUBLE_EQ(reg.at("sharer").seed_duration(cfg), cfg.seed_duration);
  EXPECT_DOUBLE_EQ(reg.at("lazy-freerider").seed_duration(cfg), 0.0);
  EXPECT_DOUBLE_EQ(reg.at("strategic-uploader").seed_duration(cfg),
                   cfg.strategic_seed_fraction * cfg.seed_duration);
}

TEST(PopulationSpec, ParsesNameFractionList) {
  std::string error;
  const auto spec =
      PopulationSpec::parse("sharer:0.5, lazy:0.3,sybil_region:0.1", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->entries.size(), 3u);
  EXPECT_EQ(spec->entries[0].name, "sharer");
  EXPECT_DOUBLE_EQ(spec->entries[0].fraction, 0.5);
  EXPECT_EQ(spec->entries[2].name, "sybil_region");
  EXPECT_TRUE(spec->validate().empty()) << spec->validate();
}

TEST(PopulationSpec, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(PopulationSpec::parse("sharer", &error).has_value());
  EXPECT_NE(error.find("name:fraction"), std::string::npos);
  EXPECT_FALSE(PopulationSpec::parse("sharer:", &error).has_value());
  EXPECT_FALSE(PopulationSpec::parse(":0.5", &error).has_value());
  EXPECT_FALSE(PopulationSpec::parse("a:0.1,,b:0.2", &error).has_value());
  EXPECT_FALSE(PopulationSpec::parse("sharer:abc", &error).has_value());
  EXPECT_NE(error.find("not a number"), std::string::npos);
}

TEST(PopulationSpec, ValidateCatchesSemanticErrors) {
  auto spec = PopulationSpec::parse("nonexistent:0.5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NE(spec->validate().find("unknown behavior"), std::string::npos);

  spec = PopulationSpec::parse("sharer:1.5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NE(spec->validate().find("within [0, 1]"), std::string::npos);

  spec = PopulationSpec::parse("sharer:0.8,lazy:0.8");
  ASSERT_TRUE(spec.has_value());
  EXPECT_NE(spec->validate().find("sum"), std::string::npos);
}

TEST(PopulationSpec, SlicesRoundAndClamp) {
  const auto spec = PopulationSpec::parse("lazy:0.5,sybil:0.25");
  ASSERT_TRUE(spec.has_value());
  const auto slices = spec->slices(30);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].count, 15u);
  EXPECT_EQ(slices[1].count, 8u);  // lround(7.5) rounds half away from zero
}

TEST(AssignPopulation, FillsRemainderWithFallback) {
  Rng rng(11);
  auto& reg = BehaviorRegistry::instance();
  const std::vector<PopulationSlice> slices = {
      {&reg.at("lazy-freerider"), 3}, {&reg.at("sybil-region"), 2}};
  const auto v = assign_population(10, slices, reg.at("sharer"), rng);
  EXPECT_EQ(count(v, "lazy-freerider"), 3u);
  EXPECT_EQ(count(v, "sybil-region"), 2u);
  EXPECT_EQ(count(v, "sharer"), 5u);
}

TEST(AssignBehaviors, ExactCounts) {
  Rng rng(1);
  const auto v = assign_behaviors(100, 0.5, 0.1, 0.2, rng);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(count(v, "sharer"), 50u);
  EXPECT_EQ(count(v, "ignoring-freerider"), 10u);
  EXPECT_EQ(count(v, "lying-freerider"), 20u);
  EXPECT_EQ(count(v, "lazy-freerider"), 20u);
}

TEST(AssignBehaviors, AllSharers) {
  Rng rng(2);
  const auto v = assign_behaviors(10, 0.0, 0.0, 0.0, rng);
  EXPECT_EQ(count(v, "sharer"), 10u);
}

TEST(AssignBehaviors, AllFreeriders) {
  Rng rng(3);
  const auto v = assign_behaviors(10, 1.0, 0.0, 0.0, rng);
  EXPECT_EQ(count(v, "lazy-freerider"), 10u);
}

TEST(AssignBehaviors, DeterministicInRng) {
  Rng a(9), b(9);
  EXPECT_EQ(assign_behaviors(50, 0.5, 0.1, 0.1, a),
            assign_behaviors(50, 0.5, 0.1, 0.1, b));
}

TEST(AssignBehaviors, AssignmentIsShuffled) {
  Rng rng(4);
  const auto v = assign_behaviors(100, 0.5, 0.0, 0.0, rng);
  // The first 50 peers must not all be freeriders (random placement).
  std::size_t first_half_freeriders = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (v[i]->freerider()) ++first_half_freeriders;
  }
  EXPECT_GT(first_half_freeriders, 10u);
  EXPECT_LT(first_half_freeriders, 40u);
}

TEST(AssignBehaviorsDeathTest, DisobeyersExceedFreeriders) {
  Rng rng(5);
  EXPECT_DEATH(assign_behaviors(100, 0.3, 0.2, 0.2, rng), "freerider");
}

}  // namespace
}  // namespace bc::community
