// Simulator-level adversary-zoo suite (ctest label: adversary). Each test
// runs a small community with one registry attack archetype, under one or
// both aggregation backends, and asserts the end-to-end properties the
// ablation bench measures at scale: runs complete, scores stay bounded,
// and the maxflow metric keeps the class gap positive. The CI
// adversary-smoke job runs exactly this label under asan-ubsan.
#include <gtest/gtest.h>

#include <string>

#include "bartercast/backend.hpp"
#include "community/simulator.hpp"
#include "trace/generator.hpp"

namespace bc::community {
namespace {

trace::Trace zoo_trace(std::uint64_t seed, Seconds duration) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 20;
  cfg.num_swarms = 2;
  cfg.duration = duration;
  cfg.file_size_min = mib(15);
  cfg.file_size_max = mib(40);
  cfg.requests_per_peer_min = 1;
  cfg.requests_per_peer_max = 2;
  return trace::generate(cfg);
}

Metrics run_zoo(const std::string& population,
                bartercast::BackendKind backend,
                Seconds duration = 12.0 * kHour,
                std::uint64_t seed = 11) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.policy = bartercast::ReputationPolicy::ban(-0.5);
  cfg.population = population;
  cfg.node.backend = backend;
  CommunitySimulator sim(zoo_trace(seed, duration), cfg);
  sim.run();
  return sim.metrics();
}

double class_mean(const Metrics& m, bool freeriders) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& o : m.outcomes) {
    if (o.freerider != freeriders) continue;
    sum += o.final_system_reputation;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::size_t count_behavior(const Metrics& m, const std::string& name) {
  std::size_t n = 0;
  for (const auto& o : m.outcomes) {
    if (o.behavior == name) ++n;
  }
  return n;
}

TEST(AdversaryZoo, SybilRegionIsContainedByMaxflow) {
  // Containment needs enough simulated time for the classes to separate
  // (the same reason the paper reports week-long communities).
  const Metrics m = run_zoo("sharer:0.5,lazy:0.25,sybil-region:0.25",
                            bartercast::BackendKind::kMaxflow, 2.0 * kDay);
  EXPECT_EQ(count_behavior(m, "sybil-region"), 5u);
  // Bounded mutual promotion: the cohort's fabricated intra-region edges
  // must not lift the freerider class above the sharers.
  EXPECT_GT(class_mean(m, false), class_mean(m, true));
}

TEST(AdversaryZoo, SlandererIsContainedByMaxflow) {
  const Metrics m = run_zoo("sharer:0.5,lazy:0.25,slanderer:0.25",
                            bartercast::BackendKind::kMaxflow, 2.0 * kDay);
  EXPECT_EQ(count_behavior(m, "slanderer"), 5u);
  EXPECT_GT(class_mean(m, false), class_mean(m, true));
}

TEST(AdversaryZoo, StrategicUploaderSeedsAFraction) {
  const Metrics m = run_zoo("sharer:0.5,strategic-uploader:0.5",
                            bartercast::BackendKind::kMaxflow);
  // The strategic uploader is freerider-class (it aims to do the minimum)
  // but, unlike a lazy freerider, it does seed a fraction of the sharer
  // duration, so the cohort uploads a nonzero total.
  Bytes strategic_up = 0;
  for (const auto& o : m.outcomes) {
    if (o.behavior != "strategic-uploader") continue;
    EXPECT_TRUE(o.freerider);
    strategic_up += o.total_uploaded;
  }
  EXPECT_GT(strategic_up, 0);
}

TEST(AdversaryZoo, MobileChurnerIsSharerClass) {
  const Metrics m = run_zoo("sharer:0.5,lazy:0.25,mobile-churner:0.25",
                            bartercast::BackendKind::kMaxflow);
  for (const auto& o : m.outcomes) {
    if (o.behavior == "mobile-churner") {
      EXPECT_FALSE(o.freerider);
    }
  }
  EXPECT_EQ(count_behavior(m, "mobile-churner"), 5u);
}

TEST(AdversaryZoo, EveryAdversaryRunsUnderBothBackends) {
  const std::string adversaries[] = {"sybil-region", "slanderer",
                                     "strategic-uploader", "mobile-churner"};
  const bartercast::BackendKind backends[] = {
      bartercast::BackendKind::kMaxflow,
      bartercast::BackendKind::kDifferentialGossip};
  for (const auto& adversary : adversaries) {
    for (const auto backend : backends) {
      const Metrics m =
          run_zoo("sharer:0.5,lazy:0.25," + adversary + ":0.25", backend);
      ASSERT_EQ(m.outcomes.size(), 20u)
          << adversary << " x " << bartercast::backend_name(backend);
      for (const auto& o : m.outcomes) {
        EXPECT_GE(o.final_system_reputation, -1.0);
        EXPECT_LE(o.final_system_reputation, 1.0);
      }
    }
  }
}

TEST(AdversaryZoo, GossipBackendRunsAreDeterministic) {
  const std::string population = "sharer:0.5,lazy:0.25,slanderer:0.25";
  const Metrics a =
      run_zoo(population, bartercast::BackendKind::kDifferentialGossip);
  const Metrics b =
      run_zoo(population, bartercast::BackendKind::kDifferentialGossip);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].behavior, b.outcomes[i].behavior);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.outcomes[i].final_system_reputation,
              b.outcomes[i].final_system_reputation);
    EXPECT_EQ(a.outcomes[i].total_uploaded, b.outcomes[i].total_uploaded);
  }
}

TEST(AdversaryZoo, BackendChoiceChangesScoresNotTransfers) {
  const std::string population = "sharer:0.5,lazy:0.25,sybil-region:0.25";
  const Metrics mf = run_zoo(population, bartercast::BackendKind::kMaxflow);
  const Metrics dg =
      run_zoo(population, bartercast::BackendKind::kDifferentialGossip);
  ASSERT_EQ(mf.outcomes.size(), dg.outcomes.size());
  // Same seed, same behaviors: the population assignment is identical.
  for (std::size_t i = 0; i < mf.outcomes.size(); ++i) {
    EXPECT_EQ(mf.outcomes[i].behavior, dg.outcomes[i].behavior);
  }
}

}  // namespace
}  // namespace bc::community
