// Community-level conservation and determinism properties, parameterized
// over the policy menu: whatever policy shapes the allocation, the
// simulator must conserve bytes and stay bit-deterministic.
#include <gtest/gtest.h>

#include "community/simulator.hpp"
#include "trace/generator.hpp"

namespace bc::community {
namespace {

trace::Trace tiny_trace(std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 14;
  cfg.num_swarms = 2;
  cfg.duration = 8.0 * kHour;
  cfg.file_size_min = mib(20);
  cfg.file_size_max = mib(50);
  cfg.requests_per_peer_min = 1;
  cfg.requests_per_peer_max = 2;
  return trace::generate(cfg);
}

struct PolicyCase {
  const char* name;
  bartercast::ReputationPolicy policy;
};

class PolicySweep : public ::testing::TestWithParam<int> {
 protected:
  static bartercast::ReputationPolicy policy() {
    switch (GetParam()) {
      case 0:
        return bartercast::ReputationPolicy::none();
      case 1:
        return bartercast::ReputationPolicy::rank();
      case 2:
        return bartercast::ReputationPolicy::ban(-0.5);
      default:
        return bartercast::ReputationPolicy::rank_ban(-0.5);
    }
  }
};

TEST_P(PolicySweep, BytesConserved) {
  ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.policy = policy();
  CommunitySimulator sim(tiny_trace(5), cfg);
  sim.run();
  Bytes up = 0, down = 0;
  for (const auto& o : sim.metrics().outcomes) {
    up += o.total_uploaded;
    down += o.total_downloaded;
    EXPECT_GE(o.total_uploaded, 0);
    EXPECT_GE(o.total_downloaded, 0);
  }
  EXPECT_EQ(up, down);  // closed community: every byte has one sender
  EXPECT_GT(down, 0);
}

TEST_P(PolicySweep, HistoriesMatchGroundTruth) {
  // The BarterCast private histories are fed from the same transfers the
  // ground-truth counters see; the totals must agree peer by peer.
  ScenarioConfig cfg;
  cfg.seed = 6;
  cfg.policy = policy();
  CommunitySimulator sim(tiny_trace(6), cfg);
  sim.run();
  for (const auto& o : sim.metrics().outcomes) {
    const auto& history = sim.node(o.peer).history();
    EXPECT_EQ(history.total_uploaded(), o.total_uploaded)
        << "peer " << o.peer;
    EXPECT_EQ(history.total_downloaded(), o.total_downloaded)
        << "peer " << o.peer;
  }
}

TEST_P(PolicySweep, Deterministic) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.policy = policy();
  CommunitySimulator a(tiny_trace(7), cfg);
  CommunitySimulator b(tiny_trace(7), cfg);
  a.run();
  b.run();
  for (std::size_t i = 0; i < a.metrics().outcomes.size(); ++i) {
    EXPECT_EQ(a.metrics().outcomes[i].total_uploaded,
              b.metrics().outcomes[i].total_uploaded);
    EXPECT_EQ(a.metrics().outcomes[i].total_downloaded,
              b.metrics().outcomes[i].total_downloaded);
  }
  EXPECT_EQ(a.metrics().messages.records_applied,
            b.metrics().messages.records_applied);
}

TEST_P(PolicySweep, CompletionsNeverExceedRequests) {
  ScenarioConfig cfg;
  cfg.seed = 8;
  cfg.policy = policy();
  CommunitySimulator sim(tiny_trace(8), cfg);
  sim.run();
  for (const auto& o : sim.metrics().outcomes) {
    EXPECT_LE(o.files_completed, o.files_requested);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace bc::community
