// Golden-assignment regression: pins the exact RNG draws of
// assign_behaviors for the paper's §5.1/§5.4 population splits.
//
// The expected strings below were captured from the pre-registry enum
// implementation (one Fisher-Yates shuffle over the index vector, legacy
// lround counts, lazy = freeriders - ignorers - liars). The registry
// refactor must keep the legacy path bit-identical: any change to the RNG
// consumption, the slice order, or the count arithmetic flips characters
// here and is a determinism break for every seeded paper scenario.
#include <gtest/gtest.h>

#include <string>

#include "community/behavior.hpp"
#include "util/rng.hpp"

namespace bc::community {
namespace {

/// One char per peer: S=sharer, L=lazy, I=ignoring, Y=lying freerider.
std::string encode(std::size_t n, std::uint64_t seed, double freeriders,
                   double ignorers, double liars) {
  Rng rng(seed);
  const auto v = assign_behaviors(n, freeriders, ignorers, liars, rng);
  std::string out;
  out.reserve(v.size());
  for (const PeerBehavior* b : v) {
    const std::string_view name = b->name();
    if (name == "sharer") {
      out += 'S';
    } else if (name == "lazy-freerider") {
      out += 'L';
    } else if (name == "ignoring-freerider") {
      out += 'I';
    } else if (name == "lying-freerider") {
      out += 'Y';
    } else {
      out += '?';
    }
  }
  return out;
}

TEST(GoldenAssignment, Paper51LazySplit) {
  // §5.1: 50% lazy freeriders, no disobeyers.
  EXPECT_EQ(encode(20, 42, 0.5, 0.0, 0.0), "SLSLSLLLLSSSLLLSSLSS");
  EXPECT_EQ(encode(100, 1, 0.5, 0.0, 0.0),
            "SSSSSLSLLSLLLLSLSLSLLSLLSLLSSLLLSLSLSSLLLSLSLSSLLSSSLLSSLSLSSSLL"
            "LSLLLLLSSSSLLLSSLSSSLLSLSSSLSSSLSLSL");
}

TEST(GoldenAssignment, Paper54IgnorerSplit) {
  // §5.4 manipulation (1): half the freeriders ignore the protocol.
  EXPECT_EQ(encode(20, 42, 0.5, 0.25, 0.0), "SLSISLLIISSSIILSSLSS");
}

TEST(GoldenAssignment, Paper54LiarSplit) {
  // §5.4 manipulation (2): half the freeriders lie.
  EXPECT_EQ(encode(20, 42, 0.5, 0.0, 0.25), "SLSYSLLYYSSSYYLSSLSS");
}

TEST(GoldenAssignment, MixedDisobeyers) {
  EXPECT_EQ(encode(20, 7, 0.5, 0.1, 0.2), "SLSLSYSLSLISSISSYSYY");
  EXPECT_EQ(encode(100, 1, 0.5, 0.25, 0.25),
            "SSSSSISYISYYIISISISYISIYSIYSSIIYSYSYSSYYISYSYSSIYSSSIYSSYSYSSSIY"
            "ISIIYIISSSSYYYSSISSSYISYSSSYSSSISISI");
}

TEST(GoldenAssignment, LegacyCountArithmetic) {
  // n = 30, freeriders 0.5, ignorers 0.25: the legacy lazy count is
  // 15 - 8 = 7, NOT lround(0.25 * 30) = 8 — the subtraction formula must
  // be preserved, not re-derived per fraction.
  Rng rng(3);
  const auto v = assign_behaviors(30, 0.5, 0.25, 0.0, rng);
  std::size_t lazy = 0, ignoring = 0, sharer = 0;
  for (const PeerBehavior* b : v) {
    if (b->name() == "lazy-freerider") ++lazy;
    if (b->name() == "ignoring-freerider") ++ignoring;
    if (b->name() == "sharer") ++sharer;
  }
  EXPECT_EQ(ignoring, 8u);
  EXPECT_EQ(lazy, 7u);
  EXPECT_EQ(sharer, 15u);
}

}  // namespace
}  // namespace bc::community
