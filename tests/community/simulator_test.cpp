// End-to-end integration tests of the community simulator. These use small
// scenarios (tens of peers, hours-to-days) so the whole suite stays fast,
// but exercise the full stack: trace replay, sessions, swarms, choking,
// bandwidth, gossip, BarterCast, policies, probes.
#include "community/simulator.hpp"

#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "trace/generator.hpp"

namespace bc::community {
namespace {

trace::Trace small_trace(std::uint64_t seed, Seconds duration = 12 * kHour) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 16;
  cfg.num_swarms = 3;
  cfg.duration = duration;
  cfg.file_size_min = mib(20);
  cfg.file_size_max = mib(60);
  cfg.requests_per_peer_min = 1;
  cfg.requests_per_peer_max = 2;
  cfg.request_window = 0.6;
  return trace::generate(cfg);
}

ScenarioConfig small_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.series_bin = kHour;
  cfg.reputation_probe_interval = kHour;
  return cfg;
}

TEST(Simulator, RunsToCompletionAndMovesData) {
  CommunitySimulator sim(small_trace(1), small_scenario(1));
  sim.run();
  const auto& m = sim.metrics();
  ASSERT_EQ(m.outcomes.size(), 16u);
  Bytes up = 0, down = 0;
  std::size_t completed = 0;
  for (const auto& o : m.outcomes) {
    up += o.total_uploaded;
    down += o.total_downloaded;
    completed += o.files_completed;
  }
  EXPECT_GT(down, 0);
  EXPECT_GT(completed, 0u);
  // The community is closed: every byte downloaded was uploaded by a peer.
  EXPECT_EQ(up, down);
}

TEST(Simulator, DeterministicAcrossRuns) {
  CommunitySimulator a(small_trace(2), small_scenario(2));
  CommunitySimulator b(small_trace(2), small_scenario(2));
  a.run();
  b.run();
  const auto& ma = a.metrics();
  const auto& mb = b.metrics();
  ASSERT_EQ(ma.outcomes.size(), mb.outcomes.size());
  for (std::size_t i = 0; i < ma.outcomes.size(); ++i) {
    EXPECT_EQ(ma.outcomes[i].total_uploaded, mb.outcomes[i].total_uploaded);
    EXPECT_EQ(ma.outcomes[i].total_downloaded,
              mb.outcomes[i].total_downloaded);
    EXPECT_DOUBLE_EQ(ma.outcomes[i].final_system_reputation,
                     mb.outcomes[i].final_system_reputation);
  }
  EXPECT_EQ(ma.messages.messages_sent, mb.messages.messages_sent);
}

TEST(Simulator, SeedChangesOutcome) {
  CommunitySimulator a(small_trace(3), small_scenario(3));
  ScenarioConfig other = small_scenario(4);
  CommunitySimulator b(small_trace(3), other);
  a.run();
  b.run();
  // Different scenario seed -> different gossip phases and behaviour
  // assignment; at minimum the message traffic differs. (Per-peer byte
  // totals can coincide in a short run where no download completes before
  // the trace ends, so they are not a reliable discriminator.)
  EXPECT_NE(a.metrics().messages.messages_sent,
            b.metrics().messages.messages_sent);
}

TEST(Simulator, FreeridersNeverSeed) {
  CommunitySimulator sim(small_trace(5), small_scenario(5));
  sim.run();
  for (const auto& o : sim.metrics().outcomes) {
    if (!o.freerider) continue;
    // A freerider may upload via tit-for-tat *while* downloading, but its
    // upload must stay below what sharers achieve by seeding. The hard
    // guarantee testable here: it left every completed swarm.
    for (SwarmId s = 0; s < sim.trace().files.size(); ++s) {
      if (sim.swarm(s).has_peer(o.peer)) {
        EXPECT_FALSE(sim.swarm(s).is_complete(o.peer))
            << "freerider " << o.peer << " still seeding swarm " << s;
      }
    }
  }
}

TEST(Simulator, MessagesFlowBetweenPeers) {
  CommunitySimulator sim(small_trace(6), small_scenario(6));
  sim.run();
  const auto& msg = sim.metrics().messages;
  EXPECT_GT(msg.gossip_exchanges, 0u);
  EXPECT_GT(msg.messages_sent, 0u);
  EXPECT_GT(msg.messages_received, 0u);
  EXPECT_GT(msg.records_applied, 0u);
}

TEST(Simulator, IgnorersSendNothing) {
  trace::Trace tr = small_trace(7);
  ScenarioConfig cfg = small_scenario(7);
  cfg.freerider_fraction = 1.0;
  cfg.ignorer_fraction = 1.0;  // every peer ignores the message protocol
  CommunitySimulator sim(std::move(tr), cfg);
  sim.run();
  // Origin seeders still gossip with each other, but records about trace
  // transfers can only come from origin seeders' own histories.
  for (PeerId p = 0; p < sim.num_trace_peers(); ++p) {
    EXPECT_EQ(sim.behavior(p).name(), "ignoring-freerider");
  }
}

TEST(Simulator, ReputationSignSeparatesClasses) {
  // Longer run so reputations accumulate.
  CommunitySimulator sim(small_trace(8, /*duration=*/kDay),
                         small_scenario(8));
  sim.run();
  double sharer_sum = 0.0, freerider_sum = 0.0;
  std::size_t sharers = 0, freeriders = 0;
  for (const auto& o : sim.metrics().outcomes) {
    if (o.freerider) {
      freerider_sum += o.final_system_reputation;
      ++freeriders;
    } else {
      sharer_sum += o.final_system_reputation;
      ++sharers;
    }
  }
  ASSERT_GT(sharers, 0u);
  ASSERT_GT(freeriders, 0u);
  EXPECT_GT(sharer_sum / static_cast<double>(sharers),
            freerider_sum / static_cast<double>(freeriders));
}

TEST(Simulator, SystemReputationMatchesOutcome) {
  CommunitySimulator sim(small_trace(9), small_scenario(9));
  sim.run();
  const auto& o = sim.metrics().outcomes[3];
  // finalize() stores system_reputation(); recomputing must agree (the
  // simulator is paused after run()).
  CommunitySimulator& mutable_sim = sim;
  EXPECT_DOUBLE_EQ(o.final_system_reputation,
                   mutable_sim.system_reputation(3));
}

TEST(Simulator, InitialHoldersSeedFromTheStart) {
  CommunitySimulator sim(small_trace(10), small_scenario(10));
  EXPECT_EQ(sim.num_total_peers(), sim.num_trace_peers());
  std::size_t holders = 0;
  for (SwarmId s = 0; s < sim.trace().files.size(); ++s) {
    for (PeerId p = 0; p < sim.num_trace_peers(); ++p) {
      if (!sim.is_initial_holder(p, s)) continue;
      ++holders;
      // A holder is a community sharer already complete in that swarm.
      EXPECT_EQ(sim.behavior(p).name(), "sharer");
      EXPECT_TRUE(sim.swarm(s).has_peer(p));
      EXPECT_TRUE(sim.swarm(s).is_complete(p));
    }
  }
  EXPECT_EQ(holders, sim.trace().files.size() *
                         sim.config().initial_holders_per_swarm);
  sim.run();
  EXPECT_EQ(sim.metrics().outcomes.size(), sim.num_trace_peers());
  // Holders keep seeding for the entire run.
  for (SwarmId s = 0; s < sim.trace().files.size(); ++s) {
    for (PeerId p = 0; p < sim.num_trace_peers(); ++p) {
      if (sim.is_initial_holder(p, s)) {
        EXPECT_TRUE(sim.swarm(s).has_peer(p));
      }
    }
  }
}

TEST(Simulator, BehaviorFractionsHonoured) {
  trace::Trace tr = small_trace(11);
  ScenarioConfig cfg = small_scenario(11);
  cfg.freerider_fraction = 0.5;
  cfg.liar_fraction = 0.25;
  CommunitySimulator sim(std::move(tr), cfg);
  std::size_t liars = 0, freeriders = 0;
  for (PeerId p = 0; p < sim.num_trace_peers(); ++p) {
    if (sim.behavior(p).name() == "lying-freerider") ++liars;
    if (sim.behavior(p).freerider()) ++freeriders;
  }
  EXPECT_EQ(freeriders, 8u);
  EXPECT_EQ(liars, 4u);
}

TEST(Simulator, ContributionReputationCorrelationPositive) {
  CommunitySimulator sim(small_trace(12, kDay), small_scenario(12));
  sim.run();
  // With little data the correlation is noisy, but it must not be strongly
  // negative; with a day of activity it is reliably positive.
  EXPECT_GT(analysis::contribution_correlation(sim.metrics()), 0.0);
}

TEST(SimulatorDeathTest, DoubleRunRejected) {
  CommunitySimulator sim(small_trace(13), small_scenario(13));
  sim.run();
  EXPECT_DEATH(sim.run(), "once");
}

}  // namespace
}  // namespace bc::community
