#!/usr/bin/env python3
"""Windowed-stream regression: NDJSON deltas must sum to end-of-run totals.

The windowed metrics stream (--metrics-stream) emits exact integer deltas,
so replaying every window must reconstruct the final cumulative metrics
JSON bit-for-bit:

  * every line carries schema "bc.metrics.window.v1" with exactly the
    documented keys and a contiguous seq starting at 0;
  * per counter, the sum of window deltas equals the end-of-run total —
    including the per-reason drop counters (barter.dropped_*) and the
    republished reputation-cache tallies, which must flow through the
    stream during the run rather than appearing only at finalize;
  * per log histogram, summed window totals and per-bucket deltas equal
    the end-of-run bucket counts.

Usage: stream_totals_check.py <path-to-swarm_simulation>
"""

import json
import subprocess
import sys
import tempfile
from collections import defaultdict
from pathlib import Path

EXPECTED_KEYS = {"schema", "seq", "t", "counters", "gauges", "log_histograms"}
SCHEMA = "bc.metrics.window.v1"

# Satellites of this check: totals that exist only because mid-run code
# republishes them into the registry. Their presence proves the stream
# carries them while the run is in flight.
REQUIRED_COUNTERS = (
    "barter.dropped_third_party",
    "barter.dropped_own_edge",
    "barter.dropped_self_report",
    "reputation.cache_hits",
    "reputation.cache_misses",
)


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: stream_totals_check.py <swarm_simulation>")
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmpdir:
        stream_path = Path(tmpdir) / "stream.ndjson"
        json_path = Path(tmpdir) / "metrics.json"
        proc = subprocess.run(
            [binary, f"--metrics-stream={stream_path}",
             f"--metrics-out={json_path}"],
            capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"FAIL: swarm_simulation exited {proc.returncode}\n"
                     f"{proc.stdout}\n{proc.stderr}")
        lines = stream_path.read_text(encoding="utf-8").splitlines()
        final = json.loads(json_path.read_text(encoding="utf-8"))

    if not lines:
        sys.exit("FAIL: metrics stream is empty")

    counter_sums = defaultdict(int)
    hist_totals = defaultdict(int)
    hist_buckets = defaultdict(lambda: defaultdict(int))
    for i, line in enumerate(lines):
        window = json.loads(line)
        if set(window) != EXPECTED_KEYS:
            sys.exit(f"FAIL: line {i} keys {sorted(window)} != "
                     f"{sorted(EXPECTED_KEYS)}")
        if window["schema"] != SCHEMA or window["seq"] != i:
            sys.exit(f"FAIL: line {i} schema/seq mismatch: "
                     f"{window['schema']!r} seq={window['seq']}")
        for name, delta in window["counters"].items():
            counter_sums[name] += delta
        for name, h in window["log_histograms"].items():
            hist_totals[name] += h["total"]
            for index, delta in h["buckets"]:
                hist_buckets[name][index] += delta

    failures = []
    for name, total in final["counters"].items():
        if counter_sums[name] != total:
            failures.append(f"counter {name}: windows sum to "
                            f"{counter_sums[name]}, final total is {total}")
    for name in REQUIRED_COUNTERS:
        if name not in final["counters"]:
            failures.append(f"counter {name} missing from final metrics")
        # A reason that never fired has total 0 and lawfully never streams;
        # anything that did fire must have flowed through the windows.
        elif final["counters"][name] > 0 and counter_sums.get(name, 0) == 0:
            failures.append(f"counter {name} never moved through the stream")
    for name, h in final["log_histograms"].items():
        if hist_totals[name] != h["total"]:
            failures.append(f"log histogram {name}: windows sum to "
                            f"{hist_totals[name]}, final is {h['total']}")
        if {i: c for i, c in h["buckets"]} != dict(hist_buckets[name]):
            failures.append(f"log histogram {name}: bucket deltas do not "
                            f"reconstruct the final buckets")
    if failures:
        sys.exit("FAIL:\n  " + "\n  ".join(failures))
    print(f"OK: {len(lines)} windows reconstruct "
          f"{len(final['counters'])} counters and "
          f"{len(final['log_histograms'])} log histograms exactly")


if __name__ == "__main__":
    main()
