// bc-analyze fixture: every D1 shape the token frontend must catch.
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::unordered_map<int, int> scores;
std::unordered_set<int> members;

std::vector<int> export_order() {
  std::vector<int> out;
  for (const auto& [peer, score] : scores) {  // line 13: range-for over map
    out.push_back(peer);
  }
  for (int peer : members) {  // line 16: range-for over set
    out.push_back(peer);
  }
  for (auto it = scores.begin(); it != scores.end(); ++it) {  // line 19
    out.push_back(it->first);
  }
  return out;
}
