// bc-analyze fixture: interprocedural determinism taint (D4).
// Re-creates the pre-dense-index bug this rule exists to catch: a graph
// accessor iterating its unordered adjacency map, with the iteration order
// escaping into bartercast:: reputation evaluation two calls away. D1
// fires at the source line; D4 fires at the call edge inside the sink.
// The second consumer routes the same data through sorted_keys(), the
// sanctioned laundering point, and must stay D4-clean.
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace graph {

class FlowGraph {
 public:
  std::vector<int> nodes() const {
    std::vector<int> out;
    for (const auto& [id, cap] : adj_) {  // line 20: D1, the taint source
      out.push_back(id);
    }
    return out;
  }

 private:
  std::unordered_map<int, int> adj_;
};

std::vector<int> collect(const FlowGraph& g) { return g.nodes(); }

std::vector<int> sorted_keys(const FlowGraph& g) {
  std::vector<int> out = g.nodes();
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace graph

namespace bartercast {

double evaluate(const graph::FlowGraph& g) {
  double acc = 0.0;
  for (int id : graph::collect(g)) {  // line 44: D4, taint reaches the sink
    acc += id;
  }
  return acc;
}

double evaluate_sorted(const graph::FlowGraph& g) {
  double acc = 0.0;
  for (int id : graph::sorted_keys(g)) {  // laundered: no D4 here
    acc += id;
  }
  return acc;
}

}  // namespace bartercast
