// L3 fixture: lambdas handed to *storing* callback sinks (the callback
// outlives the calling frame) must not capture frame locals by reference
// or views by value. Expected findings are hard-coded in
// tests/analysis_tool/test_bc_analyze.py; keep line numbers stable.
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sim {

class Engine {
 public:
  void schedule_after(double delay, std::function<void()> fn) {
    (void)delay;
    pending_.push_back(std::move(fn));
  }

 private:
  std::vector<std::function<void()>> pending_;
};

void arm_counters(Engine& engine) {
  long sent = 0;
  engine.schedule_after(1.0, [&] { ++sent; });         // line 26: L3
  engine.schedule_after(2.0, [&sent] { sent += 2; });  // line 27: L3
}

void arm_view(Engine& engine, const std::vector<std::string>& names) {
  std::string_view first = names.front();
  engine.schedule_after(3.0, [first] { (void)first; });  // line 32: L3
}

}  // namespace sim
