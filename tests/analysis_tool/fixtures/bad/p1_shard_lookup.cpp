// bc-analyze fixture: naive per-thread instrument-shard lookup (P1).
// Lazily registering the caller allocates; paying that lookup per
// iteration of a profiled hot region is allocator traffic on the hot
// path — the shard-slot design (chunk-index slots installed once per
// parallel_for chunk, read through the laundered current_shard_slot())
// exists precisely to avoid this shape.
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.
#include <vector>

std::vector<unsigned long long> g_shards;

unsigned long long& slot_for_caller() {
  g_shards.push_back(0);  // lazy registration: allocates on every call
  return g_shards.back();
}

unsigned long long hot_sharded_count(int n) {
  BC_OBS_SCOPE("fixture.hot_shard_lookup");
  unsigned long long acc = 0;
  for (int i = 0; i < n; ++i) {
    slot_for_caller() += 1;  // line 22: P1, lookup allocates per iteration
    acc += 1;
  }
  return acc;
}
