// bc-analyze fixture: a stale suppression marker. The allow(D1) below
// targets a loop over a std::vector, where D1 never fires — the marker
// must itself become a SUP finding so dead markers cannot silently blind
// the analyzer when the code they guarded moves or is fixed.
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.
#include <vector>

int sum(const std::vector<int>& values) {
  int s = 0;
  // bc-analyze: allow(D1) -- line 11: SUP, vectors iterate deterministically
  for (int v : values) {
    s += v;
  }
  return s;
}
