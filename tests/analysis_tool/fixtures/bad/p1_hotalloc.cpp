// bc-analyze fixture: hot-path allocation (P1), direct and through a call.
// BC_OBS_SCOPE marks a function as a profiled hot region; allocating per
// loop iteration inside one — or calling into a function that allocates —
// is exactly what the batched maxflow kernels must never do.
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.
#include <vector>

std::vector<int> grow_per_iteration(const std::vector<int>& in) {
  BC_OBS_SCOPE("fixture.hot_direct");
  std::vector<int> out;
  for (int v : in) {
    out.push_back(v);  // line 13: P1, unreserved growth in a hot loop
  }
  return out;
}

int helper_that_allocates() {
  int* cell = new int(7);
  int v = *cell;
  delete cell;
  return v;
}

int hot_caller(int n) {
  BC_OBS_SCOPE("fixture.hot_call");
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += helper_that_allocates();  // line 29: P1, call reaches allocation
  }
  return acc;
}
