// L2 fixture: views used after a call that may invalidate the owner's
// storage. `stale_after_add` re-creates the dangling-span bug this rule
// exists to catch: a span from out_edges() held across add_edge(), which
// reaches out_.resize() two calls deep (add_edge -> touch), so the
// evidence must carry the composed call chain. `mutate_during_iteration`
// is the direct shape: growing a container inside its own range-for.
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.
#include <cstddef>
#include <span>
#include <vector>

namespace graph {

struct Edge {
  int peer;
  long cap;
};

class MiniGraph {
 public:
  std::span<const Edge> out_edges(int node) const {
    return out_[static_cast<std::size_t>(node)];
  }

  void add_edge(int from, int to, long cap) {
    touch(from);
    store(from, to, cap);
  }

 private:
  void touch(int node) {
    if (static_cast<std::size_t>(node) >= out_.size()) {
      out_.resize(static_cast<std::size_t>(node) + 1);  // line 34: evidence
    }
  }

  void store(int from, int to, long cap) {
    auto& adj = out_[static_cast<std::size_t>(from)];
    adj.push_back(Edge{to, cap});
  }

  std::vector<std::vector<Edge>> out_;
};

long stale_after_add(MiniGraph& g) {
  auto out = g.out_edges(0);
  g.add_edge(0, 1, 10);
  return out.empty() ? 0 : out[0].cap;  // line 49: L2, two calls deep
}

long mutate_during_iteration(std::vector<long>& totals) {
  long acc = 0;
  for (long t : totals) {
    acc += t;
    totals.push_back(acc);  // line 56: L2, mutation inside the range-for
  }
  return acc;
}

}  // namespace graph
