// G1 fixture: dense graph internals leaking outside src/graph/. Slot
// numbers are recycled on remove_node(), so storing or arithmetic-ing them
// here silently re-targets a different peer after churn.
#include "graph/peer_index.hpp"

namespace bc {

graph::NodeIndex slot_of(const graph::PeerIndex& index, PeerId id) {
  const graph::NodeIndex slot = index.find(id);
  if (slot == graph::kNoNode) return 0;
  return slot + 1;
}

}  // namespace bc
