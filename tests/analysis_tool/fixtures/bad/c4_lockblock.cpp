// bc-analyze fixture: blocking or allocating under a held Mutex (C4).
// Lock scopes must stay short and non-blocking: no I/O, no allocator
// traffic, no waits on foreign mutexes, and no calls that reach any of
// those. CondVar::wait on the *held* mutex is the one sanctioned shape
// (see the good/ counterpart).
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.
#include <cstdio>
#include <vector>

class Registry {
 public:
  void slow_publish() {
    util::LockGuard hold(mu_);
    std::printf("publishing\n");  // line 15: C4, blocking I/O under lock
  }

  void grow_under_lock(int v) {
    util::LockGuard hold(mu_);
    items_.push_back(v);  // line 20: C4, allocation under lock
  }

  void wait_on_wrong_mutex(util::CondVar& cv, util::Mutex& other) {
    util::LockGuard hold(mu_);
    cv.wait(other);  // line 25: C4, waiting on a mutex that is not held
  }

  void log_locked() {
    util::LockGuard hold(mu_);
    emit();  // line 30: C4, call reaches blocking I/O
  }

  void emit() { std::printf("emitting\n"); }

 private:
  util::Mutex mu_;
  std::vector<int> items_ BC_GUARDED_BY(mu_);
};
