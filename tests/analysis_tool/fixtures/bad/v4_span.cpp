// V4 fixture: index arithmetic with no dominating size bound — `i + 1`
// walks off the end on the last element, `n - 1` underflows at n == 0.
#include <cstddef>
#include <vector>

int next_of(const std::vector<int>& v, std::size_t i) {
  return v[i + 1];
}

int last_of(const std::vector<int>& v, std::size_t n) {
  return v[n - 1];
}
