// bc-analyze fixture: Mutex-owning class with unguarded mutable members
// (rule C2). The guarded member and the Mutex itself are fine; the two
// bare members must each be flagged.
namespace util {
struct Mutex {};
}  // namespace util
#define BC_GUARDED_BY(x)

class SharedLedger {
 public:
  void add(long amount);

 private:
  util::Mutex mu_;
  long total_ BC_GUARDED_BY(mu_) = 0;  // annotated: no finding
  long unguarded_total_ = 0;           // line 16
  bool dirty_;                         // line 17
};
