// bc-analyze fixture: lock-acquisition-order cycle (C5), one direction
// nested directly, the opposite direction through a call. Two threads
// running ab() and ba() concurrently deadlock.
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.

class Pair {
 public:
  void ab() {
    util::LockGuard hold_a(a_);
    util::LockGuard hold_b(b_);  // line 11: C5, edge a_ -> b_
  }

  void ba() {
    util::LockGuard hold_b(b_);
    take_a();  // line 16: C5, edge b_ -> a_ through the call
  }

  void take_a() { util::LockGuard hold_a(a_); }

 private:
  util::Mutex a_;
  util::Mutex b_;
};
