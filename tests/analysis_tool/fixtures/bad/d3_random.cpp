// bc-analyze fixture: randomness outside the seeded bc::Rng (rule D3).
#include <cstdlib>
#include <random>

int roll() {
  std::random_device rd;        // line 6
  std::mt19937 gen(rd());       // line 7
  return static_cast<int>(gen() % 6u);
}

int roll_legacy() {
  return rand() % 6;  // line 12
}
