// bc-analyze fixture: ==/!= on floating-point values (rule B2).

bool same_reputation(double reputation, double target) {
  return reputation == target;  // line 4
}

bool is_zero(double score) {
  return score == 0.0;  // line 8
}

bool changed(double before, double after) {
  return before != after;  // line 12
}

bool ordered(double a, double b) {
  return a < b;  // allowed: inequality, not equality
}
