// V2 fixture: ratio denominators nobody proved nonzero. A freshly joined
// peer has downloaded == 0, and a zero-width bucket is a config typo away.
#include <cstdint>

using Bytes = std::int64_t;

double share_ratio(Bytes uploaded, Bytes downloaded) {
  return static_cast<double>(uploaded) / static_cast<double>(downloaded);
}

std::int64_t bucket_of(std::int64_t value, std::int64_t width) {
  return value % width;
}
