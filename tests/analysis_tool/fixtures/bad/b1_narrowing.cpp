// bc-analyze fixture: narrowing/sign-changing casts on Bytes (rule B1).
#include <cstdint>

using Bytes = std::int64_t;

int clip(Bytes ledger) {
  return static_cast<int>(ledger);  // line 7
}

std::uint32_t wrap(Bytes ledger) {
  return static_cast<std::uint32_t>(ledger);  // line 11
}

double display(Bytes ledger) {
  return static_cast<double>(ledger);  // allowed: display conversion
}
