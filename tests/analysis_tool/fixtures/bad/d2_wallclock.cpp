// bc-analyze fixture: wall-clock sources outside src/obs/ (rule D2).
#include <chrono>
#include <ctime>

double wall_now() {
  const auto t = std::chrono::steady_clock::now();  // line 6
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long unix_now() {
  return time(nullptr);  // line 11
}
