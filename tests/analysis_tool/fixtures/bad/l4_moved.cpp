// L4 fixture: a moved-from local or parameter is read again with no
// intervening reassignment. Expected findings are hard-coded in
// tests/analysis_tool/test_bc_analyze.py; keep line numbers stable.
#include <string>
#include <utility>
#include <vector>

std::vector<std::string> build_batch(std::string header) {
  std::vector<std::string> batch;
  batch.push_back(std::move(header));
  batch.push_back(header);  // line 11: L4, header already moved
  return batch;
}

std::string concat_ids(std::string all) {
  std::string copy = std::move(all);
  copy += all;  // line 17: L4, all already moved
  return copy;
}
