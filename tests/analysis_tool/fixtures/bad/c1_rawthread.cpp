// bc-analyze fixture: raw concurrency primitives outside
// src/util/concurrency/ (rule C1).
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

std::mutex work_lock;             // line 8
std::condition_variable work_cv;  // line 9
std::atomic<int> work_counter;    // line 10

void spin() {
  std::thread worker([] {});  // line 13
  worker.join();
}
