// V3 fixture: int64-scale values stored into 32-bit homes with no range
// proof — a wire id from an untrusted file truncates silently.
#include <cstdint>

using PeerId = std::uint32_t;

PeerId to_peer(std::int64_t raw_id) {
  return static_cast<PeerId>(raw_id);
}

unsigned record_slot(std::int64_t total_bytes) {
  unsigned slot;
  slot = total_bytes;
  return slot;
}
