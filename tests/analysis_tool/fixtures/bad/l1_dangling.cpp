// L1 fixture: functions declared to return a view or reference must not
// bind it to frame-local storage — the storage dies with the frame.
// Expected findings are hard-coded in tests/analysis_tool/test_bc_analyze.py;
// keep line numbers stable when editing.
#include <span>
#include <string>
#include <string_view>
#include <vector>

std::span<const int> local_span() {
  std::vector<int> scratch = {1, 2, 3};
  return scratch;  // line 12: L1, view into a local dying with the frame
}

std::string_view temp_view() {
  return std::string("peer-").substr(0, 4);  // line 16: L1, temporary
}

std::string_view borrowed_view() {
  std::string name = "peer-42";
  std::string_view head = name;
  return head;  // line 22: L1, a view borrowed from local `name`
}

const int& local_ref() {
  int total = 0;
  return total;  // line 27: L1, reference to a local
}

std::string_view stable_view(const std::string& owner) {
  return owner;  // caller-owned storage: no finding
}
