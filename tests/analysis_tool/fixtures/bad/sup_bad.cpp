// bc-analyze fixture: rejected suppression markers (rule SUP). A rejected
// marker must NOT silence the finding it targets.
#include <unordered_map>

std::unordered_map<int, int> table;

// bc-analyze: allow(D1)
int sum_no_reason() {
  int s = 0;
  for (const auto& [k, v] : table) s += v;  // line 10: D1 survives
  return s;
}

// bc-analyze: allow(D9) -- no such rule
int sum_unknown_rule() {
  int s = 0;
  for (const auto& [k, v] : table) s += v;  // line 17: D1 survives
  return s;
}
