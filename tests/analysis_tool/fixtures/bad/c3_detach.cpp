// bc-analyze fixture: detached execution (rule C3). Line 6 also carries a
// C1 finding for the raw std::thread.
#include <future>
#include <thread>

void fire_and_forget() {
  std::thread([] {}).detach();            // line 7: C1 + C3
  auto f = std::async([] { return 1; });  // line 8: C3
}
