// V1 fixture: unchecked Bytes arithmetic over gossip-scale inputs. The
// addends come from other peers' reports, so nothing bounds them below
// int64 scale and the accumulator interval blows through INT64_MAX.
#include <cstdint>
#include <vector>

using Bytes = std::int64_t;

Bytes sum_reported(const std::vector<Bytes>& reported) {
  Bytes total = 0;
  for (const Bytes r : reported) total += r;
  return total;
}

Bytes scaled(Bytes base, Bytes factor) {
  base *= factor;
  return base;
}
