// bc-analyze fixture: a suppressed nondeterminism source does not taint
// its callers. The allow(D1) marker carries the written proof that the
// iteration order cannot matter, so the D4 pass must not seed from it —
// even though a bartercast:: sink consumes the result through a call.
#include <unordered_map>
#include <vector>

namespace graph {

class Ledger {
 public:
  long total() const {
    long sum = 0;
    // bc-analyze: allow(D1) -- integer sum; addition is commutative, order never escapes
    for (const auto& [id, amount] : entries_) {
      sum += amount;
    }
    return sum;
  }

 private:
  std::unordered_map<int, long> entries_;
};

}  // namespace graph

namespace bartercast {

long evaluate(const graph::Ledger& ledger) { return ledger.total(); }

}  // namespace bartercast
