// bc-analyze fixture: concurrency routed through the annotated bc::util
// wrappers — zero findings for C1-C3. The Mutex-owning class annotates its
// one mutable member, the pool replaces raw threads, and everything joins.
#include <cstddef>

#include "util/concurrency/mutex.hpp"
#include "util/concurrency/thread_pool.hpp"

class GuardedLedger {
 public:
  void add(long amount) {
    bc::util::LockGuard lock(mu_);
    total_ += amount;
  }

  long total() const {
    bc::util::LockGuard lock(mu_);
    return total_;
  }

 private:
  mutable bc::util::Mutex mu_;
  long total_ BC_GUARDED_BY(mu_) = 0;
};

long parallel_sum(bc::util::ThreadPool& pool) {
  GuardedLedger ledger;
  pool.parallel_for(16, [&ledger](std::size_t i) {
    ledger.add(static_cast<long>(i));
  });
  return ledger.total();
}
