// Lifetime good fixture: each function is the *discharged* twin of an
// L1-L4 bad-fixture shape and must produce zero findings — re-acquiring a
// view after the mutation, copying into owning storage before mutating,
// branch-disjoint mutation and use, value captures of non-views, and
// reassignment after a move.
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace sim {

class Engine {
 public:
  void schedule_after(double delay, std::function<void()> fn) {
    (void)delay;
    pending_.push_back(std::move(fn));
  }

 private:
  std::vector<std::function<void()>> pending_;
};

}  // namespace sim

namespace graph {

class MiniGraph {
 public:
  std::span<const long> row(int node) const {
    return rows_[static_cast<std::size_t>(node)];
  }

  void add_row() { rows_.emplace_back(); }

 private:
  std::vector<std::vector<long>> rows_;
};

long reacquired_after_add(MiniGraph& g) {
  auto out = g.row(0);
  g.add_row();
  out = g.row(0);  // re-acquired: the mutation is discharged
  return out.empty() ? 0 : out[0];
}

long owning_copy(MiniGraph& g) {
  std::vector<long> snapshot(g.row(0).begin(), g.row(0).end());
  g.add_row();
  return snapshot.empty() ? 0 : snapshot[0];  // owns its storage
}

long erase_or_update(std::vector<long>& adj, bool drop) {
  auto it = adj.begin();
  if (drop) {
    adj.erase(it);  // this path returns before the later use
    return 0;
  }
  *it += 1;
  return *it;
}

}  // namespace graph

void arm_by_value(sim::Engine& engine) {
  long sent = 42;
  engine.schedule_after(1.0, [sent] { (void)sent; });  // value capture
}

std::string reset_after_move(std::string name) {
  std::string stored = std::move(name);
  name = "replacement";  // reassigned: the moved-from state is gone
  return stored + name;
}
