// bc-analyze fixture: the sanctioned lock-scope shapes. Build outside the
// lock and swap in under it; wait only on the held mutex's own CondVar;
// deferred work captured in a lambda does not run with the lock held.
#include <utility>
#include <vector>

class Registry {
 public:
  void publish(const std::vector<int>& src) {
    std::vector<int> staged(src);  // allocation happens before the lock
    util::LockGuard hold(mu_);
    items_.swap(staged);  // O(1) under the lock
  }

  void wait_ready() {
    util::LockGuard hold(mu_);
    cv_.wait(mu_);  // sanctioned: waiting on the held mutex
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  std::vector<int> items_ BC_GUARDED_BY(mu_);
};
