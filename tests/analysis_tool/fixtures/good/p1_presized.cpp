// bc-analyze fixture: the sanctioned hot-path allocation shapes. Growth
// after an up-front reserve() is amortized-free, and a one-time buffer
// construction outside the loop is a hoist, not per-iteration traffic —
// neither may fire P1 inside the BC_OBS_SCOPE region.
#include <vector>

std::vector<int> gather_presized(const std::vector<int>& in) {
  BC_OBS_SCOPE("fixture.hot_presized");
  std::vector<int> out;
  out.reserve(in.size());
  for (int v : in) {
    out.push_back(v);  // sanctioned: receiver was reserved above
  }
  return out;
}

int hoisted_scratch(const std::vector<int>& in) {
  BC_OBS_SCOPE("fixture.hot_hoisted");
  std::vector<int> scratch(in.size(), 0);  // once, outside the loop
  int acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    scratch[i] = in[i] * 2;
    acc += scratch[i];
  }
  return acc;
}
