// bc-analyze fixture: deterministic code that must produce zero findings.
#include <cstdint>
#include <map>
#include <vector>

using Bytes = std::int64_t;

constexpr Bytes kMaxTransfer = 1073741824;  // 1 GiB per ledger record

std::map<int, Bytes> ledger;  // ordered: iteration is deterministic

Bytes total() {
  Bytes s = 0;
  for (const auto& [peer, amount] : ledger) {
    if (amount < 0 || amount > kMaxTransfer) continue;  // bounds the addend
    s += amount;
  }
  return s;
}

bool better(double a, double b) {
  if (a > b) return true;
  if (a < b) return false;
  return false;
}

std::int64_t keep_width(Bytes amount) {
  return static_cast<std::int64_t>(amount);  // same width: not narrowing
}
