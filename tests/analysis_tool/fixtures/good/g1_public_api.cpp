// G1 counter-fixture: consumers stay on the PeerId API of the graph
// module — capacity lookups and sorted edge spans, no dense slot numbers.
#include "graph/flow_graph.hpp"
#include "util/checked.hpp"

namespace bc {

Bytes two_hop_upper_bound(const graph::FlowGraph& g, PeerId s, PeerId t) {
  Bytes total = g.capacity(s, t);
  for (const auto& e : g.out_edges(s)) {
    total = util::saturating_add(total, e.cap);  // bound estimate: clamp
  }
  return total;
}

}  // namespace bc
