// G1 counter-fixture: consumers stay on the PeerId API of the graph
// module — capacity lookups and sorted edge spans, no dense slot numbers.
#include "graph/flow_graph.hpp"

namespace bc {

Bytes two_hop_upper_bound(const graph::FlowGraph& g, PeerId s, PeerId t) {
  Bytes total = g.capacity(s, t);
  for (const auto& e : g.out_edges(s)) total += e.cap;
  return total;
}

}  // namespace bc
