// bc-analyze fixture: consistent lock-acquisition order. Both paths take
// a_ before b_ (one nested directly, one through a call), so the order
// graph has the single edge a_ -> b_ and no cycle — C5 must stay silent.

class Pair {
 public:
  void first_path() {
    util::LockGuard hold_a(a_);
    util::LockGuard hold_b(b_);
  }

  void second_path() {
    util::LockGuard hold_a(a_);
    take_b();
  }

  void take_b() { util::LockGuard hold_b(b_); }

 private:
  util::Mutex a_;
  util::Mutex b_;
};
