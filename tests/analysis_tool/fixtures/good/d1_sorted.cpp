// bc-analyze fixture: the sanctioned ways to iterate unordered containers.
#include <unordered_map>
#include <vector>

#include "util/sorted_view.hpp"

std::unordered_map<int, int> scores;

std::vector<int> export_order() {
  std::vector<int> out;
  for (const auto& [peer, score] : bc::util::sorted_view(scores)) {
    out.push_back(peer);
  }
  for (int peer : bc::util::sorted_keys(scores)) {
    out.push_back(peer);
  }
  return out;
}
