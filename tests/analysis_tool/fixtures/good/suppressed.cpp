// bc-analyze fixture: well-formed suppressions silence their target line.
#include <unordered_map>

std::unordered_map<int, int> table;

int total() {
  int s = 0;
  // bc-analyze: allow(D1) -- integer sum; addition is commutative, order never escapes
  for (const auto& [k, v] : table) s += v;
  return s;
}

bool equal_scores(double a, double b) {
  // bc-analyze: allow(B2) -- fixture: exact equality intended
  return a == b;
}
