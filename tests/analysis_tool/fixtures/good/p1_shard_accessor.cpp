// bc-analyze fixture: the sharded-instrument accessor pattern (P1 clean).
// current_shard_slot() is the sanctioned thread-local slot lookup: its
// slow path registers the caller once per thread (amortized-zero, never
// per-iteration traffic), so P1 launders the accessor by name — a hot
// loop routing recordings through it into a pre-sized shard array must
// stay finding-free.
#include <cstddef>
#include <vector>

thread_local std::size_t t_slot = static_cast<std::size_t>(-1);
std::vector<unsigned long long> g_cells(64, 0);

std::size_t current_shard_slot() {
  if (t_slot == static_cast<std::size_t>(-1)) {
    g_cells.push_back(0);  // one-time thread registration
    t_slot = g_cells.size() - 1;
  }
  return t_slot;
}

unsigned long long hot_sharded_record(int n) {
  BC_OBS_SCOPE("fixture.hot_shard_accessor");
  unsigned long long acc = 0;
  for (int i = 0; i < n; ++i) {
    g_cells[current_shard_slot()] += 1;  // laundered accessor: no P1
    acc += 1;
  }
  return acc;
}
