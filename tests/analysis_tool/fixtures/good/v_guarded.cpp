// V counter-fixture: the same arithmetic shapes as the v*_ bad fixtures,
// each carrying a dominating proof the interval analysis can see — bound
// guards, nonzero guards (statement and ternary form), numeric_limits
// range validation, and an asserted size bound.
#include <cstdint>
#include <limits>
#include <vector>

#define BC_ASSERT(cond) ((cond) ? void(0) : __builtin_trap())

using Bytes = std::int64_t;
using PeerId = std::uint32_t;

constexpr Bytes kMaxChunk = 1048576;  // 1 MiB per transfer record

Bytes sum_bounded(const std::vector<Bytes>& xs) {
  Bytes s = 0;
  for (const Bytes x : xs) {
    if (x < 0 || x > kMaxChunk) continue;  // clamps the addend interval
    s += x;
  }
  return s;
}

double guarded_ratio(Bytes uploaded, Bytes downloaded) {
  if (downloaded == 0) return 0.0;
  return static_cast<double>(uploaded) / static_cast<double>(downloaded);
}

double ternary_ratio(Bytes uploaded, Bytes downloaded) {
  return downloaded != 0
             ? static_cast<double>(uploaded) / static_cast<double>(downloaded)
             : 0.0;
}

PeerId validated_peer(std::int64_t raw_id) {
  constexpr std::int64_t kMaxId =
      static_cast<std::int64_t>(std::numeric_limits<PeerId>::max());
  if (raw_id < 0 || raw_id > kMaxId) return 0;
  return static_cast<PeerId>(raw_id);
}

int asserted_next(const std::vector<int>& v, std::size_t i) {
  BC_ASSERT(i + 1 < v.size());
  return v[i + 1];
}
