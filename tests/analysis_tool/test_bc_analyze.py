#!/usr/bin/env python3
"""Self-tests for scripts/bc_analyze.py.

Runs the analyzer CLI against the checked-in fixtures and asserts exact
rule IDs and file:line anchors, the suppression policy (well-formed markers
silence findings, malformed/reason-less markers are rejected AND leave the
target finding alive), output formats, and exit codes. Registered with
ctest as `bc_analyze_selftest`; runs under plain unittest, no third-party
dependencies.
"""

import json
import os
import re
import stat
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent.parent
ANALYZER = REPO_ROOT / "scripts" / "bc_analyze.py"
FIXTURES = TESTS_DIR / "fixtures"

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>\w+) ")
GITHUB_RE = re.compile(
    r"^::error file=(?P<path>[^,]+),line=(?P<line>\d+),"
    r"title=bc-analyze (?P<rule>\w+) [\w-]+::")


def run_analyzer(*args, env=None):
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), *args],
        capture_output=True, text=True, cwd=REPO_ROOT, env=env)
    return proc


def findings_of(proc, pattern=FINDING_RE):
    out = set()
    for line in proc.stdout.splitlines():
        m = pattern.match(line)
        if m:
            path = m.group("path").replace("\\", "/")
            out.add((Path(path).name, int(m.group("line")), m.group("rule")))
    return out


class BadFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_analyzer(str(FIXTURES / "bad"))
        cls.findings = findings_of(cls.proc)

    def test_exit_code_is_one(self):
        self.assertEqual(self.proc.returncode, 1, self.proc.stdout)

    def test_exact_findings(self):
        expected = {
            ("d1_unordered.cpp", 13, "D1"),
            ("d1_unordered.cpp", 16, "D1"),
            ("d1_unordered.cpp", 19, "D1"),
            ("d2_wallclock.cpp", 6, "D2"),
            ("d2_wallclock.cpp", 11, "D2"),
            ("d3_random.cpp", 6, "D3"),
            ("d3_random.cpp", 7, "D3"),
            ("d3_random.cpp", 12, "D3"),
            ("b1_narrowing.cpp", 7, "B1"),
            ("b1_narrowing.cpp", 11, "B1"),
            ("b2_floateq.cpp", 4, "B2"),
            ("b2_floateq.cpp", 8, "B2"),
            ("b2_floateq.cpp", 12, "B2"),
            ("c1_rawthread.cpp", 8, "C1"),
            ("c1_rawthread.cpp", 9, "C1"),
            ("c1_rawthread.cpp", 10, "C1"),
            ("c1_rawthread.cpp", 13, "C1"),
            ("c2_unguarded.cpp", 16, "C2"),
            ("c2_unguarded.cpp", 17, "C2"),
            ("c3_detach.cpp", 7, "C1"),
            ("c3_detach.cpp", 7, "C3"),
            ("c3_detach.cpp", 8, "C3"),
            ("g1_indexleak.cpp", 4, "G1"),
            ("g1_indexleak.cpp", 8, "G1"),
            ("g1_indexleak.cpp", 9, "G1"),
            ("g1_indexleak.cpp", 10, "G1"),
            ("sup_bad.cpp", 7, "SUP"),
            ("sup_bad.cpp", 10, "D1"),
            ("sup_bad.cpp", 14, "SUP"),
            ("sup_bad.cpp", 17, "D1"),
            # Interprocedural dataflow rules (whole-program call graph).
            ("d4_taint.cpp", 20, "D1"),
            ("d4_taint.cpp", 44, "D4"),
            ("p1_hotalloc.cpp", 13, "P1"),
            ("p1_hotalloc.cpp", 29, "P1"),
            ("p1_shard_lookup.cpp", 22, "P1"),
            ("c4_lockblock.cpp", 15, "C4"),
            ("c4_lockblock.cpp", 20, "C4"),
            ("c4_lockblock.cpp", 25, "C4"),
            ("c4_lockblock.cpp", 30, "C4"),
            ("c5_lockorder.cpp", 11, "C5"),
            ("c5_lockorder.cpp", 16, "C5"),
            ("sup_stale.cpp", 11, "SUP"),
            # Abstract-interpretation value rules (interval domain).
            ("v1_overflow.cpp", 11, "V1"),
            ("v1_overflow.cpp", 16, "V1"),
            ("v2_zerodiv.cpp", 8, "V2"),
            ("v2_zerodiv.cpp", 12, "V2"),
            ("v3_narrowing.cpp", 8, "V3"),
            ("v3_narrowing.cpp", 13, "V3"),
            ("v4_span.cpp", 7, "V4"),
            ("v4_span.cpp", 11, "V4"),
            # Lifetime rules (escape analysis over the call graph).
            ("l1_dangling.cpp", 12, "L1"),
            ("l1_dangling.cpp", 16, "L1"),
            ("l1_dangling.cpp", 22, "L1"),
            ("l1_dangling.cpp", 27, "L1"),
            ("l2_staleview.cpp", 49, "L2"),
            ("l2_staleview.cpp", 56, "L2"),
            ("l3_capture.cpp", 26, "L3"),
            ("l3_capture.cpp", 27, "L3"),
            ("l3_capture.cpp", 32, "L3"),
            ("l4_moved.cpp", 11, "L4"),
            ("l4_moved.cpp", 17, "L4"),
        }
        self.assertEqual(self.findings, expected)

    def test_reasonless_suppression_is_called_out(self):
        line = next(l for l in self.proc.stdout.splitlines()
                    if "sup_bad.cpp:7:" in l)
        self.assertIn("reason", line)

    def test_rejected_suppression_does_not_silence_target(self):
        self.assertIn(("sup_bad.cpp", 10, "D1"), self.findings)
        self.assertIn(("sup_bad.cpp", 17, "D1"), self.findings)


class GoodFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_analyzer(str(FIXTURES / "good"))

    def test_exit_code_is_zero(self):
        self.assertEqual(self.proc.returncode, 0,
                         self.proc.stdout + self.proc.stderr)

    def test_no_findings(self):
        self.assertEqual(findings_of(self.proc), set())

    def test_suppressions_are_honored(self):
        self.assertIn("3 suppression(s) honored", self.proc.stderr)


class GithubOutput(unittest.TestCase):
    def test_annotations_match_human_findings(self):
        human = findings_of(run_analyzer(str(FIXTURES / "bad")))
        gh_proc = run_analyzer(str(FIXTURES / "bad"), "--github")
        gh = findings_of(gh_proc, GITHUB_RE)
        self.assertEqual(gh, human)
        self.assertEqual(gh_proc.returncode, 1)


class DataflowEvidence(unittest.TestCase):
    """The interprocedural rules must carry their evidence chain in the
    message: the call path, the originating source finding, and (for C5)
    both mutexes on the cyclic edge — a bare file:line is not actionable
    when the defect lives two calls away."""

    @classmethod
    def setUpClass(cls):
        cls.lines = run_analyzer(str(FIXTURES / "bad")).stdout.splitlines()

    def _line(self, anchor):
        return next(l for l in self.lines if anchor in l)

    def test_d4_reports_call_chain_and_source(self):
        line = self._line("d4_taint.cpp:44:")
        self.assertIn("bartercast::evaluate -> graph::collect"
                      " -> graph::FlowGraph::nodes", line)
        self.assertIn("d4_taint.cpp:20", line)

    def test_p1_transitive_names_the_allocating_callee(self):
        line = self._line("p1_hotalloc.cpp:29:")
        self.assertIn("helper_that_allocates", line)
        self.assertIn("p1_hotalloc.cpp:19", line)

    def test_c4_transitive_names_the_blocking_callee(self):
        line = self._line("c4_lockblock.cpp:30:")
        self.assertIn("Registry::emit", line)
        self.assertIn("c4_lockblock.cpp:33", line)

    def test_c5_cycle_edges_name_both_mutexes(self):
        for anchor in ("c5_lockorder.cpp:11:", "c5_lockorder.cpp:16:"):
            line = self._line(anchor)
            self.assertIn("a_", line)
            self.assertIn("b_", line)


class LifetimeEvidence(unittest.TestCase):
    """The L rules must carry actionable evidence: L1 names the dying
    local, L2 names the borrow point and the composed invalidation chain
    (two calls deep for the fixture's add_edge -> touch -> resize path),
    L3 names the storing sink, L4 points back at the move."""

    @classmethod
    def setUpClass(cls):
        cls.lines = run_analyzer(str(FIXTURES / "bad")).stdout.splitlines()

    def _line(self, anchor):
        return next(l for l in self.lines if anchor in l)

    def test_l1_names_the_local_and_its_declaration(self):
        line = self._line("l1_dangling.cpp:12:")
        self.assertIn("`scratch`", line)
        self.assertIn("l1_dangling.cpp:11", line)

    def test_l1_borrowed_view_names_the_owner(self):
        line = self._line("l1_dangling.cpp:22:")
        self.assertIn("a view borrowed from local `name`", line)

    def test_l2_reports_two_call_deep_chain(self):
        line = self._line("l2_staleview.cpp:49:")
        self.assertIn("borrowed from `g` via `out_edges`", line)
        self.assertIn("l2_staleview.cpp:47", line)
        self.assertIn("graph::MiniGraph::add_edge"
                      " -> graph::MiniGraph::touch", line)
        self.assertIn("`out_.resize(...)`", line)
        self.assertIn("l2_staleview.cpp:34", line)

    def test_l2_range_for_names_loop_and_mutation(self):
        line = self._line("l2_staleview.cpp:56:")
        self.assertIn("`totals.push_back(...)`", line)
        self.assertIn("l2_staleview.cpp:54", line)

    def test_l3_names_the_storing_sink(self):
        line = self._line("l3_capture.cpp:26:")
        self.assertIn("sim::Engine::schedule_after", line)
        self.assertIn("[&]", line)

    def test_l3_flags_view_captured_by_value(self):
        line = self._line("l3_capture.cpp:32:")
        self.assertIn("view `first` by value", line)

    def test_l4_points_at_the_move(self):
        line = self._line("l4_moved.cpp:11:")
        self.assertIn("std::move(header)", line)
        self.assertIn("l4_moved.cpp:10", line)


class EscapeUnits(unittest.TestCase):
    """Unit coverage of the escape layer behind the L rules: borrow-fact
    extraction, accessor classification, and direct/transitive mutation
    summaries."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        import bc_analyze.escape as escape
        cls.escape = escape

    def _program(self, code):
        from bc_analyze.callgraph import Program
        from bc_analyze.source import load_source
        from bc_analyze import RULES
        tmp = Path(tempfile.mkdtemp(dir=TESTS_DIR))
        self.addCleanup(lambda: __import__("shutil").rmtree(tmp))
        src = tmp / "probe.cpp"
        src.write_text(code, encoding="utf-8")
        sf = load_source(src, "probe.cpp", set(RULES))
        return Program([sf])

    def test_borrow_facts_cover_views_refs_and_range_for(self):
        prog = self._program(
            "#include <span>\n"
            "#include <vector>\n"
            "struct G { std::span<const int> row(int) const"
            " { return {}; } };\n"
            "void f(G& g, std::vector<int>& v) {\n"
            "  auto r = g.row(0);\n"
            "  auto it = v.begin();\n"
            "  auto& slot = v[0];\n"
            "  for (int x : v) { (void)x; }\n"
            "}\n")
        fn = next(f for f in prog.functions if f.name == "f")
        sf = prog.by_rel[fn.rel]
        accessors = self.escape.view_accessors(prog)
        borrows = {b.var: b for b in
                   self.escape.borrows_in(fn, sf, accessors)}
        self.assertEqual(borrows["r"].owner, "g")
        self.assertEqual(borrows["r"].via, "row")
        self.assertEqual(borrows["it"].owner, "v")
        self.assertEqual(borrows["slot"].owner, "v")
        self.assertEqual(borrows["<range-for>"].owner, "v")

    def test_owning_snapshots_are_not_borrows(self):
        prog = self._program(
            "#include <string>\n"
            "struct M { std::string s_; };\n"
            "void f(M& m) {\n"
            "  auto copy = m.s_.substr(0, 4);\n"
            "  auto n = m.s_.size();\n"
            "}\n")
        fn = next(f for f in prog.functions if f.name == "f")
        sf = prog.by_rel[fn.rel]
        accessors = self.escape.view_accessors(prog)
        self.assertEqual(self.escape.borrows_in(fn, sf, accessors), [])

    def test_direct_mutation_seeds_receiver_summary(self):
        prog = self._program(
            "#include <vector>\n"
            "class C {\n"
            " public:\n"
            "  void grow() { data_.push_back(1); }\n"
            "  void read() const { (void)data_.size(); }\n"
            " private:\n"
            "  std::vector<int> data_;\n"
            "};\n")
        summaries = self.escape.MutationSummaries(prog)
        grow = next(f for f in prog.functions if f.name == "grow")
        read = next(f for f in prog.functions if f.name == "read")
        self.assertIn(id(grow), summaries.invalidates_receiver)
        self.assertNotIn(id(read), summaries.invalidates_receiver)
        inv = summaries.invalidates_receiver[id(grow)]
        self.assertIn("data_.push_back", inv.evidence)

    def test_transitive_summary_composes_with_chain(self):
        prog = self._program(
            "#include <vector>\n"
            "class C {\n"
            " public:\n"
            "  void outer() { inner(); }\n"
            " private:\n"
            "  void inner() { data_.resize(8); }\n"
            "  std::vector<int> data_;\n"
            "};\n")
        summaries = self.escape.MutationSummaries(prog)
        outer = next(f for f in prog.functions if f.name == "outer")
        inv = summaries.invalidates_receiver.get(id(outer))
        self.assertIsNotNone(inv)
        self.assertEqual(inv.depth, 1)
        self.assertEqual(inv.chain, ["C::outer", "C::inner"])
        self.assertIn("data_.resize", inv.evidence)

    def test_mutable_ref_param_mutation_is_summarized(self):
        prog = self._program(
            "#include <vector>\n"
            "void append(std::vector<int>& v, int x) { v.push_back(x); }\n"
            "void keep(const std::vector<int>& v) { (void)v.size(); }\n")
        summaries = self.escape.MutationSummaries(prog)
        append = next(f for f in prog.functions if f.name == "append")
        keep = next(f for f in prog.functions if f.name == "keep")
        self.assertIn("v", summaries.mutates_ref_params.get(id(append), {}))
        self.assertNotIn(id(keep), summaries.mutates_ref_params)

    def test_view_accessor_classification(self):
        prog = self._program(
            "#include <span>\n"
            "#include <vector>\n"
            "struct G {\n"
            "  std::span<const int> row(int) const { return {}; }\n"
            "  const int& at_slot(int i) const { return slots_[i]; }\n"
            "  std::vector<int> sorted_view() const { return slots_; }\n"
            "  std::vector<int> slots_;\n"
            "};\n")
        accessors = self.escape.view_accessors(prog)
        self.assertEqual(accessors.get("row"), "view")
        self.assertEqual(accessors.get("at_slot"), "ref")
        self.assertNotIn("sorted_view", accessors)
        self.assertIn("begin", accessors)  # builtin model


class FrontendDegradation(unittest.TestCase):
    """The clang AST frontend is opportunistic: a missing compile database,
    an absent clang binary, or a failing AST dump must all degrade to the
    tokens frontend without crashing. Only `--frontend clang` may fail."""

    def test_missing_compile_db_falls_back_to_tokens(self):
        proc = run_analyzer(str(FIXTURES / "good"), "--no-cache",
                            "--build-dir", "no/such/build")
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)
        self.assertIn("tokens frontend", proc.stderr)
        self.assertNotIn("clang-ast", proc.stderr)

    def test_clang_absent_falls_back_to_tokens(self):
        with tempfile.TemporaryDirectory() as empty:
            env = dict(os.environ, PATH=empty)
            proc = run_analyzer(str(FIXTURES / "good"), "--no-cache",
                                env=env)
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)
        self.assertIn("tokens frontend", proc.stderr)
        self.assertNotIn("clang-ast", proc.stderr)

    def test_forced_clang_frontend_fails_hard_without_clang(self):
        with tempfile.TemporaryDirectory() as empty:
            env = dict(os.environ, PATH=empty)
            proc = run_analyzer(str(FIXTURES / "good"), "--no-cache",
                                "--frontend", "clang", env=env)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("unavailable", proc.stderr)

    @unittest.skipUnless(
        (REPO_ROOT / "build" / "compile_commands.json").is_file(),
        "needs a configured build tree")
    def test_ast_dump_failure_degrades_to_tokens(self):
        # A clang that is found but whose AST dump fails (here: always
        # exits 1) must leave the analysis tokens-only, not crash it.
        with tempfile.TemporaryDirectory() as shim_dir:
            shim = Path(shim_dir) / "clang++"
            shim.write_text("#!/bin/sh\nexit 1\n", encoding="utf-8")
            shim.chmod(shim.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP
                       | stat.S_IXOTH)
            env = dict(os.environ,
                       PATH=shim_dir + os.pathsep + os.environ["PATH"])
            proc = run_analyzer("--no-cache", "--build-dir", "build",
                                "--jobs", "4", env=env)
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)
        self.assertIn("tokens frontend", proc.stderr)
        self.assertNotIn("clang-ast", proc.stderr)


class SarifOutput(unittest.TestCase):
    def _run_sarif(self, fixture_dir):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "out.sarif"
            proc = run_analyzer(str(fixture_dir), "--no-cache",
                                "--sarif", str(out))
            doc = json.loads(out.read_text(encoding="utf-8"))
        return proc, doc

    def test_sarif_results_match_human_findings(self):
        proc, doc = self._run_sarif(FIXTURES / "bad")
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "bc-analyze")
        got = set()
        for result in run["results"]:
            loc = result["locations"][0]["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uriBaseId"],
                             "%SRCROOT%")
            got.add((Path(loc["artifactLocation"]["uri"]).name,
                     loc["region"]["startLine"], result["ruleId"]))
        self.assertEqual(got, findings_of(proc))

    def test_sarif_clean_run_is_valid_and_empty(self):
        proc, doc = self._run_sarif(FIXTURES / "good")
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(doc["runs"][0]["results"], [])
        # Rule metadata ships even when nothing fired, so code scanning
        # can render the catalogue.
        rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        self.assertLessEqual({"D1", "D4", "P1", "C4", "C5", "SUP",
                              "V1", "V2", "V3", "V4",
                              "L1", "L2", "L3", "L4"}, rules)


class CacheBehavior(unittest.TestCase):
    def test_second_run_is_served_from_cache(self):
        with tempfile.TemporaryDirectory() as tmp:
            cache = Path(tmp) / "cache.json"
            cold = run_analyzer(str(FIXTURES / "bad"),
                                "--cache-file", str(cache))
            warm = run_analyzer(str(FIXTURES / "bad"),
                                "--cache-file", str(cache))
        self.assertNotIn("cached", cold.stderr)
        self.assertIn(", cached", warm.stderr)
        self.assertEqual(findings_of(warm), findings_of(cold))
        self.assertEqual(warm.returncode, cold.returncode)

    def test_no_cache_flag_disables_replay(self):
        with tempfile.TemporaryDirectory() as tmp:
            cache = Path(tmp) / "cache.json"
            run_analyzer(str(FIXTURES / "bad"), "--cache-file", str(cache))
            proc = run_analyzer(str(FIXTURES / "bad"), "--no-cache",
                                "--cache-file", str(cache))
        self.assertNotIn("cached", proc.stderr)

    def test_content_change_invalidates_the_cache(self):
        violation = ("#include <unordered_map>\n"
                     "void walk() {\n"
                     "  std::unordered_map<int, int> m;\n"
                     "  for (const auto& kv : m) { (void)kv; }\n"
                     "}\n")
        with tempfile.TemporaryDirectory(dir=TESTS_DIR) as tmp:
            src = Path(tmp) / "cache_probe.cpp"
            src.write_text(violation, encoding="utf-8")
            cache = Path(tmp) / "cache.json"
            first = run_analyzer(tmp, "--cache-file", str(cache))
            src.write_text(
                violation + "void walk2() {\n"
                "  std::unordered_map<int, int> m;\n"
                "  for (const auto& kv : m) { (void)kv; }\n"
                "}\n", encoding="utf-8")
            second = run_analyzer(tmp, "--cache-file", str(cache))
        self.assertEqual(len(findings_of(first)), 1)
        self.assertNotIn("cached", second.stderr)
        self.assertEqual(len(findings_of(second)), 2)


class PerformanceFlags(unittest.TestCase):
    def test_parallel_run_matches_serial(self):
        serial = run_analyzer(str(FIXTURES / "bad"), "--no-cache")
        parallel = run_analyzer(str(FIXTURES / "bad"), "--no-cache",
                                "--jobs", "4")
        self.assertEqual(findings_of(parallel), findings_of(serial))
        self.assertEqual(parallel.returncode, serial.returncode)

    def test_blown_time_budget_is_an_infra_error(self):
        proc = run_analyzer(str(FIXTURES / "good"), "--no-cache",
                            "--max-seconds", "0")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)
        self.assertIn("--max-seconds budget", proc.stderr)


class CliBehavior(unittest.TestCase):
    def test_list_rules(self):
        proc = run_analyzer("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("D1", "D2", "D3", "B1", "B2", "C1", "C2", "C3", "G1",
                     "V1", "V2", "V3", "V4", "L1", "L2", "L3", "L4", "SUP"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_infra_error(self):
        proc = run_analyzer("no/such/dir")
        self.assertEqual(proc.returncode, 2)

    def test_repo_sources_are_clean(self):
        # The tree gate: src/, bench/ and examples/ must stay at zero
        # findings. Any new violation needs a fix or a reasoned suppression.
        proc = run_analyzer()
        self.assertEqual(
            proc.returncode, 0,
            "bc-analyze found new violations:\n" + proc.stdout)


class IntervalDomain(unittest.TestCase):
    """Unit coverage of the abstract-interpretation engine behind the V
    rules: lattice operations, widening convergence, guard negation and
    refinement, and the bottom-up interprocedural summaries."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        import bc_analyze.absint as absint
        cls.ai = absint

    def test_join_meet_lattice(self):
        I = self.ai.Interval
        self.assertEqual(I(0, 5).join(I(3, 10)), I(0, 10))
        self.assertEqual(I(0, 5).meet(I(3, 10)), I(3, 5))
        self.assertTrue(I(0, 2).meet(I(5, 9)).is_bottom())
        self.assertEqual(I(0, 5).join(I.bottom()), I(0, 5))

    def test_widening_jumps_and_converges(self):
        I, INF = self.ai.Interval, self.ai.INF
        grown = I(0, 5).widen(I(0, 6))
        self.assertEqual(grown.lo, 0)
        self.assertEqual(grown.hi, INF)
        # A second widening step is a fixpoint: nothing left to lose.
        self.assertEqual(grown.widen(grown.join(I(0, 7))), grown)

    def test_type_ranges(self):
        self.assertEqual(self.ai.type_range("PeerId"),
                         self.ai.Interval(0, 4294967295))
        self.assertEqual(self.ai.type_range("Bytes"), self.ai.I64_RANGE)

    def test_eval_constant_folding(self):
        got = self.ai.eval_expr("3 * 7 + 1", self.ai.Env())
        self.assertEqual((got.lo, got.hi), (22, 22))

    def test_eval_numeric_limits(self):
        got = self.ai.eval_expr("std::numeric_limits<PeerId>::max()",
                                self.ai.Env())
        self.assertEqual((got.lo, got.hi), (4294967295, 4294967295))

    def test_negate_de_morgan(self):
        self.assertEqual(self.ai._negate("x < 0 || x > kMax"),
                         "x >= 0 && x <= kMax")
        self.assertEqual(self.ai._negate("!(n == 0)"), "n == 0")
        # A negated conjunction is a disjunction: no single guard holds.
        self.assertIsNone(self.ai._negate("a > 0 && b > 0"))

    def test_refine_applies_guards(self):
        got = self.ai.refine(self.ai.I64_RANGE, "x",
                             ["x >= 0", "x <= 100"], self.ai.Env())
        self.assertEqual((got.lo, got.hi), (0, 100))

    def _program(self, code):
        from bc_analyze.source import load_source
        from bc_analyze import RULES
        tmp = Path(tempfile.mkdtemp(dir=TESTS_DIR))
        self.addCleanup(lambda: __import__("shutil").rmtree(tmp))
        src = tmp / "probe.cpp"
        src.write_text(code, encoding="utf-8")
        sf = load_source(src, "probe.cpp", set(RULES))
        return self.ai.Program([sf])

    def test_summary_composition(self):
        prog = self._program(
            "#include <cstdint>\n"
            "using Bytes = std::int64_t;\n"
            "constexpr Bytes kCap = 1000;\n"
            "constexpr Bytes kTwice = 2 * kCap;\n"
            "Bytes clamped(Bytes x) {\n"
            "  if (x < 0) return 0;\n"
            "  if (x > kCap) return kCap;\n"
            "  return x;\n"
            "}\n"
            "Bytes doubled(Bytes x) {\n"
            "  return clamped(x) + clamped(x);\n"
            "}\n")
        summaries = self.ai.Summaries(prog)
        # Constexpr chains resolve across the two global-consts passes.
        kcap = summaries.global_consts["kCap"]
        self.assertEqual((kcap.lo, kcap.hi), (1000, 1000))
        ktwice = summaries.global_consts["kTwice"]
        self.assertEqual((ktwice.lo, ktwice.hi), (2000, 2000))
        # The guard structure bounds the callee's return interval, and the
        # caller's summary composes the callee's.
        ret = summaries.call("clamped", [self.ai.I64_RANGE])
        self.assertTrue(ret.fits(0, 1000), ret)
        ret2 = summaries.call("doubled", [self.ai.I64_RANGE])
        self.assertTrue(ret2.fits(0, 2000), ret2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
