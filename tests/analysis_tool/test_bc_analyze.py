#!/usr/bin/env python3
"""Self-tests for scripts/bc_analyze.py.

Runs the analyzer CLI against the checked-in fixtures and asserts exact
rule IDs and file:line anchors, the suppression policy (well-formed markers
silence findings, malformed/reason-less markers are rejected AND leave the
target finding alive), output formats, and exit codes. Registered with
ctest as `bc_analyze_selftest`; runs under plain unittest, no third-party
dependencies.
"""

import re
import subprocess
import sys
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent.parent
ANALYZER = REPO_ROOT / "scripts" / "bc_analyze.py"
FIXTURES = TESTS_DIR / "fixtures"

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>\w+) ")
GITHUB_RE = re.compile(
    r"^::error file=(?P<path>[^,]+),line=(?P<line>\d+),"
    r"title=bc-analyze (?P<rule>\w+) [\w-]+::")


def run_analyzer(*args):
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), *args],
        capture_output=True, text=True, cwd=REPO_ROOT)
    return proc


def findings_of(proc, pattern=FINDING_RE):
    out = set()
    for line in proc.stdout.splitlines():
        m = pattern.match(line)
        if m:
            path = m.group("path").replace("\\", "/")
            out.add((Path(path).name, int(m.group("line")), m.group("rule")))
    return out


class BadFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_analyzer(str(FIXTURES / "bad"))
        cls.findings = findings_of(cls.proc)

    def test_exit_code_is_one(self):
        self.assertEqual(self.proc.returncode, 1, self.proc.stdout)

    def test_exact_findings(self):
        expected = {
            ("d1_unordered.cpp", 13, "D1"),
            ("d1_unordered.cpp", 16, "D1"),
            ("d1_unordered.cpp", 19, "D1"),
            ("d2_wallclock.cpp", 6, "D2"),
            ("d2_wallclock.cpp", 11, "D2"),
            ("d3_random.cpp", 6, "D3"),
            ("d3_random.cpp", 7, "D3"),
            ("d3_random.cpp", 12, "D3"),
            ("b1_narrowing.cpp", 7, "B1"),
            ("b1_narrowing.cpp", 11, "B1"),
            ("b2_floateq.cpp", 4, "B2"),
            ("b2_floateq.cpp", 8, "B2"),
            ("b2_floateq.cpp", 12, "B2"),
            ("c1_rawthread.cpp", 8, "C1"),
            ("c1_rawthread.cpp", 9, "C1"),
            ("c1_rawthread.cpp", 10, "C1"),
            ("c1_rawthread.cpp", 13, "C1"),
            ("c2_unguarded.cpp", 16, "C2"),
            ("c2_unguarded.cpp", 17, "C2"),
            ("c3_detach.cpp", 7, "C1"),
            ("c3_detach.cpp", 7, "C3"),
            ("c3_detach.cpp", 8, "C3"),
            ("g1_indexleak.cpp", 4, "G1"),
            ("g1_indexleak.cpp", 8, "G1"),
            ("g1_indexleak.cpp", 9, "G1"),
            ("g1_indexleak.cpp", 10, "G1"),
            ("sup_bad.cpp", 7, "SUP"),
            ("sup_bad.cpp", 10, "D1"),
            ("sup_bad.cpp", 14, "SUP"),
            ("sup_bad.cpp", 17, "D1"),
        }
        self.assertEqual(self.findings, expected)

    def test_reasonless_suppression_is_called_out(self):
        line = next(l for l in self.proc.stdout.splitlines()
                    if "sup_bad.cpp:7:" in l)
        self.assertIn("reason", line)

    def test_rejected_suppression_does_not_silence_target(self):
        self.assertIn(("sup_bad.cpp", 10, "D1"), self.findings)
        self.assertIn(("sup_bad.cpp", 17, "D1"), self.findings)


class GoodFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_analyzer(str(FIXTURES / "good"))

    def test_exit_code_is_zero(self):
        self.assertEqual(self.proc.returncode, 0,
                         self.proc.stdout + self.proc.stderr)

    def test_no_findings(self):
        self.assertEqual(findings_of(self.proc), set())

    def test_suppressions_are_honored(self):
        self.assertIn("2 suppression(s) honored", self.proc.stderr)


class GithubOutput(unittest.TestCase):
    def test_annotations_match_human_findings(self):
        human = findings_of(run_analyzer(str(FIXTURES / "bad")))
        gh_proc = run_analyzer(str(FIXTURES / "bad"), "--github")
        gh = findings_of(gh_proc, GITHUB_RE)
        self.assertEqual(gh, human)
        self.assertEqual(gh_proc.returncode, 1)


class CliBehavior(unittest.TestCase):
    def test_list_rules(self):
        proc = run_analyzer("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("D1", "D2", "D3", "B1", "B2", "C1", "C2", "C3", "G1",
                     "SUP"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_infra_error(self):
        proc = run_analyzer("no/such/dir")
        self.assertEqual(proc.returncode, 2)

    def test_repo_sources_are_clean(self):
        # The tree gate: src/, bench/ and examples/ must stay at zero
        # findings. Any new violation needs a fix or a reasoned suppression.
        proc = run_analyzer()
        self.assertEqual(
            proc.returncode, 0,
            "bc-analyze found new violations:\n" + proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
