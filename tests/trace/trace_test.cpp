#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace bc::trace {
namespace {

PeerProfile profile_with_sessions() {
  PeerProfile p;
  p.id = 0;
  p.sessions = {{10.0, 20.0}, {30.0, 40.0}};
  return p;
}

TEST(PeerProfile, OnlineAt) {
  const auto p = profile_with_sessions();
  EXPECT_FALSE(p.online_at(5.0));
  EXPECT_TRUE(p.online_at(10.0));
  EXPECT_TRUE(p.online_at(15.0));
  EXPECT_FALSE(p.online_at(20.0));  // [start, end)
  EXPECT_FALSE(p.online_at(25.0));
  EXPECT_TRUE(p.online_at(35.0));
  EXPECT_FALSE(p.online_at(40.0));
}

TEST(PeerProfile, NextOnline) {
  const auto p = profile_with_sessions();
  EXPECT_DOUBLE_EQ(p.next_online(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.next_online(15.0), 15.0);  // already online
  EXPECT_DOUBLE_EQ(p.next_online(25.0), 30.0);
  EXPECT_LT(p.next_online(45.0), 0.0);  // never again
}

TEST(PeerProfile, TotalUptime) {
  const auto p = profile_with_sessions();
  EXPECT_DOUBLE_EQ(p.total_uptime(), 20.0);
}

TEST(PeerProfile, NoSessions) {
  PeerProfile p;
  EXPECT_FALSE(p.online_at(0.0));
  EXPECT_LT(p.next_online(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.total_uptime(), 0.0);
}

Trace minimal_valid() {
  Trace t;
  t.duration = 100.0;
  t.files.push_back({0, 1000, 100});
  PeerProfile p;
  p.id = 0;
  p.sessions = {{0.0, 50.0}};
  t.peers.push_back(p);
  t.requests.push_back({0, 0, 5.0});
  return t;
}

TEST(TraceValidate, AcceptsMinimal) {
  EXPECT_EQ(minimal_valid().validate(), "");
}

TEST(TraceValidate, RejectsZeroDuration) {
  Trace t = minimal_valid();
  t.duration = 0.0;
  EXPECT_NE(t.validate(), "");
}

TEST(TraceValidate, RejectsNonDenseFileIds) {
  Trace t = minimal_valid();
  t.files[0].id = 5;
  EXPECT_NE(t.validate(), "");
}

TEST(TraceValidate, RejectsBadPieceSize) {
  Trace t = minimal_valid();
  t.files[0].piece_size = 0;
  EXPECT_NE(t.validate(), "");
  t.files[0].piece_size = 5000;  // > file size
  EXPECT_NE(t.validate(), "");
}

TEST(TraceValidate, RejectsInvertedSession) {
  Trace t = minimal_valid();
  t.peers[0].sessions = {{30.0, 20.0}};
  EXPECT_NE(t.validate(), "");
}

TEST(TraceValidate, RejectsOverlappingSessions) {
  Trace t = minimal_valid();
  t.peers[0].sessions = {{0.0, 30.0}, {20.0, 50.0}};
  EXPECT_NE(t.validate(), "");
}

TEST(TraceValidate, RejectsSessionBeyondDuration) {
  Trace t = minimal_valid();
  t.peers[0].sessions = {{0.0, 200.0}};
  EXPECT_NE(t.validate(), "");
}

TEST(TraceValidate, RejectsUnknownRequestTargets) {
  Trace t = minimal_valid();
  t.requests[0].swarm = 9;
  EXPECT_NE(t.validate(), "");
  t = minimal_valid();
  t.requests[0].peer = 9;
  EXPECT_NE(t.validate(), "");
}

TEST(TraceValidate, RejectsUnsortedRequests) {
  Trace t = minimal_valid();
  t.files.push_back({1, 1000, 100});
  t.requests.push_back({0, 1, 1.0});  // earlier than the existing 5.0
  EXPECT_NE(t.validate(), "");
}

TEST(TraceValidate, RejectsDuplicateRequests) {
  Trace t = minimal_valid();
  t.requests.push_back({0, 0, 6.0});
  EXPECT_NE(t.validate(), "");
}

TEST(FileMeta, NumPiecesRoundsUp) {
  FileMeta f{0, 1001, 100};
  EXPECT_EQ(f.num_pieces(), 11);
  FileMeta g{0, 1000, 100};
  EXPECT_EQ(g.num_pieces(), 10);
}

}  // namespace
}  // namespace bc::trace
