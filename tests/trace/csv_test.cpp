#include "trace/csv.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace bc::trace {
namespace {

TEST(TraceCsv, RoundTripsGeneratedTrace) {
  GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.num_peers = 10;
  cfg.num_swarms = 3;
  cfg.duration = kDay;
  const Trace original = generate(cfg);

  std::string error;
  const auto parsed = from_csv(to_csv(original), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->duration, original.duration);
  EXPECT_EQ(parsed->files, original.files);
  EXPECT_EQ(parsed->peers, original.peers);
  EXPECT_EQ(parsed->requests, original.requests);
}

TEST(TraceCsv, ParsesMinimalHandWritten) {
  const std::string text =
      "#trace,100\n"
      "#file,0,1000,100\n"
      "#peer,0,1\n"
      "#session,0,0,50\n"
      "#request,0,0,5\n";
  std::string error;
  const auto t = from_csv(text, &error);
  ASSERT_TRUE(t.has_value()) << error;
  EXPECT_EQ(t->files.size(), 1u);
  EXPECT_TRUE(t->peers[0].connectable);
  EXPECT_EQ(t->requests[0].swarm, 0u);
}

TEST(TraceCsv, IgnoresCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "#trace,100\n"
      "#file,0,1000,100\n"
      "#peer,0,0\n";
  const auto t = from_csv(text);
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->peers[0].connectable);
}

TEST(TraceCsv, RejectsSessionBeforePeer) {
  const std::string text =
      "#trace,100\n"
      "#session,0,0,50\n";
  std::string error;
  EXPECT_FALSE(from_csv(text, &error).has_value());
  EXPECT_NE(error.find("before"), std::string::npos);
}

TEST(TraceCsv, RejectsMalformedFields) {
  std::string error;
  EXPECT_FALSE(from_csv("#trace,abc\n", &error).has_value());
  EXPECT_FALSE(from_csv("#trace,100\n#file,0,xyz,100\n", &error).has_value());
  EXPECT_FALSE(from_csv("#trace,100\n#file,0,1000\n", &error).has_value());
}

TEST(TraceCsv, RejectsUnknownRecord) {
  std::string error;
  EXPECT_FALSE(from_csv("bogus,1,2\n", &error).has_value());
  EXPECT_NE(error.find("unknown"), std::string::npos);
}

TEST(TraceCsv, RejectsSemanticallyInvalid) {
  // Parses fine but fails validate() (request for unknown swarm).
  const std::string text =
      "#trace,100\n"
      "#file,0,1000,100\n"
      "#peer,0,1\n"
      "#request,0,7,5\n";
  std::string error;
  EXPECT_FALSE(from_csv(text, &error).has_value());
  EXPECT_NE(error.find("invalid trace"), std::string::npos);
}

TEST(TraceCsv, EmptyInputIsInvalid) {
  // An empty stream has duration 0 -> fails validation.
  EXPECT_FALSE(from_csv("").has_value());
}

}  // namespace
}  // namespace bc::trace
