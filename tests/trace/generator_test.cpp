#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bc::trace {
namespace {

GeneratorConfig small_config(std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 25;
  cfg.num_swarms = 5;
  cfg.duration = kDay;
  return cfg;
}

TEST(Generator, ProducesValidTrace) {
  const Trace t = generate(small_config(1));
  EXPECT_EQ(t.validate(), "");
  EXPECT_EQ(t.peers.size(), 25u);
  EXPECT_EQ(t.files.size(), 5u);
  EXPECT_GT(t.requests.size(), 0u);
}

TEST(Generator, DeterministicInSeed) {
  const Trace a = generate(small_config(7));
  const Trace b = generate(small_config(7));
  EXPECT_EQ(a.files, b.files);
  EXPECT_EQ(a.peers, b.peers);
  EXPECT_EQ(a.requests, b.requests);
}

TEST(Generator, DifferentSeedsDiffer) {
  const Trace a = generate(small_config(1));
  const Trace b = generate(small_config(2));
  EXPECT_NE(a.requests, b.requests);
}

TEST(Generator, FileSizesWithinBounds) {
  GeneratorConfig cfg = small_config(3);
  cfg.file_size_min = mib(10);
  cfg.file_size_max = mib(100);
  const Trace t = generate(cfg);
  for (const auto& f : t.files) {
    EXPECT_GE(f.size, mib(10) - f.piece_size);  // rounding slack
    EXPECT_LE(f.size, mib(100) + f.piece_size);
    EXPECT_EQ(f.size % f.piece_size, 0);  // whole pieces
  }
}

TEST(Generator, AtLeastOneConnectablePeer) {
  GeneratorConfig cfg = small_config(4);
  cfg.connectable_fraction = 0.0;
  const Trace t = generate(cfg);
  bool any = false;
  for (const auto& p : t.peers) any |= p.connectable;
  EXPECT_TRUE(any);
}

TEST(Generator, ConnectableFractionApproximatelyRespected) {
  GeneratorConfig cfg = small_config(5);
  cfg.num_peers = 400;
  cfg.connectable_fraction = 0.6;
  const Trace t = generate(cfg);
  int connectable = 0;
  for (const auto& p : t.peers) connectable += p.connectable ? 1 : 0;
  EXPECT_NEAR(connectable / 400.0, 0.6, 0.1);
}

TEST(Generator, RequestsInsideTrace) {
  GeneratorConfig cfg = small_config(6);
  const Trace t = generate(cfg);
  for (const auto& r : t.requests) {
    EXPECT_GE(r.at, 0.0);
    EXPECT_LE(r.at, cfg.duration * 0.98);
  }
}

TEST(Generator, RequestsFlashCrowdAfterRelease) {
  // With a short decay, each swarm's requests cluster tightly; the spread
  // of request times within one swarm must be far below the trace length.
  GeneratorConfig cfg = small_config(7);
  cfg.num_peers = 200;
  cfg.request_decay = kHour;
  const Trace t = generate(cfg);
  std::vector<Seconds> lo(cfg.num_swarms, 1e18), hi(cfg.num_swarms, -1.0);
  for (const auto& r : t.requests) {
    lo[r.swarm] = std::min(lo[r.swarm], r.at);
    hi[r.swarm] = std::max(hi[r.swarm], r.at);
  }
  int tight = 0;
  for (std::size_t s = 0; s < cfg.num_swarms; ++s) {
    if (hi[s] >= 0.0 && hi[s] - lo[s] < cfg.duration / 2.0) ++tight;
  }
  EXPECT_GE(tight, static_cast<int>(cfg.num_swarms) - 1);
}

TEST(Generator, RequestsPerPeerWithinBounds) {
  GeneratorConfig cfg = small_config(8);
  cfg.requests_per_peer_min = 2;
  cfg.requests_per_peer_max = 3;
  const Trace t = generate(cfg);
  std::vector<int> counts(cfg.num_peers, 0);
  for (const auto& r : t.requests) ++counts[r.peer];
  for (int c : counts) {
    EXPECT_LE(c, 3);
    // The Zipf draw can collide, so a peer may end below the minimum, but
    // never at zero since min >= 1 always yields at least one pick.
    EXPECT_GE(c, 1);
  }
}

TEST(Generator, EveryPeerHasSessions) {
  const Trace t = generate(small_config(9));
  for (const auto& p : t.peers) {
    EXPECT_FALSE(p.sessions.empty()) << "peer " << p.id;
    EXPECT_GT(p.total_uptime(), 0.0);
  }
}

TEST(Generator, PopularityIsSkewed) {
  GeneratorConfig cfg = small_config(10);
  cfg.num_peers = 300;
  cfg.num_swarms = 10;
  cfg.popularity_skew = 1.2;
  const Trace t = generate(cfg);
  std::vector<int> per_swarm(cfg.num_swarms, 0);
  for (const auto& r : t.requests) ++per_swarm[r.swarm];
  // Swarm 0 (rank 1) should attract clearly more requests than swarm 9.
  EXPECT_GT(per_swarm[0], per_swarm[9]);
}

// Validity must hold across many seeds (the benches sweep seeds).
class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, AlwaysValid) {
  GeneratorConfig cfg = small_config(GetParam());
  EXPECT_EQ(generate(cfg).validate(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace bc::trace
