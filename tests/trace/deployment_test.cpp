#include "trace/deployment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bc::trace {
namespace {

DeploymentConfig small(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 500;
  return cfg;
}

TEST(Deployment, SizesMatchConfig) {
  const auto pop = generate_deployment(small(1));
  EXPECT_EQ(pop.num_peers, 500u);
  EXPECT_EQ(pop.total_up.size(), 500u);
  EXPECT_EQ(pop.total_down.size(), 500u);
}

TEST(Deployment, Deterministic) {
  const auto a = generate_deployment(small(3));
  const auto b = generate_deployment(small(3));
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.total_up, b.total_up);
  EXPECT_EQ(a.total_down, b.total_down);
}

TEST(Deployment, EdgesAreValidAndAggregated) {
  const auto pop = generate_deployment(small(2));
  std::set<std::pair<PeerId, PeerId>> seen;
  for (const auto& e : pop.transfers) {
    EXPECT_LT(e.from, pop.num_peers);
    EXPECT_LT(e.to, pop.num_peers);
    EXPECT_NE(e.from, e.to);
    EXPECT_GT(e.amount, 0);
    EXPECT_TRUE(seen.insert({e.from, e.to}).second) << "duplicate edge";
  }
}

TEST(Deployment, TotalsCoverInternalTransfers) {
  // Internal edge amounts must be contained in the per-peer totals (totals
  // additionally include external/non-observed traffic).
  const auto pop = generate_deployment(small(4));
  std::vector<Bytes> up(pop.num_peers, 0), down(pop.num_peers, 0);
  for (const auto& e : pop.transfers) {
    up[e.from] += e.amount;
    down[e.to] += e.amount;
  }
  for (PeerId i = 0; i < pop.num_peers; ++i) {
    EXPECT_GE(pop.total_up[i], up[i]) << "peer " << i;
    EXPECT_GE(pop.total_down[i], down[i]) << "peer " << i;
  }
}

TEST(Deployment, HasIdlePeers) {
  const auto pop = generate_deployment(small(5));
  std::size_t idle = 0;
  for (PeerId i = 0; i < pop.num_peers; ++i) {
    if (pop.total_up[i] == 0 && pop.total_down[i] == 0) ++idle;
  }
  // idle_fraction = 0.5 by default; allow slack.
  EXPECT_GT(idle, pop.num_peers / 4);
  EXPECT_LT(idle, 3 * pop.num_peers / 4);
}

TEST(Deployment, MoreNetDownloadersThanUploaders) {
  const auto pop = generate_deployment(small(6));
  std::size_t net_down = 0, net_up = 0;
  for (PeerId i = 0; i < pop.num_peers; ++i) {
    const Bytes net = pop.total_up[i] - pop.total_down[i];
    if (net < 0) ++net_down;
    if (net > 0) ++net_up;
  }
  EXPECT_GT(net_down, net_up);  // the paper's Figure 4(a) shape
}

TEST(Deployment, GlobalUploadDoesNotEqualGlobalDownload) {
  // External traffic breaks the closed-system identity, as in Tribler.
  const auto pop = generate_deployment(small(7));
  Bytes up = 0, down = 0;
  for (PeerId i = 0; i < pop.num_peers; ++i) {
    up += pop.total_up[i];
    down += pop.total_down[i];
  }
  EXPECT_NE(up, down);
}

TEST(Deployment, ZeroIdleFraction) {
  DeploymentConfig cfg = small(8);
  cfg.idle_fraction = 0.0;
  const auto pop = generate_deployment(cfg);
  std::size_t active = 0;
  for (PeerId i = 0; i < pop.num_peers; ++i) {
    if (pop.total_up[i] + pop.total_down[i] > 0) ++active;
  }
  EXPECT_GT(active, 9 * pop.num_peers / 10);
}

}  // namespace
}  // namespace bc::trace
