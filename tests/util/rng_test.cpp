#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace bc {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r());
  EXPECT_GT(seen.size(), 30u);  // no degenerate constant stream
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(7);
  Rng child = parent.fork();
  // Child stream should not replicate the parent stream.
  Rng parent2(7);
  (void)parent2.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 9.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng r(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(r.uniform_int(42, 42), 42);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(12);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.exponential(1.0), 0.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(14);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(2.0, 1.5);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 2.25, 0.15);
}

TEST(Rng, LognormalIsExpOfNormal) {
  Rng a(15), b(15);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.lognormal(0.5, 0.2), std::exp(b.normal(0.5, 0.2)));
  }
}

TEST(Rng, ParetoAboveMinimum) {
  Rng r(16);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ZipfFavoursLowRanks) {
  Rng r(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[r.zipf(10, 1.0)];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(Rng, ZipfSingleElement) {
  Rng r(18);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(r.zipf(1, 1.0), 0u);
  }
}

TEST(Rng, IndexInRange) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.index(7), 7u);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(20);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleDistinctAndSubset) {
  Rng r(21);
  std::vector<int> v{10, 20, 30, 40, 50};
  const auto s = r.sample(v, 3);
  ASSERT_EQ(s.size(), 3u);
  std::set<int> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (int x : s) {
    EXPECT_NE(std::find(v.begin(), v.end(), x), v.end());
  }
}

TEST(Rng, SampleMoreThanAvailableReturnsAll) {
  Rng r(22);
  std::vector<int> v{1, 2, 3};
  const auto s = r.sample(v, 10);
  EXPECT_EQ(s.size(), 3u);
}

TEST(Rng, SampleEmpty) {
  Rng r(23);
  EXPECT_TRUE(r.sample(std::vector<int>{}, 4).empty());
}

// Property sweep: bounded generation is unbiased enough across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIntCoversRangeUniformly) {
  Rng r(GetParam());
  std::vector<int> counts(8, 0);
  const int n = 16000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(r.uniform_int(0, 7))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 / 4);  // within 25% of expectation
  }
}

TEST_P(RngSeedSweep, DeterministicReplay) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1337ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace bc
