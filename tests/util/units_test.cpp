#include "util/units.hpp"
#include "util/ids.hpp"

#include <gtest/gtest.h>

namespace bc {
namespace {

TEST(Units, ByteConstants) {
  EXPECT_EQ(kKiB, 1024);
  EXPECT_EQ(kMiB, 1024 * 1024);
  EXPECT_EQ(kGiB, 1024LL * 1024 * 1024);
}

TEST(Units, RoundTripConversions) {
  EXPECT_DOUBLE_EQ(to_mib(mib(3.5)), 3.5);
  EXPECT_DOUBLE_EQ(to_gib(gib(2.0)), 2.0);
  EXPECT_DOUBLE_EQ(to_kib(kib(7.0)), 7.0);
}

TEST(Units, NegativeBytes) {
  EXPECT_DOUBLE_EQ(to_gib(-kGiB), -1.0);
}

TEST(Units, TimeConstants) {
  EXPECT_DOUBLE_EQ(kMinute, 60.0);
  EXPECT_DOUBLE_EQ(kHour, 3600.0);
  EXPECT_DOUBLE_EQ(kDay, 86400.0);
  EXPECT_DOUBLE_EQ(kWeek, 7.0 * 86400.0);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(days(kWeek), 7.0);
  EXPECT_DOUBLE_EQ(hours(kDay), 24.0);
}

TEST(Ids, PeerPairCanonicalizes) {
  const PeerPair a(3, 9);
  const PeerPair b(9, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.lo, 3u);
  EXPECT_EQ(a.hi, 9u);
  EXPECT_EQ(PeerPairHash{}(a), PeerPairHash{}(b));
}

TEST(Ids, InvalidSentinels) {
  EXPECT_GT(kInvalidPeer, 1'000'000'000u);
  EXPECT_GT(kInvalidSwarm, 1'000'000'000u);
}

}  // namespace
}  // namespace bc
