#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bc {
namespace {

TEST(Histogram, CountsIntoBins) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(2.0);
  h.add(7.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, Density) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.density(1), 0.5);
  EXPECT_DOUBLE_EQ(h.density(2), 0.0);
}

TEST(Histogram, EmptyDensityIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.density(0), 0.0);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Cdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

TEST(Cdf, SingleValue) {
  const std::vector<double> xs{3.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 1.0);
}

TEST(Cdf, CollapsesDuplicates) {
  const std::vector<double> xs{1.0, 2.0, 2.0, 3.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Cdf, MonotoneNonDecreasing) {
  const std::vector<double> xs{5.0, -1.0, 3.0, 3.0, 0.0, 5.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(CdfAt, StepSemantics) {
  const std::vector<double> xs{1.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 1.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 99.0), 1.0);
}

}  // namespace
}  // namespace bc
