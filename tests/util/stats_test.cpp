#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace bc {
namespace {

TEST(OnlineStats, EmptyIsNeutral) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 4.0, 4.0, 10.0};
  OnlineStats s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.sum(), 18.5);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(3);
  OnlineStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(1.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.min(), all.min(), 1e-12);
  EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 3.0);
}

TEST(Percentile, MedianInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 7.0);
}

TEST(MeanFn, Basic) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{5, 5, 5};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, TooFewPointsIsZero) {
  const std::vector<double> x{1};
  const std::vector<double> y{2};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Ranks, TiesGetAverageRank) {
  const std::vector<double> xs{10.0, 20.0, 20.0, 30.0};
  const auto r = ranks(xs);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::atan(i * 0.3));  // nonlinear but monotone
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(LinearFit, DegenerateXGivesZeroSlope) {
  const std::vector<double> x{2, 2, 2};
  const std::vector<double> y{1, 2, 3};
  const auto fit = linear_fit(x, y);
  EXPECT_EQ(fit.slope, 0.0);
}

// Property: pearson is symmetric and invariant to affine transforms.
class PearsonProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PearsonProperty, SymmetricAndAffineInvariant) {
  Rng rng(GetParam());
  std::vector<double> x, y, y_affine;
  for (int i = 0; i < 200; ++i) {
    const double xv = rng.normal(0, 1);
    const double yv = 0.5 * xv + rng.normal(0, 0.5);
    x.push_back(xv);
    y.push_back(yv);
    y_affine.push_back(3.0 * yv - 7.0);
  }
  EXPECT_NEAR(pearson(x, y), pearson(y, x), 1e-12);
  EXPECT_NEAR(pearson(x, y), pearson(x, y_affine), 1e-9);
  EXPECT_LE(std::abs(pearson(x, y)), 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace bc
