// bc::util concurrency wrappers: annotated Mutex/LockGuard correctness,
// relaxed atomics, and the ThreadPool determinism contract — parallel_for
// covers every index exactly once and a per-index-write + serial-merge
// reduction is bit-identical to serial at any thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/concurrency/atomic.hpp"
#include "util/concurrency/mutex.hpp"
#include "util/concurrency/thread_pool.hpp"

namespace bc::util {
namespace {

TEST(RelaxedCounter, AddLoadStore) {
  RelaxedCounter c;
  EXPECT_EQ(c.load(), 0u);
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.load(), 12u);
  c.store(3);
  EXPECT_EQ(c.load(), 3u);
}

TEST(RelaxedCounter, FetchAddReturnsPreAddValue) {
  RelaxedCounter c;
  EXPECT_EQ(c.fetch_add(4), 0u);
  EXPECT_EQ(c.fetch_add(1), 4u);
  EXPECT_EQ(c.load(), 5u);
}

TEST(RelaxedBool, StoreLoad) {
  RelaxedBool b;
  EXPECT_FALSE(b.load());
  b.store(true);
  EXPECT_TRUE(b.load());
}

TEST(MutexTest, LockGuardSerializesIncrements) {
  // 4 workers hammer one guarded counter; the total proves mutual
  // exclusion (and TSan proves the locking discipline when enabled).
  Mutex mu;
  std::size_t hits = 0;
  ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::size_t) {
    LockGuard lock(mu);
    ++hits;
  });
  EXPECT_EQ(hits, 1000u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, HandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, HandlesZeroItems) {
  ThreadPool pool(4);
  std::size_t calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  RelaxedCounter total;
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t) { total.add(1); });
  }
  EXPECT_EQ(total.load(), 1000u);
}

/// A floating-point chain whose value depends on every intermediate
/// rounding step — any reordering would change the bits.
double chained_work(std::size_t i) {
  double x = 1.0 + static_cast<double>(i) * 1e-3;
  for (int k = 0; k < 64; ++k) x = x * 1.0000001 + 1e-9;
  return x;
}

std::uint64_t reduction_bits(std::size_t threads) {
  ThreadPool pool(threads);
  const std::size_t n = 257;  // deliberately not a multiple of the chunks
  std::vector<double> out(n, 0.0);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = chained_work(i); });
  double sum = 0.0;
  for (double v : out) sum += v;  // serial merge in index order
  return std::bit_cast<std::uint64_t>(sum);
}

TEST(ThreadPoolTest, ReductionIsBitIdenticalAcrossThreadCounts) {
  const std::uint64_t serial = reduction_bits(1);
  EXPECT_EQ(reduction_bits(2), serial);
  EXPECT_EQ(reduction_bits(3), serial);
  EXPECT_EQ(reduction_bits(8), serial);
}

}  // namespace
}  // namespace bc::util
