#include "util/timeseries.hpp"

#include <gtest/gtest.h>

namespace bc {
namespace {

TEST(TimeSeries, BinsObservationsByTime) {
  TimeSeries ts(0.0, 10.0, 3);
  ts.add(1.0, 2.0);
  ts.add(5.0, 4.0);
  ts.add(15.0, 6.0);
  EXPECT_EQ(ts.bin_count(0), 2u);
  EXPECT_DOUBLE_EQ(ts.bin_mean(0), 3.0);
  EXPECT_EQ(ts.bin_count(1), 1u);
  EXPECT_DOUBLE_EQ(ts.bin_mean(1), 6.0);
  EXPECT_EQ(ts.bin_count(2), 0u);
  EXPECT_DOUBLE_EQ(ts.bin_mean(2), 0.0);
}

TEST(TimeSeries, ClampsOutOfRange) {
  TimeSeries ts(10.0, 5.0, 2);
  ts.add(0.0, 1.0);    // before start -> first bin
  ts.add(100.0, 3.0);  // after end -> last bin
  EXPECT_EQ(ts.bin_count(0), 1u);
  EXPECT_EQ(ts.bin_count(1), 1u);
}

TEST(TimeSeries, BinCenters) {
  TimeSeries ts(100.0, 10.0, 2);
  EXPECT_DOUBLE_EQ(ts.bin_center(0), 105.0);
  EXPECT_DOUBLE_EQ(ts.bin_center(1), 115.0);
}

TEST(TimeSeries, BoundaryGoesToUpperBin) {
  TimeSeries ts(0.0, 10.0, 2);
  ts.add(10.0, 1.0);
  EXPECT_EQ(ts.bin_count(0), 0u);
  EXPECT_EQ(ts.bin_count(1), 1u);
}

TEST(TimeSeries, MeansVector) {
  TimeSeries ts(0.0, 1.0, 3);
  ts.add(0.5, 2.0);
  ts.add(2.5, 8.0);
  const auto m = ts.means();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 0.0);
  EXPECT_DOUBLE_EQ(m[2], 8.0);
}

TEST(TimeSeries, NonZeroStart) {
  TimeSeries ts(50.0, 25.0, 4);
  ts.add(60.0, 1.0);
  ts.add(149.0, 2.0);
  EXPECT_EQ(ts.bin_count(0), 1u);
  EXPECT_EQ(ts.bin_count(3), 1u);
}

}  // namespace
}  // namespace bc
