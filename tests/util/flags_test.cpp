#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace bc {
namespace {

const std::map<std::string, std::string> kAllowed = {
    {"count", "a number"},
    {"name", "a string"},
    {"rate", "a double"},
    {"verbose", "a bool"},
};

std::optional<Flags> parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::parse(static_cast<int>(args.size()), args.data(), kAllowed);
}

TEST(Flags, EmptyArgs) {
  auto f = parse({});
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->has("count"));
  EXPECT_EQ(f->get_int("count", 7), 7);
  EXPECT_TRUE(f->valid());
}

TEST(Flags, EqualsForm) {
  auto f = parse({"--count=5", "--name=alice"});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->get_int("count", 0), 5);
  EXPECT_EQ(f->get("name", ""), "alice");
}

TEST(Flags, SpaceForm) {
  auto f = parse({"--count", "5", "--rate", "2.5"});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->get_int("count", 0), 5);
  EXPECT_DOUBLE_EQ(f->get_double("rate", 0.0), 2.5);
}

TEST(Flags, BareBoolean) {
  auto f = parse({"--verbose"});
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->get_bool("verbose", false));
}

TEST(Flags, BooleanSpellings) {
  for (const char* v : {"true", "1", "yes"}) {
    auto f = parse({"--verbose", v});
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(f->get_bool("verbose", false)) << v;
  }
  auto f = parse({"--verbose", "no"});
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->get_bool("verbose", true));
}

TEST(Flags, NegativeNumberAsValue) {
  auto f = parse({"--rate", "-0.5"});
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->get_double("rate", 0.0), -0.5);
}

TEST(Flags, UnknownFlagRejected) {
  EXPECT_FALSE(parse({"--bogus", "1"}).has_value());
}

TEST(Flags, Positional) {
  auto f = parse({"input.csv", "--count=1", "more"});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->positional(),
            (std::vector<std::string>{"input.csv", "more"}));
}

TEST(Flags, BadIntMarksInvalid) {
  auto f = parse({"--count", "abc"});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->get_int("count", 9), 9);
  EXPECT_FALSE(f->valid());
}

TEST(Flags, BadDoubleMarksInvalid) {
  auto f = parse({"--rate", "fast"});
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->get_double("rate", 1.5), 1.5);
  EXPECT_FALSE(f->valid());
}

TEST(Flags, UsageMentionsEveryFlag) {
  const std::string u = Flags::usage("prog", kAllowed);
  for (const auto& [name, _] : kAllowed) {
    EXPECT_NE(u.find("--" + name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace bc
