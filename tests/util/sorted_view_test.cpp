#include "util/sorted_view.hpp"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace bc::util {
namespace {

TEST(SortedView, MapIteratesInKeyOrder) {
  std::unordered_map<int, std::string> m{
      {7, "seven"}, {1, "one"}, {4, "four"}, {-2, "minus-two"}};
  std::vector<int> keys;
  std::vector<std::string> values;
  for (const auto& [k, v] : sorted_view(m)) {
    keys.push_back(k);
    values.push_back(v);
  }
  EXPECT_EQ(keys, (std::vector<int>{-2, 1, 4, 7}));
  EXPECT_EQ(values,
            (std::vector<std::string>{"minus-two", "one", "four", "seven"}));
}

TEST(SortedView, SetIteratesInValueOrder) {
  std::unordered_set<int> s{9, 3, 27, 1};
  std::vector<int> out;
  for (int v : sorted_view(s)) out.push_back(v);
  EXPECT_EQ(out, (std::vector<int>{1, 3, 9, 27}));
}

TEST(SortedView, ReferencesAliasTheContainer) {
  std::unordered_map<int, int> m{{1, 10}, {2, 20}};
  const auto view = sorted_view(m);
  for (const auto& kv : view) {
    EXPECT_EQ(&kv, &*m.find(kv.first));
  }
}

TEST(SortedView, EmptyContainers) {
  const std::unordered_map<int, int> m;
  const std::unordered_set<int> s;
  EXPECT_TRUE(sorted_view(m).empty());
  EXPECT_EQ(sorted_view(m).size(), 0u);
  EXPECT_EQ(sorted_view(s).begin(), sorted_view(s).end());
  EXPECT_TRUE(sorted_keys(m).empty());
}

TEST(SortedView, SortedKeysMapAndSet) {
  std::unordered_map<std::string, int> m{{"b", 1}, {"a", 2}, {"c", 3}};
  EXPECT_EQ(sorted_keys(m), (std::vector<std::string>{"a", "b", "c"}));
  std::unordered_set<std::string> s{"z", "x", "y"};
  EXPECT_EQ(sorted_keys(s), (std::vector<std::string>{"x", "y", "z"}));
}

TEST(SortedView, StableAcrossInsertionOrders) {
  // The same logical map built in two insertion orders (and therefore with
  // potentially different bucket layouts) must present the same view.
  std::unordered_map<int, int> a;
  std::unordered_map<int, int> b;
  for (int i = 0; i < 100; ++i) a[i * 37 % 101] = i;
  for (int i = 99; i >= 0; --i) b[i * 37 % 101] = i;
  ASSERT_EQ(a.size(), b.size());
  std::vector<std::pair<int, int>> va;
  std::vector<std::pair<int, int>> vb;
  for (const auto& [k, v] : sorted_view(a)) va.emplace_back(k, v);
  for (const auto& [k, v] : sorted_view(b)) vb.emplace_back(k, v);
  EXPECT_EQ(va, vb);
}

}  // namespace
}  // namespace bc::util
