#include "util/table.hpp"

#include <gtest/gtest.h>

namespace bc {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a | long_header |"), std::string::npos);
  EXPECT_NE(s.find("| 1 | 2           |"), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  EXPECT_EQ(t.to_csv(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-1.0, 0), "-1");
}

TEST(FmtBytes, Units) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KiB");
  EXPECT_EQ(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
  EXPECT_EQ(fmt_bytes(1536LL * 1024 * 1024), "1.50 GiB");
}

TEST(FmtBytes, Negative) {
  EXPECT_EQ(fmt_bytes(-2048), "-2.00 KiB");
  EXPECT_EQ(fmt_bytes(0), "0 B");
}

}  // namespace
}  // namespace bc
