// Unit tests for util/checked.hpp — the overflow-policy helpers the
// Bytes accounting paths (and bc-analyze rule V1) rely on.
#include "util/checked.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace bc::util {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(Checked, AddPlainValues) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_add(-7, 7), 0);
  EXPECT_EQ(checked_add(kMax - 1, 1), kMax);
  EXPECT_EQ(checked_add(kMin + 1, -1), kMin);
}

TEST(Checked, MulPlainValues) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_EQ(checked_mul(-4, 5), -20);
  EXPECT_EQ(checked_mul(kMax, 1), kMax);
  EXPECT_EQ(checked_mul(kMin, 1), kMin);
  EXPECT_EQ(checked_mul(kMax / 2, 2), kMax - 1);
}

#ifdef NDEBUG
// Release builds: the checked forms return the two's-complement wrap
// (computed without UB by the builtin) instead of trapping.
TEST(Checked, ReleaseWrapIsDefined) {
  EXPECT_EQ(checked_add(kMax, 1), kMin);
  EXPECT_EQ(checked_add(kMin, -1), kMax);
}
#else
// Debug builds: an overflowing checked op must trip BC_DASSERT.
TEST(CheckedDeathTest, DebugOverflowAsserts) {
  EXPECT_DEATH(checked_add(kMax, 1), "checked_add");
  EXPECT_DEATH(checked_add(kMin, -1), "checked_add");
  EXPECT_DEATH(checked_mul(kMax, 2), "checked_mul");
}
#endif

TEST(Saturating, AddClampsAtBothEndpoints) {
  EXPECT_EQ(saturating_add(2, 3), 5);
  EXPECT_EQ(saturating_add(kMax, 1), kMax);
  EXPECT_EQ(saturating_add(kMax, kMax), kMax);
  EXPECT_EQ(saturating_add(kMin, -1), kMin);
  EXPECT_EQ(saturating_add(kMin, kMin), kMin);
  EXPECT_EQ(saturating_add(kMax, kMin), -1);  // no overflow: exact
}

TEST(Saturating, SubClampsAtBothEndpoints) {
  EXPECT_EQ(saturating_sub(5, 2), 3);
  EXPECT_EQ(saturating_sub(kMin, 1), kMin);
  EXPECT_EQ(saturating_sub(kMax, -1), kMax);
  EXPECT_EQ(saturating_sub(0, kMin), kMax);  // |kMin| is kMax + 1: clamp
  EXPECT_EQ(saturating_sub(-1, kMin), kMax);  // exactly representable
}

TEST(Saturating, EndpointIdentities) {
  EXPECT_EQ(saturating_add(kMax, 0), kMax);
  EXPECT_EQ(saturating_add(kMin, 0), kMin);
  EXPECT_EQ(saturating_sub(kMin, 0), kMin);
  EXPECT_EQ(saturating_sub(kMax, 0), kMax);
}

}  // namespace
}  // namespace bc::util
