// Tests for the FlowGraph structural-generation counter and the EdgeView
// invalidation guard — the dynamic counterpart of bc-analyze rule L2
// (invalidated-view). Debug builds must fail stop on a stale view; release
// builds must pay nothing for the guard (EdgeView is layout-identical to
// std::span<const Edge>, checked at compile time).
#include <cstdint>
#include <span>

#include "graph/flow_graph.hpp"
#include "gtest/gtest.h"

namespace bc::graph {
namespace {

TEST(GenerationTest, BumpsOnEveryStructuralMutation) {
  FlowGraph g;
  const std::uint64_t start = g.generation();
  g.add_capacity(1, 2, 10);  // edge insert
  EXPECT_GT(g.generation(), start);

  const std::uint64_t after_insert = g.generation();
  g.set_capacity(1, 2, 0);  // edge erase
  EXPECT_GT(g.generation(), after_insert);

  const std::uint64_t after_erase = g.generation();
  g.set_capacity(1, 2, 3);  // set_capacity insert path
  EXPECT_GT(g.generation(), after_erase);

  const std::uint64_t after_set = g.generation();
  g.add_capacity(5, 6, 1);
  g.remove_node(5);
  EXPECT_GT(g.generation(), after_set);

  const std::uint64_t before_clear = g.generation();
  g.clear();
  EXPECT_GT(g.generation(), before_clear);
}

TEST(GenerationTest, ContentUpdatesDoNotBump) {
  // In-place capacity updates and node interning leave every outstanding
  // view's storage where it was: the counter must not move, or the debug
  // guard would reject views that are in fact still valid.
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  const std::uint64_t gen = g.generation();
  g.add_capacity(1, 2, 5);  // saturating in-place update
  EXPECT_EQ(g.generation(), gen);
  g.set_capacity(1, 2, 7);  // in-place replace
  EXPECT_EQ(g.generation(), gen);
  g.add_capacity(3, 4, 0);  // node creation without an edge
  EXPECT_EQ(g.generation(), gen);
}

TEST(GenerationTest, ViewsStayValidAcrossContentUpdates) {
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  const EdgeView out = g.out_edges(1);
  g.add_capacity(1, 2, 5);  // in-place: no structural mutation
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cap, 15);
}

#ifndef NDEBUG
TEST(GenerationDeathTest, StaleViewAbortsInDebugBuilds) {
  // The injected dangling-span bug: hold out_edges() across a structural
  // mutation, then touch the view. Statically this is an L2 finding;
  // dynamically the generation snapshot no longer matches and the next
  // access must abort.
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  EXPECT_DEATH(
      {
        const EdgeView out = g.out_edges(1);
        g.add_capacity(3, 1, 4);  // insert: invalidates `out`
        (void)out.size();
      },
      "BC_ASSERT failed");
}
#else
TEST(GenerationDeathTest, StaleViewAbortsInDebugBuilds) {
  GTEST_SKIP() << "generation checks compile out in NDEBUG builds";
}
#endif

TEST(GenerationTest, EmptyViewForUnknownNodeNeverTrips) {
  FlowGraph g;
  const EdgeView none = g.out_edges(99);
  g.add_capacity(1, 2, 10);
  // A default-constructed view has no owner to go stale against.
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace bc::graph
