// Additional algebraic properties of the maxflow implementations, checked
// on random graphs.
#include <gtest/gtest.h>

#include "graph/maxflow.hpp"
#include "util/rng.hpp"

namespace bc::graph {
namespace {

FlowGraph random_graph(Rng& rng, PeerId nodes, int edges, Bytes max_cap) {
  FlowGraph g;
  for (int e = 0; e < edges; ++e) {
    const auto a = static_cast<PeerId>(rng.index(nodes));
    auto b = static_cast<PeerId>(rng.index(nodes));
    if (a == b) b = (b + 1) % nodes;
    g.add_capacity(a, b, rng.uniform_int(1, max_cap));
  }
  g.add_capacity(0, 1, 0);
  g.add_capacity(nodes - 1, nodes - 2, 0);
  return g;
}

class MaxflowAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxflowAlgebra, ScalingCapacitiesScalesFlow) {
  Rng rng(GetParam());
  const FlowGraph g = random_graph(rng, 10, 30, 100);
  FlowGraph scaled;
  for (PeerId u : g.nodes()) {
    for (const auto& [v, c] : g.out_edges(u)) {
      scaled.add_capacity(u, v, c * 7);
    }
  }
  scaled.add_capacity(0, 1, 0);
  scaled.add_capacity(9, 8, 0);
  EXPECT_EQ(max_flow_edmonds_karp(scaled, 0, 9),
            7 * max_flow_edmonds_karp(g, 0, 9));
  EXPECT_EQ(max_flow_two_hop(scaled, 0, 9), 7 * max_flow_two_hop(g, 0, 9));
}

TEST_P(MaxflowAlgebra, AddingAnEdgeNeverDecreasesFlow) {
  Rng rng(GetParam() ^ 0x55ULL);
  FlowGraph g = random_graph(rng, 8, 20, 50);
  const Bytes before = max_flow_edmonds_karp(g, 0, 7);
  const Bytes before2h = max_flow_two_hop(g, 0, 7);
  for (int round = 0; round < 10; ++round) {
    const auto a = static_cast<PeerId>(rng.index(8));
    auto b = static_cast<PeerId>(rng.index(8));
    if (a == b) b = (b + 1) % 8;
    g.add_capacity(a, b, rng.uniform_int(1, 30));
    EXPECT_GE(max_flow_edmonds_karp(g, 0, 7), before);
    EXPECT_GE(max_flow_two_hop(g, 0, 7), before2h);
  }
}

TEST_P(MaxflowAlgebra, GrowingAnEdgeGrowsTwoHopMonotonically) {
  // BarterCast applies gossip with max-merge, so edges only grow; the
  // reputation flows must be monotone under that operation.
  Rng rng(GetParam() ^ 0x99ULL);
  FlowGraph g = random_graph(rng, 8, 16, 40);
  Bytes prev = max_flow_two_hop(g, 2, 5);
  for (int round = 0; round < 20; ++round) {
    const auto a = static_cast<PeerId>(rng.index(8));
    auto b = static_cast<PeerId>(rng.index(8));
    if (a == b) b = (b + 1) % 8;
    const Bytes current = g.capacity(a, b);
    g.set_capacity(a, b, current + rng.uniform_int(1, 20));
    const Bytes now = max_flow_two_hop(g, 2, 5);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST_P(MaxflowAlgebra, TwoHopDecomposition) {
  // two_hop(s,t) == direct + sum over intermediates of min(in, out).
  Rng rng(GetParam() ^ 0x31ULL);
  const FlowGraph g = random_graph(rng, 9, 27, 60);
  for (PeerId t = 1; t < 9; ++t) {
    Bytes expected = g.capacity(0, t);
    for (PeerId v = 0; v < 9; ++v) {
      if (v == 0 || v == t) continue;
      expected += std::min(g.capacity(0, v), g.capacity(v, t));
    }
    EXPECT_EQ(max_flow_two_hop(g, 0, t), expected) << "t=" << t;
  }
}

TEST_P(MaxflowAlgebra, FlowIsZeroIffNoPath) {
  // Build two disjoint clusters; flow across must be zero, within positive.
  Rng rng(GetParam() ^ 0x17ULL);
  FlowGraph g;
  for (int e = 0; e < 12; ++e) {
    const auto a = static_cast<PeerId>(rng.index(4));
    auto b = static_cast<PeerId>(rng.index(4));
    if (a == b) b = (b + 1) % 4;
    g.add_capacity(a, b, rng.uniform_int(1, 9));
    g.add_capacity(a + 10, b + 10, rng.uniform_int(1, 9));
  }
  for (PeerId s = 0; s < 4; ++s) {
    for (PeerId t = 10; t < 14; ++t) {
      EXPECT_EQ(max_flow_ford_fulkerson(g, s, t), 0);
      EXPECT_EQ(max_flow_two_hop(g, s, t), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxflowAlgebra,
                         ::testing::Values(3ULL, 5ULL, 8ULL, 13ULL));

}  // namespace
}  // namespace bc::graph
