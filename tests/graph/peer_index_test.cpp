#include "graph/peer_index.hpp"

#include <gtest/gtest.h>

namespace bc::graph {
namespace {

TEST(PeerIndex, InternAssignsDenseSlots) {
  PeerIndex idx;
  EXPECT_EQ(idx.intern(100), 0u);
  EXPECT_EQ(idx.intern(50), 1u);
  EXPECT_EQ(idx.intern(200), 2u);
  // Re-interning is idempotent.
  EXPECT_EQ(idx.intern(50), 1u);
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.slot_count(), 3u);
  EXPECT_TRUE(idx.check_invariants());
}

TEST(PeerIndex, FindAndPeerRoundTrip) {
  PeerIndex idx;
  idx.intern(7);
  idx.intern(3);
  EXPECT_EQ(idx.find(7), 0u);
  EXPECT_EQ(idx.find(3), 1u);
  EXPECT_EQ(idx.find(99), kNoNode);
  EXPECT_EQ(idx.peer(0), 7u);
  EXPECT_EQ(idx.peer(1), 3u);
  EXPECT_EQ(idx.peer(5), kInvalidPeer);
  EXPECT_TRUE(idx.contains(7));
  EXPECT_FALSE(idx.contains(99));
}

TEST(PeerIndex, EraseFreesSlotAndReusesSmallestFirst) {
  PeerIndex idx;
  idx.intern(10);  // slot 0
  idx.intern(20);  // slot 1
  idx.intern(30);  // slot 2
  idx.erase(20);
  idx.erase(10);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.slot_count(), 3u);  // slots are retained, not compacted
  EXPECT_EQ(idx.find(10), kNoNode);
  EXPECT_EQ(idx.peer(0), kInvalidPeer);
  EXPECT_TRUE(idx.check_invariants());
  // Smallest free slot is recycled first, deterministically.
  EXPECT_EQ(idx.intern(40), 0u);
  EXPECT_EQ(idx.intern(50), 1u);
  EXPECT_EQ(idx.intern(60), 3u);  // free list exhausted: table grows
  EXPECT_TRUE(idx.check_invariants());
}

TEST(PeerIndex, EraseUnknownIsNoop) {
  PeerIndex idx;
  idx.intern(1);
  idx.erase(42);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_TRUE(idx.check_invariants());
}

TEST(PeerIndex, ReinternAfterEraseMayChangeSlot) {
  PeerIndex idx;
  idx.intern(10);  // slot 0
  idx.intern(20);  // slot 1
  idx.erase(10);
  idx.intern(30);  // recycles slot 0
  EXPECT_EQ(idx.intern(10), 2u);  // 10 returns as a fresh peer
  EXPECT_TRUE(idx.check_invariants());
}

TEST(PeerIndex, IdsSortedAscending) {
  PeerIndex idx;
  idx.intern(9);
  idx.intern(2);
  idx.intern(5);
  idx.erase(5);
  EXPECT_EQ(idx.ids_sorted(), (std::vector<PeerId>{2, 9}));
}

TEST(PeerIndex, ClearResets) {
  PeerIndex idx;
  idx.intern(1);
  idx.intern(2);
  idx.erase(1);
  idx.clear();
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.slot_count(), 0u);
  EXPECT_EQ(idx.intern(5), 0u);
  EXPECT_TRUE(idx.check_invariants());
}

}  // namespace
}  // namespace bc::graph
