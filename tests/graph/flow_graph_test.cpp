#include "graph/flow_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace bc::graph {
namespace {

TEST(FlowGraph, StartsEmpty) {
  FlowGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.capacity(1, 2), 0);
  EXPECT_FALSE(g.has_node(1));
}

TEST(FlowGraph, AddCapacityAccumulates) {
  FlowGraph g;
  g.add_capacity(1, 2, 100);
  g.add_capacity(1, 2, 50);
  EXPECT_EQ(g.capacity(1, 2), 150);
  EXPECT_EQ(g.capacity(2, 1), 0);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.check_invariants());
}

TEST(FlowGraph, ZeroAddCreatesNodesNotEdges) {
  FlowGraph g;
  g.add_capacity(1, 2, 0);
  EXPECT_TRUE(g.has_node(1));
  EXPECT_TRUE(g.has_node(2));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.check_invariants());
}

TEST(FlowGraph, SetCapacityReplaces) {
  FlowGraph g;
  g.add_capacity(1, 2, 100);
  g.set_capacity(1, 2, 30);
  EXPECT_EQ(g.capacity(1, 2), 30);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(FlowGraph, SetCapacityZeroRemovesEdge) {
  FlowGraph g;
  g.add_capacity(1, 2, 100);
  g.set_capacity(1, 2, 0);
  EXPECT_EQ(g.capacity(1, 2), 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.in_edges(2).empty());
  EXPECT_TRUE(g.check_invariants());
}

TEST(FlowGraph, SetCapacityCreatesEdge) {
  FlowGraph g;
  g.set_capacity(3, 4, 77);
  EXPECT_EQ(g.capacity(3, 4), 77);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(FlowGraph, OutAndInEdgesMirror) {
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  g.add_capacity(3, 2, 20);
  g.add_capacity(1, 4, 30);
  EXPECT_EQ(g.out_edges(1).size(), 2u);
  ASSERT_EQ(g.in_edges(2).size(), 2u);
  // In-edge spans are ascending by tail peer and carry the edge capacity.
  EXPECT_EQ(g.in_edges(2)[0], (Edge{1, 10}));
  EXPECT_EQ(g.in_edges(2)[1], (Edge{3, 20}));
  EXPECT_TRUE(g.check_invariants());
}

TEST(FlowGraph, UnknownNodeAccessorsAreEmpty) {
  FlowGraph g;
  EXPECT_TRUE(g.out_edges(9).empty());
  EXPECT_TRUE(g.in_edges(9).empty());
}

TEST(FlowGraph, NodesListsAll) {
  FlowGraph g;
  g.add_capacity(5, 7, 1);
  g.add_capacity(7, 9, 1);
  auto nodes = g.nodes();
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<PeerId>{5, 7, 9}));
}

TEST(FlowGraph, TotalCapacity) {
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  g.add_capacity(2, 3, 20);
  EXPECT_EQ(g.total_capacity(), 30);
}

TEST(FlowGraph, RemoveNodeDropsIncidentEdges) {
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  g.add_capacity(2, 3, 20);
  g.add_capacity(3, 1, 30);
  g.remove_node(2);
  EXPECT_FALSE(g.has_node(2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.capacity(3, 1), 30);
  EXPECT_EQ(g.capacity(1, 2), 0);
  EXPECT_TRUE(g.check_invariants());
}

TEST(FlowGraph, RemoveUnknownNodeIsNoop) {
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  g.remove_node(99);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(FlowGraph, ClearResets) {
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  g.clear();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.check_invariants());
}

TEST(FlowGraph, NodesAreSortedRegardlessOfInsertionOrder) {
  // Regression: nodes() used to surface unordered_map iteration order,
  // which leaks implementation-defined ordering into gossip selection and
  // exports. It must be ascending whatever the insertion order.
  FlowGraph a;
  a.add_capacity(9, 2, 1);
  a.add_capacity(5, 7, 1);
  a.add_capacity(1, 9, 1);
  FlowGraph b;
  b.add_capacity(1, 9, 1);
  b.add_capacity(5, 7, 1);
  b.add_capacity(9, 2, 1);
  const std::vector<PeerId> expected{1, 2, 5, 7, 9};
  EXPECT_EQ(a.nodes(), expected);
  EXPECT_EQ(b.nodes(), expected);
}

TEST(FlowGraph, EdgeSpansSortedAscending) {
  FlowGraph g;
  g.add_capacity(5, 9, 1);
  g.add_capacity(5, 2, 2);
  g.add_capacity(5, 7, 3);
  g.add_capacity(4, 7, 4);
  g.add_capacity(8, 7, 5);
  const auto out = g.out_edges(5);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Edge{2, 2}));
  EXPECT_EQ(out[1], (Edge{7, 3}));
  EXPECT_EQ(out[2], (Edge{9, 1}));
  const auto in = g.in_edges(7);
  ASSERT_EQ(in.size(), 3u);
  EXPECT_EQ(in[0], (Edge{4, 4}));
  EXPECT_EQ(in[1], (Edge{5, 3}));
  EXPECT_EQ(in[2], (Edge{8, 5}));
}

TEST(FlowGraph, ChurnAddRemoveReAddSamePeer) {
  FlowGraph g;
  g.add_capacity(1, 2, 10);
  g.add_capacity(2, 3, 20);
  g.add_capacity(3, 1, 30);
  g.remove_node(2);
  EXPECT_TRUE(g.check_invariants());
  // Re-adding the same PeerId must behave as a fresh node: the old
  // incident edges stay gone and the freed slot is recycled.
  g.add_capacity(2, 1, 7);
  EXPECT_TRUE(g.has_node(2));
  EXPECT_EQ(g.capacity(1, 2), 0);
  EXPECT_EQ(g.capacity(2, 3), 0);
  EXPECT_EQ(g.capacity(2, 1), 7);
  EXPECT_EQ(g.nodes(), (std::vector<PeerId>{1, 2, 3}));
  EXPECT_EQ(g.index().slot_count(), 3u);
  EXPECT_TRUE(g.check_invariants());
  // Further churn keeps nodes() sorted and the invariants intact.
  g.remove_node(2);
  g.remove_node(1);
  g.add_capacity(5, 3, 1);
  EXPECT_EQ(g.nodes(), (std::vector<PeerId>{3, 5}));
  EXPECT_TRUE(g.check_invariants());
}

TEST(FlowGraph, ClearResetsIndexForReuse) {
  FlowGraph g;
  g.add_capacity(4, 2, 10);
  g.add_capacity(2, 9, 5);
  g.clear();
  EXPECT_EQ(g.index().slot_count(), 0u);
  g.add_capacity(9, 4, 3);
  EXPECT_EQ(g.nodes(), (std::vector<PeerId>{4, 9}));
  EXPECT_EQ(g.capacity(4, 2), 0);
  EXPECT_EQ(g.capacity(9, 4), 3);
  EXPECT_TRUE(g.check_invariants());
}

TEST(FlowGraphDeathTest, SelfEdgeRejected) {
  FlowGraph g;
  EXPECT_DEATH(g.add_capacity(1, 1, 10), "self-edges");
}

TEST(FlowGraphDeathTest, NegativeCapacityRejected) {
  FlowGraph g;
  EXPECT_DEATH(g.add_capacity(1, 2, -5), "amount");
}

}  // namespace
}  // namespace bc::graph
