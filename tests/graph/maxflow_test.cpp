#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bc::graph {
namespace {

FlowGraph diamond() {
  // s=0 -> {1,2} -> t=3 plus a direct s->t edge.
  FlowGraph g;
  g.add_capacity(0, 1, 10);
  g.add_capacity(0, 2, 5);
  g.add_capacity(1, 3, 7);
  g.add_capacity(2, 3, 9);
  g.add_capacity(0, 3, 2);
  return g;
}

TEST(MaxflowFF, DirectEdgeOnly) {
  FlowGraph g;
  g.add_capacity(0, 1, 42);
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 1), 42);
  EXPECT_EQ(max_flow_ford_fulkerson(g, 1, 0), 0);
}

TEST(MaxflowFF, Diamond) {
  const FlowGraph g = diamond();
  // min(10,7) + min(5,9) + 2 = 14.
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 3), 14);
}

TEST(MaxflowFF, SourceEqualsTarget) {
  const FlowGraph g = diamond();
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 0), 0);
}

TEST(MaxflowFF, UnknownNodes) {
  const FlowGraph g = diamond();
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 99), 0);
  EXPECT_EQ(max_flow_ford_fulkerson(g, 99, 0), 0);
}

TEST(MaxflowFF, DisconnectedIsZero) {
  FlowGraph g;
  g.add_capacity(0, 1, 5);
  g.add_capacity(2, 3, 5);
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 3), 0);
}

TEST(MaxflowFF, RequiresResidualReversal) {
  // Classic case where the greedy DFS must undo flow via reverse edges:
  //   s -> a -> t, s -> b -> t, a -> b.
  FlowGraph g;
  const PeerId s = 0, a = 1, b = 2, t = 3;
  g.add_capacity(s, a, 10);
  g.add_capacity(s, b, 10);
  g.add_capacity(a, t, 10);
  g.add_capacity(b, t, 10);
  g.add_capacity(a, b, 10);
  EXPECT_EQ(max_flow_ford_fulkerson(g, s, t), 20);
}

TEST(MaxflowFF, LongChain) {
  FlowGraph g;
  for (PeerId i = 0; i < 10; ++i) g.add_capacity(i, i + 1, 5 + i);
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 10), 5);  // bottleneck at first
}

TEST(MaxflowFF, PathBoundOneUsesOnlyDirectEdge) {
  const FlowGraph g = diamond();
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 3, 1), 2);
}

TEST(MaxflowFF, PathBoundTwoMatchesClosedForm) {
  const FlowGraph g = diamond();
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 3, 2), max_flow_two_hop(g, 0, 3));
}

TEST(MaxflowFF, BoundedNeverExceedsUnbounded) {
  const FlowGraph g = diamond();
  const Bytes full = max_flow_ford_fulkerson(g, 0, 3);
  for (int bound : {1, 2, 3, 4}) {
    EXPECT_LE(max_flow_ford_fulkerson(g, 0, 3, bound), full);
  }
}

TEST(MaxflowEK, MatchesFFOnDiamond) {
  const FlowGraph g = diamond();
  EXPECT_EQ(max_flow_edmonds_karp(g, 0, 3), 14);
}

TEST(MaxflowTwoHop, DirectPlusIntermediates) {
  const FlowGraph g = diamond();
  // 2 (direct) + min(10,7) + min(5,9) = 14, same as full here.
  EXPECT_EQ(max_flow_two_hop(g, 0, 3), 14);
}

TEST(MaxflowTwoHop, IgnoresLongerPaths) {
  FlowGraph g;
  g.add_capacity(0, 1, 10);
  g.add_capacity(1, 2, 10);
  g.add_capacity(2, 3, 10);
  EXPECT_EQ(max_flow_two_hop(g, 0, 3), 0);
  EXPECT_EQ(max_flow_ford_fulkerson(g, 0, 3), 10);
}

TEST(MaxflowTwoHop, SelfAndUnknown) {
  const FlowGraph g = diamond();
  EXPECT_EQ(max_flow_two_hop(g, 0, 0), 0);
  EXPECT_EQ(max_flow_two_hop(g, 7, 3), 0);
}

// The containment property BarterCast relies on (§3.4): flow into the
// evaluator is bounded by the evaluator's incoming edge capacities, no
// matter what the rest of the graph claims.
TEST(MaxflowTwoHop, ContainmentByEvaluatorInEdges) {
  FlowGraph g;
  const PeerId liar = 5, v = 6, me = 7;
  g.add_capacity(liar, v, 1'000'000'000);  // inflated claim
  g.add_capacity(v, me, 100);              // my real experience
  EXPECT_EQ(max_flow_two_hop(g, liar, me), 100);
  EXPECT_EQ(max_flow_ford_fulkerson(g, liar, me), 100);
}

// --- randomized cross-checks -------------------------------------------

FlowGraph random_graph(Rng& rng, PeerId nodes, int edges, Bytes max_cap) {
  FlowGraph g;
  for (int e = 0; e < edges; ++e) {
    const auto a = static_cast<PeerId>(rng.index(nodes));
    auto b = static_cast<PeerId>(rng.index(nodes));
    if (a == b) b = (b + 1) % nodes;
    g.add_capacity(a, b, rng.uniform_int(1, max_cap));
  }
  // Make sure endpoints exist even if no edge touched them.
  g.add_capacity(0, 1, 0);
  g.add_capacity(nodes - 1, nodes - 2, 0);
  return g;
}

class MaxflowRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxflowRandom, FordFulkersonEqualsEdmondsKarp) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const FlowGraph g = random_graph(rng, 12, 40, 50);
    const PeerId s = 0, t = 11;
    EXPECT_EQ(max_flow_ford_fulkerson(g, s, t), max_flow_edmonds_karp(g, s, t))
        << "seed=" << GetParam() << " round=" << round;
  }
}

TEST_P(MaxflowRandom, TwoHopClosedFormEqualsBoundedFF) {
  Rng rng(GetParam() ^ 0xabcdULL);
  for (int round = 0; round < 10; ++round) {
    const FlowGraph g = random_graph(rng, 10, 35, 30);
    for (PeerId t = 1; t < 10; ++t) {
      EXPECT_EQ(max_flow_two_hop(g, 0, t),
                max_flow_ford_fulkerson(g, 0, t, 2))
          << "seed=" << GetParam() << " t=" << t;
    }
  }
}

TEST_P(MaxflowRandom, BoundedFlowMonotoneInPathLength) {
  Rng rng(GetParam() ^ 0x1234ULL);
  const FlowGraph g = random_graph(rng, 10, 30, 20);
  Bytes prev = 0;
  for (int bound : {1, 2, 3, 5, 9}) {
    const Bytes f = max_flow_ford_fulkerson(g, 0, 9, bound);
    EXPECT_GE(f, prev) << "bound=" << bound;
    prev = f;
  }
  EXPECT_LE(prev, max_flow_ford_fulkerson(g, 0, 9));
}

TEST_P(MaxflowRandom, FlowBoundedByCuts) {
  Rng rng(GetParam() ^ 0x77ULL);
  const FlowGraph g = random_graph(rng, 8, 24, 40);
  const Bytes flow = max_flow_ford_fulkerson(g, 0, 7);
  // Out-capacity of the source and in-capacity of the sink are both cuts.
  Bytes out_cap = 0;
  for (const auto& [_, c] : g.out_edges(0)) out_cap += c;
  Bytes in_cap = 0;
  for (const auto& [_, c] : g.in_edges(7)) in_cap += c;
  EXPECT_LE(flow, out_cap);
  EXPECT_LE(flow, in_cap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxflowRandom,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 99ULL, 12345ULL,
                                           777ULL));

}  // namespace
}  // namespace bc::graph
