// Differential suite: the dense FlowGraph/maxflow stack vs. the retained
// hash-map ReferenceFlowGraph oracle (reference_graph.hpp). Both sides are
// driven through identical randomized operation sequences — including node
// churn — and every query surface plus all three maxflow variants must
// agree at every checkpoint. Runs under the asan-ubsan preset in CI.
#include <gtest/gtest.h>

#include <vector>

#include "graph/flow_graph.hpp"
#include "graph/maxflow.hpp"
#include "graph/reference_graph.hpp"
#include "util/rng.hpp"

namespace bc::graph {
namespace {

constexpr PeerId kPeers = 12;  // small world: dense enough for 2-hop paths

class DifferentialRandom : public ::testing::TestWithParam<std::uint64_t> {};

void expect_same_state(const FlowGraph& dense, const ReferenceFlowGraph& ref) {
  ASSERT_TRUE(dense.check_invariants());
  ASSERT_TRUE(ref.check_invariants());
  EXPECT_EQ(dense.num_nodes(), ref.num_nodes());
  EXPECT_EQ(dense.num_edges(), ref.num_edges());
  EXPECT_EQ(dense.nodes(), ref.nodes());
  EXPECT_EQ(dense.total_capacity(), ref.total_capacity());
  for (PeerId u = 0; u < kPeers; ++u) {
    EXPECT_EQ(dense.has_node(u), ref.has_node(u));
    EXPECT_EQ(dense.out_capacity(u), ref.out_capacity(u));
    EXPECT_EQ(dense.in_capacity(u), ref.in_capacity(u));
    for (PeerId v = 0; v < kPeers; ++v) {
      EXPECT_EQ(dense.capacity(u, v), ref.capacity(u, v))
          << "edge (" << u << ", " << v << ")";
    }
  }
}

void expect_same_flows(const FlowGraph& dense, const ReferenceFlowGraph& ref,
                       PeerId s, PeerId t) {
  EXPECT_EQ(max_flow_two_hop(dense, s, t), ref_max_flow_two_hop(ref, s, t))
      << "two_hop(" << s << ", " << t << ")";
  EXPECT_EQ(max_flow_ford_fulkerson(dense, s, t, 2),
            ref_max_flow_ford_fulkerson(ref, s, t, 2))
      << "bounded_ff(" << s << ", " << t << ")";
  EXPECT_EQ(max_flow_ford_fulkerson(dense, s, t),
            ref_max_flow_ford_fulkerson(ref, s, t))
      << "full_ff(" << s << ", " << t << ")";
  EXPECT_EQ(max_flow_edmonds_karp(dense, s, t),
            ref_max_flow_edmonds_karp(ref, s, t))
      << "edmonds_karp(" << s << ", " << t << ")";
}

TEST_P(DifferentialRandom, RandomOpsAgreeEverywhere) {
  Rng rng(GetParam());
  FlowGraph dense;
  ReferenceFlowGraph ref;
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    const PeerId u = static_cast<PeerId>(rng.uniform_int(0, kPeers - 1));
    PeerId v = static_cast<PeerId>(rng.uniform_int(0, kPeers - 2));
    if (v >= u) ++v;  // uniform over v != u
    const Bytes amount = rng.uniform_int(0, 1000);
    if (op < 6) {  // mostly accumulating transfers, like gossip merges
      dense.add_capacity(u, v, amount);
      ref.add_capacity(u, v, amount);
    } else if (op < 9) {
      dense.set_capacity(u, v, amount);
      ref.set_capacity(u, v, amount);
    } else {  // churn: peers leave and may come back later
      dense.remove_node(u);
      ref.remove_node(u);
    }
    if (step % 40 == 39) expect_same_state(dense, ref);
  }
  expect_same_state(dense, ref);
  for (PeerId s = 0; s < kPeers; ++s) {
    for (PeerId t = 0; t < kPeers; ++t) {
      if (s == t) continue;
      expect_same_flows(dense, ref, s, t);
    }
  }
}

TEST_P(DifferentialRandom, FlowsAgreeOnDenserGraphs) {
  Rng rng(GetParam() ^ 0xdecafbadULL);
  FlowGraph dense;
  ReferenceFlowGraph ref;
  // No churn here: build a denser web so augmenting paths get long enough
  // to exercise the reverse-residual bookkeeping in all variants.
  for (int i = 0; i < 80; ++i) {
    const PeerId u = static_cast<PeerId>(rng.uniform_int(0, kPeers - 1));
    PeerId v = static_cast<PeerId>(rng.uniform_int(0, kPeers - 2));
    if (v >= u) ++v;
    const Bytes amount = rng.uniform_int(1, 500);
    dense.add_capacity(u, v, amount);
    ref.add_capacity(u, v, amount);
  }
  expect_same_state(dense, ref);
  for (int probe = 0; probe < 60; ++probe) {
    const PeerId s = static_cast<PeerId>(rng.uniform_int(0, kPeers - 1));
    const PeerId t = static_cast<PeerId>(rng.uniform_int(0, kPeers - 1));
    if (s == t) continue;
    expect_same_flows(dense, ref, s, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRandom,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 17ULL, 42ULL,
                                           1234ULL, 99999ULL));

}  // namespace
}  // namespace bc::graph
