// Determinism suite for the sharded observability instruments: the same
// workload recorded through per-chunk shards at --threads 1/2/4/8 must
// produce byte-identical merged snapshots AND byte-identical NDJSON
// metric streams. Shard state is integer-only and chunk boundaries depend
// only on (n, threads), so the folded totals are exact commutative sums —
// any divergence here is a real nondeterminism bug, not FP noise.
//
// Runs under the `parallel` ctest label, so the TSan preset also drives
// the shard routing with real pool workers.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/stream.hpp"
#include "util/concurrency/thread_pool.hpp"

namespace bc::obs {
namespace {

// 997 items (prime, so chunks are uneven at every thread count) across
// three parallel phases with a fold + stream window after each.
constexpr std::size_t kItems = 997;
constexpr int kPhases = 3;

double workload_value(std::size_t i, int phase) {
  const std::uint64_t mixed =
      (static_cast<std::uint64_t>(i) * 2654435761u +
       static_cast<std::uint64_t>(phase) * 97u) %
      2001u;
  return static_cast<double>(mixed) / 1000.0 - 1.0;  // [-1, 1]
}

struct RunOutput {
  std::string metrics_json;
  std::string stream_bytes;
};

RunOutput run_workload(std::size_t threads, const std::string& tag) {
  Registry registry;
  registry.configure_shards(threads);
  Counter& events = registry.counter("events");
  LogHistogram& values =
      registry.log_histogram("values", LogSpec::signed_unit());
  LogHistogram& magnitudes =
      registry.log_histogram("magnitudes", LogSpec::magnitude());

  // Tagged per test case: ctest runs cases concurrently from one binary,
  // so a shared scratch path would race.
  const std::string path = ::testing::TempDir() + "bc_shard_det_" + tag +
                           "_" + std::to_string(threads) + ".ndjson";
  MetricsStream stream;
  EXPECT_TRUE(stream.open(path, registry));

  util::ThreadPool pool(threads);
  for (int phase = 0; phase < kPhases; ++phase) {
    pool.parallel_for(kItems, [&](std::size_t i) {
      events.inc(1 + i % 3);
      values.observe(workload_value(i, phase));
      magnitudes.observe(static_cast<double>(i) *
                         static_cast<double>(phase + 1));
    });
    registry.fold_shards();  // the phase-barrier merge
    stream.emit_window(registry, (phase + 1) * 3600.0);
  }
  stream.close();

  RunOutput out;
  Profiler disabled_profiler;  // keeps the profile section empty/stable
  out.metrics_json = metrics_json(registry, disabled_profiler);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  out.stream_bytes = ss.str();
  std::remove(path.c_str());
  return out;
}

TEST(ShardedObsDeterminism, SnapshotsAndStreamsBitIdenticalAcrossThreads) {
  const RunOutput serial = run_workload(1, "bitid");
  ASSERT_FALSE(serial.stream_bytes.empty());
  // Sanity on the serial run before comparing: every event counted.
  EXPECT_NE(serial.metrics_json.find("\"events\""), std::string::npos);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    const RunOutput parallel = run_workload(threads, "bitid");
    EXPECT_EQ(serial.metrics_json, parallel.metrics_json)
        << "merged snapshot diverged at threads=" << threads;
    EXPECT_EQ(serial.stream_bytes, parallel.stream_bytes)
        << "NDJSON stream diverged at threads=" << threads;
  }
}

TEST(ShardedObsDeterminism, FoldedTotalsMatchClosedForm) {
  // events += 1 + i%3 per item per phase; kItems = 997 => 332 full cycles
  // of (1+2+3) plus one trailing i%3==0 item.
  const std::uint64_t per_phase = 332 * 6 + 1;
  const RunOutput out = run_workload(4, "totals");
  const std::string want =
      "\"events\": " + std::to_string(per_phase * kPhases);
  EXPECT_NE(out.metrics_json.find(want), std::string::npos)
      << out.metrics_json;
}

}  // namespace
}  // namespace bc::obs
