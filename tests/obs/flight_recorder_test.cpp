#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_writer.hpp"

namespace bc::obs {
namespace {

// Golden eviction order: a capacity-4 ring fed 6 events keeps the newest
// 4, and chronological() resolves the wrap-around back to time order.
TEST(FlightRecorder, RingEvictsOldestInOrder) {
  Tracer t;
  t.set_ring_capacity(4);
  t.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    t.instant("e" + std::to_string(i), "test", static_cast<double>(i));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped_events(), 2u);
  const std::vector<TraceEvent> chron = t.chronological();
  ASSERT_EQ(chron.size(), 4u);
  EXPECT_EQ(chron[0].name, "e2");
  EXPECT_EQ(chron[1].name, "e3");
  EXPECT_EQ(chron[2].name, "e4");
  EXPECT_EQ(chron[3].name, "e5");
}

TEST(FlightRecorder, WriteJsonResolvesWrapAround) {
  Tracer t;
  t.set_ring_capacity(2);
  t.set_enabled(true);
  t.instant("a", "c", 1.0);
  t.instant("b", "c", 2.0);
  t.instant("c", "c", 3.0);  // evicts "a"; raw buffer is now [c, b]
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"b\",\"cat\":\"c\",\"ph\":\"i\","
      "\"pid\":0,\"tid\":0,\"ts\":2000000},"
      "{\"name\":\"c\",\"cat\":\"c\",\"ph\":\"i\","
      "\"pid\":0,\"tid\":0,\"ts\":3000000}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(t.to_json(), expected);
}

TEST(FlightRecorder, UnboundedBufferKeepsEverythingChronological) {
  Tracer t;
  t.set_enabled(true);
  for (int i = 0; i < 8; ++i) {
    t.instant("e" + std::to_string(i), "test", static_cast<double>(i));
  }
  EXPECT_EQ(t.dropped_events(), 0u);
  const std::vector<TraceEvent> chron = t.chronological();
  ASSERT_EQ(chron.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(chron[static_cast<std::size_t>(i)].name,
              "e" + std::to_string(i));
  }
}

TEST(FlightRecorder, ResetRestoresEmptyRing) {
  Tracer t;
  t.set_ring_capacity(2);
  t.set_enabled(true);
  t.instant("a", "c", 1.0);
  t.instant("b", "c", 2.0);
  t.instant("c", "c", 3.0);
  t.reset();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped_events(), 0u);
  t.instant("d", "c", 4.0);
  ASSERT_EQ(t.chronological().size(), 1u);
  EXPECT_EQ(t.chronological()[0].name, "d");
}

TEST(FlightRecorder, DumpNowWritesConfiguredPath) {
  Tracer t;
  t.set_enabled(true);
  EXPECT_FALSE(t.dump_now());  // no path configured yet
  t.instant("ev", "c", 1.0);
  const std::string path = ::testing::TempDir() + "bc_flight_dump.json";
  t.set_dump_path(path);
  ASSERT_TRUE(t.dump_now());
  std::string read_back;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    read_back.assign(buf, n);
  }
  EXPECT_EQ(read_back, t.to_json());
  std::remove(path.c_str());
}

TEST(FlightRecorder, SignalDumpIsServedAtPollTime) {
  Tracer& t = Tracer::instance();
  t.reset();
  t.set_enabled(true);
  const std::string path = ::testing::TempDir() + "bc_flight_signal.json";
  t.set_dump_path(path);
  t.instant("before_signal", "c", 1.0);

  EXPECT_FALSE(t.poll_signal_dump());  // nothing requested yet
  t.arm_signal_dump(SIGUSR1);
  std::raise(SIGUSR1);  // handler only sets a flag; no file yet
  EXPECT_TRUE(t.poll_signal_dump());
  EXPECT_FALSE(t.poll_signal_dump());  // request was consumed

  std::string read_back;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[8192];
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    read_back.assign(buf, n);
  }
  EXPECT_NE(read_back.find("before_signal"), std::string::npos);
  std::remove(path.c_str());
  std::signal(SIGUSR1, SIG_DFL);
  t.set_enabled(false);
  t.set_dump_path("");
  t.reset();
}

}  // namespace
}  // namespace bc::obs
