#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_writer.hpp"

namespace bc::obs {
namespace {

TEST(ObsExport, MetricsJsonEmptyRegistry) {
  Registry r;
  Profiler p;
  const std::string json = metrics_json(r, p);
  EXPECT_EQ(json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {},\n  \"log_histograms\": {},\n"
            "  \"profile\": {}\n}\n");
}

TEST(ObsExport, MetricsJsonContainsAllKinds) {
  Registry r;
  r.counter("b.count").inc(5);
  r.counter("a.count").inc(2);
  r.gauge("load").set(0.5);
  Histogram& h = r.histogram("lat", {1.0, 2.0});
  h.add(0.5);
  h.add(9.0);
  Profiler p;
  p.set_enabled(true);
  { const ScopedTimer t(p.site("hot"), p); }
  const std::string json = metrics_json(r, p);
  // Counters appear sorted by name.
  const std::size_t pos_a = json.find("\"a.count\": 2");
  const std::size_t pos_b = json.find("\"b.count\": 5");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_NE(json.find("\"load\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\": {\"upper_edges\": [1, 2], "
                      "\"counts\": [1, 0, 1], \"total\": 2, \"sum\": 9.5}"),
            std::string::npos);
  EXPECT_NE(json.find("\"hot\": {\"calls\": 1, \"total_ns\": "),
            std::string::npos);
}

TEST(ObsExport, MetricsJsonIsDeterministic) {
  Registry a;
  a.counter("x").inc(1);
  a.gauge("g").set(2.0);
  Registry b;
  b.gauge("g").set(2.0);
  b.counter("x").inc(1);
  Profiler p;
  EXPECT_EQ(metrics_json(a, p), metrics_json(b, p));
}

TEST(ObsExport, MetricsCsvRowsAndHistogramBuckets) {
  Registry r;
  r.counter("events").inc(3);
  r.gauge("load").set(1.5);
  Histogram& h = r.histogram("lat", {1.0});
  h.add(0.5);
  h.add(2.0);
  const std::string csv = metrics_csv(r);
  EXPECT_EQ(csv,
            "name,kind,value\n"
            "events,counter,3\n"
            "load,gauge,1.5\n"
            "lat[le=1],histogram,1\n"
            "lat[le=inf],histogram,1\n");
}

TEST(ObsExport, ProfileReportListsSitesWithCalls) {
  Profiler p;
  p.set_enabled(true);
  { const ScopedTimer t(p.site("alpha"), p); }
  { const ScopedTimer t(p.site("alpha"), p); }
  const std::string report = profile_report(p);
  EXPECT_NE(report.find("site"), std::string::npos);
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find('2'), std::string::npos);
}

TEST(ObsExport, SnapshotCountersToTraceBuildsTracks) {
  Registry r;
  r.counter("msgs").inc(10);
  r.counter("drops").inc(1);
  Tracer t;
  t.set_enabled(true);
  snapshot_counters_to_trace(r, t, 1.0);
  r.counter("msgs").inc(5);
  snapshot_counters_to_trace(r, t, 2.0);
  ASSERT_EQ(t.size(), 4u);
  // Each snapshot emits counters in name order at the snapshot's sim time.
  EXPECT_EQ(t.events()[0].name, "drops");
  EXPECT_EQ(t.events()[0].phase, 'C');
  EXPECT_EQ(t.events()[0].ts_us, 1000000u);
  EXPECT_EQ(t.events()[1].name, "msgs");
  EXPECT_DOUBLE_EQ(t.events()[1].value, 10.0);
  EXPECT_EQ(t.events()[3].name, "msgs");
  EXPECT_DOUBLE_EQ(t.events()[3].value, 15.0);
  EXPECT_EQ(t.events()[3].ts_us, 2000000u);
}

TEST(ObsExport, SnapshotCountersToTraceNoOpWhileDisabled) {
  Registry r;
  r.counter("msgs").inc(1);
  Tracer t;
  snapshot_counters_to_trace(r, t, 1.0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(ObsExport, WriteTextFileReportsFailureForBadPath) {
  EXPECT_FALSE(write_text_file("/nonexistent-dir-bc-obs/out.txt", "x"));
  const std::string path = ::testing::TempDir() + "bc_obs_export_test.txt";
  EXPECT_TRUE(write_text_file(path, "hello"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bc::obs
