#include "obs/stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace bc::obs {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Golden-string check for the "bc.metrics.window.v1" schema. The NDJSON
// stream is a contract with the CI schema checker and with anything that
// tails it — if this test needs updating, bump the schema id.
TEST(MetricsStream, GoldenWindowLines) {
  Registry r;
  r.counter("a").inc(3);  // pre-open activity: excluded by the baseline

  MetricsStream s;
  const std::string path = ::testing::TempDir() + "bc_stream_golden.ndjson";
  ASSERT_TRUE(s.open(path, r));

  r.counter("a").inc(2);
  r.counter("b").inc(1);
  r.gauge("g").set(1.5);
  LogHistogram& h = r.log_histogram("h", LogSpec::magnitude());
  h.observe(4.0);  // bucket 17, upper edge 4.5
  h.observe(5.0);  // bucket 19, upper edge 5.5
  s.emit_window(r, 3600.0);

  r.counter("a").inc(5);
  s.emit_window(r, 7200.0);

  s.emit_window(r, 10800.0);  // empty window: line still emitted
  s.close();

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "{\"schema\":\"bc.metrics.window.v1\",\"seq\":0,\"t\":3600,"
            "\"counters\":{\"a\":2,\"b\":1},\"gauges\":{\"g\":1.5},"
            "\"log_histograms\":{\"h\":{\"buckets\":[[17,1],[19,1]],"
            "\"total\":2,\"sum\":9,\"p50\":4.5,\"p99\":5.5,\"max\":5.5}}}");
  EXPECT_EQ(lines[1],
            "{\"schema\":\"bc.metrics.window.v1\",\"seq\":1,\"t\":7200,"
            "\"counters\":{\"a\":5},\"gauges\":{\"g\":1.5},"
            "\"log_histograms\":{}}");
  EXPECT_EQ(lines[2],
            "{\"schema\":\"bc.metrics.window.v1\",\"seq\":2,\"t\":10800,"
            "\"counters\":{},\"gauges\":{\"g\":1.5},\"log_histograms\":{}}");
  EXPECT_EQ(s.windows_written(), 3u);
  std::remove(path.c_str());
}

TEST(MetricsStream, CounterDeltasSumToEndOfRunTotals) {
  Registry r;
  r.counter("events").inc(7);  // baseline the stream must subtract

  MetricsStream s;
  const std::string path = ::testing::TempDir() + "bc_stream_sum.ndjson";
  ASSERT_TRUE(s.open(path, r));
  const std::uint64_t baseline = r.counter("events").value();

  std::int64_t summed = 0;
  for (int w = 0; w < 5; ++w) {
    const std::uint64_t before = r.counter("events").value();
    r.counter("events").inc(static_cast<std::uint64_t>(w * 13 + 1));
    s.emit_window(r, (w + 1) * 3600.0);
    summed += static_cast<std::int64_t>(r.counter("events").value() - before);
  }
  s.close();

  // Exact reconstruction: baseline + sum of window deltas == final total.
  EXPECT_EQ(baseline + static_cast<std::uint64_t>(summed),
            r.counter("events").value());
  // And the file's deltas are those exact integers (5 lines, all non-empty).
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"events\":"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(MetricsStream, SignedDeltaWhenStoreTotalRepublishesSmaller) {
  Registry r;
  r.counter("cache").store_total(10);
  MetricsStream s;
  const std::string path = ::testing::TempDir() + "bc_stream_signed.ndjson";
  ASSERT_TRUE(s.open(path, r));
  r.counter("cache").store_total(4);  // lawful: external total re-published
  s.emit_window(r, 1.0);
  s.close();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"cache\":-6"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsStream, OpenFailureLeavesStreamClosed) {
  Registry r;
  MetricsStream s;
  EXPECT_FALSE(s.open("/nonexistent-dir-bc-obs/out.ndjson", r));
  EXPECT_FALSE(s.is_open());
  s.emit_window(r, 1.0);  // no-op, must not crash
  EXPECT_EQ(s.windows_written(), 0u);
}

}  // namespace
}  // namespace bc::obs
