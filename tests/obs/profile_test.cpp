#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/concurrency/thread_pool.hpp"

namespace bc::obs {
namespace {

TEST(ObsProfiler, SiteFindOrCreate) {
  Profiler p;
  ProfileSite& s = p.site("maxflow.two_hop");
  EXPECT_EQ(s.name, "maxflow.two_hop");
  EXPECT_EQ(s.calls, 0u);
  EXPECT_EQ(s.nanos, 0u);
  EXPECT_EQ(&p.site("maxflow.two_hop"), &s);
  EXPECT_EQ(p.num_sites(), 1u);
}

TEST(ObsProfiler, DisabledTimerRecordsNothing) {
  Profiler p;
  ProfileSite& s = p.site("cold");
  ASSERT_FALSE(p.enabled());
  {
    const ScopedTimer t(s, p);
  }
  EXPECT_EQ(s.calls, 0u);
  EXPECT_EQ(s.nanos, 0u);
}

TEST(ObsProfiler, EnabledTimerCountsCallsAndTime) {
  Profiler p;
  p.set_enabled(true);
  ProfileSite& s = p.site("hot");
  for (int i = 0; i < 3; ++i) {
    const ScopedTimer t(s, p);
  }
  EXPECT_EQ(s.calls, 3u);
  // steady_clock may report 0ns for an empty scope; only non-negativity and
  // the call count are guaranteed.
}

TEST(ObsProfiler, NestedDistinctSitesBothRecord) {
  Profiler p;
  p.set_enabled(true);
  ProfileSite& outer = p.site("outer");
  ProfileSite& inner = p.site("inner");
  {
    const ScopedTimer to(outer, p);
    for (int i = 0; i < 100; ++i) {
      const ScopedTimer ti(inner, p);
    }
  }
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(inner.calls, 100u);
  // Inclusive attribution: the outer scope contains all inner scopes.
  EXPECT_GE(outer.nanos, inner.nanos);
}

TEST(ObsProfiler, RecursiveReentryCountsCallsOnceTime) {
  Profiler p;
  p.set_enabled(true);
  ProfileSite& s = p.site("recursive");
  {
    const ScopedTimer a(s, p);
    {
      const ScopedTimer b(s, p);
      {
        const ScopedTimer c(s, p);
      }
    }
    // Inner frames counted their calls but did not add time yet: this
    // thread's recursion depth (thread-local, per site) was still > 0 when
    // they exited.
    EXPECT_EQ(s.calls, 2u);
    const std::uint64_t nanos_before_outermost_exit = s.nanos;
    EXPECT_EQ(nanos_before_outermost_exit, 0u);
  }
  EXPECT_EQ(s.calls, 3u);
}

TEST(ObsProfiler, PoolWorkersTrackRecursionPerThread) {
  // The recursion guard is thread-local: concurrent nested scopes of one
  // site on different pool workers each see their own outermost frame, so
  // every iteration contributes exactly 2 calls (outer + nested re-entry)
  // no matter how the pool schedules them. Run under TSan this also proves
  // site()/record() are race-free.
  Profiler p;
  p.set_enabled(true);
  ProfileSite& s = p.site("pooled");
  util::ThreadPool pool(4);
  pool.parallel_for(64, [&](std::size_t) {
    const ScopedTimer outer(s, p);
    const ScopedTimer nested(s, p);
  });
  EXPECT_EQ(s.calls, 128u);
}

TEST(ObsProfiler, EnableStateIsSampledAtScopeEntry) {
  Profiler p;
  ProfileSite& s = p.site("toggled");
  {
    const ScopedTimer t(s, p);  // constructed while disabled
    p.set_enabled(true);
  }
  EXPECT_EQ(s.calls, 0u);  // attributed per the state at entry
  {
    const ScopedTimer t(s, p);  // constructed while enabled
    p.set_enabled(false);
  }
  EXPECT_EQ(s.calls, 1u);
}

TEST(ObsProfiler, SnapshotIsNameSorted) {
  Profiler p;
  p.set_enabled(true);
  { const ScopedTimer t(p.site("zz"), p); }
  { const ScopedTimer t(p.site("aa"), p); }
  { const ScopedTimer t(p.site("mm"), p); }
  const std::vector<ProfileSite> snap = p.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aa");
  EXPECT_EQ(snap[1].name, "mm");
  EXPECT_EQ(snap[2].name, "zz");
}

TEST(ObsProfiler, ResetValuesKeepsSiteReferences) {
  Profiler p;
  p.set_enabled(true);
  ProfileSite& s = p.site("kept");
  { const ScopedTimer t(s, p); }
  ASSERT_EQ(s.calls, 1u);
  p.reset_values();
  EXPECT_EQ(p.num_sites(), 1u);
  EXPECT_EQ(s.calls, 0u);
  EXPECT_EQ(s.nanos, 0u);
  { const ScopedTimer t(s, p); }
  EXPECT_EQ(p.site("kept").calls, 1u);
}

TEST(ObsProfiler, ScopeMacroCompilesAndUsesGlobalInstance) {
  // The macro binds to Profiler::instance(); leave the global profiler in
  // whatever state it was (other tests may share the process) and only
  // check that the macro registers the site.
  const bool was_enabled = Profiler::instance().enabled();
  Profiler::instance().set_enabled(true);
  {
    BC_OBS_SCOPE("obs_test.macro_site");
  }
  Profiler::instance().set_enabled(was_enabled);
  EXPECT_GE(Profiler::instance().site("obs_test.macro_site").calls, 1u);
}

}  // namespace
}  // namespace bc::obs
