#include "obs/trace_writer.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <string>

namespace bc::obs {
namespace {

TEST(ObsJsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("maxflow.two_hop"), "maxflow.two_hop");
  EXPECT_EQ(json_escape(""), "");
}

TEST(ObsJsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("\r\t"), "\\r\\t");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ObsTracer, DisabledEmitsNothing) {
  Tracer t;
  ASSERT_FALSE(t.enabled());
  t.instant("a", "cat", 1.0);
  t.complete("b", "cat", 1.0, 2.0);
  t.counter("c", 1.0, 3.0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.to_json(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

// Golden-string check: the exact Chrome trace-event JSON for one instant,
// one complete, and one counter event. chrome://tracing and Perfetto both
// consume this object form verbatim, so the serialization is a contract —
// if this test needs updating, re-validate a real trace in a viewer.
TEST(ObsTracer, GoldenJsonForKnownEvents) {
  Tracer t;
  t.set_enabled(true);
  t.instant("gossip.exchange", "gossip", 1.5,
            {{"initiator", "3"}, {"partner", "7"}});
  t.complete("round", "community", 2.0, 0.25);
  t.counter("barter.messages_sent", 3.0, 42.0);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"gossip.exchange\",\"cat\":\"gossip\",\"ph\":\"i\","
      "\"pid\":0,\"tid\":0,\"ts\":1500000,"
      "\"args\":{\"initiator\":\"3\",\"partner\":\"7\"}},"
      "{\"name\":\"round\",\"cat\":\"community\",\"ph\":\"X\","
      "\"pid\":0,\"tid\":0,\"ts\":2000000,\"dur\":250000},"
      "{\"name\":\"barter.messages_sent\",\"cat\":\"metrics\",\"ph\":\"C\","
      "\"pid\":0,\"tid\":0,\"ts\":3000000,\"args\":{\"value\":42}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(t.to_json(), expected);
}

TEST(ObsTracer, TimestampsAreIntegerMicroseconds) {
  Tracer t;
  t.set_enabled(true);
  // 1e-7 s rounds to 0 us; 1.9999996 s rounds to 2000000 us (llround).
  t.instant("a", "c", 1e-7);
  t.instant("b", "c", 1.9999996);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].ts_us, 0u);
  EXPECT_EQ(t.events()[1].ts_us, 2000000u);
}

TEST(ObsTracer, ArgsWithSpecialCharactersStayValidJson) {
  Tracer t;
  t.set_enabled(true);
  t.instant("ev", "c", 0.0, {{"policy", "ban(\"strict\")\n"}});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"policy\":\"ban(\\\"strict\\\")\\n\""),
            std::string::npos);
}

TEST(ObsTracer, ResetClearsBufferedEvents) {
  Tracer t;
  t.set_enabled(true);
  t.instant("a", "c", 0.0);
  ASSERT_EQ(t.size(), 1u);
  t.reset();
  EXPECT_EQ(t.size(), 0u);
  t.instant("b", "c", 0.0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].name, "b");
}

TEST(ObsTracer, WriteFileRoundTrips) {
  Tracer t;
  t.set_enabled(true);
  t.complete("span", "c", 0.5, 0.5, {{"k", "v"}});
  const std::string path = ::testing::TempDir() + "bc_obs_trace_test.json";
  ASSERT_TRUE(t.write_file(path));
  std::string read_back;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    std::fclose(f);
    read_back.assign(buf, n);
  }
  EXPECT_EQ(read_back, t.to_json());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bc::obs
