#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "util/concurrency/shard_slot.hpp"

namespace bc::obs {
namespace {

TEST(LogHistogram, EdgesAscendStrictly) {
  const LogHistogram h(LogSpec::signed_unit(), 0);
  for (std::size_t i = 1; i < h.num_buckets(); ++i) {
    EXPECT_LT(h.upper_edge(i - 1), h.upper_edge(i)) << "bucket " << i;
  }
}

TEST(LogHistogram, ValuesLandInsideTheirBucket) {
  const LogHistogram h(LogSpec::latency_seconds(), 0);
  // In-range positives: buckets are lower-inclusive, so a value sits in
  // [upper_edge(i - 1), upper_edge(i)) — exact powers of two start a
  // fresh bucket rather than topping off the previous one.
  for (const double v : {1e-6, 3.7e-5, 0.001, 0.25, 0.5, 1.0, 3.14, 1e3,
                         9.9e5}) {
    const std::size_t i = h.index_of(v);
    EXPECT_LT(v, h.upper_edge(i)) << v;
    ASSERT_GT(i, 0u);
    EXPECT_GE(v, h.upper_edge(i - 1)) << v;
  }
}

TEST(LogHistogram, TinyValuesHitTheZeroBucket) {
  const LogHistogram h(LogSpec::latency_seconds(), 0);
  EXPECT_EQ(h.index_of(0.0), 0u);
  EXPECT_EQ(h.index_of(1e-9), 0u);  // below 2^-20
  EXPECT_EQ(h.upper_edge(0), std::ldexp(1.0, -20));
}

TEST(LogHistogram, HugeValuesClampIntoTheTopBucket) {
  const LogHistogram h(LogSpec::magnitude(), 0);  // caps at 2^40
  const std::size_t top = h.num_buckets() - 1;
  EXPECT_EQ(h.index_of(1e13), top);
  EXPECT_EQ(h.index_of(1e300), top);
}

TEST(LogHistogram, SignedSpecMirrorsNegativeValues) {
  LogHistogram h(LogSpec::signed_unit(), 0);
  const std::size_t ip = h.index_of(0.5);
  const std::size_t in = h.index_of(-0.5);
  // Mirrored around the zero bucket; negative buckets ascend toward zero.
  const std::size_t zero = h.index_of(0.0);
  EXPECT_EQ(ip - zero, zero - in);
  EXPECT_LT(in, zero);
  // The negative bucket's upper edge is the magnitude lower bound, negated,
  // so -0.5 <= edge and edges still ascend through the sign change.
  EXPECT_GE(h.upper_edge(in), -0.5);
  h.observe(-0.5);
  h.observe(0.5);
  EXPECT_EQ(h.count(in), 1u);
  EXPECT_EQ(h.count(ip), 1u);
  EXPECT_NEAR(h.sum(), 0.0, 1e-6);  // fixed-point: exact for these values
}

TEST(LogHistogram, QuantilesAndMax) {
  LogHistogram h(LogSpec::magnitude(), 0);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.total(), 100u);
  // Quantiles report the upper edge of the target bucket: within one
  // sub-bucket (~12.5% for sub_bits=3) above the exact order statistic.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 50.0);
  EXPECT_LE(p50, 50.0 * 1.125 + 1.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 99.0);
  EXPECT_LE(p99, 112.0);
  EXPECT_GE(h.max_value(), 100.0);
  EXPECT_EQ(h.quantile(1.0), h.max_value());
  EXPECT_EQ(LogHistogram(LogSpec::magnitude(), 0).quantile(0.5), 0.0);
}

TEST(LogHistogram, MemoryIsOBucketsIndependentOfN) {
  LogHistogram h(LogSpec::latency_seconds(), 2);
  const std::size_t buckets = h.num_buckets();
  for (int i = 0; i < 100000; ++i) {
    h.observe(std::ldexp(1.0, i % 30 - 15));
  }
  EXPECT_EQ(h.num_buckets(), buckets);  // fixed at construction
  EXPECT_EQ(h.total(), 100000u);
}

TEST(LogHistogram, ShardedFoldMatchesSerialRecording) {
  const LogSpec spec = LogSpec::signed_unit();
  LogHistogram serial(spec, 0);
  LogHistogram sharded(spec, 4);
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(i % 201 - 100) / 100.0;
    serial.observe(v);
    const util::ShardSlotScope slot(static_cast<std::size_t>(i) % 4);
    sharded.observe(v);
  }
  sharded.fold_shards();
  EXPECT_EQ(serial.total(), sharded.total());
  EXPECT_EQ(serial.sum_units(), sharded.sum_units());
  for (std::size_t i = 0; i < serial.num_buckets(); ++i) {
    EXPECT_EQ(serial.count(i), sharded.count(i)) << "bucket " << i;
  }
}

TEST(LogHistogram, MergeIsOrderIndependent) {
  // The same observations partitioned two different ways across shards
  // must fold to identical state: the shard state is integer-only, and
  // integer addition commutes. This is the bit-identity argument for
  // --threads 1/2/4/8 in miniature.
  const LogSpec spec = LogSpec::latency_seconds();
  LogHistogram a(spec, 8);
  LogHistogram b(spec, 8);
  for (int i = 0; i < 512; ++i) {
    const double v = std::ldexp(1.0 + (i % 7) * 0.1, i % 20 - 10);
    {
      const util::ShardSlotScope slot(static_cast<std::size_t>(i) % 8);
      a.observe(v);
    }
    {
      const util::ShardSlotScope slot(static_cast<std::size_t>(i * 5) % 8);
      b.observe(v);
    }
  }
  a.fold_shards();
  b.fold_shards();
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.sum_units(), b.sum_units());
  for (std::size_t i = 0; i < a.num_buckets(); ++i) {
    ASSERT_EQ(a.count(i), b.count(i)) << "bucket " << i;
  }
}

TEST(LogHistogram, MergeFromAddsMergedState) {
  LogHistogram a(LogSpec::magnitude(), 0);
  LogHistogram b(LogSpec::magnitude(), 2);
  a.observe(4.0);
  {
    const util::ShardSlotScope slot(1);
    b.observe(4.0);  // lands in a shard; merge_from reads the merged view
  }
  a.merge_from(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.count(a.index_of(4.0)), 2u);
}

TEST(LogHistogram, ResetClearsBaseAndShards) {
  LogHistogram h(LogSpec::magnitude(), 2);
  h.observe(1.0);
  {
    const util::ShardSlotScope slot(1);
    h.observe(2.0);
  }
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.sum_units(), 0);
  EXPECT_EQ(h.max_value(), 0.0);
}

TEST(Registry, LogHistogramRegistrationAndSnapshot) {
  Registry r;
  r.configure_shards(2);
  LogHistogram& h = r.log_histogram("lat", LogSpec::latency_seconds());
  EXPECT_EQ(&h, &r.log_histogram("lat", LogSpec::magnitude()))
      << "later lookups must ignore the spec argument";
  h.observe(0.5);
  h.observe(2.0);
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.log_histograms.size(), 1u);
  const LogHistogramSnapshot& ls = snap.log_histograms[0];
  EXPECT_EQ(ls.name, "lat");
  EXPECT_EQ(ls.total, 2u);
  ASSERT_EQ(ls.buckets.size(), 2u);
  EXPECT_EQ(ls.buckets[0].second, 1u);
  ASSERT_EQ(ls.bucket_edges.size(), 2u);
  EXPECT_EQ(ls.bucket_edges[0], h.upper_edge(ls.buckets[0].first));
  EXPECT_GT(ls.p50, 0.0);
  EXPECT_GE(ls.max, 2.0);
}

TEST(Registry, FoldShardsMergesCountersAndHistograms) {
  Registry r;
  r.configure_shards(4);
  Counter& c = r.counter("events");
  LogHistogram& h = r.log_histogram("v", LogSpec::magnitude());
  {
    const util::ShardSlotScope slot(3);
    c.inc(7);
    h.observe(8.0);
  }
  // Live merged reads see shard state even before the fold.
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(h.total(), 1u);
  r.fold_shards();
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Counter, StoreTotalOverwritesShardsAndBase) {
  Counter c;
  c.enable_shards(2);
  {
    const util::ShardSlotScope slot(1);
    c.inc(5);
  }
  c.store_total(42);
  EXPECT_EQ(c.value(), 42u);
  c.inc(1);  // slot 0 shard
  EXPECT_EQ(c.value(), 43u);
}

}  // namespace
}  // namespace bc::obs
