// Debug-mode owning-thread checks on the serial-phase instruments (Gauge
// and fixed-bucket Histogram): a pool worker — or any foreign thread —
// touching one must fail fast instead of silently racing on its double
// state. The checks ride BC_DASSERT, so they are live in Debug builds
// (the `validate` preset) and compile out under NDEBUG; the release half
// of this file asserts exactly that.
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "util/concurrency/shard_slot.hpp"
#include "util/concurrency/thread_pool.hpp"

namespace bc::obs {
namespace {

#ifndef NDEBUG

TEST(ObsOwnerCheckDeathTest, GaugeTouchedInsidePoolChunkDies) {
  Gauge g;
  EXPECT_DEATH(
      {
        // What ThreadPool::parallel_for installs around a worker chunk.
        const util::ShardSlotScope slot(1);
        g.set(1.0);
      },
      "BC_ASSERT failed");
}

TEST(ObsOwnerCheckDeathTest, GaugeTouchedFromForeignThreadDies) {
  Gauge g;
  EXPECT_DEATH(
      {
        std::thread t([&g] { g.add(1.0); });
        t.join();
      },
      "BC_ASSERT failed");
}

TEST(ObsOwnerCheckDeathTest, HistogramAddInsidePoolChunkDies) {
  Histogram h({1.0, 2.0});
  EXPECT_DEATH(
      {
        const util::ShardSlotScope slot(2);
        h.add(0.5);
      },
      "BC_ASSERT failed");
}

TEST(ObsOwnerCheckDeathTest, UnshardedLogHistogramInsideChunkDies) {
  // No shard covers the chunk's slot, so observe() would race on the
  // base state — the fallback is debug-checked to slot 0 only.
  LogHistogram h(LogSpec::magnitude(), 0);
  EXPECT_DEATH(
      {
        const util::ShardSlotScope slot(1);
        h.observe(4.0);
      },
      "BC_ASSERT failed");
}

TEST(ObsOwnerCheckDeathTest, RealPoolWorkerTouchingGaugeDies) {
  // End-to-end: an actual worker chunk (slot >= 1 on a foreign thread)
  // trips the check; the caller-executed chunk 0 alone would pass.
  EXPECT_DEATH(
      {
        Gauge g;
        util::ThreadPool pool(2);
        pool.parallel_for(8, [&g](std::size_t) { g.add(1.0); });
      },
      "BC_ASSERT failed");
}

#else  // NDEBUG

TEST(ObsOwnerCheck, CompiledOutInReleaseBuilds) {
  // Release builds drop the check entirely (hot-loop budget); the touch
  // must go through untripped.
  Gauge g;
  {
    const util::ShardSlotScope slot(1);
    g.set(1.0);
  }
  EXPECT_EQ(g.value(), 1.0);
}

#endif

}  // namespace
}  // namespace bc::obs
