#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace bc::obs {
namespace {

TEST(ObsRegistry, CounterFindOrCreateAndIncrement) {
  Registry r;
  Counter& c = r.counter("a.events");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Second lookup returns the same instrument, not a fresh one.
  EXPECT_EQ(&r.counter("a.events"), &c);
  EXPECT_EQ(r.counter("a.events").value(), 5u);
  EXPECT_EQ(r.num_instruments(), 1u);
}

TEST(ObsRegistry, GaugeSetAddAndReset) {
  Registry r;
  Gauge& g = r.gauge("queue.depth");
  g.set(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsRegistry, ReferencesSurviveLaterInsertions) {
  Registry r;
  Counter& m = r.counter("m");
  m.inc(7);
  // Insertions on either side of "m" must not invalidate the reference
  // (node-based storage guarantee the call sites rely on).
  for (int i = 0; i < 64; ++i) {
    r.counter("a" + std::to_string(i));
    r.counter("z" + std::to_string(i));
  }
  EXPECT_EQ(m.value(), 7u);
  m.inc();
  EXPECT_EQ(r.counter("m").value(), 8u);
}

TEST(ObsRegistry, SnapshotIsNameSorted) {
  Registry r;
  r.counter("zeta").inc(1);
  r.counter("alpha").inc(2);
  r.counter("mid").inc(3);
  r.gauge("g2").set(2.0);
  r.gauge("g1").set(1.0);
  const Snapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].first, "alpha");
  EXPECT_EQ(s.counters[1].first, "mid");
  EXPECT_EQ(s.counters[2].first, "zeta");
  EXPECT_EQ(s.counters[0].second, 2u);
  ASSERT_EQ(s.gauges.size(), 2u);
  EXPECT_EQ(s.gauges[0].first, "g1");
  EXPECT_EQ(s.gauges[1].first, "g2");
}

TEST(ObsRegistry, SnapshotIsDeterministicAcrossInsertionOrders) {
  Registry a;
  a.counter("x").inc(1);
  a.counter("y").inc(2);
  Registry b;
  b.counter("y").inc(2);
  b.counter("x").inc(1);
  const Snapshot sa = a.snapshot();
  const Snapshot sb = b.snapshot();
  ASSERT_EQ(sa.counters.size(), sb.counters.size());
  for (std::size_t i = 0; i < sa.counters.size(); ++i) {
    EXPECT_EQ(sa.counters[i], sb.counters[i]);
  }
}

TEST(ObsRegistry, ResetValuesKeepsRegistrationsAndReferences) {
  Registry r;
  Counter& c = r.counter("c");
  c.inc(10);
  Gauge& g = r.gauge("g");
  g.set(4.0);
  Histogram& h = r.histogram("h", {1.0, 2.0});
  h.add(0.5);
  r.reset_values();
  EXPECT_EQ(r.num_instruments(), 3u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);
  // Histogram shape survives the reset even though the counts are zeroed.
  ASSERT_EQ(h.edges().size(), 2u);
  c.inc();
  EXPECT_EQ(r.counter("c").value(), 1u);
}

TEST(ObsRegistry, HistogramEdgesConsumedOnFirstCreationOnly) {
  Registry r;
  Histogram& h = r.histogram("lat", {1.0, 2.0, 3.0});
  // A later lookup with different edges returns the original instrument.
  Histogram& again = r.histogram("lat", {99.0});
  EXPECT_EQ(&h, &again);
  ASSERT_EQ(again.edges().size(), 3u);
  EXPECT_DOUBLE_EQ(again.edges()[2], 3.0);
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 finite + overflow
  h.add(0.0);   // -> bucket 0 (v <= 1.0)
  h.add(1.0);   // -> bucket 0 (edge-exact lands below)
  h.add(1.5);   // -> bucket 1
  h.add(2.0);   // -> bucket 1
  h.add(4.0);   // -> bucket 2
  h.add(4.01);  // -> overflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.0 + 1.5 + 2.0 + 4.0 + 4.01);
}

TEST(ObsHistogram, OverflowEdgeIsInfinity) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.upper_edge(0), 1.0);
  EXPECT_TRUE(std::isinf(h.upper_edge(1)));
  EXPECT_GT(h.upper_edge(1), 0.0);
}

TEST(ObsHistogram, UniformEdgesCoverRangeExactly) {
  const std::vector<double> edges = Histogram::uniform_edges(-1.0, 1.0, 4);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], -0.5);
  EXPECT_DOUBLE_EQ(edges[1], 0.0);
  EXPECT_DOUBLE_EQ(edges[2], 0.5);
  // The top edge is exact (no floating-point drift), so hi itself never
  // falls into the overflow bucket.
  EXPECT_DOUBLE_EQ(edges[3], 1.0);
  Histogram h(edges);
  h.add(1.0);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(4), 0u);
}

TEST(ObsHistogram, ResetZeroesCountsKeepsShape) {
  Histogram h({1.0, 2.0});
  h.add(0.5);
  h.add(5.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.num_buckets(), 3u);
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    EXPECT_EQ(h.count(i), 0u);
  }
}

TEST(ObsRegistry, HistogramSnapshotCarriesBucketsAndTotals) {
  Registry r;
  Histogram& h = r.histogram("rep", {0.0, 1.0});
  h.add(-0.5);
  h.add(0.5);
  h.add(2.0);
  const Snapshot s = r.snapshot();
  ASSERT_EQ(s.histograms.size(), 1u);
  const HistogramSnapshot& hs = s.histograms[0];
  EXPECT_EQ(hs.name, "rep");
  ASSERT_EQ(hs.upper_edges.size(), 2u);
  ASSERT_EQ(hs.counts.size(), 3u);
  EXPECT_EQ(hs.counts[0], 1u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_EQ(hs.counts[2], 1u);
  EXPECT_EQ(hs.total, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 2.0);
}

}  // namespace
}  // namespace bc::obs
