#include "bittorrent/choker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace bc::bt {
namespace {

UnchokeCandidate cand(PeerId peer, Rate rate, double rep = 0.0,
                      bool interested = true) {
  UnchokeCandidate c;
  c.peer = peer;
  c.rate = rate;
  c.reputation = rep;
  c.interested = interested;
  return c;
}

const auto kNone = bartercast::ReputationPolicy::none();
const auto kRank = bartercast::ReputationPolicy::rank();

TEST(RegularUnchokes, PicksHighestRates) {
  const std::vector<UnchokeCandidate> cands{
      cand(1, 10.0), cand(2, 30.0), cand(3, 20.0), cand(4, 5.0)};
  EXPECT_EQ(pick_regular_unchokes(cands, 2, kNone),
            (std::vector<PeerId>{2, 3}));
}

TEST(RegularUnchokes, SkipsUninterested) {
  const std::vector<UnchokeCandidate> cands{
      cand(1, 100.0, 0.0, /*interested=*/false), cand(2, 1.0)};
  EXPECT_EQ(pick_regular_unchokes(cands, 2, kNone),
            (std::vector<PeerId>{2}));
}

TEST(RegularUnchokes, TieBreaksByLowerId) {
  const std::vector<UnchokeCandidate> cands{cand(9, 10.0), cand(3, 10.0)};
  EXPECT_EQ(pick_regular_unchokes(cands, 1, kNone),
            (std::vector<PeerId>{3}));
}

TEST(RegularUnchokes, ZeroOrNegativeSlots) {
  const std::vector<UnchokeCandidate> cands{cand(1, 10.0)};
  EXPECT_TRUE(pick_regular_unchokes(cands, 0, kNone).empty());
  EXPECT_TRUE(pick_regular_unchokes(cands, -3, kNone).empty());
}

TEST(RegularUnchokes, BanPolicyExcludesLowReputation) {
  const auto ban = bartercast::ReputationPolicy::ban(-0.5);
  const std::vector<UnchokeCandidate> cands{
      cand(1, 100.0, -0.9), cand(2, 10.0, -0.2), cand(3, 1.0, 0.5)};
  EXPECT_EQ(pick_regular_unchokes(cands, 3, ban),
            (std::vector<PeerId>{2, 3}));
}

TEST(RegularUnchokes, RankPolicyDoesNotFilterRegularSlots) {
  const std::vector<UnchokeCandidate> cands{cand(1, 100.0, -0.99),
                                            cand(2, 1.0, 0.99)};
  EXPECT_EQ(pick_regular_unchokes(cands, 1, kRank),
            (std::vector<PeerId>{1}));
}

TEST(Optimistic, RoundRobinRotatesThroughAll) {
  OptimisticRotator rot;
  const std::vector<UnchokeCandidate> cands{cand(1, 0), cand(2, 0),
                                            cand(3, 0)};
  std::vector<PeerId> picks;
  for (int i = 0; i < 3; ++i) {
    picks.push_back(rot.pick(cands, {}, kNone, static_cast<Seconds>(i)));
  }
  std::sort(picks.begin(), picks.end());
  EXPECT_EQ(picks, (std::vector<PeerId>{1, 2, 3}));
  // Fourth pick wraps around to the earliest-served.
  EXPECT_EQ(rot.pick(cands, {}, kNone, 10.0), 1u);
}

TEST(Optimistic, SkipsRegularUnchokes) {
  OptimisticRotator rot;
  const std::vector<UnchokeCandidate> cands{cand(1, 0), cand(2, 0)};
  const std::vector<PeerId> regular{1};
  EXPECT_EQ(rot.pick(cands, regular, kNone, 0.0), 2u);
}

TEST(Optimistic, SkipsUninterested) {
  OptimisticRotator rot;
  const std::vector<UnchokeCandidate> cands{
      cand(1, 0, 0, /*interested=*/false), cand(2, 0)};
  EXPECT_EQ(rot.pick(cands, {}, kNone, 0.0), 2u);
}

TEST(Optimistic, NoCandidateReturnsInvalid) {
  OptimisticRotator rot;
  EXPECT_EQ(rot.pick({}, {}, kNone, 0.0), kInvalidPeer);
  const std::vector<UnchokeCandidate> cands{
      cand(1, 0, 0, /*interested=*/false)};
  EXPECT_EQ(rot.pick(cands, {}, kNone, 1.0), kInvalidPeer);
}

TEST(Optimistic, BanPolicyExcludes) {
  OptimisticRotator rot;
  const auto ban = bartercast::ReputationPolicy::ban(-0.5);
  const std::vector<UnchokeCandidate> cands{cand(1, 0, -0.8),
                                            cand(2, 0, 0.0)};
  EXPECT_EQ(rot.pick(cands, {}, ban, 0.0), 2u);
  // If everyone is banned, nobody gets the slot.
  const std::vector<UnchokeCandidate> banned{cand(1, 0, -0.8)};
  EXPECT_EQ(rot.pick(banned, {}, ban, 1.0), kInvalidPeer);
}

TEST(Optimistic, RankPolicyPicksHighestReputation) {
  OptimisticRotator rot;
  const std::vector<UnchokeCandidate> cands{
      cand(1, 0, 0.1), cand(2, 0, 0.9), cand(3, 0, 0.5)};
  EXPECT_EQ(rot.pick(cands, {}, kRank, 0.0), 2u);
  // 2 stays the best and keeps winning under rank (no starvation logic for
  // equal candidates applies when reputations differ).
  EXPECT_EQ(rot.pick(cands, {}, kRank, 30.0), 2u);
}

TEST(Optimistic, RankPolicyTiesRotate) {
  OptimisticRotator rot;
  const std::vector<UnchokeCandidate> cands{cand(1, 0, 0.5),
                                            cand(2, 0, 0.5)};
  const PeerId first = rot.pick(cands, {}, kRank, 0.0);
  const PeerId second = rot.pick(cands, {}, kRank, 30.0);
  EXPECT_NE(first, second);  // equal reputations share the slot over time
}

TEST(Optimistic, RankPolicyStillSkipsRegular) {
  OptimisticRotator rot;
  const std::vector<UnchokeCandidate> cands{cand(1, 0, 0.9),
                                            cand(2, 0, 0.1)};
  const std::vector<PeerId> regular{1};
  EXPECT_EQ(rot.pick(cands, regular, kRank, 0.0), 2u);
}

}  // namespace
}  // namespace bc::bt
