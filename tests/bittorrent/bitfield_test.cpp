#include "bittorrent/bitfield.hpp"

#include <gtest/gtest.h>

namespace bc::bt {
namespace {

TEST(Bitfield, EmptyStart) {
  Bitfield b(10);
  EXPECT_EQ(b.size(), 10);
  EXPECT_EQ(b.count(), 0);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.complete());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(b.get(i));
}

TEST(Bitfield, FilledStart) {
  Bitfield b(10, /*filled=*/true);
  EXPECT_EQ(b.count(), 10);
  EXPECT_TRUE(b.complete());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(b.get(i));
}

TEST(Bitfield, SetReturnsFreshness) {
  Bitfield b(5);
  EXPECT_TRUE(b.set(2));
  EXPECT_FALSE(b.set(2));
  EXPECT_EQ(b.count(), 1);
  EXPECT_TRUE(b.get(2));
  EXPECT_FALSE(b.get(1));
}

TEST(Bitfield, CompleteAfterAllSet) {
  Bitfield b(3);
  b.set(0);
  b.set(1);
  EXPECT_FALSE(b.complete());
  b.set(2);
  EXPECT_TRUE(b.complete());
}

TEST(Bitfield, WordBoundarySizes) {
  for (int n : {1, 63, 64, 65, 128, 129}) {
    Bitfield b(n, /*filled=*/true);
    EXPECT_EQ(b.count(), n) << "n=" << n;
    EXPECT_TRUE(b.complete()) << "n=" << n;
    Bitfield e(n);
    e.set(n - 1);
    EXPECT_EQ(e.count(), 1) << "n=" << n;
    EXPECT_TRUE(e.get(n - 1)) << "n=" << n;
  }
}

TEST(Bitfield, InterestingDetection) {
  Bitfield mine(4), theirs(4);
  EXPECT_FALSE(mine.is_interesting(theirs));  // both empty
  theirs.set(2);
  EXPECT_TRUE(mine.is_interesting(theirs));
  mine.set(2);
  EXPECT_FALSE(mine.is_interesting(theirs));  // nothing new
  mine.set(3);
  EXPECT_FALSE(mine.is_interesting(theirs));  // we are ahead
}

TEST(Bitfield, SeedNotInterestedInAnyone) {
  Bitfield seed(8, true), leecher(8);
  leecher.set(1);
  EXPECT_FALSE(seed.is_interesting(leecher));
  EXPECT_TRUE(leecher.is_interesting(seed));
}

TEST(BitfieldDeathTest, OutOfRange) {
  Bitfield b(4);
  EXPECT_DEATH(b.get(4), "piece");
  EXPECT_DEATH(b.set(-1), "piece");
}

}  // namespace
}  // namespace bc::bt
