// Randomized property tests of the swarm state machine: arbitrary
// interleavings of joins, leaves, transfers, link releases and round
// boundaries must preserve the swarm invariants, and a persistent seeder
// must eventually let every remaining leecher finish.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bittorrent/swarm.hpp"

namespace bc::bt {
namespace {

Torrent fuzz_torrent() {
  Torrent t;
  t.id = 0;
  t.size = 5000;
  t.piece_size = 250;
  t.num_pieces = 20;
  return t;
}

class SwarmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwarmFuzz, RandomOperationsPreserveInvariants) {
  Rng rng(GetParam());
  Swarm swarm(fuzz_torrent(), rng.fork());
  std::set<PeerId> members;
  std::vector<PeerId> completions;
  swarm.on_complete = [&](PeerId p) { completions.push_back(p); };

  PeerId next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.12 || members.size() < 2) {
      const PeerId id = next_id++;
      if (rng.chance(0.3)) {
        swarm.add_seeder(id);
      } else {
        swarm.add_leecher(id);
      }
      members.insert(id);
    } else if (dice < 0.18 && members.size() > 2) {
      // Remove a random member.
      auto it = members.begin();
      std::advance(it, static_cast<long>(rng.index(members.size())));
      swarm.remove_peer(*it);
      members.erase(it);
    } else if (dice < 0.85) {
      // Transfer between two random members.
      auto a = members.begin();
      std::advance(a, static_cast<long>(rng.index(members.size())));
      auto b = members.begin();
      std::advance(b, static_cast<long>(rng.index(members.size())));
      if (*a != *b) {
        const Bytes budget = rng.uniform_int(1, 700);
        const Bytes moved = swarm.transfer(*a, *b, budget);
        EXPECT_LE(moved, budget);
        EXPECT_GE(moved, 0);
      }
    } else if (dice < 0.95) {
      // Release a random link.
      auto a = members.begin();
      std::advance(a, static_cast<long>(rng.index(members.size())));
      auto b = members.begin();
      std::advance(b, static_cast<long>(rng.index(members.size())));
      if (*a != *b) swarm.release_link(*a, *b);
    } else {
      swarm.end_round();
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(swarm.check_invariants()) << "step " << step;
    }
  }
  EXPECT_TRUE(swarm.check_invariants());

  // Completions are unique and were leechers that really hold everything.
  std::set<PeerId> unique(completions.begin(), completions.end());
  EXPECT_EQ(unique.size(), completions.size());
  for (PeerId p : completions) {
    if (swarm.has_peer(p)) {
      EXPECT_TRUE(swarm.is_complete(p));
    }
  }
}

TEST_P(SwarmFuzz, PersistentSeederDrivesEveryoneToCompletion) {
  Rng rng(GetParam() ^ 0xf00dULL);
  Swarm swarm(fuzz_torrent(), rng.fork());
  int done = 0;
  swarm.on_complete = [&](PeerId) { ++done; };
  swarm.add_seeder(0);
  const int leechers = 6;
  for (PeerId p = 1; p <= leechers; ++p) swarm.add_leecher(p);

  // Random small transfers from random sources (seeder or peers that have
  // pieces); with a persistent seeder everyone finishes eventually.
  for (int step = 0; step < 200000 && done < leechers; ++step) {
    const auto from = static_cast<PeerId>(rng.index(leechers + 1));
    const auto to = static_cast<PeerId>(1 + rng.index(leechers));
    if (from == to) continue;
    swarm.transfer(from, to, rng.uniform_int(1, 400));
    if (rng.chance(0.01)) swarm.end_round();
  }
  EXPECT_EQ(done, leechers);
  EXPECT_TRUE(swarm.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwarmFuzz,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL));

}  // namespace
}  // namespace bc::bt
