#include "bittorrent/swarm.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bc::bt {
namespace {

Torrent small_torrent(Bytes size = 1000, Bytes piece = 100) {
  Torrent t;
  t.id = 0;
  t.size = size;
  t.piece_size = piece;
  t.num_pieces = static_cast<int>((size + piece - 1) / piece);
  return t;
}

struct SwarmFixture : ::testing::Test {
  SwarmFixture() : swarm(small_torrent(), Rng(1)) {
    swarm.on_complete = [this](PeerId p) { completed.push_back(p); };
  }

  Swarm swarm;
  std::vector<PeerId> completed;
};

TEST_F(SwarmFixture, SeederJoinsComplete) {
  swarm.add_seeder(1);
  EXPECT_TRUE(swarm.has_peer(1));
  EXPECT_TRUE(swarm.is_complete(1));
  EXPECT_DOUBLE_EQ(swarm.progress(1), 1.0);
  EXPECT_EQ(swarm.availability().count(0), 1);
  EXPECT_TRUE(swarm.check_invariants());
}

TEST_F(SwarmFixture, LeecherJoinsEmpty) {
  swarm.add_leecher(2);
  EXPECT_FALSE(swarm.is_complete(2));
  EXPECT_DOUBLE_EQ(swarm.progress(2), 0.0);
  EXPECT_EQ(swarm.availability().count(0), 0);
}

TEST_F(SwarmFixture, InterestSemantics) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  EXPECT_TRUE(swarm.interested(2, 1));
  EXPECT_FALSE(swarm.interested(1, 2));
}

TEST_F(SwarmFixture, TransferMovesWholeFile) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  const Bytes moved = swarm.transfer(1, 2, 1000);
  EXPECT_EQ(moved, 1000);
  EXPECT_TRUE(swarm.is_complete(2));
  EXPECT_EQ(completed, (std::vector<PeerId>{2}));
  EXPECT_TRUE(swarm.check_invariants());
}

TEST_F(SwarmFixture, TransferInChunksCompletesOnce) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  Bytes total = 0;
  for (int i = 0; i < 25; ++i) {
    total += swarm.transfer(1, 2, 47);
  }
  EXPECT_EQ(total, 1000);
  EXPECT_TRUE(swarm.is_complete(2));
  EXPECT_EQ(completed.size(), 1u);  // fired exactly once
}

TEST_F(SwarmFixture, TransferBudgetNotExceeded) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  const Bytes moved = swarm.transfer(1, 2, 250);
  EXPECT_EQ(moved, 250);
  EXPECT_FALSE(swarm.is_complete(2));
  EXPECT_EQ(swarm.pieces(2).count(), 2);  // 250 bytes -> 2 complete pieces
}

TEST_F(SwarmFixture, TransferToCompletePeerIsZero) {
  swarm.add_seeder(1);
  swarm.add_seeder(2);
  EXPECT_EQ(swarm.transfer(1, 2, 500), 0);
}

TEST_F(SwarmFixture, TransferFromUselessUploaderIsZero) {
  swarm.add_leecher(1);  // has nothing
  swarm.add_leecher(2);
  EXPECT_EQ(swarm.transfer(1, 2, 500), 0);
}

TEST_F(SwarmFixture, TwoUploadersNeverFetchSamePiece) {
  swarm.add_seeder(1);
  swarm.add_seeder(2);
  swarm.add_leecher(3);
  // Partial transfers on both links leave two distinct in-flight pieces.
  swarm.transfer(1, 3, 50);
  swarm.transfer(2, 3, 50);
  EXPECT_EQ(swarm.pieces(3).count(), 0);
  // Finishing both links yields two distinct pieces.
  swarm.transfer(1, 3, 50);
  swarm.transfer(2, 3, 50);
  EXPECT_EQ(swarm.pieces(3).count(), 2);
  EXPECT_TRUE(swarm.check_invariants());
}

TEST_F(SwarmFixture, ReleaseLinkReturnsPieceToPool) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  swarm.transfer(1, 2, 50);  // half a piece in flight
  swarm.release_link(1, 2);
  EXPECT_TRUE(swarm.check_invariants());
  // Progress was discarded; completing the file still takes 1000 bytes.
  EXPECT_EQ(swarm.transfer(1, 2, 2000), 1000);
}

TEST_F(SwarmFixture, ReleaseUnknownLinkIsNoop) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  swarm.release_link(1, 2);
  swarm.release_link(2, 1);
}

TEST_F(SwarmFixture, RoundByteAccounting) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  swarm.transfer(1, 2, 120);
  EXPECT_EQ(swarm.last_round_bytes(1, 2), 0);  // current round not closed
  swarm.end_round();
  EXPECT_EQ(swarm.last_round_bytes(1, 2), 120);
  swarm.end_round();
  EXPECT_EQ(swarm.last_round_bytes(1, 2), 0);
}

TEST_F(SwarmFixture, RemovePeerReleasesEverything) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  swarm.transfer(1, 2, 150);  // piece 2 in flight at 50 bytes
  swarm.remove_peer(1);
  EXPECT_FALSE(swarm.has_peer(1));
  EXPECT_TRUE(swarm.check_invariants());
  // Availability dropped back to only what 2 holds.
  int total = 0;
  for (int p = 0; p < swarm.torrent().num_pieces; ++p) {
    total += swarm.availability().count(p);
  }
  EXPECT_EQ(total, swarm.pieces(2).count());
}

TEST_F(SwarmFixture, RemoveDownloaderMidTransfer) {
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  swarm.transfer(1, 2, 150);
  swarm.remove_peer(2);
  EXPECT_FALSE(swarm.has_peer(2));
  EXPECT_TRUE(swarm.check_invariants());
}

TEST_F(SwarmFixture, MembersSorted) {
  swarm.add_seeder(5);
  swarm.add_leecher(1);
  swarm.add_leecher(3);
  EXPECT_EQ(swarm.members(), (std::vector<PeerId>{1, 3, 5}));
}

TEST(SwarmLastPiece, ShortTailPiece) {
  // 950 bytes with 100-byte pieces: last piece is 50 bytes.
  Torrent t;
  t.id = 0;
  t.size = 950;
  t.piece_size = 100;
  t.num_pieces = 10;
  EXPECT_EQ(t.piece_bytes(9), 50);
  EXPECT_EQ(t.piece_bytes(0), 100);

  Swarm swarm(t, Rng(2));
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  EXPECT_EQ(swarm.transfer(1, 2, 10'000), 950);
  EXPECT_TRUE(swarm.is_complete(2));
}

TEST(SwarmPropagation, LeecherToLeecherRelay) {
  // 2 downloads from the seed, then serves 3 from its partial pieces.
  Swarm swarm(small_torrent(), Rng(3));
  swarm.add_seeder(1);
  swarm.add_leecher(2);
  swarm.add_leecher(3);
  swarm.transfer(1, 2, 300);
  EXPECT_EQ(swarm.pieces(2).count(), 3);
  EXPECT_TRUE(swarm.interested(3, 2));
  const Bytes moved = swarm.transfer(2, 3, 10'000);
  EXPECT_EQ(moved, 300);  // everything 2 owns
  EXPECT_EQ(swarm.pieces(3).count(), 3);
}

TEST(SwarmDeathTest, DuplicateJoinRejected) {
  Swarm swarm(small_torrent(), Rng(4));
  swarm.add_leecher(1);
  EXPECT_DEATH(swarm.add_leecher(1), "already");
}

TEST(SwarmDeathTest, TransferForeignPeerRejected) {
  Swarm swarm(small_torrent(), Rng(5));
  swarm.add_seeder(1);
  EXPECT_DEATH(swarm.transfer(1, 9, 100), "not in swarm");
}

}  // namespace
}  // namespace bc::bt
