#include "bittorrent/piece_picker.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bc::bt {
namespace {

struct PickerFixture : ::testing::Test {
  PickerFixture()
      : mine(8), theirs(8, true), availability(8), rng(1) {}

  PickRequest request() {
    PickRequest req;
    req.mine = &mine;
    req.theirs = &theirs;
    req.availability = &availability;
    req.in_flight = &in_flight;
    req.random_first_threshold = 0;  // pure rarest-first unless overridden
    return req;
  }

  Bitfield mine;
  Bitfield theirs;
  Availability availability;
  std::unordered_set<int> in_flight;
  Rng rng;
};

TEST_F(PickerFixture, PicksRarestPiece) {
  // Piece 5 is the rarest (availability 1), everything else higher.
  for (int p = 0; p < 8; ++p) {
    for (int c = 0; c < (p == 5 ? 1 : 3); ++c) availability.add_piece(p);
  }
  const auto pick = pick_piece(request(), rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 5);
}

TEST_F(PickerFixture, SkipsOwnedPieces) {
  for (int p = 0; p < 8; ++p) availability.add_piece(p);
  for (int p = 0; p < 7; ++p) mine.set(p);
  const auto pick = pick_piece(request(), rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 7);
}

TEST_F(PickerFixture, SkipsPiecesUploaderLacks) {
  Bitfield partial(8);
  partial.set(3);
  auto req = request();
  req.theirs = &partial;
  const auto pick = pick_piece(req, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 3);
}

TEST_F(PickerFixture, SkipsInFlight) {
  Bitfield partial(8);
  partial.set(3);
  partial.set(4);
  in_flight.insert(3);
  auto req = request();
  req.theirs = &partial;
  const auto pick = pick_piece(req, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 4);
}

TEST_F(PickerFixture, NothingUsefulReturnsNullopt) {
  Bitfield nothing(8);
  auto req = request();
  req.theirs = &nothing;
  EXPECT_FALSE(pick_piece(req, rng).has_value());
}

TEST_F(PickerFixture, CompleteDownloaderGetsNothing) {
  for (int p = 0; p < 8; ++p) mine.set(p);
  EXPECT_FALSE(pick_piece(request(), rng).has_value());
}

TEST_F(PickerFixture, AllInFlightReturnsNullopt) {
  for (int p = 0; p < 8; ++p) in_flight.insert(p);
  EXPECT_FALSE(pick_piece(request(), rng).has_value());
}

TEST_F(PickerFixture, RandomFirstIgnoresRarity) {
  // With the random-first threshold active, common pieces are fair game.
  for (int p = 0; p < 8; ++p) {
    for (int c = 0; c < (p == 5 ? 1 : 3); ++c) availability.add_piece(p);
  }
  auto req = request();
  req.random_first_threshold = 4;  // mine.count()==0 < 4 -> random mode
  std::set<int> chosen;
  for (int i = 0; i < 200; ++i) {
    const auto pick = pick_piece(req, rng);
    ASSERT_TRUE(pick.has_value());
    chosen.insert(*pick);
  }
  EXPECT_GT(chosen.size(), 4u);  // spread, not always the rarest
}

TEST_F(PickerFixture, RarestTieBrokenUniformlyIsh) {
  // Pieces 2 and 6 equally rare; both must be chosen sometimes.
  for (int p = 0; p < 8; ++p) {
    for (int c = 0; c < ((p == 2 || p == 6) ? 1 : 5); ++c) {
      availability.add_piece(p);
    }
  }
  std::set<int> chosen;
  for (int i = 0; i < 100; ++i) {
    chosen.insert(*pick_piece(request(), rng));
  }
  EXPECT_EQ(chosen, (std::set<int>{2, 6}));
}

TEST(Availability, TracksBitfields) {
  Availability a(4);
  Bitfield b(4);
  b.set(1);
  b.set(2);
  a.add_bitfield(b);
  EXPECT_EQ(a.count(0), 0);
  EXPECT_EQ(a.count(1), 1);
  a.add_piece(1);
  EXPECT_EQ(a.count(1), 2);
  a.remove_bitfield(b);
  EXPECT_EQ(a.count(1), 1);
  EXPECT_EQ(a.count(2), 0);
}

TEST(AvailabilityDeathTest, RemoveBelowZero) {
  Availability a(2);
  Bitfield b(2);
  b.set(0);
  EXPECT_DEATH(a.remove_bitfield(b), "");
}

}  // namespace
}  // namespace bc::bt
