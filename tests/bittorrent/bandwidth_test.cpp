#include "bittorrent/bandwidth.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

namespace bc::bt {
namespace {

AccessProfile profile(Rate up, Rate down) {
  AccessProfile p;
  p.uplink = up;
  p.downlink = down;
  return p;
}

TEST(Bandwidth, EmptyLinks) {
  const auto rates =
      allocate_rates({}, [](PeerId) { return AccessProfile{}; });
  EXPECT_TRUE(rates.empty());
}

TEST(Bandwidth, SingleLinkGetsFullUplink) {
  const std::vector<LinkRequest> links{{1, 2}};
  const auto rates = allocate_rates(
      links, [](PeerId) { return profile(100.0, 1000.0); });
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(Bandwidth, UplinkSplitsEquallyAcrossLinks) {
  const std::vector<LinkRequest> links{{1, 2}, {1, 3}, {1, 4}, {1, 5}};
  const auto rates = allocate_rates(
      links, [](PeerId) { return profile(400.0, 10000.0); });
  for (const Rate r : rates) EXPECT_DOUBLE_EQ(r, 100.0);
}

TEST(Bandwidth, SplitIsPerUploaderAcrossSwarmsImplicitly) {
  // Links from two different uploaders do not affect each other.
  const std::vector<LinkRequest> links{{1, 3}, {2, 3}, {1, 4}};
  const auto rates = allocate_rates(
      links, [](PeerId) { return profile(100.0, 10000.0); });
  EXPECT_DOUBLE_EQ(rates[0], 50.0);   // 1 has two links
  EXPECT_DOUBLE_EQ(rates[1], 100.0);  // 2 has one
  EXPECT_DOUBLE_EQ(rates[2], 50.0);
}

TEST(Bandwidth, DownlinkCapScalesProportionally) {
  // Receiver 9 gets 100 from each of three uploaders but can take 150.
  const std::vector<LinkRequest> links{{1, 9}, {2, 9}, {3, 9}};
  const auto rates = allocate_rates(
      links, [](PeerId) { return profile(100.0, 150.0); });
  double sum = 0.0;
  for (const Rate r : rates) {
    EXPECT_DOUBLE_EQ(r, 50.0);
    sum += r;
  }
  EXPECT_DOUBLE_EQ(sum, 150.0);
}

TEST(Bandwidth, DownlinkCapOnlyAffectsTheOversubscribedReceiver) {
  const std::vector<LinkRequest> links{{1, 9}, {2, 9}, {3, 8}};
  const auto rates = allocate_rates(links, [](PeerId p) {
    return p == 9 ? profile(100.0, 100.0) : profile(100.0, 10000.0);
  });
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
  EXPECT_DOUBLE_EQ(rates[2], 100.0);  // receiver 8 unaffected
}

TEST(Bandwidth, ConservationUplink) {
  // No uploader exceeds its uplink.
  const std::vector<LinkRequest> links{{1, 2}, {1, 3}, {1, 4},
                                       {2, 3}, {2, 4}, {3, 4}};
  const auto rates = allocate_rates(
      links, [](PeerId) { return profile(120.0, 200.0); });
  std::unordered_map<PeerId, Rate> out;
  for (std::size_t i = 0; i < links.size(); ++i) {
    out[links[i].uploader] += rates[i];
  }
  for (const auto& [p, sum] : out) {
    EXPECT_LE(sum, 120.0 + 1e-9) << "uploader " << p;
  }
}

TEST(Bandwidth, ConservationDownlink) {
  const std::vector<LinkRequest> links{{1, 9}, {2, 9}, {3, 9}, {4, 9}};
  const auto rates = allocate_rates(
      links, [](PeerId) { return profile(100.0, 250.0); });
  Rate sum = 0.0;
  for (const Rate r : rates) sum += r;
  EXPECT_LE(sum, 250.0 + 1e-9);
}

TEST(Bandwidth, ZeroUplinkYieldsZeroRates) {
  const std::vector<LinkRequest> links{{1, 2}};
  const auto rates =
      allocate_rates(links, [](PeerId) { return profile(0.0, 100.0); });
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
}

TEST(Bandwidth, AsymmetricProfilesPerPeer) {
  const std::vector<LinkRequest> links{{1, 3}, {2, 3}};
  const auto rates = allocate_rates(links, [](PeerId p) {
    return p == 1 ? profile(300.0, 1000.0) : profile(100.0, 1000.0);
  });
  EXPECT_DOUBLE_EQ(rates[0], 300.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

}  // namespace
}  // namespace bc::bt
