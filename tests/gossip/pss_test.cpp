#include "gossip/pss.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bc::gossip {
namespace {

const PeerSamplingService::CanTalk kAlwaysTalk = [](PeerId, PeerId) {
  return true;
};
const PeerSamplingService::CanTalk kNeverTalk = [](PeerId, PeerId) {
  return false;
};

PeerSamplingService make_pss(std::size_t view_size = 8,
                             std::size_t exchange = 4) {
  PeerSamplingService::Config cfg;
  cfg.seed = 11;
  cfg.view_size = view_size;
  cfg.exchange_size = exchange;
  return PeerSamplingService(cfg);
}

TEST(Pss, RegisterAndBootstrap) {
  auto pss = make_pss();
  pss.register_peer(1);
  EXPECT_TRUE(pss.is_registered(1));
  EXPECT_EQ(pss.view_size(1), 0u);
  const std::vector<PeerId> seeds{2, 3, 4};
  pss.register_peer(2);
  pss.register_peer(3);
  pss.register_peer(4);
  pss.bootstrap(1, seeds);
  EXPECT_EQ(pss.view_size(1), 3u);
}

TEST(Pss, ViewNeverContainsSelf) {
  auto pss = make_pss();
  pss.register_peer(1);
  const std::vector<PeerId> seeds{1, 1, 2};
  pss.register_peer(2);
  pss.bootstrap(1, seeds);
  const auto view = pss.view(1);
  EXPECT_EQ(std::count(view.begin(), view.end(), 1u), 0);
}

TEST(Pss, ViewDeduplicates) {
  auto pss = make_pss();
  pss.register_peer(1);
  pss.register_peer(2);
  const std::vector<PeerId> seeds{2, 2, 2};
  pss.bootstrap(1, seeds);
  EXPECT_EQ(pss.view_size(1), 1u);
}

TEST(Pss, ViewBounded) {
  auto pss = make_pss(/*view_size=*/4);
  pss.register_peer(0);
  std::vector<PeerId> seeds;
  for (PeerId p = 1; p <= 20; ++p) {
    pss.register_peer(p);
    seeds.push_back(p);
  }
  pss.bootstrap(0, seeds);
  EXPECT_EQ(pss.view_size(0), 4u);
}

TEST(Pss, ExchangeReturnsPartnerAndSpreadsEntries) {
  auto pss = make_pss();
  for (PeerId p = 0; p < 6; ++p) pss.register_peer(p);
  const std::vector<PeerId> a_seeds{1};
  const std::vector<PeerId> b_seeds{2, 3, 4, 5};
  pss.bootstrap(0, a_seeds);
  pss.bootstrap(1, b_seeds);
  const PeerId partner = pss.exchange(0, kAlwaysTalk);
  EXPECT_EQ(partner, 1u);
  // 0 must have learned something from 1's view.
  EXPECT_GT(pss.view_size(0), 1u);
  // 1 must now know 0.
  const auto v1 = pss.view(1);
  EXPECT_NE(std::find(v1.begin(), v1.end(), 0u), v1.end());
}

TEST(Pss, ExchangeWithEmptyViewFails) {
  auto pss = make_pss();
  pss.register_peer(0);
  EXPECT_EQ(pss.exchange(0, kAlwaysTalk), kInvalidPeer);
}

TEST(Pss, ExchangeRespectsCanTalk) {
  auto pss = make_pss();
  pss.register_peer(0);
  pss.register_peer(1);
  const std::vector<PeerId> seeds{1};
  pss.bootstrap(0, seeds);
  EXPECT_EQ(pss.exchange(0, kNeverTalk), kInvalidPeer);
  EXPECT_EQ(pss.exchange(0, kAlwaysTalk), 1u);
}

TEST(Pss, ExchangeGarbageCollectsUnregisteredEntries) {
  auto pss = make_pss();
  pss.register_peer(0);
  // 99 was never registered (e.g. a stale entry).
  pss.register_peer(1);
  const std::vector<PeerId> seeds{99, 1};
  pss.bootstrap(0, seeds);
  EXPECT_EQ(pss.view_size(0), 2u);
  (void)pss.exchange(0, kAlwaysTalk);
  const auto view = pss.view(0);
  EXPECT_EQ(std::count(view.begin(), view.end(), 99u), 0);
}

TEST(Pss, SampleFiltersAndBounds) {
  auto pss = make_pss();
  pss.register_peer(0);
  std::vector<PeerId> seeds;
  for (PeerId p = 1; p <= 6; ++p) {
    pss.register_peer(p);
    seeds.push_back(p);
  }
  pss.bootstrap(0, seeds);
  const auto odd_only = [](PeerId, PeerId candidate) {
    return candidate % 2 == 1;
  };
  const auto sample = pss.sample(0, 10, odd_only);
  EXPECT_LE(sample.size(), 3u);
  for (PeerId p : sample) EXPECT_EQ(p % 2, 1u);
  const auto two = pss.sample(0, 2, kAlwaysTalk);
  EXPECT_EQ(two.size(), 2u);
}

TEST(Pss, EpidemicSpreadsKnowledge) {
  // A line bootstrap (each peer knows only its successor) must become a
  // well-mixed set of views after enough random exchanges.
  auto pss = make_pss(/*view_size=*/10, /*exchange=*/5);
  const PeerId n = 20;
  for (PeerId p = 0; p < n; ++p) pss.register_peer(p);
  for (PeerId p = 0; p < n; ++p) {
    const std::vector<PeerId> seed{static_cast<PeerId>((p + 1) % n)};
    pss.bootstrap(p, seed);
  }
  for (int round = 0; round < 30; ++round) {
    for (PeerId p = 0; p < n; ++p) (void)pss.exchange(p, kAlwaysTalk);
  }
  double avg = 0.0;
  for (PeerId p = 0; p < n; ++p) {
    avg += static_cast<double>(pss.view_size(p));
  }
  avg /= n;
  EXPECT_GT(avg, 7.0);  // views filled up by the epidemic
}

TEST(PssDeathTest, DoubleRegistration) {
  auto pss = make_pss();
  pss.register_peer(1);
  EXPECT_DEATH(pss.register_peer(1), "twice");
}

}  // namespace
}  // namespace bc::gossip
