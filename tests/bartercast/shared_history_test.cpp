#include "bartercast/shared_history.hpp"

#include <gtest/gtest.h>

namespace bc::bartercast {
namespace {

BarterCastMessage message_from(PeerId sender,
                               std::vector<BarterRecord> records) {
  BarterCastMessage msg;
  msg.sender = sender;
  msg.sent_at = 1.0;
  msg.records = std::move(records);
  return msg;
}

TEST(SharedHistory, LocalTransfersCreateOwnerEdges) {
  SharedHistory sh(0);
  sh.record_local_upload(1, 100);
  sh.record_local_download(2, 50);
  EXPECT_EQ(sh.graph().capacity(0, 1), 100);
  EXPECT_EQ(sh.graph().capacity(2, 0), 50);
  EXPECT_EQ(sh.graph().num_edges(), 2u);
}

TEST(SharedHistory, LocalTransfersAccumulate) {
  SharedHistory sh(0);
  sh.record_local_upload(1, 100);
  sh.record_local_upload(1, 100);
  EXPECT_EQ(sh.graph().capacity(0, 1), 200);
}

TEST(SharedHistory, ZeroLocalTransferDoesNothing) {
  SharedHistory sh(0);
  const auto v = sh.version();
  sh.record_local_upload(1, 0);
  EXPECT_EQ(sh.version(), v);
  EXPECT_EQ(sh.graph().num_edges(), 0u);
}

TEST(SharedHistory, AppliesSenderRecords) {
  SharedHistory sh(0);
  const auto msg =
      message_from(5, {{5, 6, 100, 40}});
  const auto stats = sh.apply_message(msg);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(sh.graph().capacity(5, 6), 100);
  EXPECT_EQ(sh.graph().capacity(6, 5), 40);
}

TEST(SharedHistory, DropsThirdPartyRecords) {
  SharedHistory sh(0);
  // Sender 5 reports about a (6, 7) pair it is not part of.
  const auto msg = message_from(5, {{6, 7, 100, 40}});
  const auto stats = sh.apply_message(msg);
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_EQ(stats.dropped_third_party, 1u);
  EXPECT_EQ(sh.graph().capacity(6, 7), 0);
}

TEST(SharedHistory, AcceptsRecordWhereSenderIsOther) {
  SharedHistory sh(0);
  // 6 reports the record as (subject=5, other=6): still involves sender 6.
  const auto msg = message_from(6, {{5, 6, 80, 20}});
  const auto stats = sh.apply_message(msg);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(sh.graph().capacity(5, 6), 80);
}

TEST(SharedHistory, DropsSelfReports) {
  SharedHistory sh(0);
  const auto msg = message_from(5, {{5, 5, 100, 40}});
  const auto stats = sh.apply_message(msg);
  EXPECT_EQ(stats.dropped_self_report, 1u);
  EXPECT_EQ(stats.applied, 0u);
}

TEST(SharedHistory, OwnerEdgesProtectedFromGossip) {
  // §3.4: the owner's incident edges come only from its private history.
  SharedHistory sh(0);
  sh.record_local_upload(5, 10);
  const auto msg = message_from(5, {{5, 0, 1'000'000, 0}});
  const auto stats = sh.apply_message(msg);
  EXPECT_EQ(stats.dropped_own_edge, 1u);
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_EQ(sh.graph().capacity(5, 0), 0);   // the claim was ignored
  EXPECT_EQ(sh.graph().capacity(0, 5), 10);  // private history intact
}

TEST(SharedHistory, RemoteClaimsMergeWithMax) {
  SharedHistory sh(0);
  sh.apply_message(message_from(5, {{5, 6, 100, 0}}));
  // An older/smaller claim must not shrink the edge.
  sh.apply_message(message_from(5, {{5, 6, 60, 0}}));
  EXPECT_EQ(sh.graph().capacity(5, 6), 100);
  // A newer/larger claim grows it.
  sh.apply_message(message_from(5, {{5, 6, 150, 0}}));
  EXPECT_EQ(sh.graph().capacity(5, 6), 150);
}

TEST(SharedHistory, BothDirectionsOfRecordApplied) {
  SharedHistory sh(0);
  sh.apply_message(message_from(5, {{5, 6, 0, 70}}));
  EXPECT_EQ(sh.graph().capacity(5, 6), 0);
  EXPECT_EQ(sh.graph().capacity(6, 5), 70);
}

TEST(SharedHistory, VersionBumpsOnChangeOnly) {
  SharedHistory sh(0);
  const auto v0 = sh.version();
  sh.apply_message(message_from(5, {{5, 6, 100, 0}}));
  const auto v1 = sh.version();
  EXPECT_GT(v1, v0);
  // Re-applying the identical message changes nothing.
  sh.apply_message(message_from(5, {{5, 6, 100, 0}}));
  EXPECT_EQ(sh.version(), v1);
}

TEST(SharedHistory, LastChangeTracksGossipEndpoints) {
  SharedHistory sh(0);
  EXPECT_EQ(sh.last_change(5), 0u);
  sh.apply_message(message_from(5, {{5, 6, 100, 40}}));
  EXPECT_EQ(sh.last_change(5), sh.version());
  EXPECT_EQ(sh.last_change(6), sh.version());
  EXPECT_EQ(sh.last_change(7), 0u);  // untouched peer stays at zero
}

TEST(SharedHistory, LastChangeMarksOwnerEdgeNeighbourhood) {
  SharedHistory sh(0);
  sh.apply_message(message_from(5, {{5, 6, 100, 0}}));   // v1: marks {5, 6}
  sh.apply_message(message_from(8, {{8, 9, 100, 0}}));   // v2: marks {8, 9}
  const auto v2 = sh.version();
  // A local transfer with 5 changes an owner-incident edge, which feeds
  // the two-hop flow of every neighbour of 5 — so 6 is re-marked too.
  sh.record_local_download(5, 100);
  const auto v3 = sh.version();
  EXPECT_GT(v3, v2);
  EXPECT_EQ(sh.last_change(5), v3);
  EXPECT_EQ(sh.last_change(6), v3);
  // Peers outside 5's neighbourhood keep their older marks.
  EXPECT_EQ(sh.last_change(8), v2);
  EXPECT_EQ(sh.last_change(9), v2);
}

TEST(SharedHistory, UnchangedReplayDoesNotTouchLastChange) {
  SharedHistory sh(0);
  const auto msg = message_from(5, {{5, 6, 100, 40}});
  sh.apply_message(msg);
  const auto v1 = sh.version();
  sh.apply_message(msg);  // max()-merge: nothing changes
  EXPECT_EQ(sh.version(), v1);
  EXPECT_EQ(sh.last_change(5), v1);
  EXPECT_EQ(sh.last_change(6), v1);
}

TEST(SharedHistory, HonestReplayIsIdempotent) {
  SharedHistory sh(0);
  const auto msg = message_from(5, {{5, 6, 100, 40}, {5, 7, 10, 20}});
  sh.apply_message(msg);
  const auto edges_before = sh.graph().num_edges();
  const auto cap_before = sh.graph().total_capacity();
  sh.apply_message(msg);
  sh.apply_message(msg);
  EXPECT_EQ(sh.graph().num_edges(), edges_before);
  EXPECT_EQ(sh.graph().total_capacity(), cap_before);
}

}  // namespace
}  // namespace bc::bartercast
