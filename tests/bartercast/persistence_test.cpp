#include "bartercast/persistence.hpp"

#include <gtest/gtest.h>

#include "bartercast/codec.hpp"

namespace bc::bartercast {
namespace {

Node busy_node() {
  Node n(3);
  n.on_bytes_sent(1, 100, 1.0);
  n.on_bytes_received(1, 40, 2.0);
  n.on_bytes_received(2, 7000, 3.5);
  n.on_peer_seen(9, 4.0);
  // Remote knowledge via gossip.
  BarterCastMessage msg;
  msg.sender = 5;
  msg.records.push_back({5, 6, 1234, 777});
  n.receive_message(msg);
  return n;
}

TEST(Persistence, RoundTripsState) {
  const Node original = busy_node();
  const std::string text = save_node_to_string(original);

  std::string error;
  const auto loaded = load_node_from_string(text, {}, &error);
  ASSERT_NE(loaded, nullptr) << error;

  EXPECT_EQ(loaded->id(), original.id());
  EXPECT_EQ(loaded->history().uploaded_to(1), 100);
  EXPECT_EQ(loaded->history().downloaded_from(1), 40);
  EXPECT_EQ(loaded->history().downloaded_from(2), 7000);
  EXPECT_TRUE(loaded->history().contains(9));  // touch survived
  EXPECT_EQ(loaded->view().graph().capacity(5, 6), 1234);
  EXPECT_EQ(loaded->view().graph().capacity(6, 5), 777);
  EXPECT_EQ(loaded->view().graph().capacity(3, 1), 100);
  EXPECT_EQ(loaded->view().graph().capacity(1, 3), 40);
}

TEST(Persistence, RoundTripIsStable) {
  const Node original = busy_node();
  const std::string once = save_node_to_string(original);
  const auto loaded = load_node_from_string(once, {});
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(save_node_to_string(*loaded), once);
}

TEST(Persistence, ReputationsSurviveReload) {
  Node original = busy_node();
  const auto loaded = load_node_from_string(save_node_to_string(original), {});
  ASSERT_NE(loaded, nullptr);
  for (PeerId p : {1u, 2u, 5u, 6u}) {
    EXPECT_DOUBLE_EQ(loaded->reputation(p), original.reputation(p))
        << "peer " << p;
  }
}

TEST(Persistence, EmptyNodeRoundTrips) {
  const Node empty(17);
  const auto loaded = load_node_from_string(save_node_to_string(empty), {});
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->id(), 17u);
  EXPECT_EQ(loaded->history().size(), 0u);
}

TEST(Persistence, RejectsMissingHeader) {
  std::string error;
  EXPECT_EQ(load_node_from_string("#history,1,2,3,4\n", {}, &error), nullptr);
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(Persistence, RejectsWrongVersion) {
  std::string error;
  EXPECT_EQ(load_node_from_string("#bartercast-node,99,3\n", {}, &error),
            nullptr);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(Persistence, RejectsDuplicateHeader) {
  const std::string text =
      "#bartercast-node,1,3\n#bartercast-node,1,3\n";
  EXPECT_EQ(load_node_from_string(text, {}), nullptr);
}

TEST(Persistence, RejectsMalformedRows) {
  EXPECT_EQ(
      load_node_from_string("#bartercast-node,1,3\n#history,abc,1,2,3\n", {}),
      nullptr);
  EXPECT_EQ(
      load_node_from_string("#bartercast-node,1,3\n#edge,1,2\n", {}),
      nullptr);
  EXPECT_EQ(
      load_node_from_string("#bartercast-node,1,3\n#bogus,1\n", {}),
      nullptr);
}

TEST(Persistence, RejectsNegativeAmounts) {
  EXPECT_EQ(
      load_node_from_string("#bartercast-node,1,3\n#history,1,-5,0,0\n", {}),
      nullptr);
  EXPECT_EQ(
      load_node_from_string("#bartercast-node,1,3\n#edge,1,2,-5\n", {}),
      nullptr);
}

TEST(Persistence, RejectsTamperedOwnerEdges) {
  // An #edge row incident to the owner would bypass the private-history
  // authority; the loader must refuse it.
  std::string error;
  EXPECT_EQ(load_node_from_string(
                "#bartercast-node,1,3\n#edge,3,5,1000\n", {}, &error),
            nullptr);
  EXPECT_EQ(load_node_from_string(
                "#bartercast-node,1,3\n#edge,5,3,1000\n", {}, &error),
            nullptr);
}

TEST(Persistence, RejectsSelfHistory) {
  EXPECT_EQ(
      load_node_from_string("#bartercast-node,1,3\n#history,3,1,1,0\n", {}),
      nullptr);
}

}  // namespace
}  // namespace bc::bartercast
