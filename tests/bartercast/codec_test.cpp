#include "bartercast/codec.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace bc::bartercast {
namespace {

BarterCastMessage sample_message() {
  BarterCastMessage msg;
  msg.sender = 42;
  msg.sent_at = 1234.5;
  msg.records.push_back({42, 7, 1000, 2000});
  msg.records.push_back({42, 9, 0, 5});
  return msg;
}

TEST(Codec, RoundTripsSample) {
  const auto msg = sample_message();
  const auto bytes = encode(msg);
  EXPECT_EQ(bytes.size(), encoded_size(msg.records.size()));
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, msg.sender);
  EXPECT_EQ(decoded->sent_at, msg.sent_at);
  EXPECT_EQ(decoded->records, msg.records);
}

TEST(Codec, RoundTripsEmptyMessage) {
  BarterCastMessage msg;
  msg.sender = 1;
  msg.sent_at = 0.0;
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->records.empty());
}

TEST(Codec, RejectsEmptyInput) {
  EXPECT_FALSE(decode({}).has_value());
}

TEST(Codec, RejectsBadMagic) {
  auto bytes = encode(sample_message());
  bytes[0] = 0x00;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsBadVersion) {
  auto bytes = encode(sample_message());
  bytes[1] = 99;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsEveryTruncation) {
  const auto bytes = encode(sample_message());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode(std::span(bytes.data(), len)).has_value())
        << "truncated to " << len;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  auto bytes = encode(sample_message());
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsOversizedRecordCount) {
  auto bytes = encode(sample_message());
  // Patch the record count (offset 14) to an absurd value.
  bytes[14] = 0xFF;
  bytes[15] = 0xFF;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsAbsurdAmounts) {
  auto bytes = encode(sample_message());
  // First record's subject_to_other starts at offset 16 + 8 = 24.
  for (std::size_t i = 24; i < 32; ++i) bytes[i] = 0xFF;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsNanTimestamp) {
  BarterCastMessage msg = sample_message();
  msg.sent_at = std::numeric_limits<double>::quiet_NaN();
  const auto bytes = encode(msg);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RandomBytesNeverCrash) {
  Rng rng(5);
  for (int round = 0; round < 500; ++round) {
    std::vector<std::uint8_t> junk(rng.index(200));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)decode(junk);  // must not crash / UB; result irrelevant
  }
}

TEST(Codec, BitFlipsNeverCrashAndOftenReject) {
  Rng rng(6);
  const auto original = encode(sample_message());
  for (int round = 0; round < 500; ++round) {
    auto bytes = original;
    const std::size_t pos = rng.index(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.index(8));
    const auto decoded = decode(bytes);
    if (decoded.has_value()) {
      // A surviving flip must still satisfy the structural bounds.
      EXPECT_LE(decoded->records.size(), kMaxRecords);
      for (const auto& r : decoded->records) {
        EXPECT_GE(r.subject_to_other, 0);
        EXPECT_GE(r.other_to_subject, 0);
      }
    }
  }
}

TEST(Codec, RoundTripsRandomMessages) {
  Rng rng(7);
  for (int round = 0; round < 100; ++round) {
    BarterCastMessage msg;
    msg.sender = static_cast<PeerId>(rng.uniform_int(0, 1 << 30));
    msg.sent_at = rng.uniform(0.0, 1e9);
    const std::size_t n = rng.index(30);
    for (std::size_t i = 0; i < n; ++i) {
      msg.records.push_back(
          {static_cast<PeerId>(rng.uniform_int(0, 1 << 30)),
           static_cast<PeerId>(rng.uniform_int(0, 1 << 30)),
           rng.uniform_int(0, kGiB), rng.uniform_int(0, kGiB)});
    }
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->sender, msg.sender);
    EXPECT_EQ(decoded->records, msg.records);
  }
}

TEST(CodecDeathTest, EncodeRejectsOversizedMessages) {
  BarterCastMessage msg;
  msg.sender = 1;
  msg.records.resize(kMaxRecords + 1);
  EXPECT_DEATH((void)encode(msg), "record cap");
}

}  // namespace
}  // namespace bc::bartercast
