#include "bartercast/node.hpp"

#include <gtest/gtest.h>

namespace bc::bartercast {
namespace {

TEST(Node, TransfersUpdateHistoryAndView) {
  Node n(0);
  n.on_bytes_sent(1, 100, 1.0);
  n.on_bytes_received(2, 200, 2.0);
  EXPECT_EQ(n.history().uploaded_to(1), 100);
  EXPECT_EQ(n.history().downloaded_from(2), 200);
  EXPECT_EQ(n.view().graph().capacity(0, 1), 100);
  EXPECT_EQ(n.view().graph().capacity(2, 0), 200);
}

TEST(Node, ReputationFromDirectExperience) {
  Node n(0);
  n.on_bytes_received(1, kGiB, 1.0);
  n.on_bytes_sent(2, kGiB, 1.0);
  EXPECT_GT(n.reputation(1), 0.0);
  EXPECT_LT(n.reputation(2), 0.0);
  EXPECT_EQ(n.reputation(3), 0.0);  // stranger is neutral
}

TEST(Node, MessageRoundTripBetweenNodes) {
  Node a(0), b(1);
  b.on_bytes_sent(2, 500 * kMiB, 1.0);   // b served peer 2
  b.on_bytes_received(2, 100 * kMiB, 1.0);
  a.on_bytes_received(1, kGiB, 2.0);     // a's direct anchor toward b

  const auto stats = a.receive_message(b.make_message(3.0));
  EXPECT_EQ(stats.applied, 1u);
  // a now knows b->2 and 2->b, enabling a two-hop view of peer 2:
  // flow(2 -> a) = min(2->b claims... none) -- 2 uploaded to b 100 MiB,
  // b uploaded to a 1 GiB -> flow(2->a) = 100 MiB;
  // flow(a -> 2) = 0 (a never uploaded). So reputation of 2 is positive.
  EXPECT_GT(a.reputation(2), 0.0);
}

TEST(Node, LiarCannotInflateBeyondEvaluatorAnchor) {
  // The §3.4 containment argument, end to end through the Node API.
  NodeConfig cfg;
  Node me(0, cfg);
  Node liar(9, cfg);

  // I received only 50 MiB from the intermediary 1.
  me.on_bytes_received(1, 50 * kMiB, 1.0);

  // The liar claims it uploaded terabytes to intermediary 1.
  PrivateHistory fabricated(9);
  fabricated.touch(1, 1.0);
  const auto lie =
      build_lying_message(fabricated, cfg.selection, 1000 * kGiB, 2.0);
  me.receive_message(lie);

  ReputationEngine engine(cfg.reputation);
  const double max_possible = engine.scale(50 * kMiB);
  EXPECT_LE(me.reputation(9), max_possible + 1e-12);
  EXPECT_GT(me.reputation(9), 0.0);  // some credit flows, but capped
}

TEST(Node, OwnEdgesImmuneToRemoteLies) {
  Node me(0);
  Node liar(9);
  // Liar claims it uploaded a lot directly to me; I know better.
  PrivateHistory fabricated(9);
  fabricated.touch(0, 1.0);
  const auto lie = build_lying_message(fabricated, {}, 1000 * kGiB, 2.0);
  const auto stats = me.receive_message(lie);
  EXPECT_EQ(stats.dropped_own_edge, 1u);
  EXPECT_EQ(me.reputation(9), 0.0);
}

TEST(Node, PeerSeenAffectsMessageSelection) {
  NodeConfig cfg;
  cfg.selection.nh = 0;
  cfg.selection.nr = 1;
  Node n(0, cfg);
  n.on_bytes_sent(1, 10, 1.0);
  n.on_peer_seen(2, 5.0);  // most recent
  const auto msg = n.make_message(6.0);
  ASSERT_EQ(msg.records.size(), 1u);
  EXPECT_EQ(msg.records[0].other, 2u);
}

TEST(Node, ReputationReactsToNewInformation) {
  Node n(0);
  EXPECT_EQ(n.reputation(1), 0.0);
  n.on_bytes_received(1, kGiB, 1.0);
  const double r1 = n.reputation(1);
  EXPECT_GT(r1, 0.0);
  n.on_bytes_sent(1, 2 * kGiB, 2.0);
  EXPECT_LT(n.reputation(1), r1);
}

}  // namespace
}  // namespace bc::bartercast
