#include "bartercast/message.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace bc::bartercast {
namespace {

bool has_record_about(const BarterCastMessage& msg, PeerId other) {
  return std::any_of(msg.records.begin(), msg.records.end(),
                     [&](const BarterRecord& r) { return r.other == other; });
}

TEST(Message, EmptyHistoryGivesEmptyMessage) {
  PrivateHistory h(0);
  const auto msg = build_message(h, {}, 1.0);
  EXPECT_EQ(msg.sender, 0u);
  EXPECT_EQ(msg.sent_at, 1.0);
  EXPECT_TRUE(msg.records.empty());
}

TEST(Message, RecordsCarryHistoryValues) {
  PrivateHistory h(0);
  h.record_upload(1, 100, 1.0);
  h.record_download(1, 40, 1.0);
  const auto msg = build_message(h, {}, 2.0);
  ASSERT_EQ(msg.records.size(), 1u);
  EXPECT_EQ(msg.records[0].subject, 0u);
  EXPECT_EQ(msg.records[0].other, 1u);
  EXPECT_EQ(msg.records[0].subject_to_other, 100);
  EXPECT_EQ(msg.records[0].other_to_subject, 40);
}

TEST(Message, SelectsTopUploadersAndMostRecent) {
  PrivateHistory h(0);
  // Peers 1..5 upload decreasing amounts at time 1; peer 9 seen last.
  for (PeerId p = 1; p <= 5; ++p) {
    h.record_download(p, 600 - 100 * p, 1.0);
  }
  h.touch(9, 99.0);
  MessageSelection sel;
  sel.nh = 2;  // top uploaders: 1, 2
  sel.nr = 1;  // most recent: 9
  const auto msg = build_message(h, sel, 100.0);
  EXPECT_EQ(msg.records.size(), 3u);
  EXPECT_TRUE(has_record_about(msg, 1));
  EXPECT_TRUE(has_record_about(msg, 2));
  EXPECT_TRUE(has_record_about(msg, 9));
  EXPECT_FALSE(has_record_about(msg, 5));
}

TEST(Message, OverlappingSelectionsDeduplicate) {
  PrivateHistory h(0);
  h.record_download(1, 100, 5.0);  // both top uploader and most recent
  MessageSelection sel;
  sel.nh = 5;
  sel.nr = 5;
  const auto msg = build_message(h, sel, 6.0);
  EXPECT_EQ(msg.records.size(), 1u);
}

TEST(Message, SelectionCapsRespected) {
  PrivateHistory h(0);
  for (PeerId p = 1; p <= 30; ++p) {
    h.record_download(p, 10 * p, static_cast<Seconds>(p));
  }
  MessageSelection sel;
  sel.nh = 10;
  sel.nr = 10;
  const auto msg = build_message(h, sel, 31.0);
  EXPECT_LE(msg.records.size(), 20u);
  EXPECT_GE(msg.records.size(), 10u);
}

TEST(LyingMessage, ClaimsHugeUploadZeroDownload) {
  PrivateHistory h(3);
  h.record_download(1, 500, 1.0);
  h.record_upload(1, 5, 1.0);
  h.record_download(2, 300, 2.0);
  const auto msg = build_lying_message(h, {}, 1'000'000, 3.0);
  EXPECT_EQ(msg.sender, 3u);
  ASSERT_EQ(msg.records.size(), 2u);
  for (const auto& r : msg.records) {
    EXPECT_EQ(r.subject, 3u);
    EXPECT_EQ(r.subject_to_other, 1'000'000);
    EXPECT_EQ(r.other_to_subject, 0);
  }
}

TEST(LyingMessage, SameSelectionAsHonest) {
  PrivateHistory h(0);
  for (PeerId p = 1; p <= 8; ++p) {
    h.record_download(p, 10 * p, static_cast<Seconds>(p));
  }
  MessageSelection sel;
  sel.nh = 2;
  sel.nr = 2;
  const auto honest = build_message(h, sel, 9.0);
  const auto lying = build_lying_message(h, sel, 1000, 9.0);
  ASSERT_EQ(honest.records.size(), lying.records.size());
  for (std::size_t i = 0; i < honest.records.size(); ++i) {
    EXPECT_EQ(honest.records[i].other, lying.records[i].other);
    EXPECT_EQ(lying.records[i].subject, 0u);
  }
}

}  // namespace
}  // namespace bc::bartercast
