// Unit suite for the pluggable reputation backends (backend.hpp): the
// differential-gossip metric's scores, determinism, and memoisation, the
// kind parsing/factory, and the cross-backend property that both metrics
// rank a clear sharer above a clear freerider on the same evidence.
#include "bartercast/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bartercast/shared_history.hpp"
#include "graph/flow_graph.hpp"

namespace bc::bartercast {
namespace {

TEST(BackendKindNames, RoundTrip) {
  EXPECT_EQ(backend_name(BackendKind::kMaxflow), "maxflow");
  EXPECT_EQ(backend_name(BackendKind::kDifferentialGossip),
            "differential-gossip");
  EXPECT_EQ(parse_backend("maxflow"), BackendKind::kMaxflow);
  EXPECT_EQ(parse_backend("differential-gossip"),
            BackendKind::kDifferentialGossip);
}

TEST(BackendKindNames, AliasesAndSeparators) {
  EXPECT_EQ(parse_backend("gossip"), BackendKind::kDifferentialGossip);
  EXPECT_EQ(parse_backend("differential_gossip"),
            BackendKind::kDifferentialGossip);
  EXPECT_EQ(parse_backend("pagerank"), std::nullopt);
  EXPECT_EQ(parse_backend(""), std::nullopt);
}

TEST(MakeBackend, ConstructsSelectedKind) {
  const auto mf = make_backend(BackendKind::kMaxflow, ReputationConfig{},
                               DifferentialGossipConfig{});
  const auto dg = make_backend(BackendKind::kDifferentialGossip,
                               ReputationConfig{},
                               DifferentialGossipConfig{});
  EXPECT_EQ(mf->name(), "maxflow");
  EXPECT_EQ(dg->name(), "differential-gossip");
  // The production maxflow mode supports per-subject dirty tracking; the
  // gossip sweep is global and must not.
  EXPECT_TRUE(mf->incremental_two_hop());
  EXPECT_FALSE(dg->incremental_two_hop());
}

TEST(DifferentialGossip, ZeroRoundsIsThePurePrior) {
  graph::FlowGraph g;
  g.add_capacity(1, 0, kGiB);  // peer 1 served 1 GiB to peer 0
  DifferentialGossipConfig cfg;
  cfg.rounds = 0;
  const DifferentialGossipBackend backend(cfg);
  const auto scores = backend.scores(g);
  // Prior of peer 1: atan(+1 GiB / 1 GiB) / (pi/2) = 0.5 exactly; peer 0
  // mirrors it negatively.
  EXPECT_NEAR(scores.at(1), 0.5, 1e-12);
  EXPECT_NEAR(scores.at(0), -0.5, 1e-12);
}

TEST(DifferentialGossip, SharerConvergesPositiveFreeriderNegative) {
  // Peer 1 seeds everyone; peer 2 only consumes; peers 0 and 3 trade.
  graph::FlowGraph g;
  g.add_capacity(1, 0, 4 * kGiB);
  g.add_capacity(1, 2, 4 * kGiB);
  g.add_capacity(1, 3, 4 * kGiB);
  g.add_capacity(0, 2, 2 * kGiB);
  g.add_capacity(0, 3, kGiB);
  g.add_capacity(3, 0, kGiB);
  const DifferentialGossipBackend backend;
  const auto scores = backend.scores(g);
  EXPECT_GT(scores.at(1), 0.0);
  EXPECT_LT(scores.at(2), 0.0);
  EXPECT_GT(scores.at(1), scores.at(2));
}

TEST(DifferentialGossip, ScoresAreDeterministic) {
  graph::FlowGraph g;
  g.add_capacity(2, 0, 3 * kGiB);
  g.add_capacity(2, 1, kGiB);
  g.add_capacity(0, 1, 2 * kGiB);
  g.add_capacity(1, 0, 512 * kMiB);
  const DifferentialGossipBackend backend;
  const auto first = backend.scores(g);
  const auto second = backend.scores(g);
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [peer, value] : first) {
    // Bit-identical, not just close: the sweep's FP order is fixed.
    EXPECT_EQ(second.at(peer), value) << "peer " << peer;
  }
}

TEST(DifferentialGossip, ScoresStayBounded) {
  graph::FlowGraph g;
  // Extreme volumes must not push a score outside [-1, 1].
  g.add_capacity(0, 1, 500 * kGiB);
  g.add_capacity(1, 2, 500 * kGiB);
  g.add_capacity(2, 0, kMiB);
  const DifferentialGossipBackend backend;
  for (const auto& [peer, value] : backend.scores(g)) {
    EXPECT_GE(value, -1.0) << "peer " << peer;
    EXPECT_LE(value, 1.0) << "peer " << peer;
  }
}

TEST(DifferentialGossip, IsolatedPeerKeepsItsPrior) {
  graph::FlowGraph g;
  g.add_capacity(0, 1, kGiB);
  g.add_capacity(2, 3, 2 * kGiB);  // component disjoint from {0, 1}
  const DifferentialGossipBackend backend;
  const auto scores = backend.scores(g);
  // Peer 2's opinion pool is only peer 3 and vice versa; scores still
  // exist and carry the right sign.
  EXPECT_GT(scores.at(2), 0.0);
  EXPECT_LT(scores.at(3), 0.0);
}

TEST(DifferentialGossip, ViewOwnerAndUnknownSubjectsAreNeutral) {
  SharedHistory view(/*owner=*/0);
  view.record_local_download(1, kGiB);
  const DifferentialGossipBackend backend;
  EXPECT_EQ(backend.reputation(view, 0), 0.0);   // self
  EXPECT_EQ(backend.reputation(view, 99), 0.0);  // never seen
  EXPECT_GT(backend.reputation(view, 1), 0.0);   // served the owner
}

TEST(DifferentialGossip, MemoRefreshesWhenTheViewChanges) {
  SharedHistory view(/*owner=*/0);
  view.record_local_download(1, kGiB);
  const DifferentialGossipBackend backend;
  const double before = backend.reputation(view, 1);
  EXPECT_GT(before, 0.0);
  // The owner now uploads far more to 1 than it received: 1's net (and
  // with it the gossip score) must flip once the version bumps.
  view.record_local_upload(1, 10 * kGiB);
  const double after = backend.reputation(view, 1);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.0);
}

TEST(CachedReputationBackend, GossipBackendDisablesIncrementalMode) {
  SharedHistory view(/*owner=*/0);
  CachedReputation cache(
      view, std::make_unique<DifferentialGossipBackend>());
  EXPECT_FALSE(cache.incremental());
  EXPECT_EQ(cache.backend().name(), "differential-gossip");
}

TEST(CachedReputationBackend, CachesPerVersionAcrossBackends) {
  for (const BackendKind kind :
       {BackendKind::kMaxflow, BackendKind::kDifferentialGossip}) {
    SharedHistory view(/*owner=*/0);
    view.record_local_download(1, kGiB);
    CachedReputation cache(view,
                           make_backend(kind, ReputationConfig{},
                                        DifferentialGossipConfig{}));
    const double first = cache.reputation(1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.reputation(1), first);
    EXPECT_EQ(cache.hits(), 1u);
    view.record_local_download(1, kGiB);  // version bump invalidates
    const double updated = cache.reputation(1);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_GT(updated, first);  // 1 served even more
  }
}

// The headline cross-backend property: on identical evidence both
// aggregation metrics rank a clear sharer strictly above a clear
// freerider, so policy thresholds retain their sign under a backend swap.
TEST(CrossBackendProperty, BothBackendsRankSharerAboveFreerider) {
  constexpr PeerId kEvaluator = 0;
  constexpr PeerId kSharer = 1;
  constexpr PeerId kFreerider = 2;
  SharedHistory view(kEvaluator);
  // The sharer served the evaluator 5 GiB; the freerider consumed 3 GiB
  // from the evaluator and returned nothing.
  view.record_local_download(kSharer, 5 * kGiB);
  view.record_local_upload(kFreerider, 3 * kGiB);

  for (const BackendKind kind :
       {BackendKind::kMaxflow, BackendKind::kDifferentialGossip}) {
    const auto backend = make_backend(kind, ReputationConfig{},
                                      DifferentialGossipConfig{});
    const double sharer = backend->reputation(view, kSharer);
    const double freerider = backend->reputation(view, kFreerider);
    EXPECT_GT(sharer, 0.0) << backend->name();
    EXPECT_LT(freerider, 0.0) << backend->name();
    EXPECT_GT(sharer, freerider) << backend->name();
  }
}

}  // namespace
}  // namespace bc::bartercast
