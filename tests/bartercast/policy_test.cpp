#include "bartercast/policy.hpp"

#include <gtest/gtest.h>

namespace bc::bartercast {
namespace {

TEST(Policy, NoneAllowsEverything) {
  const auto p = ReputationPolicy::none();
  EXPECT_EQ(p.kind(), PolicyKind::kNone);
  EXPECT_TRUE(p.allows_slot(-1.0));
  EXPECT_TRUE(p.allows_slot(0.0));
  EXPECT_TRUE(p.allows_slot(1.0));
  EXPECT_FALSE(p.ranked_optimistic());
}

TEST(Policy, RankAllowsAllButRanksOptimistic) {
  const auto p = ReputationPolicy::rank();
  EXPECT_TRUE(p.allows_slot(-0.99));
  EXPECT_TRUE(p.ranked_optimistic());
}

TEST(Policy, BanThresholdSemantics) {
  const auto p = ReputationPolicy::ban(-0.5);
  EXPECT_EQ(p.ban_threshold(), -0.5);
  EXPECT_FALSE(p.allows_slot(-0.6));
  EXPECT_FALSE(p.allows_slot(-0.51));
  EXPECT_TRUE(p.allows_slot(-0.5));  // boundary: not below threshold
  EXPECT_TRUE(p.allows_slot(0.0));   // newcomers are not banned
  EXPECT_TRUE(p.allows_slot(0.9));
  EXPECT_FALSE(p.ranked_optimistic());
}

TEST(Policy, RankBanCombinesBoth) {
  const auto p = ReputationPolicy::rank_ban(-0.4);
  EXPECT_EQ(p.kind(), PolicyKind::kRankBan);
  EXPECT_TRUE(p.ranked_optimistic());
  EXPECT_FALSE(p.allows_slot(-0.41));
  EXPECT_TRUE(p.allows_slot(-0.4));
  EXPECT_TRUE(p.allows_slot(0.0));
  EXPECT_EQ(p.ban_threshold(), -0.4);
}

TEST(Policy, Names) {
  EXPECT_EQ(ReputationPolicy::none().name(), "none");
  EXPECT_EQ(ReputationPolicy::rank().name(), "rank");
  EXPECT_EQ(ReputationPolicy::ban(-0.5).name(), "ban(-0.50)");
  EXPECT_EQ(ReputationPolicy::rank_ban(-0.5).name(), "rank+ban(-0.50)");
}

TEST(Policy, Equality) {
  EXPECT_EQ(ReputationPolicy::ban(-0.5), ReputationPolicy::ban(-0.5));
  EXPECT_NE(ReputationPolicy::ban(-0.5), ReputationPolicy::ban(-0.3));
  EXPECT_NE(ReputationPolicy::none(), ReputationPolicy::rank());
}

TEST(PolicyDeathTest, BanThresholdMustBeNegative) {
  EXPECT_DEATH(ReputationPolicy::ban(0.5), "threshold");
  EXPECT_DEATH(ReputationPolicy::ban(-1.5), "threshold");
}

}  // namespace
}  // namespace bc::bartercast
