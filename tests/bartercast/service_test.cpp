#include "bartercast/service.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bc::bartercast {
namespace {

/// Two services wired back-to-back through in-memory "datagrams".
struct Pair {
  struct Sent {
    PeerId from;
    PeerId to;
    std::vector<std::uint8_t> data;
  };

  Pair() {
    auto make = [this](PeerId self, PeerId partner) {
      ServiceConfig cfg;
      cfg.exchange_interval = 10.0;
      return std::make_unique<Service>(
          self, cfg,
          [this, self](PeerId to, std::vector<std::uint8_t> data) {
            wire.push_back({self, to, std::move(data)});
          },
          [partner] { return partner; });
    };
    a = make(1, 2);
    b = make(2, 1);
  }

  /// Delivers everything in flight (replies may generate more traffic;
  /// those stay queued for the next call).
  void deliver(Seconds now) {
    std::vector<Sent> batch;
    batch.swap(wire);
    for (auto& msg : batch) {
      Service& dst = msg.to == 1 ? *a : *b;
      dst.on_datagram(msg.from, msg.data, now);
    }
  }

  std::unique_ptr<Service> a;
  std::unique_ptr<Service> b;
  std::vector<Sent> wire;
};

TEST(Service, ExchangeRespectsInterval) {
  Pair pair;
  EXPECT_EQ(pair.a->on_exchange_tick(0.0), 2u);  // due immediately
  EXPECT_EQ(pair.a->on_exchange_tick(5.0), kInvalidPeer);  // not yet
  EXPECT_EQ(pair.a->on_exchange_tick(10.0), 2u);
  EXPECT_EQ(pair.a->stats().exchanges_initiated, 2u);
  EXPECT_EQ(pair.a->stats().messages_sent, 2u);
}

TEST(Service, FullExchangePropagatesKnowledge) {
  Pair pair;
  // b bartered with peer 7.
  pair.b->on_bytes_sent(7, 500 * kMiB, 1.0);
  pair.b->on_bytes_received(7, 100 * kMiB, 1.0);
  // a's direct anchor toward b.
  pair.a->on_bytes_received(2, kGiB, 2.0);

  pair.a->on_exchange_tick(10.0);  // a -> b
  pair.deliver(10.1);              // b receives, replies
  pair.deliver(10.2);              // a receives the reply

  EXPECT_EQ(pair.b->stats().messages_received, 1u);
  EXPECT_EQ(pair.a->stats().messages_received, 1u);
  // a learned about peer 7 through b's records: 7 uploaded 100 MiB to b and
  // b uploaded 1 GiB to a -> positive two-hop flow from 7.
  EXPECT_GT(pair.a->reputation(7), 0.0);
}

TEST(Service, RejectsGarbageDatagrams) {
  Pair pair;
  const std::vector<std::uint8_t> junk{1, 2, 3, 4};
  EXPECT_FALSE(pair.a->on_datagram(2, junk, 1.0));
  EXPECT_EQ(pair.a->stats().messages_rejected, 1u);
  EXPECT_EQ(pair.a->stats().messages_received, 0u);
  EXPECT_TRUE(pair.wire.empty());  // no reply to garbage
}

TEST(Service, NoReplyWhenDisabled) {
  Pair pair;
  pair.b->on_bytes_sent(7, kMiB, 1.0);
  const auto data = encode(pair.b->node().make_message(1.0));
  EXPECT_TRUE(pair.a->on_datagram(2, data, 2.0, /*reply=*/false));
  EXPECT_TRUE(pair.wire.empty());
}

TEST(Service, NoPartnerNoExchange) {
  ServiceConfig cfg;
  std::size_t sends = 0;
  Service s(
      9, cfg, [&](PeerId, std::vector<std::uint8_t>) { ++sends; },
      [] { return kInvalidPeer; });
  EXPECT_EQ(s.on_exchange_tick(0.0), kInvalidPeer);
  EXPECT_EQ(sends, 0u);
  // The interval still advances (no hot retry loop).
  EXPECT_GT(s.next_exchange_due(), 0.0);
}

TEST(Service, SnapshotRestoreRoundTrip) {
  Pair pair;
  pair.a->on_bytes_sent(5, 123456, 1.0);
  pair.a->on_bytes_received(6, 654321, 2.0);
  const std::string state = pair.a->snapshot();

  Pair fresh;
  std::string error;
  ASSERT_TRUE(fresh.a->restore(state, &error)) << error;
  EXPECT_EQ(fresh.a->node().history().uploaded_to(5), 123456);
  EXPECT_EQ(fresh.a->node().history().downloaded_from(6), 654321);
}

TEST(Service, RestoreRejectsForeignState) {
  Pair pair;
  const std::string state_of_b = pair.b->snapshot();
  std::string error;
  EXPECT_FALSE(pair.a->restore(state_of_b, &error));
  EXPECT_NE(error.find("identity"), std::string::npos);
  EXPECT_FALSE(pair.a->restore("garbage", &error));
}

TEST(Service, TransfersFlowIntoReputation) {
  Pair pair;
  pair.a->on_bytes_received(2, kGiB, 1.0);
  EXPECT_GT(pair.a->reputation(2), 0.0);
  pair.a->on_bytes_sent(2, 3 * kGiB, 2.0);
  EXPECT_LT(pair.a->reputation(2), 0.0);
}

}  // namespace
}  // namespace bc::bartercast
