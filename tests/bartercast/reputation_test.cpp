#include "bartercast/reputation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace bc::bartercast {
namespace {

ReputationConfig unit_config(Bytes unit) {
  ReputationConfig cfg;
  cfg.arctan_unit = unit;
  return cfg;
}

TEST(Reputation, ZeroForUnknownPeers) {
  graph::FlowGraph g;
  ReputationEngine engine;
  EXPECT_EQ(engine.reputation(g, 0, 1), 0.0);
}

TEST(Reputation, ZeroForSelf) {
  graph::FlowGraph g;
  g.add_capacity(0, 1, 100);
  ReputationEngine engine;
  EXPECT_EQ(engine.reputation(g, 0, 0), 0.0);
}

TEST(Reputation, PositiveForUploader) {
  graph::FlowGraph g;
  g.add_capacity(1, 0, kGiB);  // 1 uploaded 1 GiB to 0
  ReputationEngine engine(unit_config(kGiB));
  // arctan(1)/(pi/2) = 0.5 exactly.
  EXPECT_NEAR(engine.reputation(g, 0, 1), 0.5, 1e-12);
}

TEST(Reputation, NegativeForDownloader) {
  graph::FlowGraph g;
  g.add_capacity(0, 1, kGiB);
  ReputationEngine engine(unit_config(kGiB));
  EXPECT_NEAR(engine.reputation(g, 0, 1), -0.5, 1e-12);
}

TEST(Reputation, AntisymmetricOnDirectEdges) {
  graph::FlowGraph g;
  g.add_capacity(0, 1, 700 * kMiB);
  g.add_capacity(1, 0, 200 * kMiB);
  ReputationEngine engine;
  EXPECT_NEAR(engine.reputation(g, 0, 1), -engine.reputation(g, 1, 0),
              1e-12);
}

TEST(Reputation, BoundedByOne) {
  graph::FlowGraph g;
  g.add_capacity(1, 0, 1'000'000 * kGiB);
  ReputationEngine engine;
  const double r = engine.reputation(g, 0, 1);
  EXPECT_GT(r, 0.99);
  EXPECT_LE(r, 1.0);
}

TEST(Reputation, ScaleUnitChangesSteepness) {
  graph::FlowGraph g;
  g.add_capacity(1, 0, 100 * kMiB);
  ReputationEngine coarse(unit_config(kGiB));
  ReputationEngine fine(unit_config(100 * kMiB));
  EXPECT_LT(coarse.reputation(g, 0, 1), fine.reputation(g, 0, 1));
}

TEST(Reputation, ArctanDiminishingReturns) {
  // The 0 -> 100 MB step must matter more than 1000 -> 1100 MB (§3.3).
  ReputationEngine engine(unit_config(kGiB));
  const double step1 = engine.scale(100 * kMiB) - engine.scale(0);
  const double step2 =
      engine.scale(1100 * kMiB) - engine.scale(1000 * kMiB);
  EXPECT_GT(step1, step2 * 2);
}

TEST(Reputation, UsesIndirectPaths) {
  graph::FlowGraph g;
  g.add_capacity(2, 1, 500 * kMiB);  // subject -> intermediary
  g.add_capacity(1, 0, 300 * kMiB);  // intermediary -> evaluator
  ReputationEngine engine;
  // flow(2 -> 0) = min(500, 300) = 300 MiB; no reverse flow.
  EXPECT_GT(engine.reputation(g, 0, 2), 0.0);
  EXPECT_EQ(engine.flow(g, 2, 0), 300 * kMiB);
}

TEST(Reputation, TwoHopModeIgnoresThreeHopPaths) {
  graph::FlowGraph g;
  g.add_capacity(3, 2, kGiB);
  g.add_capacity(2, 1, kGiB);
  g.add_capacity(1, 0, kGiB);
  ReputationEngine two_hop;  // default mode
  EXPECT_EQ(two_hop.reputation(g, 0, 3), 0.0);

  ReputationConfig cfg;
  cfg.mode = MaxflowMode::kFullFordFulkerson;
  ReputationEngine full(cfg);
  EXPECT_GT(full.reputation(g, 0, 3), 0.0);
}

TEST(Reputation, ModesAgreeOnTwoHopGraphs) {
  Rng rng(77);
  graph::FlowGraph g;
  // Star around evaluator 0: only 1- and 2-hop paths exist.
  for (PeerId mid = 1; mid <= 6; ++mid) {
    g.add_capacity(mid, 0, rng.uniform_int(1, kGiB));
    g.add_capacity(0, mid, rng.uniform_int(1, kGiB));
    for (PeerId far = 10; far <= 14; ++far) {
      g.add_capacity(far, mid, rng.uniform_int(1, kGiB));
      g.add_capacity(mid, far, rng.uniform_int(1, kGiB));
    }
  }
  ReputationConfig bounded;
  bounded.mode = MaxflowMode::kBoundedFordFulkerson;
  bounded.max_path_edges = 2;
  ReputationEngine closed_form;
  ReputationEngine bounded_ff(bounded);
  for (PeerId far = 10; far <= 14; ++far) {
    EXPECT_NEAR(closed_form.reputation(g, 0, far),
                bounded_ff.reputation(g, 0, far), 1e-12)
        << "subject " << far;
  }
}

TEST(Reputation, ContainmentUnderInflatedClaims) {
  // However much flow the rest of the graph claims toward the
  // intermediary, the evaluator's own incoming edge caps the result.
  graph::FlowGraph g;
  g.add_capacity(1, 0, 100 * kMiB);  // my direct experience with 1
  g.add_capacity(9, 1, 100000 * kGiB);  // 9's (possibly fake) service to 1
  ReputationEngine engine;
  EXPECT_LE(engine.flow(g, 9, 0), 100 * kMiB);
  const double r9 = engine.reputation(g, 0, 9);
  const double r1_cap = engine.scale(100 * kMiB);
  EXPECT_LE(r9, r1_cap + 1e-12);
}

TEST(CachedReputation, CachesUntilVersionChanges) {
  SharedHistory view(0);
  view.record_local_download(1, 500 * kMiB);
  CachedReputation cache(view, ReputationEngine{});
  const double r1 = cache.reputation(1);
  const double r2 = cache.reputation(1);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  view.record_local_download(1, 500 * kMiB);  // version bump
  const double r3 = cache.reputation(1);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_GT(r3, r1);  // more service received -> higher reputation
}

TEST(CachedReputation, DistinctSubjectsCachedIndependently) {
  SharedHistory view(0);
  view.record_local_download(1, kGiB);
  view.record_local_upload(2, kGiB);
  CachedReputation cache(view, ReputationEngine{});
  EXPECT_GT(cache.reputation(1), 0.0);
  EXPECT_LT(cache.reputation(2), 0.0);
  EXPECT_EQ(cache.misses(), 2u);
}

BarterCastMessage gossip(PeerId sender, std::vector<BarterRecord> records) {
  BarterCastMessage msg;
  msg.sender = sender;
  msg.sent_at = 1.0;
  msg.records = std::move(records);
  return msg;
}

// Regression for the over-invalidation bug: the cache used to compare
// against the global history version, so one gossiped record about distant
// peers flushed every cached subject. (The old hit/miss counters looked
// healthy only because sweeps query each subject exactly once per version
// bump.) With per-subject tracking, an untouched subject stays cached
// across an unrelated edge update.
TEST(CachedReputation, UntouchedSubjectSurvivesUnrelatedEdgeUpdate) {
  SharedHistory view(0);
  view.record_local_download(1, kGiB);
  view.record_local_upload(2, 200 * kMiB);
  CachedReputation cache(view, ReputationEngine{});
  ASSERT_TRUE(cache.incremental());
  const double r1 = cache.reputation(1);
  const double r2 = cache.reputation(2);
  EXPECT_EQ(cache.misses(), 2u);

  // Gossip about an edge between remote peers 3 and 4: outside the
  // two-hop neighbourhood of subjects 1 and 2.
  ASSERT_EQ(view.apply_message(gossip(3, {{3, 4, 100 * kMiB, 0}})).applied,
            1u);

  EXPECT_EQ(cache.reputation(1), r1);
  EXPECT_EQ(cache.reputation(2), r2);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);  // no recompute for 1 or 2
  // The gossiped endpoints themselves are dirty.
  cache.reputation(3);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(CachedReputation, OwnerEdgeInvalidatesNeighbourhoodOnly) {
  SharedHistory view(0);
  // Remote peer 2 uploaded to 1 (gossiped); 9 is unrelated.
  ASSERT_EQ(view.apply_message(gossip(2, {{2, 1, 300 * kMiB, 0}})).applied,
            1u);
  view.record_local_download(9, kGiB);
  CachedReputation cache(view, ReputationEngine{});
  const double r2_before = cache.reputation(2);
  cache.reputation(9);
  EXPECT_EQ(cache.misses(), 2u);

  // Owner downloads from 1: the new edge (1, 0) opens the two-hop path
  // 2 -> 1 -> 0, so subject 2 — a neighbour of 1 — must be invalidated...
  view.record_local_download(1, 600 * kMiB);
  const double r2_after = cache.reputation(2);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_GT(r2_after, r2_before);
  // ...while 9, outside 1's neighbourhood, stays cached.
  cache.reputation(9);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(CachedReputation, AblationModesKeepGlobalInvalidation) {
  // Unbounded Ford-Fulkerson sees paths of any length, so a distant edge
  // can reroute flow; per-subject tracking would be unsound there.
  ReputationConfig cfg;
  cfg.mode = MaxflowMode::kFullFordFulkerson;
  SharedHistory view(0);
  view.record_local_download(1, kGiB);
  CachedReputation cache(view, ReputationEngine(cfg));
  EXPECT_FALSE(cache.incremental());
  cache.reputation(1);
  ASSERT_EQ(view.apply_message(gossip(3, {{3, 4, 100 * kMiB, 0}})).applied,
            1u);
  cache.reputation(1);
  EXPECT_EQ(cache.misses(), 2u);  // any version bump recomputes
}

TEST(CachedReputation, BoundedTwoHopModeIsIncremental) {
  ReputationConfig cfg;
  cfg.mode = MaxflowMode::kBoundedFordFulkerson;
  cfg.max_path_edges = 2;
  SharedHistory view(0);
  CachedReputation two_hop_cache(view, ReputationEngine(cfg));
  EXPECT_TRUE(two_hop_cache.incremental());
  cfg.max_path_edges = 3;
  CachedReputation three_hop_cache(view, ReputationEngine(cfg));
  EXPECT_FALSE(three_hop_cache.incremental());
}

}  // namespace
}  // namespace bc::bartercast
