#include "bartercast/history.hpp"

#include <gtest/gtest.h>

namespace bc::bartercast {
namespace {

TEST(PrivateHistory, StartsEmpty) {
  PrivateHistory h(0);
  EXPECT_EQ(h.owner(), 0u);
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.total_uploaded(), 0);
  EXPECT_EQ(h.total_downloaded(), 0);
  EXPECT_EQ(h.uploaded_to(5), 0);
  EXPECT_EQ(h.downloaded_from(5), 0);
  EXPECT_EQ(h.find(5), nullptr);
}

TEST(PrivateHistory, RecordsAccumulate) {
  PrivateHistory h(0);
  h.record_upload(1, 100, 1.0);
  h.record_upload(1, 50, 2.0);
  h.record_download(1, 30, 3.0);
  EXPECT_EQ(h.uploaded_to(1), 150);
  EXPECT_EQ(h.downloaded_from(1), 30);
  EXPECT_EQ(h.total_uploaded(), 150);
  EXPECT_EQ(h.total_downloaded(), 30);
  EXPECT_EQ(h.size(), 1u);
  ASSERT_NE(h.find(1), nullptr);
  EXPECT_EQ(h.find(1)->last_seen, 3.0);
}

TEST(PrivateHistory, LastSeenNeverDecreases) {
  PrivateHistory h(0);
  h.record_upload(1, 10, 5.0);
  h.record_upload(1, 10, 2.0);  // late-arriving record with older stamp
  EXPECT_EQ(h.find(1)->last_seen, 5.0);
}

TEST(PrivateHistory, TouchCreatesEntryWithoutBytes) {
  PrivateHistory h(0);
  h.touch(3, 7.0);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.uploaded_to(3), 0);
  EXPECT_EQ(h.find(3)->last_seen, 7.0);
}

TEST(PrivateHistory, TopUploadersRanksByDownloadedBytes) {
  PrivateHistory h(0);
  h.record_download(1, 100, 1.0);
  h.record_download(2, 300, 1.0);
  h.record_download(3, 200, 1.0);
  h.record_upload(4, 999, 1.0);  // upload TO 4 is irrelevant for Nh
  EXPECT_EQ(h.top_uploaders(2), (std::vector<PeerId>{2, 3}));
  EXPECT_EQ(h.top_uploaders(10).size(), 4u);
}

TEST(PrivateHistory, TopUploadersTieBreaksByLowerId) {
  PrivateHistory h(0);
  h.record_download(9, 100, 1.0);
  h.record_download(2, 100, 1.0);
  EXPECT_EQ(h.top_uploaders(1), (std::vector<PeerId>{2}));
}

TEST(PrivateHistory, MostRecentRanksByLastSeen) {
  PrivateHistory h(0);
  h.record_upload(1, 10, 1.0);
  h.record_upload(2, 10, 3.0);
  h.touch(3, 2.0);
  EXPECT_EQ(h.most_recent(2), (std::vector<PeerId>{2, 3}));
}

TEST(PrivateHistory, MostRecentTieBreaksByLowerId) {
  PrivateHistory h(0);
  h.touch(8, 1.0);
  h.touch(4, 1.0);
  EXPECT_EQ(h.most_recent(1), (std::vector<PeerId>{4}));
}

TEST(PrivateHistory, EntriesSnapshot) {
  PrivateHistory h(0);
  h.record_upload(1, 10, 1.0);
  h.record_download(2, 20, 2.0);
  const auto entries = h.entries();
  EXPECT_EQ(entries.size(), 2u);
}

TEST(PrivateHistory, EntriesAreSortedByPeerId) {
  // Regression: entries() used to surface unordered_map iteration order;
  // persistence and audits consume it, so the snapshot must be key-sorted
  // whatever the recording order.
  PrivateHistory h(0);
  for (PeerId p : {9u, 3u, 7u, 1u, 5u}) h.record_upload(p, 10, 1.0);
  const auto entries = h.entries();
  ASSERT_EQ(entries.size(), 5u);
  const std::vector<PeerId> expected{1, 3, 5, 7, 9};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(entries[i].peer, expected[i]);
  }
}

TEST(PrivateHistoryDeathTest, OwnerEntryRejected) {
  PrivateHistory h(7);
  EXPECT_DEATH(h.record_upload(7, 10, 1.0), "owner");
}

TEST(PrivateHistoryDeathTest, NegativeAmountRejected) {
  PrivateHistory h(0);
  EXPECT_DEATH(h.record_upload(1, -10, 1.0), "amount");
}

}  // namespace
}  // namespace bc::bartercast
