// Randomized property tests of the BarterCast data plane: arbitrary
// interleavings of local transfers and honest/lying/garbage messages must
// preserve the structural invariants the reputation engine depends on.
#include <gtest/gtest.h>

#include <unordered_map>

#include "bartercast/node.hpp"
#include "util/rng.hpp"

namespace bc::bartercast {
namespace {

class BarterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BarterFuzz, RandomMessageStreamPreservesInvariants) {
  Rng rng(GetParam());
  const PeerId owner = 0;
  Node node(owner);
  PrivateHistory ground_truth(owner);

  // Track expected owner-incident edges: they must always equal the private
  // history regardless of what gossip claims.
  std::unordered_map<PeerId, Bytes> my_up, my_down;
  std::uint64_t last_version = node.view().version();

  for (int step = 0; step < 2000; ++step) {
    const double dice = rng.uniform();
    const Seconds now = static_cast<Seconds>(step);
    if (dice < 0.2) {
      // Local transfer.
      const auto remote = static_cast<PeerId>(1 + rng.index(30));
      const Bytes amount = rng.uniform_int(1, 10 * kMiB);
      if (rng.chance(0.5)) {
        node.on_bytes_sent(remote, amount, now);
        my_up[remote] += amount;
      } else {
        node.on_bytes_received(remote, amount, now);
        my_down[remote] += amount;
      }
    } else {
      // A message from a random sender with random (possibly malicious)
      // records: third-party claims, self reports, claims about the owner.
      BarterCastMessage msg;
      msg.sender = static_cast<PeerId>(1 + rng.index(30));
      msg.sent_at = now;
      const std::size_t records = rng.index(6);
      for (std::size_t r = 0; r < records; ++r) {
        BarterRecord rec;
        rec.subject = rng.chance(0.7)
                          ? msg.sender
                          : static_cast<PeerId>(rng.index(32));
        rec.other = static_cast<PeerId>(rng.index(32));
        rec.subject_to_other = rng.uniform_int(0, kGiB);
        rec.other_to_subject = rng.uniform_int(0, kGiB);
        msg.records.push_back(rec);
      }
      node.receive_message(msg);
    }

    // Version must be monotone.
    EXPECT_GE(node.view().version(), last_version);
    last_version = node.view().version();
  }

  const auto& g = node.view().graph();
  EXPECT_TRUE(g.check_invariants());

  // Owner-incident edges mirror the private history exactly.
  for (const auto& [remote, up] : my_up) {
    EXPECT_EQ(g.capacity(owner, remote), up) << "edge owner->" << remote;
  }
  for (const auto& [remote, down] : my_down) {
    EXPECT_EQ(g.capacity(remote, owner), down) << "edge " << remote
                                               << "->owner";
  }
  for (PeerId p : g.nodes()) {
    if (p == owner) continue;
    if (!my_up.contains(p)) {
      EXPECT_EQ(g.capacity(owner, p), 0);
    }
    if (!my_down.contains(p)) {
      EXPECT_EQ(g.capacity(p, owner), 0);
    }
  }

  // Reputations stay within [-1, 1] for every known node.
  for (PeerId p : g.nodes()) {
    const double r = node.reputation(p);
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST_P(BarterFuzz, RemoteEdgesMonotoneUnderHonestReplay) {
  // Replaying messages from an honest (monotonically growing) sender never
  // shrinks any edge in the receiver's subjective graph.
  Rng rng(GetParam() ^ 0xbeefULL);
  Node receiver(0);
  PrivateHistory sender_history(5);
  Bytes prev_total = 0;
  for (int round = 0; round < 50; ++round) {
    // Sender's history grows.
    for (int i = 0; i < 5; ++i) {
      const auto remote = static_cast<PeerId>(6 + rng.index(10));
      sender_history.record_upload(remote, rng.uniform_int(1, kMiB),
                                   static_cast<Seconds>(round));
      sender_history.record_download(remote, rng.uniform_int(1, kMiB),
                                     static_cast<Seconds>(round));
    }
    receiver.receive_message(
        build_message(sender_history, {}, static_cast<Seconds>(round)));
    const Bytes total = receiver.view().graph().total_capacity();
    EXPECT_GE(total, prev_total);
    prev_total = total;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarterFuzz,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

}  // namespace
}  // namespace bc::bartercast
