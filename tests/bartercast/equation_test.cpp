// Numerical spot checks of Equation 1 against hand-computed values:
//   R_i(j) = arctan((maxflow(j,i) - maxflow(i,j)) / unit) / (pi/2).
#include <gtest/gtest.h>

#include <cmath>

#include "bartercast/reputation.hpp"

namespace bc::bartercast {
namespace {

ReputationEngine engine_with_unit(Bytes unit) {
  ReputationConfig cfg;
  cfg.arctan_unit = unit;
  return ReputationEngine(cfg);
}

double expected(double flow_units) {
  return std::atan(flow_units) / (M_PI / 2.0);
}

TEST(Equation1, HandComputedTable) {
  const auto engine = engine_with_unit(kGiB);
  graph::FlowGraph g;

  // Tabulate (received, sent) -> expected value in 1 GiB units.
  struct Case {
    Bytes received;  // j -> i
    Bytes sent;      // i -> j
  };
  const Case cases[] = {
      {0, 0},          {kGiB, 0},         {0, kGiB},
      {kGiB, kGiB},    {4 * kGiB, 0},     {0, 4 * kGiB},
      {512 * kMiB, 0}, {3 * kGiB, kGiB},
  };
  PeerId j = 1;
  for (const Case& c : cases) {
    g.clear();
    g.add_capacity(0, 2, 1);  // keep both endpoints known
    g.add_capacity(2, 1, 1);
    if (c.received > 0) g.set_capacity(1, 0, c.received);
    if (c.sent > 0) g.set_capacity(0, 1, c.sent);
    const double units =
        static_cast<double>(c.received - c.sent) / static_cast<double>(kGiB);
    EXPECT_NEAR(engine.reputation(g, 0, j), expected(units), 1e-12)
        << "received=" << c.received << " sent=" << c.sent;
  }
}

TEST(Equation1, KnownFixedPoints) {
  // arctan(1)/(pi/2) == 0.5 exactly; arctan(-1) symmetric.
  const auto engine = engine_with_unit(kGiB);
  EXPECT_NEAR(engine.scale(kGiB), 0.5, 1e-12);
  EXPECT_NEAR(engine.scale(-kGiB), -0.5, 1e-12);
  EXPECT_DOUBLE_EQ(engine.scale(0), 0.0);
}

TEST(Equation1, BanThresholdInversion) {
  // A ban threshold delta corresponds to a deficit of tan(|delta| pi/2)
  // units — the calibration identity DESIGN.md relies on.
  const auto engine = engine_with_unit(kGiB);
  for (double delta : {-0.3, -0.5, -0.7}) {
    const double deficit_units = std::tan(-delta * M_PI / 2.0);
    const auto deficit =
        static_cast<Bytes>(deficit_units * static_cast<double>(kGiB));
    EXPECT_NEAR(engine.scale(-deficit), delta, 1e-6) << delta;
  }
}

TEST(Equation1, StrictlyMonotoneInFlowDifference) {
  const auto engine = engine_with_unit(256 * kMiB);
  double prev = -2.0;
  for (Bytes diff = -4 * kGiB; diff <= 4 * kGiB; diff += 256 * kMiB) {
    const double r = engine.scale(diff);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(Equation1, OddFunction) {
  const auto engine = engine_with_unit(kGiB);
  for (Bytes d : {kMiB, 100 * kMiB, kGiB, 10 * kGiB}) {
    EXPECT_NEAR(engine.scale(d), -engine.scale(-d), 1e-12);
  }
}

}  // namespace
}  // namespace bc::bartercast
