set terminal pngcairo size 800,500
set output 'fig1c.png'
set title 'final system reputation distribution'
set xlabel 'system reputation'
set ylabel 'peers'
set style fill transparent solid 0.5
set boxwidth 0.04
plot 'fig1c.dat' using 1:2 with boxes title 'sharers', 'fig1c.dat' using 1:3 with boxes title 'freeriders'
