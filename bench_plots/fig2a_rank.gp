set terminal pngcairo size 800,500
set output 'fig2a_rank.png'
set title 'average download speed'
set xlabel 'time (days)'
set ylabel 'download speed (KiB/s)'
set key top left
plot 'fig2a_rank.dat' using 1:2 with lines lw 2 title 'sharers', 'fig2a_rank.dat' using 1:3 with lines lw 2 title 'freeriders'
