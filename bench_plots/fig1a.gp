set terminal pngcairo size 800,500
set output 'fig1a.png'
set title 'average system reputation'
set xlabel 'time (days)'
set ylabel 'system reputation'
set key top left
plot 'fig1a.dat' using 1:2 with lines lw 2 title 'sharers', 'fig1a.dat' using 1:3 with lines lw 2 title 'freeriders'
