set terminal pngcairo size 800,500
set output 'fig4b.png'
set title 'cumulative distribution'
set xlabel 'reputation at the observer'
set ylabel 'cdf'
set yrange [0:1]
plot 'fig4b.dat' using 1:2 with steps lw 2 notitle
