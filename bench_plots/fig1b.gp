set terminal pngcairo size 800,500
set output 'fig1b.png'
set title 'system reputation vs net contribution'
set xlabel 'net contribution (GiB)'
set ylabel 'system reputation'
plot 'fig1b.dat' using 1:($3==0?$2:1/0) with points pt 7 title 'sharers', 'fig1b.dat' using 1:($3==1?$2:1/0) with points pt 5 title 'freeriders'
