// Fuzz harness for the trace CSV reader (trace/csv.cpp).
//
// Any text from_csv() accepts has already passed Trace::validate(); it
// must then round-trip: to_csv() of the parsed trace parses again and
// re-serializes byte-identically.
#include <cstdint>
#include <cstdlib>
#include <string>

#include "trace/csv.hpp"

namespace {
void require(bool ok) {
  if (!ok) std::abort();
}
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace bc::trace;
  if (size > (1u << 16)) return 0;  // keep single replays fast
  const std::string text(reinterpret_cast<const char*>(data), size);

  std::string error;
  const auto trace = from_csv(text, &error);
  if (!trace.has_value()) return 0;

  const std::string csv = to_csv(*trace);
  std::string error2;
  const auto again = from_csv(csv, &error2);
  require(again.has_value());
  require(to_csv(*again) == csv);
  return 0;
}
