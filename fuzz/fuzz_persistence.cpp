// Fuzz harness for the node state loader (bartercast/persistence.cpp).
//
// Any text load_node_from_string() accepts must round-trip: the loaded
// node saves to a canonical form that loads again and re-saves
// byte-identically. Loading replays through the Node public API, so this
// also drives the integrity rules (self-edge/negative-amount rejection)
// with adversarial input.
#include <cstdint>
#include <cstdlib>
#include <string>

#include "bartercast/persistence.hpp"

namespace {
void require(bool ok) {
  if (!ok) std::abort();
}
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace bc::bartercast;
  if (size > (1u << 16)) return 0;  // keep single replays fast
  const std::string text(reinterpret_cast<const char*>(data), size);

  std::string error;
  const auto node = load_node_from_string(text, NodeConfig{}, &error);
  if (node == nullptr) return 0;

  const std::string saved = save_node_to_string(*node);
  std::string error2;
  const auto node2 = load_node_from_string(saved, NodeConfig{}, &error2);
  require(node2 != nullptr);
  require(save_node_to_string(*node2) == saved);
  return 0;
}
