// Standalone replay driver for the fuzz harnesses.
//
// With a libFuzzer-capable compiler (Clang) the harnesses link against
// -fsanitize=fuzzer and this file is not compiled in. Under GCC (which has
// no libFuzzer runtime) this main() replays corpus files or directories
// through LLVMFuzzerTestOneInput, so the same ctest smoke commands work
// with either toolchain. libFuzzer-style dash options are ignored to keep
// the command lines interchangeable.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // libFuzzer option: not an input
    const fs::path p(argv[i]);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::directory_iterator(p, ec)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      inputs.push_back(p);
    } else {
      std::fprintf(stderr, "driver: no such input: %s\n", argv[i]);
      return 2;
    }
  }
  std::sort(inputs.begin(), inputs.end());
  for (const auto& path : inputs) {
    const auto bytes = read_file(path);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("driver: replayed %zu input(s)\n", inputs.size());
  return 0;
}
