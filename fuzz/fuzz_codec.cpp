// Fuzz harness for the BarterCast wire codec (bartercast/codec.cpp).
//
// Properties enforced on every input decode() accepts:
//   1. Canonical form: encode(decode(bytes)) == bytes. The format has no
//      redundant representations, so any accepted byte string must be
//      exactly what the encoder emits.
//   2. Round-trip: decoding the re-encoded bytes succeeds and yields a
//      message equal field-for-field to the first decode.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "bartercast/codec.hpp"
#include "bartercast/message.hpp"

namespace {
void require(bool ok) {
  if (!ok) std::abort();
}
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace bc::bartercast;
  const std::span<const std::uint8_t> in(data, size);
  const auto msg = decode(in);
  if (!msg.has_value()) return 0;

  const std::vector<std::uint8_t> bytes = encode(*msg);
  require(bytes.size() == size);
  require(std::equal(bytes.begin(), bytes.end(), data));

  const auto again = decode(bytes);
  require(again.has_value());
  require(again->sender == msg->sender);
  // Exact bit equality is the contract here: the timestamp travels through
  // memcpy, never arithmetic (NaN is rejected at decode, so == is sound).
  require(again->sent_at == msg->sent_at);
  require(again->records == msg->records);
  return 0;
}
