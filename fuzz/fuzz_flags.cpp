// Fuzz harness for the command-line flag parser (util/flags.cpp).
//
// The input is split into argv tokens on newlines/NULs and fed through
// Flags::parse plus every typed accessor. The parser must never crash or
// trip a sanitizer, whatever the token soup; diagnostics on stderr are
// expected for rejected input.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/flags.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > 4096) return 0;
  std::vector<std::string> tokens;
  std::string current;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n' || c == '\0') {
      if (!current.empty()) tokens.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  if (tokens.size() > 64) return 0;

  std::vector<const char*> argv;
  argv.push_back("fuzz_flags");
  for (const auto& t : tokens) argv.push_back(t.c_str());

  static const std::map<std::string, std::string> allowed = {
      {"seed", "rng seed"},
      {"peers", "peer count"},
      {"rate", "upload rate"},
      {"verbose", "verbose output"},
  };
  auto flags =
      bc::Flags::parse(static_cast<int>(argv.size()), argv.data(), allowed);
  if (!flags.has_value()) return 0;
  (void)flags->has("seed");
  (void)flags->get("seed", "");
  (void)flags->get_int("seed", 0);
  (void)flags->get_int("peers", 0);
  (void)flags->get_double("rate", 0.0);
  (void)flags->get_bool("verbose", false);
  (void)flags->positional();
  (void)flags->valid();
  return 0;
}
