#!/usr/bin/env bash
# Static-analysis runner: clang-tidy (when available) over the whole tree,
# then the repo-convention checker, then bc-analyze (the project-specific
# determinism & byte-accounting analyzer). All stages must be clean for the
# script to exit 0; CI runs this as a gating job.
#
# Usage:
#   scripts/lint.sh [--build-dir DIR] [--strict] [paths...]
#
#   --build-dir DIR  build tree holding compile_commands.json
#                    (default: build/release, then build, else configure
#                    build/release via the release preset)
#   --strict         fail (exit 2) when clang-tidy is not installed instead
#                    of skipping the clang-tidy stage with a warning
#   paths            files or directories to lint (default: src tests bench
#                    examples)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

build_dir=""
strict=0
paths=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      build_dir="$2"
      shift 2
      ;;
    --strict)
      strict=1
      shift
      ;;
    -h|--help)
      sed -n '2,15p' "$0"
      exit 0
      ;;
    *)
      paths+=("$1")
      shift
      ;;
  esac
done
if [[ ${#paths[@]} -eq 0 ]]; then
  paths=(src tests bench examples)
fi

status=0

# --- stage 1: clang-tidy ----------------------------------------------------
clang_tidy="${CLANG_TIDY:-}"
if [[ -z "$clang_tidy" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      clang_tidy="$candidate"
      break
    fi
  done
fi

if [[ -z "$clang_tidy" ]]; then
  if [[ "$strict" -eq 1 ]]; then
    echo "lint.sh: clang-tidy not found and --strict given" >&2
    exit 2
  fi
  echo "lint.sh: clang-tidy not found; skipping the clang-tidy stage" >&2
else
  if [[ -z "$build_dir" ]]; then
    if [[ -f build/release/compile_commands.json ]]; then
      build_dir=build/release
    elif [[ -f build/compile_commands.json ]]; then
      build_dir=build
    else
      echo "lint.sh: configuring build/release for compile_commands.json" >&2
      cmake --preset release > /dev/null
      build_dir=build/release
    fi
  fi
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "lint.sh: $build_dir/compile_commands.json missing; configure with" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the release preset does)" >&2
    exit 2
  fi

  mapfile -t sources < <(find "${paths[@]}" -name '*.cpp' -type f | sort)
  echo "lint.sh: clang-tidy ($clang_tidy) over ${#sources[@]} files" >&2
  if ! "$clang_tidy" -p "$build_dir" --quiet "${sources[@]}"; then
    status=1
  fi
fi

# --- stage 2: repo conventions ----------------------------------------------
if ! python3 scripts/check_conventions.py "${paths[@]}"; then
  status=1
fi

# --- stage 3: bc-analyze (determinism, bytes, concurrency, dataflow) ----------
# bc-analyze owns its scope (src bench examples): tests/ contains the
# analyzer's intentionally-bad fixtures, so the lint paths are not forwarded.
# The incremental cache keeps the clean re-run near-instant; --jobs
# parallelizes the clang TU stage when that frontend is available.
if ! python3 scripts/bc_analyze.py --jobs "$(nproc 2> /dev/null || echo 2)"; then
  status=1
fi

if [[ "$status" -ne 0 ]]; then
  echo "lint.sh: FAIL" >&2
else
  echo "lint.sh: OK" >&2
fi
exit "$status"
