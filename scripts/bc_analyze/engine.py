"""Analysis orchestration: file collection, frontends, suppression, output."""

from __future__ import annotations

import argparse
import concurrent.futures
import sys
import time
from pathlib import Path

from bc_analyze import RULES, RULE_EXEMPT_PREFIXES, __version__
from bc_analyze import clang_frontend
from bc_analyze.cache import (
    AnalysisCache,
    IncludeCloser,
    file_digest,
    run_key,
)
from bc_analyze.callgraph import Program
from bc_analyze.model import Finding
from bc_analyze.rules_bytes import check_b1, check_b2
from bc_analyze.rules_concurrency import check_c1, check_c2, check_c3
from bc_analyze.rules_dataflow import (
    check_c4,
    check_c5,
    check_d4,
    check_p1,
    extra_d4_sources,
)
from bc_analyze.rules_determinism import check_d1, check_d2, check_d3
from bc_analyze.rules_graph import check_g1
from bc_analyze.rules_lifetime import run_lifetime_rules
from bc_analyze.rules_value import run_value_rules
from bc_analyze.sarif import write_sarif
from bc_analyze.source import SourceFile, load_source

DEFAULT_PATHS = ["src", "bench", "examples"]


def collect_files(repo_root: Path, paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in paths:
        p = Path(arg) if Path(arg).is_absolute() else repo_root / arg
        if p.is_dir():
            files.extend(sorted(p.rglob("*.hpp")))
            files.extend(sorted(p.rglob("*.cpp")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"bc-analyze: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def relpath(path: Path, repo_root: Path) -> str:
    try:
        return path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _exempt(rule: str, rel: str) -> bool:
    return any(rel.startswith(p) for p in RULE_EXEMPT_PREFIXES.get(rule, ()))


class Analysis:
    def __init__(self, repo_root: Path):
        self.repo_root = repo_root
        self.sources: list[SourceFile] = []
        # Cross-file name tables: member declarations live in headers while
        # the loops and casts that use them live in .cpp files.
        self.global_unordered: set[str] = set()
        self.global_unordered_fns: set[str] = set()
        self.global_subscript: set[str] = set()
        self.global_ordered: set[str] = set()
        self.global_ordered_fns: set[str] = set()
        self.global_floats: set[str] = set()
        self.global_bytes: set[str] = set()
        self.frontends = ["tokens"]
        self.program: Program | None = None

    def load(self, files: list[Path]) -> None:
        known = set(RULES)
        for f in files:
            sf = load_source(f, relpath(f, self.repo_root), known)
            self.sources.append(sf)
            self.global_unordered |= sf.unordered_vars
            self.global_unordered_fns |= sf.unordered_fns
            self.global_subscript |= sf.unordered_element_containers
            self.global_ordered |= sf.ordered_vars
            self.global_ordered_fns |= sf.ordered_fns
            self.global_floats |= sf.float_vars
            self.global_bytes |= sf.bytes_vars

    def _companion(self, sf: SourceFile) -> SourceFile | None:
        """The .hpp for a .cpp (and vice versa): member declarations live in
        the header while the loops and casts that use them live in the
        implementation file, so the pair shares one symbol table."""
        by_rel = {s.rel: s for s in self.sources}
        if sf.rel.endswith(".cpp"):
            return by_rel.get(sf.rel[:-4] + ".hpp")
        if sf.rel.endswith(".hpp"):
            return by_rel.get(sf.rel[:-4] + ".cpp")
        return None

    def run_token_rules(self) -> list[Finding]:
        # Names that different files declare with conflicting types are
        # ambiguous; drop them from the cross-file tables rather than guess.
        ambiguous = self.global_bytes & self.global_floats
        xfile_bytes = self.global_bytes - ambiguous
        xfile_floats = self.global_floats - ambiguous
        xfile_unordered = self.global_unordered - self.global_ordered
        # Same ambiguity policy for accessor functions: a name some file
        # declares as returning an ordered container (sorted span, vector)
        # does not propagate unordered-ness across files.
        xfile_unordered_fns = (self.global_unordered_fns
                               - self.global_ordered_fns)
        findings: list[Finding] = []
        for sf in self.sources:
            comp = self._companion(sf)

            def merged(attr: str, c=comp, s=sf) -> set[str]:
                out = set(getattr(s, attr))
                if c is not None:
                    out |= getattr(c, attr)
                return out

            l_unordered = merged("unordered_vars")
            l_ordered = merged("ordered_vars") - l_unordered
            d1_names = l_unordered | (xfile_unordered - l_ordered)
            d1_fns = (merged("unordered_fns")
                      | (xfile_unordered_fns - merged("ordered_fns")))
            d1_subs = (merged("unordered_element_containers")
                       | self.global_subscript)
            l_floats = merged("float_vars")
            l_bytes = merged("bytes_vars")
            l_ints = merged("int_vars")
            per_rule = {
                "D1": lambda s=sf: check_d1(s, d1_names, d1_fns, d1_subs),
                "D2": lambda s=sf: check_d2(s),
                "D3": lambda s=sf: check_d3(s),
                "B1": lambda s=sf: check_b1(
                    s, l_bytes, (l_ints | l_floats) - l_bytes, xfile_bytes),
                "B2": lambda s=sf: check_b2(
                    s, l_floats, (l_ints | l_bytes) - l_floats, xfile_floats),
                "C1": lambda s=sf: check_c1(s),
                "C2": lambda s=sf: check_c2(s),
                "C3": lambda s=sf: check_c3(s),
                "G1": lambda s=sf: check_g1(s),
            }
            for rule, run in per_rule.items():
                if _exempt(rule, sf.rel):
                    continue
                findings.extend(run())
            for lineno, why in sf.bad_suppressions:
                findings.append(Finding(
                    rule="SUP", slug="bad-suppression", path=sf.rel,
                    line=lineno, message=why))
        return findings

    def run_clang_rules(self, build_dir: Path | None, jobs: int = 1,
                        cache: AnalysisCache | None = None) -> list[Finding]:
        clang = clang_frontend.find_clang()
        if clang is None or build_dir is None:
            return []
        entries = clang_frontend.load_compile_db(build_dir)
        if not entries:
            return []
        wanted = {sf.rel for sf in self.sources}
        todo: list[tuple[dict, str, Path]] = []
        for entry in entries:
            src = Path(entry.get("directory", ".")) / entry.get("file", "")
            rel = relpath(src, self.repo_root)
            if rel not in wanted or _exempt("D1", rel):
                continue
            todo.append((entry, rel, src))
        closer = IncludeCloser(self.repo_root)

        def one(item: tuple[dict, str, Path]) -> list[Finding] | None:
            entry, rel, src = item
            key = None
            if cache is not None:
                # A TU's verdict depends on the TU, every header it
                # transitively includes, and which clang produced the AST.
                key = closer.closure_digest(src, salt=f"tu|{clang}|{rel}")
                hit = cache.get_tu(key)
                if hit is not None:
                    return hit
            tu = clang_frontend.analyze_tu(clang, entry, rel)
            if tu is not None and cache is not None and key is not None:
                cache.put_tu(key, tu)
            return tu

        if jobs > 1 and len(todo) > 1:
            # analyze_tu is one clang subprocess per TU: thread-parallel
            # dispatch keeps every core busy without fork overhead.
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=jobs) as pool:
                results = list(pool.map(one, todo))
        else:
            results = [one(item) for item in todo]
        findings: list[Finding] = []
        used = False
        for tu in results:
            if tu is None:
                continue
            used = True
            findings.extend(f for f in tu if not _exempt("D1", f.path))
        if used:
            self.frontends.append("clang-ast")
        return findings

    def run_interprocedural_rules(
            self, surviving: list[Finding]) -> list[Finding]:
        """Dataflow rules D4/P1/C4/C5 over the whole-program call graph.

        `surviving` are the post-suppression intraprocedural findings:
        the D1/D2/D3 ones among them seed the D4 taint pass (a suppressed
        source carries a written proof that its value cannot escape, so it
        does not taint callers)."""
        program = Program(self.sources)
        self.program = program
        sources = [(f.path, f.line, RULES[f.rule])
                   for f in surviving if f.rule in ("D1", "D2", "D3")]
        for sf in self.sources:
            if not _exempt("D4", sf.rel):
                sources.extend(extra_d4_sources(sf))
        findings: list[Finding] = []
        findings.extend(check_d4(program, sources, _exempt))
        findings.extend(check_p1(program, _exempt))
        findings.extend(check_c4(program, _exempt))
        findings.extend(check_c5(program, _exempt))
        findings.extend(run_value_rules(program, _exempt))
        findings.extend(run_lifetime_rules(program, _exempt))
        return findings

    def stale_suppression_findings(self) -> list[Finding]:
        """Markers whose rule no longer fires anywhere on their target
        line. Run after every rule stage has had its chance to use them."""
        out: list[Finding] = []
        for sf in self.sources:
            for s in sf.suppressions:
                if s.used:
                    continue
                out.append(Finding(
                    rule="SUP", slug="stale-suppression", path=sf.rel,
                    line=s.marker_line,
                    message=(f"stale suppression: allow("
                             f"{','.join(s.rules)}) matches no finding on"
                             f" line {s.target_line} any more — delete the"
                             " marker (stale markers silently blind the"
                             " analyzer when code moves)"),
                ))
        return out

    def apply_suppressions(
            self, findings: list[Finding]) -> list[Finding]:
        by_file: dict[str, SourceFile] = {sf.rel: sf for sf in self.sources}
        kept: list[Finding] = []
        for f in findings:
            if f.rule == "SUP":
                kept.append(f)  # bad markers cannot be suppressed
                continue
            sf = by_file.get(f.path)
            sup = None
            if sf is not None:
                sup = next(
                    (s for s in sf.suppressions if s.covers(f.rule, f.line)),
                    None)
            if sup is not None:
                sup.used = True
                continue
            kept.append(f)
        return kept


def _dedupe(findings: list[Finding]) -> list[Finding]:
    seen: set[tuple] = set()
    out: list[Finding] = []
    for f in sorted(findings, key=Finding.sort_key):
        key = (f.path, f.line, f.rule)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


def list_rules() -> str:
    lines = ["bc-analyze rule catalogue:"]
    for rule, slug in RULES.items():
        exempt = RULE_EXEMPT_PREFIXES.get(rule, ())
        suffix = f"  (exempt: {', '.join(exempt)})" if exempt else ""
        lines.append(f"  {rule:4} {slug}{suffix}")
    lines.append(
        "suppress with: // bc-analyze: allow(<rule>[,<rule>]) -- <reason>")
    return "\n".join(lines)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bc_analyze.py",
        description=("BarterCast determinism, byte-accounting, concurrency"
                     " & hot-path static analyzer (intraprocedural rules"
                     " D1-D3, B1-B2, C1-C3, G1; interprocedural dataflow"
                     " rules D4, P1, C4, C5; interval value-analysis rules"
                     " V1-V4)"))
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyze"
                             " (default: src bench examples)")
    parser.add_argument("--build-dir", default=None,
                        help="build tree holding compile_commands.json for"
                             " the clang AST frontend (default: probe"
                             " build/release, build)")
    parser.add_argument("--frontend", choices=["auto", "tokens", "clang"],
                        default="auto",
                        help="force a frontend; `clang` fails hard when"
                             " clang or the compilation database is missing")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub annotation commands")
    parser.add_argument("--sarif", metavar="OUT.json", default=None,
                        help="also write findings as a SARIF 2.1.0 log")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="parallel clang TU analyses (default: 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the analysis cache")
    parser.add_argument("--cache-file", default=None, metavar="PATH",
                        help="analysis cache location (default:"
                             " <build-dir>/bc_analyze_cache.json, else"
                             " .bc-analyze-cache.json in the repo root)")
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="T",
                        help="fail (exit 2) when the analysis itself takes"
                             " longer than T seconds — the CI budget for"
                             " the clean cached re-run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--version", action="version",
                        version=f"bc-analyze {__version__}")
    return parser


def _resolve_build_dir(args, repo_root: Path) -> Path | None:
    if args.build_dir:
        build_dir = Path(args.build_dir)
        return build_dir if build_dir.is_absolute() else repo_root / build_dir
    for candidate in ("build/release", "build"):
        if (repo_root / candidate / "compile_commands.json").is_file():
            return repo_root / candidate
    return None


def _finish(findings: list[Finding], args, n_files: int, frontends: str,
            n_sup: int, cached: bool, started: float,
            repo_root: Path) -> int:
    for f in findings:
        print(f.github() if args.github else f.human())
    if args.sarif:
        out = Path(args.sarif)
        write_sarif(out if out.is_absolute() else repo_root / out, findings)
    note = ", cached" if cached else ""
    summary = (f"bc-analyze: {len(findings)} finding(s) in {n_files}"
               f" files ({frontends} frontend,"
               f" {n_sup} suppression(s) honored{note})")
    if not findings:
        summary = summary.replace("0 finding(s)", "OK, 0 findings")
    print(summary, file=sys.stderr)
    elapsed = time.monotonic() - started
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"bc-analyze: analysis took {elapsed:.2f}s, over the"
              f" --max-seconds budget of {args.max_seconds:.2f}s",
              file=sys.stderr)
        return 2
    return 1 if findings else 0


def run(argv: list[str], repo_root: Path) -> int:
    started = time.monotonic()
    args = build_arg_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    paths = args.paths or DEFAULT_PATHS
    files = collect_files(repo_root, paths)
    build_dir = (None if args.frontend == "tokens"
                 else _resolve_build_dir(args, repo_root))

    cache = None
    key = None
    if not args.no_cache:
        if args.cache_file:
            cache_path = Path(args.cache_file)
            if not cache_path.is_absolute():
                cache_path = repo_root / cache_path
        elif build_dir is not None:
            cache_path = build_dir / "bc_analyze_cache.json"
        else:
            cache_path = repo_root / ".bc-analyze-cache.json"
        cache = AnalysisCache(cache_path)
        # The whole-run key covers everything the verdict depends on: the
        # analyzed files, the frontend selection, which clang (if any)
        # backs the AST stage, and the compilation database content.
        compile_db = ""
        if build_dir is not None:
            compile_db = file_digest(build_dir / "compile_commands.json")
        flags = (f"frontend={args.frontend}|clang="
                 f"{clang_frontend.find_clang() or 'none'}|db={compile_db}")
        key = run_key(files, repo_root, flags)
        hit = cache.get_run(key)
        if hit is not None:
            findings, meta = hit
            return _finish(findings, args, len(files),
                           meta.get("frontends", "tokens"),
                           int(meta.get("n_sup", 0)), True, started,
                           repo_root)

    analysis = Analysis(repo_root)
    analysis.load(files)

    findings = []
    if args.frontend in ("auto", "tokens"):
        findings.extend(analysis.run_token_rules())
    if args.frontend in ("auto", "clang"):
        clang_findings = analysis.run_clang_rules(
            build_dir, jobs=max(args.jobs, 1), cache=cache)
        if args.frontend == "clang" and "clang-ast" not in analysis.frontends:
            print("bc-analyze: --frontend=clang but clang or"
                  " compile_commands.json is unavailable", file=sys.stderr)
            return 2
        findings.extend(clang_findings)

    # Suppress the intraprocedural findings first: the survivors seed the
    # D4 taint pass, then the interprocedural findings get their own
    # suppression pass, and only then can a marker be declared stale.
    findings = analysis.apply_suppressions(findings)
    interproc = analysis.run_interprocedural_rules(findings)
    findings.extend(analysis.apply_suppressions(interproc))
    findings.extend(analysis.stale_suppression_findings())
    findings = _dedupe(findings)

    n_sup = sum(
        1 for sf in analysis.sources for s in sf.suppressions if s.used)
    frontends = "+".join(analysis.frontends)
    if cache is not None and key is not None:
        cache.put_run(key, findings,
                      {"frontends": frontends, "n_sup": n_sup})
        cache.save()
    return _finish(findings, args, len(files), frontends, n_sup, False,
                   started, repo_root)
