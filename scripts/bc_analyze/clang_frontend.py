"""Optional clang AST frontend.

When a clang capable of `-Xclang -ast-dump=json` is installed, bc-analyze
re-checks rule D1 with real type information: every CXXForRangeStmt whose
range expression has an unordered_map/unordered_set type is reported, with
no reliance on the token frontend's name tables. Findings are merged with
the token frontend's by (path, line, rule), so the two can only add
coverage, never double-report.

The frontend consumes the CMake-exported compile_commands.json so each TU
is parsed with its real include paths and language standard. Machines
without clang (or where the dump fails) fall back to tokens-only analysis;
the engine reports which frontends ran.
"""

from __future__ import annotations

import json
import shlex
import shutil
import subprocess
from pathlib import Path

from bc_analyze.model import Finding

CLANG_CANDIDATES = (
    "clang++", "clang++-19", "clang++-18", "clang++-17", "clang++-16",
    "clang++-15", "clang++-14", "clang",
)


def find_clang() -> str | None:
    for name in CLANG_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(build_dir: Path) -> list[dict]:
    db = build_dir / "compile_commands.json"
    if not db.is_file():
        return []
    try:
        return json.loads(db.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []


def _dump_args(entry: dict) -> list[str]:
    """Reconstructs a -fsyntax-only AST-dump command from a DB entry."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    kept: list[str] = []
    skip_next = False
    for arg in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c", "-o"):
            skip_next = arg == "-o"
            continue
        if arg.startswith("-o"):
            continue
        # Drop GCC-only warning flags clang may not know.
        if arg.startswith("-W"):
            continue
        kept.append(arg)
    return kept + ["-w", "-fsyntax-only", "-Xclang", "-ast-dump=json"]


def _walk(node: dict, path: str, findings: list[Finding],
          state: dict) -> None:
    kind = node.get("kind")
    loc = node.get("loc") or {}
    # `file`/`line` keys appear only when they change relative to the
    # previous node in the dump, so carry them as running state.
    loc_file = loc.get("file") or (loc.get("spellingLoc") or {}).get("file")
    if loc_file is not None:
        state["file"] = loc_file
    loc_line = loc.get("line") or (loc.get("spellingLoc") or {}).get("line")
    if loc_line is not None:
        state["line"] = loc_line
    if kind == "CXXForRangeStmt" and state.get("file", "").endswith(path):
        line = state.get("line", 0)
        if _range_is_unordered(node):
            findings.append(Finding(
                rule="D1", slug="unordered-iteration", path=path, line=line,
                message=("range-for over a std::unordered_map/unordered_set"
                         " (clang AST): iteration order is"
                         " implementation-defined; wrap the range in"
                         " bc::util::sorted_view(...) or suppress with a"
                         " reason"),
            ))
    for child in node.get("inner", []) or []:
        if isinstance(child, dict):
            _walk(child, path, findings, state)


def _range_is_unordered(for_node: dict) -> bool:
    # The range initializer is the first DeclStmt child (__range1); look
    # for an unordered container in its declared type.
    for child in for_node.get("inner", []) or []:
        if not isinstance(child, dict):
            continue
        text = json.dumps(child.get("type", {})) if child.get("type") else ""
        if "unordered_map" in text or "unordered_set" in text:
            if "sorted_view" not in text and "SortedView" not in text:
                return True
        if child.get("kind") == "DeclStmt":
            blob = json.dumps(child)
            if (("unordered_map" in blob or "unordered_set" in blob)
                    and "SortedView" not in blob):
                return True
            return False
    return False


def analyze_tu(clang: str, entry: dict, rel: str) -> list[Finding] | None:
    """D1 findings for one TU, or None when the dump fails."""
    cmd = [clang] + _dump_args(entry)
    try:
        proc = subprocess.run(
            cmd, cwd=entry.get("directory", "."), capture_output=True,
            text=True, timeout=300)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0 or not proc.stdout.strip():
        return None
    try:
        root = json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None
    findings: list[Finding] = []
    _walk(root, rel, findings, state={})
    # Only keep findings the dump attributes to this TU's own file: the AST
    # includes every header; headers are analyzed via their own relpath by
    # the caller filtering on `path`.
    return findings
