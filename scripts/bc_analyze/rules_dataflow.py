"""Interprocedural rules D4, P1, C4, C5 (callgraph.py + dataflow.py).

D4 determinism-taint   a nondeterminism source (surviving D1/D2/D3 finding,
                       thread id, pointer-order/pointer-hash) reaches a
                       reputation / gossip / persistence sink through the
                       call graph. Sanctioned laundering points — the
                       seeded Rng, sorted_view snapshots, src/obs/ — cut
                       the taint. Fires only across function boundaries:
                       the intraprocedural case is D1-D3's job.
P1 hot-path-allocation heap allocation or container growth inside a loop
                       of a BC_OBS_SCOPE-instrumented hot function, or a
                       call from such a loop into a function that
                       (transitively) allocates. The compile-time
                       guardrail for the batched/SIMD maxflow work.
C4 blocking-under-lock a blocking or allocating operation while a
                       bc::util::Mutex is held (LockGuard scope), directly
                       or through a call. CondVar::wait on the *held*
                       mutex is the sanctioned wait shape and is excluded.
C5 lock-order-cycle    cross-function lock-acquisition-order cycles:
                       acquiring B while holding A adds edge A->B (also
                       through calls); any cycle in that order graph is a
                       potential deadlock.
"""

from __future__ import annotations

import re

from bc_analyze.callgraph import FunctionDef, Program
from bc_analyze.dataflow import (
    Reach,
    chain_of,
    reach_chain,
    taint_callers,
    transitive_union,
)
from bc_analyze.model import Finding
from bc_analyze.source import SourceFile

# --- shared body scanners ----------------------------------------------------

ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"
    r"|\bstd::make_(?:unique|shared)\b"
    r"|(?<![\w:.])(?:malloc|calloc|realloc|strdup)\s*\("
)
CONTAINER_DECL_RE = re.compile(
    r"\b(?:std::)?(?:vector|deque|list|map|multimap|set|multiset"
    r"|unordered_map|unordered_set|basic_string|string|function)\s*<"
)
GROWTH_RE = re.compile(
    r"([A-Za-z_]\w*(?:\[[^\]]*\])?(?:\.[A-Za-z_]\w*)*?)\s*\.\s*"
    r"(push_back|emplace_back|emplace|emplace_front|push_front|insert"
    r"|append|resize|reserve)\s*\("
)
BLOCKING_RE = re.compile(
    r"\bstd::c(?:out|err|log)\b"
    r"|(?<![\w:.])(?:std\s*::\s*)?(?:printf|fprintf|puts|fputs|fopen|fread"
    r"|fwrite|fclose|fflush|getline|system|sleep|usleep|nanosleep)\s*\("
    r"|\bsleep_(?:for|until)\s*\("
    r"|\bstd::(?:of|if|f)stream\b"
    r"|\.\s*(?:join|get|flush|open)\s*\("
    r"|\bparallel_for\s*\("
)
WAIT_RE = re.compile(r"\.\s*wait\s*\(\s*([^)]*)\)")
THREAD_ID_RE = re.compile(
    r"\bstd::this_thread::get_id\b|(?<![\w:.])(?:pthread_self|gettid)\s*\(")
PTR_ORDER_RE = re.compile(
    r"\bstd::less\s*<[^<>]*\*\s*>|\bstd::hash\s*<[^<>]*\*\s*>"
    r"|\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>")

HOT_MARKER = "BC_OBS_SCOPE"

#: Call targets that sanitize taint: the seeded Rng, key-sorted snapshots,
#: observability-only code (exempt from determinism rules by design), and
#: the shard-slot identity accessors — a thread-local read routing sharded
#: instruments, whose only conceivable allocation is one-time thread
#: registration, never per-iteration hot-path cost.
LAUNDER_PREFIXES = (
    "src/obs/", "src/util/rng", "src/util/sorted_view",
    "src/util/logging", "src/util/concurrency/shard_slot",
)
LAUNDER_NAMES = {"sorted_view", "sorted_keys", "current_shard_slot",
                 "current_thread_tag"}

#: Where taint must never arrive: the reputation pipeline (Eq. 1 maxflow
#: and everything bartercast::), gossip partner selection, persistence and
#: the wire codec.
SINK_PREFIXES = ("src/bartercast/", "src/gossip/")
SINK_QUAL_RE = re.compile(r"\b(?:bartercast|gossip)::")
SINK_NAME_RE = re.compile(r"^(?:max_flow_\w+|encode\w*|save\w*)$")


def _is_sink(fn: FunctionDef) -> bool:
    return (fn.rel.startswith(SINK_PREFIXES)
            or SINK_QUAL_RE.search(fn.qualname) is not None
            or SINK_NAME_RE.match(fn.name) is not None)


def _is_launder(fn: FunctionDef) -> bool:
    return fn.rel.startswith(LAUNDER_PREFIXES) or fn.name in LAUNDER_NAMES


def _alloc_sites(fn: FunctionDef, sf: SourceFile,
                 include_presize: bool = True) -> list[tuple[int, str]]:
    """(offset, description) of every allocation in fn's body. Container
    growth is exempt when the same function `.reserve()`s the receiver
    earlier (the sanctioned pre-size-then-fill pattern) — the reserve call
    itself still counts as an allocation site when `include_presize` is
    set (it is per-iteration cost inside a loop, and allocator traffic
    under a lock), but not for the transitive "this callee allocates"
    property: pre-size-then-fill is exactly what P1 asks callees to do."""
    code = sf.code
    body_start, body_end = fn.start + 1, fn.end
    out: list[tuple[int, str]] = []
    for m in ALLOC_RE.finditer(code, body_start, body_end):
        out.append((m.start(), f"`{m.group(0).strip()}`"))
    for m in CONTAINER_DECL_RE.finditer(code, body_start, body_end):
        # A declaration with an initializer allocates; a bare `vector<T> v;`
        # does not, and neither does a reference binding `vector<T>& v = ...`.
        dm = re.compile(r">\s*(&?)\s*([A-Za-z_]\w*)\s*([({=])").search(
            code, m.end() - 1, min(body_end, m.end() + 200))
        if dm and not dm.group(1) and dm.group(3) in "({=":
            out.append((m.start(),
                        f"construction of `{dm.group(2)}`"))
    reserved: dict[str, int] = {}
    growths: list[tuple[int, str, str]] = []
    for m in GROWTH_RE.finditer(code, body_start, body_end):
        recv, op = m.group(1), m.group(2)
        if op == "reserve":
            reserved.setdefault(recv, m.start())
            if include_presize:
                out.append((m.start(), f"`{recv}.reserve(...)`"))
        else:
            growths.append((m.start(), recv, op))
    for off, recv, op in growths:
        if recv in reserved and reserved[recv] < off:
            continue  # pre-sized: amortized growth is sanctioned
        out.append((off, f"`{recv}.{op}(...)`"))
    out.sort()
    return out


def _blocking_sites(fn: FunctionDef, sf: SourceFile) -> list[tuple[int, str]]:
    code = sf.code
    body_start, body_end = fn.start + 1, fn.end
    out = [(m.start(), f"`{m.group(0).strip()}`")
           for m in BLOCKING_RE.finditer(code, body_start, body_end)]
    return out


# --- D4 ----------------------------------------------------------------------


def check_d4(program: Program, sources: list[tuple[str, int, str]],
             exempt) -> list[Finding]:
    """`sources` are surviving intraprocedural nondeterminism findings
    (rel, line, kind) — D1/D2/D3 output plus the D4-only source scans.
    `exempt(rule, rel)` is the engine's path-exemption predicate."""
    seeds: dict[int, tuple[FunctionDef, str]] = {}
    for rel, line, kind in sources:
        fn = program.function_at_line(rel, line)
        if fn is None:
            continue
        desc = f"{kind} at {rel}:{line}"
        if id(fn) not in seeds:
            seeds[id(fn)] = (fn, desc)
    taint = taint_callers(program, seeds, _is_launder)
    out: list[Finding] = []
    for fn in program.functions:
        if id(fn) not in taint or not _is_sink(fn):
            continue
        if exempt("D4", fn.rel):
            continue
        state = taint[id(fn)]
        if state.site is None:
            continue  # source inside the sink itself: D1-D3 already fire
        chain = " -> ".join(chain_of(taint, fn))
        out.append(Finding(
            rule="D4", slug="determinism-taint", path=fn.rel,
            line=state.site.line,
            message=(f"nondeterminism reaches reputation/gossip sink"
                     f" `{fn.qualname}` through this call:"
                     f" {chain} [source: {state.source_desc}]; every peer"
                     " must compute identical results from identical"
                     " history (PAPER Eq. 1) — route the value through"
                     " bc::Rng / sorted_view, or fix the callee"),
        ))
    return out


def extra_d4_sources(sf: SourceFile) -> list[tuple[str, int, str]]:
    """D4-only nondeterminism sources with no intraprocedural rule:
    thread identity and pointer-order/pointer-hash dependence."""
    out: list[tuple[str, int, str]] = []
    for lineno, code in enumerate(sf.code_lines, start=1):
        for m in THREAD_ID_RE.finditer(code):
            out.append((sf.rel, lineno, f"thread-id `{m.group(0).strip()}`"))
        for m in PTR_ORDER_RE.finditer(code):
            out.append((sf.rel, lineno,
                        f"pointer-order `{m.group(0).strip()}`"))
    return out


# --- P1 ----------------------------------------------------------------------


def _allocates_direct(program: Program) -> dict[int, str]:
    """Transitive-seed evidence: functions that pay an allocation per call.
    Laundering targets (src/obs/, logging, the Rng) are excluded — they
    are no-ops when observability is disabled and never hot-path
    evidence — and so are bare `.reserve()` pre-sizes (see _alloc_sites)."""
    direct: dict[int, str] = {}
    for fn in program.functions:
        if _is_launder(fn):
            continue
        sf = program.by_rel[fn.rel]
        sites = _alloc_sites(fn, sf, include_presize=False)
        if sites:
            direct[id(fn)] = (f"{sites[0][1]} at"
                              f" {fn.rel}:{sf.line_at(sites[0][0])}")
    return direct


def check_p1(program: Program, exempt) -> list[Finding]:
    allocates = transitive_union(program, _allocates_direct(program))
    out: list[Finding] = []
    for fn in program.functions:
        sf = program.by_rel[fn.rel]
        if exempt("P1", fn.rel):
            continue
        if HOT_MARKER not in fn.body(sf.code):
            continue
        # Direct allocation inside a loop of the hot region.
        for off, desc in _alloc_sites(fn, sf):
            if fn.loop_depth_at(off) < 1:
                continue
            out.append(Finding(
                rule="P1", slug="hot-path-allocation", path=fn.rel,
                line=sf.line_at(off),
                message=(f"allocation {desc} inside a loop of hot function"
                         f" `{fn.qualname}` (BC_OBS_SCOPE region): hoist"
                         " the buffer out of the loop and reuse it, or"
                         " reserve up front — the maxflow/choker hot paths"
                         " must not hit the allocator per iteration"),
            ))
        # Calls from a loop into (transitively) allocating callees.
        for site in program.calls_from.get(id(fn), ()):
            if fn.loop_depth_at(site.offset) < 1:
                continue
            callee = site.callee
            if id(callee) not in allocates or _is_launder(callee):
                continue
            state = allocates[id(callee)]
            chain = " -> ".join(reach_chain(allocates, callee))
            out.append(Finding(
                rule="P1", slug="hot-path-allocation", path=fn.rel,
                line=site.line,
                message=(f"call from a loop of hot function"
                         f" `{fn.qualname}` reaches an allocation:"
                         f" {chain} [{state.what}]; hoist or pre-size the"
                         " buffer so the hot path stays allocation-free"),
            ))
    return out


# --- C4 ----------------------------------------------------------------------


def _blocks_direct(program: Program) -> dict[int, str]:
    direct: dict[int, str] = {}
    for fn in program.functions:
        sf = program.by_rel[fn.rel]
        sites = _blocking_sites(fn, sf)
        if sites:
            direct[id(fn)] = (f"{sites[0][1]} at"
                              f" {fn.rel}:{sf.line_at(sites[0][0])}")
    return direct


def _region_sites(fn: FunctionDef, region, sites):
    """Sites inside a lock region, excluding those separated from the
    acquisition by a lambda boundary (deferred code does not run with the
    lock held)."""
    for off, payload in sites:
        if not region.start <= off < region.end:
            continue
        if fn.lambda_spans_differ(region.acquire_offset, off):
            continue
        yield off, payload


def check_c4(program: Program, exempt) -> list[Finding]:
    blocks = transitive_union(program, _blocks_direct(program))
    out: list[Finding] = []
    for fn in program.functions:
        if exempt("C4", fn.rel):
            continue
        sf = program.by_rel[fn.rel]
        code = sf.code
        alloc_sites = _alloc_sites(fn, sf)
        block_sites = _blocking_sites(fn, sf)
        call_sites = [(s.offset, s) for s in
                      program.calls_from.get(id(fn), ())]
        for region in fn.lock_regions:
            if fn.in_lambda(region.acquire_offset):
                continue  # acquired by deferred code, not by this scope
            held = region.mutex.replace(" ", "")
            for off, desc in _region_sites(fn, region, block_sites):
                out.append(Finding(
                    rule="C4", slug="blocking-under-lock", path=fn.rel,
                    line=sf.line_at(off),
                    message=(f"blocking operation {desc} while holding"
                             f" Mutex `{region.mutex}` in `{fn.qualname}`:"
                             " lock scopes must stay short and"
                             " non-blocking — move the operation outside"
                             " the LockGuard scope"),
                ))
            for m in WAIT_RE.finditer(code, region.start, region.end):
                if fn.lambda_spans_differ(region.acquire_offset, m.start()):
                    continue
                if m.group(1).replace(" ", "") == held:
                    continue  # CondVar::wait(held_mutex): sanctioned shape
                out.append(Finding(
                    rule="C4", slug="blocking-under-lock", path=fn.rel,
                    line=sf.line_at(m.start()),
                    message=(f"wait on `{m.group(1).strip()}` while holding"
                             f" Mutex `{region.mutex}` in `{fn.qualname}`:"
                             " waiting on anything but the held mutex's own"
                             " CondVar blocks every other holder"),
                ))
            for off, desc in _region_sites(fn, region, alloc_sites):
                out.append(Finding(
                    rule="C4", slug="blocking-under-lock", path=fn.rel,
                    line=sf.line_at(off),
                    message=(f"allocation {desc} while holding Mutex"
                             f" `{region.mutex}` in `{fn.qualname}`: the"
                             " allocator can take arbitrary time (or lock"
                             " internally); build the data outside the"
                             " LockGuard scope and swap it in"),
                ))
            for off, site in _region_sites(fn, region, call_sites):
                callee = site.callee
                if id(callee) not in blocks:
                    continue
                state = blocks[id(callee)]
                if state.site is None and callee.rel.startswith(
                        "src/util/concurrency/"):
                    # The pool's own machinery (sanctioned) blocks by design.
                    continue
                chain = " -> ".join(reach_chain(blocks, callee))
                out.append(Finding(
                    rule="C4", slug="blocking-under-lock", path=fn.rel,
                    line=site.line,
                    message=(f"call while holding Mutex `{region.mutex}`"
                             f" reaches a blocking operation: {chain}"
                             f" [{state.what}]; move it outside the"
                             " LockGuard scope"),
                ))
    return out


# --- C5 ----------------------------------------------------------------------


def _acquires_direct(program: Program) -> dict[int, str]:
    """id(fn) -> comma list of lock keys fn acquires in its own body."""
    direct: dict[int, str] = {}
    for fn in program.functions:
        keys = sorted({r.key for r in fn.lock_regions
                       if not fn.in_lambda(r.acquire_offset)})
        if keys:
            direct[id(fn)] = ",".join(keys)
    return direct


def check_c5(program: Program, exempt) -> list[Finding]:
    # Edges: (held A, acquired B) -> list of (fn, line, via) witnesses.
    edges: dict[tuple[str, str], list[tuple[FunctionDef, int, str]]] = {}
    acquires = transitive_union(program, _acquires_direct(program))

    def add_edge(a: str, b: str, fn: FunctionDef, line: int, via: str):
        if a == b:
            return  # recursive re-acquire is a bug, but not an order cycle
        edges.setdefault((a, b), []).append((fn, line, via))

    for fn in program.functions:
        sf = program.by_rel[fn.rel]
        for region in fn.lock_regions:
            if fn.in_lambda(region.acquire_offset):
                continue
            for other in fn.lock_regions:
                off = other.acquire_offset
                if other is region or not region.start <= off < region.end:
                    continue
                if fn.lambda_spans_differ(region.acquire_offset, off):
                    continue
                add_edge(region.key, other.key, fn, sf.line_at(off),
                         f"`{fn.qualname}` acquires `{other.mutex}` while"
                         f" holding `{region.mutex}`")
            for site in program.calls_from.get(id(fn), ()):
                off = site.offset
                if not region.start <= off < region.end:
                    continue
                if fn.lambda_spans_differ(region.acquire_offset, off):
                    continue
                callee = site.callee
                if id(callee) not in acquires:
                    continue
                chain = " -> ".join(reach_chain(acquires, callee))
                for key in acquires[id(callee)].what.split(","):
                    add_edge(region.key, key, fn, site.line,
                             f"`{fn.qualname}` holds `{region.mutex}` and"
                             f" calls {chain}, which acquires `{key}`")
    # Cycle detection over the lock-order graph.
    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    cyclic_edges = _edges_in_cycles(graph)
    out: list[Finding] = []
    for (a, b) in sorted(cyclic_edges):
        for fn, line, via in edges.get((a, b), ()):
            if exempt("C5", fn.rel):
                continue
            out.append(Finding(
                rule="C5", slug="lock-order-cycle", path=fn.rel, line=line,
                message=(f"lock-acquisition-order cycle: edge `{a}` ->"
                         f" `{b}` ({via}) participates in a cycle — two"
                         " threads taking the locks in opposite order"
                         " deadlock; impose one global acquisition order"
                         " (the tree's discipline is leaf mutexes only)"),
            ))
    return out


def _edges_in_cycles(graph: dict[str, set[str]]) -> set[tuple[str, str]]:
    """Edges whose endpoints share a strongly connected component (iterative
    Tarjan), i.e. edges that lie on at least one cycle."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    comp: dict[str, int] = {}
    counter = [0]
    ncomp = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp[w] = ncomp[0]
                    if w == v:
                        break
                ncomp[0] += 1
    return {(a, b) for a in graph for b in graph[a]
            if comp.get(a) == comp.get(b)}
