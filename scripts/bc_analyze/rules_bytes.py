"""Byte-accounting rules B1-B2.

B1 byte-narrowing: the upload/download ledgers behind c(i,j) and the
   Eq. 1 maxflow capacities are Bytes (int64). Casting such an expression
   to a narrower or sign-changed integer type silently truncates or wraps
   real traffic: a 4 GiB ledger in an int32 becomes 0. Conversions to
   double are allowed — they are display-only and exact below 2^53 bytes
   (8 PiB), far above any ledger this system can accumulate.
B2 float-equality: reputation values and simulation times are doubles;
   ==/!= on them is almost never the comparison intended, and the two
   deliberate exceptions (exact tie checks in total-order comparators) are
   better written with </> so they self-document.
"""

from __future__ import annotations

import re

from bc_analyze.model import Finding
from bc_analyze.source import (
    FLOAT_LITERAL_RE,
    IDENT_RE,
    SourceFile,
    match_paren,
)

# --- B1 ---------------------------------------------------------------------

STATIC_CAST_RE = re.compile(r"\bstatic_cast\s*<\s*([^<>]+?)\s*>\s*\(")

#: Cast targets that lose range or sign relative to Bytes (int64).
NARROW_TARGETS = {
    "int", "short", "char", "signed char", "unsigned char",
    "unsigned", "unsigned int", "unsigned short", "unsigned long",
    "float",
    "std::int8_t", "std::int16_t", "std::int32_t",
    "std::uint8_t", "std::uint16_t", "std::uint32_t", "std::uint64_t",
    "int8_t", "int16_t", "int32_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "std::size_t", "size_t",
}


def check_b1(sf: SourceFile, local_bytes: set[str], other_typed: set[str],
             global_bytes: set[str]) -> list[Finding]:
    out: list[Finding] = []
    code = sf.code
    for m in STATIC_CAST_RE.finditer(code):
        target = " ".join(m.group(1).replace("const", "").split())
        if target not in NARROW_TARGETS:
            continue
        open_idx = m.end() - 1
        close_idx = match_paren(code, open_idx)
        if close_idx < 0:
            continue
        arg = code[open_idx + 1:close_idx]
        hit = _typed_identifier(arg, local_bytes, other_typed, global_bytes)
        if hit is None:
            continue
        line = sf.line_at(m.start())
        out.append(Finding(
            rule="B1", slug="byte-narrowing", path=sf.rel, line=line,
            message=(f"static_cast<{target}> on byte-counter expression"
                     f" (`{hit}` is Bytes): narrowing or sign-changing a"
                     " ledger value truncates/wraps real traffic; keep"
                     " Bytes (int64) or convert to double for display"),
        ))
    return out


def _typed_identifier(expr: str, local: set[str], other_typed: set[str],
                      global_names: set[str]) -> str | None:
    """First identifier in `expr` that resolves to the tracked type.

    Resolution order, designed to keep a heuristic frontend quiet rather
    than clever:
      - called names (identifier followed by `(` anywhere in the
        expression's line context) never match: call names like `.end()`
        and `.size()` collide with variable names from other files;
      - a file-local (or companion-header) declaration of the identifier
        with a *different* type (int/PeerId/... vs float, or vice versa)
        vetoes the match (`other_typed`);
      - file-local declarations of the tracked type match directly;
      - cross-file (global) names match only through a member access
        (`obj.name` / `ptr->name`): that is the shape by which another
        file's struct fields legitimately appear here, while a bare short
        local that happens to share a name with some other file's variable
        does not.
    """
    for m in IDENT_RE.finditer(expr):
        ident = m.group(0)
        rest = expr[m.end():].lstrip()
        if rest.startswith("("):
            continue  # a call, not a value
        if rest.startswith(".") or rest.startswith("->"):
            # `x.size()`, `h->total`: the value is the member (or call
            # result), which this loop examines on its own next.
            continue
        if ident in local:
            return ident
        if ident in other_typed:
            continue
        prefix = expr[:m.start()].rstrip()
        accessed = prefix.endswith(".") or prefix.endswith("->")
        if accessed and ident in global_names:
            return ident
    return None


# --- B2 ---------------------------------------------------------------------

EQUALITY_RE = re.compile(r"(?<![<>=!&|^+\-*/%])(==|!=)(?!=)")


def _operand(text: str, reverse: bool) -> str:
    """Text of the operand adjacent to an ==/!= occurrence.

    Walks outward from the operator, keeping balanced (...) / [...] groups
    together so call parentheses stay attached to their callee names.
    """
    if reverse:
        depth = 0
        i = len(text)
        while i > 0:
            c = text[i - 1]
            if c in ")]":
                depth += 1
            elif c in "([":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0 and (c in ";,{}?" or
                                 text[max(0, i - 2):i] in ("&&", "||")):
                break
            i -= 1
        out = text[i:]
        # Strip a leading keyword (return/if) left over from the statement.
        return re.sub(r"^\s*(?:return|if|while)\b", "", out)
    depth = 0
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c in "([":
            depth += 1
        elif c in ")]":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and (c in ";,{}?" or text[i:i + 2] in ("&&", "||")):
            break
        i += 1
    return text[:i]


def check_b2(sf: SourceFile, local_floats: set[str], other_typed: set[str],
             global_floats: set[str]) -> list[Finding]:
    out: list[Finding] = []
    for lineno, code in enumerate(sf.code_lines, start=1):
        if "operator==" in code or "operator!=" in code:
            continue
        for m in EQUALITY_RE.finditer(code):
            left = _operand(code[:m.start()], reverse=True).strip()
            right = _operand(code[m.end():], reverse=False).strip()
            culprit = None
            for side in (left, right):
                if FLOAT_LITERAL_RE.search(side):
                    culprit = f"float literal in `{side}`"
                    break
                hit = _typed_identifier(side, local_floats, other_typed,
                                        global_floats)
                if hit is not None:
                    culprit = f"`{hit}` is floating-point"
                    break
            if culprit is None:
                continue
            out.append(Finding(
                rule="B2", slug="float-equality", path=sf.rel, line=lineno,
                message=(f"{m.group(1)} on floating-point value ({culprit}):"
                         " use an explicit threshold, std::isnan, or"
                         " restructure the comparator around </> so exact"
                         " ties are impossible by construction"),
            ))
    return out
