"""Concurrency rules C1-C3.

The tree's entire concurrency surface is bc::util (src/util/concurrency/):
an annotated Mutex/LockGuard/CondVar family, relaxed atomic counters, and a
deterministic ThreadPool. Everything else must build on those wrappers —
they carry the Clang thread-safety capability annotations, so only code
routed through them is covered by -Werror=thread-safety.

C1 raw-primitive: no std::mutex / std::thread / std::atomic /
   std::condition_variable (or friends: locks, semaphores, futures)
   outside src/util/concurrency/. Raw primitives are invisible to the
   thread-safety analysis and to the C2 guard check.
C2 unguarded-shared-member: a class that owns a bc::util::Mutex is a class
   whose state is shared across threads; every mutable data member it
   declares must say which lock protects it (BC_GUARDED_BY /
   BC_PT_GUARDED_BY) or be a concurrency primitive that is safe by itself
   (Mutex, CondVar, ThreadPool, RelaxedCounter, RelaxedBool).
C3 detached-execution: no `.detach()` and no std::async. Detached threads
   outlive scope-based reasoning (and TSan's happens-before graph); fire-
   and-forget work goes through the pool, whose destructor joins.
"""

from __future__ import annotations

import re

from bc_analyze.model import Finding
from bc_analyze.source import SourceFile, match_paren

# --- C1 ---------------------------------------------------------------------

RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|recursive_timed_mutex|timed_mutex"
    r"|shared_mutex|shared_timed_mutex"
    r"|lock_guard|scoped_lock|unique_lock|shared_lock"
    r"|thread|jthread"
    r"|atomic(?:_[a-z0-9_]+)?"
    r"|condition_variable(?:_any)?"
    r"|counting_semaphore|binary_semaphore|barrier|latch"
    r"|call_once|once_flag"
    r"|promise|future|shared_future|packaged_task)\b"
)


def check_c1(sf: SourceFile) -> list[Finding]:
    out = []
    for lineno, code in enumerate(sf.code_lines, start=1):
        for m in RAW_PRIMITIVE_RE.finditer(code):
            out.append(Finding(
                rule="C1", slug="raw-primitive", path=sf.rel, line=lineno,
                message=(f"raw concurrency primitive `{m.group(0)}` outside"
                         " src/util/concurrency/: use bc::util::Mutex/"
                         "LockGuard/CondVar/ThreadPool/RelaxedCounter — only"
                         " the annotated wrappers are covered by the Clang"
                         " thread-safety analysis"),
            ))
    return out


# --- C2 ---------------------------------------------------------------------

CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)[^;{()]*\{")
OWNS_MUTEX_RE = re.compile(r"\b(?:bc::)?(?:util::)?Mutex\s+[A-Za-z_]\w*_\b")
GUARD_RE = re.compile(r"\bBC(?:_PT)?_GUARDED_BY\s*\(")
#: Members that are safe to share without a guard annotation: the lock
#: itself, the condvar bound to it, a pool (internally synchronized), and
#: the relaxed atomics.
SAFE_MEMBER_TYPE_RE = re.compile(
    r"\b(?:bc::)?(?:util::)?(?:Mutex|CondVar|ThreadPool|RelaxedCounter"
    r"|RelaxedBool)\b"
)
#: Statement prefixes that are not mutable data members.
NON_MEMBER_PREFIX_RE = re.compile(
    r"^\s*(?:using|typedef|friend|static|constexpr|const\s|enum|template)\b"
)
#: A declaration statement's tail: convention-named member (trailing `_`),
#: optional guard annotation, optional array extent / default initializer.
MEMBER_TAIL_RE = re.compile(
    r"([A-Za-z_]\w*_)\s*(?:\[[^\]]*\]\s*)?"
    r"(?:BC(?:_PT)?_GUARDED_BY\s*\([^)]*\)\s*)?(?:=[^;]*)?$"
)


def _blank_nested_braces(body: str) -> str:
    """Blanks every brace group in a class body (method bodies, nested
    types, brace initializers) with spaces, preserving offsets, so a
    depth-0 `;` split yields exactly the member/method declarations."""
    out = []
    depth = 0
    for c in body:
        if c == "{":
            depth += 1
            out.append(" ")
        elif c == "}":
            depth = max(0, depth - 1)
            out.append(" ")
        else:
            out.append(c if depth == 0 else " ")
    return "".join(out)


def _strip_labels(stmt: str) -> str:
    """Drops access-specifier labels glued to the front of a statement."""
    return re.sub(r"^\s*(?:public|protected|private)\s*:", "", stmt)


def check_c2(sf: SourceFile) -> list[Finding]:
    out: list[Finding] = []
    code = sf.code
    for cm in CLASS_RE.finditer(code):
        # `enum class X {` declares scoped-enum constants, not members.
        prefix = code[max(0, cm.start() - 8):cm.start()]
        if re.search(r"\benum\s*$", prefix):
            continue
        open_idx = cm.end() - 1
        close_idx = match_paren(code, open_idx, "}")
        if close_idx < 0:
            continue
        body_start = open_idx + 1
        body = _blank_nested_braces(code[body_start:close_idx])
        if not OWNS_MUTEX_RE.search(body):
            continue
        # Depth-0 split: every fragment is one declaration (methods keep
        # only their signature after brace blanking and never match the
        # member tail below).
        start = 0
        for i, c in enumerate(body + ";"):
            if c != ";":
                continue
            stmt = _strip_labels(body[start:i])
            stmt_start = start
            start = i + 1
            tail = MEMBER_TAIL_RE.search(stmt.rstrip())
            if tail is None:
                continue
            if NON_MEMBER_PREFIX_RE.match(stmt.strip()):
                continue
            if GUARD_RE.search(stmt) or SAFE_MEMBER_TYPE_RE.search(stmt):
                continue
            name = tail.group(1)
            name_off = body_start + stmt_start + stmt.rstrip().rindex(name)
            out.append(Finding(
                rule="C2", slug="unguarded-shared-member", path=sf.rel,
                line=sf.line_at(name_off),
                message=(f"member `{name}` of Mutex-owning class"
                         f" `{cm.group(2)}` has no BC_GUARDED_BY: a class"
                         " that owns a bc::util::Mutex shares state across"
                         " threads, so every mutable member must name the"
                         " lock that protects it (or carry a reasoned"
                         " suppression proving it is single-threaded)"),
            ))
    return out


# --- C3 ---------------------------------------------------------------------

DETACH_RE = re.compile(r"\.\s*detach\s*\(|\bstd::async\b")


def check_c3(sf: SourceFile) -> list[Finding]:
    out = []
    for lineno, code in enumerate(sf.code_lines, start=1):
        for m in DETACH_RE.finditer(code):
            out.append(Finding(
                rule="C3", slug="detached-execution", path=sf.rel,
                line=lineno,
                message=(f"detached execution `{m.group(0).strip()}`:"
                         " threads that outlive their scope escape both the"
                         " thread-safety analysis and deterministic"
                         " teardown; run the work on bc::util::ThreadPool,"
                         " whose destructor joins"),
            ))
    return out
