"""Graph-core encapsulation rule G1.

G1 dense-index-leak: the graph module interns PeerIds to dense NodeIndex
   slots for vector-addressed adjacency. Slot numbers are not stable
   identifiers — remove_node() frees them for reuse by a *different* peer —
   so any NodeIndex that escapes src/graph/ (into gossip, reputation
   bookkeeping, serialized state, ...) is a correctness bug waiting for the
   first churn event. Consumers must stay on the PeerId API of FlowGraph.
"""

from __future__ import annotations

import re

from bc_analyze.model import Finding
from bc_analyze.source import SourceFile

DENSE_INDEX_RE = re.compile(
    r"\b(?:bc::)?(?:graph::)?(PeerIndex|NodeIndex|kNoNode)\b"
)
# Scanned against raw lines: include paths are string literals, which the
# code scrubber blanks.
PEER_INDEX_INCLUDE_RE = re.compile(
    r'#\s*include\s*["<]graph/peer_index\.hpp[">]'
)


def check_g1(sf: SourceFile) -> list[Finding]:
    out: list[Finding] = []
    for lineno, raw in enumerate(sf.raw_lines, start=1):
        if PEER_INDEX_INCLUDE_RE.search(raw):
            out.append(Finding(
                rule="G1", slug="dense-index-leak", path=sf.rel, line=lineno,
                message=("include of graph/peer_index.hpp outside"
                         " src/graph/: dense slot numbers are a private"
                         " detail of the graph core; consume the PeerId API"
                         " of FlowGraph instead"),
            ))
    for lineno, code in enumerate(sf.code_lines, start=1):
        for m in DENSE_INDEX_RE.finditer(code):
            out.append(Finding(
                rule="G1", slug="dense-index-leak", path=sf.rel, line=lineno,
                message=(f"dense graph internal `{m.group(1)}` outside"
                         " src/graph/: NodeIndex slots are recycled on"
                         " remove_node() and are not stable peer"
                         " identifiers; use the PeerId API of FlowGraph"),
            ))
    return out
