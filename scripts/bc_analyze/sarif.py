"""SARIF 2.1.0 output: one run, one result per finding.

The emitted log is intentionally minimal but schema-valid: rule metadata
from the catalogue, physical locations with repo-relative URIs against
%SRCROOT%, and `error` level throughout (bc-analyze has no warning tier —
a finding either fails the build or is suppressed in-source with a
reason). GitHub code scanning ingests this via codeql-action/upload-sarif.
"""

from __future__ import annotations

import json
from pathlib import Path

from bc_analyze import RULES, __version__
from bc_analyze.model import Finding

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def sarif_log(findings: list[Finding]) -> dict:
    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    rules = [{
        "id": rule_id,
        "name": RULES.get(rule_id, rule_id),
        "shortDescription": {"text": RULES.get(rule_id, rule_id)},
        "defaultConfiguration": {"level": "error"},
    } for rule_id in rule_ids]
    index = {r["id"]: i for i, r in enumerate(rules)}
    results = [{
        "ruleId": f.rule,
        "ruleIndex": index[f.rule],
        "level": "error",
        "message": {"text": f"[{f.slug}] {f.message}"},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path,
                                     "uriBaseId": "%SRCROOT%"},
                "region": {"startLine": f.line},
            },
        }],
    } for f in findings]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "bc-analyze",
                "version": __version__,
                "rules": rules,
            }},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def write_sarif(path: Path, findings: list[Finding]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(sarif_log(findings), indent=2) + "\n",
                    encoding="utf-8")
