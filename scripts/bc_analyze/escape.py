"""Escape layer: borrow facts and mutation summaries for rules L1-L4.

Two per-function fact families, both computed on the token frontend's
scrubbed-code model and composed over callgraph.py's resolved call edges:

  * borrow facts — which locals are views or references into which owner
    objects. A borrow is recognized from the declared type (std::span,
    std::string_view, graph::EdgeView, `T&` / `auto&` bindings, iterator
    results of begin/find/lower_bound) or from the return type of the
    initializing call: any project function whose declared return type is
    a view/reference is an accessor, so `auto out = g.out_edges(p)`
    borrows from `g` even though the declared type is `auto`.
  * mutation summaries — which functions may invalidate containers
    reachable from their receiver (`this`): a direct growth/erase op on a
    convention-named member (`out_.resize(...)`, `payloads_.erase(...)`,
    map `operator[]` insertion on a declared unordered member), or a call
    that reaches one — an unqualified same-class call (`touch()`), a call
    on a member object (`graph_.add_capacity(...)`), composed transitively
    with a hop limit and provenance like dataflow.py's passes. Free
    functions that mutate a by-reference parameter (`adj_erase(v, to)`)
    are summarized separately so call sites passing an owner by reference
    count as invalidation points.

Laundering: sorted_view / sorted_keys and friends return *owning*
snapshots, never borrows — the same set rules_dataflow uses to cut D4
taint also cuts borrow tracking here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from bc_analyze.callgraph import FunctionDef, Program, _decl_head
from bc_analyze.source import IDENT_RE, SourceFile, match_paren

# --- view-type recognition ---------------------------------------------------

#: Return-type / declared-type shapes that borrow instead of own.
VIEW_TYPE_RE = re.compile(
    r"\bstd\s*::\s*(?:span|string_view|basic_string_view)\b"
    r"|(?<![\w:])(?:span|string_view)\s*<"
    r"|\bEdgeView\b"
    r"|::(?:const_)?(?:reverse_)?iterator\b"
)
#: `T&` return types (reference into owned state); `&&` is not a borrow
#: accessor shape in this tree.
REF_RETURN_RE = re.compile(r"&\s*$")

#: Standard members whose result points into the receiver.
BUILTIN_VIEW_ACCESSORS = frozenset({
    "data", "c_str", "begin", "cbegin", "end", "cend", "rbegin", "rend",
    "front", "back", "at", "find", "lower_bound", "upper_bound", "top",
    "raw",
})

#: Calls that return *owning* values: never borrows, whatever the name
#: suggests. sorted_view/sorted_keys are the D1 laundering snapshots.
OWNING_CALL_NAMES = frozenset({
    "sorted_view", "sorted_keys", "substr", "str", "to_string", "string",
    "size", "empty", "count", "contains", "capacity", "value", "value_or",
})

#: Files whose classes hand out references with documented stability:
#: the obs registry/tracer/profiler keep node-based (map) instrument
#: storage precisely so cached `Counter&` references survive later
#: registration — calls into them never invalidate outstanding borrows.
STABLE_REF_PREFIXES = ("src/obs/",)

#: Container ops that can move or free element storage, invalidating every
#: outstanding view/iterator into the receiver.
MUTATOR_NAMES = frozenset({
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "insert", "insert_or_assign", "try_emplace", "erase", "clear",
    "resize", "assign", "pop_back", "pop_front", "shrink_to_fit",
    "reserve", "rehash", "extract", "merge", "swap",
})

_MUT_CALL_RE = re.compile(
    r"(?<![\w.])((?:this\s*->\s*)?[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)"
    r"\s*(?:\.|->)\s*(" + "|".join(sorted(MUTATOR_NAMES)) + r")\s*\("
)
#: `m_[key] = ...` on a declared unordered member: map operator[] inserts.
_SUBSCRIPT_ASSIGN_RE = re.compile(
    r"(?<![\w.])([A-Za-z_]\w*)\s*\[[^\]\n]*\]\s*=(?!=)")
_MEMBER_CALL_SITE_RE = re.compile(
    r"(?<![\w.])((?:this\s*->\s*)?[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)"
    r"\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")


def base_ident(expr: str) -> str | None:
    """First identifier of an owner expression: `graph_.out_edges(p)` ->
    graph_, `this->caps_` -> caps_, `(*node).views_` -> node."""
    expr = expr.strip()
    expr = re.sub(r"^this\s*->\s*", "", expr)
    m = IDENT_RE.search(expr)
    return m.group(0) if m else None


def return_type_of(fn: FunctionDef, code: str) -> str:
    """Declared return type text of a definition, '' when unparseable
    (constructors, destructors, operators)."""
    head = _decl_head(code, fn.start)
    m = re.search(rf"\b{re.escape(fn.name)}\s*\(", head)
    if m is None:
        return ""
    ret = head[:m.start()].strip()
    # Strip specifiers and the qualification of out-of-class definitions
    # (`std::span<const Edge> FlowGraph::` -> the span part survives).
    ret = re.sub(r"\b(?:inline|static|constexpr|virtual|explicit"
                 r"|BC_\w+)\b", " ", ret)
    ret = re.sub(r"(?:[A-Za-z_]\w*\s*::\s*)+$", "", ret).strip()
    return ret


def returns_view(fn: FunctionDef, code: str) -> str | None:
    """'view' / 'ref' when fn's declared return type borrows, else None."""
    ret = return_type_of(fn, code)
    if not ret or ret.endswith("&&"):
        return None
    if VIEW_TYPE_RE.search(ret):
        return "view"
    if REF_RETURN_RE.search(ret):
        return "ref"
    return None


def view_accessors(program: Program) -> dict[str, str]:
    """Base name -> kind for every project function returning a view or
    reference, merged with the std accessor model."""
    out = {name: "view" for name in BUILTIN_VIEW_ACCESSORS}
    for fn in program.functions:
        kind = returns_view(fn, program.by_rel[fn.rel].code)
        if kind is not None and fn.name not in OWNING_CALL_NAMES:
            out[fn.name] = kind
    return out


# --- borrow facts ------------------------------------------------------------


@dataclass
class Borrow:
    """One local that points into an owner it does not own."""

    var: str
    owner: str  # base identifier of the owning expression
    via: str  # accessor / binding description for evidence text
    decl_off: int  # offset of the declaration in SourceFile.code
    stmt_end: int  # offset just past the declaration statement
    kind: str  # "view" | "ref" | "iterator" | "range-for"
    scope_end: int = 0  # for range-for: end of the loop body


_VIEW_DECL_RE = re.compile(
    r"(?<![\w:])(?:const\s+)?"
    r"(?:(?:std\s*::\s*)?(?:span|string_view|basic_string_view)"
    r"(?:\s*<[^;={}]*>)?|(?:graph\s*::\s*)?EdgeView)\s*"
    r"(?:const\s*)?&?\s*([A-Za-z_]\w*)\s*([=({])"
)
_AUTO_DECL_RE = re.compile(
    r"(?<![\w:])(?:const\s+)?auto\s*(&?)\s*([A-Za-z_]\w*)\s*=")
_REF_DECL_RE = re.compile(
    r"(?<![\w:])(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^;={}]*>)?\s*&\s*"
    r"([A-Za-z_]\w*)\s*=")
_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,\s]+?([&*]?)\s*"
    r"(?:\[[^\]]*\]|[A-Za-z_]\w*)\s*:\s*([^)]+)\)")


def _initializer(code: str, start: int, end: int) -> str:
    stop = code.find(";", start, end)
    return code[start:stop if stop > 0 else end]


def _init_borrow(init: str,
                 accessors: dict[str, str]) -> tuple[str, str] | None:
    """(owner, via) when the initializer expression borrows, else None."""
    init = init.strip()
    # Member accessor chain: recv.accessor(...) — owner is the chain base.
    m = re.match(
        r"\(?\s*((?:this\s*->\s*)?[A-Za-z_][\w:]*"
        r"(?:(?:\.|->)[A-Za-z_]\w*|\([^()]*\)|\[[^\]]*\])*)"
        r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\(", init)
    if m:
        accessor = m.group(2)
        if accessor in OWNING_CALL_NAMES:
            return None
        owner = base_ident(m.group(1))
        if owner is None:
            return None
        if accessor in accessors:
            return (owner, accessor)
        return None
    # Free accessor call: F(owner, ...) for a project view returner.
    m = re.match(r"([A-Za-z_][\w:]*)\s*\(\s*([^;]*)", init)
    if m:
        callee = m.group(1).rsplit("::", 1)[-1]
        if callee in accessors and callee not in OWNING_CALL_NAMES:
            owner = base_ident(m.group(2))
            if owner is not None:
                return (owner, callee)
        return None
    # Plain identifier / member / subscript: direct binding.
    owner = base_ident(init)
    if owner is not None and re.match(r"[\w.\->\[\]\s*()]+$", init):
        return (owner, "&-binding")
    return None


def borrows_in(fn: FunctionDef, sf: SourceFile,
               accessors: dict[str, str]) -> list[Borrow]:
    """Every borrow declared in fn's body, range-for loops included."""
    code = sf.code
    lo, hi = fn.start + 1, fn.end
    out: list[Borrow] = []
    seen_offsets: set[int] = set()

    def add(var: str, off: int, kind: str, init: str, via_hint: str = ""):
        if off in seen_offsets:
            return
        bound = _init_borrow(init, accessors)
        if bound is None:
            return
        owner, via = bound
        if kind == "ref" and via == "&-binding" and "[" not in init:
            # `T& x = obj.member` / `auto& x = other`: a reference to a
            # sub-object or an alias — its validity tracks the *object's*
            # lifetime, not container geometry. Only element bindings
            # (`out_[fi]`, `views_[p]`) borrow from a container.
            return
        if owner == var or owner in ("this", "nullptr"):
            return
        seen_offsets.add(off)
        out.append(Borrow(var=var, owner=owner, via=via_hint or via,
                          decl_off=off,
                          stmt_end=code.find(";", off, hi) + 1 or hi,
                          kind=kind))

    for m in _VIEW_DECL_RE.finditer(code, lo, hi):
        add(m.group(1), m.start(), "view",
            _initializer(code, m.end(), hi))
    for m in _AUTO_DECL_RE.finditer(code, lo, hi):
        init = _initializer(code, m.end(), hi)
        kind = "ref" if m.group(1) == "&" else "view"
        if m.group(1) != "&":
            # By-value auto only borrows when the initializer is itself a
            # view-returning call (copying a span copies the pointer).
            if not re.search(r"\(", init):
                continue
        add(m.group(2), m.start(), kind, init)
    for m in _REF_DECL_RE.finditer(code, lo, hi):
        head = code[max(lo, m.start() - 8):m.start() + 1]
        if re.search(r"(?:auto|return)\s*$", head):
            continue  # auto& handled above; `return x =` is not a decl
        add(m.group(1), m.start(), "ref",
            _initializer(code, m.end(), hi), via_hint="&-binding")
    for m in _RANGE_FOR_RE.finditer(code, lo, hi):
        owner = base_ident(m.group(2))
        if owner is None or owner == "this":
            continue
        body_open = code.find("{", m.end(), hi)
        stmt_end = code.find(";", m.end(), hi)
        if body_open < 0 or (0 < stmt_end < body_open):
            scope_end = stmt_end if stmt_end > 0 else hi
        else:
            close = match_paren(code, body_open, "}")
            scope_end = close if close > 0 else hi
        expr = m.group(2).strip()
        via = "range-for"
        acc = re.search(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\($", expr)
        if acc is not None:
            if acc.group(1) in OWNING_CALL_NAMES:
                continue  # iterating an owning snapshot (sorted_view etc.)
            via = acc.group(1)
        elif re.match(r"(?:util\s*::\s*)?(?:sorted_view|sorted_keys)\b",
                      expr):
            continue
        out.append(Borrow(var="<range-for>", owner=owner, via=via,
                          decl_off=m.start(), stmt_end=m.end(),
                          kind="range-for", scope_end=scope_end))
    return out


# --- mutation summaries ------------------------------------------------------


@dataclass
class Invalidation:
    """Why calling `fn` may invalidate views into its receiver: either a
    direct mutation site in its own body (site_fn is fn) or a call chain
    reaching one."""

    evidence: str  # e.g. "`out_.resize(...)` at src/graph/flow_graph.cpp:57"
    chain: list[str] = field(default_factory=list)  # qualnames, caller first
    depth: int = 0


def _param_names(fn: FunctionDef, code: str) -> tuple[set[str], set[str]]:
    """(all_params, mutable_ref_params) of a definition."""
    head = _decl_head(code, fn.start)
    m = re.search(rf"\b{re.escape(fn.name)}\s*\(", head)
    if m is None:
        return (set(), set())
    close = match_paren(head, m.end() - 1)
    params = head[m.end():close if close > 0 else len(head)]
    names: set[str] = set()
    mutable_refs: set[str] = set()
    for part in re.split(r",(?![^<(]*[>)])", params):
        pm = re.search(r"([A-Za-z_]\w*)\s*(?:=[^,]*)?$", part.strip())
        if pm is None:
            continue
        names.add(pm.group(1))
        if "&" in part and "const" not in part.split("&")[0]:
            mutable_refs.add(pm.group(1))
    return (names, mutable_refs)


class MutationSummaries:
    """Receiver-invalidation and ref-param-mutation summaries, computed
    once per Program with bounded transitive composition (hop limit 4)."""

    MAX_DEPTH = 4

    def __init__(self, program: Program):
        self.program = program
        #: Names declared anywhere as std::unordered_* — subscript-assign
        #: on these is operator[] insertion (vector subscript-assign on a
        #: dense array is not structural and must not count).
        self._map_names: set[str] = set()
        for sf in program.sources:
            self._map_names |= sf.unordered_vars
        self._ref_aliases: dict[int, dict[str, str]] = {}
        self._params: dict[int, tuple[set[str], set[str]]] = {}
        #: id(fn) -> Invalidation for receiver-invalidating functions.
        self.invalidates_receiver: dict[int, Invalidation] = {}
        #: id(fn) -> {param name: evidence} for ref-param mutators.
        self.mutates_ref_params: dict[int, dict[str, str]] = {}
        self._compute()

    # -- per-function raw facts --

    def _aliases(self, fn: FunctionDef, sf: SourceFile) -> dict[str, str]:
        """Local reference bindings: `auto& adj = out_[fi]` makes a
        mutation of `adj` a mutation of `out_`."""
        cached = self._ref_aliases.get(id(fn))
        if cached is not None:
            return cached
        code = sf.code
        aliases: dict[str, str] = {}
        for m in _AUTO_DECL_RE.finditer(code, fn.start + 1, fn.end):
            if m.group(1) != "&":
                continue
            owner = base_ident(_initializer(code, m.end(), fn.end))
            if owner is not None:
                aliases[m.group(2)] = owner
        for m in _REF_DECL_RE.finditer(code, fn.start + 1, fn.end):
            owner = base_ident(_initializer(code, m.end(), fn.end))
            if owner is not None:
                aliases.setdefault(m.group(1), owner)
        self._ref_aliases[id(fn)] = aliases
        return aliases

    def resolve_receiver(self, fn: FunctionDef, sf: SourceFile,
                         recv: str) -> str | None:
        """Receiver base identifier with local `T&` aliases chased."""
        base = base_ident(recv)
        aliases = self._aliases(fn, sf)
        hops = 0
        while base in aliases and hops < 4:
            nxt = aliases[base]
            if nxt == base:
                break
            base = nxt
            hops += 1
        return base

    def direct_mutations(self, fn: FunctionDef,
                         sf: SourceFile) -> list[tuple[int, str, str]]:
        """(offset, resolved base identifier, description) for every
        container-mutating site in fn's own body (lambda bodies excluded:
        deferred code does not mutate at the point it is written)."""
        code = sf.code
        out: list[tuple[int, str, str]] = []
        for m in _MUT_CALL_RE.finditer(code, fn.start + 1, fn.end):
            if fn.in_lambda(m.start()):
                continue
            base = self.resolve_receiver(fn, sf, m.group(1))
            if base is None:
                continue
            out.append((m.start(), base,
                        f"`{base_ident(m.group(1))}.{m.group(2)}(...)`"))
        for m in _SUBSCRIPT_ASSIGN_RE.finditer(code, fn.start + 1, fn.end):
            if fn.in_lambda(m.start()):
                continue
            base = self.resolve_receiver(fn, sf, m.group(1))
            if base is not None and base in self._map_names:
                out.append((m.start(), base,
                            f"map `{base}[...] = ...` insertion"))
        out.sort()
        return out

    def params_of(self, fn: FunctionDef) -> tuple[set[str], set[str]]:
        cached = self._params.get(id(fn))
        if cached is None:
            cached = _param_names(fn, self.program.by_rel[fn.rel].code)
            self._params[id(fn)] = cached
        return cached

    # -- composition --

    @staticmethod
    def _is_member(name: str) -> bool:
        return name.endswith("_") and not name.startswith("_")

    def _compute(self) -> None:
        program = self.program
        # Seed: direct member mutation => invalidates receiver; direct
        # mutable-ref-param mutation => mutates that parameter.
        for fn in program.functions:
            if fn.rel.startswith(STABLE_REF_PREFIXES):
                continue  # stability-by-contract: see STABLE_REF_PREFIXES
            sf = program.by_rel[fn.rel]
            _, mutable_refs = self.params_of(fn)
            for off, base, desc in self.direct_mutations(fn, sf):
                where = f"{desc} at {fn.rel}:{sf.line_at(off)}"
                if self._is_member(base):
                    self.invalidates_receiver.setdefault(
                        id(fn), Invalidation(evidence=where,
                                             chain=[fn.qualname]))
                elif base in mutable_refs:
                    self.mutates_ref_params.setdefault(
                        id(fn), {}).setdefault(base, where)
        # Transitive: an unqualified same-class call, or a mutator call on
        # a member object, inherits the callee's receiver-invalidation.
        for _ in range(self.MAX_DEPTH):
            changed = False
            for fn in program.functions:
                if id(fn) in self.invalidates_receiver:
                    continue
                if fn.rel.startswith(STABLE_REF_PREFIXES):
                    continue
                sf = program.by_rel[fn.rel]
                code = sf.code
                for site in program.calls_from.get(id(fn), ()):
                    callee = site.callee
                    inv = self.invalidates_receiver.get(id(callee))
                    if inv is None or inv.depth >= self.MAX_DEPTH:
                        continue
                    recv = self._receiver_text(code, site.offset)
                    if recv is None:
                        # Unqualified call: on `this` iff same class.
                        if (not fn.class_qual
                                or callee.class_qual != fn.class_qual):
                            continue
                    else:
                        base = self.resolve_receiver(fn, sf, recv)
                        if base is None or not self._is_member(base):
                            continue  # mutation of a local: not receiver
                    self.invalidates_receiver[id(fn)] = Invalidation(
                        evidence=inv.evidence,
                        chain=[fn.qualname] + inv.chain,
                        depth=inv.depth + 1)
                    changed = True
                    break
            if not changed:
                break

    @staticmethod
    def _receiver_text(code: str, name_off: int) -> str | None:
        """Receiver expression of a member call whose method name starts
        at name_off, or None for an unqualified call."""
        j = name_off
        while j > 0 and code[j - 1] in " \t\n":
            j -= 1
        if j >= 2 and code[j - 2:j] == "->":
            j -= 2
        elif j >= 1 and code[j - 1] == ".":
            j -= 1
        else:
            return None
        start = j
        depth = 0
        while start > 0:
            c = code[start - 1]
            if c in ")]":
                depth += 1
            elif c in "([":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0 and not (c.isalnum() or c in "_.>-:"):
                break
            start -= 1
        return code[start:j]

    def invalidation_chain(self, fn: FunctionDef) -> str:
        """`a -> b -> c [evidence]` text for findings."""
        inv = self.invalidates_receiver.get(id(fn))
        if inv is None:
            return ""
        return f"{' -> '.join(inv.chain)} [{inv.evidence}]"
