"""Fixed-point propagation passes over the call graph.

Two directions cover every interprocedural rule:

  * taint_callers — a property observed *inside* a function contaminates
    everything that (transitively) calls it: nondeterminism sources for
    rule D4. Propagation stops at sanctioned laundering points.
  * transitive_union — a property of a function's body is inherited *by*
    its callers as "reachable through a call": allocation for P1, blocking
    for C4, lock acquisition for C5. Bounded by a hop limit so heuristic
    call-resolution noise cannot smear a property across the whole tree.

Both passes carry provenance so findings can print the actual
source-to-sink chain instead of a bare verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from bc_analyze.callgraph import CallSite, FunctionDef, Program


@dataclass
class Taint:
    """Why a function is tainted: either it contains the source itself
    (site is None) or a call site reaches a tainted callee."""

    source_desc: str  # e.g. "wall-clock at src/x.cpp:12"
    source_fn: FunctionDef
    site: CallSite | None  # the call in *this* function toward the source
    depth: int


def taint_callers(
        program: Program,
        seeds: dict[int, tuple[FunctionDef, str]],
        launder) -> dict[int, Taint]:
    """BFS from source functions up the caller graph.

    `seeds` maps id(fn) -> (fn, source description). `launder(callee)`
    returns True when calls *into* that function sanitize the value
    (sorted snapshots, the seeded Rng, observability-only code), cutting
    propagation. Returns id(fn) -> Taint for every reached function,
    including the seeds themselves (site=None).
    """
    taint: dict[int, Taint] = {}
    queue: list[FunctionDef] = []
    for fn, desc in seeds.values():
        taint[id(fn)] = Taint(source_desc=desc, source_fn=fn, site=None,
                              depth=0)
        queue.append(fn)
    head = 0
    while head < len(queue):
        fn = queue[head]
        head += 1
        state = taint[id(fn)]
        if launder(fn):
            continue  # a laundering point may contain sources; they stop here
        for site in program.calls_to.get(id(fn), ()):  # callers of fn
            caller = site.caller
            if id(caller) in taint:
                continue
            taint[id(caller)] = Taint(
                source_desc=state.source_desc, source_fn=state.source_fn,
                site=site, depth=state.depth + 1)
            queue.append(caller)
    return taint


def chain_of(taint: dict[int, Taint], fn: FunctionDef) -> list[str]:
    """Qualified-name path from `fn` down to the source function."""
    names = [fn.qualname]
    state = taint[id(fn)]
    guard = 0
    while state.site is not None and guard < 64:
        guard += 1
        nxt = state.site.callee
        names.append(nxt.qualname)
        state = taint[id(nxt)]
    return names


@dataclass
class Reach:
    """How a function reaches a property: directly (site is None, `what`
    describes the body evidence) or through a call chain."""

    what: str
    site: CallSite | None
    depth: int


def transitive_union(
        program: Program,
        direct: dict[int, str],
        max_depth: int = 3) -> dict[int, Reach]:
    """id(fn) -> Reach for every function that exhibits the property in
    its own body (`direct`, id(fn) -> evidence string) or reaches one that
    does within `max_depth` calls."""
    reach: dict[int, Reach] = {}
    queue: list[FunctionDef] = []
    for fn in program.functions:
        if id(fn) in direct:
            reach[id(fn)] = Reach(what=direct[id(fn)], site=None, depth=0)
            queue.append(fn)
    head = 0
    while head < len(queue):
        fn = queue[head]
        head += 1
        state = reach[id(fn)]
        if state.depth >= max_depth:
            continue
        for site in program.calls_to.get(id(fn), ()):
            caller = site.caller
            if id(caller) in reach:
                continue
            reach[id(caller)] = Reach(what=state.what, site=site,
                                      depth=state.depth + 1)
            queue.append(caller)
    return reach


def reach_chain(reach: dict[int, Reach], fn: FunctionDef) -> list[str]:
    names = [fn.qualname]
    state = reach[id(fn)]
    guard = 0
    while state.site is not None and guard < 64:
        guard += 1
        nxt = state.site.callee
        names.append(nxt.qualname)
        state = reach[id(nxt)]
    return names
