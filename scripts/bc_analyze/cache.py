"""Incremental analysis cache.

Two layers, both keyed by content digests so a cache entry can never
outlive the code it describes:

  * a whole-run cache — the final finding list for one (file set, flags,
    tool version) digest. A clean re-run with nothing changed replays the
    stored result without re-parsing a single file, which is what keeps
    lint.sh's analyzer stage near-instant in the common no-change case.
  * a per-TU clang cache — the clang-frontend findings for one
    translation unit, keyed by the digest of the TU *and its include
    closure* plus the clang binary identity. Editing a header invalidates
    exactly the TUs that (transitively) include it.

Entries are stored in one JSON file. Corruption or version skew simply
discards the cache — it is a pure accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

from bc_analyze import __version__
from bc_analyze.model import Finding

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)

#: Bump to invalidate every existing cache entry on format changes.
_FORMAT = 1


def tool_digest() -> str:
    """Digest of the analyzer's own sources: editing any rule invalidates
    every cache entry, version bump or not."""
    pkg = Path(__file__).resolve().parent
    h = hashlib.sha256()
    for p in sorted(pkg.glob("*.py")):
        h.update(p.name.encode())
        h.update(file_digest(p).encode())
    return h.hexdigest()


def file_digest(path: Path, _memo: dict[Path, str] = {}) -> str:
    """sha256 of the file bytes, memoized per process; missing files hash
    to a fixed sentinel so a deleted header still changes its closure."""
    if path not in _memo:
        try:
            h = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            h = "missing"
        _memo[path] = h
    return _memo[path]


class IncludeCloser:
    """Resolves the project-local `#include "..."` closure of a file.

    Only quoted includes are followed (system headers change with the
    toolchain, which is part of the clang identity key instead), resolved
    against the includer's directory and the repo include roots.
    """

    def __init__(self, repo_root: Path,
                 include_dirs: tuple[str, ...] = ("src",)):
        self.repo_root = repo_root
        self.roots = [repo_root / d for d in include_dirs]
        self._memo: dict[Path, list[Path]] = {}

    def _resolve(self, spec: str, includer: Path) -> Path | None:
        for base in [includer.parent, *self.roots]:
            cand = base / spec
            if cand.is_file():
                return cand
        return None

    def closure(self, path: Path) -> list[Path]:
        """The file itself plus everything it transitively includes,
        sorted for a stable digest; include cycles terminate naturally."""
        out: set[Path] = set()
        stack = [path]
        while stack:
            p = stack.pop()
            if p in out:
                continue
            out.add(p)
            if p in self._memo:
                stack.extend(self._memo[p])
                continue
            try:
                text = p.read_text(encoding="utf-8", errors="replace")
            except OSError:
                self._memo[p] = []
                continue
            deps = []
            for spec in INCLUDE_RE.findall(text):
                dep = self._resolve(spec, p)
                if dep is not None:
                    deps.append(dep)
            self._memo[p] = deps
            stack.extend(deps)
        return sorted(out)

    def closure_digest(self, path: Path, salt: str = "") -> str:
        h = hashlib.sha256()
        h.update(salt.encode())
        for p in self.closure(path):
            h.update(p.as_posix().encode())
            h.update(file_digest(p).encode())
        return h.hexdigest()


def _finding_to_dict(f: Finding) -> dict:
    return {"rule": f.rule, "slug": f.slug, "path": f.path,
            "line": f.line, "message": f.message}


def _finding_from_dict(d: dict) -> Finding:
    return Finding(rule=d["rule"], slug=d["slug"], path=d["path"],
                   line=int(d["line"]), message=d["message"])


class AnalysisCache:
    """JSON-file-backed map from digest keys to finding lists (plus a
    small metadata blob for the whole-run entry)."""

    def __init__(self, path: Path):
        self.path = path
        tool = tool_digest()
        self.data: dict = {"format": _FORMAT, "version": __version__,
                           "tool": tool, "run": {}, "tu": {}}
        self.dirty = False
        self.hits = 0
        self.misses = 0
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if (loaded.get("format") == _FORMAT
                    and loaded.get("version") == __version__
                    and loaded.get("tool") == tool):
                self.data = loaded
        except (OSError, ValueError):
            pass  # absent or corrupt: start fresh

    # -- whole-run layer ----------------------------------------------------

    def get_run(self, key: str) -> tuple[list[Finding], dict] | None:
        entry = self.data["run"].get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_dict(d) for d in entry["findings"]], \
            entry.get("meta", {})

    def put_run(self, key: str, findings: list[Finding],
                meta: dict) -> None:
        # A handful of entries covers the realistic alternation (the tree,
        # a fixture dir, a subset path); an unbounded history of dead
        # trees has no value. Oldest-first eviction via dict order.
        runs = self.data["run"]
        runs.pop(key, None)
        runs[key] = {"findings": [_finding_to_dict(f) for f in findings],
                     "meta": meta}
        while len(runs) > 8:
            runs.pop(next(iter(runs)))
        self.dirty = True

    # -- per-TU clang layer -------------------------------------------------

    def get_tu(self, key: str) -> list[Finding] | None:
        entry = self.data["tu"].get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_dict(d) for d in entry]

    def put_tu(self, key: str, findings: list[Finding]) -> None:
        self.data["tu"][key] = [_finding_to_dict(f) for f in findings]
        self.dirty = True

    def save(self) -> None:
        if not self.dirty:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(self.data), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            pass  # read-only tree: run uncached


def run_key(files: list[Path], repo_root: Path, flags: str) -> str:
    """Whole-run digest: tool version, the flag set that changes analysis
    semantics, and every analyzed file's path and content digest."""
    h = hashlib.sha256()
    h.update(f"{__version__}|{flags}".encode())
    for f in sorted(files):
        try:
            rel = f.resolve().relative_to(repo_root.resolve()).as_posix()
        except ValueError:
            rel = f.as_posix()
        h.update(rel.encode())
        h.update(file_digest(f).encode())
    return h.hexdigest()
