"""bc-analyze: BarterCast-specific determinism & byte-accounting analyzer.

Rule catalogue (see DESIGN.md section 9):

  D1 unordered-iteration  iteration over std::unordered_map/unordered_set
                          must go through bc::util::sorted_view (or be
                          suppressed with a reason explaining why iteration
                          order cannot reach gossip selection, reputation
                          evaluation, or serialized output)
  D2 wall-clock           no wall-clock time sources outside src/obs/ and
                          src/util/logging.*; simulation code uses Engine
                          time so runs replay bit-identically
  D3 unseeded-random      no std::random_device / libc rand / std::<random>
                          engines outside src/util/rng.*; all randomness
                          flows through the seeded bc::Rng
  B1 byte-narrowing       no narrowing or sign-changing casts on
                          byte-counter (Bytes) expressions: the uint64/int64
                          upload-download ledgers behind c(i,j) and the
                          Eq. 1 maxflow capacities must never silently
                          truncate or wrap
  B2 float-equality       no ==/!= on reputation/time floating-point
                          values; use explicit thresholds or restructure
                          comparators to use </> only
  C1 raw-primitive        no std::mutex/std::thread/std::atomic/
                          std::condition_variable (or their lock/semaphore/
                          future relatives) outside src/util/concurrency/;
                          only the annotated bc::util wrappers are covered
                          by the Clang thread-safety analysis
  C2 unguarded-shared-member
                          a class owning a bc::util::Mutex must annotate
                          every mutable data member with BC_GUARDED_BY /
                          BC_PT_GUARDED_BY (or suppress with a reason
                          proving the member is single-threaded)
  C3 detached-execution   no `.detach()` and no std::async: detached work
                          escapes scope-based reasoning and deterministic
                          teardown; use bc::util::ThreadPool, which joins
                          in its destructor
  G1 dense-index-leak     no graph::PeerIndex / NodeIndex / kNoNode (or
                          includes of graph/peer_index.hpp) outside
                          src/graph/: dense slots are recycled on
                          remove_node() and are not stable peer
                          identifiers; consumers use the PeerId API
  D4 determinism-taint    interprocedural: no call-graph path from a
                          nondeterminism source (surviving D1/D2/D3
                          finding, thread id, pointer order/hash) into a
                          reputation / gossip / persistence sink
                          (bartercast::, gossip::, max_flow_*, encode*).
                          Calls through src/util/rng, sorted_view and
                          src/obs/ launder the taint.
  P1 hot-path-allocation  no heap allocation or unreserved container
                          growth inside loops of BC_OBS_SCOPE-instrumented
                          hot functions, directly or through calls: the
                          maxflow/choker hot paths must not hit the
                          allocator per iteration
  C4 blocking-under-lock  no blocking or allocating operation while a
                          bc::util::Mutex is held (LockGuard scope),
                          directly or through calls; CondVar::wait on the
                          held mutex is the one sanctioned wait shape
  C5 lock-order-cycle     no cycles in the cross-function
                          lock-acquisition-order graph (acquiring B while
                          holding A, including through calls): opposite-
                          order acquisition deadlocks
  V1 possible-overflow    interprocedural interval analysis (absint.py):
                          unguarded `+`/`*`/`+=`/`*=` on Bytes / int64
                          accounting values whose derived interval exceeds
                          [INT64_MIN, INT64_MAX] — signed overflow is UB;
                          convert to bc::util::checked_add / checked_mul /
                          saturating_add (src/util/checked.hpp) or add a
                          dominating BC_ASSERT bound
  V2 maybe-zero-divisor   a `/` or `%` whose divisor interval contains
                          zero (Eq. 1 denominators, histogram bucket math,
                          rates) with no dominating guard proving it
                          nonzero
  V3 value-narrowing      value-range upgrade of the syntactic B1 rule:
                          a loop-carried / int64-derived value stored into
                          a narrower type (including implicitly, and into
                          double past 2^53) whose interval does not fit
  V4 unbounded-index      subscript arithmetic (`v[i + 1]`, `buf[n - 1]`)
                          with no dominating size()/resize bound or
                          interval proof that the index stays in range
  L1 dangling-return      escape analysis (escape.py): a function whose
                          declared return type is a view (std::span /
                          std::string_view / EdgeView / iterator) or a
                          reference must not return a local owning
                          object, a view borrowed from one, or a
                          temporary — the storage dies with the frame
  L2 invalidated-view     a view borrowed from an owner (out_edges span,
                          string_view, iterator, T& binding, range-for)
                          must not be used after a call that may
                          invalidate the owner's storage, directly
                          (`push_back`/`erase`/`resize`/...) or through
                          a transitively composed mutation summary
                          (holding `out_edges(p)` across
                          `FlowGraph::add_capacity` -> `touch` ->
                          `out_.resize`); re-acquire or copy into an
                          owning snapshot (sorted_view) instead
  L3 escaping-capture     no lambda passed to a *storing* callback sink
                          (Engine::schedule_*, observer setters,
                          std::function-keeping members) may capture a
                          frame local by reference or a view by value:
                          the stored callback outlives the frame
  L4 use-after-move       no read of a moved-from local/parameter
                          without an intervening reassignment/clear();
                          `return std::move(x)` and sibling-branch moves
                          are left to clang-tidy's path-sensitive
                          bugprone-use-after-move
  SUP bad-suppression     a `// bc-analyze: allow(...)` marker that names an
                          unknown rule or omits the mandatory `-- reason`,
                          or a stale marker whose rule no longer fires on
                          its target line

Suppression syntax, on the offending line or a comment line directly above:

  // bc-analyze: allow(D1) -- result is fully re-sorted with a total order
  // bc-analyze: allow(D2,B2) -- wall-clock display only, never in sim state
"""

__version__ = "2.0"

RULES = {
    "D1": "unordered-iteration",
    "D2": "wall-clock",
    "D3": "unseeded-random",
    "D4": "determinism-taint",
    "B1": "byte-narrowing",
    "B2": "float-equality",
    "C1": "raw-primitive",
    "C2": "unguarded-shared-member",
    "C3": "detached-execution",
    "C4": "blocking-under-lock",
    "C5": "lock-order-cycle",
    "G1": "dense-index-leak",
    "P1": "hot-path-allocation",
    "V1": "possible-overflow",
    "V2": "maybe-zero-divisor",
    "V3": "value-narrowing",
    "V4": "unbounded-index",
    "L1": "dangling-return",
    "L2": "invalidated-view",
    "L3": "escaping-capture",
    "L4": "use-after-move",
    "SUP": "bad-suppression",
}

#: Paths (relative to the repo root, prefix-matched) exempt per rule: the
#: sanctioned implementation of each facility lives here.
RULE_EXEMPT_PREFIXES = {
    "D1": ("src/util/sorted_view.hpp",),
    "D2": ("src/obs/", "src/util/logging.hpp", "src/util/logging.cpp"),
    "D3": ("src/util/rng.hpp", "src/util/rng.cpp"),
    "B1": (),
    "B2": (),
    "C1": ("src/util/concurrency/",),
    "C2": (),
    "C3": (),
    # src/obs/: the registry/profiler lock scopes guard cold registration
    # and snapshot export only; the hot-path counters (Counter::inc) are
    # lock-free by design and stay covered by C1/C2.
    "C4": ("src/util/concurrency/", "src/obs/"),
    "C5": (),
    "G1": ("src/graph/",),
    # D4 exemptions apply to its *extra* source scans (thread id, pointer
    # order) and to sink files; the D1-D3-derived sources already honor
    # those rules' own exemptions.
    "D4": ("src/obs/", "src/util/logging.hpp", "src/util/logging.cpp",
           "src/util/concurrency/"),
    "P1": (),
    # The checked-arithmetic helpers are the sanctioned overflow handling:
    # their own bodies manipulate the extremes V1 exists to flag.
    "V1": ("src/util/checked.hpp",),
    "V2": (),
    "V3": (),
    "V4": (),
    "L1": (),
    # sorted_view's own iterator plumbing is the sanctioned laundering
    # implementation: its views never outlive the statement by contract.
    "L2": ("src/util/sorted_view.hpp",),
    "L3": (),
    "L4": (),
}
