"""bc-analyze: BarterCast-specific determinism & byte-accounting analyzer.

Rule catalogue (see DESIGN.md section 9):

  D1 unordered-iteration  iteration over std::unordered_map/unordered_set
                          must go through bc::util::sorted_view (or be
                          suppressed with a reason explaining why iteration
                          order cannot reach gossip selection, reputation
                          evaluation, or serialized output)
  D2 wall-clock           no wall-clock time sources outside src/obs/ and
                          src/util/logging.*; simulation code uses Engine
                          time so runs replay bit-identically
  D3 unseeded-random      no std::random_device / libc rand / std::<random>
                          engines outside src/util/rng.*; all randomness
                          flows through the seeded bc::Rng
  B1 byte-narrowing       no narrowing or sign-changing casts on
                          byte-counter (Bytes) expressions: the uint64/int64
                          upload-download ledgers behind c(i,j) and the
                          Eq. 1 maxflow capacities must never silently
                          truncate or wrap
  B2 float-equality       no ==/!= on reputation/time floating-point
                          values; use explicit thresholds or restructure
                          comparators to use </> only
  C1 raw-primitive        no std::mutex/std::thread/std::atomic/
                          std::condition_variable (or their lock/semaphore/
                          future relatives) outside src/util/concurrency/;
                          only the annotated bc::util wrappers are covered
                          by the Clang thread-safety analysis
  C2 unguarded-shared-member
                          a class owning a bc::util::Mutex must annotate
                          every mutable data member with BC_GUARDED_BY /
                          BC_PT_GUARDED_BY (or suppress with a reason
                          proving the member is single-threaded)
  C3 detached-execution   no `.detach()` and no std::async: detached work
                          escapes scope-based reasoning and deterministic
                          teardown; use bc::util::ThreadPool, which joins
                          in its destructor
  G1 dense-index-leak     no graph::PeerIndex / NodeIndex / kNoNode (or
                          includes of graph/peer_index.hpp) outside
                          src/graph/: dense slots are recycled on
                          remove_node() and are not stable peer
                          identifiers; consumers use the PeerId API
  SUP bad-suppression     a `// bc-analyze: allow(...)` marker that names an
                          unknown rule or omits the mandatory `-- reason`

Suppression syntax, on the offending line or a comment line directly above:

  // bc-analyze: allow(D1) -- result is fully re-sorted with a total order
  // bc-analyze: allow(D2,B2) -- wall-clock display only, never in sim state
"""

__version__ = "1.0"

RULES = {
    "D1": "unordered-iteration",
    "D2": "wall-clock",
    "D3": "unseeded-random",
    "B1": "byte-narrowing",
    "B2": "float-equality",
    "C1": "raw-primitive",
    "C2": "unguarded-shared-member",
    "C3": "detached-execution",
    "G1": "dense-index-leak",
    "SUP": "bad-suppression",
}

#: Paths (relative to the repo root, prefix-matched) exempt per rule: the
#: sanctioned implementation of each facility lives here.
RULE_EXEMPT_PREFIXES = {
    "D1": ("src/util/sorted_view.hpp",),
    "D2": ("src/obs/", "src/util/logging.hpp", "src/util/logging.cpp"),
    "D3": ("src/util/rng.hpp", "src/util/rng.cpp"),
    "B1": (),
    "B2": (),
    "C1": ("src/util/concurrency/",),
    "C2": (),
    "C3": (),
    "G1": ("src/graph/",),
}
