"""bc-analyze: BarterCast-specific determinism & byte-accounting analyzer.

Rule catalogue (see DESIGN.md section 9):

  D1 unordered-iteration  iteration over std::unordered_map/unordered_set
                          must go through bc::util::sorted_view (or be
                          suppressed with a reason explaining why iteration
                          order cannot reach gossip selection, reputation
                          evaluation, or serialized output)
  D2 wall-clock           no wall-clock time sources outside src/obs/ and
                          src/util/logging.*; simulation code uses Engine
                          time so runs replay bit-identically
  D3 unseeded-random      no std::random_device / libc rand / std::<random>
                          engines outside src/util/rng.*; all randomness
                          flows through the seeded bc::Rng
  B1 byte-narrowing       no narrowing or sign-changing casts on
                          byte-counter (Bytes) expressions: the uint64/int64
                          upload-download ledgers behind c(i,j) and the
                          Eq. 1 maxflow capacities must never silently
                          truncate or wrap
  B2 float-equality       no ==/!= on reputation/time floating-point
                          values; use explicit thresholds or restructure
                          comparators to use </> only
  SUP bad-suppression     a `// bc-analyze: allow(...)` marker that names an
                          unknown rule or omits the mandatory `-- reason`

Suppression syntax, on the offending line or a comment line directly above:

  // bc-analyze: allow(D1) -- result is fully re-sorted with a total order
  // bc-analyze: allow(D2,B2) -- wall-clock display only, never in sim state
"""

__version__ = "1.0"

RULES = {
    "D1": "unordered-iteration",
    "D2": "wall-clock",
    "D3": "unseeded-random",
    "B1": "byte-narrowing",
    "B2": "float-equality",
    "SUP": "bad-suppression",
}

#: Paths (relative to the repo root, prefix-matched) exempt per rule: the
#: sanctioned implementation of each facility lives here.
RULE_EXEMPT_PREFIXES = {
    "D1": ("src/util/sorted_view.hpp",),
    "D2": ("src/obs/", "src/util/logging.hpp", "src/util/logging.cpp"),
    "D3": ("src/util/rng.hpp", "src/util/rng.cpp"),
    "B1": (),
    "B2": (),
}
