"""Interval abstract interpretation over the token-frontend CFG-lite.

This is the value-analysis layer of bc-analyze: a classic interval domain
(lo, hi) with widening/narrowing, evaluated over the scrubbed-code model
(source.py) and the per-function facts callgraph.py already recovers
(body extents, loop ranges, lambda ranges). It stays heuristic like the
rest of the token frontend — it recognizes the declaration, assignment
and guard shapes of this clang-format-ed tree and errs toward *wider*
(= more conservative) intervals whenever it cannot classify a shape.

Three exports matter to the rules (rules_value.py):

  * Interval           the lattice element, with saturating arithmetic,
                       join/meet/widen/narrow and int64-range predicates;
  * Summaries          bottom-up interprocedural function summaries:
                       param intervals -> return interval, computed over
                       the Program call graph (qualified-suffix resolution)
                       and re-specializable per call site via apply();
  * FunctionEval       the per-function evaluator: abstract state after a
                       two-pass loop-widening walk of the body, plus the
                       dominating-guard facts (enclosing if/while/for
                       conditions, earlier BC_ASSERT/BC_DASSERT, negated
                       early-return guards) that refine an interval at a
                       given body offset.

The domain is deliberately *mathematical*: arithmetic derives the exact
integer interval without wrapping, so "the derived interval of this
expression exceeds [INT64_MIN, INT64_MAX]" is precisely the statement
"this expression can overflow signed 64-bit" that rule V1 reports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from bc_analyze.callgraph import FunctionDef, Program
from bc_analyze.source import SourceFile, final_identifier, match_paren

INF = float("inf")
INT64_MIN = -(2 ** 63)
INT64_MAX = 2 ** 63 - 1
INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1
UINT32_MAX = 2 ** 32 - 1
#: Largest integer a double holds exactly; storing a wider interval into a
#: double is lossy (rule V3's floating-point narrowing case).
DOUBLE_EXACT_MAX = 2 ** 53


def _mul(a, b):
    """inf-safe product: 0 * inf is 0 here (interval endpoints, not IEEE)."""
    if a == 0 or b == 0:
        return 0
    return a * b


class Interval:
    """A closed integer interval [lo, hi]; endpoints may be +-inf."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo=-INF, hi=INF):
        self.lo = lo
        self.hi = hi

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def const(v) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def top() -> "Interval":
        return Interval(-INF, INF)

    @staticmethod
    def bottom() -> "Interval":
        return Interval(INF, -INF)

    # -- predicates -----------------------------------------------------------

    def is_bottom(self) -> bool:
        return self.lo > self.hi

    def is_const(self) -> bool:
        return self.lo == self.hi

    def contains(self, v) -> bool:
        return not self.is_bottom() and self.lo <= v <= self.hi

    def fits(self, lo, hi) -> bool:
        """Entirely inside [lo, hi] (bottom fits vacuously)."""
        return self.is_bottom() or (self.lo >= lo and self.hi <= hi)

    def exceeds_int64(self) -> bool:
        """The derived value can leave signed-64 range: the overflow test."""
        return not self.fits(INT64_MIN, INT64_MAX)

    def magnitude(self):
        """max(|lo|, |hi|): how big the value can get either way."""
        if self.is_bottom():
            return 0
        return max(abs(self.lo), abs(self.hi))

    # -- lattice --------------------------------------------------------------

    def join(self, o: "Interval") -> "Interval":
        if self.is_bottom():
            return Interval(o.lo, o.hi)
        if o.is_bottom():
            return Interval(self.lo, self.hi)
        return Interval(min(self.lo, o.lo), max(self.hi, o.hi))

    def meet(self, o: "Interval") -> "Interval":
        return Interval(max(self.lo, o.lo), min(self.hi, o.hi))

    def widen(self, o: "Interval") -> "Interval":
        """Standard interval widening: any moving bound jumps to infinity,
        so ascending chains stabilize in at most two steps per bound."""
        if self.is_bottom():
            return Interval(o.lo, o.hi)
        lo = self.lo if o.lo >= self.lo else -INF
        hi = self.hi if o.hi <= self.hi else INF
        return Interval(lo, hi)

    def narrow(self, o: "Interval") -> "Interval":
        """Narrowing pass after widening: an infinite bound may recover the
        finite bound the post-fixpoint iterate proves."""
        lo = o.lo if self.lo == -INF else self.lo
        hi = o.hi if self.hi == INF else self.hi
        return Interval(lo, hi)

    # -- arithmetic (mathematical, non-wrapping) ------------------------------

    def add(self, o: "Interval") -> "Interval":
        if self.is_bottom() or o.is_bottom():
            return Interval.bottom()
        return Interval(self.lo + o.lo, self.hi + o.hi)

    def sub(self, o: "Interval") -> "Interval":
        if self.is_bottom() or o.is_bottom():
            return Interval.bottom()
        return Interval(self.lo - o.hi, self.hi - o.lo)

    def mul(self, o: "Interval") -> "Interval":
        if self.is_bottom() or o.is_bottom():
            return Interval.bottom()
        cands = [_mul(a, b) for a in (self.lo, self.hi)
                 for b in (o.lo, o.hi)]
        return Interval(min(cands), max(cands))

    def neg(self) -> "Interval":
        if self.is_bottom():
            return Interval.bottom()
        return Interval(-self.hi, -self.lo)

    # -- plumbing -------------------------------------------------------------

    def __eq__(self, o) -> bool:
        return isinstance(o, Interval) and self.lo == o.lo and self.hi == o.hi

    def __hash__(self):
        return hash((self.lo, self.hi))

    def __repr__(self):
        return f"Interval({self.lo}, {self.hi})"

    def __str__(self):
        def b(v):
            if v == -INF:
                return "-inf"
            if v == INF:
                return "+inf"
            if v == INT64_MIN:
                return "INT64_MIN"
            if v == INT64_MAX:
                return "INT64_MAX"
            return str(v)

        return f"[{b(self.lo)}, {b(self.hi)}]"


#: Runtime range of a value of each recognized C++ type: inputs are always
#: clamped to their type (a Bytes parameter *is* an int64); only derived
#: arithmetic leaves the range.
I64_RANGE = Interval(INT64_MIN, INT64_MAX)
I32_RANGE = Interval(INT32_MIN, INT32_MAX)
U32_RANGE = Interval(0, UINT32_MAX)
#: size_t values are clamped at INT64_MAX: real containers never exceed it
#: and keeping the bound signed stops `a.size() + b.size()` from reading as
#: an int64 overflow (unsigned wrap is defined behavior, not V1's target).
SIZE_RANGE = Interval(0, INT64_MAX)

TYPE_RANGES: dict[str, Interval] = {
    "Bytes": I64_RANGE, "int64_t": I64_RANGE, "std::int64_t": I64_RANGE,
    "long": I64_RANGE, "ptrdiff_t": I64_RANGE, "std::ptrdiff_t": I64_RANGE,
    "int": I32_RANGE, "int32_t": I32_RANGE, "std::int32_t": I32_RANGE,
    "short": Interval(-(2 ** 15), 2 ** 15 - 1),
    "int16_t": Interval(-(2 ** 15), 2 ** 15 - 1),
    "int8_t": Interval(-128, 127),
    "uint64_t": SIZE_RANGE, "std::uint64_t": SIZE_RANGE,
    "size_t": SIZE_RANGE, "std::size_t": SIZE_RANGE,
    "uint32_t": U32_RANGE, "std::uint32_t": U32_RANGE,
    "unsigned": U32_RANGE,
    "PeerId": U32_RANGE, "NodeIndex": U32_RANGE,
    "UserId": U32_RANGE, "SwarmId": U32_RANGE, "EventId": SIZE_RANGE,
    "uint16_t": Interval(0, 2 ** 16 - 1),
    "uint8_t": Interval(0, 255),
    "bool": Interval(0, 1),
    "double": Interval.top(), "float": Interval.top(),
    "Seconds": Interval.top(), "Rate": Interval.top(),
}

#: Named constants the evaluator knows without reading their definitions
#: (units.hpp powers of two and the numeric_limits endpoints).
KNOWN_CONSTS: dict[str, Interval] = {
    "kKiB": Interval.const(1 << 10),
    "kMiB": Interval.const(1 << 20),
    "kGiB": Interval.const(1 << 30),
    "INT64_MAX": Interval.const(INT64_MAX),
    "INT64_MIN": Interval.const(INT64_MIN),
    "INT32_MAX": Interval.const(INT32_MAX),
    "UINT32_MAX": Interval.const(UINT32_MAX),
    "kNoNode": Interval.const(UINT32_MAX),
    "kInvalidPeer": Interval.const(UINT32_MAX),
    "true": Interval.const(1),
    "false": Interval.const(0),
    "nullptr": Interval.const(0),
    "M_PI": Interval(3, 4),  # enough precision for nonzero/range proofs
    "M_E": Interval(2, 3),
}

INT_LITERAL_RE = re.compile(
    r"^(?:0[xX][0-9a-fA-F']+|0[bB][01']+|\d[\d']*)(?:[uUlLzZ]*)$")
FLOAT_LITERAL_RE = re.compile(r"^(?:\d+\.\d*|\.\d+|\d+(?:\.\d*)?[eE][-+]?\d+)"
                              r"[fFlL]?$")
DECL_TYPE_RE = re.compile(
    r"(?:^|[(,;{]|\s)(?:const\s+|constexpr\s+|static\s+)*"
    r"((?:std::)?(?:u?int(?:8|16|32|64)_t|size_t|ptrdiff_t)"
    r"|Bytes|PeerId|NodeIndex|UserId|SwarmId|EventId|Seconds|Rate"
    r"|long\s+long|long|unsigned(?:\s+int)?|int|short|bool|double|float)"
    r"\s+(&?\s*[A-Za-z_]\w*)\s*([=;,({)]|\{)")
ASSERT_RE = re.compile(r"\b(?:BC_ASSERT_MSG|BC_ASSERT|BC_DASSERT|assert)"
                       r"\s*\(")
GUARD_KEYWORD_RE = re.compile(r"\b(if|while|for)\s*\(")
RETURN_RE = re.compile(r"\breturn\b\s*([^;]*);")
CMP_RE = re.compile(
    r"^(.*?[^<>=!+\-*/&|])\s*(==|!=|<=|>=|<|>)\s*([^<>=].*)$")
CALL_HEAD_RE = re.compile(r"^((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*"
                          r"(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*\(")
STATIC_CAST_RE = re.compile(r"^static_cast\s*<([^<>]*)>\s*\(")
NUMERIC_LIMITS_RE = re.compile(
    r"^(?:std\s*::\s*)?numeric_limits\s*<\s*([\w:\s]+?)\s*>\s*::\s*"
    r"(max|min|lowest)\s*\(\s*\)$")


def type_range(type_text: str) -> Interval:
    t = re.sub(r"\s+", " ", type_text.replace("const", "")).strip()
    t = t.rstrip("&* ")
    return TYPE_RANGES.get(t, TYPE_RANGES.get(t.replace("std::", ""),
                                              I64_RANGE))


def split_top_level(text: str, seps: str) -> list[str]:
    """Split on single-char separators at bracket depth 0. `<`/`>` are not
    tracked (comparison vs template is undecidable at token level); the
    evaluator widens to top on anything it misparses, which is safe."""
    parts: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if depth == 0 and c in seps:
            parts.append("".join(cur))
            cur = []
            parts.append(c)
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def _split_args(text: str) -> list[str]:
    parts = split_top_level(text, ",")
    return [p.strip() for p in parts if p != "," and p.strip()]


@dataclass
class Env:
    """Evaluation context: variable intervals layered over declared types,
    plus the interprocedural summary table for call returns."""

    vars: dict[str, Interval] = field(default_factory=dict)
    types: dict[str, Interval] = field(default_factory=dict)
    summaries: "Summaries | None" = None

    def get(self, name: str) -> Interval:
        if name in self.vars:
            return self.vars[name]
        if name in KNOWN_CONSTS:
            return KNOWN_CONSTS[name]
        return self.types.get(name, I64_RANGE)

    def set(self, name: str, ival: Interval) -> None:
        self.vars[name] = ival

    def copy(self) -> "Env":
        return Env(dict(self.vars), self.types, self.summaries)


def eval_expr(expr: str, env: Env, depth: int = 0) -> Interval:
    """Interval of a scrubbed C++ expression. Unrecognized shapes come
    back as the full int64 range (a storable value of unknown size)."""
    expr = expr.strip()
    if not expr or depth > 12:
        return I64_RANGE
    # Fully parenthesized: peel.
    if expr.startswith("(") and match_paren(expr, 0) == len(expr) - 1:
        return eval_expr(expr[1:-1], env, depth + 1)
    # Ternary: join of the two arms (the condition refines neither here).
    q = split_top_level(expr, "?")
    if len(q) >= 3:
        arms = split_top_level("".join(q[2:]), ":")
        if len(arms) >= 3:
            a = eval_expr(arms[0], env, depth + 1)
            b = eval_expr("".join(arms[2:]), env, depth + 1)
            return a.join(b)
    # Comparison / logical operators produce a bool.
    if re.search(r"==|!=|<=|>=|&&|\|\|", expr):
        return Interval(0, 1)
    # Left shift: `1 << bits` style power-of-two construction. A
    # non-negative base keeps its lower bound (shifting left never
    # shrinks a non-negative value); the upper bound is unknown. Stream
    # `<<` chains land here too — harmless, they never feed arithmetic.
    if "<<" in expr and ">>" not in expr:
        lhs = expr.rsplit("<<", 1)[0].strip()
        if lhs:
            base_iv = eval_expr(lhs, env, depth + 1)
            if base_iv.lo >= 0:
                return Interval(base_iv.lo, INF)
            return I64_RANGE
    # Additive split (rightmost at top level; skip unary +/- positions).
    parts = split_top_level(expr, "+-")
    if len(parts) > 1:
        merged = _merge_unary(parts)
        if len(merged) > 1:
            acc = eval_expr(merged[0], env, depth + 1)
            for i in range(1, len(merged) - 1, 2):
                op, operand = merged[i], merged[i + 1]
                rhs = eval_expr(operand, env, depth + 1)
                acc = acc.add(rhs) if op == "+" else acc.sub(rhs)
            return acc
    # Multiplicative split. Division/modulo collapse to a conservative
    # range (quotient magnitude never exceeds the dividend's for |d|>=1).
    parts = split_top_level(expr, "*/%")
    parts = [p for p in parts if p.strip() or p in "*/%"]
    if len(parts) > 1 and all(parts[i] in "*/%" for i in range(1, len(parts), 2)):
        acc = eval_expr(parts[0], env, depth + 1)
        for i in range(1, len(parts) - 1, 2):
            op, operand = parts[i], parts[i + 1]
            rhs = eval_expr(operand, env, depth + 1)
            if op == "*":
                acc = acc.mul(rhs)
            elif op == "/":
                m = acc.magnitude()
                if acc.lo >= 0 and rhs.lo > 0:
                    # positive / positive: the floor keeps the bound sound
                    # for integer division (3 / 4 == 0).
                    lo = (0 if rhs.hi == INF or acc.lo == INF
                          else int(acc.lo // rhs.hi))
                    acc = Interval(lo, m)
                else:
                    acc = Interval(-m, m)
            else:
                m = rhs.magnitude()
                m = m if m != INF else acc.magnitude()
                acc = Interval(-m, m)
        return acc
    if expr.startswith("!"):
        return Interval(0, 1)
    if expr.startswith("-"):
        return eval_expr(expr[1:], env, depth + 1).neg()
    if expr.startswith("+"):
        return eval_expr(expr[1:], env, depth + 1)
    if expr.startswith("~"):
        return I64_RANGE
    if INT_LITERAL_RE.match(expr):
        body = expr.rstrip("uUlLzZ").replace("'", "")
        return Interval.const(int(body, 0))
    if FLOAT_LITERAL_RE.match(expr):
        try:
            return Interval.const(float(expr.rstrip("fFlL")))
        except ValueError:
            return Interval.top()
    m = STATIC_CAST_RE.match(expr)
    if m:
        close = match_paren(expr, m.end() - 1)
        if close == len(expr) - 1:
            # The *value* flows through unchanged: whether it survives the
            # cast is exactly what rule V3 checks against the target range.
            return eval_expr(expr[m.end():close], env, depth + 1)
    m = NUMERIC_LIMITS_RE.match(expr)
    if m:
        r = type_range(m.group(1))
        return Interval.const(r.hi if m.group(2) == "max" else r.lo)
    ival = _eval_call(expr, env, depth)
    if ival is not None:
        return ival
    # Identifier / member path / subscript: resolve the base identifier.
    base = final_identifier(expr)
    if base is not None:
        ival = env.get(base)
        if ival == I64_RANGE and env.summaries is not None:
            const = env.summaries.global_consts.get(base)
            if const is not None:
                return const
        return ival
    return I64_RANGE


def _merge_unary(parts: list[str]) -> list[str]:
    """Re-attach +/- separators that are unary (operand or exponent signs)
    so only genuine binary additive operators split the expression."""
    merged: list[str] = [parts[0]]
    i = 1
    while i < len(parts):
        op, operand = parts[i], parts[i + 1] if i + 1 < len(parts) else ""
        prev = merged[-1].rstrip()
        is_unary = (not prev or prev[-1] in "+-*/%=<>&|,(?:"
                    or prev.endswith(("e", "E"))
                    and bool(re.search(r"\d[eE]$", prev)))
        if is_unary:
            merged[-1] = merged[-1] + op + operand
        else:
            merged.append(op)
            merged.append(operand)
        i += 2
    return merged


#: Direct models for calls whose value range is part of their contract.
#: Everything else goes through the interprocedural Summaries table.
def _eval_call(expr: str, env: Env, depth: int) -> Interval | None:
    m = CALL_HEAD_RE.match(expr)
    if not m:
        return None
    close = match_paren(expr, m.end() - 1)
    if close != len(expr) - 1:
        return None
    head = re.sub(r"\s+", "", m.group(1))
    base = re.split(r"::|\.|->", head)[-1]
    args = _split_args(expr[m.end():close])
    ivals = [eval_expr(a, env, depth + 1) for a in args if a]
    if base in ("min",) and len(ivals) >= 2:
        return Interval(min(v.lo for v in ivals), min(v.hi for v in ivals))
    if base in ("max",) and len(ivals) >= 2:
        return Interval(max(v.lo for v in ivals), max(v.hi for v in ivals))
    if base == "clamp" and len(ivals) == 3:
        return Interval(ivals[1].lo, ivals[2].hi)
    if base == "abs" and len(ivals) == 1:
        m0 = ivals[0].magnitude()
        return Interval(0, m0)
    if base in ("uniform_int", "uniform") and len(ivals) == 2:
        return Interval(ivals[0].lo, ivals[1].hi)
    if base in ("size", "length", "count", "capacity", "slot_count"):
        if not args:
            return SIZE_RANGE
    if base == "empty":
        return Interval(0, 1)
    if base in ("checked_add", "checked_mul", "saturating_add",
                "saturating_sub"):
        # The checked.hpp contract: the result is always a valid int64
        # (debug-asserted or saturated), never an overflowing derivation.
        return I64_RANGE
    if env.summaries is not None:
        ret = env.summaries.call(head, ivals)
        if ret is not None:
            return ret
    return I64_RANGE


# --- guards ------------------------------------------------------------------


def _negate(cond: str) -> str | None:
    # Collapse clang-format line wraps: the comparison regexes are
    # line-oriented and never match across a newline.
    cond = re.sub(r"\s+", " ", cond).strip()
    while cond.startswith("(") and match_paren(cond, 0) == len(cond) - 1:
        cond = cond[1:-1].strip()
    if cond.startswith("!") and not cond.startswith("!="):
        inner = cond[1:].strip()
        # Peel a fully parenthesized operand so `!(n == 0)` yields a
        # guard the line-oriented comparison regexes can match.
        while inner.startswith("(") and match_paren(inner, 0) == len(inner) - 1:
            inner = inner[1:-1].strip()
        return inner
    # De Morgan on a top-level disjunction: !(a || b) == !a && !b. An
    # un-negatable disjunct is dropped — the remaining conjuncts still
    # hold, so the result stays sound (just weaker). Must run before the
    # comparison flip: CMP_RE would otherwise bind the first `==` inside
    # the disjunction and produce a mangled guard.
    pieces = split_top_level(cond, "|")
    if any(p == "|" for p in pieces):
        negs = [_negate(p) for p in pieces if p != "|" and p.strip()]
        kept = [n for n in negs if n]
        return " && ".join(kept) if kept else None
    if any(p == "&" for p in split_top_level(cond, "&")):
        return None  # !(a && b) is a disjunction: no single guard holds
    m = CMP_RE.match(cond)
    if m:
        flip = {"==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=",
                "<=": ">"}
        return f"{m.group(1).strip()} {flip[m.group(2)]} {m.group(3).strip()}"
    # A bare boolean atom (`xs.empty()`, a flag): prefix with `!` so
    # consumers like the `!xs.empty()` nonzero bridge can match it.
    if re.fullmatch(r"[\w:.>\[\]() -]+", cond):
        return "!" + cond
    return None


def guards_at(fn: FunctionDef, sf: SourceFile, offset: int) -> list[str]:
    """Conditions that hold at `offset` inside fn's body:

      * enclosing if/while conditions whose brace block spans the offset
        (and for-loop conditions of enclosing loops),
      * BC_ASSERT/BC_DASSERT/assert conditions textually earlier in the
        body (an assert aborts, so later code sees it hold — a heuristic
        that ignores scoping, biased toward the tree's early-assert style),
      * negations of earlier early-exit guards:
        `if (c) return/continue/break/throw` implies !c afterwards.

    Lambda boundaries cut domination: a guard inside a lambda does not
    protect code outside it and vice versa.
    """
    code = sf.code
    out: list[str] = []
    body_start, body_end = fn.start + 1, fn.end
    for m in GUARD_KEYWORD_RE.finditer(code, body_start, min(offset,
                                                             body_end)):
        kw = m.group(1)
        open_idx = m.end() - 1
        close = match_paren(code, open_idx)
        if close < 0 or close >= body_end:
            continue
        inner = code[open_idx + 1:close]
        if kw == "for":
            pieces = split_top_level(inner, ";")
            conds = [pieces[2]] if len(pieces) >= 3 else []
        else:
            conds = [inner]
        # Short-circuit domination inside the condition itself:
        # `if (i > 0 && v[i - 1] ...)` — every complete top-level &&-atom
        # before the offset holds there. A top-level || voids that.
        if kw != "for" and open_idx < offset < close:
            if fn.lambda_spans_differ(m.start(), offset):
                continue
            prefix = code[open_idx + 1:offset]
            pieces = split_top_level(prefix, "|")
            if not any(p == "|" for p in pieces):
                atoms = [p for p in split_top_level(prefix, "&")
                         if p != "&"]
                out.extend(a for a in atoms[:-1] if a.strip())
            continue
        j = close + 1
        while j < body_end and code[j] in " \t\n":
            j += 1
        if j < body_end and code[j] == "{":
            blk_end = match_paren(code, j, "}")
        else:
            blk_end = code.find(";", j, body_end)
        if blk_end < 0:
            blk_end = body_end
        if fn.lambda_spans_differ(m.start(), offset):
            continue
        if j <= offset < blk_end:
            out.extend(c for c in conds if c.strip())
        elif kw == "if" and blk_end < offset:
            # Early-exit guard: the body must do nothing but leave.
            body_txt = code[j:blk_end]
            if re.search(r"\b(return|continue|break|throw)\b", body_txt) \
                    and len(body_txt) < 160:
                neg = _negate(inner)
                if neg:
                    out.append(neg)
    for m in ASSERT_RE.finditer(code, body_start, min(offset, body_end)):
        close = match_paren(code, m.end() - 1)
        if close < 0:
            continue
        if fn.lambda_spans_differ(m.start(), offset):
            continue
        cond = _split_args(code[m.end():close])
        if cond:
            out.append(cond[0])
    # Each condition may be a conjunction: flatten on top-level &&. Collapse
    # interior newlines so the line-oriented comparison regexes still match
    # conditions that were wrapped by clang-format.
    flat: list[str] = []
    for cond in out:
        for atom in split_top_level(cond, "&"):
            atom = re.sub(r"\s+", " ", atom).strip().strip("&").strip()
            if atom:
                flat.append(atom)
    return flat


def refine(ival: Interval, expr: str, guards: list[str],
           env: Env | None = None) -> Interval:
    """Meet `ival` with every guard that constrains `expr` (matched on the
    normalized expression text or its base identifier)."""
    norm = re.sub(r"\s+", "", expr)
    base = final_identifier(expr)
    env = env or Env()
    for g in guards:
        m = CMP_RE.match(g.strip())
        if not m:
            continue
        left, op, right = (m.group(1).strip(), m.group(2),
                           m.group(3).strip())
        lnorm = re.sub(r"\s+", "", left)
        rnorm = re.sub(r"\s+", "", right)
        if lnorm == norm or (base is not None
                             and final_identifier(left) == base
                             and re.fullmatch(r"[\w.\->\[\]]+", lnorm)):
            bound = eval_expr(right, env)
            ival = _apply_cmp(ival, op, bound)
        elif rnorm == norm or (base is not None
                               and final_identifier(right) == base
                               and re.fullmatch(r"[\w.\->\[\]]+", rnorm)):
            flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
                    "==": "==", "!=": "!="}
            bound = eval_expr(left, env)
            ival = _apply_cmp(ival, flip[op], bound)
    return ival


def _apply_cmp(ival: Interval, op: str, bound: Interval) -> Interval:
    if bound.is_bottom():
        return ival
    if op == "==":
        return ival.meet(bound)
    if op == "<":
        return ival.meet(Interval(-INF, bound.hi - 1))
    if op == "<=":
        return ival.meet(Interval(-INF, bound.hi))
    if op == ">":
        return ival.meet(Interval(bound.lo + 1, INF))
    if op == ">=":
        return ival.meet(Interval(bound.lo, INF))
    if op == "!=" and bound.is_const():
        if ival.lo == bound.lo:
            return Interval(ival.lo + 1, ival.hi)
        if ival.hi == bound.hi:
            return Interval(ival.lo, ival.hi - 1)
    return ival


# --- per-function evaluation -------------------------------------------------

PARAM_SPLIT_RE = re.compile(r"^(.*?)([A-Za-z_]\w*)$")
DEFAULT_ARG_RE = re.compile(r"=[^,]*$")
#: `)` in the anchor set catches single-statement loop/if bodies
#: (`for (...) total += e.cap;`), at the cost of also seeing guarded
#: assignments — harmless, the state walk is conservative either way.
ASSIGN_RE = re.compile(
    r"(?:^|[;{})]\s*)([A-Za-z_][\w.\->\[\]]*)\s*([-+*]?)=(?!=)\s*([^;{}]+);")
#: Declaration with initializer (`const auto n = expr;`, `Bytes x = 0;`):
#: binds the name to the initializer's interval. The single type word
#: before the name keeps this from matching plain binary assignments.
DECL_INIT_RE = re.compile(
    r"(?:^|[;{})]\s*)(?:const\s+|constexpr\s+|static\s+)*"
    r"(auto|[A-Za-z_][\w:]*(?:<[^<>;=]*>)?)\s+"
    r"([A-Za-z_]\w*)\s*=(?!=)\s*([^;{}]+);")
#: Statement keywords the declaration heuristic must not read as types.
_NOT_A_TYPE = frozenset(("return", "else", "case", "delete", "throw",
                         "co_return", "co_yield", "goto", "new"))


def param_list(fn: FunctionDef, code: str) -> list[tuple[str, str]]:
    """(type_text, name) for each parameter of fn, parsed from the
    declaration head before the body brace. Empty on parse failure."""
    j = fn.start - 1
    while j >= 0 and code[j] in " \t\n":
        j -= 1
    # Skip trailing qualifiers / initializer lists back to the param ).
    guard = 0
    while j >= 0 and guard < 64:
        guard += 1
        if code[j] == ")":
            open_idx = _match_open(code, j)
            if open_idx < 0:
                return []
            word_end = open_idx
            k = word_end - 1
            while k >= 0 and (code[k].isalnum() or code[k] in "_:~"):
                k -= 1
            word = code[k + 1:word_end].rsplit("::", 1)[-1]
            if word == fn.name or word == "operator" or word.startswith("~"):
                inner = code[open_idx + 1:j]
                return _parse_params(inner)
            j = open_idx - 1
            continue
        if code[j].isalnum() or code[j] in "_ \t\n:,&*<>{}":
            j -= 1
            continue
        return []
    return []


def _match_open(code: str, close_idx: int) -> int:
    depth = 0
    for i in range(close_idx, -1, -1):
        if code[i] == ")":
            depth += 1
        elif code[i] == "(":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _parse_params(inner: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    for piece in _split_args(inner):
        if not piece or piece == "void":
            continue
        piece = DEFAULT_ARG_RE.sub("", piece).strip()
        m = PARAM_SPLIT_RE.match(piece)
        if not m:
            continue
        type_text, name = m.group(1).strip(), m.group(2)
        if not type_text:
            continue  # unnamed or misparsed
        out.append((type_text, name))
    return out


class FunctionEval:
    """Abstract state of one function body: a two-pass walk (widening on
    the second visit of any assignment inside a loop range) yielding the
    final environment, the set of loop-widened names, and the joined
    return interval."""

    def __init__(self, fn: FunctionDef, sf: SourceFile, env: Env):
        self.fn = fn
        self.sf = sf
        self.env = env
        self.widened: set[str] = set()
        self.returns: Interval = Interval.bottom()
        self._run()

    def _run(self) -> None:
        code = self.sf.code
        fn = self.fn
        # Scans start AT the opening brace (not one past it): the anchor
        # classes include `{`, and starting past it would skip a binding
        # in the body's first statement.
        for m in DECL_INIT_RE.finditer(code, fn.start, fn.end):
            type_word = m.group(1)
            if type_word in _NOT_A_TYPE:
                continue
            ival = eval_expr(m.group(3), self.env)
            if type_word != "auto":
                ival = ival.meet(type_range(type_word))
                if ival.is_bottom():
                    ival = type_range(type_word)
            self.env.set(m.group(2), ival)
        for pass_no in (0, 1):
            for m in ASSIGN_RE.finditer(code, fn.start, fn.end):
                lhs, op, rhs = m.group(1), m.group(2), m.group(3)
                base = final_identifier(lhs)
                if base is None:
                    continue
                cur = self.env.get(base)
                rhs_ival = eval_expr(rhs, self.env)
                if op == "+":
                    new = cur.add(rhs_ival)
                elif op == "-":
                    new = cur.sub(rhs_ival)
                elif op == "*":
                    new = cur.mul(rhs_ival)
                else:
                    new = rhs_ival
                if fn.loop_depth_at(m.start(1)) > 0 and pass_no > 0:
                    w = cur.widen(new)
                    if w != cur:
                        self.widened.add(base)
                    new = w
                self.env.set(base, new)
        for m in RETURN_RE.finditer(code, fn.start + 1, fn.end):
            if fn.in_lambda(m.start()):
                continue
            expr = m.group(1).strip()
            if expr:
                # Refine by the guards dominating this return: `if (x < 0)
                # return 0; if (x > k) return k; return x;` summarizes to
                # [0, k], which is what makes summaries compose.
                ival = refine(eval_expr(expr, self.env), expr,
                              guards_at(fn, self.sf, m.start()), self.env)
                self.returns = self.returns.join(ival)

    def interval_at(self, expr: str, offset: int) -> Interval:
        """Interval of `expr` at a body offset, refined by every
        dominating guard."""
        ival = eval_expr(expr, self.env)
        return refine(ival, expr, guards_at(self.fn, self.sf, offset),
                      self.env)


# --- interprocedural summaries ----------------------------------------------


class Summaries:
    """Bottom-up function summaries over the Program call graph.

    For each definition the summary is the return interval computed with
    parameters bound to their declared-type ranges; two fixpoint passes
    with widening make loops and (bounded) recursion converge. `call()`
    re-specializes a summary for concrete argument intervals at a call
    site — the "param intervals -> return interval" direction — with a
    depth-1 re-evaluation that consults the global table for nested calls.
    """

    MAX_SPECIALIZE = 1  # re-evaluation depth for per-call-site refinement

    def __init__(self, program: Program):
        self.program = program
        self.ret: dict[int, Interval] = {}
        self._params: dict[int, list[tuple[str, str]]] = {}
        self._types: dict[str, dict[str, Interval]] = {}
        self._depth = 0
        for sf in program.sources:
            self._types[sf.rel] = _declared_types(sf)
        # A .cpp body sees the members its companion header declares (and
        # vice versa): overlay the companion's table under the file's own.
        merged: dict[str, dict[str, Interval]] = {}
        for rel, own in self._types.items():
            comp = rel[:-4] + (".hpp" if rel.endswith(".cpp") else ".cpp")
            table = dict(self._types.get(comp, {}))
            table.update(own)
            merged[rel] = table
        self._types = merged
        # File-scope constexpr constants are effectively global: `kDay` in
        # util/units.hpp means the same value at every use site in the
        # tree. Names whose definitions disagree across files are dropped
        # rather than guessed. Two passes resolve chains (kDay = 24*kHour).
        consts: dict[str, Interval] = {}
        clash: set[str] = set()
        for _ in range(2):
            cenv = Env(types=consts)
            for sf in program.sources:
                for line in sf.code_lines:
                    if line.lstrip().startswith("#"):
                        continue
                    for m in CONST_DEF_RE.finditer(line):
                        ival = eval_expr(m.group(2), cenv)
                        if ival.is_bottom() or ival.magnitude() == INF:
                            continue
                        name = m.group(1)
                        if name in consts and consts[name] != ival:
                            clash.add(name)
                        consts[name] = ival
        for name in clash:
            consts.pop(name, None)
        self.global_consts = consts
        # Bottom-up passes run without per-call-site specialization (the
        # _depth latch): the table alone feeds nested calls, so mutual
        # recursion cannot re-enter endlessly.
        self._depth = 1
        for _ in range(2):
            for fn in program.functions:
                self._summarize(fn)
        self._depth = 0

    def env_for(self, fn: FunctionDef) -> Env:
        """Evaluation environment for fn with every parameter bound to its
        declared-type range — the entry point for the value rules."""
        return self._env_for(fn, None)

    def _env_for(self, fn: FunctionDef,
                 arg_ivals: list[Interval] | None) -> Env:
        sf = self.program.by_rel[fn.rel]
        params = self._params.get(id(fn))
        if params is None:
            params = param_list(fn, sf.code)
            self._params[id(fn)] = params
        env = Env(types=dict(self._types.get(fn.rel, {})), summaries=self)
        for i, (type_text, name) in enumerate(params):
            if arg_ivals is not None and i < len(arg_ivals):
                ival = arg_ivals[i].meet(type_range(type_text))
                if ival.is_bottom():
                    ival = type_range(type_text)
            else:
                ival = type_range(type_text)
            env.set(name, ival)
        return env

    def _summarize(self, fn: FunctionDef) -> None:
        sf = self.program.by_rel[fn.rel]
        ev = FunctionEval(fn, sf, self._env_for(fn, None))
        ret = ev.returns
        prev = self.ret.get(id(fn))
        if prev is not None:
            ret = prev.widen(prev.join(ret))
        self.ret[id(fn)] = ret

    def call(self, name: str,
             arg_ivals: list[Interval]) -> Interval | None:
        """Joined return interval over every definition a call to `name`
        may reach (qualified-suffix resolution), re-specialized for the
        argument intervals. None when nothing resolves."""
        cands = self.program.resolve(name.rsplit(".", 1)[-1]
                                     .rsplit("->", 1)[-1])
        if not cands:
            return None
        specialize = bool(arg_ivals) and self._depth < self.MAX_SPECIALIZE
        out = Interval.bottom()
        for fn in cands[:4]:  # overload sets stay tiny in this tree
            base = self.ret.get(id(fn), Interval.bottom())
            if specialize:
                self._depth += 1
                try:
                    sf = self.program.by_rel[fn.rel]
                    ev = FunctionEval(fn, sf, self._env_for(fn, arg_ivals))
                    spec = ev.returns
                finally:
                    self._depth -= 1
                if not spec.is_bottom():
                    base = spec.meet(base) if not base.is_bottom() else spec
            out = out.join(base)
        return None if out.is_bottom() else out


CONST_DEF_RE = re.compile(
    r"\bconstexpr\s+[\w:<>\s]+?\s([A-Za-z_]\w*)\s*=\s*([^;]+);")


def _declared_types(sf: SourceFile) -> dict[str, Interval]:
    """name -> declared-type runtime range for every recognized local,
    member or parameter declaration in the file, with `constexpr` constant
    definitions narrowed to their evaluated interval (two passes, so a
    constant defined in terms of an earlier one resolves too)."""
    out: dict[str, Interval] = {}
    for line in sf.code_lines:
        if line.lstrip().startswith("#"):
            continue
        for m in DECL_TYPE_RE.finditer(line):
            name = m.group(2).lstrip("& ")
            out[name] = type_range(m.group(1))
    for _ in range(2):
        env = Env(types=out)
        for line in sf.code_lines:
            if line.lstrip().startswith("#"):
                continue
            for m in CONST_DEF_RE.finditer(line):
                ival = eval_expr(m.group(2), env)
                if not ival.is_bottom() and ival.magnitude() != INF:
                    out[m.group(1)] = ival
    return out
