"""Determinism rules D1-D3.

D1 unordered-iteration: every peer must derive the same subjective graph
   and byte-identical exports from the same inputs, across runs *and*
   across standard-library implementations. std::unordered_map/set
   iteration order is implementation-defined, so loops over them must be
   routed through bc::util::sorted_view (or collect-and-sort and carry a
   suppression explaining the total order).
D2 wall-clock: simulation state must depend only on Engine time, never on
   the host clock, or replays stop being bit-identical.
D3 unseeded-random: all randomness flows through the seeded bc::Rng;
   std::random_device and ad-hoc <random> engines break seeded replay.
"""

from __future__ import annotations

import re

from bc_analyze.model import Finding
from bc_analyze.source import (
    SourceFile,
    final_identifier,
    match_paren,
)

# --- D1 ---------------------------------------------------------------------

FOR_RE = re.compile(r"\bfor\s*\(")
SORTED_WRAPPER_RE = re.compile(r"^(?:bc::)?(?:util::)?sorted_(?:view|keys)\s*\(")
BEGIN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")


def _range_for_findings(sf: SourceFile, unordered_names: set[str],
                        unordered_fns: set[str],
                        subscript_containers: set[str]) -> list[Finding]:
    out: list[Finding] = []
    code = sf.code
    for m in FOR_RE.finditer(code):
        open_idx = m.end() - 1
        close_idx = match_paren(code, open_idx)
        if close_idx < 0:
            continue
        header = code[open_idx + 1:close_idx]
        colon = _top_level_colon(header)
        if colon < 0:
            continue  # classic for loop; .begin() scan covers iterator loops
        range_expr = header[colon + 1:].strip()
        if SORTED_WRAPPER_RE.match(range_expr):
            continue
        base = final_identifier(range_expr)
        if base is None:
            continue
        subscripted = range_expr.rstrip().endswith("]") or "[" in range_expr
        hit = (base in unordered_names
               or (base in unordered_fns and "(" in range_expr)
               or (base in subscript_containers and subscripted))
        if not hit:
            continue
        line = sf.line_at(m.start())
        out.append(Finding(
            rule="D1", slug="unordered-iteration", path=sf.rel, line=line,
            message=(f"range-for over unordered container `{base}`:"
                     " iteration order is implementation-defined; wrap the"
                     " range in bc::util::sorted_view(...) or suppress with"
                     " a reason proving order cannot reach selection,"
                     " reputation, or serialized output"),
        ))
    return out


def _iterator_findings(sf: SourceFile,
                       unordered_names: set[str]) -> list[Finding]:
    out: list[Finding] = []
    for lineno, code in enumerate(sf.code_lines, start=1):
        for m in BEGIN_RE.finditer(code):
            if m.group(1) in unordered_names:
                out.append(Finding(
                    rule="D1", slug="unordered-iteration", path=sf.rel,
                    line=lineno,
                    message=(f"iterator walk of unordered container"
                             f" `{m.group(1)}` via .begin(): order is"
                             " implementation-defined; use"
                             " bc::util::sorted_view or suppress with a"
                             " reason"),
                ))
    return out


def _top_level_colon(header: str) -> int:
    """Offset of the range-for `:` in a for-header, skipping `::`."""
    depth = 0
    i = 0
    n = len(header)
    while i < n:
        c = header[i]
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < n and header[i + 1] == ":":
                i += 2
                continue
            if i > 0 and header[i - 1] == ":":
                i += 1
                continue
            if i > 0 and header[i - 1] == "?":  # ternary, not range-for
                i += 1
                continue
            return i
        i += 1
    return -1


def check_d1(sf: SourceFile, names: set[str], fns: set[str],
             subs: set[str]) -> list[Finding]:
    """`names`/`fns`/`subs` are the engine-merged effective tables:
    file-local + companion-header declarations, plus the cross-file table
    minus names this file (or its companion) declares as an ordered
    container."""
    return (_range_for_findings(sf, names, fns, subs)
            + _iterator_findings(sf, names))


# --- D2 ---------------------------------------------------------------------

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|(?<![\w.:>])(?:time|clock|gettimeofday|clock_gettime|localtime"
    r"|gmtime|mktime|timespec_get)\s*\("
)


def check_d2(sf: SourceFile) -> list[Finding]:
    out = []
    for lineno, code in enumerate(sf.code_lines, start=1):
        for m in WALL_CLOCK_RE.finditer(code):
            out.append(Finding(
                rule="D2", slug="wall-clock", path=sf.rel, line=lineno,
                message=(f"wall-clock source `{m.group(0).strip()}` outside"
                         " src/obs/ and src/util/logging.*: simulation code"
                         " must use Engine time so runs replay"
                         " bit-identically"),
            ))
    return out


# --- D3 ---------------------------------------------------------------------

RANDOM_RE = re.compile(
    r"std::random_device"
    r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux(?:24|48)(?:_base)?|knuth_b)\b"
    r"|(?<![\w:.])s?rand\s*\("
)


def check_d3(sf: SourceFile) -> list[Finding]:
    out = []
    for lineno, code in enumerate(sf.code_lines, start=1):
        for m in RANDOM_RE.finditer(code):
            out.append(Finding(
                rule="D3", slug="unseeded-random", path=sf.rel, line=lineno,
                message=(f"randomness source `{m.group(0).strip()}` outside"
                         " src/util/rng.*: all randomness must flow through"
                         " the seeded bc::Rng for reproducible runs"),
            ))
    return out
