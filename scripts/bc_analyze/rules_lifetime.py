"""Lifetime rules L1-L4 (escape.py facts over the callgraph.py graph).

L1 dangling-return      a function whose declared return type is a view
                        (std::span / std::string_view / EdgeView /
                        iterator) or a reference returns a local owning
                        object, a view borrowed from one, or a temporary:
                        the storage dies with the frame.
L2 invalidated-view     a view borrowed from an owner is used after a call
                        that may invalidate the owner's storage — a direct
                        container op (`push_back`, `erase`, `resize`, ...)
                        or a call whose mutation summary reaches one,
                        composed transitively (holding `out_edges(p)`
                        across `FlowGraph::add_capacity` is the canonical
                        case: add_capacity -> touch -> `out_.resize`).
                        Discharged by re-acquiring the view after the
                        mutation, copying into an owning snapshot
                        (sorted_view), or a reasoned allow(L2).
L3 escaping-capture     a lambda passed to a *storing* callback sink
                        (Engine::schedule_*, observer setters, anything
                        that keeps a std::function member) captures a
                        frame local by reference — or a view by value —
                        so the callback outlives the captured storage.
                        ThreadPool::parallel_for is synchronous (joins
                        before returning) and is not a sink.
L4 use-after-move       a moved-from local or parameter is read again
                        with no intervening reassignment / clear();
                        `return std::move(x)` and sibling-branch moves
                        are out of scope (clang-tidy's
                        bugprone-use-after-move covers the path-sensitive
                        shapes — see DESIGN.md section 9).
"""

from __future__ import annotations

import re

from bc_analyze.callgraph import FunctionDef, Program
from bc_analyze.escape import (
    Borrow,
    MUTATOR_NAMES,
    MutationSummaries,
    OWNING_CALL_NAMES,
    base_ident,
    borrows_in,
    returns_view,
    view_accessors,
)
from bc_analyze.model import Finding
from bc_analyze.source import SourceFile, match_paren

# --- L1 ----------------------------------------------------------------------

_OWNING_LOCAL_RE = re.compile(
    r"(?<![\w:])(?:(static|thread_local)\s+)?(?:const\s+)?"
    r"(?:std\s*::\s*)?(?:vector|deque|list|map|set|multimap|multiset"
    r"|unordered_map|unordered_set|string|basic_string|array"
    r"|ostringstream|stringstream)\s*(?:<[^;={}]*>)?\s+"
    r"([A-Za-z_]\w*)\s*[;=({]")
_SCALAR_LOCAL_RE = re.compile(
    r"(?<![\w:])(?:(static|thread_local)\s+)?(?:const\s+)?"
    r"(?:int|long|short|double|float|bool|char|unsigned|std::size_t"
    r"|size_t|std::u?int\d+_t|u?int\d+_t|Bytes|Seconds|Rate|PeerId"
    r"|EventId|SwarmId)\s+([A-Za-z_]\w*)\s*[;=({]")
_RETURN_RE = re.compile(r"\breturn\b\s*([^;]*);")
_TEMP_RETURN_RE = re.compile(
    r"^(?:std\s*::\s*)?(?:string|vector|to_string|sorted_view|sorted_keys)"
    r"\s*[({]"
    r"|\.\s*(?:substr|str)\s*\(")


def _owning_locals(fn: FunctionDef, code: str,
                   include_scalars: bool) -> dict[str, int]:
    """Local owning declarations (name -> offset); statics excluded."""
    out: dict[str, int] = {}
    for m in _OWNING_LOCAL_RE.finditer(code, fn.start + 1, fn.end):
        if m.group(1) is None:
            out.setdefault(m.group(2), m.start())
    if include_scalars:
        for m in _SCALAR_LOCAL_RE.finditer(code, fn.start + 1, fn.end):
            if m.group(1) is None:
                out.setdefault(m.group(2), m.start())
    return out


def check_l1(program: Program, exempt) -> list[Finding]:
    accessors = view_accessors(program)
    out: list[Finding] = []
    for fn in program.functions:
        if exempt("L1", fn.rel):
            continue
        sf = program.by_rel[fn.rel]
        kind = returns_view(fn, sf.code)
        if kind is None:
            continue
        locals_ = _owning_locals(fn, sf.code, include_scalars=kind == "ref")
        view_owner = {b.var: b.owner
                      for b in borrows_in(fn, sf, accessors)
                      if b.kind != "range-for"}
        for m in _RETURN_RE.finditer(sf.code, fn.start + 1, fn.end):
            if fn.in_lambda(m.start()):
                continue
            expr = m.group(1).strip()
            if not expr:
                continue
            line = sf.line_at(m.start())
            if _TEMP_RETURN_RE.search(expr):
                out.append(Finding(
                    rule="L1", slug="dangling-return", path=fn.rel,
                    line=line,
                    message=(f"`{fn.qualname}` returns a"
                             f" {'reference' if kind == 'ref' else 'view'}"
                             f" bound to the temporary `{expr}`: the"
                             " temporary dies at the end of the return"
                             " statement — return an owning value or a"
                             " view into storage that outlives the call"),
                ))
                continue
            ident = expr if re.fullmatch(r"[A-Za-z_]\w*", expr) else None
            if ident is None:
                ident = base_ident(expr)
                if ident is None or f"{ident}(" in expr.replace(" ", ""):
                    continue
            target = ident
            via = ""
            if target in view_owner and view_owner[target] in locals_:
                via = f" (a view borrowed from local `{view_owner[target]}`)"
                target = view_owner[target]
            if target not in locals_:
                continue
            out.append(Finding(
                rule="L1", slug="dangling-return", path=fn.rel, line=line,
                message=(f"`{fn.qualname}` returns"
                         f" {'a reference to' if kind == 'ref' else 'a view into'}"
                         f" local `{ident}`{via} declared at"
                         f" {fn.rel}:{sf.line_at(locals_[target])}: the"
                         " local dies when the frame returns — return an"
                         " owning value, or take the owner by reference"
                         " from the caller"),
            ))
    return out


# --- L2 ----------------------------------------------------------------------

_ASSIGN_RE_TPL = r"(?<![\w.]){var}\s*=(?!=)"


def _direct_mutation_events(code: str, owner: str, lo: int,
                            hi: int) -> list[tuple[int, str, str]]:
    """(offset, description, chain) for `owner.op(...)` mutator calls
    (an optional subscript is allowed: `first_served[p].erase(...)`)."""
    pat = re.compile(
        rf"(?<![\w.]){re.escape(owner)}\s*(?:\[[^\]]*\]\s*)?(?:\.|->)\s*"
        rf"({'|'.join(sorted(MUTATOR_NAMES))})\s*\(")
    return [(m.start(), f"`{owner}.{m.group(1)}(...)`", "")
            for m in pat.finditer(code, lo, hi)]


def _call_mutation_events(program: Program, fn: FunctionDef,
                          sf: SourceFile, summaries: MutationSummaries,
                          owner: str, lo: int,
                          hi: int) -> list[tuple[int, str, str]]:
    """Calls between lo and hi that may invalidate `owner` through their
    mutation summary: a member call on `owner`, or `owner` passed to a
    mutable-ref parameter."""
    code = sf.code
    events: list[tuple[int, str, str]] = []
    for site in program.calls_from.get(id(fn), ()):
        if not lo <= site.offset < hi:
            continue
        callee = site.callee
        if callee.name in MUTATOR_NAMES:
            # Base-name fallback resolved a std container op to a project
            # function of the same name; the direct scanner owns these.
            continue
        inv = summaries.invalidates_receiver.get(id(callee))
        recv = summaries._receiver_text(code, site.offset)
        if inv is not None and recv is not None:
            # Literal receiver match only: a call on an *element* of the
            # owner (`provider.on_bytes_sent(...)` for a `providers[p]`
            # binding) mutates the element's innards, which does not move
            # the owner's storage.
            if base_ident(recv) == owner:
                events.append((site.offset,
                               f"`{owner}.{callee.name}(...)`",
                               summaries.invalidation_chain(callee)))
                continue
        mutated = summaries.mutates_ref_params.get(id(callee))
        if mutated and recv is None:
            open_idx = code.find("(", site.offset, hi)
            if open_idx < 0:
                continue
            close = match_paren(code, open_idx)
            args = code[open_idx + 1:close] if close > 0 else ""
            if re.search(rf"(?<![\w.]){re.escape(owner)}\b", args):
                evidence = next(iter(mutated.values()))
                events.append((site.offset,
                               f"`{callee.name}({owner}, ...)`",
                               f"{callee.qualname} [{evidence}]"))
    return events


def check_l2(program: Program, summaries: MutationSummaries,
             exempt) -> list[Finding]:
    accessors = view_accessors(program)
    out: list[Finding] = []
    for fn in program.functions:
        if exempt("L2", fn.rel):
            continue
        sf = program.by_rel[fn.rel]
        code = sf.code
        scopes = _brace_scopes(code, fn.start + 1, fn.end)
        for b in borrows_in(fn, sf, accessors):
            if b.kind == "range-for":
                lo, hi = b.stmt_end, b.scope_end
            else:
                lo, hi = b.stmt_end, fn.end
            events = _direct_mutation_events(code, b.owner, lo, hi)
            events += _call_mutation_events(program, fn, sf, summaries,
                                            b.owner, lo, hi)
            events = [e for e in events
                      if not fn.lambda_spans_differ(b.decl_off, e[0])]
            if not events:
                continue
            events.sort()
            if b.kind == "range-for":
                off, desc, chain = events[0]
                via_chain = f": {chain}" if chain else ""
                out.append(Finding(
                    rule="L2", slug="invalidated-view", path=fn.rel,
                    line=sf.line_at(off),
                    message=(f"`{fn.qualname}` mutates `{b.owner}` via"
                             f" {desc} while a range-for loop (started at"
                             f" {fn.rel}:{sf.line_at(b.decl_off)}) still"
                             f" iterates it{via_chain}; iterate an owning"
                             " snapshot (sorted_view) or collect the"
                             " mutations and apply them after the loop"),
                ))
                continue
            # Argument extents of the mutating calls themselves: a use
            # *inside* one is the sanctioned erase-at-iterator /
            # insert-at-hint shape (`it = c.erase(it)`, `c.insert(it, v)`)
            # — the op consumes the view rather than using it stale.
            extents: list[tuple[int, int]] = []
            for ev_off, _, _ in events:
                op_open = code.find("(", ev_off, hi)
                op_close = match_paren(code, op_open) if op_open > 0 else -1
                if op_open > 0 and op_close > 0:
                    extents.append((op_open, op_close))
            reacquire = re.compile(_ASSIGN_RE_TPL.format(
                var=re.escape(b.var)))
            use_re = re.compile(rf"(?<![\w.]){re.escape(b.var)}\b")
            for um in use_re.finditer(code, lo, hi):
                off = um.start()
                if fn.lambda_spans_differ(b.decl_off, off):
                    continue
                if any(o < off <= c for o, c in extents):
                    continue
                redecl = re.search(
                    r"(?:const\s+)?auto\s*(?:const\s*)?[&*]?\s*\[?\s*$",
                    code[max(lo, off - 48):off]) is not None
                if redecl or reacquire.match(code, off):
                    # Re-acquisition (or a same-named redeclaration, e.g.
                    # `auto [it, _] = m.emplace(...)`) discharges every
                    # event up to the end of the acquiring statement.
                    stmt_end = code.find(";", off, hi)
                    cut = stmt_end if stmt_end > 0 else off
                    events = [e for e in events if e[0] > cut]
                    if not events:
                        break
                    continue
                hits = [e for e in events if e[0] < off]
                # A mutation inside a branch that returns before the use
                # cannot reach it: `if (...) { adj.erase(it); ... return; }
                # ... it->cap = x` mutates only on the exiting path.
                hits = [e for e in hits
                        if not _scope_returns_before(code, scopes, e[0], off)]
                if not hits:
                    continue
                ev_off, desc, chain = hits[-1]
                via_chain = f": {chain}" if chain else ""
                out.append(Finding(
                    rule="L2", slug="invalidated-view", path=fn.rel,
                    line=sf.line_at(off),
                    message=(f"view `{b.var}` (borrowed from `{b.owner}`"
                             f" via `{b.via}` at"
                             f" {fn.rel}:{sf.line_at(b.decl_off)}) is used"
                             " after a call that may invalidate it —"
                             f" {desc} at {fn.rel}:{sf.line_at(ev_off)}"
                             f"{via_chain}; re-acquire the view after the"
                             " mutation or copy into an owning snapshot"),
                ))
                break  # one finding per borrow
    return out


_RETURN_STMT_RE = re.compile(r"\breturn\b")
_ELSE_HEAD_RE = re.compile(r"\s*else\b(?:\s*if\s*\([^)]*\))?\s*\{")


def _scope_returns_before(code: str, scopes: list[tuple[int, int]],
                          ev_off: int, use_off: int) -> bool:
    """True when the event provably cannot flow to the use: some scope
    enclosing the event closes before `use_off` and either (a) leaves the
    function first — a `return` between the event and that scope's `}`
    (`if (...) { adj.erase(it); ... return; } ... it->cap = x`) — or
    (b) the use sits in that scope's sibling `else` branch."""
    for lo, hi in scopes:
        if not (lo < ev_off < hi and hi < use_off):
            continue
        if _RETURN_STMT_RE.search(code, ev_off, hi) is not None:
            return True
        m = _ELSE_HEAD_RE.match(code, hi + 1)
        if m is not None:
            else_lo = m.end() - 1
            for s_lo, s_hi in scopes:
                if s_lo == else_lo and s_lo < use_off < s_hi:
                    return True
    return False


# --- L3 ----------------------------------------------------------------------

#: Known storing sinks: the callback outlives the calling frame.
STORING_SINK_NAMES = frozenset({
    "schedule_at", "schedule_after", "schedule_periodic", "submit",
    "set_failure_observer", "set_observer", "add_observer",
    "register_observer", "defer", "post",
})
#: Function-typed parameters these take, but invoked before returning:
#: never a lifetime escape.
SYNC_SINK_NAMES = frozenset({"parallel_for", "for_each_residual_edge",
                             "visit", "apply"})

_FN_PARAM_RE = re.compile(r"\bstd\s*::\s*function\s*<|\b[A-Z]\w*Fn\b")
_CALL_NAME_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
_CAPTURE_LIST_RE = re.compile(r"\[([^\[\]]*)\]\s*(?:\(|\{|mutable\b|->)")


def storing_sinks(program: Program) -> dict[str, str]:
    """Base name -> qualname of every callback-storing function: the
    builtin list plus detected project functions that take a function-
    typed parameter and do not invoke it before returning."""
    out = {name: name for name in STORING_SINK_NAMES}
    for fn in program.functions:
        if fn.name in SYNC_SINK_NAMES or fn.name in out:
            if fn.name in out:
                out[fn.name] = fn.qualname
            continue
        sf = program.by_rel[fn.rel]
        params_text = ""
        from bc_analyze.callgraph import _decl_head
        head = _decl_head(sf.code, fn.start)
        m = re.search(rf"\b{re.escape(fn.name)}\s*\(", head)
        if m is not None:
            close = match_paren(head, m.end() - 1)
            params_text = head[m.end():close if close > 0 else len(head)]
        if not _FN_PARAM_RE.search(params_text):
            continue
        pm = re.search(r"(?:function\s*<[^;]*>|\b[A-Z]\w*Fn\b)\s*&?&?\s*"
                       r"([A-Za-z_]\w*)", params_text)
        if pm is None:
            continue
        param = pm.group(1)
        body = fn.body(sf.code)
        if re.search(rf"(?<![\w.]){re.escape(param)}\s*\(", body):
            continue  # invoked synchronously
        out[fn.name] = fn.qualname
    return out


def _locals_and_params(fn: FunctionDef, sf: SourceFile,
                       summaries: MutationSummaries) -> set[str]:
    names, _ = summaries.params_of(fn)
    code = fn.body(sf.code)
    for m in re.finditer(r"(?<![\w:.])(?:[A-Za-z_][\w:]*\s*<[^;={}]*>"
                         r"|[A-Za-z_][\w:]*)\s+([A-Za-z_]\w*)\s*[;=({]",
                         code):
        names.add(m.group(1))
    return names


def check_l3(program: Program, summaries: MutationSummaries,
             exempt) -> list[Finding]:
    sinks = storing_sinks(program)
    accessors = view_accessors(program)
    out: list[Finding] = []
    for fn in program.functions:
        if exempt("L3", fn.rel):
            continue
        sf = program.by_rel[fn.rel]
        code = sf.code
        view_locals = {b.var for b in borrows_in(fn, sf, accessors)
                       if b.kind in ("view", "iterator")}
        frame_names: set[str] | None = None  # computed lazily
        for m in _CALL_NAME_RE.finditer(code, fn.start + 1, fn.end):
            sink = m.group(1)
            if sink not in sinks or sink == fn.name:
                continue
            open_idx = m.end() - 1
            close = match_paren(code, open_idx)
            if close < 0:
                continue
            args = code[open_idx + 1:close]
            for cm in _CAPTURE_LIST_RE.finditer(args):
                items = [c.strip() for c in cm.group(1).split(",")
                         if c.strip()]
                for item in items:
                    line = sf.line_at(open_idx + 1 + cm.start())
                    if item == "&":
                        out.append(Finding(
                            rule="L3", slug="escaping-capture",
                            path=fn.rel, line=line,
                            message=(f"lambda passed to `{sinks[sink]}`"
                                     " captures the whole frame by"
                                     " reference (`[&]`): the stored"
                                     " callback outlives"
                                     f" `{fn.qualname}`'s locals —"
                                     " capture by value, or capture"
                                     " `this` and re-read state when the"
                                     " callback runs"),
                        ))
                        continue
                    rm = re.fullmatch(r"&\s*([A-Za-z_]\w*)", item)
                    if rm is not None and rm.group(1) != "this":
                        name = rm.group(1)
                        if name.endswith("_"):
                            continue  # member: lives with *this
                        out.append(Finding(
                            rule="L3", slug="escaping-capture",
                            path=fn.rel, line=line,
                            message=(f"lambda passed to `{sinks[sink]}`"
                                     f" captures local `{name}` by"
                                     " reference: the stored callback"
                                     " outlives the frame that owns"
                                     f" `{name}` — capture it by value"),
                        ))
                        continue
                    vm = re.fullmatch(r"([A-Za-z_]\w*)(?:\s*=.*)?", item)
                    if vm is None or vm.group(1) in ("this", "mutable"):
                        continue
                    name = vm.group(1)
                    if name in view_locals:
                        if frame_names is None:
                            frame_names = _locals_and_params(
                                fn, sf, summaries)
                        out.append(Finding(
                            rule="L3", slug="escaping-capture",
                            path=fn.rel, line=line,
                            message=(f"lambda passed to `{sinks[sink]}`"
                                     f" captures view `{name}` by value:"
                                     " copying a span/string_view copies"
                                     " the pointer, not the storage — the"
                                     " owner dies before the stored"
                                     " callback runs; copy the data or"
                                     " re-acquire the view inside the"
                                     " callback"),
                        ))
    return out


# --- L4 ----------------------------------------------------------------------

_MOVE_RE = re.compile(r"\bstd\s*::\s*move\s*\(\s*([A-Za-z_]\w*)\s*\)")
_KILL_OPS = ("clear", "assign", "reset", "emplace")


def _brace_scopes(code: str, lo: int, hi: int) -> list[tuple[int, int]]:
    scopes: list[tuple[int, int]] = []
    stack: list[int] = []
    for i in range(lo, hi):
        c = code[i]
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            scopes.append((stack.pop(), i))
    return scopes


def _innermost(scopes: list[tuple[int, int]],
               off: int) -> tuple[int, int] | None:
    best = None
    for lo, hi in scopes:
        if lo <= off <= hi and (best is None or hi - lo < best[1] - best[0]):
            best = (lo, hi)
    return best


def check_l4(program: Program, exempt) -> list[Finding]:
    out: list[Finding] = []
    for fn in program.functions:
        if exempt("L4", fn.rel):
            continue
        sf = program.by_rel[fn.rel]
        code = sf.code
        scopes = _brace_scopes(code, fn.start + 1, fn.end)
        for m in _MOVE_RE.finditer(code, fn.start + 1, fn.end):
            ident = m.group(1)
            if ident.endswith("_") or ident == "this":
                continue  # members: teardown moves are their own idiom
            stmt_start = max(code.rfind(ch, fn.start, m.start())
                             for ch in ";{}")
            if re.match(r"\s*(?:co_)?return\b",
                        code[stmt_start + 1:m.start() + 1]):
                continue  # `return std::move(x)` never reads x again
            move_scope = _innermost(scopes, m.start())
            use_re = re.compile(rf"(?<![\w.:]){re.escape(ident)}\b")
            for um in use_re.finditer(code, m.end(), fn.end):
                off = um.start()
                if fn.lambda_spans_differ(m.start(), off):
                    continue
                # Conditional-move shapes (move and use in disjoint
                # sibling scopes) are clang-tidy's path-sensitive job.
                if move_scope is not None and off > move_scope[1]:
                    break
                after = code[um.end():um.end() + 24]
                if re.match(r"\s*=(?!=)", after):
                    break  # reassigned: moved-from state gone
                if re.match(r"\s*(?:\.|->)\s*(?:" + "|".join(_KILL_OPS)
                            + r")\s*\(", after):
                    break
                out.append(Finding(
                    rule="L4", slug="use-after-move", path=fn.rel,
                    line=sf.line_at(off),
                    message=(f"`{ident}` is used after `std::move({ident})`"
                             f" at {fn.rel}:{sf.line_at(m.start())} with no"
                             " intervening reassignment or clear(): a"
                             " moved-from object is valid-but-unspecified"
                             " — reassign it first, or stop moving it"),
                ))
                break  # one finding per move
    return out


# --- entry point -------------------------------------------------------------


def run_lifetime_rules(program: Program, exempt) -> list[Finding]:
    summaries = MutationSummaries(program)
    findings: list[Finding] = []
    findings.extend(check_l1(program, exempt))
    findings.extend(check_l2(program, summaries, exempt))
    findings.extend(check_l3(program, summaries, exempt))
    findings.extend(check_l4(program, exempt))
    return findings
