"""Whole-program symbol index, call graph and per-function CFG-lite.

This is the interprocedural layer of bc-analyze. It stays on the token
frontend's scrubbed-code model (source.py): a brace-tracking scanner walks
each file once and recovers

  * function definitions with namespace/class-qualified names and body
    extents (lambda bodies are attributed to their enclosing function but
    their ranges are recorded, because code inside a lambda does not run
    at the point where the lambda is written),
  * call sites (free, qualified and member calls) resolved against the
    program-wide symbol index by qualified-name suffix, and
  * a CFG-lite per function: loop-body ranges (so rules can ask for the
    loop nesting depth of any offset) and Mutex lock regions (a LockGuard
    declaration holds its lock until the end of the enclosing brace scope).

Like the rest of the token frontend it is heuristic by design: it
recognizes the shapes that occur in this clang-format-ed tree and errs
toward *not* inventing structure it cannot classify. The dataflow rules
built on top (rules_dataflow.py) only ever traverse edges between known
definitions, so an unresolved call simply ends the walk.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from bc_analyze.source import IDENT_RE, SourceFile, match_paren

# Keywords that look like calls (`while (...)`) or precede bodies.
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}
PLAIN_BLOCK_KEYWORDS = {"do", "else", "try"}
NOT_CALLS = CONTROL_KEYWORDS | PLAIN_BLOCK_KEYWORDS | {
    "return", "sizeof", "alignof", "alignas", "decltype", "typeid",
    "new", "delete", "throw", "co_return", "co_await", "co_yield",
    "assert", "defined",
}

NAMESPACE_RE = re.compile(
    r"(?:^|\n)\s*(?:inline\s+)?namespace(?:\s+([\w:]+))?\s*$")
CLASS_RE = re.compile(
    r"\b(?:class|struct|union)\s+(?:BC_\w+\s*(?:\([^)]*\)\s*)?)?"
    r"([A-Za-z_]\w*)"
)
LAMBDA_INTRO_RE = re.compile(r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?"
                             r"(?:mutable\s*)?(?:noexcept\s*)?"
                             r"(?:->\s*[\w:<>,&*\s]+?)?\s*$")
CALL_RE = re.compile(r"(?<![\w.:>])((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)"
                     r"\s*\(")
MEMBER_CALL_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
MACRO_NAME_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")
LOOP_KEYWORD_RE = re.compile(r"\b(for|while|do)\b")
LOCK_GUARD_RE = re.compile(
    r"\b(?:bc::)?(?:util::)?LockGuard\s+[A-Za-z_]\w*\s*[({]")
LOCK_CALL_RE = re.compile(r"\b([A-Za-z_][\w.\->]*)\s*\.\s*lock\s*\(\s*\)")

#: Root namespaces that can never name project code: a call written
#: `std::to_string(...)` must not fall back to a project `to_string`.
FOREIGN_NAMESPACES = frozenset({"std", "boost", "absl", "fmt", "testing"})


@dataclass
class LockRegion:
    """One held-lock extent: from the acquisition to the end of its scope."""

    mutex: str  # normalized mutex expression, e.g. "mu_" or "batch.mu"
    key: str  # program-wide identity, e.g. "obs::Registry::mu_"
    start: int  # offset into SourceFile.code just past the acquisition
    end: int  # offset of the closing `}` of the enclosing scope
    acquire_offset: int  # offset of the acquisition itself


@dataclass
class FunctionDef:
    """One function definition recovered from the token model."""

    name: str  # last component, e.g. "nodes"
    qualname: str  # e.g. "bc::graph::FlowGraph::nodes"
    rel: str  # repo-relative path of the defining file
    start: int  # offset of the `{` opening the body in SourceFile.code
    end: int  # offset of the matching `}`
    start_line: int = 0
    end_line: int = 0
    class_qual: str = ""  # enclosing namespace+class prefix, "" at top level
    lambda_ranges: list[tuple[int, int]] = field(default_factory=list)
    loop_ranges: list[tuple[int, int]] = field(default_factory=list)
    lock_regions: list[LockRegion] = field(default_factory=list)
    calls: list[tuple[str, int]] = field(default_factory=list)  # (name, off)

    def body(self, code: str) -> str:
        return code[self.start + 1:self.end]

    def loop_depth_at(self, offset: int) -> int:
        return sum(1 for lo, hi in self.loop_ranges if lo <= offset < hi)

    def in_lambda(self, offset: int) -> bool:
        return any(lo <= offset < hi for lo, hi in self.lambda_ranges)

    def lambda_spans_differ(self, a: int, b: int) -> bool:
        """True when a lambda boundary separates offsets a and b: code at
        `b` textually inside a region started at `a` does not actually run
        there when a lambda intervenes (it runs when the lambda is
        invoked)."""
        for lo, hi in self.lambda_ranges:
            if (lo <= a < hi) != (lo <= b < hi):
                return True
        return False


def _word_before(code: str, idx: int) -> tuple[str, int]:
    """Identifier ending just before `idx` (skipping trailing spaces);
    returns (word, start_index_of_word). Empty word when none."""
    j = idx
    while j > 0 and code[j - 1] in " \t\n":
        j -= 1
    k = j
    while k > 0 and (code[k - 1].isalnum() or code[k - 1] == "_"):
        k -= 1
    return code[k:j], k


def _matching_open(code: str, close_idx: int, opener: str, closer: str) -> int:
    depth = 0
    for i in range(close_idx, -1, -1):
        c = code[i]
        if c == closer:
            depth += 1
        elif c == opener:
            depth -= 1
            if depth == 0:
                return i
    return -1


def _decl_head(code: str, brace_idx: int) -> str:
    """The declaration text owning the `{` at brace_idx: everything after
    the previous statement/brace boundary."""
    start = brace_idx - 1
    limit = max(0, brace_idx - 600)
    while start > limit and code[start] not in ";}{":
        start -= 1
    return code[start + 1:brace_idx] if code[start] in ";}{" else \
        code[start:brace_idx]


def _function_name_before(code: str, idx: int) -> tuple[str, int] | None:
    """Parses a (possibly qualified) function name whose parameter-list
    `(` sits at `idx`; walks backward over `::` segments. Returns
    (qualified_name, start_index) or None."""
    name_parts: list[str] = []
    j = idx
    while True:
        word, k = _word_before(code, j)
        if not word:
            # operator overloads: `operator==`, `operator()`, ...
            m = re.search(r"operator\s*[^\s\w]{0,3}\s*$", code[max(0, j - 16):j])
            if m and not name_parts:
                return ("operator", max(0, j - 16) + m.start())
            return None
        name_parts.insert(0, word)
        # A `::` immediately before the word extends the qualification.
        p = k
        while p > 0 and code[p - 1] in " \t\n":
            p -= 1
        if p >= 2 and code[p - 2:p] == "::":
            j = p - 2
            # `~` destructor names: keep walking for the class component.
            continue
        if p >= 1 and code[p - 1] == "~":
            k = p - 1
        return ("::".join(name_parts), k)


def _classify_brace(code: str, i: int) -> tuple[str, str, int]:
    """Classifies the `{` at offset i.

    Returns (kind, name, name_offset) with kind one of "namespace",
    "class", "enum", "fn", "lambda", "block". `name` is meaningful for
    namespace/class/fn.
    """
    head = _decl_head(code, i)
    m = NAMESPACE_RE.search(head)
    if m:
        return ("namespace", m.group(1) or "", i)
    if re.search(r"\benum\b", head):
        return ("enum", "", i)
    # Class heads contain no parameter list except attribute macros; a
    # function head always ends with `)` + qualifiers. Reject heads whose
    # tail after the class name contains a bare `(`.
    cm = CLASS_RE.search(head)
    if cm is not None and "(" not in head[cm.end():]:
        return ("class", cm.group(1), i)
    j = i - 1
    while j >= 0 and code[j] in " \t\n":
        j -= 1
    if j < 0:
        return ("block", "", i)
    # `do {`, `else {`, `try {`
    word, _ = _word_before(code, j + 1)
    if word in PLAIN_BLOCK_KEYWORDS:
        return ("block", "", i)
    guard = 0
    while guard < 32:
        guard += 1
        c = code[j]
        if c == ")":
            p = _matching_open(code, j, "(", ")")
            if p <= 0:
                return ("block", "", i)
            word, ws = _word_before(code, p)
            if word in CONTROL_KEYWORDS:
                return ("block", "", i)
            if word == "noexcept":
                j = ws - 1
                while j >= 0 and code[j] in " \t\n":
                    j -= 1
                continue
            if not word:
                q = p - 1
                while q >= 0 and code[q] in " \t\n":
                    q -= 1
                if q >= 0 and code[q] == "]":
                    return ("lambda", "", i)
                return ("block", "", i)
            # Constructor initializer list: `X(...) : a_(1), b_(2) {` — the
            # `)` seen here belongs to an initializer; keep walking left.
            k = ws - 1
            while k >= 0 and code[k] in " \t\n":
                k -= 1
            if k >= 0 and code[k] == "," :
                j = k - 1
                continue
            if k >= 0 and code[k] == ":" and not (k >= 1 and code[k - 1] == ":"):
                j = k - 1
                while j >= 0 and code[j] in " \t\n":
                    j -= 1
                continue
            named = _function_name_before(code, p)
            if named is None:
                return ("block", "", i)
            return ("fn", named[0], named[1])
        if c == "}":
            # Brace-init member in a ctor list: `..., c_{y} {`.
            q = _matching_open(code, j, "{", "}")
            if q <= 0:
                return ("block", "", i)
            word, ws = _word_before(code, q)
            if not word:
                return ("block", "", i)
            k = ws - 1
            while k >= 0 and code[k] in " \t\n":
                k -= 1
            if k >= 0 and code[k] in ",:" and not (code[k] == ":" and k >= 1
                                                   and code[k - 1] == ":"):
                j = k - 1 if code[k] == "," else k - 1
                while j >= 0 and code[j] in " \t\n":
                    j -= 1
                continue
            return ("block", "", i)
        if c == "]":
            # `[captures] {` lambda with no parameter list.
            tail = code[max(0, i - 200):i]
            if LAMBDA_INTRO_RE.search(tail):
                return ("lambda", "", i)
            return ("block", "", i)
        if c in "=,(":
            return ("block", "", i)  # brace initializer inside an expression
        # Trailing return type or qualifier words (`const`, `override`,
        # `final`, `-> Type`): scan left for the parameter list.
        word, ws = _word_before(code, j + 1)
        if word in ("const", "override", "final", "mutable"):
            j = ws - 1
            while j >= 0 and code[j] in " \t\n":
                j -= 1
            continue
        if word and j >= 0:
            # Possibly a trailing return type `-> bc::Bytes {`; look for
            # the arrow to the left within the head.
            arrow = head.rfind("->")
            if arrow >= 0:
                head_start = i - len(head)
                j = head_start + arrow - 1
                while j >= 0 and code[j] in " \t\n":
                    j -= 1
                continue
        return ("block", "", i)
    return ("block", "", i)


@dataclass
class _Scope:
    kind: str
    name: str
    open_idx: int


def scan_functions(sf: SourceFile) -> list[FunctionDef]:
    """All function definitions in one file, with lambda ranges attributed
    to their enclosing function."""
    code = sf.code
    out: list[FunctionDef] = []
    stack: list[_Scope] = []
    fn_stack: list[FunctionDef] = []

    for i, c in enumerate(code):
        if c == "{":
            kind, name, _ = _classify_brace(code, i)
            # A nested "fn" inside an open function body is in practice a
            # lambda or a local-struct method; treat it as a lambda range
            # so its code is not attributed to the point of definition.
            if kind == "fn" and fn_stack:
                kind = "lambda"
            stack.append(_Scope(kind, name, i))
            if kind == "fn":
                ns = [s.name for s in stack[:-1]
                      if s.kind in ("namespace", "class") and s.name]
                # Out-of-class definitions carry their class in the name
                # (`Registry::counter`): the class component belongs to the
                # qualification context, e.g. for lock identities.
                parts = name.split("::")
                class_qual = "::".join(ns + parts[:-1])
                qual = "::".join(ns + [name]) if ns else name
                fn = FunctionDef(
                    name=name.rsplit("::", 1)[-1], qualname=qual, rel=sf.rel,
                    start=i, end=len(code), class_qual=class_qual,
                    start_line=sf.line_at(i))
                fn_stack.append(fn)
        elif c == "}":
            if not stack:
                continue
            scope = stack.pop()
            if scope.kind == "fn" and fn_stack:
                fn = fn_stack.pop()
                fn.end = i
                fn.end_line = sf.line_at(i)
                out.append(fn)
            elif scope.kind == "lambda" and fn_stack:
                fn_stack[-1].lambda_ranges.append((scope.open_idx, i + 1))
    # Unterminated functions (scanner confusion): drop rather than guess.
    out.sort(key=lambda f: f.start)
    return out


# --- CFG-lite: loops and lock regions ---------------------------------------


def _scope_end(code: str, offset: int, hard_end: int) -> int:
    """Offset of the `}` closing the innermost scope containing `offset`,
    bounded by hard_end."""
    depth = 0
    i = offset
    while i < hard_end:
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            if depth == 0:
                return i
            depth -= 1
        i += 1
    return hard_end


def _annotate_loops(fn: FunctionDef, code: str) -> None:
    body_start, body_end = fn.start + 1, fn.end
    for m in LOOP_KEYWORD_RE.finditer(code, body_start, body_end):
        kw = m.group(1)
        i = m.end()
        while i < body_end and code[i] in " \t\n":
            i += 1
        if kw in ("for", "while"):
            if i >= body_end or code[i] != "(":
                continue
            close = match_paren(code, i)
            if close < 0 or close >= body_end:
                continue
            # `while (...)` terminating a do-loop: `} while (cond);`
            j = close + 1
            while j < body_end and code[j] in " \t\n":
                j += 1
            if j < body_end and code[j] == ";" and kw == "while":
                continue
            if j < body_end and code[j] == "{":
                end = match_paren(code, j, "}")
                fn.loop_ranges.append((j, end if end > 0 else body_end))
            else:  # single-statement body
                k = code.find(";", j, body_end)
                fn.loop_ranges.append((j, k if k > 0 else body_end))
        else:  # do { ... } while (...)
            if i < body_end and code[i] == "{":
                end = match_paren(code, i, "}")
                fn.loop_ranges.append((i, end if end > 0 else body_end))


def _lock_key(mutex: str, fn: FunctionDef) -> str:
    """Program-wide identity for a mutex expression.

    Convention-named members (`mu_`) are qualified by the enclosing class,
    so `obs::Registry::mu_` and `util::ThreadPool::mu_` stay distinct;
    anything else (globals, locals, `x.mu` paths) is used verbatim — a
    heuristic that can merge distinct locks, which only ever *adds*
    candidate edges for the cycle check to look at.
    """
    mutex = mutex.replace("this->", "").replace(" ", "")
    if re.fullmatch(r"[A-Za-z_]\w*_", mutex) and fn.class_qual:
        return f"{fn.class_qual}::{mutex}"
    return mutex


def _annotate_locks(fn: FunctionDef, code: str) -> None:
    body_start, body_end = fn.start + 1, fn.end
    for m in LOCK_GUARD_RE.finditer(code, body_start, body_end):
        open_idx = m.end() - 1
        close = match_paren(code, open_idx,
                            ")" if code[open_idx] == "(" else "}")
        if close < 0:
            continue
        mutex = code[open_idx + 1:close].strip()
        end = _scope_end(code, close + 1, body_end)
        fn.lock_regions.append(LockRegion(
            mutex=mutex, key=_lock_key(mutex, fn), start=close + 1, end=end,
            acquire_offset=m.start()))
    for m in LOCK_CALL_RE.finditer(code, body_start, body_end):
        mutex = m.group(1)
        end = _scope_end(code, m.end(), body_end)
        fn.lock_regions.append(LockRegion(
            mutex=mutex, key=_lock_key(mutex, fn), start=m.end(), end=end,
            acquire_offset=m.start()))


def _annotate_calls(fn: FunctionDef, code: str) -> None:
    body_start, body_end = fn.start + 1, fn.end
    seen: set[tuple[str, int]] = set()
    for m in CALL_RE.finditer(code, body_start, body_end):
        name = re.sub(r"\s+", "", m.group(1))
        base = name.rsplit("::", 1)[-1]
        if base in NOT_CALLS or MACRO_NAME_RE.match(base):
            continue
        key = (name, m.start())
        if key not in seen:
            seen.add(key)
            fn.calls.append((name, m.start()))
    for m in MEMBER_CALL_RE.finditer(code, body_start, body_end):
        name = m.group(1)
        if name in NOT_CALLS or MACRO_NAME_RE.match(name):
            continue
        key = (name, m.start(1))
        if key not in seen:
            seen.add(key)
            fn.calls.append((name, m.start(1)))
    fn.calls.sort(key=lambda c: c[1])


# --- whole-program model -----------------------------------------------------


@dataclass
class CallSite:
    caller: FunctionDef
    callee: FunctionDef
    offset: int  # offset of the callee name in the caller's file
    line: int


class Program:
    """Symbol index + call graph over every analyzed SourceFile."""

    def __init__(self, sources: list[SourceFile]):
        self.sources = sources
        self.by_rel: dict[str, SourceFile] = {sf.rel: sf for sf in sources}
        self.functions: list[FunctionDef] = []
        self.by_base: dict[str, list[FunctionDef]] = {}
        for sf in sources:
            fns = scan_functions(sf)
            for fn in fns:
                _annotate_loops(fn, sf.code)
                _annotate_locks(fn, sf.code)
                _annotate_calls(fn, sf.code)
            self.functions.extend(fns)
        for fn in self.functions:
            self.by_base.setdefault(fn.name, []).append(fn)
        # Resolved call edges, computed once.
        self.callsites: list[CallSite] = []
        self.calls_from: dict[int, list[CallSite]] = {}
        self.calls_to: dict[int, list[CallSite]] = {}
        for fn in self.functions:
            sf = self.by_rel[fn.rel]
            for name, off in fn.calls:
                for callee in self.resolve(name):
                    if callee is fn and name == fn.name:
                        # Direct self-recursion adds nothing to any of the
                        # propagation passes; skip the edge.
                        continue
                    site = CallSite(caller=fn, callee=callee, offset=off,
                                    line=sf.line_at(off))
                    self.callsites.append(site)
                    self.calls_from.setdefault(id(fn), []).append(site)
                    self.calls_to.setdefault(id(callee), []).append(site)

    def resolve(self, name: str) -> list[FunctionDef]:
        """Definitions a call to `name` may reach: exact qualified-suffix
        matches when qualified, else every definition sharing the base
        name. Calls explicitly qualified into a foreign root namespace
        (std::, boost::, ...) never resolve to project functions — the
        base-name fallback must not alias `std::to_string` to a project
        `Table::to_string`."""
        base = name.rsplit("::", 1)[-1]
        cands = self.by_base.get(base, [])
        if "::" not in name or not cands:
            return cands
        root = name.split("::", 1)[0]
        if root in FOREIGN_NAMESPACES:
            return []
        suffix = name
        exact = [f for f in cands
                 if f.qualname == suffix or f.qualname.endswith("::" + suffix)]
        return exact or cands

    def function_at(self, rel: str, offset: int) -> FunctionDef | None:
        for fn in self.functions:
            if fn.rel == rel and fn.start <= offset <= fn.end:
                return fn
        return None

    def function_at_line(self, rel: str, line: int) -> FunctionDef | None:
        for fn in self.functions:
            if fn.rel == rel and fn.start_line <= line <= fn.end_line:
                return fn
        return None
