"""Token-level model of one C++ source file.

This is deliberately a *heuristic* frontend: it scrubs comments and string
literals, then recognizes the declaration and expression shapes that
actually occur in this tree (clang-format-ed, convention-checked code). The
clang AST frontend (clang_frontend.py) supersedes it for type-accurate D1
when a clang able to dump JSON ASTs is installed; everything else — and
every machine without clang — runs on this model.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from pathlib import Path

from bc_analyze.model import Suppression

# --- comment/string scrubbing ----------------------------------------------


def scrub_line(line: str, in_block: bool) -> tuple[str, str, bool]:
    """Blanks string/char literal contents and removes comments.

    Returns (code, comment_text, still_in_block). Column positions in
    `code` are NOT preserved past a removed comment; rules only report
    line numbers. `comment_text` is the concatenated comment content of the
    line (used for suppression markers).
    """
    code: list[str] = []
    comment: list[str] = []
    i = 0
    n = len(line)
    state = "block" if in_block else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                comment.append(line[i + 2:])
                break
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "string"
                code.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                code.append(c)
                i += 1
                continue
            code.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                comment.append(c)
                i += 1
        elif state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                state = "code"
                code.append(c)
            i += 1
        else:  # char literal
            if c == "\\":
                i += 2
                continue
            if c == "'":
                state = "code"
                code.append(c)
            i += 1
    return "".join(code), "".join(comment), state == "block"


def match_angle(text: str, open_idx: int) -> int:
    """Index just past the `>` matching the `<` at open_idx, or -1."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return -1  # statement ended: was a comparison, not a template
        i += 1
    return -1


def match_paren(text: str, open_idx: int, close: str = ")") -> int:
    """Index of the bracket matching the one at open_idx, or -1."""
    pairs = {")": "(", "]": "[", "}": "{"}
    opener = pairs[close]
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == opener:
            depth += 1
        elif c == close:
            depth -= 1
            if depth == 0:
                return i
    return -1


# --- declaration scanning ---------------------------------------------------

UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set)\s*<")
VECTOR_OF_UNORDERED_RE = re.compile(
    r"\bstd::(?:vector|array|deque)\s*<\s*std::unordered_(?:map|set)\s*<"
)
ORDERED_CONTAINER_RE = re.compile(
    r"\bstd::(?:vector|map|set|multimap|multiset|deque|list|array|span)\s*<"
)
#: Non-templated project types with deterministic iteration order:
#: graph::EdgeView wraps a span over the sorted adjacency arrays.
ORDERED_PLAIN_RE = re.compile(r"\b(?:graph\s*::\s*)?(EdgeView)\b")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")
FLOAT_DECL_RE = re.compile(
    r"(?:^|[(,;{]|\s)(?:const\s+)?(?:double|float|Seconds|Rate)\s+(&?\s*[A-Za-z_]\w*)"
)
BYTES_DECL_RE = re.compile(
    r"(?:^|[(,;{]|\s)(?:const\s+)?Bytes\s+(&?\s*[A-Za-z_]\w*)"
)
INT_DECL_RE = re.compile(
    r"(?:^|[(,;{]|\s)(?:const\s+)?"
    r"(?:int|long|bool|char|unsigned(?:\s+\w+)?|short"
    r"|std::size_t|size_t|std::u?int(?:8|16|32|64)_t|u?int(?:8|16|32|64)_t"
    r"|std::ptrdiff_t"
    r"|PeerId|UserId|SwarmId|EventId|PeerPair)"
    r"\s+(&?\s*[A-Za-z_]\w*)"
)
FLOAT_LITERAL_RE = re.compile(
    r"(?<![\w.])(?:\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+|\d+\.?\d*[fF]\b)"
)

SUPPRESS_RE = re.compile(
    r"bc-analyze:\s*allow\s*\(([^)]*)\)\s*(?:--\s*(.*\S))?\s*$"
)


@dataclass
class SourceFile:
    path: Path  # absolute
    rel: str  # repo-relative, forward slashes
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)
    comment_lines: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    bad_suppressions: list[tuple[int, str]] = field(default_factory=list)
    # heuristic symbol tables (identifier names)
    unordered_vars: set[str] = field(default_factory=set)
    unordered_fns: set[str] = field(default_factory=set)
    unordered_element_containers: set[str] = field(default_factory=set)
    ordered_vars: set[str] = field(default_factory=set)  # deterministic kinds
    ordered_fns: set[str] = field(default_factory=set)
    float_vars: set[str] = field(default_factory=set)
    bytes_vars: set[str] = field(default_factory=set)
    int_vars: set[str] = field(default_factory=set)
    # joined scrubbed code with line lookup
    code: str = ""
    _line_starts: list[int] = field(default_factory=list)

    def line_at(self, offset: int) -> int:
        """1-based line number of a character offset into self.code."""
        return bisect.bisect_right(self._line_starts, offset)


def _parse_suppressions(sf: SourceFile, known_rules: set[str]) -> None:
    for lineno, comment in enumerate(sf.comment_lines, start=1):
        # Prose may mention the tool by name; only `bc-analyze:` starts a
        # marker.
        if "bc-analyze:" not in comment:
            continue
        m = SUPPRESS_RE.search(comment.strip())
        if not m:
            sf.bad_suppressions.append(
                (lineno,
                 "malformed bc-analyze marker; expected"
                 " `bc-analyze: allow(<rules>) -- <reason>`"))
            continue
        rules = tuple(
            r.strip().upper() for r in m.group(1).split(",") if r.strip())
        reason = (m.group(2) or "").strip()
        unknown = [r for r in rules if r not in known_rules]
        if not rules or unknown:
            sf.bad_suppressions.append(
                (lineno, f"unknown rule(s) in allow(): {', '.join(unknown) or '<empty>'}"))
            continue
        if not reason:
            sf.bad_suppressions.append(
                (lineno,
                 "suppression without a reason; append `-- <why this is safe>`"))
            continue
        # A comment-only line suppresses the next line that has code; an
        # end-of-line comment suppresses its own line.
        target = lineno
        if not sf.code_lines[lineno - 1].strip():
            target = lineno + 1
            while (target <= len(sf.code_lines)
                   and not sf.code_lines[target - 1].strip()):
                target += 1
        sf.suppressions.append(
            Suppression(path=sf.rel, marker_line=lineno, target_line=target,
                        rules=rules, reason=reason))


def _scan_declarations(sf: SourceFile) -> None:
    code = sf.code
    # Containers *of* unordered containers: iterating the outer container is
    # fine, but subscripting it yields an unordered container.
    for m in VECTOR_OF_UNORDERED_RE.finditer(code):
        outer_open = code.index("<", m.start())
        close = match_angle(code, outer_open)
        if close < 0:
            continue
        named = _decl_name_after(code, close)
        if named and named[0] == "var":
            sf.unordered_element_containers.add(named[1])
    for m in UNORDERED_RE.finditer(code):
        open_idx = m.end() - 1
        close = match_angle(code, open_idx)
        if close < 0:
            continue
        # When this unordered type is nested inside another template
        # argument list (e.g. the value type of an outer map) no declared
        # name follows the closing `>`, so _decl_name_after returns None
        # and the outer scan picks up the declaration instead.
        named = _decl_name_after(code, close)
        if not named:
            continue
        kind, ident = named
        if kind == "fn":
            sf.unordered_fns.add(ident)
        else:
            sf.unordered_vars.add(ident)
    # Deterministically ordered containers: declarations recorded so a name
    # that is unordered in some *other* file is vetoed here (and globally
    # ambiguous names can be dropped from the cross-file table). Functions
    # returning ordered containers (vector, sorted span, ...) are tracked
    # the same way so e.g. a span-returning accessor does not inherit
    # unordered-ness from an identically named accessor elsewhere.
    for m in ORDERED_CONTAINER_RE.finditer(code):
        open_idx = code.index("<", m.start())
        close = match_angle(code, open_idx)
        if close < 0:
            continue
        named = _decl_name_after(code, close)
        if named and named[0] == "var":
            sf.ordered_vars.add(named[1])
        elif named and named[0] == "fn":
            sf.ordered_fns.add(named[1])
    for m in ORDERED_PLAIN_RE.finditer(code):
        named = _decl_name_after(code, m.end())
        if named and named[0] == "var":
            sf.ordered_vars.add(named[1])
        elif named and named[0] == "fn":
            sf.ordered_fns.add(named[1])
    for line in sf.code_lines:
        for m in FLOAT_DECL_RE.finditer(line):
            sf.float_vars.add(m.group(1).lstrip("& "))
        for m in BYTES_DECL_RE.finditer(line):
            sf.bytes_vars.add(m.group(1).lstrip("& "))
        for m in INT_DECL_RE.finditer(line):
            sf.int_vars.add(m.group(1).lstrip("& "))


def _decl_name_after(code: str, idx: int):
    """Identifier declared right after a type ending at `idx`.

    Returns ("var", name), ("fn", name) for a function returning the type,
    or None when the type ends mid-expression (nested template argument,
    cast, template parameter, ...).
    """
    n = len(code)
    i = idx
    while i < n and code[i] in " \t\n":
        i += 1
    if i < n and code[i] in "&*":
        i += 1
        while i < n and code[i] in " \t\n":
            i += 1
    m = IDENT_RE.match(code, i)
    if not m:
        return None
    ident = m.group(0)
    if ident in ("const", "noexcept", "override", "final"):
        return None
    j = m.end()
    while j < n and code[j] in " \t\n":
        j += 1
    nxt = code[j] if j < n else ""
    if nxt == "(":
        return ("fn", ident)
    if nxt in ";=,{)" or code[j:j + 2] == "[]":
        return ("var", ident)
    return None


def load_source(path: Path, rel: str, known_rules: set[str]) -> SourceFile:
    text = path.read_text(encoding="utf-8", errors="replace")
    sf = SourceFile(path=path, rel=rel)
    in_block = False
    for line in text.splitlines():
        code, comment, in_block = scrub_line(line, in_block)
        sf.raw_lines.append(line)
        sf.code_lines.append(code)
        sf.comment_lines.append(comment)
    sf.code = "\n".join(sf.code_lines)
    starts = [0]
    for line in sf.code_lines[:-1]:
        starts.append(starts[-1] + len(line) + 1)
    sf._line_starts = starts  # offset of each line's first character
    _parse_suppressions(sf, known_rules)
    _scan_declarations(sf)
    return sf


def final_identifier(expr: str) -> str | None:
    """Base identifier a range/cast expression resolves to, heuristically.

    `m.entries_` -> entries_;  `graph.out_edges(p)` -> out_edges;
    `first_served[p]` -> first_served;  `(*node).views_` -> views_.
    """
    expr = expr.strip()
    while expr and expr[0] in "(*&":
        expr = expr[1:].strip()
    while expr and expr.endswith(")") and not IDENT_RE.fullmatch(expr):
        # strip one balanced trailing (...) group, remembering it was a call
        open_idx = _matching_open(expr, len(expr) - 1, "(", ")")
        if open_idx <= 0:
            break
        expr = expr[:open_idx].rstrip()
    while expr.endswith("]"):
        open_idx = _matching_open(expr, len(expr) - 1, "[", "]")
        if open_idx <= 0:
            break
        expr = expr[:open_idx].rstrip()
    ids = IDENT_RE.findall(expr)
    return ids[-1] if ids else None


def _matching_open(text: str, close_idx: int, opener: str, closer: str) -> int:
    depth = 0
    for i in range(close_idx, -1, -1):
        c = text[i]
        if c == closer:
            depth += 1
        elif c == opener:
            depth -= 1
            if depth == 0:
                return i
    return -1
