"""Value-analysis rules V1-V4 (absint.py over callgraph.py).

V1 possible-overflow    an unguarded `+`/`*`/`+=`/`*=` on Bytes / int64
                        accounting values whose *derived* interval exceeds
                        [INT64_MIN, INT64_MAX]: signed overflow is UB and
                        silently corrupts reputations. Conversions through
                        src/util/checked.hpp (checked_add / checked_mul /
                        saturating_add) and dominating BC_ASSERT bounds
                        discharge the proof obligation.
V2 maybe-zero-divisor   `/` or `%` whose divisor interval contains zero
                        (Eq. 1 denominators, histogram bucket math, rate
                        computations) with no dominating guard proving it
                        nonzero.
V3 value-narrowing      the value-range upgrade of the syntactic B1 cast
                        rule: a loop-carried / int64-derived value stored
                        into a narrower type (int, uint32_t, NodeIndex,
                        short, ... or double past 2^53) whose interval
                        does not fit the target range — including the
                        *implicit* conversions B1 cannot see.
V4 unbounded-index      subscript arithmetic (`v[i + 1]`, `buf[cursor++]`,
                        `out[n - 1]`) with no dominating `size()` bound or
                        interval proof that the index stays in range.

All four evaluate over the interval domain with widening (absint.py) and
the whole-program summary table, and report evidence chains in the D4/C5
style: the derived interval, where it came from, and the sanctioned fix.
"""

from __future__ import annotations

import re

from bc_analyze.absint import (
    ASSIGN_RE,
    DOUBLE_EXACT_MAX,
    FunctionEval,
    I64_RANGE,
    INF,
    INT_LITERAL_RE,
    Interval,
    Summaries,
    _negate,
    eval_expr,
    guards_at,
    refine,
    split_top_level,
    type_range,
)
from bc_analyze.callgraph import FunctionDef, Program
from bc_analyze.model import Finding
from bc_analyze.source import SourceFile, final_identifier, match_paren

#: Additions below this magnitude cannot reach int64 overflow in any
#: physically realizable run (2^31 additions of 2^32 stay under 2^63):
#: `counter += 1` and `sum += uniform_int(1, kMiB)` are not V1 evidence,
#: an unbounded Bytes amount is.
V1_SMALL = 1 << 32

I64_DECL_RE = re.compile(
    r"(?:^|[(,;{<]|\s)(?:const\s+|constexpr\s+|static\s+)*"
    r"(?:Bytes|(?:std::)?int64_t|long\s+long)\s+(&?\s*[A-Za-z_]\w*)")
NARROW_DECL_RE = re.compile(
    r"(?:^|[;{(]\s*)((?:std::)?(?:u?int(?:8|16|32)_t)|int|short"
    r"|unsigned(?:\s+int)?|NodeIndex|PeerId|float|double)"
    r"\s+([A-Za-z_]\w*)\s*=([^=][^;]*);")
#: Plain narrow declarations without an initializer (`PeerId peer;`,
#: struct members, parameters): typing evidence for the tables, though
#: not a V3 narrowing site by themselves.
NARROW_PLAIN_RE = re.compile(
    r"(?:^\s*|[;{(,]\s*)(?:const\s+)?((?:std::)?(?:u?int(?:8|16|32)_t)|int"
    r"|short|unsigned(?:\s+int)?|NodeIndex|PeerId|float|double)"
    r"\s+([A-Za-z_]\w*)\s*[;,)=]")
DIV_RE = re.compile(r"(?<![/*])([/%])(?![/*=])")
SUBSCRIPT_RE = re.compile(r"([A-Za-z_]\w*)\s*\[([^\[\]]+)\]")
SIZE_FACT_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(?:resize|assign)"
                          r"\s*\(\s*([^,()]+?)\s*[),]")
#: `std::vector<T> name(n)` / `std::array`-style sized construction: the
#: same size fact as a resize, one statement earlier.
SIZED_CTOR_RE = re.compile(r"\bvector\s*<[^;=]*?>\s+([A-Za-z_]\w*)"
                           r"\s*\(\s*([^,()]+?)\s*[),]")
CAST_RE = re.compile(r"\bstatic_cast\s*<\s*([^<>]*?)\s*>\s*\(")
TYPE_WORD_RE = re.compile(
    r"^(?:auto|int|short|long|char|bool|unsigned|signed|float|double|Bytes"
    r"|u?int(?:8|16|32|64)_t|size_t|NodeIndex|PeerId|constexpr|const"
    r"|static|new)$")

#: Narrow target ranges for V3 (everything strictly smaller than int64).
NARROW_RANGES: dict[str, Interval] = {
    t: type_range(t)
    for t in ("int", "int32_t", "std::int32_t", "uint32_t", "std::uint32_t",
              "short", "int16_t", "uint16_t", "int8_t", "uint8_t",
              "unsigned", "NodeIndex", "PeerId")
}


class _Tables:
    """Per-file (companion-merged) and cross-file identifier typing for the
    value rules, following the engine's ambiguity policy: a name declared
    with conflicting widths in different files is dropped from the
    cross-file table rather than guessed."""

    def __init__(self, program: Program):
        self.program = program
        local_i64: dict[str, set[str]] = {}
        local_narrow: dict[str, set[str]] = {}
        all_i64: set[str] = set()
        all_not_i64: set[str] = set()
        for rel, sf in program.by_rel.items():
            i64 = set(sf.bytes_vars)
            narrow: set[str] = set()
            for line in sf.code_lines:
                if line.lstrip().startswith("#"):
                    continue
                for m in I64_DECL_RE.finditer(line):
                    i64.add(m.group(1).lstrip("& "))
                for m in NARROW_PLAIN_RE.finditer(line):
                    narrow.add(m.group(2))
            i64 -= sf.float_vars
            local_i64[rel] = i64
            local_narrow[rel] = narrow
            all_i64 |= i64
            # Any non-int64 declaration of the name anywhere makes it too
            # ambiguous for the *cross-file* table (the per-file tables
            # still know better locally).
            all_not_i64 |= narrow | sf.float_vars
        ambiguous = all_i64 & all_not_i64
        self.global_i64 = all_i64 - ambiguous
        self.i64: dict[str, set[str]] = {}
        self.narrow: dict[str, set[str]] = {}
        self.floats: dict[str, set[str]] = {}
        for rel in program.by_rel:
            comp = (rel[:-4] + ".hpp" if rel.endswith(".cpp")
                    else rel[:-4] + ".cpp")
            self.i64[rel] = (local_i64[rel]
                             | local_i64.get(comp, set()))
            self.narrow[rel] = (local_narrow[rel]
                                | local_narrow.get(comp, set()))
            comp_sf = program.by_rel.get(comp)
            self.floats[rel] = (set(program.by_rel[rel].float_vars)
                                | (set(comp_sf.float_vars) if comp_sf
                                   else set()))

    def is_i64(self, rel: str, name: str) -> bool:
        # File-local knowledge wins over the cross-file table: a name
        # declared narrow or floating *here* is not this file's int64.
        if name in self.narrow.get(rel, ()) \
                or name in self.floats.get(rel, ()):
            return False
        return name in self.i64.get(rel, ()) or name in self.global_i64


def run_value_rules(program: Program, exempt) -> list[Finding]:
    """Entry point from the engine: all four value rules over the whole
    program, sharing one summary table and one typing pass."""
    summaries = Summaries(program)
    tables = _Tables(program)
    out: list[Finding] = []
    for fn in program.functions:
        sf = program.by_rel[fn.rel]
        ev = FunctionEval(fn, sf, summaries.env_for(fn))
        if not exempt("V1", fn.rel):
            out.extend(_check_v1(fn, sf, ev, tables))
        if not exempt("V2", fn.rel):
            out.extend(_check_v2(fn, sf, ev, program))
        if not exempt("V3", fn.rel):
            out.extend(_check_v3(fn, sf, ev, tables))
        if not exempt("V4", fn.rel):
            out.extend(_check_v4(fn, sf, ev))
    return out


# --- V1 ----------------------------------------------------------------------


def _is_accumulator(fn: FunctionDef, lhs: str, offset: int) -> bool:
    """The left side can already hold an int64-scale value: it persists
    across iterations (assignment inside a loop) or across calls (member
    paths and `_`-suffixed members)."""
    if fn.loop_depth_at(offset) > 0:
        return True
    return lhs.endswith("_") or "." in lhs or "->" in lhs


def _check_v1(fn: FunctionDef, sf: SourceFile, ev: FunctionEval,
              tables: _Tables) -> list[Finding]:
    code = sf.code
    out: list[Finding] = []
    # Scans start AT fn.start: the anchored regexes consume the opening
    # brace, so a first-statement site would be invisible from start + 1.
    for m in ASSIGN_RE.finditer(code, fn.start, fn.end):
        lhs, op, rhs = m.group(1), m.group(2), m.group(3)
        base = final_identifier(lhs)
        if base is None or not tables.is_i64(fn.rel, base):
            continue
        off = m.start(1)
        guards = guards_at(fn, sf, off)
        lhs_cur = refine(I64_RANGE, lhs, guards, ev.env)
        added: str | None = None
        kind = ""
        if op == "+":
            added, kind = rhs, "+="
        elif op == "*":
            added, kind = rhs, "*="
        elif op == "":
            lnorm = re.sub(r"\s+", "", lhs)
            parts = split_top_level(rhs, "+")
            terms = [p for p in parts if p != "+"]
            if len(terms) > 1 and any(
                    re.sub(r"\s+", "", t) == lnorm for t in terms):
                added = "+".join(t for t in terms
                                 if re.sub(r"\s+", "", t) != lnorm)
                kind = "x = x + e"
            else:
                factors = split_top_level(rhs, "*")
                fs = [p for p in factors if p != "*"]
                if len(fs) == 2:
                    a = refine(eval_expr(fs[0], ev.env), fs[0], guards,
                               ev.env)
                    b = refine(eval_expr(fs[1], ev.env), fs[1], guards,
                               ev.env)
                    if (a.mul(b).exceeds_int64()
                            and min(a.magnitude(), b.magnitude()) > V1_SMALL):
                        out.append(_v1_finding(
                            fn, sf, off, f"{lhs.strip()} = {rhs.strip()}",
                            a, b, a.mul(b), "product of two unbounded"
                            " int64 operands"))
                continue
        if added is None:
            continue
        rhs_ival = refine(eval_expr(added, ev.env), added, guards, ev.env)
        if kind == "*=":
            derived = lhs_cur.mul(rhs_ival)
            hot = min(lhs_cur.magnitude(), rhs_ival.magnitude()) > V1_SMALL
        else:
            if not _is_accumulator(fn, lhs, off):
                continue
            derived = lhs_cur.add(rhs_ival)
            hot = rhs_ival.magnitude() > V1_SMALL
        if derived.exceeds_int64() and hot:
            why = (f"`{added.strip()}` in {rhs_ival} is int64-scale and the"
                   f" accumulator already spans {lhs_cur}")
            out.append(_v1_finding(fn, sf, off,
                                   f"{lhs.strip()} {op}= {rhs.strip()}"
                                   if op else f"{lhs.strip()} = {rhs.strip()}",
                                   lhs_cur, rhs_ival, derived, why))
    return out


def _v1_finding(fn: FunctionDef, sf: SourceFile, off: int, stmt: str,
                a: Interval, b: Interval, derived: Interval,
                why: str) -> Finding:
    return Finding(
        rule="V1", slug="possible-overflow", path=fn.rel,
        line=sf.line_at(off),
        message=(f"possible signed int64 overflow: `{stmt}` in"
                 f" `{fn.qualname}` derives {a} (*) {b} -> {derived},"
                 f" outside int64 [{why}]; signed overflow is UB and"
                 " silently corrupts the Eq. 1 accounting — use"
                 " bc::util::checked_add / checked_mul / saturating_add"
                 " (src/util/checked.hpp) or establish a dominating"
                 " BC_ASSERT bound the interval analysis can see"))


# --- V2 ----------------------------------------------------------------------


def _operand_after(code: str, i: int, end: int) -> tuple[str | None, int]:
    """The divisor operand starting at or after `i`: a parenthesized
    expression, or an identifier path with calls/subscripts/casts."""
    while i < end and code[i] in " \t\n":
        i += 1
    if i >= end:
        return None, i
    start = i
    if code[i] == "(":
        close = match_paren(code, i)
        if close < 0 or close >= end:
            return None, i
        return code[start:close + 1], close + 1
    j = i
    while j < end:
        c = code[j]
        if c.isalnum() or c in "_.'":
            j += 1
            continue
        if c == "-" and j + 1 < end and code[j + 1] == ">":
            j += 2
            continue
        if c == ":" and j + 1 < end and code[j + 1] == ":":
            j += 2
            continue
        if c == "<":
            k = code.find(">", j, min(end, j + 80))
            if k < 0:
                break
            j = k + 1
            continue
        if c == "[":
            k = match_paren(code, j, "]")
            if k < 0 or k >= end:
                break
            j = k + 1
            continue
        if c == "(":
            k = match_paren(code, j)
            if k < 0 or k >= end:
                break
            j = k + 1
            continue
        break
    text = code[start:j].strip()
    return (text or None), j


def _nonzero_guarded(div: str, ival: Interval, guards: list[str]) -> bool:
    norm = re.sub(r"\s+", "", div)
    base = final_identifier(div)
    if not ival.contains(0):
        return True
    zero = r"0(?:\.0*)?[fFlL]?"
    for g in guards:
        gn = re.sub(r"\s+", "", g)
        if re.fullmatch(f"{re.escape(norm)}!={zero}", gn) \
                or re.fullmatch(f"{zero}!={re.escape(norm)}", gn):
            return True
        # `!xs.empty()` proves `xs.size()` (and anything derived from a
        # nonempty container's element count) nonzero.
        if base is not None and gn == f"!{_container_of(norm)}.empty()":
            return True
    return False


def _container_of(norm: str) -> str:
    m = re.match(r"^(.*)\.size\(\)$", norm)
    return m.group(1) if m else norm


#: Divisor shapes the domain has no information about: a call into code
#: outside the program (std::pow, std::sqrt, ...). Flagging those is pure
#: noise — "unknown" is not evidence of a zero.
_EXTERN_CALL_RE = re.compile(r"^((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*"
                             r"(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*\(")
_SIZE_LIKE = ("size", "length", "count", "capacity", "slot_count")


def _unknown_external_call(div: str, program: Program) -> bool:
    m = _EXTERN_CALL_RE.match(div)
    if not m or match_paren(div, div.index("(", m.start())) != len(div) - 1:
        return False
    base = re.split(r"::|\.|->", re.sub(r"\s+", "", m.group(1)))[-1]
    if base in _SIZE_LIKE or base == "static_cast":
        return False
    return not program.resolve(base)


def _incremented_before(fn: FunctionDef, sf: SourceFile, offset: int,
                        ev: FunctionEval) -> set[str]:
    """Names `++x`-ed (or `x++`-ed) textually before `offset` whose
    declared type is non-negative: afterwards the value is provably >= 1
    (an unsigned or asserted-nonnegative count cannot step to zero)."""
    out: set[str] = set()
    pat = re.compile(r"(?:\+\+\s*([A-Za-z_]\w*)|([A-Za-z_]\w*)\s*\+\+)")
    for m in pat.finditer(sf.code, fn.start + 1, offset):
        name = m.group(1) or m.group(2)
        if ev.env.types.get(name, I64_RANGE).lo >= 0:
            out.add(name)
    return out


def _ternary_guards(code: str, fn: FunctionDef, off: int) -> list[str]:
    """`cond ? a / b : c` (division in the true arm) makes `cond` hold at
    the division; `cond ? c : a / b` makes its negation hold. Scoped to
    the statement containing `off`."""
    stmt_start = max(code.rfind(c, fn.start, off) for c in ";{}")
    seg = code[stmt_start + 1:off]
    # Narrow to the innermost bracket still open at `off`: a ternary that
    # dominates the division must sit at that nesting level — e.g. the
    # condition in `fmt(n > 0 ? x / n : 0.0)` is invisible at statement
    # level because the `?` is nested inside the call.
    stack: list[int] = []
    for i, ch in enumerate(seg):
        if ch in "([{":
            stack.append(i)
        elif ch in ")]}" and stack:
            stack.pop()
    if stack:
        seg = seg[stack[-1] + 1:]
    seg = seg.replace("::", "\x00")
    pieces = split_top_level(seg, "?:")
    if len(pieces) < 3 or pieces[1] != "?":
        return []
    cond, arms = pieces[0], pieces[1:]
    # `f(a, b, cond ? ... : ...)` — earlier arguments are not part of the
    # condition: keep only the segment after the last top-level comma.
    cond = split_top_level(cond, ",")[-1]
    # `const double x = cond ? ... : ...` — drop the declarator/assignment
    # prefix so only the condition itself remains.
    am = re.search(r"(?<![=!<>+\-*/%&|^])=(?!=)", cond)
    if am:
        cond = cond[am.end():]
    # `return cond ? ... : ...` — the statement keyword is not part of the
    # condition either.
    cond = re.sub(r"^\s*(?:return|co_return|co_yield)\b", "", cond)
    conds: list[str] = []
    if ":" not in arms:
        conds.append(cond)        # off is inside the true arm
    elif arms.count(":") == arms.count("?"):
        neg = _negate(cond)       # off is inside the false arm
        if neg:
            conds.append(neg)
    flat: list[str] = []
    for c in conds:
        for atom in split_top_level(c, "&"):
            atom = atom.strip().strip("&").strip()
            if atom:
                flat.append(atom.replace("\x00", "::"))
    return flat


def _check_v2(fn: FunctionDef, sf: SourceFile, ev: FunctionEval,
              program: Program) -> list[Finding]:
    code = sf.code
    out: list[Finding] = []
    for m in DIV_RE.finditer(code, fn.start + 1, fn.end):
        line_no = sf.line_at(m.start())
        if sf.code_lines[line_no - 1].lstrip().startswith("#"):
            continue  # include paths and other preprocessor text
        div, _ = _operand_after(code, m.end(), fn.end)
        if div is None:
            continue
        inner = _cast_payload(div)
        probe = inner if inner is not None else div
        probe = probe.strip()
        if INT_LITERAL_RE.match(probe) \
                or re.fullmatch(r"[\d.]+[fFlL]?", probe):
            continue  # literal divisors: zero would be a visible bug
        if _unknown_external_call(probe, program):
            continue
        base = final_identifier(probe)
        if base is not None and base in _incremented_before(fn, sf,
                                                            m.start(), ev):
            continue
        guards = (guards_at(fn, sf, m.start())
                  + _ternary_guards(code, fn, m.start()))
        ival = refine(eval_expr(div, ev.env), div, guards, ev.env)
        if inner is not None:
            ival = ival.meet(refine(eval_expr(inner, ev.env), inner,
                                    guards, ev.env))
            if _nonzero_guarded(inner, ival, guards):
                continue
        if _nonzero_guarded(div, ival, guards):
            continue
        # A product is nonzero iff every factor is: decompose so a guard
        # on one factor (`calls > 0 ? x / (1e3 * calls) : ...`) plus a
        # literal factor discharges the whole divisor.
        factors = _product_factors(probe)
        if len(factors) > 1 and all(
                _factor_nonzero(f, guards, ev.env) for f in factors):
            continue
        op = "modulo" if m.group(1) == "%" else "division"
        out.append(Finding(
            rule="V2", slug="maybe-zero-divisor", path=fn.rel,
            line=line_no,
            message=(f"{op} by `{div}` in `{fn.qualname}` whose derived"
                     f" interval {ival} contains zero and no dominating"
                     " guard excludes it; a zero denominator here poisons"
                     " the Eq. 1 ratio (or traps) — guard with"
                     f" `BC_ASSERT({div} != 0)` / an early return the"
                     " analysis can see, or restructure the computation")))
    return out


def _product_factors(expr: str) -> list[str]:
    expr = expr.strip()
    while expr.startswith("(") and match_paren(expr, 0) == len(expr) - 1:
        expr = expr[1:-1].strip()
    parts = split_top_level(expr, "*/%")
    if any(p in ("/", "%") for p in parts):
        return [expr]  # quotients do not decompose multiplicatively
    return [p.strip() for p in parts if p.strip() and p != "*"]


def _factor_nonzero(factor: str, guards: list[str], env) -> bool:
    inner = _cast_payload(factor)
    probe = (inner if inner is not None else factor).strip()
    ival = refine(eval_expr(probe, env), probe, guards, env)
    return _nonzero_guarded(probe, ival, guards)


def _cast_payload(expr: str) -> str | None:
    m = CAST_RE.match(expr)
    if not m:
        return None
    close = match_paren(expr, m.end() - 1)
    if close == len(expr) - 1:
        return expr[m.end():close]
    return None


# --- V3 ----------------------------------------------------------------------


def _involves_i64(expr: str, rel: str, tables: _Tables,
                  widened: set[str]) -> str | None:
    """The first *leaf* identifier in `expr` that is int64-typed or
    loop-widened — the value-range narrowing evidence V3 requires. An
    identifier followed by `.`, `->`, `(`, `[` or `::` is an object,
    container or function base whose own name says nothing about the
    value produced (`out[i].peer` is as narrow as `peer`, whatever type
    some other `out` has)."""
    for m in re.finditer(r"[A-Za-z_]\w*", expr):
        tail = expr[m.end():].lstrip()
        if tail.startswith((".", "->", "(", "[", "::")):
            continue
        ident = m.group(0)
        if tables.is_i64(rel, ident):
            return ident
        # A loop-widened name is int64-scale evidence only when the file
        # does not itself declare it narrow or floating (`int piece` that
        # the loop widened is still an int-valued pick, not a Bytes sum).
        if ident in widened and ident not in tables.narrow.get(rel, ()) \
                and ident not in tables.floats.get(rel, ()):
            return ident
    return None


def _check_v3(fn: FunctionDef, sf: SourceFile, ev: FunctionEval,
              tables: _Tables) -> list[Finding]:
    code = sf.code
    out: list[Finding] = []

    def narrowing(target_type: str, target_range: Interval, expr: str,
                  off: int, how: str, float_target: bool = False) -> None:
        witness = _involves_i64(expr, fn.rel, tables, ev.widened)
        if witness is None:
            return
        # Float/double targets lose nothing below 2^53; per the rule's
        # charter the hazard is a *loop-carried* int64 accumulator pushed
        # past exact-double range — one-shot display conversions of a
        # bounded value are not evidence.
        if float_target and witness not in ev.widened:
            return
        guards = guards_at(fn, sf, off)
        ival = refine(eval_expr(expr, ev.env), expr, guards, ev.env)
        wival = refine(ev.env.get(witness), witness, guards, ev.env)
        if ival.fits(target_range.lo, target_range.hi) \
                or wival.fits(target_range.lo, target_range.hi):
            return
        carried = " (loop-widened accumulator)" if witness in ev.widened \
            else ""
        out.append(Finding(
            rule="V3", slug="value-narrowing", path=fn.rel,
            line=sf.line_at(off),
            message=(f"lossy narrowing: {how} stores `{expr.strip()}` with"
                     f" derived interval {ival} into {target_type}"
                     f" {target_range} in `{fn.qualname}` [witness:"
                     f" `{witness}` in {wival}{carried}]; the value range"
                     " does not fit — widen the destination, clamp"
                     " explicitly, or bound the source with a dominating"
                     " BC_ASSERT")))

    # Anchored scans start AT fn.start so first-statement sites match.
    for m in NARROW_DECL_RE.finditer(code, fn.start, fn.end):
        t = m.group(1)
        rng = NARROW_RANGES.get(t) or NARROW_RANGES.get(
            t.replace("std::", ""))
        if rng is None:
            if t in ("float", "double"):
                rng = Interval(-DOUBLE_EXACT_MAX, DOUBLE_EXACT_MAX)
            else:
                continue
        # `uint8_t a = 0, b = 0;` — only the first declarator's initializer
        # belongs to this name; the tail is a separate declaration.
        init = split_top_level(m.group(3), ",")[0]
        narrowing(t, rng, init, m.start(2),
                  f"initialization of `{m.group(2)}`",
                  float_target=t in ("float", "double"))
    for m in ASSIGN_RE.finditer(code, fn.start, fn.end):
        lhs, op, rhs = m.group(1), m.group(2), m.group(3)
        if op:
            continue
        base = final_identifier(lhs)
        if base is None or base not in tables.narrow.get(fn.rel, ()):
            continue
        if base in tables.floats.get(fn.rel, ()):
            # Floating target: only the loop-carried-past-2^53 hazard
            # applies (same charter as the float cast/init paths).
            rng = Interval(-DOUBLE_EXACT_MAX, DOUBLE_EXACT_MAX)
            narrowing("double", rng, rhs, m.start(1),
                      f"assignment to `{lhs.strip()}`", float_target=True)
            continue
        # The exact narrow type behind the name is not tracked; use the
        # widest narrow range (int32 join uint32) as a permissive default
        # so only genuinely int64-scale stores fire.
        rng = NARROW_RANGES["uint32_t"].join(NARROW_RANGES["int"])
        narrowing("a narrower-than-int64 type", rng, rhs, m.start(1),
                  f"assignment to `{lhs.strip()}`")
    for m in CAST_RE.finditer(code, fn.start + 1, fn.end):
        t = re.sub(r"\s+|const", "", m.group(1))
        rng = NARROW_RANGES.get(t) or NARROW_RANGES.get(
            t.replace("std::", ""))
        is_float = t in ("float", "double")
        if rng is None:
            if is_float:
                rng = Interval(-DOUBLE_EXACT_MAX, DOUBLE_EXACT_MAX)
            else:
                continue
        close = match_paren(code, m.end() - 1)
        if close < 0 or close > fn.end:
            continue
        inner = code[m.end():close]
        # The syntactic B1 rule owns Bytes-expression casts; V3 adds the
        # value-range dimension for non-Bytes int64 derivations so the two
        # rules do not double-report one site.
        if final_identifier(inner) in sf.bytes_vars:
            continue
        narrowing(f"static_cast<{m.group(1).strip()}>", rng, inner,
                  m.start(), "cast of", float_target=is_float)
    return out


# --- V4 ----------------------------------------------------------------------


def _size_facts(fn: FunctionDef, sf: SourceFile, offset: int,
                ev: FunctionEval) -> dict[str, tuple[str, Interval]]:
    """container name -> (size expression text, element-count interval)
    from resize/assign calls and sized vector constructions textually
    before `offset` in the body."""
    facts: dict[str, tuple[str, Interval]] = {}
    for pat in (SIZE_FACT_RE, SIZED_CTOR_RE):
        for m in pat.finditer(sf.code, fn.start + 1, offset):
            facts[m.group(1)] = (m.group(2), eval_expr(m.group(2), ev.env))
    return facts


def _index_bounded(idx: str, cont: str, fn: FunctionDef, sf: SourceFile,
                   off: int, ev: FunctionEval) -> bool:
    guards = guards_at(fn, sf, off)
    gnorms = [re.sub(r"\s+", "", g) for g in guards]
    norm = re.sub(r"\s+", "", idx)
    # `buf[cursor++]` / `buf[--n]`: the bound must cover the pre-step value.
    stepped = re.fullmatch(r"(?:\+\+|--)?([A-Za-z_]\w*)(?:\+\+|--)?", norm)
    probe = stepped.group(1) if stepped else norm
    for gn in gnorms:
        m = re.match(r"^(.+?)(<|<=)(.+)$", gn)
        if not m or "=" in m.group(1)[-1:]:
            continue
        left, right = m.group(1), m.group(3)
        if left == probe or left == norm:
            return True
        # Offset form: `v[i + k]` sanctioned by `i < bound - k` or
        # `i + k < bound`.
        om = re.fullmatch(r"([A-Za-z_]\w*)\+(\d+)", norm)
        if om and left == om.group(1) and right.endswith(f"-{om.group(2)}"):
            return True
    facts = _size_facts(fn, sf, off, ev)
    # Decrement form `v[n - k]`: interval proof that n >= k, with an upper
    # bound tying n to the container — a guard, a `cont.size()` mention,
    # or a size fact recording that cont was sized with exactly `n`.
    om = re.fullmatch(r"([A-Za-z_]\w*)-(\d+)", norm)
    if om:
        n_name, k = om.group(1), int(om.group(2))
        nv = refine(ev.env.get(n_name), n_name, guards, ev.env)
        upper_ok = any(gn.startswith(f"{n_name}<=")
                       or gn.startswith(f"{n_name}<")
                       for gn in gnorms)
        sized_by_n = (cont in facts
                      and re.sub(r"\s+", "", facts[cont][0]) == n_name)
        if nv.lo >= k and (upper_ok or sized_by_n
                           or f"{cont}.size()" in "".join(gnorms)):
            return True
    # Interval proof against a recorded resize/assign/construction fact.
    if cont in facts:
        size = facts[cont][1]
        ival = refine(eval_expr(idx, ev.env), idx, guards, ev.env)
        if not size.is_bottom() and size.lo != -INF \
                and ival.fits(0, size.lo - 1):
            return True
    return False


def _check_v4(fn: FunctionDef, sf: SourceFile,
              ev: FunctionEval) -> list[Finding]:
    code = sf.code
    out: list[Finding] = []
    for m in SUBSCRIPT_RE.finditer(code, fn.start + 1, fn.end):
        cont, idx = m.group(1), m.group(2)
        if "(" in idx:
            continue  # call-containing indexes: out of the domain's reach
        clean = idx.replace("->", ".")
        if not re.search(r"\+\+|--|[+\-*]", clean):
            continue  # plain `v[i]` indexing is B-rule/asan territory
        if not re.search(r"[A-Za-z_]", clean):
            continue  # constant arithmetic folds at compile time
        # `Type name[expr]` declarations and `new T[n]`: a size, not an
        # access. Two adjacent identifiers (`Foo bar[...]`) can only be a
        # declarator in C++ — unless the first is an expression keyword
        # (`return arr[i + 1]` is an access).
        j = m.start() - 1
        while j > fn.start and code[j] in " \t\n":
            j -= 1
        if code[j].isalnum() or code[j] == "_":
            k = j
            while k > fn.start and (code[k].isalnum() or code[k] == "_"):
                k -= 1
            word = code[k + 1:j + 1]
            if word not in ("return", "case", "else", "co_return",
                            "co_yield", "throw"):
                continue
        if _index_bounded(idx, cont, fn, sf, m.start(), ev):
            continue
        guards = guards_at(fn, sf, m.start())
        ival = refine(eval_expr(idx, ev.env), idx, guards, ev.env)
        out.append(Finding(
            rule="V4", slug="unbounded-index", path=fn.rel,
            line=sf.line_at(m.start()),
            message=(f"index arithmetic `{cont}[{idx.strip()}]` in"
                     f" `{fn.qualname}` with derived index interval"
                     f" {ival} and no dominating size bound; prove it"
                     f" with `BC_ASSERT({idx.strip()} <"
                     f" {cont}.size())` (or a loop condition / resize"
                     " fact the interval analysis can see) before the"
                     " access")))
    return out
