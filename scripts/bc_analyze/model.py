"""Finding and suppression data types shared by the frontends and rules."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and 1-based line."""

    rule: str  # "D1" .. "B2", "SUP"
    slug: str  # human-readable rule name, e.g. "unordered-iteration"
    path: str  # repo-relative path
    line: int
    message: str

    def human(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule} {self.slug}] {self.message}"

    def github(self) -> str:
        # GitHub annotation commands must stay on one line.
        msg = self.message.replace("\n", " ")
        return (
            f"::error file={self.path},line={self.line},"
            f"title=bc-analyze {self.rule} {self.slug}::{msg}"
        )

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)


@dataclass
class Suppression:
    """A parsed `// bc-analyze: allow(<rules>) -- <reason>` marker."""

    path: str
    marker_line: int  # line the comment sits on
    target_line: int  # line the suppression applies to
    rules: tuple[str, ...]
    reason: str
    used: bool = field(default=False)

    def covers(self, rule: str, line: int) -> bool:
        return line == self.target_line and rule in self.rules
