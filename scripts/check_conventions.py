#!/usr/bin/env python3
"""Repo-convention linter for the BarterCast tree.

Enforces the conventions clang-tidy cannot express:

  raw-assert       no raw assert(): use BC_ASSERT / BC_ASSERT_MSG (always on)
                   or BC_DASSERT (debug only) from util/assert.hpp
  libc-rand        no std::rand / rand() / srand(): all randomness must flow
                   through util/rng.hpp so runs stay seed-deterministic
  assert-include   files calling BC_ASSERT* / BC_DASSERT must include
                   "util/assert.hpp" themselves (no transitive reliance)
  pragma-once      every header starts its preprocessor life with #pragma once
  include-style    project headers are included as "module/file.hpp" (quoted,
                   rooted at src/), never <module/file.hpp> or "../relative"
  using-namespace  no using-namespace directives in headers

Usage: scripts/check_conventions.py [paths...]   (default: src tests bench examples)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "tests", "bench", "examples"]

# Top-level project include roots (directories under src/).
PROJECT_MODULES = sorted(
    p.name for p in (REPO_ROOT / "src").iterdir() if p.is_dir()
)

RAW_ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
LIBC_RAND_RE = re.compile(r"std::s?rand\b|(?<![\w:.])s?rand\s*\(")
BC_ASSERT_USE_RE = re.compile(r"\bBC_D?ASSERT(?:_MSG)?\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^">]+)[">]')
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+")

# Files allowed to break specific rules.
EXEMPT = {
    "raw-assert": {"src/util/assert.hpp"},
    "assert-include": {"src/util/assert.hpp"},
    # bc-analyze's intentionally-bad fixture exercises rule D3 with libc
    # rand(); it is analyzer test data, never compiled into the project.
    "libc-rand": {"tests/analysis_tool/fixtures/bad/d3_random.cpp"},
}


def strip_comments_and_strings(line: str, in_block: bool) -> tuple[str, bool]:
    """Blanks out string/char literals, // and /* */ comment content.

    Keeps column positions stable so reported text stays recognizable.
    Returns the scrubbed line and whether a block comment continues.
    """
    out = []
    i = 0
    n = len(line)
    state = "block" if in_block else "code"
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                break  # rest of line is a comment
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        elif state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append(c)
            i += 1
        elif state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append(c)
            i += 1
    return "".join(out), state == "block"


class Checker:
    def __init__(self) -> None:
        self.findings: list[str] = []

    @staticmethod
    def rel(path: Path) -> Path:
        try:
            return path.relative_to(REPO_ROOT)
        except ValueError:
            return path

    def fail(self, rule: str, path: Path, lineno: int, message: str) -> None:
        rel = self.rel(path)
        if str(rel) in EXEMPT.get(rule, set()):
            return
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def check_file(self, path: Path) -> None:
        is_header = path.suffix == ".hpp"
        text = path.read_text(encoding="utf-8")
        raw_lines = text.splitlines()

        code_lines: list[str] = []
        in_block = False
        for line in raw_lines:
            code, in_block = strip_comments_and_strings(line, in_block)
            code_lines.append(code)

        uses_bc_assert = False
        includes_assert_hpp = False
        saw_pragma_once = False
        saw_preprocessor_or_code = False

        for lineno, (code, raw) in enumerate(
            zip(code_lines, raw_lines), start=1
        ):
            stripped = code.strip()

            if is_header and stripped == "#pragma once":
                if saw_preprocessor_or_code:
                    self.fail(
                        "pragma-once", path, lineno,
                        "#pragma once must precede all other code",
                    )
                saw_pragma_once = True
            if stripped and stripped != "#pragma once":
                saw_preprocessor_or_code = True

            if RAW_ASSERT_RE.search(code) and "static_assert" not in code:
                self.fail(
                    "raw-assert", path, lineno,
                    "raw assert(); use BC_ASSERT / BC_DASSERT from"
                    ' "util/assert.hpp"',
                )

            if LIBC_RAND_RE.search(code):
                self.fail(
                    "libc-rand", path, lineno,
                    "libc rand/srand breaks seeded determinism; use"
                    ' bc::Rng from "util/rng.hpp"',
                )

            if BC_ASSERT_USE_RE.search(code) and "#define" not in code:
                uses_bc_assert = True

            # Includes are matched on the raw line: the scrubber blanks the
            # quoted path as if it were a string literal.
            m = INCLUDE_RE.match(raw)
            if m:
                kind, target = m.group(1), m.group(2)
                if target == "util/assert.hpp":
                    includes_assert_hpp = True
                top = target.split("/", 1)[0]
                if kind == "<" and top in PROJECT_MODULES:
                    self.fail(
                        "include-style", path, lineno,
                        f"project header <{target}> must use quotes",
                    )
                if kind == '"' and target.startswith(("./", "../")):
                    self.fail(
                        "include-style", path, lineno,
                        f'relative include "{target}"; include project headers'
                        " rooted at src/ (e.g. \"util/ids.hpp\")",
                    )

            if is_header and USING_NAMESPACE_RE.match(stripped):
                self.fail(
                    "using-namespace", path, lineno,
                    "using-namespace directive in a header leaks into every"
                    " includer",
                )

        if is_header and not saw_pragma_once:
            self.fail("pragma-once", path, 1, "header is missing #pragma once")

        if uses_bc_assert and not includes_assert_hpp:
            self.fail(
                "assert-include", path, 1,
                'file uses BC_ASSERT/BC_DASSERT but does not include'
                ' "util/assert.hpp" itself',
            )


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in paths:
        p = (REPO_ROOT / arg) if not Path(arg).is_absolute() else Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.hpp")))
            files.extend(sorted(p.rglob("*.cpp")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"check_conventions: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: list[str]) -> int:
    paths = argv[1:] or DEFAULT_PATHS
    files = collect(paths)
    checker = Checker()
    for f in files:
        checker.check_file(f)
    for finding in checker.findings:
        print(finding)
    if checker.findings:
        print(
            f"check_conventions: {len(checker.findings)} finding(s) in"
            f" {len(files)} files",
            file=sys.stderr,
        )
        return 1
    print(f"check_conventions: OK ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
