#!/usr/bin/env python3
"""bc-analyze CLI: BarterCast determinism & byte-accounting analyzer.

Usage:
  scripts/bc_analyze.py [paths...] [--build-dir DIR] [--frontend F]
                        [--github] [--list-rules]

Exit status: 0 clean, 1 findings, 2 usage/infrastructure error.
See scripts/bc_analyze/__init__.py and DESIGN.md section 9 for the rule
catalogue and suppression policy.
"""

import sys
from pathlib import Path

SCRIPTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = SCRIPTS_DIR.parent
sys.path.insert(0, str(SCRIPTS_DIR))

from bc_analyze.engine import run  # noqa: E402

if __name__ == "__main__":
    sys.exit(run(sys.argv[1:], REPO_ROOT))
