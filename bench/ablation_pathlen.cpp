// Ablation: maxflow path-length bound (paper §3.2).
//
// The paper restricts maxflow to paths of at most two edges, citing the
// small-world effect (98% of peer pairs within two hops). This ablation
// runs the same small community under path bounds 1, 2 and unbounded and
// compares (a) how well the resulting system reputation tracks real net
// contribution and (b) the run's wall-clock cost. The expected result — the
// paper's design point — is that length 2 captures nearly all the accuracy
// of unbounded maxflow at a fraction of the cost, while length 1 (direct
// experience only) loses accuracy.
#include <chrono>
#include <cstdio>

#include "analysis/experiment.hpp"
#include "community/simulator.hpp"
#include "figure_common.hpp"
#include "trace/generator.hpp"

using namespace bc;

namespace {

struct Result {
  double pearson;
  double spearman;
  double wall_s;
};

Result run_mode(bartercast::MaxflowMode mode, int max_path_edges) {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 55;
  tcfg.num_peers = 30;
  tcfg.num_swarms = 4;
  tcfg.duration = 2.0 * kDay;
  tcfg.file_size_max = mib(700);

  community::ScenarioConfig cfg;
  cfg.seed = 55;
  cfg.node.reputation.mode = mode;
  cfg.node.reputation.max_path_edges = max_path_edges;
  cfg.reputation_probe_interval = 4.0 * kHour;

  // bc-analyze: allow(D2) -- benchmark wall-time measurement around the run; never feeds simulation state
  const auto start = std::chrono::steady_clock::now();
  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  const double wall =
      // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return Result{analysis::contribution_correlation(sim.metrics()),
                analysis::contribution_rank_correlation(sim.metrics()),
                wall};
}

}  // namespace

int main() {
  bench::print_header("Ablation", "maxflow path-length bound");
  Table t({"variant", "pearson", "spearman", "wall_s"});

  const Result direct =
      run_mode(bartercast::MaxflowMode::kBoundedFordFulkerson, 1);
  t.add_row({"paths<=1 (direct only)", fmt(direct.pearson, 3),
             fmt(direct.spearman, 3), fmt(direct.wall_s, 1)});

  const Result two = run_mode(bartercast::MaxflowMode::kTwoHopExact, 2);
  t.add_row({"paths<=2 closed form (paper)", fmt(two.pearson, 3),
             fmt(two.spearman, 3), fmt(two.wall_s, 1)});

  const Result two_ff =
      run_mode(bartercast::MaxflowMode::kBoundedFordFulkerson, 2);
  t.add_row({"paths<=2 Ford-Fulkerson", fmt(two_ff.pearson, 3),
             fmt(two_ff.spearman, 3), fmt(two_ff.wall_s, 1)});

  const Result full = run_mode(bartercast::MaxflowMode::kFullFordFulkerson, 0);
  t.add_row({"unbounded Ford-Fulkerson", fmt(full.pearson, 3),
             fmt(full.spearman, 3), fmt(full.wall_s, 1)});

  std::printf("%s", t.to_string().c_str());
  std::printf("\nExpected shape: two-hop ~= unbounded accuracy, much lower "
              "cost; the two paths<=2 variants agree (same maxflow, "
              "different algorithm).\n");
  const bool agree = std::abs(two.pearson - two_ff.pearson) < 1e-9;
  const bool useful = two.pearson > 0.0;
  std::printf("shape check (two-hop variants agree, correlation > 0): %s\n",
              agree && useful ? "PASS" : "FAIL");
  return agree && useful ? 0 : 1;
}
