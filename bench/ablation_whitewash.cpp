// Extension experiment: whitewashing and stranger policies (paper §3.5).
//
// The paper's deployed system assumes permanent, machine-bound identifiers
// and defers cheap-identity policies to future work. This experiment
// implements that future work: a service community where providers grant
// service by BarterCast reputation under the ban policy, consumers either
// reciprocate (honest) or freeride, and freeriders may *whitewash* — assume
// a fresh identity whenever their reputation falls below the ban threshold.
//
// Compared configurations:
//   permanent           — identities cannot be shed (deployed Tribler);
//   cheap + neutral     — whitewashing possible, strangers fully served;
//   cheap + fixed(-.25) — strangers served at a fixed discount;
//   cheap + adaptive    — strangers served in proportion to the EWMA of
//                         the reputations known peers present when asking
//                         for service (Feldman-style adaptive policy).
//
// Known peers are served under the plain ban rule; strangers are served
// with probability p = clamp(1 + penalty/|ban threshold|, 0, 1), the graded
// Feldman service rule (a binary ban cannot express a mild penalty). The
// adaptive estimator implements Feldman's rule faithfully: each provider
// remembers when it first served a stranger and, a few rounds later,
// observes what reputation that former stranger turned out to earn.
//
// Expected shape (the classic whitewashing result): with cheap identities
// and no penalty, freeriders regain full service by washing; a stranger
// penalty curbs the washing payoff but taxes honest newcomers too;
// permanent identities avoid the dilemma entirely.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bartercast/node.hpp"
#include "identity/identity.hpp"
#include "identity/stranger.hpp"
#include "util/checked.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace bc;
using namespace bc::bartercast;
using namespace bc::identity;

namespace {

constexpr double kBanThreshold = -0.5;
constexpr Bytes kChunk = gib(2.0);
constexpr int kRounds = 120;
constexpr std::size_t kProviders = 12;
constexpr Bytes kShare = kChunk / static_cast<Bytes>(kProviders);
constexpr std::size_t kHonest = 10;
constexpr std::size_t kWashers = 10;

struct Outcome {
  double honest_gib = 0.0;        // per honest veteran user
  double washer_gib = 0.0;        // per whitewashing freerider
  double newcomer_gib = 0.0;      // honest user arriving mid-experiment
  double washes_per_freerider = 0.0;
};

constexpr int kMaturity = 5;  // rounds between first service and judgment

Outcome run(IdentityScheme scheme, StrangerPolicy policy) {
  IdentityManager ids(scheme);
  ReputationEngine engine;
  Rng rng(1234);  // deterministic graded-service draws
  // Per provider: identities first served as strangers, awaiting judgment.
  std::vector<std::unordered_map<PeerId, int>> first_served(kProviders);

  // Providers are fixed, mutually known infrastructure peers with large ids
  // so identity minting (starting at 0) never collides.
  std::vector<Node> providers;
  std::vector<AdaptiveStrangerEstimator> estimators(
      kProviders, AdaptiveStrangerEstimator(0.2));
  providers.reserve(kProviders);
  for (std::size_t p = 0; p < kProviders; ++p) {
    providers.emplace_back(static_cast<PeerId>(1'000'000 + p));
  }

  struct User {
    UserId user;
    bool honest;
    bool newcomer;
    Bytes received = 0;
  };
  std::vector<User> users;
  UserId next_user = 0;
  for (std::size_t i = 0; i < kHonest; ++i) {
    users.push_back({next_user, true, false, 0});
    ids.register_user(next_user++);
  }
  for (std::size_t i = 0; i < kWashers; ++i) {
    users.push_back({next_user, false, false, 0});
    ids.register_user(next_user++);
  }
  // One honest newcomer joins halfway, measuring the policy's tax on
  // legitimate new users.
  bool newcomer_added = false;

  Seconds now = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    // Judge matured former strangers (Feldman's adaptive observation).
    for (std::size_t p = 0; p < kProviders; ++p) {
      for (auto it = first_served[p].begin(); it != first_served[p].end();) {
        if (round - it->second >= kMaturity) {
          estimators[p].observe(engine.reputation(
              providers[p].view().graph(), providers[p].id(), it->first));
          it = first_served[p].erase(it);
        } else {
          ++it;
        }
      }
    }
    if (round == kRounds / 2 && !newcomer_added) {
      users.push_back({next_user, true, true, 0});
      ids.register_user(next_user++);
      newcomer_added = true;
    }
    for (auto& user : users) {
      const PeerId id = ids.current_identity(user.user);
      bool banned_everywhere = true;
      for (std::size_t p = 0; p < kProviders; ++p) {
        Node& provider = providers[p];
        const auto& graph = provider.view().graph();
        bool serve = false;
        const bool stranger =
            StrangerPolicy::is_stranger(engine, graph, provider.id(), id);
        if (stranger) {
          // Graded Feldman service rule for strangers.
          const double penalty = policy.effective_reputation(
              engine, graph, provider.id(), id, estimators[p]);
          const double prob =
              std::clamp(1.0 + penalty / -kBanThreshold, 0.0, 1.0);
          serve = rng.chance(prob);
        } else {
          serve = engine.reputation(graph, provider.id(), id) >=
                  kBanThreshold;
        }
        if (!serve) continue;
        if (stranger) first_served[p].emplace(id, round);
        banned_everywhere = false;
        provider.on_bytes_sent(id, kShare, now);
        user.received = bc::util::checked_add(user.received, kShare);
        if (user.honest) {
          // Honest users reciprocate in kind.
          provider.on_bytes_received(id, kShare, now);
        }
      }
      // A freerider refused everywhere whitewashes if identities are cheap.
      if (!user.honest && banned_everywhere &&
          scheme == IdentityScheme::kCheap) {
        ids.whitewash(user.user);
      }
      now += 1.0;
    }
  }

  Outcome out;
  double washes = 0.0;
  for (const auto& user : users) {
    if (user.newcomer) {
      out.newcomer_gib = to_gib(user.received);
    } else if (user.honest) {
      out.honest_gib += to_gib(user.received) / static_cast<double>(kHonest);
    } else {
      out.washer_gib += to_gib(user.received) / static_cast<double>(kWashers);
      washes += static_cast<double>(ids.identity_count(user.user)) - 1.0;
    }
  }
  out.washes_per_freerider = washes / static_cast<double>(kWashers);
  return out;
}

}  // namespace

int main() {
  std::printf("Whitewashing & stranger policies (extension of paper §3.5)\n");
  std::printf("%zu providers, %zu honest users, %zu freeriders, %d rounds, "
              "ban threshold %.1f\n\n",
              kProviders, kHonest, kWashers, kRounds, kBanThreshold);

  Table t({"scheme", "honest_GiB", "freerider_GiB", "newcomer_GiB",
           "washes/freerider"});
  const Outcome permanent =
      run(IdentityScheme::kPermanent, StrangerPolicy::neutral());
  t.add_row({"permanent ids", fmt(permanent.honest_gib, 1),
             fmt(permanent.washer_gib, 1), fmt(permanent.newcomer_gib, 1),
             fmt(permanent.washes_per_freerider, 1)});
  const Outcome neutral =
      run(IdentityScheme::kCheap, StrangerPolicy::neutral());
  t.add_row({"cheap + neutral strangers", fmt(neutral.honest_gib, 1),
             fmt(neutral.washer_gib, 1), fmt(neutral.newcomer_gib, 1),
             fmt(neutral.washes_per_freerider, 1)});
  const Outcome fixed =
      run(IdentityScheme::kCheap, StrangerPolicy::fixed(-0.25));
  t.add_row({"cheap + fixed(-0.25)", fmt(fixed.honest_gib, 1),
             fmt(fixed.washer_gib, 1), fmt(fixed.newcomer_gib, 1),
             fmt(fixed.washes_per_freerider, 1)});
  const Outcome adaptive =
      run(IdentityScheme::kCheap, StrangerPolicy::adaptive());
  t.add_row({"cheap + adaptive", fmt(adaptive.honest_gib, 1),
             fmt(adaptive.washer_gib, 1), fmt(adaptive.newcomer_gib, 1),
             fmt(adaptive.washes_per_freerider, 1)});
  std::printf("%s", t.to_string().c_str());

  const bool washing_pays = neutral.washer_gib > 1.3 * permanent.washer_gib;
  const bool adaptive_curbs = adaptive.washer_gib < 0.9 * neutral.washer_gib;
  const bool honest_unhurt = adaptive.honest_gib > 0.9 * neutral.honest_gib;
  std::printf("\nshape checks: washing pays without penalty: %s; adaptive "
              "curbs washing: %s; honest veterans unaffected: %s\n",
              washing_pays ? "PASS" : "FAIL",
              adaptive_curbs ? "PASS" : "FAIL",
              honest_unhurt ? "PASS" : "FAIL");
  return washing_pays && adaptive_curbs && honest_unhurt ? 0 : 1;
}
