// Obs-overhead bench: what does instrumentation cost on the hot path?
//
// Measures ns/op of each obs instrument against an uninstrumented baseline
// loop (xorshift64 accumulation — cheap enough that any instrument cost
// shows, real enough that the compiler cannot delete it):
//
//   - Counter::inc() via a per-chunk shard (the parallel-sweep hot path)
//   - Counter::inc() via the relaxed-atomic fallback (no shards)
//   - LogHistogram::observe() (frexp bucketing + fixed-point sum)
//   - BC_OBS_SCOPE with the profiler *disabled* (the default for every run)
//   - the `if (tracer.enabled())` guard with the tracer *disabled*
//
// The acceptance bar is on the two disabled paths: they gate every default
// (un-instrumented-looking) run of the simulator, so their overhead must
// stay within noise of the baseline — the bar is kDisabledBudgetNs per op.
// Each measurement is the minimum over kRepeats passes, which removes
// scheduler noise without hiding systematic cost.
//
// Also reports LogHistogram memory: O(buckets) by construction, so the
// footprint is asserted identical before and after the observe pass.
//
// Results go to BENCH_obs.json (override with BC_BENCH_OUT). Exit code 1
// when a disabled path exceeds the budget, so CI can gate on it.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_writer.hpp"
#include "util/table.hpp"

using namespace bc;

namespace {

constexpr std::size_t kIters = 4'000'000;
constexpr int kRepeats = 7;
constexpr double kDisabledBudgetNs = 5.0;

/// Keeps `x` alive across the loop without a memory round-trip.
inline void keep(std::uint64_t& x) { asm volatile("" : "+r"(x)); }

inline std::uint64_t xorshift(std::uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

template <typename Body>
double ns_per_op(Body&& body) {
  double best = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds
    // simulation state
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kIters; ++i) {
      x = xorshift(x);
      body(x);
      keep(x);
    }
    // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds
    // simulation state
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(kIters);
    best = std::min(best, ns);
  }
  return best;
}

std::string fmt3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main() {
  std::printf("Obs-overhead bench: instrument cost per op (min of %d x %zu "
              "iterations)\n\n",
              kRepeats, kIters);

  auto& registry = obs::Registry::instance();
  auto& profiler = obs::Profiler::instance();
  auto& tracer = obs::Tracer::instance();
  profiler.set_enabled(false);
  tracer.set_enabled(false);

  const double baseline = ns_per_op([](std::uint64_t) {});

  obs::Counter& atomic_counter = registry.counter("bench.atomic_counter");
  const double counter_atomic =
      ns_per_op([&](std::uint64_t) { atomic_counter.inc(); });

  obs::Counter& shard_counter = registry.counter("bench.shard_counter");
  shard_counter.enable_shards(8);  // slot 0 routes to shard 0: the pool path
  const double counter_shard =
      ns_per_op([&](std::uint64_t) { shard_counter.inc(); });

  obs::LogHistogram& hist =
      registry.log_histogram("bench.values", obs::LogSpec::magnitude());
  const std::size_t buckets_before = hist.num_buckets();
  const double observe = ns_per_op(
      [&](std::uint64_t x) { hist.observe(static_cast<double>(x >> 32)); });
  // O(buckets) memory: recording kRepeats * kIters values must not grow it.
  BC_ASSERT(hist.num_buckets() == buckets_before);
  const std::size_t hist_bytes =
      hist.num_buckets() * sizeof(std::uint64_t) *
      (1 + registry.shard_slots());

  const double profile_disabled = ns_per_op([&](std::uint64_t) {
    BC_OBS_SCOPE("bench.disabled_scope");
  });

  const double tracer_disabled = ns_per_op([&](std::uint64_t x) {
    if (tracer.enabled()) {
      tracer.instant("bench.never", "bench", static_cast<double>(x));
    }
  });

  const double over_profile = profile_disabled - baseline;
  const double over_tracer = tracer_disabled - baseline;

  Table t({"path", "ns_per_op", "overhead_ns"});
  t.add_row({"baseline (xorshift64)", fmt3(baseline), "-"});
  t.add_row({"counter.inc (shard)", fmt3(counter_shard),
             fmt3(counter_shard - baseline)});
  t.add_row({"counter.inc (atomic fallback)", fmt3(counter_atomic),
             fmt3(counter_atomic - baseline)});
  t.add_row({"log_histogram.observe", fmt3(observe),
             fmt3(observe - baseline)});
  t.add_row({"BC_OBS_SCOPE, profiler off", fmt3(profile_disabled),
             fmt3(over_profile)});
  t.add_row({"tracer guard, tracer off", fmt3(tracer_disabled),
             fmt3(over_tracer)});
  std::printf("%s", t.to_string().c_str());
  std::printf("\nlog histogram: %zu buckets, ~%zu bytes (independent of the "
              "%zu values recorded)\n",
              hist.num_buckets(), hist_bytes,
              static_cast<std::size_t>(kRepeats) * kIters);

  std::string json = "{\n  \"bench\": \"obs_overhead\",\n";
  json += "  \"iters\": " + std::to_string(kIters) +
          ", \"repeats\": " + std::to_string(kRepeats) + ",\n";
  json += "  \"baseline_ns\": " + fmt3(baseline) + ",\n";
  json += "  \"counter_shard_ns\": " + fmt3(counter_shard) + ",\n";
  json += "  \"counter_atomic_ns\": " + fmt3(counter_atomic) + ",\n";
  json += "  \"log_histogram_observe_ns\": " + fmt3(observe) + ",\n";
  json += "  \"profile_scope_disabled_ns\": " + fmt3(profile_disabled) + ",\n";
  json += "  \"tracer_guard_disabled_ns\": " + fmt3(tracer_disabled) + ",\n";
  json += "  \"disabled_overhead_ns\": {\"profile_scope\": " +
          fmt3(over_profile) + ", \"tracer_guard\": " + fmt3(over_tracer) +
          ", \"budget\": " + fmt3(kDisabledBudgetNs) + "},\n";
  json += "  \"log_histogram_buckets\": " + std::to_string(hist.num_buckets()) +
          ", \"log_histogram_bytes\": " + std::to_string(hist_bytes) + "\n";
  json += "}\n";

  const char* out_path = std::getenv("BC_BENCH_OUT");
  const std::string path = out_path != nullptr ? out_path : "BENCH_obs.json";
  if (obs::write_text_file(path, json)) {
    std::printf("\nobs bench JSON written to %s\n", path.c_str());
  }

  if (over_profile > kDisabledBudgetNs || over_tracer > kDisabledBudgetNs) {
    std::printf("WARNING: disabled-path overhead (profile %.3f ns, tracer "
                "%.3f ns) exceeds the %.1f ns budget\n",
                over_profile, over_tracer, kDisabledBudgetNs);
    return 1;
  }
  return 0;
}
