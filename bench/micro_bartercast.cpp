// Microbenchmarks of the BarterCast node operations (google-benchmark):
// message construction, message application, and reputation evaluation as a
// function of history/graph size. These are the operations a deployed
// client performs continuously (the paper stresses that BarterCast must be
// "lightweight" — this bench makes that claim measurable).
#include <benchmark/benchmark.h>

#include "bartercast/node.hpp"
#include "util/rng.hpp"

namespace {

using namespace bc;
using namespace bc::bartercast;

/// A node that has bartered with `history_size` peers.
Node make_busy_node(PeerId self, std::size_t history_size,
                    std::uint64_t seed) {
  Rng rng(seed);
  Node n(self);
  for (std::size_t i = 0; i < history_size; ++i) {
    const auto remote = static_cast<PeerId>(1000 + i);
    n.on_bytes_sent(remote, rng.uniform_int(kMiB, kGiB),
                    static_cast<Seconds>(i));
    n.on_bytes_received(remote, rng.uniform_int(kMiB, kGiB),
                        static_cast<Seconds>(i));
  }
  return n;
}

void BM_BuildMessage(benchmark::State& state) {
  const auto node =
      make_busy_node(0, static_cast<std::size_t>(state.range(0)), 1);
  Seconds t = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.make_message(t));
    t += 1.0;
  }
}
BENCHMARK(BM_BuildMessage)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ApplyMessage(benchmark::State& state) {
  // Fresh receiver applying the same 20-record message repeatedly measures
  // the max-merge upsert path.
  auto sender = make_busy_node(1, 100, 2);
  const auto msg = sender.make_message(1e6);
  Node receiver(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(receiver.receive_message(msg));
  }
}
BENCHMARK(BM_ApplyMessage);

void BM_ReputationColdCache(benchmark::State& state) {
  // Evaluator with a populated subjective graph; each iteration evaluates a
  // different subject so the version cache never hits.
  const auto population = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Node evaluator(0);
  // Direct edges to anchor two-hop paths.
  for (PeerId p = 1; p < 50; ++p) {
    evaluator.on_bytes_received(p, rng.uniform_int(kMiB, kGiB), 0.0);
    evaluator.on_bytes_sent(p, rng.uniform_int(kMiB, kGiB), 0.0);
  }
  // Gossip: every population peer reports barter with the anchors.
  for (std::size_t i = 0; i < population; ++i) {
    const auto subject = static_cast<PeerId>(100 + i);
    BarterCastMessage msg;
    msg.sender = subject;
    for (PeerId anchor = 1; anchor < 20; ++anchor) {
      BarterRecord r;
      r.subject = subject;
      r.other = anchor;
      r.subject_to_other = rng.uniform_int(kMiB, kGiB);
      r.other_to_subject = rng.uniform_int(kMiB, kGiB);
      msg.records.push_back(r);
    }
    evaluator.receive_message(msg);
  }
  // Evaluate through the engine directly: the Node's version-keyed cache
  // would otherwise absorb everything after one sweep (see
  // BM_ReputationWarmCache for the cached path).
  ReputationEngine engine;
  PeerId next = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.reputation(evaluator.view().graph(), evaluator.id(), next));
    // bc-analyze: allow(V2) -- population is the benchmark Arg (100/1000/10000), never zero
    next = 100 + (next - 100 + 1) % static_cast<PeerId>(population);
  }
}
BENCHMARK(BM_ReputationColdCache)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ReputationWarmCache(benchmark::State& state) {
  auto evaluator = make_busy_node(0, 100, 4);
  benchmark::DoNotOptimize(evaluator.reputation(1000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.reputation(1000));
  }
}
BENCHMARK(BM_ReputationWarmCache);

void BM_RecordTransfer(benchmark::State& state) {
  Node n(0);
  Seconds t = 0.0;
  PeerId remote = 1;
  for (auto _ : state) {
    n.on_bytes_sent(remote, 16384, t);
    t += 1.0;
    remote = 1 + (remote % 500);
  }
}
BENCHMARK(BM_RecordTransfer);

}  // namespace

BENCHMARK_MAIN();
