// Figure 4 reproduction — deployment measurement (§5.5).
//
// One instrumented peer logs the BarterCast messages of ~5000 peers for a
// month (synthetic population, see DESIGN.md §2) and reports:
// (a) per-peer upload minus download, sorted — the paper shows a majority
//     of net downloaders, a mass at exactly zero (fresh installs) and a few
//     multi-gigabyte altruists;
// (b) the CDF of the reputations of those peers as computed by the
//     observer — about 40% negative, ~50% around zero, ~10% positive.
#include <algorithm>
#include <cstdio>
#include <vector>

#include <filesystem>

#include "analysis/deployment_observer.hpp"
#include "analysis/plot.hpp"
#include "figure_common.hpp"
#include "trace/deployment.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

using namespace bc;

int main() {
  bench::print_header("Figure 4", "one-month deployment observation");

  trace::DeploymentConfig dcfg;
  dcfg.seed = 44;
  dcfg.num_peers = bench::quick_mode() ? 1000 : 5000;
  const auto population = trace::generate_deployment(dcfg);

  analysis::ObserverConfig ocfg;
  ocfg.seed = 45;
  const auto result = analysis::run_observer(population, ocfg);

  // (a) sorted net contribution, sampled at percentiles for the table.
  std::vector<Bytes> sorted = result.net_contribution;
  std::sort(sorted.begin(), sorted.end());
  std::printf("\n(a) upload - download, sorted (percentile samples):\n");
  Table ta({"percentile", "net_contribution"});
  for (int pct : {0, 5, 10, 25, 40, 50, 60, 75, 90, 95, 99, 100}) {
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(static_cast<double>(pct) / 100.0 *
                                 static_cast<double>(sorted.size() - 1)));
    ta.add_row({std::to_string(pct),
                fmt_bytes(sorted[static_cast<std::size_t>(idx)])});
  }
  std::printf("%s", ta.to_string().c_str());

  BC_ASSERT(!sorted.empty());
  const auto net_down = static_cast<double>(std::count_if(
                            sorted.begin(), sorted.end(),
                            [](Bytes b) { return b < 0; })) /
                        static_cast<double>(sorted.size());
  const auto net_up = static_cast<double>(std::count_if(
                          sorted.begin(), sorted.end(),
                          [](Bytes b) { return b > 0; })) /
                      static_cast<double>(sorted.size());
  std::printf("net downloaders: %.0f%%  net uploaders: %.0f%%  "
              "exactly zero: %.0f%%\n",
              100.0 * net_down, 100.0 * net_up,
              100.0 * (1.0 - net_down - net_up));

  // (b) reputation CDF at the observer.
  std::printf("\n(b) reputation CDF at the observer:\n");
  const auto cdf = result.reputation_cdf();
  Table tb({"reputation", "cdf"});
  for (double x : {-1.0, -0.75, -0.5, -0.25, -0.1, -0.01, 0.0, 0.01, 0.1,
                   0.25, 0.5, 0.75, 1.0}) {
    tb.add_row({fmt(x, 2), fmt(cdf_at(cdf, x), 3)});
  }
  std::printf("%s", tb.to_string().c_str());
  std::printf("fractions: negative %.0f%%, ~zero %.0f%%, positive %.0f%% "
              "(paper: ~40%% / ~50%% / ~10%%)\n",
              100.0 * result.fraction_negative(),
              100.0 * result.fraction_zero(),
              100.0 * result.fraction_positive());
  std::printf("messages logged: %zu, records applied: %zu\n",
              result.messages_logged, result.records_applied);

  std::filesystem::create_directories("bench_plots");
  (void)analysis::write_cdf_plot(cdf, "bench_plots", "fig4b",
                                 "reputation at the observer");

  // Shape checks against the published distribution.
  const bool ok = result.fraction_negative() > result.fraction_positive() &&
                  net_down > net_up && result.fraction_zero() > 0.2;
  std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
