// Figure 2 reproduction — effectiveness of the reputation policies (§5.3).
//
// (a) Average download speed of sharers vs freeriders under the rank
//     policy. Paper: freeriders initially faster, later overtaken; they end
//     at ~75% of the sharers' speed.
// (b) Same under the ban policy with delta = -0.5. Paper: ~50%.
// (c) Freerider speed under ban with delta in {-0.3, -0.5, -0.7}. Paper:
//     the -0.5 vs -0.7 difference is clearly larger than -0.3 vs -0.5.
//
// Headline numbers use the pooled class download speed over the second
// half of the run (policies need time to act), averaged over two trace
// seeds; the paper reports a single private trace, and individual seeds
// vary (see EXPERIMENTS.md for the sensitivity analysis). Time-series
// tables come from the first seed.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include <filesystem>

#include "analysis/experiment.hpp"
#include "analysis/plot.hpp"
#include "figure_common.hpp"

using namespace bc;

namespace {

const std::vector<std::uint64_t>& seeds() {
  static const std::vector<std::uint64_t> kSeeds =
      bench::quick_mode() ? std::vector<std::uint64_t>{33}
                          : std::vector<std::uint64_t>{33, 44};
  return kSeeds;
}

community::Metrics run_policy(const bartercast::ReputationPolicy& policy,
                              std::uint64_t seed) {
  community::ScenarioConfig cfg = bench::paper_scenario(seed);
  cfg.policy = policy;
  community::CommunitySimulator sim(trace::generate(bench::paper_trace(seed)),
                                    cfg);
  sim.run();
  return sim.metrics();
}

struct ClassSpeeds {
  double sharers = 0.0;     // KiB/s
  double freeriders = 0.0;  // KiB/s
  double ratio() const { return sharers > 0.0 ? freeriders / sharers : 0.0; }
};

/// Seed-averaged pooled late-window class speeds; also returns the metrics
/// of the first seed for the time-series table.
ClassSpeeds averaged(const bartercast::ReputationPolicy& policy,
                     std::unique_ptr<community::Metrics>* first = nullptr) {
  ClassSpeeds out;
  for (std::uint64_t seed : seeds()) {
    auto m = run_policy(policy, seed);
    out.sharers += m.late_class_speed(false) / 1024.0;
    out.freeriders += m.late_class_speed(true) / 1024.0;
    if (first != nullptr && *first == nullptr) {
      *first = std::make_unique<community::Metrics>(std::move(m));
    }
  }
  const auto n = static_cast<double>(seeds().size());
  out.sharers /= n;
  out.freeriders /= n;
  return out;
}

}  // namespace

int main() {
  bench::print_header("Figure 2", "download speed under rank/ban policies");

  std::printf("\n(a) rank policy:\n");
  std::unique_ptr<community::Metrics> rank_first;
  const ClassSpeeds rank = averaged(bartercast::ReputationPolicy::rank(),
                                    &rank_first);
  std::cout << analysis::speed_table(*rank_first, kDay).to_string();
  std::printf("late-window class speeds (KiB/s): sharers %.0f, freeriders "
              "%.0f -> ratio %.2f (paper: ~0.75)\n",
              rank.sharers, rank.freeriders, rank.ratio());

  std::printf("\n(b) ban policy, delta = -0.5:\n");
  std::unique_ptr<community::Metrics> ban_first;
  const ClassSpeeds ban = averaged(bartercast::ReputationPolicy::ban(-0.5),
                                   &ban_first);
  std::cout << analysis::speed_table(*ban_first, kDay).to_string();
  std::printf("late-window class speeds (KiB/s): sharers %.0f, freeriders "
              "%.0f -> ratio %.2f (paper: ~0.50)\n",
              ban.sharers, ban.freeriders, ban.ratio());

  std::printf("\n(c) freerider speed under ban, delta sweep:\n");
  const ClassSpeeds ban3 = averaged(bartercast::ReputationPolicy::ban(-0.3));
  const ClassSpeeds ban7 = averaged(bartercast::ReputationPolicy::ban(-0.7));
  Table t({"delta", "freeriders_KiBps", "sharers_KiBps", "ratio"});
  t.add_row({"-0.3", fmt(ban3.freeriders, 0), fmt(ban3.sharers, 0),
             fmt(ban3.ratio(), 2)});
  t.add_row({"-0.5", fmt(ban.freeriders, 0), fmt(ban.sharers, 0),
             fmt(ban.ratio(), 2)});
  t.add_row({"-0.7", fmt(ban7.freeriders, 0), fmt(ban7.sharers, 0),
             fmt(ban7.ratio(), 2)});
  std::printf("%s", t.to_string().c_str());
  std::printf("paper: freerider speed ordered -0.3 <= -0.5 <= -0.7, with "
              "gap(-0.5,-0.7) > gap(-0.3,-0.5)\n");

  std::filesystem::create_directories("bench_plots");
  (void)analysis::write_speed_plot(*rank_first, "bench_plots", "fig2a_rank");
  (void)analysis::write_speed_plot(*ban_first, "bench_plots", "fig2b_ban");

  // Shape checks: ban punishes harder than rank; both keep sharers ahead;
  // the delta sweep is ordered.
  const bool ordered = ban3.freeriders <= ban.freeriders + 50.0 &&
                       ban.freeriders <= ban7.freeriders + 50.0;
  const bool ok = ban.ratio() < rank.ratio() && ban.ratio() < 1.0 && ordered;
  std::printf("\nshape check (ban < rank, ban < 1, delta sweep ordered): "
              "%s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
