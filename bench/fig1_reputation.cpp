// Figure 1 reproduction.
//
// (a) Average system reputation of sharers vs freeriders over the one-week
//     simulation — the paper shows the classes diverging within days.
// (b) Scatter of final system reputation vs real net contribution — the
//     paper shows a consistent, monotone (arctan-shaped) relationship.
//
// No penalty policy is active (as in the paper's §5.2 measurement): the
// figure isolates the reputation mechanism itself.
#include <cstdio>
#include <iostream>

#include <filesystem>

#include "analysis/experiment.hpp"
#include "analysis/plot.hpp"
#include "figure_common.hpp"

using namespace bc;

int main() {
  bench::print_header("Figure 1", "system reputation vs real behaviour");

  community::ScenarioConfig cfg = bench::paper_scenario(33);
  cfg.policy = bartercast::ReputationPolicy::none();
  community::CommunitySimulator sim(trace::generate(bench::paper_trace(33)),
                                    cfg);
  sim.run();
  const auto& m = sim.metrics();

  std::printf("\n(a) average system reputation over time (days):\n");
  std::cout << analysis::reputation_table(m, kDay).to_string();

  std::printf("\n(b) per-peer scatter: net contribution (GiB) vs system "
              "reputation:\n");
  Table scatter({"peer", "class", "net_GiB", "reputation"});
  for (const auto& p : analysis::contribution_points(m)) {
    scatter.add_row({std::to_string(p.peer),
                     p.freerider ? "freerider" : "sharer",
                     fmt(p.net_contribution_gib, 3),
                     fmt(p.system_reputation, 4)});
  }
  std::cout << scatter.to_string();

  const double pearson = analysis::contribution_correlation(m);
  const double spearman = analysis::contribution_rank_correlation(m);
  std::printf("\nconsistency: pearson=%.3f spearman=%.3f "
              "(paper: 'clearly consistent')\n",
              pearson, spearman);

  // Class means at the end of the run, the divergence headline.
  const auto& rs = m.reputation_sharers;
  const auto& rf = m.reputation_freeriders;
  double last_s = 0.0, last_f = 0.0;
  for (std::size_t i = 0; i < rs.num_bins(); ++i) {
    if (rs.bin_count(i) > 0) last_s = rs.bin_mean(i);
    if (rf.bin_count(i) > 0) last_f = rf.bin_mean(i);
  }
  std::printf("final class means: sharers=%.4f freeriders=%.4f "
              "(paper Fig 1a: ~+0.10 / ~-0.12 at day 7)\n",
              last_s, last_f);

  // Emit gnuplot inputs so the actual figures can be rendered.
  std::filesystem::create_directories("bench_plots");
  const auto gp_a = analysis::write_reputation_plot(m, "bench_plots", "fig1a");
  const auto gp_b = analysis::write_scatter_plot(m, "bench_plots", "fig1b");
  const auto gp_c =
      analysis::write_reputation_histogram_plot(m, "bench_plots", "fig1c");
  if (!gp_a.empty() && !gp_b.empty() && !gp_c.empty()) {
    std::printf("gnuplot scripts: %s %s %s\n", gp_a.c_str(), gp_b.c_str(),
                gp_c.c_str());
  }
  return last_s > last_f ? 0 : 1;
}
