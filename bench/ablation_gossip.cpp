// Ablation: BarterCast message selection sizes Nh / Nr (paper §3.4, §5.1).
//
// The paper fixes Nh = Nr = 10 without exploring the choice. This ablation
// sweeps the selection size and reports how reputation consistency
// (correlation with real net contribution) and subjective-graph coverage
// respond. Expected shape: diminishing returns — tiny selections starve
// the shared history; beyond ~10 records per side the gain flattens, which
// is presumably why the deployed system shipped with 10.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "community/simulator.hpp"
#include "figure_common.hpp"
#include "trace/generator.hpp"

using namespace bc;

namespace {

struct Result {
  double pearson;
  double mean_edges;  // average subjective-graph size over trace peers
};

Result run_selection(std::size_t nh, std::size_t nr) {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 66;
  tcfg.num_peers = 30;
  tcfg.num_swarms = 4;
  tcfg.duration = 2.0 * kDay;
  tcfg.file_size_max = mib(700);

  community::ScenarioConfig cfg;
  cfg.seed = 66;
  cfg.node.selection.nh = nh;
  cfg.node.selection.nr = nr;
  cfg.reputation_probe_interval = 4.0 * kHour;

  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  double edges = 0.0;
  for (PeerId p = 0; p < sim.num_trace_peers(); ++p) {
    edges += static_cast<double>(sim.node(p).view().graph().num_edges());
  }
  edges /= static_cast<double>(sim.num_trace_peers());
  return Result{analysis::contribution_correlation(sim.metrics()), edges};
}

}  // namespace

int main() {
  bench::print_header("Ablation", "message selection sizes Nh = Nr");
  Table t({"Nh=Nr", "pearson", "avg_subjective_edges"});
  double first = 0.0, last = 0.0;
  const std::size_t sizes[] = {1, 2, 5, 10, 20};
  for (std::size_t s : sizes) {
    const Result r = run_selection(s, s);
    if (s == sizes[0]) first = r.pearson;
    last = r.pearson;
    t.add_row({std::to_string(s), fmt(r.pearson, 3), fmt(r.mean_edges, 0)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nExpected shape: coverage (edges) grows with the selection "
              "size; consistency improves from starved to saturated and "
              "flattens around the paper's Nh = Nr = 10.\n");
  const bool ok = last >= first;
  std::printf("shape check (consistency does not degrade with more "
              "records): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
