// Scalability study (paper §6 future work: "we plan to perform simulations
// with up to 100,000 peers and assess the scalability of our mechanism").
//
// The full piece-level community simulator is deliberately run at the
// paper's 100-peer scale; the scalability question for BarterCast itself is
// about the *reputation layer*: how do subjective-graph size, message
// application, and two-hop reputation evaluation behave as the population
// grows? This bench sweeps the graph layer to 50k peers and reports per-
// operation costs and memory-proxy statistics, printed as a table.
// A second sweep holds the population fixed and varies the worker-thread
// count of the batch evaluation (the workload CommunitySimulator's
// reputation probes run on bc::util::ThreadPool): it asserts the parallel
// result is bit-identical to serial and reports the speedup, writing the
// numbers to BENCH_parallel.json (override the path with BC_BENCH_OUT).
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bartercast/node.hpp"
#include "obs/export.hpp"
#include "util/assert.hpp"
#include "util/concurrency/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace bc;
using namespace bc::bartercast;

namespace {

// bc-analyze: allow(D2) -- benchmark wall-time helper; timings are reported, never fed back into simulation state
double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             // bc-analyze: allow(D2) -- benchmark wall-time helper; never feeds simulation state
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Row {
  std::size_t peers;
  double ingest_ms;        // applying one message per peer
  double eval_us;          // one two-hop reputation evaluation (cold)
  std::size_t graph_nodes;
  std::size_t graph_edges;
};

Row run_scale(std::size_t population, std::uint64_t seed) {
  BC_ASSERT(population > 0);
  Rng rng(seed);
  Node evaluator(0);
  // The evaluator bartered with a bounded set of direct partners (its
  // working set does not grow with the population — that is the point of
  // the subjective design).
  const std::size_t direct = 200;
  for (PeerId p = 1; p <= direct; ++p) {
    evaluator.on_bytes_received(p, rng.uniform_int(kMiB, kGiB), 0.0);
    evaluator.on_bytes_sent(p, rng.uniform_int(kMiB, kGiB), 0.0);
  }

  // One BarterCast message from every peer in the population.
  // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < population; ++i) {
    const auto sender = static_cast<PeerId>(1000 + i);
    BarterCastMessage msg;
    msg.sender = sender;
    for (int r = 0; r < 20; ++r) {
      BarterRecord rec;
      rec.subject = sender;
      // Partners are skewed toward the low ids (popular peers), so some
      // records connect to the evaluator's direct partners.
      rec.other = static_cast<PeerId>(1 + rng.zipf(direct * 5, 1.0));
      if (rec.other == sender) continue;
      rec.subject_to_other = rng.uniform_int(kMiB, kGiB);
      rec.other_to_subject = rng.uniform_int(kMiB, kGiB);
      msg.records.push_back(rec);
    }
    evaluator.receive_message(msg);
  }
  const double ingest_ms = ms_since(t0);

  // Cold reputation evaluations across distinct subjects.
  // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
  const auto t1 = std::chrono::steady_clock::now();
  const std::size_t evals = 2000;
  double sink = 0.0;
  ReputationEngine engine;
  for (std::size_t i = 0; i < evals; ++i) {
    const auto subject = static_cast<PeerId>(1000 + (i * 37) % population);
    sink += engine.reputation(evaluator.view().graph(), 0, subject);
  }
  const double eval_us = ms_since(t1) * 1000.0 / static_cast<double>(evals);
  // bc-analyze: allow(B2) -- dead-code-elimination guard comparing against a sentinel no reputation sum can produce; not a real comparison
  if (sink == -1e300) std::printf("impossible\n");  // keep `sink` alive

  return Row{population, ingest_ms, eval_us,
             evaluator.view().graph().num_nodes(),
             evaluator.view().graph().num_edges()};
}

/// Ingests the same synthetic message load as run_scale (without timing
/// it), leaving `evaluator` with a populated subjective graph.
void ingest_population(Node& evaluator, std::size_t population,
                       std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t direct = 200;
  for (PeerId p = 1; p <= direct; ++p) {
    evaluator.on_bytes_received(p, rng.uniform_int(kMiB, kGiB), 0.0);
    evaluator.on_bytes_sent(p, rng.uniform_int(kMiB, kGiB), 0.0);
  }
  for (std::size_t i = 0; i < population; ++i) {
    const auto sender = static_cast<PeerId>(1000 + i);
    BarterCastMessage msg;
    msg.sender = sender;
    for (int r = 0; r < 20; ++r) {
      BarterRecord rec;
      rec.subject = sender;
      rec.other = static_cast<PeerId>(1 + rng.zipf(direct * 5, 1.0));
      if (rec.other == sender) continue;
      rec.subject_to_other = rng.uniform_int(kMiB, kGiB);
      rec.other_to_subject = rng.uniform_int(kMiB, kGiB);
      msg.records.push_back(rec);
    }
    evaluator.receive_message(msg);
  }
}

/// Threads sweep over the batch two-hop evaluation: per-index writes on the
/// pool, serial index-order merge — the exact shape the community
/// simulator's reputation probes use — so the checksum must not move a bit
/// between thread counts.
void run_threads_sweep() {
  const std::size_t population = 10000;
  const std::size_t evals = 4000;
  Node evaluator(0);
  ingest_population(evaluator, population, 17);
  const ReputationEngine engine;
  const auto& graph = evaluator.view().graph();

  std::printf("\nBatch reputation evaluation vs worker threads\n");
  std::printf("(population %zu, %zu two-hop evaluations per run; the "
              "deterministic\nparallel_for contract makes every run "
              "bit-identical to serial)\n\n",
              population, evals);
  Table t({"threads", "batch_ms", "speedup", "sum_bits"});
  double base_ms = 0.0;
  std::uint64_t base_bits = 0;
  std::string json = "{\n  \"bench\": \"parallel_reputation_sweep\",\n";
  json += "  \"population\": " + std::to_string(population) + ",\n";
  json += "  \"evals\": " + std::to_string(evals) + ",\n  \"runs\": [";
  bool first = true;
  for (const std::size_t threads : {1ul, 2ul, 4ul, 8ul}) {
    util::ThreadPool pool(threads);
    // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<double> out(evals, 0.0);
    pool.parallel_for(evals, [&](std::size_t i) {
      const auto subject = static_cast<PeerId>(1000 + (i * 37) % population);
      out[i] = engine.reputation(graph, 0, subject);
    });
    double sum = 0.0;
    for (const double v : out) sum += v;  // serial merge, index order
    const double ms = ms_since(t0);
    const auto bits = std::bit_cast<std::uint64_t>(sum);
    if (threads == 1) {
      base_ms = ms;
      base_bits = bits;
    }
    BC_ASSERT_MSG(bits == base_bits,
                  "parallel batch evaluation diverged from serial");
    const double speedup = ms > 0.0 ? base_ms / ms : 0.0;
    t.add_row({std::to_string(threads), fmt(ms, 1), fmt(speedup, 2),
               std::to_string(bits)});
    json += first ? "\n" : ",\n";
    first = false;
    json += "    {\"threads\": " + std::to_string(threads) +
            ", \"batch_ms\": " + fmt(ms, 3) +
            ", \"speedup\": " + fmt(speedup, 3) + "}";
  }
  json += "\n  ]\n}\n";
  std::printf("%s", t.to_string().c_str());
  const char* out_path = std::getenv("BC_BENCH_OUT");
  const std::string path = out_path != nullptr ? out_path : "BENCH_parallel.json";
  if (obs::write_text_file(path, json)) {
    std::printf("\nparallel bench JSON written to %s\n", path.c_str());
  }
}

}  // namespace

int main() {
  std::printf("BarterCast reputation-layer scalability sweep\n");
  std::printf("(one message per peer ingested; 2000 cold two-hop "
              "reputation evaluations)\n\n");
  Table t({"peers", "ingest_total_ms", "eval_us_per_rep", "graph_nodes",
           "graph_edges"});
  for (std::size_t n : {1000ul, 5000ul, 10000ul, 25000ul, 50000ul}) {
    const Row r = run_scale(n, 17);
    t.add_row({std::to_string(r.peers), fmt(r.ingest_ms, 1),
               fmt(r.eval_us, 2), std::to_string(r.graph_nodes),
               std::to_string(r.graph_edges)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nExpected shape: ingest scales linearly with population; "
              "per-evaluation cost stays bounded by the evaluator's own "
              "degree (the subjective design's scalability argument).\n");
  run_threads_sweep();
  return 0;
}
