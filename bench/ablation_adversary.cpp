// Adversary zoo: every registry attack archetype against every
// reputation-aggregation backend.
//
// §5.4 studies two manipulations (ignoring and lying); §6 leaves "die-hard
// cheating and malicious behaviour" as future work. This ablation runs the
// extended behavior catalog — sybil-region (bounded mutual promotion),
// slanderer (fabricated counter-claims against benefactors),
// strategic-uploader (minimal seeding to stay above the ban bar), and
// mobile-churner (duty-cycled uptime, an honest-but-flaky baseline) —
// under both the paper's maxflow metric and the differential-gossip
// averaging backend, in one process.
//
// Per {adversary x backend} cell the community is 50% sharers, 25% lazy
// freeriders, 25% attackers, ban(-0.5) policy, and the bench reports:
//   * reputation_gap    mean final system reputation of sharers minus
//                       freerider-class peers (metric health: > 0 means
//                       the metric still separates the classes)
//   * false_ban_rate    fraction of plain sharers ending below the ban
//                       threshold (collateral damage of the attack)
//   * attacker_benefit  attacker cohort's mean reputation minus the lazy
//                       cohort's (what the strategy buys over naive
//                       freeriding)
//
// Results go to BENCH_adversary.json (override with BC_BENCH_OUT).
// PASS requires the maxflow backend to keep reputation_gap > 0 under
// every adversary — the paper's containment claim; the gossip rows are
// the contrast that motivates maxflow. BC_QUICK=1 reduces the scale.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "figure_common.hpp"
#include "util/table.hpp"

using namespace bc;

namespace {

struct Cell {
  std::string adversary;
  std::string backend;
  double sharer_mean = 0.0;
  double freerider_mean = 0.0;
  double reputation_gap = 0.0;
  double false_ban_rate = 0.0;
  double attacker_mean = 0.0;
  double lazy_mean = 0.0;
  double attacker_benefit = 0.0;
};

constexpr double kBanDelta = -0.5;

Cell run_cell(const std::string& adversary, bartercast::BackendKind backend) {
  auto tcfg = bench::paper_trace(404);
  community::ScenarioConfig cfg = bench::paper_scenario(404);
  cfg.policy = bartercast::ReputationPolicy::ban(kBanDelta);
  cfg.population =
      "sharer:0.5,lazy-freerider:0.25," + adversary + ":0.25";
  cfg.node.backend = backend;

  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  const auto& m = sim.metrics();

  Cell cell;
  cell.adversary = adversary;
  cell.backend = std::string(bartercast::backend_name(backend));
  double sharer_sum = 0.0, freerider_sum = 0.0;
  double attacker_sum = 0.0, lazy_sum = 0.0;
  std::size_t sharers = 0, freeriders = 0, attackers = 0, lazies = 0;
  std::size_t plain_sharers = 0, false_bans = 0;
  for (const auto& o : m.outcomes) {
    if (o.freerider) {
      freerider_sum += o.final_system_reputation;
      ++freeriders;
    } else {
      sharer_sum += o.final_system_reputation;
      ++sharers;
    }
    if (o.behavior == "sharer") {
      ++plain_sharers;
      if (o.final_system_reputation < kBanDelta) ++false_bans;
    }
    if (o.behavior == adversary) {
      attacker_sum += o.final_system_reputation;
      ++attackers;
    }
    if (o.behavior == "lazy-freerider") {
      lazy_sum += o.final_system_reputation;
      ++lazies;
    }
  }
  // Every reputation is in [-1, 1] (arctan normalization), so each class
  // mean is too; the clamp states that invariant on the summed path.
  if (sharers > 0) {
    cell.sharer_mean =
        std::clamp(sharer_sum / static_cast<double>(sharers), -1.0, 1.0);
  }
  if (freeriders > 0) {
    cell.freerider_mean = std::clamp(
        freerider_sum / static_cast<double>(freeriders), -1.0, 1.0);
  }
  cell.reputation_gap = cell.sharer_mean - cell.freerider_mean;
  if (plain_sharers > 0) {
    cell.false_ban_rate =
        static_cast<double>(false_bans) / static_cast<double>(plain_sharers);
  }
  if (attackers > 0) {
    cell.attacker_mean = std::clamp(
        attacker_sum / static_cast<double>(attackers), -1.0, 1.0);
  }
  if (lazies > 0) {
    cell.lazy_mean =
        std::clamp(lazy_sum / static_cast<double>(lazies), -1.0, 1.0);
  }
  cell.attacker_benefit = cell.attacker_mean - cell.lazy_mean;
  return cell;
}

void append_json(std::string& json, const Cell& c, bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"adversary\": \"%s\", \"backend\": \"%s\","
      " \"sharer_mean\": %.6f, \"freerider_mean\": %.6f,"
      " \"reputation_gap\": %.6f, \"false_ban_rate\": %.6f,"
      " \"attacker_mean\": %.6f, \"lazy_mean\": %.6f,"
      " \"attacker_benefit\": %.6f}%s\n",
      c.adversary.c_str(), c.backend.c_str(), c.sharer_mean,
      c.freerider_mean, c.reputation_gap, c.false_ban_rate, c.attacker_mean,
      c.lazy_mean, c.attacker_benefit, last ? "" : ",");
  json += buf;
}

}  // namespace

int main() {
  bench::print_header("Ablation — adversary zoo x aggregation backend",
                      "registry attacks vs maxflow and differential gossip");

  const std::vector<std::string> adversaries = {
      "sybil-region", "slanderer", "strategic-uploader", "mobile-churner"};
  const std::vector<bartercast::BackendKind> backends = {
      bartercast::BackendKind::kMaxflow,
      bartercast::BackendKind::kDifferentialGossip};

  Table t({"adversary", "backend", "rep_gap", "false_ban_rate",
           "attacker_benefit"});
  std::vector<Cell> cells;
  for (const auto& adversary : adversaries) {
    for (const auto backend : backends) {
      const Cell c = run_cell(adversary, backend);
      t.add_row({c.adversary, c.backend, fmt(c.reputation_gap, 3),
                 fmt(c.false_ban_rate, 3), fmt(c.attacker_benefit, 3)});
      cells.push_back(c);
    }
  }
  std::printf("%s", t.to_string().c_str());

  std::string json = "{\n  \"bench\": \"adversary\",\n";
  json += std::string("  \"mode\": \"") +
          (bench::quick_mode() ? "quick" : "paper") + "\",\n";
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    append_json(json, cells[i], i + 1 == cells.size());
  }
  json += "  ]\n}\n";
  const char* out_path = std::getenv("BC_BENCH_OUT");
  const std::string path =
      out_path != nullptr ? out_path : "BENCH_adversary.json";
  if (obs::write_text_file(path, json)) {
    std::printf("\nadversary bench JSON written to %s\n", path.c_str());
  }

  // The paper's containment claim: under every attack in the zoo the
  // maxflow metric must still rank the sharer class above the freerider
  // class on average. The gossip backend is allowed to fail this — that
  // contrast is the point of the ablation — so it carries no bar.
  bool pass = true;
  for (const Cell& c : cells) {
    if (c.backend == "maxflow" && !(c.reputation_gap > 0.0)) {
      std::printf("FAIL: maxflow reputation gap not positive under %s "
                  "(%.3f)\n", c.adversary.c_str(), c.reputation_gap);
      pass = false;
    }
  }
  std::printf("\nshape check (maxflow gap > 0 under every adversary): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
