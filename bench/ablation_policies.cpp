// Extension experiment: the policy design space beyond rank and ban.
//
// §4.2: "many policies can be thought of that make more sophisticated use
// of the long term reputation provided by BarterCast." This ablation runs
// the full policy menu — none, rank, ban, and the combined rank+ban — on
// one community and compares the freerider penalty each produces. It uses
// the reduced configuration (this is an extension sweep, not a paper
// figure; the paper-scale policy numbers live in fig2_policies).
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "community/simulator.hpp"
#include "trace/generator.hpp"
#include "util/table.hpp"

using namespace bc;

namespace {

struct Result {
  double sharers;
  double freeriders;
  double ratio() const { return sharers > 0.0 ? freeriders / sharers : 0.0; }
};

Result run_policy(const bartercast::ReputationPolicy& policy) {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 77;
  tcfg.num_peers = 50;
  tcfg.num_swarms = 6;
  tcfg.duration = 4.0 * kDay;
  tcfg.file_size_max = gib(1.0);

  community::ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.policy = policy;
  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  const auto& m = sim.metrics();
  return {m.late_class_speed(false) / 1024.0,
          m.late_class_speed(true) / 1024.0};
}

}  // namespace

int main() {
  std::printf("Policy design space (extension of §4.2)\n");
  std::printf("50 peers, 6 swarms, 4 days, 50%% freeriders\n\n");

  const std::vector<bartercast::ReputationPolicy> policies{
      bartercast::ReputationPolicy::none(),
      bartercast::ReputationPolicy::rank(),
      bartercast::ReputationPolicy::ban(-0.5),
      bartercast::ReputationPolicy::rank_ban(-0.5),
  };
  Table t({"policy", "sharers_KiBps", "freeriders_KiBps", "ratio"});
  std::vector<Result> results;
  for (const auto& policy : policies) {
    const Result r = run_policy(policy);
    results.push_back(r);
    t.add_row({policy.name(), fmt(r.sharers, 0), fmt(r.freeriders, 0),
               fmt(r.ratio(), 2)});
  }
  std::printf("%s", t.to_string().c_str());

  // Shape: any reputation policy should punish freeriders relative to the
  // policy-free baseline, and the combined policy should be at least as
  // strict as plain ban.
  const double base = results[0].ratio();
  const bool rank_helps = results[1].ratio() <= base + 0.05;
  const bool ban_helps = results[2].ratio() < base;
  const bool combo_strict = results[3].ratio() <= results[2].ratio() + 0.1;
  std::printf("\nshape check (rank <= baseline, ban < baseline, rank+ban "
              "<= ban): %s\n",
              rank_helps && ban_helps && combo_strict ? "PASS" : "FAIL");
  return rank_helps && ban_helps && combo_strict ? 0 : 1;
}
