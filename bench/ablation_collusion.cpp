// Extension experiment: collusion resistance of the maxflow metric
// (paper §6 lists "techniques to prevent die-hard cheating and malicious
// behaviour" as future work; collusion is the classic attack on
// reputation aggregation).
//
// A collusion ring of k peers mutually claims enormous pairwise transfers,
// trying to inflate each member's reputation at an honest evaluator. The
// maxflow containment property predicts the gain is capped by the *real*
// service the ring delivered to the evaluator's direct partners: intra-ring
// edges add capacity only on paths that still have to cross a real edge
// into the evaluator (two-hop evaluation tightens this further, since
// ring-internal hops consume the path budget).
//
// The experiment sweeps the ring size and the claimed volume and reports
// the ring members' reputation at the evaluator next to that of an honest
// uploader that really served the same real amount. PASS means the ring
// never looks better than the honest baseline.
#include <cstdio>
#include <vector>

#include "bartercast/node.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace bc;
using namespace bc::bartercast;

namespace {

/// Builds the evaluator's view: it bartered for real with peers 1..n_direct
/// (each uploaded `real_service` to it); the ring members (ids >= 100)
/// each really uploaded `ring_real` to ONE direct partner, then flood
/// fabricated intra-ring records claiming `claimed` in every direction.
double ring_reputation(std::size_t ring_size, Bytes claimed,
                       Bytes real_service, Bytes ring_real) {
  Node evaluator(0);
  const std::size_t n_direct = 10;
  for (PeerId p = 1; p <= n_direct; ++p) {
    evaluator.on_bytes_received(p, real_service, 0.0);
  }
  // Ring members' genuine (small) service, reported honestly by the
  // direct partner they served.
  std::vector<PeerId> ring;
  for (std::size_t i = 0; i < ring_size; ++i) {
    ring.push_back(static_cast<PeerId>(100 + i));
  }
  for (std::size_t i = 0; i < ring_size; ++i) {
    const PeerId anchor = static_cast<PeerId>(1 + i % n_direct);
    BarterCastMessage honest;
    honest.sender = anchor;
    honest.records.push_back({anchor, ring[i], 0, ring_real});
    evaluator.receive_message(honest);
  }
  // The flood of fabricated intra-ring claims.
  for (std::size_t i = 0; i < ring_size; ++i) {
    BarterCastMessage msg;
    msg.sender = ring[i];
    for (std::size_t j = 0; j < ring_size; ++j) {
      if (i == j) continue;
      msg.records.push_back({ring[i], ring[j], claimed, claimed});
    }
    evaluator.receive_message(msg);
  }
  double worst = -1.0;
  for (PeerId member : ring) {
    worst = std::max(worst, evaluator.reputation(member));
  }
  return worst;
}

double honest_reputation(Bytes real_service, Bytes uploaded) {
  Node evaluator(0);
  const std::size_t n_direct = 10;
  for (PeerId p = 1; p <= n_direct; ++p) {
    evaluator.on_bytes_received(p, real_service, 0.0);
  }
  // Peer 50 really uploaded `uploaded` to direct partner 1, reported by 1.
  BarterCastMessage msg;
  msg.sender = 1;
  msg.records.push_back({1, 50, 0, uploaded});
  evaluator.receive_message(msg);
  return evaluator.reputation(50);
}

}  // namespace

int main() {
  std::printf("Collusion-ring resistance of the two-hop maxflow metric\n");
  std::printf("evaluator bartered 500 MiB with each of 10 direct partners; "
              "ring members really uploaded 50 MiB each\n\n");

  const Bytes real_service = 500 * kMiB;
  const Bytes ring_real = 50 * kMiB;
  const double honest = honest_reputation(real_service, ring_real);
  const double honest_big = honest_reputation(real_service, 100 * kGiB);
  std::printf("honest uploader of the same 50 MiB:   R = %+.4f\n", honest);
  std::printf("honest uploader of (claimed) 100 GiB: R = %+.4f "
              "(itself capped by the evaluator's real edge)\n\n",
              honest_big);

  Table t({"ring_size", "claimed", "worst_ring_R", "gain_vs_honest"});
  bool contained = true;
  for (std::size_t ring : {2ul, 5ul, 10ul, 20ul}) {
    for (Bytes claimed : {gib(1.0), gib(100.0), gib(10000.0)}) {
      const double r = ring_reputation(ring, claimed, real_service, ring_real);
      t.add_row({std::to_string(ring), fmt_bytes(claimed), fmt(r, 4),
                 fmt(r - honest, 4)});
      if (r > honest + 1e-9) contained = false;
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nshape check (no ring configuration beats the honest "
              "uploader of the same real service): %s\n",
              contained ? "PASS" : "FAIL");
  return contained ? 0 : 1;
}
