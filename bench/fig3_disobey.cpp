// Figure 3 reproduction — disobeying the protocol (§5.4).
//
// Ban policy, delta = -0.5, 50% freeriders; a fraction of the *population*
// (drawn from the freerider half, as in the paper) either
//  (a) ignores the message protocol (sends nothing), or
//  (b) lies selfishly (claims huge uploads, zero downloads).
// The paper reports (a) barely affects effectiveness up to 50%, while (b)
// stays effective for < ~18% liars and erodes beyond (lying freeriders
// whitewash their reputations, so the freerider class speeds back up).
//
// Headline numbers are the pooled late-window class speeds (see Figure 2).
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "figure_common.hpp"

using namespace bc;

namespace {

struct Point {
  double fraction;
  double sharers;     // KiB/s, pooled late-window
  double freeriders;  // KiB/s
};

Point run_fraction(double fraction, bool lying) {
  const std::uint64_t seed = 33;
  community::ScenarioConfig cfg = bench::paper_scenario(seed);
  cfg.policy = bartercast::ReputationPolicy::ban(-0.5);
  if (lying) {
    cfg.liar_fraction = fraction;
  } else {
    cfg.ignorer_fraction = fraction;
  }
  community::CommunitySimulator sim(
      trace::generate(bench::paper_trace(seed)), cfg);
  sim.run();
  const auto& m = sim.metrics();
  return {fraction, m.late_class_speed(false) / 1024.0,
          m.late_class_speed(true) / 1024.0};
}

}  // namespace

int main() {
  bench::print_header("Figure 3",
                      "robustness against ignoring / lying peers");
  const std::vector<double> fractions =
      bench::quick_mode() ? std::vector<double>{0.0, 0.25, 0.5}
                          : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  std::printf("\n(a) peers ignoring the message protocol:\n");
  Table ta({"pct_ignoring", "sharers_KiBps", "freeriders_KiBps", "ratio"});
  std::vector<Point> ignore_pts;
  for (double f : fractions) {
    const Point p = run_fraction(f, /*lying=*/false);
    ignore_pts.push_back(p);
    ta.add_row({fmt(100.0 * f, 0), fmt(p.sharers, 0), fmt(p.freeriders, 0),
                fmt(p.sharers > 0 ? p.freeriders / p.sharers : 0.0, 2)});
  }
  std::printf("%s", ta.to_string().c_str());

  std::printf("\n(b) peers lying about their contribution:\n");
  Table tb({"pct_lying", "sharers_KiBps", "freeriders_KiBps", "ratio"});
  std::vector<Point> lie_pts;
  for (double f : fractions) {
    const Point p = run_fraction(f, /*lying=*/true);
    lie_pts.push_back(p);
    tb.add_row({fmt(100.0 * f, 0), fmt(p.sharers, 0), fmt(p.freeriders, 0),
                fmt(p.sharers > 0 ? p.freeriders / p.sharers : 0.0, 2)});
  }
  std::printf("%s", tb.to_string().c_str());

  // Shape checks. Ignoring: the freerider/sharer gap persists at the
  // largest fraction. Lying: the gap persists at the smallest nonzero
  // fraction (the paper's "still effective for < ~18%" claim) and erodes
  // at 50% (liars whitewash themselves back to full speed).
  const auto ratio = [](const Point& p) {
    return p.sharers > 0 ? p.freeriders / p.sharers : 1.0;
  };
  const bool ignore_ok = ratio(ignore_pts.back()) < 1.0;
  const bool lie_small_ok = ratio(lie_pts[1]) < 1.0;
  const bool lie_erodes = ratio(lie_pts.back()) > ratio(lie_pts[1]);
  std::printf("\nshape checks: ignore@max keeps gap: %s; lie@%.0f%% keeps "
              "gap: %s; lie@50%% erodes: %s\n",
              ignore_ok ? "PASS" : "FAIL", 100.0 * lie_pts[1].fraction,
              lie_small_ok ? "PASS" : "FAIL", lie_erodes ? "PASS" : "FAIL");
  return ignore_ok && lie_small_ok ? 0 : 1;
}
