// Shared setup for the figure-reproduction benches.
//
// Every fig*_ binary replays the paper's simulation setup (§5.1): N = 100
// peers in 10 swarms over one week, 50% lazy freeriders, sharers seeding
// 10 h, ADSL access links, Nh = Nr = 10. Set BC_QUICK=1 to run a reduced
// configuration (fewer peers/swarms, 3 days) when iterating; the qualitative
// shapes survive the reduction but the reported numbers are then not the
// paper-scale ones.
// Observability: every figure bench honours three environment variables —
//   BC_PROFILE=1           enable the scoped profiler, print the per-site
//                          report at exit
//   BC_METRICS_OUT=f.json  enable the profiler, dump registry + profile
//                          JSON to f.json at exit
//   BC_TRACE_OUT=f.json    enable the sim-time tracer, dump Chrome trace
//                          JSON (open in chrome://tracing or Perfetto)
//   BC_METRICS_STREAM=f.ndjson  stream windowed metric deltas (one NDJSON
//                          line per sim-hour window) while the run is in
//                          flight — tail it to watch a paper-scale bench
// so hot-path attribution of a paper-scale run is one env var away.
// Execution: BC_THREADS=N runs the batch reputation sweeps on N pool
// workers (default 1 = serial); any N is bit-identical by the
// deterministic parallel_for contract, so figures never change with it.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "community/scenario.hpp"
#include "community/simulator.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_writer.hpp"
#include "trace/generator.hpp"
#include "util/units.hpp"

namespace bench {

inline bool quick_mode() {
  const char* v = std::getenv("BC_QUICK");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

/// Dumps whatever observability outputs the environment requested; runs at
/// exit so it covers the whole bench without per-bench wiring.
inline void dump_observability() {
  const auto& registry = bc::obs::Registry::instance();
  const auto& profiler = bc::obs::Profiler::instance();
  if (const char* path = std::getenv("BC_METRICS_OUT"); path != nullptr) {
    if (bc::obs::write_text_file(path,
                                 bc::obs::metrics_json(registry, profiler))) {
      std::fprintf(stderr, "metrics written to %s\n", path);
    }
  }
  if (const char* path = std::getenv("BC_TRACE_OUT"); path != nullptr) {
    if (bc::obs::Tracer::instance().write_file(path)) {
      std::fprintf(stderr, "chrome trace written to %s\n", path);
    }
  }
  if (const char* v = std::getenv("BC_PROFILE");
      v != nullptr && std::strcmp(v, "0") != 0) {
    std::fprintf(stderr, "== profile ==\n%s",
                 bc::obs::profile_report(profiler).c_str());
  }
}

inline void init_observability() {
  const bool profile = std::getenv("BC_PROFILE") != nullptr ||
                       std::getenv("BC_METRICS_OUT") != nullptr;
  const bool trace = std::getenv("BC_TRACE_OUT") != nullptr;
  if (profile || trace) bc::obs::Profiler::instance().set_enabled(true);
  if (trace) bc::obs::Tracer::instance().set_enabled(true);
  if (profile || trace) std::atexit(dump_observability);
}

inline bc::trace::GeneratorConfig paper_trace(std::uint64_t seed) {
  bc::trace::GeneratorConfig cfg;  // defaults follow §5.1 already
  cfg.seed = seed;
  if (quick_mode()) {
    cfg.num_peers = 40;
    cfg.num_swarms = 6;
    cfg.duration = 3.0 * bc::kDay;
    cfg.file_size_max = bc::gib(1.0);
  }
  return cfg;
}

inline bc::community::ScenarioConfig paper_scenario(std::uint64_t seed) {
  bc::community::ScenarioConfig cfg;
  cfg.seed = seed;
  if (const char* v = std::getenv("BC_THREADS"); v != nullptr) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) cfg.threads = static_cast<std::size_t>(n);
  }
  if (const char* path = std::getenv("BC_METRICS_STREAM"); path != nullptr) {
    cfg.metrics_stream_path = path;
  }
  return cfg;
}

inline void print_header(const char* figure, const char* what) {
  init_observability();
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("mode: %s\n", quick_mode() ? "QUICK (BC_QUICK=1)" : "paper scale");
  std::printf("==============================================================\n");
}

}  // namespace bench
