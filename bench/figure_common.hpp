// Shared setup for the figure-reproduction benches.
//
// Every fig*_ binary replays the paper's simulation setup (§5.1): N = 100
// peers in 10 swarms over one week, 50% lazy freeriders, sharers seeding
// 10 h, ADSL access links, Nh = Nr = 10. Set BC_QUICK=1 to run a reduced
// configuration (fewer peers/swarms, 3 days) when iterating; the qualitative
// shapes survive the reduction but the reported numbers are then not the
// paper-scale ones.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "community/scenario.hpp"
#include "community/simulator.hpp"
#include "trace/generator.hpp"
#include "util/units.hpp"

namespace bench {

inline bool quick_mode() {
  const char* v = std::getenv("BC_QUICK");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

inline bc::trace::GeneratorConfig paper_trace(std::uint64_t seed) {
  bc::trace::GeneratorConfig cfg;  // defaults follow §5.1 already
  cfg.seed = seed;
  if (quick_mode()) {
    cfg.num_peers = 40;
    cfg.num_swarms = 6;
    cfg.duration = 3.0 * bc::kDay;
    cfg.file_size_max = bc::gib(1.0);
  }
  return cfg;
}

inline bc::community::ScenarioConfig paper_scenario(std::uint64_t seed) {
  bc::community::ScenarioConfig cfg;
  cfg.seed = seed;
  return cfg;
}

inline void print_header(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("mode: %s\n", quick_mode() ? "QUICK (BC_QUICK=1)" : "paper scale");
  std::printf("==============================================================\n");
}

}  // namespace bench
