// Graph-core microbench: the dense-index FlowGraph vs. the retained
// hash-map ReferenceFlowGraph oracle, plus the end-to-end payoff — a
// community-style full reputation sweep under per-subject incremental
// invalidation vs. the old whole-cache (global-version) invalidation.
//
// Two sections:
//  1. Per-operation costs (add_capacity / set_capacity / capacity query /
//     two-hop maxflow) on identical random graphs, dense vs. reference.
//  2. A gossip-then-sweep loop: R rounds of a few edge mutations followed
//     by a full sweep over every known subject. The incremental cache
//     recomputes only the touched two-hop neighbourhood; the emulated
//     pre-fix behaviour (any version bump flushes everything) recomputes
//     every subject with the same closed-form engine, so the ratio
//     isolates the invalidation policy. The acceptance bar is >= 2x.
//
// Results go to BENCH_graph.json (override with BC_BENCH_OUT). The usual
// bench observability env vars (BC_PROFILE / BC_METRICS_OUT / BC_TRACE_OUT)
// are honoured via figure_common.hpp.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bartercast/reputation.hpp"
#include "bartercast/shared_history.hpp"
#include "figure_common.hpp"
#include "graph/flow_graph.hpp"
#include "graph/maxflow.hpp"
#include "graph/reference_graph.hpp"
#include "obs/export.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace bc;

namespace {

// bc-analyze: allow(D2) -- benchmark wall-time helper; timings are reported, never fed back into simulation state
double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             // bc-analyze: allow(D2) -- benchmark wall-time helper; never feeds simulation state
             std::chrono::steady_clock::now() - start)
      .count();
}

constexpr PeerId kOpPeers = 400;
constexpr std::size_t kAdds = 60000;
constexpr std::size_t kSets = 20000;
constexpr std::size_t kQueries = 200000;
constexpr std::size_t kScans = 200000;
constexpr std::size_t kTwoHops = 20000;

struct OpRow {
  const char* op;
  std::size_t count;
  double dense_ns;
  double ref_ns;
};

/// Runs the identical operation mix against one graph implementation.
/// `G` only needs the shared public PeerId API, so the same template body
/// drives FlowGraph and ReferenceFlowGraph; `flow` is the matching two-hop
/// entry point and `scan` sums one node's out-edge capacities (the dense
/// side iterates through graph::EdgeView, so this row doubles as the
/// release-build proof that the generation guard compiles away — EdgeView
/// is a bare std::span under NDEBUG).
template <typename G, typename TwoHopFn, typename ScanFn>
std::vector<double> run_ops(G& g, TwoHopFn flow, ScanFn scan) {
  std::vector<double> ns;
  Rng rng(2026);
  auto pick = [&rng] {
    return static_cast<PeerId>(rng.uniform_int(0, kOpPeers - 1));
  };
  Bytes sink = 0;

  // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kAdds; ++i) {
    const PeerId u = pick(), v = pick();
    if (u != v) g.add_capacity(u, v, rng.uniform_int(1, kMiB));
  }
  ns.push_back(ms_since(t0) * 1e6 / static_cast<double>(kAdds));

  // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSets; ++i) {
    const PeerId u = pick(), v = pick();
    if (u != v) g.set_capacity(u, v, rng.uniform_int(1, kMiB));
  }
  ns.push_back(ms_since(t0) * 1e6 / static_cast<double>(kSets));

  // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kQueries; ++i) {
    // bc-analyze: allow(V1) -- DCE-defeating sink inside the timed region; checked arithmetic here would perturb the measured op, and the value is only compared against a sentinel
    sink += g.capacity(pick(), pick());
  }
  ns.push_back(ms_since(t0) * 1e6 / static_cast<double>(kQueries));

  // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kScans; ++i) {
    // bc-analyze: allow(V1) -- DCE-defeating sink inside the timed region; checked arithmetic here would perturb the measured op, and the value is only compared against a sentinel
    sink += scan(g, pick());
  }
  ns.push_back(ms_since(t0) * 1e6 / static_cast<double>(kScans));

  // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kTwoHops; ++i) {
    const PeerId s = pick(), t = pick();
    // bc-analyze: allow(V1) -- DCE-defeating sink inside the timed region; checked arithmetic here would perturb the measured op, and the value is only compared against a sentinel
    if (s != t) sink += flow(g, s, t);
  }
  ns.push_back(ms_since(t0) * 1e6 / static_cast<double>(kTwoHops));

  if (sink == Bytes{0} - 1) std::printf("impossible\n");  // keep sink alive
  return ns;
}

std::vector<OpRow> run_op_section(std::string& json) {
  graph::FlowGraph dense;
  graph::ReferenceFlowGraph ref;
  const std::vector<double> d = run_ops(
      dense,
      [](const graph::FlowGraph& g, PeerId s, PeerId t) {
        return graph::max_flow_two_hop(g, s, t);
      },
      [](const graph::FlowGraph& g, PeerId p) {
        Bytes acc = 0;
        // bc-analyze: allow(V1) -- DCE-defeating sink inside the timed region; checked arithmetic here would perturb the measured op, and the value is only compared against a sentinel
        for (const graph::Edge& e : g.out_edges(p)) acc += e.cap;
        return acc;
      });
  const std::vector<double> r = run_ops(
      ref,
      [](const graph::ReferenceFlowGraph& g, PeerId s, PeerId t) {
        return graph::ref_max_flow_two_hop(g, s, t);
      },
      [](const graph::ReferenceFlowGraph& g, PeerId p) {
        Bytes acc = 0;
        // bc-analyze: allow(V1) -- DCE-defeating sink inside the timed region; checked arithmetic here would perturb the measured op, and the value is only compared against a sentinel
        for (const auto& [_, cap] : g.out_edges(p)) acc += cap;
        return acc;
      });
  const std::vector<OpRow> rows = {
      {"add_capacity", kAdds, d[0], r[0]},
      {"set_capacity", kSets, d[1], r[1]},
      {"capacity_query", kQueries, d[2], r[2]},
      {"edge_scan", kScans, d[3], r[3]},
      {"two_hop_maxflow", kTwoHops, d[4], r[4]},
  };
  json += "  \"ops\": [";
  bool first = true;
  for (const OpRow& row : rows) {
    json += first ? "\n" : ",\n";
    first = false;
    const double speedup = row.dense_ns > 0.0 ? row.ref_ns / row.dense_ns : 0.0;
    json += "    {\"op\": \"" + std::string(row.op) +
            "\", \"count\": " + std::to_string(row.count) +
            ", \"dense_ns\": " + fmt(row.dense_ns, 1) +
            ", \"reference_ns\": " + fmt(row.ref_ns, 1) +
            ", \"dense_speedup\": " + fmt(speedup, 2) + "}";
  }
  json += "\n  ],\n";
  return rows;
}

// ---------------------------------------------------------------------------

constexpr std::size_t kSweepPeers = 300;
constexpr std::size_t kRounds = 40;
constexpr std::size_t kMutationsPerRound = 3;

/// Seeds `view` with a connected gossip web over kSweepPeers remote peers
/// plus some owner-incident history.
void seed_history(bartercast::SharedHistory& view, Rng& rng) {
  for (PeerId p = 1; p <= 40; ++p) {
    view.record_local_download(p, rng.uniform_int(kMiB, kGiB));
    view.record_local_upload(p, rng.uniform_int(kMiB, kGiB));
  }
  for (std::size_t i = 0; i < kSweepPeers * 4; ++i) {
    const auto u =
        static_cast<PeerId>(rng.uniform_int(1, kSweepPeers));
    auto v = static_cast<PeerId>(rng.uniform_int(1, kSweepPeers - 1));
    if (v >= u) ++v;
    bartercast::BarterCastMessage msg;
    msg.sender = u;
    msg.records = {{u, v, rng.uniform_int(kMiB, kGiB), 0}};
    view.apply_message(msg);
  }
}

struct SweepResult {
  double ms;
  double checksum;
  std::uint64_t misses;
};

/// R rounds of {apply a few gossip mutations, then sweep every subject}.
/// With `incremental` false the pre-fix policy is emulated: every version
/// bump invalidates the whole cache, i.e. each swept subject pays a full
/// recompute with the very same engine — the two runs differ only in
/// invalidation granularity.
SweepResult run_sweep(bool incremental) {
  Rng rng(99);
  bartercast::SharedHistory view(0);
  seed_history(view, rng);
  bartercast::CachedReputation cache(view, bartercast::ReputationEngine{});
  BC_ASSERT(cache.incremental());
  const bartercast::ReputationEngine cold;
  Bytes claim = 2 * kGiB;  // above the seeded range so merges always apply
  double checksum = 0.0;
  std::uint64_t cold_evals = 0;
  // bc-analyze: allow(D2) -- benchmark wall-time measurement; never feeds simulation state
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t m = 0; m < kMutationsPerRound; ++m) {
      const auto u =
          static_cast<PeerId>(rng.uniform_int(1, kSweepPeers));
      auto v = static_cast<PeerId>(rng.uniform_int(1, kSweepPeers - 1));
      if (v >= u) ++v;
      claim += rng.uniform_int(1, kMiB);
      bartercast::BarterCastMessage msg;
      msg.sender = u;
      msg.records = {{u, v, claim, 0}};
      view.apply_message(msg);
    }
    for (PeerId s = 1; s <= kSweepPeers; ++s) {
      if (incremental) {
        checksum += cache.reputation(s);
      } else {
        checksum += cold.reputation(view, s);
        ++cold_evals;
      }
    }
  }
  const double ms = ms_since(t0);
  return {ms, checksum, incremental ? cache.misses() : cold_evals};
}

double run_sweep_section(std::string& json) {
  const SweepResult full = run_sweep(false);
  const SweepResult inc = run_sweep(true);
  const std::uint64_t inc_bits = std::bit_cast<std::uint64_t>(inc.checksum);
  const std::uint64_t full_bits = std::bit_cast<std::uint64_t>(full.checksum);
  BC_ASSERT_MSG(inc_bits == full_bits,
                "incremental sweep diverged from full recompute");
  const double speedup = inc.ms > 0.0 ? full.ms / inc.ms : 0.0;
  std::printf("\nIncremental vs full-invalidation reputation sweep\n");
  std::printf("(%zu subjects, %zu rounds, %zu mutations/round; identical "
              "checksums)\n\n",
              kSweepPeers, kRounds, kMutationsPerRound);
  Table t({"policy", "sweep_ms", "recomputes", "speedup"});
  t.add_row({"full_invalidation", fmt(full.ms, 1),
             std::to_string(full.misses), "1.00"});
  t.add_row({"incremental", fmt(inc.ms, 1), std::to_string(inc.misses),
             fmt(speedup, 2)});
  std::printf("%s", t.to_string().c_str());
  json += "  \"sweep\": {\"subjects\": " + std::to_string(kSweepPeers) +
          ", \"rounds\": " + std::to_string(kRounds) +
          ", \"mutations_per_round\": " +
          std::to_string(kMutationsPerRound) +
          ", \"full_ms\": " + fmt(full.ms, 3) +
          ", \"full_recomputes\": " + std::to_string(full.misses) +
          ", \"incremental_ms\": " + fmt(inc.ms, 3) +
          ", \"incremental_recomputes\": " + std::to_string(inc.misses) +
          ", \"speedup\": " + fmt(speedup, 2) + "}\n";
  return speedup;
}

}  // namespace

int main() {
  bench::init_observability();
  std::printf("Graph-core bench: dense-index FlowGraph vs hash-map "
              "reference\n\n");
  std::string json = "{\n  \"bench\": \"graph_core\",\n";
  const std::vector<OpRow> rows = run_op_section(json);
  Table t({"op", "count", "dense_ns", "reference_ns", "dense_speedup"});
  for (const OpRow& row : rows) {
    const double speedup = row.dense_ns > 0.0 ? row.ref_ns / row.dense_ns : 0.0;
    t.add_row({row.op, std::to_string(row.count), fmt(row.dense_ns, 1),
               fmt(row.ref_ns, 1), fmt(speedup, 2)});
  }
  std::printf("%s", t.to_string().c_str());

  const double speedup = run_sweep_section(json);
  json += "}\n";
  const char* out_path = std::getenv("BC_BENCH_OUT");
  const std::string path = out_path != nullptr ? out_path : "BENCH_graph.json";
  if (obs::write_text_file(path, json)) {
    std::printf("\ngraph bench JSON written to %s\n", path.c_str());
  }
  if (speedup < 2.0) {
    std::printf("WARNING: incremental sweep speedup %.2fx is below the "
                "2x acceptance bar\n", speedup);
    return 1;
  }
  return 0;
}
