// Microbenchmarks of the maxflow variants (google-benchmark).
//
// BarterCast computes a reputation on every choke decision, so the cost of
// one maxflow evaluation on a subjective graph is the mechanism's hot path.
// This bench quantifies why the paper's path-length-2 restriction matters:
// the closed-form two-hop flow is orders of magnitude cheaper than full
// Ford-Fulkerson and nearly free compared to Edmonds-Karp.
#include <benchmark/benchmark.h>

#include "graph/flow_graph.hpp"
#include "graph/maxflow.hpp"
#include "util/rng.hpp"

namespace {

using namespace bc;

/// Random bartering graph: n nodes, average out-degree d, capacities up to
/// 1 GiB. Node 0 is the evaluator, node 1 the subject.
graph::FlowGraph make_graph(std::size_t n, std::size_t degree,
                            std::uint64_t seed) {
  Rng rng(seed);
  graph::FlowGraph g;
  for (PeerId from = 0; from < n; ++from) {
    for (std::size_t e = 0; e < degree; ++e) {
      auto to = static_cast<PeerId>(rng.index(n));
      if (to == from) to = (to + 1) % static_cast<PeerId>(n);
      g.add_capacity(from, to, rng.uniform_int(kMiB, kGiB));
    }
  }
  return g;
}

void BM_TwoHopClosedForm(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)), 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_flow_two_hop(g, 1, 0));
  }
}
BENCHMARK(BM_TwoHopClosedForm)->Arg(100)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BoundedFordFulkerson2(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)), 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_flow_ford_fulkerson(g, 1, 0, 2));
  }
}
BENCHMARK(BM_BoundedFordFulkerson2)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FullFordFulkerson(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)), 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_flow_ford_fulkerson(g, 1, 0));
  }
}
BENCHMARK(BM_FullFordFulkerson)->Arg(50)->Arg(100);

void BM_EdmondsKarp(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)), 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_flow_edmonds_karp(g, 1, 0));
  }
}
BENCHMARK(BM_EdmondsKarp)->Arg(100)->Arg(300);

// Graph mutation throughput: the shared history applies gossip records
// continuously; edge upserts must stay cheap.
void BM_EdgeUpsert(benchmark::State& state) {
  Rng rng(7);
  graph::FlowGraph g;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto a = static_cast<PeerId>(rng.index(n));
    auto b = static_cast<PeerId>(rng.index(n));
    // bc-analyze: allow(V2) -- n is the benchmark Arg (node count), never zero
    if (a == b) b = (b + 1) % static_cast<PeerId>(n);
    g.add_capacity(a, b, 1000);
  }
}
BENCHMARK(BM_EdgeUpsert)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
