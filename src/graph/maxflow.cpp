#include "graph/maxflow.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace bc::graph {

namespace {

/// Residual network: forward residuals start at the graph capacities,
/// reverse residuals at zero (created lazily on augmentation). Line 9 of the
/// paper's Algorithm 1 — f(j,i) -= cf(p) — is exactly the reverse-residual
/// bookkeeping performed here.
class Residual {
 public:
  explicit Residual(const FlowGraph& g) : g_(g) {}

  Bytes residual(PeerId u, PeerId v) const {
    if (auto it = delta_.find(key(u, v)); it != delta_.end()) {
      return g_.capacity(u, v) + it->second;
    }
    return g_.capacity(u, v);
  }

  void augment(PeerId u, PeerId v, Bytes amount) {
    delta_[key(u, v)] -= amount;
    delta_[key(v, u)] += amount;
  }

  /// Neighbours reachable from u with positive residual capacity: all
  /// forward out-edges plus any reverse edges created by augmentation.
  template <typename Fn>
  void for_each_residual_edge(PeerId u, Fn&& fn) const {
    // bc-analyze: allow(D1) -- hot path: every caller collects the neighbours and re-sorts them by id before use
    for (const auto& [v, _] : g_.out_edges(u)) {
      const Bytes r = residual(u, v);
      if (r > 0) fn(v, r);
    }
    // Reverse edges exist only toward predecessors in the original graph.
    // bc-analyze: allow(D1) -- hot path: every caller collects the neighbours and re-sorts them by id before use
    for (PeerId v : g_.in_edges(u)) {
      if (g_.capacity(u, v) > 0) continue;  // already visited as forward
      const Bytes r = residual(u, v);
      if (r > 0) fn(v, r);
    }
  }

 private:
  static std::uint64_t key(PeerId u, PeerId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  const FlowGraph& g_;
  std::unordered_map<std::uint64_t, Bytes> delta_;
};

/// Depth-first search for an augmenting path of at most `depth_left` edges.
/// Fills `path` with the node sequence s..t on success.
bool dfs_find_path(const Residual& res, PeerId u, PeerId t, int depth_left,
                   std::unordered_set<PeerId>& visited,
                   std::vector<PeerId>& path) {
  if (u == t) return true;
  if (depth_left == 0) return false;
  visited.insert(u);
  bool found = false;
  // Collect candidates first so recursion does not iterate a live structure;
  // sort for run-to-run determinism (hash-map order is insertion-dependent).
  std::vector<std::pair<PeerId, Bytes>> candidates;
  res.for_each_residual_edge(
      u, [&](PeerId v, Bytes r) { candidates.emplace_back(v, r); });
  std::sort(candidates.begin(), candidates.end());
  for (const auto& [v, _] : candidates) {
    if (visited.contains(v)) continue;
    path.push_back(v);
    if (dfs_find_path(res, v, t, depth_left < 0 ? -1 : depth_left - 1, visited,
                      path)) {
      found = true;
      break;
    }
    path.pop_back();
  }
  return found;
}

}  // namespace

Bytes max_flow_ford_fulkerson(const FlowGraph& g, PeerId s, PeerId t,
                              int max_path_edges) {
  BC_OBS_SCOPE("maxflow.ford_fulkerson");
  BC_ASSERT(max_path_edges == kUnboundedPathLength || max_path_edges >= 1);
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  Residual res(g);
  Bytes flow = 0;
  for (;;) {
    std::unordered_set<PeerId> visited;
    std::vector<PeerId> path{s};
    if (!dfs_find_path(res, s, t, max_path_edges, visited, path)) break;
    // Bottleneck capacity along the path (line 6 of Algorithm 1).
    Bytes bottleneck = res.residual(path[0], path[1]);
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      bottleneck = std::min(bottleneck, res.residual(path[i], path[i + 1]));
    }
    BC_ASSERT(bottleneck > 0);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      res.augment(path[i], path[i + 1], bottleneck);
    }
    flow += bottleneck;
  }
  return flow;
}

Bytes max_flow_edmonds_karp(const FlowGraph& g, PeerId s, PeerId t) {
  BC_OBS_SCOPE("maxflow.edmonds_karp");
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  Residual res(g);
  Bytes flow = 0;
  for (;;) {
    // BFS for the shortest augmenting path.
    std::unordered_map<PeerId, PeerId> parent;
    parent[s] = s;
    std::deque<PeerId> queue{s};
    bool reached = false;
    while (!queue.empty() && !reached) {
      const PeerId u = queue.front();
      queue.pop_front();
      std::vector<PeerId> next;
      res.for_each_residual_edge(u, [&](PeerId v, Bytes) {
        if (!parent.contains(v)) next.push_back(v);
      });
      std::sort(next.begin(), next.end());
      for (PeerId v : next) {
        if (parent.contains(v)) continue;  // may appear twice via fwd+rev
        parent[v] = u;
        if (v == t) {
          reached = true;
          break;
        }
        queue.push_back(v);
      }
    }
    if (!reached) break;
    Bytes bottleneck = 0;
    for (PeerId v = t; v != s; v = parent[v]) {
      const Bytes r = res.residual(parent[v], v);
      bottleneck = bottleneck == 0 ? r : std::min(bottleneck, r);
    }
    BC_ASSERT(bottleneck > 0);
    for (PeerId v = t; v != s; v = parent[v]) {
      res.augment(parent[v], v, bottleneck);
    }
    flow += bottleneck;
  }
  return flow;
}

Bytes max_flow_two_hop(const FlowGraph& g, PeerId s, PeerId t) {
  BC_OBS_SCOPE("maxflow.two_hop");
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  Bytes flow = g.capacity(s, t);
  // bc-analyze: allow(D1) -- commutative Bytes sum over disjoint two-hop paths; order cannot change the flow
  for (const auto& [v, cap_sv] : g.out_edges(s)) {
    if (v == t) continue;
    const Bytes cap_vt = g.capacity(v, t);
    if (cap_vt > 0) flow += std::min(cap_sv, cap_vt);
  }
  return flow;
}

}  // namespace bc::graph
