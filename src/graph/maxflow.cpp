#include "graph/maxflow.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/assert.hpp"
#include "util/checked.hpp"

namespace bc::graph {

namespace {

/// Residual network: forward residuals start at the graph capacities,
/// reverse residuals at zero (created lazily on augmentation). Line 9 of the
/// paper's Algorithm 1 — f(j,i) -= cf(p) — is exactly the reverse-residual
/// bookkeeping performed here.
///
/// Augmentation deltas are sparse relative to the graph (bounded by the
/// number of augmenting-path edges), so they live in a small side map keyed
/// by the packed endpoint pair; the adjacency itself is read straight from
/// the dense sorted edge arrays.
class Residual {
 public:
  explicit Residual(const FlowGraph& g) : g_(g) {}

  Bytes residual(PeerId u, PeerId v) const {
    Bytes r = g_.capacity(u, v);
    if (auto it = delta_.find(key(u, v)); it != delta_.end()) r += it->second;
    return r;
  }

  void augment(PeerId u, PeerId v, Bytes amount) {
    delta_[key(u, v)] -= amount;
    delta_[key(v, u)] += amount;
  }

  /// Neighbours reachable from u with positive residual capacity, visited in
  /// ascending PeerId order: a single merge-scan over the sorted out-edge
  /// array (forward residuals) and in-edge array (reverse residuals, which
  /// exist only toward predecessors in the original graph). The sorted
  /// arrays make the deterministic order free — no collect-and-sort pass.
  template <typename Fn>
  void for_each_residual_edge(PeerId u, Fn&& fn) const {
    const EdgeView out = g_.out_edges(u);
    const EdgeView in = g_.in_edges(u);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < out.size() || j < in.size()) {
      PeerId v;
      Bytes base;
      if (j == in.size() || (i < out.size() && out[i].peer <= in[j].peer)) {
        v = out[i].peer;
        base = out[i].cap;
        if (j < in.size() && in[j].peer == v) ++j;  // both directions exist
        ++i;
      } else {
        v = in[j].peer;  // reverse-only: no forward edge (u, v)
        base = 0;
        ++j;
      }
      Bytes r = base;
      if (auto it = delta_.find(key(u, v)); it != delta_.end()) {
        r = util::saturating_add(r, it->second);
      }
      if (r > 0) fn(v, r);
    }
  }

 private:
  static std::uint64_t key(PeerId u, PeerId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  const FlowGraph& g_;
  std::unordered_map<std::uint64_t, Bytes> delta_;
};

/// Per-thread search scratch reused across queries and augmentation rounds:
/// the reputation sweep calls the maxflow entry points once per subject, and
/// none of them may pay the allocator per iteration (bc-analyze rule P1).
/// Buffers grow to the per-thread high-water mark once and are reset with
/// assign()/clear(). `frontier` holds one candidate list per DFS depth; it
/// is a deque so growing it mid-recursion never invalidates the candidate
/// list a shallower frame is iterating.
struct SearchScratch {
  std::vector<char> visited;
  std::vector<PeerId> path;
  std::vector<PeerId> parent;
  std::vector<PeerId> queue;  // BFS FIFO: a cursor chases push_backs
  std::deque<std::vector<std::pair<PeerId, Bytes>>> frontier;
};

SearchScratch& search_scratch() {
  thread_local SearchScratch scratch;
  return scratch;
}

/// Depth-first search for an augmenting path of at most `depth_left` edges.
/// Fills `path` with the node sequence s..t on success. `visited` is a
/// dense slot-indexed bitmap (sized to the graph's slot table); `frontier`
/// is the per-depth candidate scratch and `depth` this frame's level.
bool dfs_find_path(const FlowGraph& g, const Residual& res, PeerId u, PeerId t,
                   int depth_left, std::vector<char>& visited,
                   std::vector<PeerId>& path,
                   std::deque<std::vector<std::pair<PeerId, Bytes>>>& frontier,
                   std::size_t depth) {
  if (u == t) return true;
  if (depth_left == 0) return false;
  visited[g.index().find(u)] = 1;
  bool found = false;
  if (frontier.size() <= depth) frontier.emplace_back();
  // Collect candidates first so recursion does not interleave with the
  // residual merge-scan; the scan already yields ascending PeerId order.
  std::vector<std::pair<PeerId, Bytes>>& candidates = frontier[depth];
  candidates.clear();
  res.for_each_residual_edge(
      u, [&](PeerId v, Bytes r) { candidates.emplace_back(v, r); });
  for (const auto& [v, _] : candidates) {
    if (visited[g.index().find(v)] != 0) continue;
    path.push_back(v);
    if (dfs_find_path(g, res, v, t, depth_left < 0 ? -1 : depth_left - 1,
                      visited, path, frontier, depth + 1)) {
      found = true;
      break;
    }
    path.pop_back();
  }
  return found;
}

}  // namespace

Bytes max_flow_ford_fulkerson(const FlowGraph& g, PeerId s, PeerId t,
                              int max_path_edges) {
  BC_OBS_SCOPE("maxflow.ford_fulkerson");
  BC_ASSERT(max_path_edges == kUnboundedPathLength || max_path_edges >= 1);
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  Residual res(g);
  Bytes flow = 0;
  SearchScratch& scratch = search_scratch();
  std::vector<char>& visited = scratch.visited;
  std::vector<PeerId>& path = scratch.path;
  path.reserve(g.index().slot_count() + 1);
  for (;;) {
    visited.assign(g.index().slot_count(), 0);
    path.clear();
    path.push_back(s);
    // bc-analyze: allow(P1) -- dfs candidate lists are per-depth scratch in
    // SearchScratch: they grow to the per-thread high-water mark once and
    // are reused across queries, steady-state allocation-free
    if (!dfs_find_path(g, res, s, t, max_path_edges, visited, path,
                       scratch.frontier, 0)) {
      break;
    }
    // Bottleneck capacity along the path (line 6 of Algorithm 1).
    Bytes bottleneck = res.residual(path[0], path[1]);
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      bottleneck = std::min(bottleneck, res.residual(path[i], path[i + 1]));
    }
    BC_ASSERT(bottleneck > 0);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      res.augment(path[i], path[i + 1], bottleneck);
    }
    flow = util::saturating_add(flow, bottleneck);
    // Sharded: safe from pool workers, merges deterministically.
    static obs::Counter& augmentations =
        obs::Registry::instance().counter("maxflow.augmenting_paths");
    augmentations.inc();
  }
  return flow;
}

Bytes max_flow_edmonds_karp(const FlowGraph& g, PeerId s, PeerId t) {
  BC_OBS_SCOPE("maxflow.edmonds_karp");
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  Residual res(g);
  Bytes flow = 0;
  SearchScratch& scratch = search_scratch();
  std::vector<PeerId>& parent = scratch.parent;
  std::vector<PeerId>& queue = scratch.queue;
  queue.reserve(g.index().slot_count());
  for (;;) {
    // BFS for the shortest augmenting path. The parent table is a dense
    // slot-indexed array: parent[slot(v)] is the BFS predecessor of v, or
    // kInvalidPeer while v is undiscovered. The FIFO is the reusable
    // `queue` buffer with a cursor instead of pop_front: same visit order,
    // no per-round deque churn.
    parent.assign(g.index().slot_count(), kInvalidPeer);
    parent[g.index().find(s)] = s;
    queue.clear();
    queue.push_back(s);
    std::size_t cursor = 0;
    bool reached = false;
    while (cursor < queue.size() && !reached) {
      const PeerId u = queue[cursor++];
      res.for_each_residual_edge(u, [&](PeerId v, Bytes) {
        if (reached) return;
        PeerId& p = parent[g.index().find(v)];
        if (p != kInvalidPeer) return;
        p = u;
        if (v == t) {
          reached = true;
          return;
        }
        queue.push_back(v);
      });
    }
    if (!reached) break;
    Bytes bottleneck = 0;
    for (PeerId v = t; v != s; v = parent[g.index().find(v)]) {
      const Bytes r = res.residual(parent[g.index().find(v)], v);
      bottleneck = bottleneck == 0 ? r : std::min(bottleneck, r);
    }
    BC_ASSERT(bottleneck > 0);
    for (PeerId v = t; v != s;) {
      const PeerId u = parent[g.index().find(v)];
      res.augment(u, v, bottleneck);
      v = u;
    }
    flow = util::saturating_add(flow, bottleneck);
  }
  return flow;
}

Bytes max_flow_two_hop(const FlowGraph& g, PeerId s, PeerId t) {
  BC_OBS_SCOPE("maxflow.two_hop");
  // Sharded instruments: the simulator's batch sweeps call this from pool
  // workers, where each chunk records into its own shard.
  static obs::Counter& queries =
      obs::Registry::instance().counter("maxflow.two_hop_queries");
  static obs::LogHistogram& flow_bytes = obs::Registry::instance().log_histogram(
      "maxflow.flow_bytes", obs::LogSpec::magnitude());
  queries.inc();
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  Bytes flow = g.capacity(s, t);
  // Paths of length two are pairwise edge-disjoint, so the flow beyond the
  // direct edge is a merge-scan intersection of s's successors and t's
  // predecessors: each shared neighbour v contributes min(c(s,v), c(v,t)).
  // Neither span can contain its own node (no self-edges), so s and t are
  // excluded from the intersection automatically.
  const EdgeView out = g.out_edges(s);
  const EdgeView in = g.in_edges(t);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i].peer < in[j].peer) {
      ++i;
    } else if (in[j].peer < out[i].peer) {
      ++j;
    } else {
      flow = util::saturating_add(flow, std::min(out[i].cap, in[j].cap));
      ++i;
      ++j;
    }
  }
  flow_bytes.observe(static_cast<double>(flow));
  return flow;
}

}  // namespace bc::graph
