// Reference (oracle) graph implementation for differential testing.
//
// This is the pre-dense-core FlowGraph: nested hash-map adjacency with a
// mirrored in-edge set, plus straight ports of the three maxflow variants
// on top of it. It is retained verbatim-in-spirit as an independent oracle:
// the differential test suite (tests/graph/differential_test.cpp) drives
// the dense FlowGraph and this ReferenceFlowGraph through identical
// randomized operation sequences and cross-checks every query and all
// three maxflow variants. It also backs the dense-vs-hash comparison in
// bench/graph_core.cpp.
//
// Not for production use: the hash layout is slower on the two-hop hot path
// and its iteration order is only made deterministic by per-call sorting.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/maxflow.hpp"  // kUnboundedPathLength
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::graph {

class ReferenceFlowGraph {
 public:
  /// Adds `amount` to the capacity of edge (from, to). Creates nodes and the
  /// edge as needed. `amount` must be >= 0; zero-amount calls still create
  /// the nodes (but not the edge).
  void add_capacity(PeerId from, PeerId to, Bytes amount);

  /// Replaces the capacity of edge (from, to). A value of 0 removes the edge.
  void set_capacity(PeerId from, PeerId to, Bytes amount);

  /// Capacity of (from, to); 0 if the edge or either node is absent.
  Bytes capacity(PeerId from, PeerId to) const;

  bool has_node(PeerId node) const { return out_.contains(node); }
  std::size_t num_nodes() const { return out_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Successors of `node` with positive capacity. Empty map for unknown node.
  const std::unordered_map<PeerId, Bytes>& out_edges(PeerId node) const;
  /// Predecessors of `node` (nodes with a positive-capacity edge into it).
  const std::unordered_set<PeerId>& in_edges(PeerId node) const;

  /// All node ids, sorted ascending.
  std::vector<PeerId> nodes() const;

  /// Sum of capacities of all edges.
  Bytes total_capacity() const;

  Bytes out_capacity(PeerId node) const;
  Bytes in_capacity(PeerId node) const;

  /// Removes a node and all incident edges. No-op for unknown node.
  void remove_node(PeerId node);

  void clear();

  /// Internal consistency check (out/in indices mirror each other, all
  /// capacities positive).
  bool check_invariants() const;

 private:
  // Ensures the node exists in both indices.
  void touch(PeerId node);

  std::unordered_map<PeerId, std::unordered_map<PeerId, Bytes>> out_;
  std::unordered_map<PeerId, std::unordered_set<PeerId>> in_;
  std::size_t num_edges_ = 0;
};

/// Oracle ports of the maxflow variants over the hash-map representation.
/// Semantics match the dense implementations in maxflow.cpp exactly
/// (including the deterministic ascending-PeerId exploration order, which
/// the hash version recovers by sorting candidates per step).
Bytes ref_max_flow_ford_fulkerson(const ReferenceFlowGraph& g, PeerId s,
                                  PeerId t,
                                  int max_path_edges = kUnboundedPathLength);
Bytes ref_max_flow_edmonds_karp(const ReferenceFlowGraph& g, PeerId s,
                                PeerId t);
Bytes ref_max_flow_two_hop(const ReferenceFlowGraph& g, PeerId s, PeerId t);

}  // namespace bc::graph
