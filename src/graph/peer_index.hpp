// Interning layer between public PeerIds and the dense node indices the
// graph core stores internally.
//
// FlowGraph addresses its vertex tables with NodeIndex — a dense u32 slot
// number — so adjacency, visited sets, and residual bookkeeping are plain
// vectors instead of hash maps. PeerIndex owns the PeerId <-> NodeIndex
// bijection. Slots freed by remove_node() are recycled smallest-first, so
// the slot table stays compact under churn and the assignment depends only
// on the operation sequence (deterministic across runs and standard
// libraries).
//
// NodeIndex values are an implementation detail of src/graph/: they are
// not stable identifiers (a freed slot is reassigned to a different peer)
// and must never leak into gossip, reputation, or serialized output.
// bc-analyze rule G1 flags any use of this header outside src/graph/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"

namespace bc::graph {

/// Dense slot number of a peer inside one FlowGraph. Valid only for the
/// graph that issued it, and only until that peer is removed.
using NodeIndex = std::uint32_t;

inline constexpr NodeIndex kNoNode = std::numeric_limits<NodeIndex>::max();

class PeerIndex {
 public:
  /// Slot of `id`, creating one if absent. Freed slots are recycled
  /// smallest-first before the table grows.
  NodeIndex intern(PeerId id);

  /// Slot of `id`, or kNoNode if the peer was never interned (or erased).
  NodeIndex find(PeerId id) const {
    auto it = index_of_.find(id);
    return it == index_of_.end() ? kNoNode : it->second;
  }

  /// PeerId occupying `slot`; kInvalidPeer for a free slot.
  PeerId peer(NodeIndex slot) const {
    return slot < peer_of_.size() ? peer_of_[slot] : kInvalidPeer;
  }

  bool contains(PeerId id) const { return index_of_.contains(id); }

  /// Number of live (interned, not erased) peers.
  std::size_t size() const { return index_of_.size(); }

  /// Size of the dense slot table (live peers + free slots). Vertex-indexed
  /// vectors inside the graph module are sized to this.
  std::size_t slot_count() const { return peer_of_.size(); }

  /// Frees the slot of `id` for reuse. No-op for unknown ids.
  void erase(PeerId id);

  void clear();

  /// All live PeerIds, ascending (deterministic across runs and standard
  /// library implementations).
  std::vector<PeerId> ids_sorted() const;

  /// Forward map and free list mirror each other; free slots hold
  /// kInvalidPeer. Used by FlowGraph::check_invariants().
  bool check_invariants() const;

 private:
  std::unordered_map<PeerId, NodeIndex> index_of_;
  std::vector<PeerId> peer_of_;     // slot -> id; kInvalidPeer when free
  std::vector<NodeIndex> free_;     // sorted descending; back() = smallest
};

}  // namespace bc::graph
