#include "graph/flow_graph.hpp"

#include "util/assert.hpp"
#include "util/sorted_view.hpp"

namespace bc::graph {

namespace {
const std::unordered_map<PeerId, Bytes> kEmptyOut;
const std::unordered_set<PeerId> kEmptyIn;
}  // namespace

void FlowGraph::touch(PeerId node) {
  out_.try_emplace(node);
  in_.try_emplace(node);
}

void FlowGraph::add_capacity(PeerId from, PeerId to, Bytes amount) {
  BC_ASSERT(amount >= 0);
  BC_ASSERT_MSG(from != to, "self-edges carry no reputation information");
  touch(from);
  touch(to);
  if (amount == 0) return;
  auto [it, inserted] = out_[from].try_emplace(to, 0);
  it->second += amount;
  if (inserted) {
    in_[to].insert(from);
    ++num_edges_;
  }
}

void FlowGraph::set_capacity(PeerId from, PeerId to, Bytes amount) {
  BC_ASSERT(amount >= 0);
  BC_ASSERT_MSG(from != to, "self-edges carry no reputation information");
  touch(from);
  touch(to);
  auto& adj = out_[from];
  auto it = adj.find(to);
  if (amount == 0) {
    if (it != adj.end()) {
      adj.erase(it);
      in_[to].erase(from);
      --num_edges_;
    }
    return;
  }
  if (it == adj.end()) {
    adj.emplace(to, amount);
    in_[to].insert(from);
    ++num_edges_;
  } else {
    it->second = amount;
  }
}

Bytes FlowGraph::capacity(PeerId from, PeerId to) const {
  auto node = out_.find(from);
  if (node == out_.end()) return 0;
  auto edge = node->second.find(to);
  return edge == node->second.end() ? 0 : edge->second;
}

bool FlowGraph::has_node(PeerId node) const { return out_.contains(node); }

const std::unordered_map<PeerId, Bytes>& FlowGraph::out_edges(
    PeerId node) const {
  auto it = out_.find(node);
  return it == out_.end() ? kEmptyOut : it->second;
}

const std::unordered_set<PeerId>& FlowGraph::in_edges(PeerId node) const {
  auto it = in_.find(node);
  return it == in_.end() ? kEmptyIn : it->second;
}

std::vector<PeerId> FlowGraph::nodes() const {
  // Key-sorted so every consumer (gossip selection, exports, audits) sees
  // the same node order on every run and standard library.
  return util::sorted_keys(out_);
}

Bytes FlowGraph::out_capacity(PeerId node) const {
  Bytes total = 0;
  // bc-analyze: allow(D1) -- integer sum over all edges; addition over Bytes is commutative, order never escapes
  for (const auto& [_, cap] : out_edges(node)) total += cap;
  return total;
}

Bytes FlowGraph::in_capacity(PeerId node) const {
  Bytes total = 0;
  // bc-analyze: allow(D1) -- integer sum over all in-edges; commutative, order never escapes
  for (PeerId from : in_edges(node)) total += capacity(from, node);
  return total;
}

Bytes FlowGraph::total_capacity() const {
  Bytes total = 0;
  // bc-analyze: allow(D1) -- integer sum over every edge; commutative, order never escapes
  for (const auto& [_, adj] : out_) {
    for (const auto& [__, cap] : adj) total += cap;
  }
  return total;
}

void FlowGraph::remove_node(PeerId node) {
  auto it = out_.find(node);
  if (it == out_.end()) return;
  // Drop outgoing edges and their reverse index entries.
  // bc-analyze: allow(D1) -- per-edge erases touch disjoint entries; final state is order-independent
  for (const auto& [to, _] : it->second) {
    in_[to].erase(node);
    --num_edges_;
  }
  // Drop incoming edges.
  // bc-analyze: allow(D1) -- per-edge erases touch disjoint entries; final state is order-independent
  for (PeerId from : in_[node]) {
    out_[from].erase(node);
    --num_edges_;
  }
  out_.erase(node);
  in_.erase(node);
}

void FlowGraph::clear() {
  out_.clear();
  in_.clear();
  num_edges_ = 0;
}

bool FlowGraph::check_invariants() const {
  std::size_t edges = 0;
  // bc-analyze: allow(D1) -- boolean all-of over every edge; a pure predicate, order cannot change the result
  for (const auto& [from, adj] : out_) {
    if (!in_.contains(from)) return false;
    for (const auto& [to, cap] : adj) {
      if (cap <= 0) return false;
      auto in_it = in_.find(to);
      if (in_it == in_.end() || !in_it->second.contains(from)) return false;
      ++edges;
    }
  }
  if (edges != num_edges_) return false;
  // Every in-edge must have a matching out-edge.
  // bc-analyze: allow(D1) -- boolean all-of over the reverse index; order cannot change the result
  for (const auto& [to, preds] : in_) {
    for (PeerId from : preds) {
      auto out_it = out_.find(from);
      if (out_it == out_.end() || !out_it->second.contains(to)) return false;
    }
  }
  return true;
}

}  // namespace bc::graph
