#include "graph/flow_graph.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/checked.hpp"

namespace bc::graph {

namespace {

/// Position of `peer` in a sorted adjacency array (lower bound).
std::vector<Edge>::iterator adj_lower_bound(std::vector<Edge>& adj,
                                            PeerId peer) {
  return std::lower_bound(
      adj.begin(), adj.end(), peer,
      [](const Edge& e, PeerId p) { return e.peer < p; });
}

std::vector<Edge>::const_iterator adj_lower_bound(
    const std::vector<Edge>& adj, PeerId peer) {
  return std::lower_bound(
      adj.begin(), adj.end(), peer,
      [](const Edge& e, PeerId p) { return e.peer < p; });
}

/// Pointer to the entry for `peer`, or nullptr if absent.
const Edge* adj_find(const std::vector<Edge>& adj, PeerId peer) {
  auto it = adj_lower_bound(adj, peer);
  return it != adj.end() && it->peer == peer ? &*it : nullptr;
}

/// Removes the entry for `peer`; the entry must exist.
void adj_erase(std::vector<Edge>& adj, PeerId peer) {
  auto it = adj_lower_bound(adj, peer);
  BC_DASSERT(it != adj.end() && it->peer == peer);
  adj.erase(it);
}

}  // namespace

NodeIndex FlowGraph::touch(PeerId node) {
  const NodeIndex slot = index_.intern(node);
  if (slot >= out_.size()) {
    out_.resize(index_.slot_count());
    in_.resize(index_.slot_count());
  }
  return slot;
}

void FlowGraph::add_capacity(PeerId from, PeerId to, Bytes amount) {
  BC_ASSERT(amount >= 0);
  BC_ASSERT_MSG(from != to, "self-edges carry no reputation information");
  const NodeIndex fi = touch(from);
  const NodeIndex ti = touch(to);
  if (amount == 0) return;
  auto& adj = out_[fi];
  auto it = adj_lower_bound(adj, to);
  if (it != adj.end() && it->peer == to) {
    // Gossiped capacities are attacker-influenced: saturate rather than
    // trust the remote ledger to stay inside int64.
    it->cap = util::saturating_add(it->cap, amount);
    adj_lower_bound(in_[ti], from)->cap = it->cap;
    caps_.insert_or_assign(fi, to, it->cap);
  } else {
    adj.insert(it, Edge{to, amount});
    auto& mirror = in_[ti];
    mirror.insert(adj_lower_bound(mirror, from), Edge{from, amount});
    caps_.insert_or_assign(fi, to, amount);
    ++num_edges_;
    ++gen_;
  }
}

void FlowGraph::set_capacity(PeerId from, PeerId to, Bytes amount) {
  BC_ASSERT(amount >= 0);
  BC_ASSERT_MSG(from != to, "self-edges carry no reputation information");
  const NodeIndex fi = touch(from);
  const NodeIndex ti = touch(to);
  auto& adj = out_[fi];
  auto it = adj_lower_bound(adj, to);
  const bool present = it != adj.end() && it->peer == to;
  if (amount == 0) {
    if (present) {
      adj.erase(it);
      adj_erase(in_[ti], from);
      caps_.erase(fi, to);
      --num_edges_;
      ++gen_;
    }
    return;
  }
  if (present) {
    it->cap = amount;
    adj_lower_bound(in_[ti], from)->cap = amount;
  } else {
    adj.insert(it, Edge{to, amount});
    auto& mirror = in_[ti];
    mirror.insert(adj_lower_bound(mirror, from), Edge{from, amount});
    ++num_edges_;
    ++gen_;
  }
  caps_.insert_or_assign(fi, to, amount);
}

Bytes FlowGraph::capacity(PeerId from, PeerId to) const {
  const NodeIndex fi = index_.find(from);
  if (fi == kNoNode) return 0;
  const Bytes* cap = caps_.find(fi, to);
  return cap == nullptr ? 0 : *cap;
}

std::span<const Edge> FlowGraph::edges_of(
    const std::vector<std::vector<Edge>>& side, PeerId node) const {
  const NodeIndex slot = index_.find(node);
  if (slot == kNoNode) return {};
  return side[slot];
}

EdgeView FlowGraph::out_edges(PeerId node) const {
  const std::span<const Edge> edges = edges_of(out_, node);
#if BC_GRAPH_GENERATION_CHECKS
  // An empty span borrows no storage, so it can never dangle — skip the
  // generation snapshot rather than aborting on a harmless empty().
  return EdgeView(edges, edges.empty() ? nullptr : &gen_);
#else
  return EdgeView(edges);
#endif
}

EdgeView FlowGraph::in_edges(PeerId node) const {
  const std::span<const Edge> edges = edges_of(in_, node);
#if BC_GRAPH_GENERATION_CHECKS
  return EdgeView(edges, edges.empty() ? nullptr : &gen_);
#else
  return EdgeView(edges);
#endif
}

Bytes FlowGraph::out_capacity(PeerId node) const {
  Bytes total = 0;
  for (const Edge& e : out_edges(node)) {
    total = util::saturating_add(total, e.cap);
  }
  return total;
}

Bytes FlowGraph::in_capacity(PeerId node) const {
  Bytes total = 0;
  for (const Edge& e : in_edges(node)) {
    total = util::saturating_add(total, e.cap);
  }
  return total;
}

Bytes FlowGraph::total_capacity() const {
  Bytes total = 0;
  for (const auto& adj : out_) {
    for (const Edge& e : adj) total = util::saturating_add(total, e.cap);
  }
  return total;
}

void FlowGraph::remove_node(PeerId node) {
  const NodeIndex slot = index_.find(node);
  if (slot == kNoNode) return;
  // Drop outgoing edges and their reverse index entries.
  for (const Edge& e : out_[slot]) {
    adj_erase(in_[index_.find(e.peer)], node);
    caps_.erase(slot, e.peer);
    --num_edges_;
  }
  // Drop incoming edges.
  for (const Edge& e : in_[slot]) {
    adj_erase(out_[index_.find(e.peer)], node);
    caps_.erase(index_.find(e.peer), node);
    --num_edges_;
  }
  out_[slot].clear();
  out_[slot].shrink_to_fit();
  in_[slot].clear();
  in_[slot].shrink_to_fit();
  index_.erase(node);
  ++gen_;
}

void FlowGraph::clear() {
  index_.clear();
  out_.clear();
  in_.clear();
  caps_.clear();
  num_edges_ = 0;
  ++gen_;
}

bool FlowGraph::check_invariants() const {
  if (!index_.check_invariants()) return false;
  if (out_.size() != in_.size()) return false;
  if (out_.size() > index_.slot_count()) return false;
  auto sorted_positive = [](const std::vector<Edge>& adj) {
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i].cap <= 0) return false;
      if (i > 0 && adj[i - 1].peer >= adj[i].peer) return false;
    }
    return true;
  };
  std::size_t edges = 0;
  for (NodeIndex slot = 0; slot < out_.size(); ++slot) {
    const PeerId id = index_.peer(slot);
    if (id == kInvalidPeer) {
      // Free slot: must hold no adjacency.
      if (!out_[slot].empty() || !in_[slot].empty()) return false;
      continue;
    }
    if (!sorted_positive(out_[slot]) || !sorted_positive(in_[slot])) {
      return false;
    }
    for (const Edge& e : out_[slot]) {
      const NodeIndex to = index_.find(e.peer);
      if (to == kNoNode || to >= in_.size()) return false;
      const Edge* mirror = adj_find(in_[to], id);
      if (mirror == nullptr || mirror->cap != e.cap) return false;
      // The point-query sidecar must agree with the adjacency array.
      const Bytes* side = caps_.find(slot, e.peer);
      if (side == nullptr || *side != e.cap) return false;
      ++edges;
    }
    // Every in-edge must have a matching out-edge with the same capacity.
    for (const Edge& e : in_[slot]) {
      const NodeIndex from = index_.find(e.peer);
      if (from == kNoNode || from >= out_.size()) return false;
      const Edge* fwd = adj_find(out_[from], id);
      if (fwd == nullptr || fwd->cap != e.cap) return false;
    }
  }
  // Size equality makes the sidecar's agreement exact: every edge was
  // found above, so equal counts rule out stray sidecar entries.
  if (caps_.size() != num_edges_) return false;
  return edges == num_edges_;
}

}  // namespace bc::graph
