#include "graph/peer_index.hpp"

#include <algorithm>
#include <functional>

#include "util/assert.hpp"
#include "util/sorted_view.hpp"

namespace bc::graph {

NodeIndex PeerIndex::intern(PeerId id) {
  auto [it, inserted] = index_of_.try_emplace(id, kNoNode);
  if (!inserted) return it->second;
  NodeIndex slot;
  if (!free_.empty()) {
    slot = free_.back();  // smallest free slot: free_ is sorted descending
    free_.pop_back();
    BC_DASSERT(peer_of_[slot] == kInvalidPeer);
    peer_of_[slot] = id;
  } else {
    slot = static_cast<NodeIndex>(peer_of_.size());
    peer_of_.push_back(id);
  }
  it->second = slot;
  return slot;
}

void PeerIndex::erase(PeerId id) {
  auto it = index_of_.find(id);
  if (it == index_of_.end()) return;
  const NodeIndex slot = it->second;
  index_of_.erase(it);
  peer_of_[slot] = kInvalidPeer;
  // Keep the free list sorted descending so the smallest slot is recycled
  // first; removal is rare, so the O(free) insertion is acceptable. The
  // invariant free_.size() <= peer_of_.size() makes this reserve a one-time
  // cost: churn inside the simulation round loop never hits the allocator.
  free_.reserve(peer_of_.size());
  free_.insert(
      std::lower_bound(free_.begin(), free_.end(), slot,
                       std::greater<NodeIndex>()),
      slot);
}

void PeerIndex::clear() {
  index_of_.clear();
  peer_of_.clear();
  free_.clear();
}

std::vector<PeerId> PeerIndex::ids_sorted() const {
  return util::sorted_keys(index_of_);
}

bool PeerIndex::check_invariants() const {
  if (index_of_.size() + free_.size() != peer_of_.size()) return false;
  // bc-analyze: allow(D1) -- boolean all-of over the map; a pure predicate, order cannot change the result
  for (const auto& [id, slot] : index_of_) {
    if (id == kInvalidPeer) return false;
    if (slot >= peer_of_.size() || peer_of_[slot] != id) return false;
  }
  if (!std::is_sorted(free_.begin(), free_.end(),
                      std::greater<NodeIndex>())) {
    return false;
  }
  if (std::adjacent_find(free_.begin(), free_.end()) != free_.end()) {
    return false;
  }
  for (const NodeIndex slot : free_) {
    if (slot >= peer_of_.size() || peer_of_[slot] != kInvalidPeer) {
      return false;
    }
  }
  return true;
}

}  // namespace bc::graph
