// Directed graph with non-negative integer edge capacities.
//
// In BarterCast the capacity c(i, j) is "the total number of bytes peer i
// has uploaded to peer j in the past" (paper §3.2). The graph is sparse and
// mutated incrementally as transfer records arrive, so it is stored as
// per-node hash adjacency with a mirrored in-edge index for reverse
// traversal (needed by the residual network of the maxflow algorithms).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::graph {

class FlowGraph {
 public:
  /// Adds `amount` to the capacity of edge (from, to). Creates nodes and the
  /// edge as needed. `amount` must be >= 0; zero-amount calls still create
  /// the nodes (but not the edge).
  void add_capacity(PeerId from, PeerId to, Bytes amount);

  /// Replaces the capacity of edge (from, to). A value of 0 removes the edge.
  void set_capacity(PeerId from, PeerId to, Bytes amount);

  /// Capacity of (from, to); 0 if the edge or either node is absent.
  Bytes capacity(PeerId from, PeerId to) const;

  bool has_node(PeerId node) const;
  std::size_t num_nodes() const { return out_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Successors of `node` with positive capacity. Empty map for unknown node.
  const std::unordered_map<PeerId, Bytes>& out_edges(PeerId node) const;
  /// Predecessors of `node` (nodes with a positive-capacity edge into it).
  const std::unordered_set<PeerId>& in_edges(PeerId node) const;

  /// All node ids, sorted ascending (deterministic across runs and
  /// standard-library implementations).
  std::vector<PeerId> nodes() const;

  /// Sum of capacities of all edges.
  Bytes total_capacity() const;

  /// Sum of capacities leaving `node` (an upper bound on any s=node flow:
  /// the trivial cut around the source). 0 for unknown nodes.
  Bytes out_capacity(PeerId node) const;
  /// Sum of capacities entering `node` (the trivial cut around the sink).
  Bytes in_capacity(PeerId node) const;

  /// Removes a node and all incident edges. No-op for unknown node.
  void remove_node(PeerId node);

  void clear();

  /// Internal consistency check (out/in indices mirror each other, all
  /// capacities positive). Used by tests and BC_DASSERT call sites.
  bool check_invariants() const;

 private:
  // Ensures the node exists in both indices.
  void touch(PeerId node);

  std::unordered_map<PeerId, std::unordered_map<PeerId, Bytes>> out_;
  std::unordered_map<PeerId, std::unordered_set<PeerId>> in_;
  std::size_t num_edges_ = 0;
};

}  // namespace bc::graph
