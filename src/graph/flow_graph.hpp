// Directed graph with non-negative integer edge capacities.
//
// In BarterCast the capacity c(i, j) is "the total number of bytes peer i
// has uploaded to peer j in the past" (paper §3.2). The graph is sparse and
// mutated incrementally as transfer records arrive; at reputation-serving
// scale the two-hop maxflow query is the hot path of the whole system, so
// storage is a dense-index core: a PeerIndex interns PeerIds to dense
// NodeIndex slots, and per-node adjacency is a sorted array of Edge entries
// (ascending neighbor PeerId) with a mirrored in-edge array for reverse
// traversal. Sorted arrays make neighbor queries a binary search, the
// two-hop flow a linear merge-scan (see maxflow.cpp), and every public
// iteration surface deterministically ordered without sorted_view wrappers.
//
// The public API speaks PeerId only. Dense indices are an internal detail
// of src/graph/ (bc-analyze rule G1 flags leaks); the `index()` accessor
// exists for the maxflow implementations and tests of this module.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/peer_index.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::graph {

/// One adjacency entry: a neighbor and the capacity of the connecting edge.
/// In an out-edge array of node u, `peer` is the head v of edge (u, v); in
/// an in-edge array of node v, `peer` is the tail u and `cap` the same
/// c(u, v) (the mirror stores capacities so reverse scans need no lookup).
struct Edge {
  PeerId peer;
  Bytes cap;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class FlowGraph {
 public:
  /// Adds `amount` to the capacity of edge (from, to). Creates nodes and the
  /// edge as needed. `amount` must be >= 0; zero-amount calls still create
  /// the nodes (but not the edge).
  void add_capacity(PeerId from, PeerId to, Bytes amount);

  /// Replaces the capacity of edge (from, to). A value of 0 removes the edge.
  void set_capacity(PeerId from, PeerId to, Bytes amount);

  /// Capacity of (from, to); 0 if the edge or either node is absent.
  Bytes capacity(PeerId from, PeerId to) const;

  bool has_node(PeerId node) const { return index_.contains(node); }
  std::size_t num_nodes() const { return index_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Successors of `node` with positive capacity, ascending by PeerId.
  /// Empty span for an unknown node. Invalidated by any mutation.
  std::span<const Edge> out_edges(PeerId node) const;
  /// Predecessors of `node` (each entry: tail peer and the capacity of the
  /// edge into `node`), ascending by PeerId. Invalidated by any mutation.
  std::span<const Edge> in_edges(PeerId node) const;

  /// All node ids, sorted ascending (deterministic across runs and
  /// standard-library implementations).
  std::vector<PeerId> nodes() const { return index_.ids_sorted(); }

  /// Sum of capacities of all edges.
  Bytes total_capacity() const;

  /// Sum of capacities leaving `node` (an upper bound on any s=node flow:
  /// the trivial cut around the source). 0 for unknown nodes.
  Bytes out_capacity(PeerId node) const;
  /// Sum of capacities entering `node` (the trivial cut around the sink).
  Bytes in_capacity(PeerId node) const;

  /// Removes a node and all incident edges, returning its slot to the
  /// PeerIndex free list (a later add re-interns it, possibly at a
  /// different slot). No-op for unknown node.
  void remove_node(PeerId node);

  void clear();

  /// Internal consistency check (adjacency sorted strictly ascending, all
  /// capacities positive, out/in arrays mirror each other with equal
  /// capacities, PeerIndex bijection intact). Used by tests and BC_DASSERT
  /// call sites.
  bool check_invariants() const;

  /// The interning layer, exposed for the maxflow implementations and the
  /// tests of this module only (bc-analyze G1 enforces the boundary).
  const PeerIndex& index() const { return index_; }

 private:
  // Ensures the node exists, returning its slot.
  NodeIndex touch(PeerId node);

  PeerIndex index_;
  std::vector<std::vector<Edge>> out_;  // slot -> sorted out-adjacency
  std::vector<std::vector<Edge>> in_;   // slot -> sorted in-adjacency
  std::size_t num_edges_ = 0;
};

}  // namespace bc::graph
