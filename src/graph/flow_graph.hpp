// Directed graph with non-negative integer edge capacities.
//
// In BarterCast the capacity c(i, j) is "the total number of bytes peer i
// has uploaded to peer j in the past" (paper §3.2). The graph is sparse and
// mutated incrementally as transfer records arrive; at reputation-serving
// scale the two-hop maxflow query is the hot path of the whole system, so
// storage is a dense-index core: a PeerIndex interns PeerIds to dense
// NodeIndex slots, and per-node adjacency is a sorted array of Edge entries
// (ascending neighbor PeerId) with a mirrored in-edge array for reverse
// traversal. Sorted arrays make neighbor queries a binary search, the
// two-hop flow a linear merge-scan (see maxflow.cpp), and every public
// iteration surface deterministically ordered without sorted_view wrappers.
//
// The public API speaks PeerId only. Dense indices are an internal detail
// of src/graph/ (bc-analyze rule G1 flags leaks); the `index()` accessor
// exists for the maxflow implementations and tests of this module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/peer_index.hpp"
#include "util/assert.hpp"
#include "util/checked.hpp"  // BC_NO_SANITIZE_INTEGER
#include "util/ids.hpp"
#include "util/units.hpp"

/// Debug-build invalidation checking for EdgeView. When on, every view
/// carries a snapshot of the owning graph's generation counter and every
/// access asserts the graph has not been structurally mutated since the
/// view was taken — the dynamic counterpart of bc-analyze rule L2
/// (invalidated-view). Release builds compile the bookkeeping out entirely;
/// EdgeView is then layout-identical to std::span<const Edge>.
#ifndef NDEBUG
#define BC_GRAPH_GENERATION_CHECKS 1
#else
#define BC_GRAPH_GENERATION_CHECKS 0
#endif

namespace bc::graph {

/// One adjacency entry: a neighbor and the capacity of the connecting edge.
/// In an out-edge array of node u, `peer` is the head v of edge (u, v); in
/// an in-edge array of node v, `peer` is the tail u and `cap` the same
/// c(u, v) (the mirror stores capacities so reverse scans need no lookup).
struct Edge {
  PeerId peer;
  Bytes cap;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A read-only view of one node's adjacency array. Semantically a
/// std::span<const Edge> (and exactly that in release builds), but in debug
/// and validate builds every access BC_DASSERT-checks that the owning
/// FlowGraph has not been structurally mutated (edge inserted/erased, node
/// removed, clear()) since the view was taken — holding a view across
/// add_capacity/set_capacity/remove_node is the classic dangling-span bug
/// (bc-analyze rule L2), and this makes it fail-stop instead of silent UB.
class EdgeView {
 public:
  using value_type = Edge;
  using iterator = const Edge*;

  EdgeView() = default;

  const Edge* begin() const {
    check();
    return span_.data();
  }
  const Edge* end() const {
    check();
    return span_.data() + span_.size();
  }
  std::size_t size() const {
    check();
    return span_.size();
  }
  bool empty() const {
    check();
    return span_.empty();
  }
  const Edge& operator[](std::size_t i) const {
    check();
    return span_[i];
  }
  const Edge& front() const {
    check();
    return span_.front();
  }
  const Edge& back() const {
    check();
    return span_.back();
  }

 private:
  friend class FlowGraph;

#if BC_GRAPH_GENERATION_CHECKS
  EdgeView(std::span<const Edge> span, const std::uint64_t* gen)
      : span_(span), gen_(gen), snapshot_(gen != nullptr ? *gen : 0) {}

  void check() const {
    BC_DASSERT(gen_ == nullptr || *gen_ == snapshot_);
  }

  std::span<const Edge> span_;
  const std::uint64_t* gen_ = nullptr;  // owning graph's counter; null = empty
  std::uint64_t snapshot_ = 0;          // counter value when the view was taken
#else
  explicit EdgeView(std::span<const Edge> span) : span_(span) {}

  void check() const {}

  std::span<const Edge> span_;
#endif
};

#if !BC_GRAPH_GENERATION_CHECKS
static_assert(sizeof(EdgeView) == sizeof(std::span<const Edge>),
              "EdgeView must carry zero overhead in release builds");
#endif

class FlowGraph {
 public:
  /// Adds `amount` to the capacity of edge (from, to). Creates nodes and the
  /// edge as needed. `amount` must be >= 0; zero-amount calls still create
  /// the nodes (but not the edge).
  void add_capacity(PeerId from, PeerId to, Bytes amount);

  /// Replaces the capacity of edge (from, to). A value of 0 removes the edge.
  void set_capacity(PeerId from, PeerId to, Bytes amount);

  /// Capacity of (from, to); 0 if the edge or either node is absent.
  Bytes capacity(PeerId from, PeerId to) const;

  bool has_node(PeerId node) const { return index_.contains(node); }
  std::size_t num_nodes() const { return index_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Successors of `node` with positive capacity, ascending by PeerId.
  /// Empty view for an unknown node. Invalidated by any structural mutation
  /// (debug builds assert on stale access; see EdgeView).
  EdgeView out_edges(PeerId node) const;
  /// Predecessors of `node` (each entry: tail peer and the capacity of the
  /// edge into `node`), ascending by PeerId. Invalidated by any structural
  /// mutation (debug builds assert on stale access; see EdgeView).
  EdgeView in_edges(PeerId node) const;

  /// All node ids, sorted ascending (deterministic across runs and
  /// standard-library implementations).
  std::vector<PeerId> nodes() const { return index_.ids_sorted(); }

  /// Sum of capacities of all edges.
  Bytes total_capacity() const;

  /// Sum of capacities leaving `node` (an upper bound on any s=node flow:
  /// the trivial cut around the source). 0 for unknown nodes.
  Bytes out_capacity(PeerId node) const;
  /// Sum of capacities entering `node` (the trivial cut around the sink).
  Bytes in_capacity(PeerId node) const;

  /// Removes a node and all incident edges, returning its slot to the
  /// PeerIndex free list (a later add re-interns it, possibly at a
  /// different slot). No-op for unknown node.
  void remove_node(PeerId node);

  void clear();

  /// Internal consistency check (adjacency sorted strictly ascending, all
  /// capacities positive, out/in arrays mirror each other with equal
  /// capacities, PeerIndex bijection intact). Used by tests and BC_DASSERT
  /// call sites.
  bool check_invariants() const;

  /// The interning layer, exposed for the maxflow implementations and the
  /// tests of this module only (bc-analyze G1 enforces the boundary).
  const PeerIndex& index() const { return index_; }

  /// Structural-mutation counter: bumped by every edge insert/erase,
  /// remove_node and clear() — exactly the operations that can invalidate
  /// an outstanding EdgeView. Maintained in all build types (one increment
  /// per mutation is noise next to the adjacency work); only debug builds
  /// *check* it. Exposed for tests and external snapshot protocols.
  std::uint64_t generation() const { return gen_; }

 private:
  // Ensures the node exists, returning its slot.
  NodeIndex touch(PeerId node);

  // Adjacency of `node` in one side (out_ or in_); empty for unknown nodes.
  std::span<const Edge> edges_of(const std::vector<std::vector<Edge>>& side,
                                 PeerId node) const;

  /// Flat open-addressing sidecar mapping (tail slot, head PeerId) to the
  /// edge capacity. The sorted adjacency arrays stay the source of truth
  /// for every iteration surface (merge scans, spans, determinism); the
  /// sidecar exists solely so the point query `capacity(from, to)` is a
  /// single probe sequence instead of a binary search over a scattered
  /// adjacency array. Linear probing with backward-shift deletion keeps
  /// the table tombstone-free under set_capacity(.., 0) and remove_node.
  class CapSidecar {
   public:
    const Bytes* find(NodeIndex from, PeerId to) const {
      if (cells_.empty()) return nullptr;
      const std::uint64_t key = key_of(from, to);
      std::size_t i = hash_of(key) & mask_;
      while (cells_[i].key != kEmpty) {
        if (cells_[i].key == key) return &cells_[i].cap;
        i = (i + 1) & mask_;
      }
      return nullptr;
    }

    void insert_or_assign(NodeIndex from, PeerId to, Bytes cap) {
      if ((size_ + 1) * 4 > cells_.size() * 3) grow();
      const std::uint64_t key = key_of(from, to);
      std::size_t i = hash_of(key) & mask_;
      while (cells_[i].key != kEmpty) {
        if (cells_[i].key == key) {
          cells_[i].cap = cap;
          return;
        }
        i = (i + 1) & mask_;
      }
      cells_[i] = Cell{key, cap};
      ++size_;
    }

    void erase(NodeIndex from, PeerId to) {
      if (cells_.empty()) return;
      const std::uint64_t key = key_of(from, to);
      std::size_t hole = hash_of(key) & mask_;
      while (cells_[hole].key != key) {
        if (cells_[hole].key == kEmpty) return;
        hole = (hole + 1) & mask_;
      }
      // Backward-shift deletion: pull every displaced follower whose
      // probe path crosses the hole, so lookups never need tombstones.
      // Probe distances are mod-table-size; the + cells_.size() keeps the
      // subtraction non-negative where the index wrapped past slot 0.
      std::size_t j = hole;
      while (true) {
        j = (j + 1) & mask_;
        if (cells_[j].key == kEmpty) break;
        const std::size_t home = hash_of(cells_[j].key) & mask_;
        if (((j + cells_.size() - home) & mask_) >=
            ((j + cells_.size() - hole) & mask_)) {
          cells_[hole] = cells_[j];
          hole = j;
        }
      }
      cells_[hole].key = kEmpty;
      --size_;
    }

    void clear() {
      cells_.clear();
      mask_ = 0;
      size_ = 0;
    }

    std::size_t size() const { return size_; }

   private:
    struct Cell {
      std::uint64_t key;
      Bytes cap;
    };
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

    // Slot numbers never reach kNoNode, so the packed key can never
    // collide with the empty sentinel.
    static std::uint64_t key_of(NodeIndex from, PeerId to) {
      return (std::uint64_t{from} << 32) | std::uint64_t{to};
    }

    BC_NO_SANITIZE_INTEGER static std::size_t hash_of(std::uint64_t x) {
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }

    void grow() {
      std::vector<Cell> old = std::move(cells_);
      const std::size_t n = old.empty() ? 16 : old.size() * 2;
      cells_.assign(n, Cell{kEmpty, 0});
      mask_ = n - 1;
      for (const Cell& c : old) {
        if (c.key == kEmpty) continue;
        std::size_t i = hash_of(c.key) & mask_;
        while (cells_[i].key != kEmpty) i = (i + 1) & mask_;
        cells_[i] = c;
      }
    }

    std::vector<Cell> cells_;  // power-of-two sized; key == kEmpty is free
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
  };

  PeerIndex index_;
  std::vector<std::vector<Edge>> out_;  // slot -> sorted out-adjacency
  std::vector<std::vector<Edge>> in_;   // slot -> sorted in-adjacency
  CapSidecar caps_;                     // (slot, head) -> capacity
  std::size_t num_edges_ = 0;
  std::uint64_t gen_ = 0;  // see generation()
};

}  // namespace bc::graph
