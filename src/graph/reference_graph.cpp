#include "graph/reference_graph.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>

#include "util/assert.hpp"
#include "util/checked.hpp"
#include "util/sorted_view.hpp"

namespace bc::graph {

namespace {
const std::unordered_map<PeerId, Bytes> kEmptyOut;
const std::unordered_set<PeerId> kEmptyIn;
}  // namespace

void ReferenceFlowGraph::touch(PeerId node) {
  out_.try_emplace(node);
  in_.try_emplace(node);
}

void ReferenceFlowGraph::add_capacity(PeerId from, PeerId to, Bytes amount) {
  BC_ASSERT(amount >= 0);
  BC_ASSERT_MSG(from != to, "self-edges carry no reputation information");
  touch(from);
  touch(to);
  if (amount == 0) return;
  auto [it, inserted] = out_[from].try_emplace(to, 0);
  it->second += amount;
  if (inserted) {
    in_[to].insert(from);
    ++num_edges_;
  }
}

void ReferenceFlowGraph::set_capacity(PeerId from, PeerId to, Bytes amount) {
  BC_ASSERT(amount >= 0);
  BC_ASSERT_MSG(from != to, "self-edges carry no reputation information");
  touch(from);
  touch(to);
  auto& adj = out_[from];
  auto it = adj.find(to);
  if (amount == 0) {
    if (it != adj.end()) {
      adj.erase(it);
      in_[to].erase(from);
      --num_edges_;
    }
    return;
  }
  if (it == adj.end()) {
    adj.emplace(to, amount);
    in_[to].insert(from);
    ++num_edges_;
  } else {
    it->second = amount;
  }
}

Bytes ReferenceFlowGraph::capacity(PeerId from, PeerId to) const {
  auto node = out_.find(from);
  if (node == out_.end()) return 0;
  auto edge = node->second.find(to);
  return edge == node->second.end() ? 0 : edge->second;
}

const std::unordered_map<PeerId, Bytes>& ReferenceFlowGraph::out_edges(
    PeerId node) const {
  auto it = out_.find(node);
  return it == out_.end() ? kEmptyOut : it->second;
}

const std::unordered_set<PeerId>& ReferenceFlowGraph::in_edges(
    PeerId node) const {
  auto it = in_.find(node);
  return it == in_.end() ? kEmptyIn : it->second;
}

std::vector<PeerId> ReferenceFlowGraph::nodes() const {
  return util::sorted_keys(out_);
}

Bytes ReferenceFlowGraph::out_capacity(PeerId node) const {
  Bytes total = 0;
  // bc-analyze: allow(D1) -- integer sum over all edges; addition over Bytes is commutative, order never escapes
  for (const auto& [_, cap] : out_edges(node)) {
    total = util::saturating_add(total, cap);
  }
  return total;
}

Bytes ReferenceFlowGraph::in_capacity(PeerId node) const {
  Bytes total = 0;
  // bc-analyze: allow(D1) -- integer sum over all in-edges; commutative, order never escapes
  for (PeerId from : in_edges(node)) {
    total = util::saturating_add(total, capacity(from, node));
  }
  return total;
}

Bytes ReferenceFlowGraph::total_capacity() const {
  Bytes total = 0;
  // bc-analyze: allow(D1) -- integer sum over every edge; commutative, order never escapes
  for (const auto& [_, adj] : out_) {
    for (const auto& [__, cap] : adj) {
      total = util::saturating_add(total, cap);
    }
  }
  return total;
}

void ReferenceFlowGraph::remove_node(PeerId node) {
  auto it = out_.find(node);
  if (it == out_.end()) return;
  for (const auto& [to, _] : it->second) {
    in_[to].erase(node);
    --num_edges_;
  }
  // bc-analyze: allow(D1) -- per-edge erases touch disjoint entries; final state is order-independent
  for (PeerId from : in_[node]) {
    out_[from].erase(node);
    --num_edges_;
  }
  out_.erase(node);
  in_.erase(node);
}

void ReferenceFlowGraph::clear() {
  out_.clear();
  in_.clear();
  num_edges_ = 0;
}

bool ReferenceFlowGraph::check_invariants() const {
  std::size_t edges = 0;
  // bc-analyze: allow(D1) -- boolean all-of over every edge; a pure predicate, order cannot change the result
  for (const auto& [from, adj] : out_) {
    if (!in_.contains(from)) return false;
    for (const auto& [to, cap] : adj) {
      if (cap <= 0) return false;
      auto in_it = in_.find(to);
      if (in_it == in_.end() || !in_it->second.contains(from)) return false;
      ++edges;
    }
  }
  if (edges != num_edges_) return false;
  // Every in-edge must have a matching out-edge.
  // bc-analyze: allow(D1) -- boolean all-of over the reverse index; order cannot change the result
  for (const auto& [to, preds] : in_) {
    for (PeerId from : preds) {
      auto out_it = out_.find(from);
      if (out_it == out_.end() || !out_it->second.contains(to)) return false;
    }
  }
  return true;
}

namespace {

/// Residual network over the hash-map oracle; mirrors maxflow.cpp.
class RefResidual {
 public:
  explicit RefResidual(const ReferenceFlowGraph& g) : g_(g) {}

  Bytes residual(PeerId u, PeerId v) const {
    Bytes r = g_.capacity(u, v);
    if (auto it = delta_.find(key(u, v)); it != delta_.end()) r += it->second;
    return r;
  }

  void augment(PeerId u, PeerId v, Bytes amount) {
    delta_[key(u, v)] -= amount;
    delta_[key(v, u)] += amount;
  }

  /// Neighbours reachable from u with positive residual capacity: all
  /// forward out-edges plus reverse edges toward original predecessors.
  template <typename Fn>
  void for_each_residual_edge(PeerId u, Fn&& fn) const {
    // bc-analyze: allow(D1) -- oracle path: every caller collects the neighbours and re-sorts them by id before use
    for (const auto& [v, _] : g_.out_edges(u)) {
      const Bytes r = residual(u, v);
      if (r > 0) fn(v, r);
    }
    // bc-analyze: allow(D1) -- oracle path: every caller collects the neighbours and re-sorts them by id before use
    for (PeerId v : g_.in_edges(u)) {
      if (g_.capacity(u, v) > 0) continue;  // already visited as forward
      const Bytes r = residual(u, v);
      if (r > 0) fn(v, r);
    }
  }

 private:
  static std::uint64_t key(PeerId u, PeerId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  const ReferenceFlowGraph& g_;
  std::unordered_map<std::uint64_t, Bytes> delta_;
};

bool ref_dfs_find_path(const RefResidual& res, PeerId u, PeerId t,
                       int depth_left, std::unordered_set<PeerId>& visited,
                       std::vector<PeerId>& path) {
  if (u == t) return true;
  if (depth_left == 0) return false;
  visited.insert(u);
  bool found = false;
  // Collect candidates and sort them so the oracle explores in the same
  // ascending-PeerId order the dense merge-scan yields for free.
  std::vector<std::pair<PeerId, Bytes>> candidates;
  res.for_each_residual_edge(
      u, [&](PeerId v, Bytes r) { candidates.emplace_back(v, r); });
  std::sort(candidates.begin(), candidates.end());
  for (const auto& [v, _] : candidates) {
    if (visited.contains(v)) continue;
    path.push_back(v);
    if (ref_dfs_find_path(res, v, t, depth_left < 0 ? -1 : depth_left - 1,
                          visited, path)) {
      found = true;
      break;
    }
    path.pop_back();
  }
  return found;
}

}  // namespace

Bytes ref_max_flow_ford_fulkerson(const ReferenceFlowGraph& g, PeerId s,
                                  PeerId t, int max_path_edges) {
  BC_ASSERT(max_path_edges == kUnboundedPathLength || max_path_edges >= 1);
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  RefResidual res(g);
  Bytes flow = 0;
  for (;;) {
    std::unordered_set<PeerId> visited;
    std::vector<PeerId> path{s};
    if (!ref_dfs_find_path(res, s, t, max_path_edges, visited, path)) break;
    Bytes bottleneck = res.residual(path[0], path[1]);
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      bottleneck = std::min(bottleneck, res.residual(path[i], path[i + 1]));
    }
    BC_ASSERT(bottleneck > 0);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      res.augment(path[i], path[i + 1], bottleneck);
    }
    flow = util::saturating_add(flow, bottleneck);
  }
  return flow;
}

Bytes ref_max_flow_edmonds_karp(const ReferenceFlowGraph& g, PeerId s,
                                PeerId t) {
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  RefResidual res(g);
  Bytes flow = 0;
  for (;;) {
    std::unordered_map<PeerId, PeerId> parent;
    parent[s] = s;
    std::deque<PeerId> queue{s};
    bool reached = false;
    while (!queue.empty() && !reached) {
      const PeerId u = queue.front();
      queue.pop_front();
      std::vector<PeerId> next;
      res.for_each_residual_edge(u, [&](PeerId v, Bytes) {
        if (!parent.contains(v)) next.push_back(v);
      });
      std::sort(next.begin(), next.end());
      for (PeerId v : next) {
        if (parent.contains(v)) continue;
        parent[v] = u;
        if (v == t) {
          reached = true;
          break;
        }
        queue.push_back(v);
      }
    }
    if (!reached) break;
    Bytes bottleneck = 0;
    for (PeerId v = t; v != s; v = parent[v]) {
      const Bytes r = res.residual(parent[v], v);
      bottleneck = bottleneck == 0 ? r : std::min(bottleneck, r);
    }
    BC_ASSERT(bottleneck > 0);
    for (PeerId v = t; v != s; v = parent[v]) {
      res.augment(parent[v], v, bottleneck);
    }
    flow = util::saturating_add(flow, bottleneck);
  }
  return flow;
}

Bytes ref_max_flow_two_hop(const ReferenceFlowGraph& g, PeerId s, PeerId t) {
  if (s == t || !g.has_node(s) || !g.has_node(t)) return 0;
  Bytes flow = g.capacity(s, t);
  // bc-analyze: allow(D1) -- commutative Bytes sum over disjoint two-hop paths; order cannot change the flow
  for (const auto& [v, cap_sv] : g.out_edges(s)) {
    if (v == t) continue;
    const Bytes cap_vt = g.capacity(v, t);
    if (cap_vt > 0) {
      flow = util::saturating_add(flow, std::min(cap_sv, cap_vt));
    }
  }
  return flow;
}

}  // namespace bc::graph
