// Maximum-flow computations over a FlowGraph.
//
// Three variants are provided:
//
//  * max_flow_ford_fulkerson: the paper's Algorithm 1 (DFS augmenting paths
//    on the residual network), optionally with a bound on the number of
//    edges in an augmenting path. With the bound set to 2 this matches the
//    BarterCast implementation restriction "only regards paths with a
//    maximum length of two" (paper §3.2).
//  * max_flow_edmonds_karp: BFS (shortest augmenting path) reference
//    implementation, used to cross-check Ford-Fulkerson in tests.
//  * max_flow_two_hop: closed-form two-hop maxflow. Paths of length <= 2
//    between distinct s and t are pairwise edge-disjoint, so the maximum is
//    exactly c(s,t) + sum_v min(c(s,v), c(v,t)), computed as a linear
//    merge-scan intersection of the sorted out-edges of s and in-edges of
//    t: O(deg(s) + deg(t)). This is the fast path of the reputation engine.
//
// Note on bounded paths: for a bound of 1 or 2 the depth-limited
// Ford-Fulkerson is exact (paths are edge-disjoint). For larger bounds the
// length-constrained maxflow problem is NP-hard in general and the
// depth-limited search is a well-behaved greedy approximation — good enough
// for the path-length ablation bench, and clearly documented as such.
#pragma once

#include "graph/flow_graph.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::graph {

/// Sentinel: no limit on augmenting-path length.
inline constexpr int kUnboundedPathLength = -1;

/// Ford-Fulkerson with depth-first path search (paper Algorithm 1).
/// `max_path_edges` bounds the number of edges in each augmenting path;
/// pass kUnboundedPathLength for the classic algorithm.
/// Returns 0 if s == t or either endpoint is unknown.
Bytes max_flow_ford_fulkerson(const FlowGraph& g, PeerId s, PeerId t,
                              int max_path_edges = kUnboundedPathLength);

/// Edmonds-Karp (BFS augmenting paths). Same result as unbounded
/// Ford-Fulkerson; O(V * E^2) worst case.
Bytes max_flow_edmonds_karp(const FlowGraph& g, PeerId s, PeerId t);

/// Exact maximum flow over paths of at most two edges:
/// c(s,t) + sum over v of min(c(s,v), c(v,t)).
Bytes max_flow_two_hop(const FlowGraph& g, PeerId s, PeerId t);

}  // namespace bc::graph
