#include "gossip/pss.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace bc::gossip {

PeerSamplingService::PeerSamplingService(Config config)
    : config_(config), rng_(config.seed) {
  BC_ASSERT(config_.view_size > 0);
  BC_ASSERT(config_.exchange_size > 0);
}

void PeerSamplingService::register_peer(PeerId peer) {
  const auto [_, inserted] = views_.try_emplace(peer);
  BC_ASSERT_MSG(inserted, "peer registered twice");
}

bool PeerSamplingService::is_registered(PeerId peer) const {
  return views_.contains(peer);
}

void PeerSamplingService::bootstrap(PeerId peer,
                                    std::span<const PeerId> seeds) {
  BC_ASSERT(is_registered(peer));
  merge_into(peer, seeds);
}

void PeerSamplingService::merge_into(PeerId owner,
                                     std::span<const PeerId> entries) {
  auto& view = views_[owner];
  for (PeerId p : entries) {
    if (p == owner) continue;
    if (std::find(view.begin(), view.end(), p) != view.end()) continue;
    if (view.size() < config_.view_size) {
      view.push_back(p);
    } else {
      view[rng_.index(view.size())] = p;
    }
  }
}

std::vector<PeerId> PeerSamplingService::random_slice(
    const std::vector<PeerId>& from, std::size_t n) {
  return rng_.sample(from, n);
}

PeerId PeerSamplingService::exchange(PeerId peer, const CanTalk& can_talk) {
  BC_OBS_SCOPE("gossip.exchange");
  static obs::Counter& exchanges =
      obs::Registry::instance().counter("gossip.exchanges");
  static obs::Counter& no_partner =
      obs::Registry::instance().counter("gossip.exchanges_no_partner");
  BC_ASSERT(is_registered(peer));
  auto& view = views_[peer];
  if (view.empty()) {
    no_partner.inc();
    return kInvalidPeer;
  }

  // Try view members in random order until a reachable, registered one is
  // found. Unregistered/defunct entries are garbage-collected on the way.
  std::vector<PeerId> order = view;
  rng_.shuffle(order);
  PeerId partner = kInvalidPeer;
  for (PeerId candidate : order) {
    if (!is_registered(candidate)) {
      view.erase(std::remove(view.begin(), view.end(), candidate),
                 view.end());
      continue;
    }
    if (can_talk(peer, candidate)) {
      partner = candidate;
      break;
    }
  }
  if (partner == kInvalidPeer) {
    no_partner.inc();
    return kInvalidPeer;
  }
  exchanges.inc();

  // Swap slices; both sides also learn about the other endpoint itself.
  std::vector<PeerId> mine = random_slice(view, config_.exchange_size);
  mine.push_back(peer);
  std::vector<PeerId> theirs =
      random_slice(views_[partner], config_.exchange_size);
  theirs.push_back(partner);
  merge_into(peer, theirs);
  merge_into(partner, mine);
  return partner;
}

std::vector<PeerId> PeerSamplingService::sample(PeerId peer, std::size_t n,
                                                const CanTalk& can_talk) {
  BC_ASSERT(is_registered(peer));
  const auto& view = views_.at(peer);
  std::vector<PeerId> reachable;
  reachable.reserve(view.size());
  for (PeerId p : view) {
    if (is_registered(p) && can_talk(peer, p)) reachable.push_back(p);
  }
  return rng_.sample(reachable, n);
}

std::vector<PeerId> PeerSamplingService::view(PeerId peer) const {
  auto it = views_.find(peer);
  return it == views_.end() ? std::vector<PeerId>{} : it->second;
}

std::size_t PeerSamplingService::view_size(PeerId peer) const {
  auto it = views_.find(peer);
  return it == views_.end() ? 0 : it->second.size();
}

}  // namespace bc::gossip
