// Epidemic Peer Sampling Service (paper §3.4).
//
// BarterCast assumes "that peers can discover other peers by using a Peer
// Sampling Service (PSS). The actual implementation of such a service is
// transparent to BarterCast" — Tribler uses the BuddyCast epidemic protocol.
// This is a BuddyCast-flavoured view-exchange PSS: every peer keeps a
// bounded view of peer ids; an exchange merges a random slice of the
// partner's view into one's own (and vice versa), evicting random entries
// when the view overflows. Liveness/reachability is delegated to a caller-
// supplied predicate so the service composes with the overlay's
// online/connectability model without depending on it.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace bc::gossip {

class PeerSamplingService {
 public:
  struct Config {
    std::uint64_t seed = 1;
    std::size_t view_size = 20;
    std::size_t exchange_size = 8;  // entries shipped per direction
  };

  /// Returns true when `a` can currently exchange messages with `b`.
  using CanTalk = std::function<bool(PeerId a, PeerId b)>;

  explicit PeerSamplingService(Config config);

  void register_peer(PeerId peer);
  bool is_registered(PeerId peer) const;

  /// Seeds a peer's view (e.g. from a tracker or bootstrap list).
  void bootstrap(PeerId peer, std::span<const PeerId> seeds);

  /// One epidemic round initiated by `peer`: pick a reachable partner from
  /// its view, swap exchange_size random entries both ways. Returns the
  /// partner, or kInvalidPeer when no view member was reachable.
  PeerId exchange(PeerId peer, const CanTalk& can_talk);

  /// Up to n distinct peers sampled uniformly from `peer`'s view, filtered
  /// by `can_talk(peer, candidate)`.
  std::vector<PeerId> sample(PeerId peer, std::size_t n,
                             const CanTalk& can_talk);

  std::vector<PeerId> view(PeerId peer) const;
  std::size_t view_size(PeerId peer) const;

  const Config& config() const { return config_; }

 private:
  /// Inserts entries, deduplicating and evicting random old entries to
  /// respect view_size. Never inserts the owner itself.
  void merge_into(PeerId owner, std::span<const PeerId> entries);
  std::vector<PeerId> random_slice(const std::vector<PeerId>& from,
                                   std::size_t n);

  Config config_;
  Rng rng_;
  std::unordered_map<PeerId, std::vector<PeerId>> views_;
};

}  // namespace bc::gossip
