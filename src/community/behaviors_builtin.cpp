// The built-in adversary zoo (see DESIGN.md §12 for the catalog rationale).
//
// The first four archetypes are the paper's §5.1/§5.4 population; the rest
// extend the evaluation with the classic attack families BarterCast claims
// (or needs to demonstrate) robustness against:
//
//   * sybil-region  — a clique of identities mutually inflating each
//                     other's standing (Douceur's sybil attack applied to
//                     the gossip layer);
//   * slanderer     — false-report injection against real benefactors;
//   * strategic-uploader — a BitTyrant-style exploiter that invests the
//                     minimum seeding needed to game reciprocation
//                     (Nielson et al.'s incentive-attack taxonomy,
//                     PAPERS.md);
//   * mobile-churner — an *honest* duty-cycled profile, for measuring how
//                     much a reputation mechanism punishes churn
//                     (false-ban pressure), not an attack.
//
// Every fabricated message keeps the protocol shape a receiver can verify
// (each record is a claim by the sender about one distinct counterparty,
// at most Nh+Nr of them): adversaries lie about *amounts*, which is the
// part no honest verifier can check.
#include <algorithm>
#include <cstddef>
#include <vector>

#include "bartercast/node.hpp"
#include "community/behavior.hpp"
#include "community/scenario.hpp"
#include "util/assert.hpp"

namespace bc::community {

namespace {

// --- the paper's §5.1/§5.4 population ---------------------------------

class Sharer final : public PeerBehavior {
 public:
  std::string_view name() const override { return "sharer"; }
  bool freerider() const override { return false; }
};

class LazyFreerider final : public PeerBehavior {
 public:
  std::string_view name() const override { return "lazy-freerider"; }
  bool freerider() const override { return true; }
};

class IgnoringFreerider final : public PeerBehavior {
 public:
  std::string_view name() const override { return "ignoring-freerider"; }
  bool freerider() const override { return true; }
  bool sends_messages() const override { return false; }
};

class LyingFreerider final : public PeerBehavior {
 public:
  std::string_view name() const override { return "lying-freerider"; }
  bool freerider() const override { return true; }
  bartercast::BarterCastMessage make_message(
      const MessageContext& ctx) const override {
    return bartercast::build_lying_message(ctx.node.history(),
                                           ctx.config.node.selection,
                                           ctx.config.liar_claimed_upload,
                                           ctx.now);
  }
};

// --- extended adversaries ----------------------------------------------

/// Sybil region: every member claims each fellow member uploaded
/// `sybil_claimed_upload` bytes to it, creating a clique of fabricated
/// cohort->member edges in receivers' subjective graphs. Under two-hop
/// maxflow a fabricated edge c->m only carries flow capped by m's *real*
/// out-capacity toward the evaluator, so the bench can measure how tightly
/// the metric bounds mutual promotion.
class SybilRegion final : public PeerBehavior {
 public:
  std::string_view name() const override { return "sybil-region"; }
  bool freerider() const override { return true; }
  bartercast::BarterCastMessage make_message(
      const MessageContext& ctx) const override {
    BC_ASSERT(ctx.cohort != nullptr);
    const auto& selection = ctx.config.node.selection;
    const std::size_t limit = selection.nh + selection.nr;
    bartercast::BarterCastMessage msg;
    msg.sender = ctx.self;
    msg.sent_at = ctx.now;
    // Cohort claims first (ascending PeerId: deterministic), then the
    // honest records about peers outside the region, within the Nh+Nr
    // limit and without duplicate counterparties.
    for (PeerId member : *ctx.cohort) {
      if (member == ctx.self || msg.records.size() >= limit) continue;
      bartercast::BarterRecord rec;
      rec.subject = ctx.self;
      rec.other = member;
      rec.subject_to_other = 0;
      rec.other_to_subject = ctx.config.sybil_claimed_upload;
      msg.records.push_back(rec);
    }
    const bartercast::BarterCastMessage honest = ctx.node.make_message(ctx.now);
    for (const bartercast::BarterRecord& rec : honest.records) {
      if (msg.records.size() >= limit) break;
      const bool covered =
          std::any_of(msg.records.begin(), msg.records.end(),
                      [&](const bartercast::BarterRecord& existing) {
                        return existing.other == rec.other;
                      });
      if (!covered) msg.records.push_back(rec);
    }
    return msg;
  }
};

/// Slander / false-report injection: takes the honest message and rewrites
/// the records about its `slander_victims` largest real benefactors into
/// "I uploaded `slander_claimed_upload` to them, they gave me nothing".
/// The fabricated victim-inbound edge raises flow(evaluator -> victim) at
/// every evaluator that really uploaded to the slanderer, dragging the
/// victim's Equation-1 reputation down.
class Slanderer final : public PeerBehavior {
 public:
  std::string_view name() const override { return "slanderer"; }
  bool freerider() const override { return true; }
  bartercast::BarterCastMessage make_message(
      const MessageContext& ctx) const override {
    bartercast::BarterCastMessage msg = ctx.node.make_message(ctx.now);
    if (msg.records.empty() || ctx.config.slander_victims == 0) return msg;
    // Victims: the counterparties that really uploaded the most to us,
    // ties broken by PeerId so the choice is deterministic.
    std::vector<std::size_t> order(msg.records.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto& ra = msg.records[a];
      const auto& rb = msg.records[b];
      if (ra.other_to_subject != rb.other_to_subject) {
        return ra.other_to_subject > rb.other_to_subject;
      }
      return ra.other < rb.other;
    });
    const std::size_t victims =
        std::min(ctx.config.slander_victims, order.size());
    for (std::size_t i = 0; i < victims; ++i) {
      bartercast::BarterRecord& rec = msg.records[order[i]];
      rec.subject_to_other = ctx.config.slander_claimed_upload;
      rec.other_to_subject = 0;
    }
    return msg;
  }
};

/// BitTyrant-style strategic uploader: invests a small, tunable fraction of
/// the sharer seeding budget — just enough reciprocation and reputation to
/// keep download slots — and otherwise behaves like a freerider. Honest
/// messages: the exploit is in the transfer policy, not the gossip.
class StrategicUploader final : public PeerBehavior {
 public:
  std::string_view name() const override { return "strategic-uploader"; }
  bool freerider() const override { return true; }
  Seconds seed_duration(const ScenarioConfig& config) const override {
    return config.strategic_seed_fraction * config.seed_duration;
  }
};

/// Honest peer on a flaky mobile link: every trace session is duty-cycled
/// into `mobile_duty_cycle * mobile_churn_period` online bursts. Used to
/// measure false-ban pressure: a mechanism that confuses churn with
/// freeriding will push these honest peers under the ban threshold.
class MobileChurner final : public PeerBehavior {
 public:
  std::string_view name() const override { return "mobile-churner"; }
  bool freerider() const override { return false; }
  void shape_sessions(std::vector<trace::Session>& sessions,
                      const ScenarioConfig& config,
                      Rng& churn_rng) const override {
    const Seconds period = config.mobile_churn_period;
    const double duty = config.mobile_duty_cycle;
    BC_ASSERT(period > 0.0 && duty > 0.0 && duty <= 1.0);
    if (duty >= 1.0) return;
    const Seconds on = period * duty;
    std::vector<trace::Session> shaped;
    for (const trace::Session& s : sessions) {
      // One phase draw per session decorrelates peers and sessions while
      // staying deterministic in the dedicated churn stream.
      const Seconds phase = churn_rng.uniform(0.0, period);
      for (Seconds t = s.start - period + phase; t < s.end; t += period) {
        trace::Session burst;
        burst.start = std::max(t, s.start);
        burst.end = std::min(t + on, s.end);
        if (burst.end > burst.start) shaped.push_back(burst);
      }
    }
    sessions = std::move(shaped);
  }
};

}  // namespace

void register_builtin_behaviors(BehaviorRegistry& registry) {
  registry.register_behavior(std::make_unique<Sharer>(), {"honest"});
  registry.register_behavior(std::make_unique<LazyFreerider>(), {"lazy", "freerider"});
  registry.register_behavior(std::make_unique<IgnoringFreerider>(), {"ignoring", "ignorer"});
  registry.register_behavior(std::make_unique<LyingFreerider>(), {"lying", "liar"});
  registry.register_behavior(std::make_unique<SybilRegion>(), {"sybil"});
  registry.register_behavior(std::make_unique<Slanderer>(), {"slander"});
  registry.register_behavior(std::make_unique<StrategicUploader>(),
               {"strategic", "bittyrant"});
  registry.register_behavior(std::make_unique<MobileChurner>(), {"mobile", "churner"});
}

}  // namespace bc::community
