// Experiment outputs collected by the community simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/ids.hpp"
#include "util/timeseries.hpp"
#include "util/units.hpp"

namespace bc::community {

/// Ground-truth and reputation outcomes for one trace peer.
struct PeerOutcome {
  PeerId peer = kInvalidPeer;
  /// Canonical name of the peer's assigned behavior (registry key).
  std::string behavior = "sharer";
  /// Metrics class of that behavior (PeerBehavior::freerider()).
  bool freerider = false;
  Bytes total_uploaded = 0;    // real bytes, simulator ground truth
  Bytes total_downloaded = 0;
  /// Net contribution = total upload - total download (§5.2).
  Bytes net_contribution() const { return total_uploaded - total_downloaded; }
  /// System reputation at the end of the run: the average of the
  /// reputations the peer has at each of the other trace peers (Eq. 2).
  double final_system_reputation = 0.0;
  std::size_t files_requested = 0;
  std::size_t files_completed = 0;
  Seconds time_downloading = 0.0;  // online time spent with an active download
  /// Same accounting restricted to the second half of the run, where the
  /// policies have had time to act (the headline Figure 2/3 estimator).
  Bytes late_downloaded = 0;
  Seconds late_time_downloading = 0.0;
};

struct MessageStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t records_applied = 0;
  // Dropped records, by the integrity rule that rejected them (the
  // SharedHistory::ApplyStats reasons; see shared_history.hpp).
  std::uint64_t dropped_third_party = 0;  // record not involving its sender
  std::uint64_t dropped_own_edge = 0;     // gossip claim about our own edges
  std::uint64_t dropped_self_report = 0;  // record about (sender, sender)
  std::uint64_t gossip_exchanges = 0;

  std::uint64_t records_dropped() const {
    return dropped_third_party + dropped_own_edge + dropped_self_report;
  }
};

struct Metrics {
  Metrics(Seconds duration, Seconds bin);

  // Figure 1a: average system reputation per class over time.
  TimeSeries reputation_sharers;
  TimeSeries reputation_freeriders;

  // Figures 2-3: average download speed per class over time (bytes/s
  // samples; divide by 1024 for the paper's KBps axis).
  TimeSeries speed_sharers;
  TimeSeries speed_freeriders;

  std::vector<PeerOutcome> outcomes;  // one per trace peer, by peer id
  MessageStats messages;

  // End-of-run distribution of final system reputations per class (the
  // histogram view behind the Figure 1 class means; bench_plots renders it
  // via analysis::write_reputation_histogram_plot). 40 buckets across the
  // metric's full (-1, 1) range.
  obs::Histogram reputation_hist_sharers;
  obs::Histogram reputation_hist_freeriders;

  /// Mean download speed of a class over the last `tail` seconds of the
  /// run (used for the endpoint comparisons of Figures 2-3).
  double tail_speed(const TimeSeries& series, Seconds tail) const;

  /// Pooled class download speed over the second half of the run:
  /// sum(bytes) / sum(active download time) across the class. Far more
  /// stable than time-bin means when few peers download concurrently.
  double late_class_speed(bool freeriders) const;

  Seconds duration = 0.0;
};

}  // namespace bc::community
