#include "community/scenario.hpp"

#include <string>

#include "community/behavior.hpp"

namespace bc::community {

std::string ScenarioConfig::validate() const {
  const auto in_unit = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in_unit(freerider_fraction) || !in_unit(ignorer_fraction) ||
      !in_unit(liar_fraction)) {
    return "population fractions must be within [0, 1] (freerider=" +
           std::to_string(freerider_fraction) +
           ", ignorer=" + std::to_string(ignorer_fraction) +
           ", liar=" + std::to_string(liar_fraction) + ")";
  }
  if (ignorer_fraction + liar_fraction > freerider_fraction + 1e-9) {
    return "ignorer_fraction + liar_fraction (" +
           std::to_string(ignorer_fraction + liar_fraction) +
           ") exceeds freerider_fraction (" +
           std::to_string(freerider_fraction) +
           "); disobeying peers are drawn from the freerider population";
  }
  if (!population.empty()) {
    std::string error;
    const auto spec = PopulationSpec::parse(population, &error);
    if (!spec.has_value()) return "population spec: " + error;
    if (std::string invalid = spec->validate(); !invalid.empty()) {
      return "population spec: " + invalid;
    }
  }
  if (!in_unit(strategic_seed_fraction)) {
    return "strategic_seed_fraction must be within [0, 1], got " +
           std::to_string(strategic_seed_fraction);
  }
  if (!(mobile_churn_period > 0.0)) {
    return "mobile_churn_period must be positive, got " +
           std::to_string(mobile_churn_period);
  }
  if (!(mobile_duty_cycle > 0.0) || mobile_duty_cycle > 1.0) {
    return "mobile_duty_cycle must be within (0, 1], got " +
           std::to_string(mobile_duty_cycle);
  }
  if (liar_claimed_upload < 0 || sybil_claimed_upload < 0 ||
      slander_claimed_upload < 0) {
    return "claimed upload volumes must be non-negative";
  }
  if (seed_duration < 0.0) {
    return "seed_duration must be non-negative, got " +
           std::to_string(seed_duration);
  }
  return "";
}

}  // namespace bc::community
