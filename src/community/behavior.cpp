#include "community/behavior.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bc::community {

std::string behavior_name(Behavior b) {
  switch (b) {
    case Behavior::kSharer:
      return "sharer";
    case Behavior::kLazyFreerider:
      return "lazy-freerider";
    case Behavior::kIgnoringFreerider:
      return "ignoring-freerider";
    case Behavior::kLyingFreerider:
      return "lying-freerider";
  }
  return "?";
}

std::vector<Behavior> assign_behaviors(std::size_t num_peers,
                                       double freerider_fraction,
                                       double ignorer_fraction,
                                       double liar_fraction, Rng& rng) {
  BC_ASSERT(freerider_fraction >= 0.0 && freerider_fraction <= 1.0);
  BC_ASSERT(ignorer_fraction >= 0.0 && liar_fraction >= 0.0);
  BC_ASSERT_MSG(ignorer_fraction + liar_fraction <= freerider_fraction + 1e-9,
                "disobeying peers are drawn from the freerider population");

  const auto count = [&](double fraction) {
    return static_cast<std::size_t>(
        std::lround(fraction * static_cast<double>(num_peers)));
  };
  const std::size_t num_freeriders = count(freerider_fraction);
  const std::size_t num_ignorers = count(ignorer_fraction);
  const std::size_t num_liars = count(liar_fraction);
  BC_ASSERT(num_ignorers + num_liars <= num_freeriders);

  std::vector<Behavior> out(num_peers, Behavior::kSharer);
  // Choose the freerider subset, then the disobeying subsets inside it,
  // via a single shuffled index vector.
  std::vector<std::size_t> idx(num_peers);
  for (std::size_t i = 0; i < num_peers; ++i) idx[i] = i;
  rng.shuffle(idx);
  for (std::size_t i = 0; i < num_freeriders; ++i) {
    out[idx[i]] = Behavior::kLazyFreerider;
  }
  for (std::size_t i = 0; i < num_ignorers; ++i) {
    out[idx[i]] = Behavior::kIgnoringFreerider;
  }
  for (std::size_t i = 0; i < num_liars; ++i) {
    // bc-analyze: allow(V4) -- num_ignorers + i < num_ignorers + num_liars <= num_freeriders <= idx.size(), asserted above; the two-count sum is outside the interval domain's size facts
    out[idx[num_ignorers + i]] = Behavior::kLyingFreerider;
  }
  return out;
}

}  // namespace bc::community
