#include "community/behavior.hpp"

#include <algorithm>
#include <cmath>

#include "bartercast/node.hpp"
#include "community/scenario.hpp"
#include "util/assert.hpp"

namespace bc::community {

// Defined in behaviors_builtin.cpp (the adversary zoo catalog).
void register_builtin_behaviors(BehaviorRegistry& registry);

namespace {

/// Registry keys treat '-' and '_' as the same separator, so CLI specs can
/// spell either.
std::string normalize_name(std::string_view name) {
  std::string out(name);
  std::replace(out.begin(), out.end(), '_', '-');
  return out;
}

}  // namespace

Seconds PeerBehavior::seed_duration(const ScenarioConfig& config) const {
  // Sharers seed for the configured period (10 h in the paper §5.1);
  // freeriders "immediately leave the swarm after finishing a download".
  return freerider() ? 0.0 : config.seed_duration;
}

bartercast::BarterCastMessage PeerBehavior::make_message(
    const MessageContext& ctx) const {
  return ctx.node.make_message(ctx.now);
}

void PeerBehavior::shape_sessions(std::vector<trace::Session>& sessions,
                                  const ScenarioConfig& config,
                                  Rng& churn_rng) const {
  // Identity by default, and deliberately no churn_rng draws: scenarios
  // without churny behaviors must consume the exact RNG stream of the
  // pre-registry code.
  static_cast<void>(sessions);
  static_cast<void>(config);
  static_cast<void>(churn_rng);
}

BehaviorRegistry& BehaviorRegistry::instance() {
  static BehaviorRegistry registry;
  return registry;
}

BehaviorRegistry::BehaviorRegistry() { register_builtin_behaviors(*this); }

void BehaviorRegistry::register_behavior(
    std::unique_ptr<const PeerBehavior> behavior,
    std::initializer_list<std::string_view> aliases) {
  BC_ASSERT(behavior != nullptr);
  const PeerBehavior* raw = behavior.get();
  const auto insert_key = [&](std::string_view key) {
    const bool inserted =
        by_name_.emplace(normalize_name(key), raw).second;
    BC_ASSERT_MSG(inserted, "behavior name registered twice");
  };
  insert_key(raw->name());
  for (std::string_view alias : aliases) insert_key(alias);
  owned_.push_back(std::move(behavior));
}

const PeerBehavior* BehaviorRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(normalize_name(name));
  return it == by_name_.end() ? nullptr : it->second;
}

const PeerBehavior& BehaviorRegistry::at(std::string_view name) const {
  const PeerBehavior* b = find(name);
  BC_ASSERT_MSG(b != nullptr, "unknown behavior name");
  return *b;
}

std::vector<std::string> BehaviorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(owned_.size());
  // by_name_ is sorted but contains aliases; collect canonical names only.
  for (const auto& [key, behavior] : by_name_) {
    if (key == normalize_name(behavior->name())) out.emplace_back(behavior->name());
  }
  return out;
}

std::optional<PopulationSpec> PopulationSpec::parse(std::string_view spec,
                                                    std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  PopulationSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view item = spec.substr(pos, comma - pos);
    // Trim surrounding spaces.
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (item.empty()) {
      if (spec.empty() && out.entries.empty()) break;  // "" => empty spec
      return fail("empty population entry (stray comma?)");
    }
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == item.size()) {
      return fail("population entry '" + std::string(item) +
                  "' is not name:fraction");
    }
    Entry entry;
    entry.name = std::string(item.substr(0, colon));
    const std::string frac(item.substr(colon + 1));
    char* end = nullptr;
    entry.fraction = std::strtod(frac.c_str(), &end);
    if (end == frac.c_str() || *end != '\0') {
      return fail("population fraction '" + frac + "' is not a number");
    }
    out.entries.push_back(std::move(entry));
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  return out;
}

std::string PopulationSpec::validate() const {
  const auto& registry = BehaviorRegistry::instance();
  double sum = 0.0;
  for (const Entry& e : entries) {
    if (registry.find(e.name) == nullptr) {
      std::string known;
      for (std::string_view n : registry.names()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      return "unknown behavior '" + e.name + "' (known: " + known + ")";
    }
    if (!(e.fraction >= 0.0) || !(e.fraction <= 1.0)) {
      return "population fraction for '" + e.name +
             "' must be within [0, 1], got " + std::to_string(e.fraction);
    }
    sum += e.fraction;
  }
  if (sum > 1.0 + 1e-9) {
    return "population fractions sum to " + std::to_string(sum) +
           " > 1; the remainder rule only fills missing sharers";
  }
  return "";
}

std::vector<PopulationSlice> PopulationSpec::slices(
    std::size_t num_peers) const {
  BC_ASSERT_MSG(validate().empty(), "invalid population spec");
  const auto& registry = BehaviorRegistry::instance();
  std::vector<PopulationSlice> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) {
    PopulationSlice slice;
    slice.behavior = registry.find(e.name);
    slice.count = static_cast<std::size_t>(
        std::lround(e.fraction * static_cast<double>(num_peers)));
    out.push_back(slice);
  }
  // Per-entry rounding can overshoot the population by a slot or two; trim
  // the later entries so the totals always fit (the fill behavior absorbs
  // the mirror case of undershoot).
  std::size_t total = 0;
  for (PopulationSlice& slice : out) {
    slice.count = std::min(slice.count, num_peers - total);
    total += slice.count;
  }
  return out;
}

std::vector<const PeerBehavior*> assign_population(
    std::size_t num_peers, const std::vector<PopulationSlice>& slices,
    const PeerBehavior& fill, Rng& rng) {
  // Counting down from the population size (instead of summing the slice
  // counts up) keeps every intermediate value inside [0, num_peers].
  std::size_t remaining = num_peers;
  for (const PopulationSlice& slice : slices) {
    BC_ASSERT(slice.behavior != nullptr);
    BC_ASSERT_MSG(slice.count <= remaining,
                  "population slices exceed the population size");
    remaining -= slice.count;
  }

  std::vector<const PeerBehavior*> out(num_peers, &fill);
  // One shuffled index vector; slice k takes the next count slots. This is
  // the exact RNG consumption of the pre-registry assignment (one
  // shuffle(n)), so legacy scenarios replay bit-identically.
  std::vector<std::size_t> idx(num_peers);
  for (std::size_t i = 0; i < num_peers; ++i) idx[i] = i;
  rng.shuffle(idx);
  std::size_t next = 0;
  for (const PopulationSlice& slice : slices) {
    for (std::size_t i = 0; i < slice.count; ++i) {
      out[idx[next]] = slice.behavior;
      ++next;
    }
  }
  return out;
}

std::vector<const PeerBehavior*> assign_behaviors(std::size_t num_peers,
                                                  double freerider_fraction,
                                                  double ignorer_fraction,
                                                  double liar_fraction,
                                                  Rng& rng) {
  BC_ASSERT(freerider_fraction >= 0.0 && freerider_fraction <= 1.0);
  BC_ASSERT(ignorer_fraction >= 0.0 && liar_fraction >= 0.0);
  BC_ASSERT_MSG(ignorer_fraction + liar_fraction <= freerider_fraction + 1e-9,
                "disobeying peers are drawn from the freerider population");

  const auto count = [&](double fraction) {
    return static_cast<std::size_t>(
        std::lround(fraction * static_cast<double>(num_peers)));
  };
  const std::size_t num_freeriders = count(freerider_fraction);
  const std::size_t num_ignorers = count(ignorer_fraction);
  const std::size_t num_liars = count(liar_fraction);
  BC_ASSERT(num_ignorers + num_liars <= num_freeriders);

  // The legacy §5.1/§5.4 split as slices. The original code painted
  // idx[0..freeriders) lazy and then overwrote the ignorer/liar prefixes;
  // expressing the final picture directly keeps the single shuffle and the
  // legacy counts (lazy = freeriders - ignorers - liars, NOT
  // lround(lazy_fraction * n), which can differ by a rounding slot).
  const auto& registry = BehaviorRegistry::instance();
  const std::vector<PopulationSlice> slices = {
      {&registry.at("ignoring-freerider"), num_ignorers},
      {&registry.at("lying-freerider"), num_liars},
      {&registry.at("lazy-freerider"), num_freeriders - num_ignorers - num_liars},
  };
  return assign_population(num_peers, slices, registry.at("sharer"), rng);
}

}  // namespace bc::community
