// Trace-based community simulator (paper §5.1).
//
// Combines every substrate into the experiment the paper runs: the
// discrete-event engine drives per-peer session churn from the trace, a
// round event advances piece-level BitTorrent (choking, optimistic
// unchoking, rarest-first picking, bandwidth allocation across all swarms),
// the epidemic PSS keeps per-peer views, and BarterCast messages flow over
// the overlay into each peer's subjective history. Reputation policies hook
// into the choker exactly as §4.2 describes.
//
// Swarm membership is tracker knowledge (as in BitTorrent); the PSS is used
// for BarterCast partner sampling, mirroring Tribler's BuddyCast split.
//
// Determinism: given (trace, config) the run is bit-identical — every
// stochastic component forks from the scenario seed and all iteration
// orders are explicitly sorted.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bartercast/node.hpp"
#include "bittorrent/choker.hpp"
#include "bittorrent/swarm.hpp"
#include "check/invariants.hpp"
#include "community/behavior.hpp"
#include "community/metrics.hpp"
#include "community/scenario.hpp"
#include "gossip/pss.hpp"
#include "net/overlay.hpp"
#include "obs/stream.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"
#include "util/concurrency/thread_pool.hpp"

namespace bc::community {

class CommunitySimulator {
 public:
  CommunitySimulator(trace::Trace trace, ScenarioConfig config);

  /// Runs the full trace duration and finalizes the metrics.
  void run();

  const Metrics& metrics() const { return metrics_; }
  const trace::Trace& trace() const { return trace_; }
  const ScenarioConfig& config() const { return config_; }

  std::size_t num_trace_peers() const { return trace_.peers.size(); }
  std::size_t num_total_peers() const { return peers_.size(); }
  const PeerBehavior& behavior(PeerId peer) const;
/// Whether `peer` is one of the swarm's initial holders (seeds the file
  /// permanently while online).
  bool is_initial_holder(PeerId peer, SwarmId swarm_id) const;
  const bartercast::Node& node(PeerId peer) const;
  const net::Overlay& overlay() const { return overlay_; }
  const sim::Engine& engine() const { return engine_; }
  const bt::Swarm& swarm(SwarmId id) const;

  /// System reputation of `peer`: average of the reputations it has at the
  /// other trace peers (Equation 2). Exposed for probes and tests.
  double system_reputation(PeerId peer);

  /// Runs every cross-module invariant validator over the current state:
  /// ledger conservation against the swarms' ground-truth byte counters,
  /// per-peer subjective graph consistency and Eq. 1 bounds (capped sample),
  /// event-queue monotonicity, and outgoing-message well-formedness.
  /// Appends violations to `report`. Called automatically while
  /// bc::check::enabled() (see BARTERCAST_VALIDATE); callable any time.
  void audit(check::Report& report) const;

 private:
  struct PeerState {
    const PeerBehavior* behavior = nullptr;
    std::unique_ptr<bartercast::Node> node;
    Bytes total_up = 0;
    Bytes total_down = 0;
    std::size_t files_requested = 0;
    std::size_t files_completed = 0;
    Seconds time_downloading = 0.0;
    Bytes late_downloaded = 0;
    Seconds late_time_downloading = 0.0;
    /// Swarms the peer is currently a member of and has not completed.
    std::unordered_set<SwarmId> downloading;
  };

  struct ChokeState {
    std::vector<PeerId> regular;
    PeerId optimistic = kInvalidPeer;
    Seconds next_rotation = 0.0;
    bt::OptimisticRotator rotator;
  };

  struct SwarmCtx {
    explicit SwarmCtx(bt::Swarm s) : swarm(std::move(s)) {}
    bt::Swarm swarm;
    std::unordered_map<PeerId, ChokeState> chokers;
    /// Sharers' seeding deadlines (absolute time).
    std::unordered_map<PeerId, Seconds> seed_until;
    /// Initial holders: seed the file for the whole trace while online.
    std::unordered_set<PeerId> permanent_seeds;
    /// Directed links that carried an unchoke last round, for release.
    std::unordered_set<std::uint64_t> prev_active;
  };

  struct RepCacheEntry {
    Seconds at = -1.0e18;
    double value = 0.0;
  };

  // --- setup ------------------------------------------------------------
  void setup_peers();
  void setup_swarms();
  void schedule_trace_events();
  void schedule_periodics();

  // --- per-event logic ----------------------------------------------------
  void attempt_join(PeerId peer, SwarmId swarm_id);
  void round();
  void choke_swarm(SwarmId swarm_id, const std::vector<PeerId>& online);
  void gossip_tick(PeerId peer);
  void on_barter_message(PeerId receiver, PeerId sender,
                         const bartercast::BarterCastMessage& msg,
                         bool is_reply);
  void reputation_probe();
  void handle_completion(SwarmId swarm_id, PeerId peer);
  void finalize();

  /// Republishes the per-node reputation-cache tallies (plain members on
  /// the nanosecond-scale hit path) as registry counter totals, so the
  /// windowed stream sees them move during the run, not only at finalize.
  void publish_cache_totals();
  /// Periodic --metrics-stream pump: republish derived totals, append one
  /// delta window, and serve any signal-requested flight-recorder dump.
  void pump_metrics_window();

  /// Batch all-peers sweep: returns the system reputation of every trace
  /// peer (Equation 2), evaluating the full R_i(j) matrix on the thread
  /// pool. Evaluator-major: each pool task owns one evaluator's Node (its
  /// CachedReputation is per-node state, so tasks touch disjoint objects),
  /// and rows are merged serially in ascending evaluator order — the exact
  /// FP addition order of the serial code, so results are bit-identical at
  /// any thread count. Requires n >= 2.
  std::vector<double> batch_system_reputations();

  bartercast::BarterCastMessage make_outgoing_message(PeerId peer);

  /// TTL-cached reputation for choking decisions.
  double choker_reputation(PeerId evaluator, PeerId subject);

  PeerState& peer(PeerId id);
  const PeerState& peer(PeerId id) const;

  trace::Trace trace_;
  ScenarioConfig config_;
  Rng rng_;
  /// Worker pool for the batch reputation sweeps (config_.threads). All
  /// other simulator state is touched only from the engine thread.
  util::ThreadPool pool_;

  sim::Engine engine_;
  net::Overlay overlay_;
  gossip::PeerSamplingService pss_;

  std::vector<PeerState> peers_;  // one per trace peer
  /// Peers per assigned behavior, ascending PeerId — the cohort handed to
  /// the report-mutation hook (sybil regions coordinate through it).
  std::unordered_map<const PeerBehavior*, std::vector<PeerId>> cohorts_;
  std::vector<std::unique_ptr<SwarmCtx>> swarms_;

  Metrics metrics_;
  /// Windowed NDJSON export (--metrics-stream); closed at finalize.
  obs::MetricsStream metrics_stream_;
  std::unordered_map<std::uint64_t, RepCacheEntry> rep_cache_;
  /// Completions reported by Swarm::on_complete during the transfer phase,
  /// processed at a safe point later in the same round.
  std::vector<std::pair<SwarmId, PeerId>> pending_completions_;
  /// Bytes received per peer in the current round (speed probe input).
  std::unordered_map<PeerId, Bytes> round_received_;
  bool ran_ = false;
};

}  // namespace bc::community
