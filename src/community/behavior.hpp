// Composable peer-behavior registry (the adversary zoo).
//
// The paper evaluates BarterCast against exactly three manipulations
// (§5.4: lazy, ignoring, and lying freeriders), and the original scenario
// layer hard-coded those as a closed enum. This header replaces the enum
// with a small trait object so new adversaries compose out of four policy
// hooks instead of simulator-core edits:
//
//   * seeding policy   — how long the peer seeds a completed file
//                        (sharers: 10 h in the paper; freeriders: leave
//                        "immediately ... after finishing a download")
//   * messaging policy — whether the peer participates in the BarterCast
//                        exchange at all (§5.4 manipulation (1))
//   * report mutation  — the message the peer actually sends (§5.4
//                        manipulation (2) and the wider attack catalog:
//                        sybil regions, slander, ... see
//                        behaviors_builtin.cpp and DESIGN.md §12)
//   * churn profile    — a rewrite of the peer's trace sessions
//                        (mobile-profile duty cycling)
//
// Behaviors are stateless singletons registered by name in the
// BehaviorRegistry; populations are described as composable specs
// ("sharer:0.5,lazy:0.3,sybil-region:0.2") parsed by PopulationSpec.
// The legacy §5.1/§5.4 fraction triple keeps working through
// assign_behaviors(), which reproduces the original RNG draws bit for bit
// (pinned by the golden-assignment regression test).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bartercast/message.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bc::bartercast {
class Node;
}  // namespace bc::bartercast

namespace bc::community {

struct ScenarioConfig;

/// Context handed to the report-mutation hook: everything an adversary may
/// consult when fabricating its outgoing BarterCast message. All references
/// outlive the call only; hooks must not retain them.
struct MessageContext {
  const bartercast::Node& node;   ///< sender's node (private history, view)
  const ScenarioConfig& config;   ///< scenario knobs (claimed volumes, Nh/Nr)
  Seconds now = 0.0;              ///< simulation time of the send
  PeerId self = kInvalidPeer;     ///< the sending peer
  /// Peers assigned the same behavior, ascending PeerId — the adversary's
  /// cohort (a sybil region's members know each other out of band). Never
  /// null; contains `self`.
  const std::vector<PeerId>* cohort = nullptr;
};

/// One peer archetype. Implementations are immutable and shared: a single
/// instance serves every peer assigned the behavior, with all per-scenario
/// parameters flowing in through the hook arguments.
class PeerBehavior {
 public:
  virtual ~PeerBehavior() = default;

  /// Canonical registry key; also the class name reported in PeerOutcome.
  virtual std::string_view name() const = 0;

  /// Metrics class: freeriders feed the freerider speed/reputation series
  /// and histograms (the paper's two-class split, §5.1). Orthogonal to the
  /// seeding policy — a strategic uploader can seed briefly and still count
  /// as a freerider.
  virtual bool freerider() const = 0;

  /// Messaging policy: whether the peer sends BarterCast messages and
  /// answers exchanges (§5.4 manipulation (1) turns this off).
  virtual bool sends_messages() const { return true; }

  /// Seeding policy: how long the peer keeps seeding a file after
  /// completing the download. A value <= 0 means the peer leaves the swarm
  /// immediately (the lazy-freeriding move of §5.1).
  virtual Seconds seed_duration(const ScenarioConfig& config) const;

  /// Report-mutation hook: the BarterCast message this peer sends in a
  /// gossip exchange. The default is the honest §3.4 selection from the
  /// node's private history.
  virtual bartercast::BarterCastMessage make_message(
      const MessageContext& ctx) const;

  /// Churn profile: rewrites the peer's trace sessions in place before they
  /// are scheduled (mobile profiles duty-cycle each session into short
  /// online bursts). Must keep the sessions sorted and non-overlapping.
  /// The default is the identity and draws nothing from `churn_rng`, so
  /// scenarios without churny behaviors are bit-identical to the
  /// pre-registry code.
  virtual void shape_sessions(std::vector<trace::Session>& sessions,
                              const ScenarioConfig& config,
                              Rng& churn_rng) const;
};

/// Name-keyed behavior catalog. Built-in archetypes (see
/// behaviors_builtin.cpp) register themselves on first use; experiments can
/// register additional behaviors at startup. Lookup accepts canonical names,
/// registered aliases, and treats '_' and '-' as equivalent, so CLI specs
/// may spell "sybil_region" for "sybil-region".
class BehaviorRegistry {
 public:
  static BehaviorRegistry& instance();

  /// Registers `behavior` under its canonical name plus `aliases`. Names
  /// must be unique; re-registering an existing name aborts.
  void register_behavior(std::unique_ptr<const PeerBehavior> behavior,
                         std::initializer_list<std::string_view> aliases = {});

  /// Looks a behavior up by name or alias; nullptr if unknown.
  const PeerBehavior* find(std::string_view name) const;

  /// Asserting lookup for names that must exist (the built-ins).
  const PeerBehavior& at(std::string_view name) const;

  /// All canonical behavior names, sorted ascending (deterministic).
  std::vector<std::string> names() const;

 private:
  BehaviorRegistry();

  std::vector<std::unique_ptr<const PeerBehavior>> owned_;
  /// Normalized name/alias -> behavior. std::map keeps diagnostics and
  /// names() deterministic.
  std::map<std::string, const PeerBehavior*> by_name_;
};

/// One contiguous slice of a population assignment: `count` peers get
/// `behavior`.
struct PopulationSlice {
  const PeerBehavior* behavior = nullptr;
  std::size_t count = 0;
};

/// A composable population description: an ordered list of
/// (behavior, fraction) pairs. Fractions are of the whole population; any
/// remainder is filled with sharers. Parsed from specs like
/// "sharer:0.5,lazy:0.3,sybil-region:0.1".
struct PopulationSpec {
  struct Entry {
    std::string name;
    double fraction = 0.0;
  };
  std::vector<Entry> entries;

  /// Parses a comma-separated "name:fraction" list. Returns std::nullopt
  /// and fills *error (if non-null) on malformed input. Behavior names are
  /// validated against the registry by validate(), not here.
  static std::optional<PopulationSpec> parse(std::string_view spec,
                                             std::string* error = nullptr);

  /// Returns an empty string when the spec is usable: every name resolves
  /// in the registry, every fraction is within [0, 1], and the fractions
  /// sum to at most 1 (within rounding tolerance).
  std::string validate() const;

  /// Resolves the spec against a concrete population size: each entry gets
  /// round(fraction * num_peers) peers, in spec order.
  std::vector<PopulationSlice> slices(std::size_t num_peers) const;
};

/// Assigns `slices` over a population of `num_peers` via one shuffled index
/// vector: slice k occupies the next slices[k].count shuffled slots, and
/// every unclaimed peer gets `fill`. Exactly one rng.shuffle(n) draw —
/// the same RNG consumption as the pre-registry assignment.
std::vector<const PeerBehavior*> assign_population(
    std::size_t num_peers, const std::vector<PopulationSlice>& slices,
    const PeerBehavior& fill, Rng& rng);

/// Splits a population like the paper does: `freerider_fraction` of the
/// peers are freeriders, of which the requested fractions (relative to the
/// *whole* population, as in §5.4: "disobeying peers are a random selection
/// from a total of 50% freeriders") ignore or lie. The remaining peers are
/// sharers. ignorer_fraction + liar_fraction must not exceed
/// freerider_fraction. Assignment is random but deterministic in rng, and
/// bit-identical to the pre-registry enum implementation (golden test).
std::vector<const PeerBehavior*> assign_behaviors(std::size_t num_peers,
                                                  double freerider_fraction,
                                                  double ignorer_fraction,
                                                  double liar_fraction,
                                                  Rng& rng);

}  // namespace bc::community
