// Peer behaviour archetypes of the evaluation (paper §5.1, §5.4).
//
//  * Sharer: seeds every downloaded file for a fixed period (10 hours in
//    the paper) and follows the BarterCast protocol honestly.
//  * LazyFreerider: "immediately leave[s] the swarm after finishing a
//    download" but otherwise follows the protocol (sends honest messages).
//  * IgnoringFreerider: lazy freerider that additionally ignores the
//    message protocol — sends no BarterCast messages at all (§5.4 case 1).
//  * LyingFreerider: lazy freerider that lies selfishly, claiming it
//    "sent huge amounts of data to other peers and received nothing"
//    (§5.4 case 2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace bc::community {

enum class Behavior {
  kSharer,
  kLazyFreerider,
  kIgnoringFreerider,
  kLyingFreerider,
};

constexpr bool is_freerider(Behavior b) { return b != Behavior::kSharer; }

/// Whether the peer participates in the BarterCast message exchange.
constexpr bool sends_messages(Behavior b) {
  return b != Behavior::kIgnoringFreerider;
}

constexpr bool lies(Behavior b) { return b == Behavior::kLyingFreerider; }

std::string behavior_name(Behavior b);

/// Splits a population like the paper does: `freerider_fraction` of the
/// peers are freeriders, of which the requested fractions (relative to the
/// *whole* population, as in §5.4: "disobeying peers are a random selection
/// from a total of 50% freeriders") ignore or lie. The remaining peers are
/// sharers. ignorer_fraction + liar_fraction must not exceed
/// freerider_fraction. Assignment is random but deterministic in rng.
std::vector<Behavior> assign_behaviors(std::size_t num_peers,
                                       double freerider_fraction,
                                       double ignorer_fraction,
                                       double liar_fraction, Rng& rng);

}  // namespace bc::community
