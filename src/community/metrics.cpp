#include "community/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bc::community {

namespace {

std::size_t bins_for(Seconds duration, Seconds bin) {
  BC_ASSERT(duration > 0.0 && bin > 0.0);
  return static_cast<std::size_t>(std::ceil(duration / bin));
}

}  // namespace

Metrics::Metrics(Seconds total, Seconds bin)
    : reputation_sharers(0.0, bin, bins_for(total, bin)),
      reputation_freeriders(0.0, bin, bins_for(total, bin)),
      speed_sharers(0.0, bin, bins_for(total, bin)),
      speed_freeriders(0.0, bin, bins_for(total, bin)),
      reputation_hist_sharers(obs::Histogram::uniform_edges(-1.0, 1.0, 40)),
      reputation_hist_freeriders(obs::Histogram::uniform_edges(-1.0, 1.0, 40)),
      duration(total) {}

double Metrics::late_class_speed(bool freeriders) const {
  double bytes = 0.0;
  double time = 0.0;
  for (const auto& o : outcomes) {
    if (o.freerider != freeriders) continue;
    bytes += static_cast<double>(o.late_downloaded);
    time += o.late_time_downloading;
  }
  return time > 0.0 ? bytes / time : 0.0;
}

double Metrics::tail_speed(const TimeSeries& series, Seconds tail) const {
  BC_ASSERT(tail > 0.0);
  const Seconds from = duration - tail;
  // Sample-weighted: near the end of a run activity thins out, and an
  // unweighted bin average would let a bin holding two straggler samples
  // outvote one holding thousands.
  double sum = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < series.num_bins(); ++i) {
    if (series.bin_center(i) >= from && series.bin_count(i) > 0) {
      const auto n = static_cast<double>(series.bin_count(i));
      sum += series.bin_mean(i) * n;
      weight += n;
    }
  }
  return weight > 0.0 ? sum / weight : 0.0;
}

}  // namespace bc::community
