// Scenario configuration: everything a trace-based experiment run needs.
//
// The defaults reproduce the paper's simulation setup (§5.1): N = 100 peers,
// 10 swarms, one week, 50% lazy freeriders, sharers seed for 10 hours,
// ADSL access links (3 MBps down / 512 KBps up), Nh = Nr = 10.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "bartercast/node.hpp"
#include "bartercast/policy.hpp"
#include "bittorrent/bandwidth.hpp"
#include "trace/generator.hpp"
#include "util/units.hpp"

namespace bc::community {

struct ScenarioConfig {
  std::uint64_t seed = 1;

  // --- population (fractions of the whole trace population) -------------
  double freerider_fraction = 0.5;
  double ignorer_fraction = 0.0;  // §5.4 manipulation (1), subset of above
  double liar_fraction = 0.0;     // §5.4 manipulation (2), subset of above
  Bytes liar_claimed_upload = gib(10.0);
  /// Composable population spec ("sharer:0.5,lazy:0.3,sybil-region:0.2",
  /// see PopulationSpec in behavior.hpp). When non-empty it supersedes the
  /// legacy fraction triple above; unassigned remainder peers are sharers.
  std::string population;

  // --- adversary knobs (behaviors from the registry, DESIGN.md §12) ------
  /// Upload volume each sybil-region member credits its fellow members.
  Bytes sybil_claimed_upload = gib(10.0);
  /// Upload volume a slanderer claims toward each victim.
  Bytes slander_claimed_upload = gib(10.0);
  /// How many of its real benefactors a slanderer defames per message.
  std::size_t slander_victims = 5;
  /// Fraction of the sharer seeding period a strategic uploader invests.
  double strategic_seed_fraction = 0.1;
  /// Duty-cycling of mobile-churner sessions: `mobile_duty_cycle` of every
  /// `mobile_churn_period` online, the rest offline.
  Seconds mobile_churn_period = 30.0 * kMinute;
  double mobile_duty_cycle = 0.5;

  // --- sharer behaviour ---------------------------------------------------
  Seconds seed_duration = 10.0 * kHour;

  // --- BitTorrent ---------------------------------------------------------
  bt::AccessProfile access;     // 512 KiB/s up, 3 MiB/s down (paper)
  int regular_slots = 3;        // plus 1 optimistic slot
  Seconds round_interval = 15.0;         // transfer/choke evaluation step
  Seconds optimistic_interval = 30.0;    // paper: 30 s round-robin shift
  /// Initial holders per swarm: trace peers (always sharers) that hold the
  /// file from t=0 and keep seeding it whenever they are online — the
  /// filelist-style uploader of the content. This keeps all supply inside
  /// the community, as in the paper's trace: there are no synthetic
  /// always-on peers, and every byte is served by a policy-applying peer
  /// with ordinary bidirectional barter flows.
  std::size_t initial_holders_per_swarm = 2;

  // --- BarterCast ---------------------------------------------------------
  bartercast::NodeConfig node;  // Nh = Nr = 10, two-hop maxflow
  bartercast::ReputationPolicy policy = bartercast::ReputationPolicy::none();
  Seconds gossip_interval = 60.0;  // per-peer BarterCast exchange period
  /// Community-level reputation cache TTL used by the choker (reputations
  /// change slowly; caching bounds maxflow cost per round).
  Seconds reputation_ttl = 5.0 * kMinute;

  // --- probes ---------------------------------------------------------
  /// System-reputation sampling period (Figure 1a resolution).
  Seconds reputation_probe_interval = 2.0 * kHour;
  /// Bin width of the speed/reputation time series.
  Seconds series_bin = 4.0 * kHour;

  // --- execution --------------------------------------------------------
  /// Worker-thread budget for the batch reputation phases (the all-peers
  /// R_i(j) sweeps in reputation_probe/finalize). 1 = fully serial, today's
  /// behavior. Any value yields bit-identical results (deterministic
  /// parallel_for, see util/concurrency/thread_pool.hpp); the `parallel`
  /// ctest label and the TSan preset prove it.
  std::size_t threads = 1;

  // --- observability ---------------------------------------------------
  /// Period of the obs counter snapshots fed into the sim-time tracer as
  /// Chrome 'C' (counter-track) events. Only scheduled while the tracer is
  /// enabled at construction time, so default runs schedule nothing.
  Seconds metrics_snapshot_interval = 1.0 * kHour;
  /// When non-empty, the simulator streams windowed metric deltas (one
  /// NDJSON line per metrics_snapshot_interval of sim time, plus a final
  /// partial window at finalize) to this path. See obs/stream.hpp.
  std::string metrics_stream_path;

  /// Returns an empty string when the configuration is internally
  /// consistent; otherwise a human-readable description of the first
  /// problem (fractions out of range, disobeying fractions exceeding the
  /// freerider pool, malformed population spec, ...). The simulator
  /// fail-stops on a non-empty result at construction.
  std::string validate() const;
};

}  // namespace bc::community
