#include "community/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "bittorrent/bandwidth.hpp"
#include "check/audit.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_writer.hpp"
#include "util/assert.hpp"
#include "util/checked.hpp"
#include "util/logging.hpp"

namespace bc::community {

namespace {

/// Overlay payload wrapping one BarterCast message. `is_reply` prevents
/// reply loops in the bidirectional exchange.
struct BarterPayload final : net::Payload {
  bartercast::BarterCastMessage msg;
  bool is_reply = false;
};

std::uint64_t pair_key(PeerId a, PeerId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

CommunitySimulator::CommunitySimulator(trace::Trace trace,
                                       ScenarioConfig config)
    : trace_(std::move(trace)),
      config_(config),
      rng_(config.seed),
      pool_(config.threads),
      overlay_(engine_, Rng(config.seed ^ 0x6f6e6c696e65ULL)),
      pss_(gossip::PeerSamplingService::Config{
          config.seed ^ 0x70737321ULL, /*view_size=*/20, /*exchange_size=*/8}),
      metrics_(trace_.duration, config.series_bin) {
  BC_ASSERT_MSG(trace_.validate().empty(), "invalid trace");
  const std::string config_error = config_.validate();
  BC_ASSERT_MSG(config_error.empty(), config_error.c_str());
  BC_ASSERT(config_.round_interval > 0.0);
  BC_ASSERT(config_.optimistic_interval >= config_.round_interval);
  // One shard slot per parallel_for chunk (<= pool threads), so sharded
  // instruments can record from the batch reputation sweeps without locks
  // and still merge bit-identically at any --threads value.
  obs::Registry::instance().configure_shards(config_.threads);
  if (!config_.metrics_stream_path.empty()) {
    const bool ok = metrics_stream_.open(config_.metrics_stream_path,
                                         obs::Registry::instance());
    if (!ok) {
      BC_LOG_TAG(::bc::LogLevel::Warn, "community",
                 "cannot open metrics stream '%s'; streaming disabled",
                 config_.metrics_stream_path.c_str());
    }
  }
  setup_peers();
  setup_swarms();
  schedule_trace_events();
  schedule_periodics();
}

CommunitySimulator::PeerState& CommunitySimulator::peer(PeerId id) {
  BC_ASSERT(id < peers_.size());
  return peers_[id];
}

const CommunitySimulator::PeerState& CommunitySimulator::peer(
    PeerId id) const {
  BC_ASSERT(id < peers_.size());
  return peers_[id];
}

const PeerBehavior& CommunitySimulator::behavior(PeerId id) const {
  return *peer(id).behavior;
}

bool CommunitySimulator::is_initial_holder(PeerId id, SwarmId swarm_id) const {
  BC_ASSERT(swarm_id < swarms_.size());
  return swarms_[swarm_id]->permanent_seeds.contains(id);
}

const bartercast::Node& CommunitySimulator::node(PeerId id) const {
  return *peer(id).node;
}

const bt::Swarm& CommunitySimulator::swarm(SwarmId id) const {
  BC_ASSERT(id < swarms_.size());
  return swarms_[id]->swarm;
}

void CommunitySimulator::setup_peers() {
  const std::size_t total = trace_.peers.size();

  Rng behavior_rng = rng_.fork();
  std::vector<const PeerBehavior*> behaviors;
  if (config_.population.empty()) {
    // Legacy fraction triple: bit-identical to the pre-registry enum
    // assignment (same fork, same single shuffle; golden test pins it).
    behaviors = assign_behaviors(total, config_.freerider_fraction,
                                 config_.ignorer_fraction,
                                 config_.liar_fraction, behavior_rng);
  } else {
    const auto spec = PopulationSpec::parse(config_.population);
    BC_ASSERT(spec.has_value());  // ctor validated config_ already
    behaviors = assign_population(total, spec->slices(total),
                                  BehaviorRegistry::instance().at("sharer"),
                                  behavior_rng);
  }

  peers_.resize(total);
  for (PeerId id = 0; id < total; ++id) {
    PeerState& p = peers_[id];
    p.behavior = behaviors[id];
    cohorts_[p.behavior].push_back(id);  // ascending: id loop order
    p.node = std::make_unique<bartercast::Node>(id, config_.node);
    overlay_.register_peer(
        id,
        [this, id](PeerId from, const net::Payload& payload) {
          if (const auto* bp = dynamic_cast<const BarterPayload*>(&payload)) {
            on_barter_message(id, from, bp->msg, bp->is_reply);
          }
        },
        trace_.peers[id].connectable);
  }

  // PSS bootstrap: everyone starts off knowing a random handful of peers
  // (the tracker hands out such lists in any real community).
  std::vector<PeerId> everyone(total);
  for (PeerId id = 0; id < total; ++id) everyone[id] = id;
  for (PeerId id = 0; id < total; ++id) {
    pss_.register_peer(id);
  }
  for (PeerId id = 0; id < total; ++id) {
    pss_.bootstrap(id, rng_.sample(everyone, 12));
  }
}

void CommunitySimulator::setup_swarms() {
  swarms_.reserve(trace_.files.size());
  for (const auto& file : trace_.files) {
    auto ctx = std::make_unique<SwarmCtx>(
        bt::Swarm(bt::Torrent::from_file(file), rng_.fork()));
    const SwarmId sid = file.id;
    ctx->swarm.on_complete = [this, sid](PeerId p) {
      pending_completions_.emplace_back(sid, p);
    };
    swarms_.push_back(std::move(ctx));
  }
  // Initial holders: per swarm, a few sharers hold the file from t=0 and
  // keep seeding it whenever online (the filelist uploader of the content).
  // Sharers are preferred; a degenerate all-freerider population falls back
  // to arbitrary peers so content still gets injected.
  std::vector<PeerId> sharers, everyone;
  for (PeerId id = 0; id < peers_.size(); ++id) {
    everyone.push_back(id);
    if (!peers_[id].behavior->freerider()) sharers.push_back(id);
  }
  Rng holder_rng = rng_.fork();
  for (auto& ctx : swarms_) {
    const auto& pool = sharers.size() >= config_.initial_holders_per_swarm
                           ? sharers
                           : everyone;
    for (PeerId holder :
         holder_rng.sample(pool, config_.initial_holders_per_swarm)) {
      ctx->swarm.add_seeder(holder);
      ctx->permanent_seeds.insert(holder);
    }
  }
}

void CommunitySimulator::schedule_trace_events() {
  // Churn shaping rewrites sessions in place (attempt_join defers through
  // trace_.peers[id].next_online, so the shaped schedule must be the one
  // the trace holds). Dedicated stream, not rng_: default profiles draw
  // nothing, keeping legacy scenarios on the exact pre-registry stream.
  Rng churn_rng(config_.seed ^ 0x636875726eULL);
  for (auto& profile : trace_.peers) {
    peers_[profile.id].behavior->shape_sessions(profile.sessions, config_,
                                                churn_rng);
  }
  for (const auto& profile : trace_.peers) {
    const PeerId id = profile.id;
    for (const auto& session : profile.sessions) {
      engine_.schedule_at(session.start,
                          [this, id] { overlay_.set_online(id, true); });
      engine_.schedule_at(session.end,
                          [this, id] { overlay_.set_online(id, false); });
    }
  }
  for (const auto& request : trace_.requests) {
    engine_.schedule_at(request.at, [this, request] {
      attempt_join(request.peer, request.swarm);
    });
  }
}

void CommunitySimulator::schedule_periodics() {
  engine_.schedule_periodic(config_.round_interval, config_.round_interval,
                            [this] { round(); });
  engine_.schedule_periodic(config_.reputation_probe_interval,
                            config_.reputation_probe_interval,
                            [this] { reputation_probe(); });
  // Counter tracks for the trace viewer. Checked once, at construction:
  // enabling the tracer mid-run affects instants but not these snapshots.
  if (obs::Tracer::instance().enabled()) {
    BC_ASSERT(config_.metrics_snapshot_interval > 0.0);
    engine_.schedule_periodic(
        config_.metrics_snapshot_interval, config_.metrics_snapshot_interval,
        [this] {
          obs::snapshot_counters_to_trace(obs::Registry::instance(),
                                          obs::Tracer::instance(),
                                          engine_.now());
        });
  }
  // Windowed NDJSON stream pump: one delta line per snapshot interval of
  // sim time (plus the final partial window at finalize).
  if (metrics_stream_.is_open()) {
    BC_ASSERT(config_.metrics_snapshot_interval > 0.0);
    engine_.schedule_periodic(config_.metrics_snapshot_interval,
                              config_.metrics_snapshot_interval,
                              [this] { pump_metrics_window(); });
  }
  for (PeerId id = 0; id < peers_.size(); ++id) {
    // Random phase per peer spreads the gossip load across rounds.
    const Seconds phase = rng_.uniform(0.0, config_.gossip_interval);
    engine_.schedule_periodic(phase, config_.gossip_interval,
                              [this, id] { gossip_tick(id); });
  }
}

void CommunitySimulator::publish_cache_totals() {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  for (PeerId i = 0; i < peers_.size(); ++i) {
    cache_hits += node(i).reputation_cache().hits();
    cache_misses += node(i).reputation_cache().misses();
  }
  auto& registry = obs::Registry::instance();
  // store_total, not inc: these are cumulative tallies owned by the nodes;
  // the counters mirror them, so each publish overwrites the mirror.
  registry.counter("reputation.cache_hits").store_total(cache_hits);
  registry.counter("reputation.cache_misses").store_total(cache_misses);
}

void CommunitySimulator::pump_metrics_window() {
  publish_cache_totals();
  metrics_stream_.emit_window(obs::Registry::instance(), engine_.now());
  // Flight-recorder poll point: a SIGUSR1-armed dump request raised since
  // the last window is served here, at a deterministic safe point.
  obs::Tracer::instance().poll_signal_dump();
}

void CommunitySimulator::attempt_join(PeerId id, SwarmId swarm_id) {
  BC_ASSERT(id < trace_.peers.size());
  auto& ctx = *swarms_[swarm_id];
  if (ctx.swarm.has_peer(id)) return;  // duplicate/deferred request
  if (!overlay_.online(id)) {
    // Defer to the peer's next session. Trace peers follow their schedule
    // strictly, so a request placed while offline starts then.
    const Seconds next = trace_.peers[id].next_online(engine_.now());
    if (next >= 0.0 && next < trace_.duration) {
      const Seconds at = std::max(next, engine_.now());
      engine_.schedule_at(at, [this, id, swarm_id] {
        attempt_join(id, swarm_id);
      });
    }
    return;
  }
  ctx.swarm.add_leecher(id);
  PeerState& p = peer(id);
  ++p.files_requested;
  p.downloading.insert(swarm_id);
}

double CommunitySimulator::choker_reputation(PeerId evaluator,
                                             PeerId subject) {
  const Seconds now = engine_.now();
  auto& entry = rep_cache_[pair_key(evaluator, subject)];
  if (now - entry.at <= config_.reputation_ttl) return entry.value;
  entry.at = now;
  entry.value = peer(evaluator).node->reputation(subject);
  return entry.value;
}

void CommunitySimulator::choke_swarm(SwarmId swarm_id,
                                     const std::vector<PeerId>& online) {
  BC_OBS_SCOPE("community.choke_swarm");
  auto& ctx = *swarms_[swarm_id];
  const Seconds now = engine_.now();
  const Seconds dt = config_.round_interval;
  BC_ASSERT(dt > 0.0);
  const bool use_reputation =
      config_.policy.kind() != bartercast::PolicyKind::kNone;

  std::vector<bt::UnchokeCandidate> candidates;
  candidates.reserve(online.size());
  for (PeerId u : online) {
    const bool u_is_seed = ctx.swarm.is_complete(u);
    const bartercast::ReputationPolicy& policy = config_.policy;
    candidates.clear();
    for (PeerId v : online) {
      if (v == u || !overlay_.can_communicate(u, v)) continue;
      bt::UnchokeCandidate c;
      c.peer = v;
      c.interested =
          !ctx.swarm.is_complete(v) && ctx.swarm.interested(v, u);
      // Tit-for-tat metric: leechers rank by what v sends them; seeders by
      // what they deliver to v (paper §4.1).
      const Bytes moved = u_is_seed ? ctx.swarm.last_round_bytes(u, v)
                                    : ctx.swarm.last_round_bytes(v, u);
      c.rate = static_cast<Rate>(moved) / dt;
      // bc-analyze: allow(P1) -- the gossip backend's score sweep is memoized per view version inside DifferentialGossipBackend, so its buffers are rebuilt once per view mutation, not per choke decision; the maxflow backend allocates nothing here
      c.reputation = use_reputation ? choker_reputation(u, v) : 0.0;
      candidates.push_back(c);
    }
    ChokeState& cs = ctx.chokers[u];
    cs.regular =
        bt::pick_regular_unchokes(candidates, config_.regular_slots, policy);
    // Keep the optimistic choice for a full rotation period, unless it
    // became useless (left/completed/banned/regular) in the meantime.
    bool still_valid = false;
    if (cs.optimistic != kInvalidPeer) {
      for (const auto& c : candidates) {
        if (c.peer == cs.optimistic) {
          still_valid = c.interested && policy.allows_slot(c.reputation) &&
                        std::find(cs.regular.begin(), cs.regular.end(),
                                  c.peer) == cs.regular.end();
          break;
        }
      }
    }
    if (now >= cs.next_rotation || !still_valid) {
      cs.optimistic = cs.rotator.pick(candidates, cs.regular, policy, now);
      cs.next_rotation = now + config_.optimistic_interval;
    }
  }
  // One policy-decision event per swarm rescan keeps trace volume linear in
  // rounds, not in peers.
  if (auto& tracer = obs::Tracer::instance(); tracer.enabled()) {
    tracer.instant("choke.rescan", "policy", now,
                   {{"swarm", std::to_string(swarm_id)},
                    {"online", std::to_string(online.size())},
                    {"policy", config_.policy.name()}});
  }
}

void CommunitySimulator::round() {
  BC_OBS_SCOPE("community.round");
  static obs::Counter& rounds =
      obs::Registry::instance().counter("community.rounds");
  static obs::Counter& bytes_moved =
      obs::Registry::instance().counter("community.bytes_transferred");
  rounds.inc();
  const Seconds now = engine_.now();
  const Seconds dt = config_.round_interval;
  BC_ASSERT(dt > 0.0);
  round_received_.clear();

  // Phase 1: choke decisions per swarm on the current member/online sets.
  std::vector<std::vector<PeerId>> online_members(swarms_.size());
  std::size_t total_online = 0;
  for (SwarmId s = 0; s < swarms_.size(); ++s) {
    for (PeerId m : swarms_[s]->swarm.members()) {
      // bc-analyze: allow(P1) -- per-round membership snapshot in the driver, O(members) once per round; the per-edge kernels it feeds are the paths P1 protects
      if (overlay_.online(m)) online_members[s].push_back(m);
    }
    total_online += online_members[s].size();
    // bc-analyze: allow(P1) -- transitive image of choke_swarm's suppressed gossip-backend memo rebuild (amortized once per view version)
    choke_swarm(s, online_members[s]);
  }

  // Phase 2: collect the active directed links across all swarms.
  struct TaggedLink {
    SwarmId swarm;
    PeerId uploader;
    PeerId downloader;
  };
  std::vector<TaggedLink> links;
  std::vector<bt::LinkRequest> requests;
  // Upper bound: every online peer can hold `regular_slots` regular unchokes
  // plus one optimistic; pre-sizing keeps the collection loop off the
  // allocator (rule P1).
  const std::size_t max_links =
      total_online * (static_cast<std::size_t>(config_.regular_slots) + 1);
  links.reserve(max_links);
  requests.reserve(max_links);
  for (SwarmId s = 0; s < swarms_.size(); ++s) {
    auto& ctx = *swarms_[s];
    std::unordered_set<std::uint64_t> active_now;
    for (PeerId u : online_members[s]) {
      const auto it = ctx.chokers.find(u);
      if (it == ctx.chokers.end()) continue;
      auto consider = [&](PeerId v) {
        if (v == kInvalidPeer) return;
        if (!ctx.swarm.has_peer(v) || ctx.swarm.is_complete(v)) return;
        if (!overlay_.can_communicate(u, v)) return;
        if (!ctx.swarm.interested(v, u)) return;
        const std::uint64_t key = pair_key(u, v);
        // bc-analyze: allow(P1) -- active_now is move-assigned into ctx.prev_active at the end of the swarm pass, so it cannot be a reusable buffer; it is bounded by this round's unchoke slots
        if (!active_now.insert(key).second) return;
        links.push_back({s, u, v});
        requests.push_back({u, v});
      };
      for (PeerId v : it->second.regular) consider(v);
      consider(it->second.optimistic);
    }
    // Links that lost their unchoke release their in-flight piece.
    // bc-analyze: allow(D1) -- per-link releases touch disjoint swarm state; final state is order-independent
    for (std::uint64_t key : ctx.prev_active) {
      if (!active_now.contains(key)) {
        const auto u = static_cast<PeerId>(key >> 32);
        const auto v = static_cast<PeerId>(key & 0xffffffffu);
        if (ctx.swarm.has_peer(u) && ctx.swarm.has_peer(v)) {
          ctx.swarm.release_link(u, v);
        }
      }
    }
    ctx.prev_active = std::move(active_now);
  }

  // Phase 3: bandwidth allocation across all swarms at once (shared
  // uplinks), then apply the transfers.
  const std::vector<Rate> rates = bt::allocate_rates(
      requests, [this](PeerId) { return config_.access; });
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto budget = static_cast<Bytes>(std::llround(rates[i] * dt));
    if (budget <= 0) continue;
    const TaggedLink& l = links[i];
    const Bytes moved =
        // bc-analyze: allow(P1) -- Swarm::transfer inserts an in-flight marker only when a piece *starts*; steady-state byte movement updates the existing entry in place
        swarms_[l.swarm]->swarm.transfer(l.uploader, l.downloader, budget);
    if (moved <= 0) continue;
    // bc-analyze: allow(B1) -- metrics counter API takes u64; `moved` is checked positive on the previous line
    bytes_moved.inc(static_cast<std::uint64_t>(moved));
    // bc-analyze: allow(P1) -- FlowGraph::add_capacity allocates only when a previously-unseen edge appears in the ledger; repeat transfers on an edge take the in-place update path
    peer(l.uploader).node->on_bytes_sent(l.downloader, moved, now);
    // bc-analyze: allow(P1) -- same as on_bytes_sent: new-edge inserts only, amortized over the life of the peer pair
    peer(l.downloader).node->on_bytes_received(l.uploader, moved, now);
    peer(l.uploader).total_up += moved;
    peer(l.downloader).total_down += moved;
    round_received_[l.downloader] += moved;
  }

  BC_LOG_TAG(LogLevel::Debug, "community",
             "round: %zu active links across %zu swarms", links.size(),
             swarms_.size());

  // Phase 4: completions reported during the transfers.
  for (const auto& [sid, who] : pending_completions_) {
    handle_completion(sid, who);
  }
  pending_completions_.clear();

  // Phase 5: seeding period expiry.
  for (auto& ctx : swarms_) {
    std::vector<PeerId> expired;
    // bc-analyze: allow(D1) -- collected ids are fully re-sorted below before any state changes
    for (const auto& [p, until] : ctx->seed_until) {
      // bc-analyze: allow(P1) -- per-round expiry sweep, bounded by the swarm's seeding peers; runs once per round in the driver, not per transfer
      if (now >= until) expired.push_back(p);
    }
    std::sort(expired.begin(), expired.end());
    for (PeerId p : expired) {
      ctx->seed_until.erase(p);
      ctx->swarm.remove_peer(p);
    }
  }

  // Phase 6: round bookkeeping for tit-for-tat.
  for (auto& ctx : swarms_) ctx->swarm.end_round();

  // Phase 7: download-speed probe over actively downloading trace peers.
  for (PeerId p = 0; p < trace_.peers.size(); ++p) {
    PeerState& st = peer(p);
    if (st.downloading.empty() || !overlay_.online(p)) continue;
    Bytes got = 0;
    if (auto it = round_received_.find(p); it != round_received_.end()) {
      got = it->second;
    }
    const double speed = static_cast<double>(got) / dt;
    if (st.behavior->freerider()) {
      metrics_.speed_freeriders.add(now, speed);
    } else {
      metrics_.speed_sharers.add(now, speed);
    }
    st.time_downloading += dt;
    if (now >= trace_.duration * 0.5) {
      st.late_downloaded = util::saturating_add(st.late_downloaded, got);
      st.late_time_downloading += dt;
    }
  }

  // Phase 8: per-round conservation audit (validate builds / --validate).
  // The cheap subset only: the full audit including Eq. 1 bounds runs once
  // at the end of run().
  if (check::enabled()) {
    check::Report report;
    check::check_engine(engine_, report);
    std::vector<const bartercast::PrivateHistory*> ledgers;
    ledgers.reserve(peers_.size());
    for (const auto& p : peers_) ledgers.push_back(&p.node->history());
    Bytes ground_truth = 0;
    for (const auto& ctx : swarms_) {
      ground_truth =
          util::saturating_add(ground_truth, ctx->swarm.total_transferred());
    }
    check::check_ledger_conservation(ledgers, ground_truth, report);
    check::report_failure("community.round", report);
  }
}

void CommunitySimulator::handle_completion(SwarmId swarm_id, PeerId id) {
  const Seconds now = engine_.now();
  PeerState& p = peer(id);
  ++p.files_completed;
  p.downloading.erase(swarm_id);
  auto& ctx = *swarms_[swarm_id];
  const Seconds seed_for = p.behavior->seed_duration(config_);
  if (seed_for <= 0.0) {
    // "freeriders ... immediately leave the swarm after finishing" (§5.1).
    ctx.swarm.remove_peer(id);
    ctx.chokers.erase(id);
  } else {
    // Sharers seed the file for the configured period (10 h in the paper);
    // strategic uploaders invest their reduced budget here too.
    ctx.seed_until[id] = now + seed_for;
  }
}

bartercast::BarterCastMessage CommunitySimulator::make_outgoing_message(
    PeerId id) {
  PeerState& p = peer(id);
  MessageContext ctx{*p.node, config_, engine_.now(), id,
                     &cohorts_.at(p.behavior)};
  return p.behavior->make_message(ctx);
}

void CommunitySimulator::gossip_tick(PeerId id) {
  BC_OBS_SCOPE("community.gossip_tick");
  if (!overlay_.online(id)) return;
  const auto can_talk = [this](PeerId a, PeerId b) {
    return overlay_.can_communicate(a, b);
  };
  const PeerId partner = pss_.exchange(id, can_talk);
  if (partner == kInvalidPeer) return;
  ++metrics_.messages.gossip_exchanges;
  if (auto& tracer = obs::Tracer::instance(); tracer.enabled()) {
    tracer.instant("gossip.exchange", "gossip", engine_.now(),
                   {{"initiator", std::to_string(id)},
                    {"partner", std::to_string(partner)}});
  }
  peer(id).node->on_peer_seen(partner, engine_.now());
  if (!peer(id).behavior->sends_messages()) return;
  auto payload = std::make_unique<BarterPayload>();
  payload->msg = make_outgoing_message(id);
  payload->is_reply = false;
  if (overlay_.send(id, partner, std::move(payload))) {
    ++metrics_.messages.messages_sent;
    static obs::Counter& sent =
        obs::Registry::instance().counter("barter.messages_sent");
    sent.inc();
  }
}

void CommunitySimulator::on_barter_message(
    PeerId receiver, PeerId sender, const bartercast::BarterCastMessage& msg,
    bool is_reply) {
  BC_OBS_SCOPE("community.on_barter_message");
  static obs::Counter& received =
      obs::Registry::instance().counter("barter.messages_received");
  static obs::Counter& applied_c =
      obs::Registry::instance().counter("barter.records_applied");
  static obs::Counter& dropped_third_party =
      obs::Registry::instance().counter("barter.dropped_third_party");
  static obs::Counter& dropped_own_edge =
      obs::Registry::instance().counter("barter.dropped_own_edge");
  static obs::Counter& dropped_self_report =
      obs::Registry::instance().counter("barter.dropped_self_report");
  // Per-message record-count distribution (how full the Nh+Nr selection
  // runs in practice); serial phase, engine callback.
  static obs::LogHistogram& records_hist =
      obs::Registry::instance().log_histogram("barter.message_records",
                                              obs::LogSpec::magnitude());
  ++metrics_.messages.messages_received;
  received.inc();
  records_hist.observe(static_cast<double>(msg.records.size()));
  if (check::enabled()) {
    check::Report report;
    check::check_message(msg, config_.node.selection, report);
    check::report_failure("community.message", report);
  }
  PeerState& p = peer(receiver);
  const auto stats = p.node->receive_message(msg);
  metrics_.messages.records_applied += stats.applied;
  metrics_.messages.dropped_third_party += stats.dropped_third_party;
  metrics_.messages.dropped_own_edge += stats.dropped_own_edge;
  metrics_.messages.dropped_self_report += stats.dropped_self_report;
  applied_c.inc(stats.applied);
  dropped_third_party.inc(stats.dropped_third_party);
  dropped_own_edge.inc(stats.dropped_own_edge);
  dropped_self_report.inc(stats.dropped_self_report);
  p.node->on_peer_seen(sender, engine_.now());
  // Bidirectional exchange: answer a fresh message with our own records.
  if (!is_reply && p.behavior->sends_messages()) {
    auto payload = std::make_unique<BarterPayload>();
    payload->msg = make_outgoing_message(receiver);
    payload->is_reply = true;
    if (overlay_.send(receiver, sender, std::move(payload))) {
      ++metrics_.messages.messages_sent;
      static obs::Counter& sent =
          obs::Registry::instance().counter("barter.messages_sent");
      sent.inc();
    }
  }
}

double CommunitySimulator::system_reputation(PeerId subject) {
  const auto n = static_cast<PeerId>(trace_.peers.size());
  BC_ASSERT(subject < n);
  double sum = 0.0;
  for (PeerId j = 0; j < n; ++j) {
    if (j == subject) continue;
    sum += peer(j).node->reputation(subject);
  }
  return sum / static_cast<double>(n - 1);
}

std::vector<double> CommunitySimulator::batch_system_reputations() {
  const auto n = trace_.peers.size();
  BC_ASSERT(n >= 2);
  // Phase 1 (parallel): evaluator-major R_i(j) matrix. Task j touches only
  // evaluator j's Node (maxflow + its private CachedReputation) and writes
  // only rows[j] — disjoint state, no locks on the hot path. The engine is
  // parked during the sweep, so no other simulator state moves.
  // Sharded instruments: pool chunks record into per-chunk shards, folded
  // below at the phase barrier — counts and the value distribution come
  // out bit-identical at any thread count.
  auto& registry = obs::Registry::instance();
  obs::Counter& evals = registry.counter("reputation.evaluations");
  obs::LogHistogram& values = registry.log_histogram(
      "reputation.eval_values", obs::LogSpec::signed_unit());
  std::vector<std::vector<double>> rows(n);
  pool_.parallel_for(n, [&](std::size_t j) {
    auto& evaluator = *peers_[j].node;
    auto& row = rows[j];
    row.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      row[i] = evaluator.reputation(static_cast<PeerId>(i));
      evals.inc();
      values.observe(row[i]);
    }
  });
  registry.fold_shards();  // phase barrier: merge chunk partials
  // Phase 2 (serial): merge in ascending evaluator order. For every subject
  // i this reproduces the exact FP addition order of the serial sweep
  // (sum over j = 0..n-1, j != i), so the result is bit-identical to
  // --threads 1 regardless of how phase 1 was scheduled.
  std::vector<double> avg(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      avg[i] += rows[j][i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    avg[i] /= static_cast<double>(n - 1);
  }
  return avg;
}

void CommunitySimulator::reputation_probe() {
  BC_OBS_SCOPE("community.reputation_probe");
  const Seconds now = engine_.now();
  const auto n = static_cast<PeerId>(trace_.peers.size());
  if (n < 2) return;
  const std::vector<double> reps = batch_system_reputations();
  for (PeerId i = 0; i < n; ++i) {
    if (peer(i).behavior->freerider()) {
      metrics_.reputation_freeriders.add(now, reps[i]);
    } else {
      metrics_.reputation_sharers.add(now, reps[i]);
    }
  }
}

void CommunitySimulator::finalize() {
  BC_OBS_SCOPE("community.finalize");
  const auto n = static_cast<PeerId>(trace_.peers.size());
  metrics_.outcomes.resize(n);
  // The registry mirrors of the per-class distributions accumulate across
  // runs in one process; the Metrics histograms are this run only.
  auto& registry = obs::Registry::instance();
  obs::Histogram& reg_sharers = registry.histogram(
      "community.final_reputation_sharers",
      obs::Histogram::uniform_edges(-1.0, 1.0, 40));
  obs::Histogram& reg_freeriders = registry.histogram(
      "community.final_reputation_freeriders",
      obs::Histogram::uniform_edges(-1.0, 1.0, 40));
  const std::vector<double> reps =
      n >= 2 ? batch_system_reputations() : std::vector<double>(n, 0.0);
  for (PeerId i = 0; i < n; ++i) {
    PeerOutcome& o = metrics_.outcomes[i];
    const PeerState& p = peer(i);
    o.peer = i;
    o.behavior = std::string(p.behavior->name());
    o.freerider = p.behavior->freerider();
    o.total_uploaded = p.total_up;
    o.total_downloaded = p.total_down;
    o.final_system_reputation = reps[i];
    o.files_requested = p.files_requested;
    o.files_completed = p.files_completed;
    o.time_downloading = p.time_downloading;
    o.late_downloaded = p.late_downloaded;
    o.late_time_downloading = p.late_time_downloading;
    if (o.freerider) {
      metrics_.reputation_hist_freeriders.add(o.final_system_reputation);
      reg_freeriders.add(o.final_system_reputation);
    } else {
      metrics_.reputation_hist_sharers.add(o.final_system_reputation);
      reg_sharers.add(o.final_system_reputation);
    }
  }
  // After the final reputation sweep, so its cache activity is included.
  publish_cache_totals();
  if (metrics_stream_.is_open()) {
    // Final partial window: whatever moved since the last periodic pump
    // (including the finalize-time instruments above), so the stream's
    // column sums equal the end-of-run cumulative totals exactly.
    metrics_stream_.emit_window(obs::Registry::instance(), engine_.now());
    metrics_stream_.close();
  }
}

void CommunitySimulator::audit(check::Report& report) const {
  // Simulator monotonicity.
  check::check_engine(engine_, report);

  // Ledger conservation against the transport's ground truth.
  std::vector<const bartercast::PrivateHistory*> ledgers;
  ledgers.reserve(peers_.size());
  for (const auto& p : peers_) ledgers.push_back(&p.node->history());
  Bytes ground_truth = 0;
  for (const auto& ctx : swarms_) {
    ground_truth =
        util::saturating_add(ground_truth, ctx->swarm.total_transferred());
    if (!ctx->swarm.check_invariants()) {
      report.fail("swarm.invariants",
                  "piece/availability invariants broken in a swarm");
    }
  }
  check::check_ledger_conservation(ledgers, ground_truth, report);

  // Subjective graphs, Eq. 1 bounds, and outgoing-message shape. Graph
  // structure is cheap and checked for everyone; the maxflow/reputation
  // bounds are O(n * deg) per evaluator, so cap the evaluator sample (a
  // deterministic prefix keeps audit output stable across runs).
  const bartercast::ReputationEngine engine(config_.node.reputation);
  constexpr PeerId kBoundsSampleCap = 16;
  std::vector<PeerId> subjects;
  for (PeerId id = 0; id < peers_.size(); ++id) {
    const bartercast::Node& node = *peers_[id].node;
    check::check_flow_graph(node.view().graph(), report);
    if (id < kBoundsSampleCap) {
      subjects.clear();
      for (PeerId s = 0; s < peers_.size() && subjects.size() < kBoundsSampleCap;
           ++s) {
        if (s != id) subjects.push_back(s);
      }
      check::check_reputation_bounds(engine, node.view().graph(), id, subjects,
                                     report);
      check::check_message(node.make_message(engine_.now()),
                           config_.node.selection, report);
    }
  }
}

void CommunitySimulator::run() {
  BC_OBS_SCOPE("community.run");
  BC_ASSERT_MSG(!ran_, "run() must be called once");
  ran_ = true;
  check::ScopedAudit audit_hook(
      "community.run", [this](check::Report& report) { audit(report); });
  engine_.run_until(trace_.duration);
  finalize();
  BC_DASSERT(std::all_of(swarms_.begin(), swarms_.end(), [](const auto& c) {
    return c->swarm.check_invariants();
  }));
}

}  // namespace bc::community
