#include "analysis/experiment.hpp"

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace bc::analysis {

std::vector<ContributionPoint> contribution_points(
    const community::Metrics& metrics) {
  std::vector<ContributionPoint> out;
  out.reserve(metrics.outcomes.size());
  for (const auto& o : metrics.outcomes) {
    ContributionPoint p;
    p.peer = o.peer;
    p.freerider = o.freerider;
    p.net_contribution_gib = to_gib(o.net_contribution());
    p.system_reputation = o.final_system_reputation;
    out.push_back(p);
  }
  return out;
}

namespace {

std::pair<std::vector<double>, std::vector<double>> xy(
    const community::Metrics& metrics) {
  std::vector<double> x, y;
  x.reserve(metrics.outcomes.size());
  y.reserve(metrics.outcomes.size());
  for (const auto& o : metrics.outcomes) {
    x.push_back(to_gib(o.net_contribution()));
    y.push_back(o.final_system_reputation);
  }
  return {std::move(x), std::move(y)};
}

}  // namespace

double contribution_correlation(const community::Metrics& metrics) {
  const auto [x, y] = xy(metrics);
  return pearson(x, y);
}

double contribution_rank_correlation(const community::Metrics& metrics) {
  const auto [x, y] = xy(metrics);
  return spearman(x, y);
}

Table reputation_table(const community::Metrics& metrics, Seconds time_unit) {
  BC_ASSERT(time_unit > 0.0);
  Table t({"time", "sharers", "freeriders"});
  const auto& s = metrics.reputation_sharers;
  const auto& f = metrics.reputation_freeriders;
  for (std::size_t i = 0; i < s.num_bins(); ++i) {
    if (s.bin_count(i) == 0 && f.bin_count(i) == 0) continue;
    t.add_row({fmt(s.bin_center(i) / time_unit, 2), fmt(s.bin_mean(i), 4),
               fmt(f.bin_mean(i), 4)});
  }
  return t;
}

Table speed_table(const community::Metrics& metrics, Seconds time_unit) {
  BC_ASSERT(time_unit > 0.0);
  Table t({"time", "sharers_KiBps", "freeriders_KiBps"});
  const auto& s = metrics.speed_sharers;
  const auto& f = metrics.speed_freeriders;
  for (std::size_t i = 0; i < s.num_bins(); ++i) {
    if (s.bin_count(i) == 0 && f.bin_count(i) == 0) continue;
    t.add_row({fmt(s.bin_center(i) / time_unit, 2),
               fmt(s.bin_mean(i) / 1024.0, 1), fmt(f.bin_mean(i) / 1024.0, 1)});
  }
  return t;
}

double tail_speed_ratio(const community::Metrics& metrics, Seconds tail) {
  const double sharers = metrics.tail_speed(metrics.speed_sharers, tail);
  const double freeriders =
      metrics.tail_speed(metrics.speed_freeriders, tail);
  if (sharers <= 0.0) return 0.0;
  return freeriders / sharers;
}

}  // namespace bc::analysis
