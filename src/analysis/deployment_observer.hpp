// Instrumented-observer experiment (Figure 4).
//
// Replays a synthetic deployment population through the real BarterCast
// code paths, from the perspective of one instrumented peer ("a customized
// peer participating in the network", §5.5): every active peer's BarterCast
// message (built from its private history with the standard Nh/Nr
// selection) is logged by the observer, which merges them into its
// subjective history and then computes every peer's reputation with
// Equation 1. The observer also participates: it barters directly with a
// random subset of peers, which is what anchors the two-hop maxflow paths.
#pragma once

#include <cstdint>
#include <vector>

#include "bartercast/node.hpp"
#include "trace/deployment.hpp"
#include "util/histogram.hpp"

namespace bc::analysis {

struct ObserverConfig {
  std::uint64_t seed = 99;
  /// Number of population peers the observer bartered with directly.
  std::size_t direct_partners = 250;
  /// Scale (mean) of a direct transfer with the observer, each way.
  Bytes direct_transfer_mean = mib(150);
  bartercast::NodeConfig node;  // observer's BarterCast configuration
  bartercast::MessageSelection sender_selection;  // Nh/Nr of the senders
};

struct ObserverResult {
  /// Reputation of every population peer at the observer, indexed by peer.
  std::vector<double> reputations;
  /// Ground-truth net contribution (up - down) per peer, indexed by peer.
  std::vector<Bytes> net_contribution;

  std::size_t messages_logged = 0;
  std::size_t records_applied = 0;

  /// Fractions of peers with negative / zero-ish / positive reputation
  /// (|r| <= epsilon counts as zero), the §5.5 headline split.
  double fraction_negative(double epsilon = 1e-4) const;
  double fraction_zero(double epsilon = 1e-4) const;
  double fraction_positive(double epsilon = 1e-4) const;

  std::vector<CdfPoint> reputation_cdf() const;
};

ObserverResult run_observer(const trace::DeploymentPopulation& population,
                            const ObserverConfig& config);

}  // namespace bc::analysis
