// Post-processing helpers shared by the bench binaries: turning raw Metrics
// into the rows/series the paper's figures report.
#pragma once

#include <string>
#include <vector>

#include "community/metrics.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bc::analysis {

/// One (net contribution, system reputation) point of Figure 1(b).
struct ContributionPoint {
  PeerId peer = kInvalidPeer;
  bool freerider = false;
  double net_contribution_gib = 0.0;
  double system_reputation = 0.0;
};

std::vector<ContributionPoint> contribution_points(
    const community::Metrics& metrics);

/// Pearson correlation between net contribution and system reputation —
/// the consistency claim behind Figure 1(b).
double contribution_correlation(const community::Metrics& metrics);

/// Spearman (rank) correlation of the same relationship; robust to the
/// arctan nonlinearity.
double contribution_rank_correlation(const community::Metrics& metrics);

/// Figure 1(a)-style table: per time bin, the mean system reputation of
/// sharers and freeriders. `time_unit` scales the time column (e.g. kDay).
Table reputation_table(const community::Metrics& metrics, Seconds time_unit);

/// Figures 2-3-style table: per time bin, the mean download speed (KiB/s)
/// of sharers and freeriders.
Table speed_table(const community::Metrics& metrics, Seconds time_unit);

/// Ratio freerider/sharer mean download speed over the final `tail`
/// seconds — the headline numbers of §5.3 (~75% rank, ~50% ban).
double tail_speed_ratio(const community::Metrics& metrics, Seconds tail);

}  // namespace bc::analysis
