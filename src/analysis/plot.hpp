// Gnuplot emission: turns experiment metrics into .dat/.gp file pairs so
// the paper's figures can be rendered exactly (`gnuplot figN.gp`). The
// benches print tables for the terminal; this module exists for people who
// want the actual plots.
#pragma once

#include <string>

#include "community/metrics.hpp"
#include "util/histogram.hpp"

namespace bc::analysis {

/// Figure 1(a)-style plot: per-class system reputation over time.
/// Writes `<stem>.dat` and `<stem>.gp` into `directory`. Returns the path
/// of the .gp file. Throws nothing; reports I/O failure via empty string.
std::string write_reputation_plot(const community::Metrics& metrics,
                                  const std::string& directory,
                                  const std::string& stem);

/// Figure 1(b)-style scatter: net contribution vs system reputation.
std::string write_scatter_plot(const community::Metrics& metrics,
                               const std::string& directory,
                               const std::string& stem);

/// Figure 2-style plot: per-class download speed (KiB/s) over time.
std::string write_speed_plot(const community::Metrics& metrics,
                             const std::string& directory,
                             const std::string& stem);

/// End-of-run final-reputation distribution per class, from the obs
/// histograms Metrics fills in finalize() — distributions, not just the
/// time-series means of Figure 1(a).
std::string write_reputation_histogram_plot(const community::Metrics& metrics,
                                            const std::string& directory,
                                            const std::string& stem);

/// Figure 4(b)-style plot: a CDF curve.
std::string write_cdf_plot(std::span<const CdfPoint> cdf,
                           const std::string& directory,
                           const std::string& stem,
                           const std::string& x_label);

}  // namespace bc::analysis
