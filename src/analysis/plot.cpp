#include "analysis/plot.hpp"

#include <fstream>

#include "util/units.hpp"

namespace bc::analysis {

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return out.good();
}

std::string two_series_dat(const TimeSeries& a, const TimeSeries& b,
                           double scale) {
  std::string dat = "# time_days series_a series_b\n";
  for (std::size_t i = 0; i < a.num_bins(); ++i) {
    if (a.bin_count(i) == 0 && b.bin_count(i) == 0) continue;
    dat += std::to_string(a.bin_center(i) / kDay) + ' ' +
           std::to_string(a.bin_mean(i) * scale) + ' ' +
           std::to_string(b.bin_mean(i) * scale) + '\n';
  }
  return dat;
}

std::string two_series_gp(const std::string& stem, const std::string& title,
                          const std::string& ylabel) {
  return "set terminal pngcairo size 800,500\n"
         "set output '" + stem + ".png'\n"
         "set title '" + title + "'\n"
         "set xlabel 'time (days)'\n"
         "set ylabel '" + ylabel + "'\n"
         "set key top left\n"
         "plot '" + stem + ".dat' using 1:2 with lines lw 2 title "
         "'sharers', '" + stem + ".dat' using 1:3 with lines lw 2 title "
         "'freeriders'\n";
}

std::string emit(const std::string& directory, const std::string& stem,
                 const std::string& dat, const std::string& gp) {
  const std::string base = directory + "/" + stem;
  if (!write_file(base + ".dat", dat)) return "";
  if (!write_file(base + ".gp", gp)) return "";
  return base + ".gp";
}

}  // namespace

std::string write_reputation_plot(const community::Metrics& metrics,
                                  const std::string& directory,
                                  const std::string& stem) {
  return emit(directory, stem,
              two_series_dat(metrics.reputation_sharers,
                             metrics.reputation_freeriders, 1.0),
              two_series_gp(stem, "average system reputation",
                            "system reputation"));
}

std::string write_speed_plot(const community::Metrics& metrics,
                             const std::string& directory,
                             const std::string& stem) {
  return emit(directory, stem,
              two_series_dat(metrics.speed_sharers,
                             metrics.speed_freeriders, 1.0 / 1024.0),
              two_series_gp(stem, "average download speed",
                            "download speed (KiB/s)"));
}

std::string write_scatter_plot(const community::Metrics& metrics,
                               const std::string& directory,
                               const std::string& stem) {
  std::string dat = "# net_contribution_gib reputation class\n";
  for (const auto& o : metrics.outcomes) {
    dat += std::to_string(to_gib(o.net_contribution())) + ' ' +
           std::to_string(o.final_system_reputation) + ' ' +
           (o.freerider ? "1" : "0") + '\n';
  }
  const std::string gp =
      "set terminal pngcairo size 800,500\n"
      "set output '" + stem + ".png'\n"
      "set title 'system reputation vs net contribution'\n"
      "set xlabel 'net contribution (GiB)'\n"
      "set ylabel 'system reputation'\n"
      "plot '" + stem + ".dat' using 1:($3==0?$2:1/0) with points pt 7 "
      "title 'sharers', '" + stem + ".dat' using 1:($3==1?$2:1/0) with "
      "points pt 5 title 'freeriders'\n";
  return emit(directory, stem, dat, gp);
}

std::string write_reputation_histogram_plot(const community::Metrics& metrics,
                                            const std::string& directory,
                                            const std::string& stem) {
  const obs::Histogram& sharers = metrics.reputation_hist_sharers;
  const obs::Histogram& freeriders = metrics.reputation_hist_freeriders;
  // The histograms share bucket edges by construction (Metrics ctor).
  std::string dat = "# bucket_upper_edge sharers_count freeriders_count\n";
  for (std::size_t i = 0; i < sharers.num_buckets(); ++i) {
    if (sharers.count(i) == 0 && freeriders.count(i) == 0) continue;
    // Bucket i spans up to upper_edge(i); the overflow bucket (all-zero for
    // reputations, which live in (-1, 1)) would print as "inf", so skip it.
    if (i == sharers.edges().size()) continue;
    dat += std::to_string(sharers.upper_edge(i)) + ' ' +
           std::to_string(sharers.count(i)) + ' ' +
           std::to_string(freeriders.count(i)) + '\n';
  }
  const std::string gp =
      "set terminal pngcairo size 800,500\n"
      "set output '" + stem + ".png'\n"
      "set title 'final system reputation distribution'\n"
      "set xlabel 'system reputation'\n"
      "set ylabel 'peers'\n"
      "set style fill transparent solid 0.5\n"
      "set boxwidth 0.04\n"
      "plot '" + stem + ".dat' using 1:2 with boxes title 'sharers', '" +
      stem + ".dat' using 1:3 with boxes title 'freeriders'\n";
  return emit(directory, stem, dat, gp);
}

std::string write_cdf_plot(std::span<const CdfPoint> cdf,
                           const std::string& directory,
                           const std::string& stem,
                           const std::string& x_label) {
  std::string dat = "# value fraction\n";
  for (const auto& p : cdf) {
    dat += std::to_string(p.value) + ' ' + std::to_string(p.fraction) + '\n';
  }
  const std::string gp =
      "set terminal pngcairo size 800,500\n"
      "set output '" + stem + ".png'\n"
      "set title 'cumulative distribution'\n"
      "set xlabel '" + x_label + "'\n"
      "set ylabel 'cdf'\n"
      "set yrange [0:1]\n"
      "plot '" + stem + ".dat' using 1:2 with steps lw 2 notitle\n";
  return emit(directory, stem, dat, gp);
}

}  // namespace bc::analysis
