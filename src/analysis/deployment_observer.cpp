#include "analysis/deployment_observer.hpp"

#include <algorithm>
#include <unordered_set>

#include "bartercast/history.hpp"
#include "bartercast/message.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bc::analysis {

double ObserverResult::fraction_negative(double epsilon) const {
  if (reputations.empty()) return 0.0;
  const auto n = std::count_if(reputations.begin(), reputations.end(),
                               [&](double r) { return r < -epsilon; });
  return static_cast<double>(n) / static_cast<double>(reputations.size());
}

double ObserverResult::fraction_zero(double epsilon) const {
  if (reputations.empty()) return 0.0;
  const auto n = std::count_if(reputations.begin(), reputations.end(),
                               [&](double r) { return std::abs(r) <= epsilon; });
  return static_cast<double>(n) / static_cast<double>(reputations.size());
}

double ObserverResult::fraction_positive(double epsilon) const {
  if (reputations.empty()) return 0.0;
  const auto n = std::count_if(reputations.begin(), reputations.end(),
                               [&](double r) { return r > epsilon; });
  return static_cast<double>(n) / static_cast<double>(reputations.size());
}

std::vector<CdfPoint> ObserverResult::reputation_cdf() const {
  return empirical_cdf(reputations);
}

ObserverResult run_observer(const trace::DeploymentPopulation& population,
                            const ObserverConfig& config) {
  BC_ASSERT(population.num_peers >= 2);
  Rng rng(config.seed);

  // Reconstruct every peer's private history from the transfer edges.
  // Pseudo-timestamps (edge index) order the most-recently-seen selection.
  std::vector<bartercast::PrivateHistory> histories;
  histories.reserve(population.num_peers);
  for (PeerId i = 0; i < population.num_peers; ++i) {
    histories.emplace_back(i);
  }
  Seconds t = 0.0;
  for (const auto& edge : population.transfers) {
    histories[edge.from].record_upload(edge.to, edge.amount, t);
    histories[edge.to].record_download(edge.from, edge.amount, t);
    t += 1.0;
  }

  // The observer participates: direct barter with a subset of peers chosen
  // proportionally to their activity (one barters with the active hubs, not
  // with idle installs). These owner-incident edges are what anchor every
  // two-hop maxflow path — without them all reputations would be zero.
  const auto observer_id = static_cast<PeerId>(population.num_peers);
  bartercast::Node observer(observer_id, config.node);
  std::vector<double> cum(population.num_peers);
  double acc = 0.0;
  for (PeerId i = 0; i < population.num_peers; ++i) {
    acc += static_cast<double>(population.total_up[i] +
                               population.total_down[i]);
    cum[i] = acc;
  }
  std::vector<PeerId> partners;
  if (acc > 0.0) {
    std::unordered_set<PeerId> chosen;
    std::size_t attempts = 0;
    while (chosen.size() < config.direct_partners &&
           attempts < 50 * config.direct_partners) {
      ++attempts;
      const double r = rng.uniform(0.0, acc);
      const auto it = std::lower_bound(cum.begin(), cum.end(), r);
      chosen.insert(static_cast<PeerId>(it - cum.begin()));
    }
    // bc-analyze: allow(D1) -- set contents are fully re-sorted on the next line
    partners.assign(chosen.begin(), chosen.end());
    std::sort(partners.begin(), partners.end());
  }
  for (PeerId p : partners) {
    const auto up = static_cast<Bytes>(
        rng.exponential(static_cast<double>(config.direct_transfer_mean)));
    const auto down = static_cast<Bytes>(
        rng.exponential(static_cast<double>(config.direct_transfer_mean)));
    if (up > 0) {
      observer.on_bytes_sent(p, up, t);
      histories[p].record_download(observer_id, up, t);
    }
    if (down > 0) {
      observer.on_bytes_received(p, down, t);
      histories[p].record_upload(observer_id, down, t);
    }
    t += 1.0;
  }

  // One month of logging: every active peer's BarterCast message reaches
  // the observer (the paper's customized peer logged all messages it saw).
  ObserverResult result;
  for (PeerId i = 0; i < population.num_peers; ++i) {
    if (histories[i].size() == 0) continue;  // idle install, nothing to say
    const auto msg =
        bartercast::build_message(histories[i], config.sender_selection, t);
    const auto stats = observer.receive_message(msg);
    ++result.messages_logged;
    result.records_applied += stats.applied;
  }

  result.reputations.resize(population.num_peers);
  result.net_contribution.resize(population.num_peers);
  for (PeerId i = 0; i < population.num_peers; ++i) {
    result.reputations[i] = observer.reputation(i);
    result.net_contribution[i] =
        population.total_up[i] - population.total_down[i];
  }
  return result;
}

}  // namespace bc::analysis
