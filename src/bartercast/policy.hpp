// Reputation policies for BitTorrent (paper §4.2).
//
//  * rank: "Peers assign optimistic unchoke slots to the interested peers in
//    order of their reputation."
//  * ban: "Peers do not assign any upload slots to peers that have a
//    reputation which is below a certain negative threshold delta."
//
// The policy object is consulted by the BitTorrent choker; it is a small
// value type so every simulated peer can carry its own copy.
#pragma once

#include <string>

namespace bc::bartercast {

enum class PolicyKind {
  kNone,  // plain BitTorrent (tit-for-tat only)
  kRank,
  kBan,
  kRankBan,  // extension: rank the optimistic slot AND ban below delta
};

class ReputationPolicy {
 public:
  /// Plain tit-for-tat BitTorrent, no reputation use.
  static ReputationPolicy none() { return ReputationPolicy(PolicyKind::kNone, 0.0); }
  /// Optimistic unchokes in decreasing reputation order.
  static ReputationPolicy rank() { return ReputationPolicy(PolicyKind::kRank, 0.0); }
  /// No slots at all below `threshold` (the paper's delta, e.g. -0.5).
  static ReputationPolicy ban(double threshold);
  /// Extension (§4.2 invites richer policies): both at once — optimistic
  /// slots by reputation order and a hard ban below `threshold`.
  static ReputationPolicy rank_ban(double threshold);

  PolicyKind kind() const { return kind_; }
  double ban_threshold() const { return threshold_; }

  /// Whether a peer with this reputation may receive *any* upload slot.
  bool allows_slot(double reputation) const {
    if (kind_ != PolicyKind::kBan && kind_ != PolicyKind::kRankBan) {
      return true;
    }
    return reputation >= threshold_;
  }

  /// Whether optimistic unchoking should pick by reputation rank instead of
  /// the round-robin rotation.
  bool ranked_optimistic() const {
    return kind_ == PolicyKind::kRank || kind_ == PolicyKind::kRankBan;
  }

  std::string name() const;

  friend bool operator==(const ReputationPolicy&,
                         const ReputationPolicy&) = default;

 private:
  ReputationPolicy(PolicyKind kind, double threshold)
      : kind_(kind), threshold_(threshold) {}

  PolicyKind kind_;
  double threshold_;
};

}  // namespace bc::bartercast
