#include "bartercast/service.hpp"

#include <utility>

#include "bartercast/persistence.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace bc::bartercast {

Service::Service(PeerId self, ServiceConfig config, SendFn send,
                 SamplePartnerFn sample_partner)
    : config_(config),
      node_(std::make_unique<Node>(self, config.node)),
      send_(std::move(send)),
      sample_partner_(std::move(sample_partner)) {
  BC_ASSERT(send_ != nullptr);
  BC_ASSERT(sample_partner_ != nullptr);
  BC_ASSERT(config_.exchange_interval > 0.0);
}

void Service::on_bytes_sent(PeerId remote, Bytes amount, Seconds now) {
  node_->on_bytes_sent(remote, amount, now);
}

void Service::on_bytes_received(PeerId remote, Bytes amount, Seconds now) {
  node_->on_bytes_received(remote, amount, now);
}

void Service::send_message(PeerId to, Seconds now) {
  send_(to, encode(node_->make_message(now)));
  ++stats_.messages_sent;
}

PeerId Service::on_exchange_tick(Seconds now) {
  BC_OBS_SCOPE("service.exchange_tick");
  if (now < next_exchange_) return kInvalidPeer;
  next_exchange_ = now + config_.exchange_interval;
  const PeerId partner = sample_partner_();
  if (partner == kInvalidPeer || partner == node_->id()) return kInvalidPeer;
  ++stats_.exchanges_initiated;
  node_->on_peer_seen(partner, now);
  send_message(partner, now);
  return partner;
}

bool Service::on_datagram(PeerId from, std::span<const std::uint8_t> data,
                          Seconds now, bool reply) {
  BC_OBS_SCOPE("service.on_datagram");
  static obs::Counter& rejected =
      obs::Registry::instance().counter("service.datagrams_rejected");
  const auto message = decode(data);
  if (!message.has_value()) {
    ++stats_.messages_rejected;
    rejected.inc();
    BC_LOG_TAG(LogLevel::Debug, "bartercast",
               "dropped undecodable datagram from peer %u (%zu bytes)", from,
               data.size());
    return false;
  }
  ++stats_.messages_received;
  const auto applied = node_->receive_message(*message);
  stats_.records_applied += applied.applied;
  stats_.records_dropped += applied.dropped_third_party +
                            applied.dropped_own_edge +
                            applied.dropped_self_report;
  node_->on_peer_seen(from, now);
  if (reply) send_message(from, now);
  return true;
}

std::string Service::snapshot() const {
  return save_node_to_string(*node_);
}

bool Service::restore(const std::string& state, std::string* error) {
  auto loaded = load_node_from_string(state, config_.node, error);
  if (loaded == nullptr) return false;
  if (loaded->id() != node_->id()) {
    if (error != nullptr) *error = "state file belongs to another identity";
    return false;
  }
  node_ = std::move(loaded);
  return true;
}

}  // namespace bc::bartercast
