#include "bartercast/history.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/checked.hpp"
#include "util/sorted_view.hpp"

namespace bc::bartercast {

HistoryEntry& PrivateHistory::entry(PeerId remote, Seconds now) {
  BC_ASSERT_MSG(remote != owner_, "no history entry for the owner itself");
  auto [it, inserted] = entries_.try_emplace(remote);
  if (inserted) {
    it->second.peer = remote;
    it->second.last_seen = now;
  } else {
    it->second.last_seen = std::max(it->second.last_seen, now);
  }
  return it->second;
}

void PrivateHistory::record_upload(PeerId remote, Bytes amount, Seconds now) {
  BC_ASSERT(amount >= 0);
  // Owner-local ledger: a wrap here is a program bug, not adversarial
  // input, so checked (debug-asserted) addition is the right policy.
  HistoryEntry& e = entry(remote, now);
  e.uploaded = util::checked_add(e.uploaded, amount);
  total_up_ = util::checked_add(total_up_, amount);
}

void PrivateHistory::record_download(PeerId remote, Bytes amount,
                                     Seconds now) {
  BC_ASSERT(amount >= 0);
  HistoryEntry& e = entry(remote, now);
  e.downloaded = util::checked_add(e.downloaded, amount);
  total_down_ = util::checked_add(total_down_, amount);
}

void PrivateHistory::touch(PeerId remote, Seconds now) { entry(remote, now); }

Bytes PrivateHistory::uploaded_to(PeerId remote) const {
  auto it = entries_.find(remote);
  return it == entries_.end() ? 0 : it->second.uploaded;
}

Bytes PrivateHistory::downloaded_from(PeerId remote) const {
  auto it = entries_.find(remote);
  return it == entries_.end() ? 0 : it->second.downloaded;
}

std::vector<PeerId> PrivateHistory::top_uploaders(std::size_t n) const {
  std::vector<const HistoryEntry*> all;
  all.reserve(entries_.size());
  // bc-analyze: allow(D1) -- pointers are fully re-sorted below under a total order (downloaded desc, peer asc)
  for (const auto& [_, e] : entries_) all.push_back(&e);
  std::sort(all.begin(), all.end(),
            [](const HistoryEntry* a, const HistoryEntry* b) {
              if (a->downloaded != b->downloaded) {
                return a->downloaded > b->downloaded;
              }
              return a->peer < b->peer;
            });
  std::vector<PeerId> out;
  out.reserve(std::min(n, all.size()));
  for (std::size_t i = 0; i < all.size() && i < n; ++i) {
    out.push_back(all[i]->peer);
  }
  return out;
}

std::vector<PeerId> PrivateHistory::most_recent(std::size_t n) const {
  std::vector<const HistoryEntry*> all;
  all.reserve(entries_.size());
  // bc-analyze: allow(D1) -- pointers are fully re-sorted below under a total order (last_seen desc, peer asc)
  for (const auto& [_, e] : entries_) all.push_back(&e);
  std::sort(all.begin(), all.end(),
            [](const HistoryEntry* a, const HistoryEntry* b) {
              // </> instead of != keeps the exact-tie branch explicit: equal
              // timestamps fall through to the peer-id total order.
              if (a->last_seen > b->last_seen) return true;
              if (a->last_seen < b->last_seen) return false;
              return a->peer < b->peer;
            });
  std::vector<PeerId> out;
  out.reserve(std::min(n, all.size()));
  for (std::size_t i = 0; i < all.size() && i < n; ++i) {
    out.push_back(all[i]->peer);
  }
  return out;
}

std::vector<HistoryEntry> PrivateHistory::entries() const {
  std::vector<HistoryEntry> out;
  out.reserve(entries_.size());
  for (const auto& [_, e] : util::sorted_view(entries_)) out.push_back(e);
  return out;
}

const HistoryEntry* PrivateHistory::find(PeerId remote) const {
  auto it = entries_.find(remote);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace bc::bartercast
