// Node state persistence.
//
// A deployed BarterCast client keeps its barter database across sessions
// (Tribler persists it on disk); losing the private history would reset
// every reputation to newcomer level. This module serializes a Node's state
// to a line-oriented text format and restores it through the Node's public
// mutation API, so every integrity rule (owner-incident edges only from
// private history, remote edges max-merged) applies to loaded data exactly
// as it does to live data — a corrupted or tampered state file can degrade
// a node's knowledge but never its invariants.
//
// Format (one file per node):
//   #bartercast-node,<format version>,<peer id>
//   #history,<peer>,<uploaded>,<downloaded>,<last_seen>
//   #edge,<from>,<to>,<bytes>            (remote edges of the view)
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "bartercast/node.hpp"

namespace bc::bartercast {

inline constexpr int kPersistenceVersion = 1;

/// Writes the node's private history and the remote edges of its subjective
/// view. Deterministic output (sorted) so state files diff cleanly.
void save_node(const Node& node, std::ostream& os);
std::string save_node_to_string(const Node& node);

/// Restores a node. The node's config is supplied by the caller (policy and
/// engine settings are not state). Returns nullptr and fills *error on
/// malformed input. Loading replays through the public API, so invalid
/// records (self-edges, negative amounts) are rejected as errors rather
/// than silently admitted.
std::unique_ptr<Node> load_node(std::istream& is, const NodeConfig& config,
                                std::string* error = nullptr);
std::unique_ptr<Node> load_node_from_string(const std::string& text,
                                            const NodeConfig& config,
                                            std::string* error = nullptr);

}  // namespace bc::bartercast
