// Private transfer history (paper §3.4).
//
// "The private history at peer i is a table where an entry (j, up, down) is
// a record of the number of bytes peer i has uploaded to, respectively
// downloaded from, peer j." The table additionally remembers when each peer
// was last seen, because message construction selects "the Nr peers most
// recently seen by i" besides the Nh peers with the highest upload to i.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bartercast {

struct HistoryEntry {
  PeerId peer = kInvalidPeer;
  Bytes uploaded = 0;    // bytes the owner uploaded to `peer`
  Bytes downloaded = 0;  // bytes the owner downloaded from `peer`
  Seconds last_seen = 0.0;
};

class PrivateHistory {
 public:
  explicit PrivateHistory(PeerId owner) : owner_(owner) {}

  PeerId owner() const { return owner_; }

  /// Records `amount` bytes uploaded by the owner to `remote` at time `now`.
  void record_upload(PeerId remote, Bytes amount, Seconds now);
  /// Records `amount` bytes downloaded by the owner from `remote`.
  void record_download(PeerId remote, Bytes amount, Seconds now);
  /// Marks `remote` as seen without a transfer (e.g. a gossip exchange).
  void touch(PeerId remote, Seconds now);

  Bytes uploaded_to(PeerId remote) const;
  Bytes downloaded_from(PeerId remote) const;

  Bytes total_uploaded() const { return total_up_; }
  Bytes total_downloaded() const { return total_down_; }
  std::size_t size() const { return entries_.size(); }
  bool contains(PeerId remote) const { return entries_.contains(remote); }

  /// The n peers with the highest upload *to the owner* (i.e. highest
  /// `downloaded`), the Nh selection of §3.4. Deterministic: ties break
  /// toward the lower peer id.
  std::vector<PeerId> top_uploaders(std::size_t n) const;

  /// The n most recently seen peers (the Nr selection). Ties break toward
  /// the lower peer id.
  std::vector<PeerId> most_recent(std::size_t n) const;

  /// Snapshot of all entries, sorted by peer id (deterministic across runs
  /// and standard-library implementations).
  std::vector<HistoryEntry> entries() const;

  const HistoryEntry* find(PeerId remote) const;

 private:
  HistoryEntry& entry(PeerId remote, Seconds now);

  PeerId owner_;
  std::unordered_map<PeerId, HistoryEntry> entries_;
  Bytes total_up_ = 0;
  Bytes total_down_ = 0;
};

}  // namespace bc::bartercast
