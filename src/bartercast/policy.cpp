#include "bartercast/policy.hpp"

#include "util/assert.hpp"
#include "util/table.hpp"

namespace bc::bartercast {

ReputationPolicy ReputationPolicy::ban(double threshold) {
  BC_ASSERT_MSG(threshold >= -1.0 && threshold <= 0.0,
                "ban threshold is a negative reputation value in [-1, 0]");
  return ReputationPolicy(PolicyKind::kBan, threshold);
}

ReputationPolicy ReputationPolicy::rank_ban(double threshold) {
  BC_ASSERT_MSG(threshold >= -1.0 && threshold <= 0.0,
                "ban threshold is a negative reputation value in [-1, 0]");
  return ReputationPolicy(PolicyKind::kRankBan, threshold);
}

std::string ReputationPolicy::name() const {
  switch (kind_) {
    case PolicyKind::kNone:
      return "none";
    case PolicyKind::kRank:
      return "rank";
    case PolicyKind::kBan:
      return "ban(" + fmt(threshold_, 2) + ")";
    case PolicyKind::kRankBan:
      return "rank+ban(" + fmt(threshold_, 2) + ")";
  }
  return "?";
}

}  // namespace bc::bartercast
