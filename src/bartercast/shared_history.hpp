// Subjective shared history (paper §3.4).
//
// Each peer assembles its private history plus the records received in
// BarterCast messages into a "subjective, local graph which is used as input
// for the maxflow algorithm". Two integrity rules are enforced:
//
//  1. Edges incident to the owner come exclusively from the owner's private
//     history — "the information about these edges is derived from peer i's
//     private history which itself cannot be manipulated by others" (§3.4).
//     Gossip claims about them are ignored.
//  2. A message record must involve its sender (a peer reports its *own*
//     history). Third-party records are dropped.
//
// Gossiped records carry cumulative totals, so re-applying a newer message
// from the same sender must not double count: remote claims are merged with
// max(), which keeps edge capacities monotone under honest replay.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "bartercast/message.hpp"
#include "graph/flow_graph.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bartercast {

class SharedHistory {
 public:
  explicit SharedHistory(PeerId owner) : owner_(owner) {}

  PeerId owner() const { return owner_; }

  /// Authoritative update from the owner's own transfers: the owner
  /// uploaded (`direction_up` = true) or downloaded `amount` bytes
  /// to/from `remote`. Increments the corresponding owner-incident edge.
  void record_local_upload(PeerId remote, Bytes amount);
  void record_local_download(PeerId remote, Bytes amount);

  struct ApplyStats {
    std::size_t applied = 0;           // records merged into the graph
    std::size_t dropped_third_party = 0;
    std::size_t dropped_own_edge = 0;  // claims about owner-incident edges
    std::size_t dropped_self_report = 0;  // record about (sender, sender)
  };

  /// Merges a received message into the subjective graph under the
  /// integrity rules above. Returns per-message statistics.
  ApplyStats apply_message(const BarterCastMessage& message);

  /// The subjective local graph: edge (i, j) holds the best-known total
  /// bytes i uploaded to j.
  const graph::FlowGraph& graph() const { return graph_; }

  /// Monotonically increasing version, bumped on every mutation; used by
  /// reputation caches for exact invalidation.
  std::uint64_t version() const { return version_; }

  /// Version at which the owner's two-hop reputation of `subject` may last
  /// have changed (0 if never). Eq. 1 with paths <= 2 depends only on edges
  /// incident to {owner, subject}, so every mutation marks exactly the
  /// subjects it can affect:
  ///
  ///  * a gossiped remote edge (u, v) marks {u, v} — it is incident to no
  ///    other subject (owner-incident claims are dropped by Rule 1);
  ///  * an owner-incident edge touching `remote` marks remote and all of
  ///    remote's current out-/in-neighbours — the edge enters
  ///    maxflow(owner, j) / maxflow(j, owner) through the shared-neighbour
  ///    term min(c(owner, remote), c(remote, j)) (resp. mirrored), which is
  ///    nonzero only for neighbours of remote. A subject that becomes a
  ///    neighbour of remote later is marked by that later mutation.
  ///
  /// A cache entry for `subject` computed at version V is therefore still
  /// exact while last_change(subject) <= V. Only valid for reputation modes
  /// confined to two-hop paths; longer-path ablation modes must keep using
  /// the global version().
  std::uint64_t last_change(PeerId subject) const {
    auto it = last_change_.find(subject);
    return it == last_change_.end() ? 0 : it->second;
  }

 private:
  // Marks `remote` and its current neighbourhood as changed at the current
  // version (call after the owner-incident mutation has been applied).
  void mark_owner_edge(PeerId remote);

  PeerId owner_;
  graph::FlowGraph graph_;
  std::uint64_t version_ = 0;
  std::unordered_map<PeerId, std::uint64_t> last_change_;
};

}  // namespace bc::bartercast
