#include "bartercast/message.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bc::bartercast {

namespace {

/// The deduplicated Nh + Nr peer selection of §3.4.
std::vector<PeerId> select_peers(const PrivateHistory& history,
                                 const MessageSelection& selection) {
  std::vector<PeerId> peers = history.top_uploaders(selection.nh);
  for (PeerId p : history.most_recent(selection.nr)) {
    if (std::find(peers.begin(), peers.end(), p) == peers.end()) {
      peers.push_back(p);
    }
  }
  return peers;
}

}  // namespace

BarterCastMessage build_message(const PrivateHistory& history,
                                const MessageSelection& selection,
                                Seconds now) {
  BarterCastMessage msg;
  msg.sender = history.owner();
  msg.sent_at = now;
  for (PeerId p : select_peers(history, selection)) {
    const HistoryEntry* e = history.find(p);
    BC_ASSERT(e != nullptr);
    BarterRecord r;
    r.subject = history.owner();
    r.other = p;
    r.subject_to_other = e->uploaded;
    r.other_to_subject = e->downloaded;
    msg.records.push_back(r);
  }
  return msg;
}

BarterCastMessage build_lying_message(const PrivateHistory& history,
                                      const MessageSelection& selection,
                                      Bytes claimed_upload, Seconds now) {
  BC_ASSERT(claimed_upload >= 0);
  BarterCastMessage msg = build_message(history, selection, now);
  for (auto& r : msg.records) {
    r.subject_to_other = claimed_upload;
    r.other_to_subject = 0;
  }
  return msg;
}

}  // namespace bc::bartercast
