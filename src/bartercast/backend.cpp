#include "bartercast/backend.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace bc::bartercast {

std::string_view backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMaxflow:
      return "maxflow";
    case BackendKind::kDifferentialGossip:
      return "differential-gossip";
  }
  return "maxflow";
}

std::optional<BackendKind> parse_backend(std::string_view name) {
  std::string key(name);
  std::replace(key.begin(), key.end(), '_', '-');
  if (key == "maxflow") return BackendKind::kMaxflow;
  if (key == "differential-gossip" || key == "gossip") {
    return BackendKind::kDifferentialGossip;
  }
  return std::nullopt;
}

DifferentialGossipBackend::DifferentialGossipBackend(
    DifferentialGossipConfig config)
    : config_(config) {
  BC_ASSERT(config_.rounds >= 0);
  BC_ASSERT(config_.self_weight > 0.0 && config_.self_weight <= 1.0);
  BC_ASSERT(config_.prior_unit > 0);
}

std::unordered_map<PeerId, double> DifferentialGossipBackend::scores(
    const graph::FlowGraph& graph) const {
  BC_OBS_SCOPE("reputation.gossip_sweep");
  const std::vector<PeerId> nodes = graph.nodes();  // ascending
  const std::size_t n = nodes.size();

  // Contribution prior: arctan-scaled net of bytes served minus bytes
  // consumed, as recorded in this subjective graph. Same scale as Eq. 1,
  // so a clear sharer starts positive and a clear freerider negative.
  const double unit = static_cast<double>(config_.prior_unit);
  BC_ASSERT(unit > 0.0);
  std::vector<double> prior(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double net =
        static_cast<double>(graph.out_capacity(nodes[i])) -
        static_cast<double>(graph.in_capacity(nodes[i]));
    prior[i] = std::atan(net / unit) / (M_PI / 2.0);
  }

  // Dense PeerId -> slot map for the inner loops (PeerIds in a community
  // are small and contiguous; the map is only built once per sweep).
  std::unordered_map<PeerId, std::size_t> slot;
  slot.reserve(n);
  for (std::size_t i = 0; i < n; ++i) slot.emplace(nodes[i], i);

  // Jacobi iteration: every round reads `current` and writes `next`, so
  // the result is independent of node order, and the in-order loops make
  // the FP addition order reproducible bit-for-bit.
  std::vector<double> current = prior;
  std::vector<double> next(n, 0.0);
  for (int round = 0; round < config_.rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      double weighted = 0.0;
      double weight_sum = 0.0;
      // Both directions: peers we served and peers that served us are
      // equally acquaintances whose opinion we average in, weighted by
      // the transfer volume backing the acquaintance.
      for (const graph::Edge& e : graph.out_edges(nodes[i])) {
        const double w = static_cast<double>(e.cap);
        const auto it = slot.find(e.peer);
        BC_DASSERT(it != slot.end());
        weighted += w * current[it->second];
        weight_sum += w;
      }
      for (const graph::Edge& e : graph.in_edges(nodes[i])) {
        const double w = static_cast<double>(e.cap);
        const auto it = slot.find(e.peer);
        BC_DASSERT(it != slot.end());
        weighted += w * current[it->second];
        weight_sum += w;
      }
      next[i] = weight_sum > 0.0
                    ? config_.self_weight * prior[i] +
                          (1.0 - config_.self_weight) * weighted / weight_sum
                    : prior[i];
    }
    current.swap(next);
  }

  std::unordered_map<PeerId, double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Convex combinations of values in (-1, 1) stay inside it; the clamp
    // only guards FP rounding at the endpoints.
    out.emplace(nodes[i], std::clamp(current[i], -1.0, 1.0));
  }
  return out;
}

double DifferentialGossipBackend::reputation(const SharedHistory& view,
                                             PeerId subject) const {
  if (subject == view.owner()) return 0.0;
  if (!memo_valid_ || memo_view_ != &view ||
      memo_version_ != view.version()) {
    memo_scores_ = scores(view.graph());
    memo_view_ = &view;
    memo_version_ = view.version();
    memo_valid_ = true;
  }
  const auto it = memo_scores_.find(subject);
  return it == memo_scores_.end() ? 0.0 : it->second;
}

std::unique_ptr<const ReputationBackend> make_backend(
    BackendKind kind, const ReputationConfig& reputation,
    const DifferentialGossipConfig& gossip) {
  switch (kind) {
    case BackendKind::kMaxflow:
      return std::make_unique<MaxflowBackend>(ReputationEngine(reputation));
    case BackendKind::kDifferentialGossip:
      return std::make_unique<DifferentialGossipBackend>(gossip);
  }
  return std::make_unique<MaxflowBackend>(ReputationEngine(reputation));
}

}  // namespace bc::bartercast
