// BarterCast client service: the integration layer a deployed P2P client
// embeds.
//
// Where `Node` is the pure in-memory mechanism, `Service` packages the
// operational concerns around it:
//   * wire I/O  — outgoing messages are encoded, incoming datagrams are
//     decoded and validated before they touch the node;
//   * exchange scheduling — next_exchange_due()/on_exchange_tick() drive
//     the periodic BarterCast exchange against a caller-supplied partner
//     sampler (the PSS in Tribler);
//   * persistence — snapshot()/restore() wrap the state file format;
//   * statistics — a deployed client wants counters for its debug panel.
//
// The service is transport-agnostic: the client supplies a send callback
// and feeds received datagrams in; nothing here blocks or owns sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bartercast/codec.hpp"
#include "bartercast/node.hpp"

namespace bc::bartercast {

struct ServiceConfig {
  NodeConfig node;
  /// Period between initiated exchanges (Tribler's BuddyCast piggybacks
  /// BarterCast roughly at this cadence).
  Seconds exchange_interval = 60.0;
};

class Service {
 public:
  /// `send` delivers an encoded message to a peer; it must not reenter the
  /// service. `sample_partner` returns the next exchange partner, or
  /// kInvalidPeer when none is known (e.g. the PSS view is empty).
  using SendFn = std::function<void(PeerId to, std::vector<std::uint8_t>)>;
  using SamplePartnerFn = std::function<PeerId()>;

  struct Stats {
    std::uint64_t exchanges_initiated = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t messages_rejected = 0;  // undecodable datagrams
    std::uint64_t records_applied = 0;
    std::uint64_t records_dropped = 0;
  };

  Service(PeerId self, ServiceConfig config, SendFn send,
          SamplePartnerFn sample_partner);

  PeerId id() const { return node_->id(); }
  Node& node() { return *node_; }
  const Node& node() const { return *node_; }
  const Stats& stats() const { return stats_; }

  /// Transfer notifications from the client's transport layer.
  void on_bytes_sent(PeerId remote, Bytes amount, Seconds now);
  void on_bytes_received(PeerId remote, Bytes amount, Seconds now);

  /// When the next exchange should run (absolute time).
  Seconds next_exchange_due() const { return next_exchange_; }

  /// Runs an exchange if one is due: samples a partner and sends it our
  /// message. Returns the partner contacted, or kInvalidPeer when nothing
  /// was due / no partner was available.
  PeerId on_exchange_tick(Seconds now);

  /// Feeds a received datagram in. Undecodable input is counted and
  /// dropped; a valid message is merged and — when `reply` is true —
  /// answered with our own message (the bidirectional exchange).
  /// Returns true when the datagram decoded.
  bool on_datagram(PeerId from, std::span<const std::uint8_t> data,
                   Seconds now, bool reply = true);

  /// Reputation of `subject` per Equation 1 on the current view.
  double reputation(PeerId subject) { return node_->reputation(subject); }

  /// The node's reputation cache, exposed for debug panels and tests
  /// (hit/miss tallies, incremental-invalidation mode).
  const CachedReputation& reputation_cache() const {
    return node_->reputation_cache();
  }

  /// Persistence (see persistence.hpp for the format).
  std::string snapshot() const;
  /// Replaces the service's node with a restored one. Returns false (and
  /// leaves the current state untouched) on malformed input or an identity
  /// mismatch.
  bool restore(const std::string& state, std::string* error = nullptr);

 private:
  void send_message(PeerId to, Seconds now);

  ServiceConfig config_;
  // Owned indirectly so restore() can swap in a reloaded node (Node holds
  // internal references and is deliberately not assignable).
  std::unique_ptr<Node> node_;
  SendFn send_;
  SamplePartnerFn sample_partner_;
  Seconds next_exchange_ = 0.0;
  Stats stats_;
};

}  // namespace bc::bartercast
