#include "bartercast/codec.hpp"

#include <bit>
#include <cmath>
#include <type_traits>
#include <cstring>

#include "util/assert.hpp"

namespace bc::bartercast {

namespace {

constexpr std::size_t kHeaderSize = 1 + 1 + 4 + 8 + 2;
constexpr std::size_t kRecordSize = 4 + 4 + 8 + 8;

// Little-endian primitive writers/readers. std::memcpy keeps them free of
// alignment UB; on little-endian hosts the byte swap compiles away.
template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
      std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
    }
  }
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool get(std::span<const std::uint8_t>& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (in.size() < sizeof(T)) return false;
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, in.data(), sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
      std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
    }
  }
  std::memcpy(&value, bytes, sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

std::size_t encoded_size(std::size_t records) {
  return kHeaderSize + records * kRecordSize;
}

std::vector<std::uint8_t> encode(const BarterCastMessage& message) {
  BC_ASSERT_MSG(message.records.size() <= kMaxRecords,
                "message exceeds the protocol record cap");
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(message.records.size()));
  put<std::uint8_t>(out, kWireMagic);
  put<std::uint8_t>(out, kWireVersion);
  put<std::uint32_t>(out, message.sender);
  put<double>(out, message.sent_at);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(message.records.size()));
  for (const BarterRecord& r : message.records) {
    BC_ASSERT(r.subject_to_other >= 0 && r.other_to_subject >= 0);
    put<std::uint32_t>(out, r.subject);
    put<std::uint32_t>(out, r.other);
    // bc-analyze: allow(B1) -- wire format stores amounts as u64; value asserted non-negative above, so the cast is value-preserving
    put<std::uint64_t>(out, static_cast<std::uint64_t>(r.subject_to_other));
    // bc-analyze: allow(B1) -- wire format stores amounts as u64; value asserted non-negative above, so the cast is value-preserving
    put<std::uint64_t>(out, static_cast<std::uint64_t>(r.other_to_subject));
  }
  return out;
}

std::optional<BarterCastMessage> decode(std::span<const std::uint8_t> data) {
  std::uint8_t magic = 0, version = 0;
  if (!get(data, magic) || magic != kWireMagic) return std::nullopt;
  if (!get(data, version) || version != kWireVersion) return std::nullopt;

  BarterCastMessage msg;
  std::uint32_t sender = 0;
  if (!get(data, sender)) return std::nullopt;
  msg.sender = sender;
  if (!get(data, msg.sent_at)) return std::nullopt;
  // NaN/inf timestamps are malformed (they would poison time comparisons).
  if (std::isnan(msg.sent_at) ||
      msg.sent_at > 1e18 || msg.sent_at < -1e18) {
    return std::nullopt;
  }

  std::uint16_t count = 0;
  if (!get(data, count)) return std::nullopt;
  if (count > kMaxRecords) return std::nullopt;
  if (data.size() != static_cast<std::size_t>(count) * kRecordSize) {
    return std::nullopt;  // truncated or trailing garbage
  }
  msg.records.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    BarterRecord r;
    std::uint32_t subject = 0, other = 0;
    std::uint64_t ab = 0, ba = 0;
    if (!get(data, subject) || !get(data, other) || !get(data, ab) ||
        !get(data, ba)) {
      return std::nullopt;
    }
    // Amounts above 2^62 cannot be legitimate byte counts and would
    // overflow Bytes arithmetic downstream.
    constexpr std::uint64_t kMaxAmount = 1ULL << 62;
    if (ab > kMaxAmount || ba > kMaxAmount) return std::nullopt;
    r.subject = subject;
    r.other = other;
    r.subject_to_other = static_cast<Bytes>(ab);
    r.other_to_subject = static_cast<Bytes>(ba);
    msg.records.push_back(r);
  }
  return msg;
}

}  // namespace bc::bartercast
