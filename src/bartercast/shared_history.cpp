#include "bartercast/shared_history.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bc::bartercast {

void SharedHistory::mark_owner_edge(PeerId remote) {
  // See last_change() in the header: an owner-incident edge can shift the
  // two-hop reputation of remote itself and of any current neighbour of
  // remote (through the shared-neighbour term with v = remote). Subjects
  // that become neighbours of remote later are marked by that mutation.
  last_change_[remote] = version_;
  for (const graph::Edge& e : graph_.out_edges(remote)) {
    last_change_[e.peer] = version_;
  }
  for (const graph::Edge& e : graph_.in_edges(remote)) {
    last_change_[e.peer] = version_;
  }
}

void SharedHistory::record_local_upload(PeerId remote, Bytes amount) {
  BC_ASSERT(amount >= 0);
  BC_ASSERT(remote != owner_);
  if (amount == 0) return;
  graph_.add_capacity(owner_, remote, amount);
  ++version_;
  mark_owner_edge(remote);
}

void SharedHistory::record_local_download(PeerId remote, Bytes amount) {
  BC_ASSERT(amount >= 0);
  BC_ASSERT(remote != owner_);
  if (amount == 0) return;
  graph_.add_capacity(remote, owner_, amount);
  ++version_;
  mark_owner_edge(remote);
}

SharedHistory::ApplyStats SharedHistory::apply_message(
    const BarterCastMessage& message) {
  ApplyStats stats;
  for (const BarterRecord& r : message.records) {
    // Rule 2: a record must involve its sender.
    if (r.subject != message.sender && r.other != message.sender) {
      ++stats.dropped_third_party;
      continue;
    }
    if (r.subject == r.other) {
      ++stats.dropped_self_report;
      continue;
    }
    // Rule 1: owner-incident edges are authoritative (private history).
    if (r.subject == owner_ || r.other == owner_) {
      ++stats.dropped_own_edge;
      continue;
    }
    bool changed = false;
    if (r.subject_to_other > 0) {
      const Bytes current = graph_.capacity(r.subject, r.other);
      if (r.subject_to_other > current) {
        graph_.set_capacity(r.subject, r.other, r.subject_to_other);
        changed = true;
      }
    }
    if (r.other_to_subject > 0) {
      const Bytes current = graph_.capacity(r.other, r.subject);
      if (r.other_to_subject > current) {
        graph_.set_capacity(r.other, r.subject, r.other_to_subject);
        changed = true;
      }
    }
    if (changed) {
      ++version_;
      // A remote edge (subject, other) is incident to exactly those two
      // peers, so they are the only subjects whose two-hop reputation
      // (from the owner's viewpoint) it can affect.
      last_change_[r.subject] = version_;
      last_change_[r.other] = version_;
    }
    ++stats.applied;
  }
  return stats;
}

}  // namespace bc::bartercast
