#include "bartercast/persistence.hpp"

#include <algorithm>
#include <charconv>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace bc::bartercast {

namespace {

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(line.substr(pos));
      break;
    }
    out.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

void save_node(const Node& node, std::ostream& os) {
  os.precision(17);
  os << "#bartercast-node," << kPersistenceVersion << ',' << node.id()
     << '\n';

  auto entries = node.history().entries();
  std::sort(entries.begin(), entries.end(),
            [](const HistoryEntry& a, const HistoryEntry& b) {
              return a.peer < b.peer;
            });
  for (const auto& e : entries) {
    os << "#history," << e.peer << ',' << e.uploaded << ',' << e.downloaded
       << ',' << e.last_seen << '\n';
  }

  // Remote edges only: owner-incident edges are implied by the history.
  // nodes() is ascending and each out-edge span is sorted by head peer, so
  // this emits directly in (from, to) order — the same total order the old
  // collect-and-sort pass produced.
  const auto& graph = node.view().graph();
  for (PeerId from : graph.nodes()) {
    if (from == node.id()) continue;
    for (const auto& e : graph.out_edges(from)) {
      if (e.peer == node.id()) continue;
      os << "#edge," << from << ',' << e.peer << ',' << e.cap << '\n';
    }
  }
}

std::string save_node_to_string(const Node& node) {
  std::ostringstream os;
  save_node(node, os);
  return os.str();
}

std::unique_ptr<Node> load_node(std::istream& is, const NodeConfig& config,
                                std::string* error) {
  auto fail = [&](const std::string& msg) -> std::unique_ptr<Node> {
    if (error != nullptr) *error = msg;
    return nullptr;
  };

  // Ids come from an untrusted file as int64; anything outside PeerId's
  // range would truncate in the cast below, so such records are rejected.
  constexpr std::int64_t kMaxId =
      static_cast<std::int64_t>(std::numeric_limits<PeerId>::max());

  std::string line;
  std::size_t line_no = 0;
  std::unique_ptr<Node> node;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split(line);
    const std::string& tag = fields[0];
    auto bad = [&] {
      return fail("line " + std::to_string(line_no) + ": malformed " + tag);
    };
    if (tag == "#bartercast-node") {
      std::int64_t version = 0, id = 0;
      if (fields.size() != 3 || !parse_i64(fields[1], version) ||
          !parse_i64(fields[2], id)) {
        return bad();
      }
      if (version != kPersistenceVersion) {
        return fail("unsupported format version " + fields[1]);
      }
      if (id < 0 || id > kMaxId) return bad();
      if (node != nullptr) return fail("duplicate header");
      node = std::make_unique<Node>(static_cast<PeerId>(id), config);
    } else if (tag == "#history") {
      if (node == nullptr) return fail("record before header");
      std::int64_t peer = 0, up = 0, down = 0;
      double seen = 0.0;
      if (fields.size() != 5 || !parse_i64(fields[1], peer) ||
          !parse_i64(fields[2], up) || !parse_i64(fields[3], down) ||
          !parse_double(fields[4], seen)) {
        return bad();
      }
      if (up < 0 || down < 0) return bad();
      if (peer < 0 || peer > kMaxId) return bad();
      const auto remote = static_cast<PeerId>(peer);
      if (remote == node->id()) return bad();
      if (up > 0) node->on_bytes_sent(remote, up, seen);
      if (down > 0) node->on_bytes_received(remote, down, seen);
      if (up == 0 && down == 0) node->on_peer_seen(remote, seen);
    } else if (tag == "#edge") {
      if (node == nullptr) return fail("record before header");
      std::int64_t from = 0, to = 0, amount = 0;
      if (fields.size() != 4 || !parse_i64(fields[1], from) ||
          !parse_i64(fields[2], to) || !parse_i64(fields[3], amount)) {
        return bad();
      }
      if (amount <= 0 || from == to) return bad();
      if (from < 0 || from > kMaxId || to < 0 || to > kMaxId) return bad();
      if (static_cast<PeerId>(from) == node->id() ||
          static_cast<PeerId>(to) == node->id()) {
        return bad();  // owner edges come from the history section only
      }
      // Restore through the standard gossip path so the integrity rules
      // apply; a synthetic message from `from` carries the edge.
      BarterCastMessage msg;
      msg.sender = static_cast<PeerId>(from);
      BarterRecord r;
      r.subject = static_cast<PeerId>(from);
      r.other = static_cast<PeerId>(to);
      r.subject_to_other = amount;
      r.other_to_subject = 0;
      msg.records.push_back(r);
      node->receive_message(msg);
    } else {
      return fail("line " + std::to_string(line_no) + ": unknown record");
    }
  }
  if (node == nullptr) return fail("missing header");
  return node;
}

std::unique_ptr<Node> load_node_from_string(const std::string& text,
                                            const NodeConfig& config,
                                            std::string* error) {
  std::istringstream is(text);
  return load_node(is, config, error);
}

}  // namespace bc::bartercast
