#include "bartercast/reputation.hpp"

#include <cmath>

#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace bc::bartercast {

ReputationEngine::ReputationEngine(ReputationConfig config)
    : config_(config) {
  BC_ASSERT(config_.arctan_unit > 0);
  BC_ASSERT(config_.max_path_edges >= 1 ||
            config_.mode != MaxflowMode::kBoundedFordFulkerson);
}

Bytes ReputationEngine::flow(const graph::FlowGraph& graph, PeerId from,
                             PeerId to) const {
  switch (config_.mode) {
    case MaxflowMode::kTwoHopExact:
      return graph::max_flow_two_hop(graph, from, to);
    case MaxflowMode::kBoundedFordFulkerson:
      return graph::max_flow_ford_fulkerson(graph, from, to,
                                            config_.max_path_edges);
    case MaxflowMode::kFullFordFulkerson:
      return graph::max_flow_ford_fulkerson(graph, from, to);
  }
  return 0;
}

double ReputationEngine::scale(Bytes flow_difference) const {
  BC_ASSERT(config_.arctan_unit > 0);
  const double x = static_cast<double>(flow_difference) /
                   static_cast<double>(config_.arctan_unit);
  return std::atan(x) / (M_PI / 2.0);
}

double ReputationEngine::reputation(const graph::FlowGraph& graph,
                                    PeerId evaluator, PeerId subject) const {
  BC_OBS_SCOPE("reputation.evaluate");
  if (evaluator == subject) return 0.0;
  const Bytes toward = flow(graph, subject, evaluator);
  const Bytes away = flow(graph, evaluator, subject);
  return scale(toward - away);
}

double ReputationEngine::reputation(const SharedHistory& view,
                                    PeerId subject) const {
  return reputation(view.graph(), view.owner(), subject);
}

// The hit path is a handful of nanoseconds, so it carries no registry
// instrumentation — the hits_/misses_ members are the ground truth and
// consumers (community::CommunitySimulator::finalize) publish the totals
// into the "reputation.cache_*" registry counters at end of run.
double CachedReputation::reputation(PeerId subject) {
  auto [it, inserted] = cache_.try_emplace(subject);
  // Incremental mode: the entry stays exact until a mutation inside the
  // subject's two-hop neighbourhood bumps last_change(subject) past the
  // version the entry was computed at. The previous `== version()` check
  // over-invalidated: one gossiped record flushed every cached subject.
  const bool valid =
      !inserted &&
      (incremental_ ? it->second.version >= view_.last_change(subject)
                    : it->second.version == view_.version());
  if (valid) {
    ++hits_;
    return it->second.value;
  }
  ++misses_;
  it->second.version = view_.version();
  it->second.value = backend_->reputation(view_, subject);
  return it->second.value;
}

}  // namespace bc::bartercast
