// BarterCast message format and construction (paper §3.4).
//
// "Peer i selects for its messages the records of the Nh peers with the
// highest upload to i as well as the Nr peers most recently seen by i."
// A record is the sender's cumulative view of the transfers between itself
// and one other peer.
#pragma once

#include <cstddef>
#include <vector>

#include "bartercast/history.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bartercast {

/// One record of a BarterCast message: the sender's claim about the
/// cumulative transfers between `subject` (normally the sender itself) and
/// `other`.
struct BarterRecord {
  PeerId subject = kInvalidPeer;
  PeerId other = kInvalidPeer;
  Bytes subject_to_other = 0;  // bytes `subject` uploaded to `other`
  Bytes other_to_subject = 0;  // bytes `other` uploaded to `subject`
  friend bool operator==(const BarterRecord&, const BarterRecord&) = default;
};

struct BarterCastMessage {
  PeerId sender = kInvalidPeer;
  Seconds sent_at = 0.0;
  std::vector<BarterRecord> records;
};

struct MessageSelection {
  std::size_t nh = 10;  // highest-upload entries
  std::size_t nr = 10;  // most-recently-seen entries
};

/// Builds an honest message from the owner's private history: records of the
/// top-Nh uploaders plus the Nr most recent peers (duplicates collapsed, so
/// the message carries between max(Nh,Nr) and Nh+Nr records when the history
/// is large enough).
BarterCastMessage build_message(const PrivateHistory& history,
                                const MessageSelection& selection,
                                Seconds now);

/// Builds the message a selfish liar sends (paper §5.4 manipulation (2)):
/// for every peer it would honestly report on, it claims it uploaded
/// `claimed_upload` bytes and received nothing.
BarterCastMessage build_lying_message(const PrivateHistory& history,
                                      const MessageSelection& selection,
                                      Bytes claimed_upload, Seconds now);

}  // namespace bc::bartercast
