// Pluggable reputation-aggregation backends (the interface lives in
// reputation.hpp next to the production MaxflowBackend).
//
// DifferentialGossipBackend is a Gupta/Singh-style alternative metric for
// the adversary-zoo ablations: instead of routing trust through two-hop
// maxflow (Eq. 1), every peer in the evaluator's subjective graph starts
// from a local contribution prior and repeatedly averages in its
// neighbours' opinions, weighted by the transfer volume shared with each
// neighbour. After a fixed number of rounds the evaluator reads off the
// converged score of the subject. The metric is differential in the
// BarterCast sense — the prior is the arctan-scaled net of bytes served
// minus bytes consumed, the same scale as Eq. 1 — so both backends agree
// on the sign of a clear sharer and a clear freerider, while reacting
// very differently to slander and sybil edges (maxflow caps a fabricated
// path at the attacker's real upload; averaging does not). That contrast
// is exactly what bench/ablation_adversary.cpp measures.
//
// Determinism contract: scores are computed by Jacobi iteration over
// graph.nodes() in ascending PeerId order, reading only the previous
// round's vector, so the floating-point addition order is a pure function
// of the graph contents. The whole score vector is memoised per
// (view, version): under CachedReputation the expensive sweep runs once
// per view mutation, not once per subject.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "bartercast/reputation.hpp"
#include "bartercast/shared_history.hpp"
#include "graph/flow_graph.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bartercast {

/// Selector for NodeConfig / CLI flags.
enum class BackendKind {
  kMaxflow,             // Eq. 1 two-way maxflow (production default)
  kDifferentialGossip,  // iterative volume-weighted opinion averaging
};

/// Canonical name of a backend kind ("maxflow", "differential-gossip").
std::string_view backend_name(BackendKind kind);

/// Parses a backend name; accepts canonical names plus the short alias
/// "gossip" and treats '_' and '-' as equivalent. nullopt if unknown.
std::optional<BackendKind> parse_backend(std::string_view name);

struct DifferentialGossipConfig {
  /// Averaging rounds. Each round propagates opinions one hop further;
  /// 4 rounds cover the small-world diameter of the §5 communities.
  int rounds = 4;
  /// Weight a peer keeps on its own contribution prior each round; the
  /// remaining 1 - self_weight is the volume-weighted neighbour average.
  /// Must be in (0, 1]: 1 degenerates to the pure prior.
  double self_weight = 0.5;
  /// Byte unit of the prior's arctan argument (same role as
  /// ReputationConfig::arctan_unit in Eq. 1).
  Bytes prior_unit = kGiB;
};

class DifferentialGossipBackend final : public ReputationBackend {
 public:
  explicit DifferentialGossipBackend(DifferentialGossipConfig config = {});

  std::string_view name() const override { return "differential-gossip"; }
  double reputation(const SharedHistory& view,
                    PeerId subject) const override;
  /// Every round mixes opinions from arbitrarily distant peers, so a
  /// mutation anywhere can move any score: no two-hop dirty tracking.
  bool incremental_two_hop() const override { return false; }

  const DifferentialGossipConfig& config() const { return config_; }

  /// The full converged score vector on an explicit graph, exposed for
  /// tests and benches. Deterministic (see header comment).
  std::unordered_map<PeerId, double> scores(
      const graph::FlowGraph& graph) const;

 private:
  DifferentialGossipConfig config_;

  /// Per-(view, version) memo of the last score sweep. Mutated only under
  /// the const reputation() call; safe because a backend instance is
  /// owned by exactly one CachedReputation (itself single-threaded).
  mutable const SharedHistory* memo_view_ = nullptr;
  mutable std::uint64_t memo_version_ = 0;
  mutable bool memo_valid_ = false;
  mutable std::unordered_map<PeerId, double> memo_scores_;
};

/// Constructs the backend selected by `kind`. The maxflow backend takes
/// its mode and arctan unit from `reputation`; the gossip backend takes
/// `gossip` verbatim.
std::unique_ptr<const ReputationBackend> make_backend(
    BackendKind kind, const ReputationConfig& reputation,
    const DifferentialGossipConfig& gossip);

}  // namespace bc::bartercast
