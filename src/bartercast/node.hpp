// BarterCast node: the per-peer façade of the library.
//
// A Node owns one peer's private history, subjective shared history, and a
// cached reputation engine, and exposes the handful of operations an
// integrating P2P client needs:
//
//   on_bytes_sent / on_bytes_received  -- feed real transfers in
//   make_message                       -- produce the gossip message
//   receive_message                    -- merge a received message
//   reputation                         -- evaluate another peer (Eq. 1)
//
// See examples/quickstart.cpp for end-to-end usage.
#pragma once

#include "bartercast/backend.hpp"
#include "bartercast/history.hpp"
#include "bartercast/message.hpp"
#include "bartercast/reputation.hpp"
#include "bartercast/shared_history.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bartercast {

struct NodeConfig {
  MessageSelection selection;   // Nh / Nr record selection
  ReputationConfig reputation;  // maxflow mode + arctan unit
  /// Which aggregation metric the node evaluates reputations with.
  BackendKind backend = BackendKind::kMaxflow;
  /// Knobs for BackendKind::kDifferentialGossip (ignored otherwise).
  DifferentialGossipConfig gossip;
};

class Node {
 public:
  explicit Node(PeerId self, NodeConfig config = {});

  PeerId id() const { return self_; }
  const NodeConfig& config() const { return config_; }

  /// The node uploaded `amount` bytes to `remote` (updates both the private
  /// history and the owner-incident edge of the subjective graph).
  void on_bytes_sent(PeerId remote, Bytes amount, Seconds now);
  /// The node downloaded `amount` bytes from `remote`.
  void on_bytes_received(PeerId remote, Bytes amount, Seconds now);
  /// The node interacted with `remote` without a transfer (affects the
  /// most-recently-seen selection).
  void on_peer_seen(PeerId remote, Seconds now);

  /// Honest BarterCast message from the current private history.
  BarterCastMessage make_message(Seconds now) const;

  /// Merges a received message into the subjective view.
  SharedHistory::ApplyStats receive_message(const BarterCastMessage& message);

  /// R_self(subject) per Equation 1, on the subjective view (cached).
  double reputation(PeerId subject) { return cached_.reputation(subject); }

  const PrivateHistory& history() const { return history_; }
  const SharedHistory& view() const { return view_; }
  /// Cache statistics for observability (see obs/metrics.hpp consumers).
  const CachedReputation& reputation_cache() const { return cached_; }

 private:
  PeerId self_;
  NodeConfig config_;
  PrivateHistory history_;
  SharedHistory view_;
  CachedReputation cached_;
};

}  // namespace bc::bartercast
