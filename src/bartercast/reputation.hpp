// The maxflow reputation metric (paper §3.2-3.3, Equation 1):
//
//   R_i(j) = arctan(maxflow(j, i) - maxflow(i, j)) / (pi/2)
//
// The paper leaves the byte unit of the arctan argument implicit; the metric
// only makes sense with a scale ("the difference between 0 and 100 MB is
// more significant than the difference between 1000 MB and 1100 MB"), so the
// engine exposes `arctan_unit`: flows are divided by it before the arctan.
// The default of 1 GiB is calibrated against the paper's own policy
// thresholds: a ban threshold delta corresponds to a subjective flow deficit
// of tan(|delta| * pi/2) * arctan_unit, so delta = -0.5 bans peers with a
// ~1 GB deficit — larger than a single typical file, which is what lets
// ordinary mid-download leechers stay unbanned while week-long freeriders
// accumulate well past it (matching Figures 1(b) and 2).
//
// Maxflow is computed on the evaluator's subjective graph restricted to
// paths of at most two edges by default — the paper's practical restriction,
// justified by the small-world effect (98% of peer pairs are within two
// hops). Alternative modes exist for the path-length ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "bartercast/shared_history.hpp"
#include "graph/flow_graph.hpp"
#include "graph/maxflow.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bartercast {

enum class MaxflowMode {
  kTwoHopExact,           // closed-form paths <= 2 (production default)
  kBoundedFordFulkerson,  // depth-limited Algorithm 1 (ablation)
  kFullFordFulkerson,     // unbounded Algorithm 1 (ablation)
};

struct ReputationConfig {
  MaxflowMode mode = MaxflowMode::kTwoHopExact;
  /// Path bound for kBoundedFordFulkerson (edges per augmenting path).
  int max_path_edges = 2;
  /// Byte unit of the arctan argument (see header comment).
  Bytes arctan_unit = kGiB;
};

class ReputationEngine {
 public:
  explicit ReputationEngine(ReputationConfig config = {});

  const ReputationConfig& config() const { return config_; }

  /// R_evaluator(subject) on an explicit subjective graph. Unknown peers and
  /// subject == evaluator yield 0 (a neutral newcomer).
  double reputation(const graph::FlowGraph& graph, PeerId evaluator,
                    PeerId subject) const;

  /// Convenience overload: evaluator = view.owner().
  double reputation(const SharedHistory& view, PeerId subject) const;

  /// The directed maxflow used by the metric, exposed for tests/benches.
  Bytes flow(const graph::FlowGraph& graph, PeerId from, PeerId to) const;

  /// The scaling applied to a raw flow difference in bytes; exposed so
  /// analysis code can invert/plot it.
  double scale(Bytes flow_difference) const;

 private:
  ReputationConfig config_;
};

/// Pluggable reputation-aggregation metric: R_evaluator(subject) in [-1, 1]
/// computed on the evaluator's subjective view. The production metric is
/// MaxflowBackend (Eq. 1); alternative aggregation schemes (see
/// backend.hpp) implement the same contract so the node, simulator, and
/// policies stay metric-agnostic.
class ReputationBackend {
 public:
  virtual ~ReputationBackend() = default;

  /// Stable identifier ("maxflow", "differential-gossip", ...).
  virtual std::string_view name() const = 0;

  /// R_view.owner()(subject). Unknown subjects and subject == owner yield
  /// 0 (a neutral newcomer). Must be a pure function of (view contents,
  /// subject): CachedReputation replays it on version bumps.
  virtual double reputation(const SharedHistory& view,
                            PeerId subject) const = 0;

  /// True when the metric depends only on the subject's two-hop
  /// neighbourhood, enabling CachedReputation's per-subject dirty
  /// tracking (see below). Metrics with global propagation must return
  /// false so the cache falls back to exact version checks.
  virtual bool incremental_two_hop() const = 0;
};

/// The paper's metric (Eq. 1) as a backend: arctan-scaled two-way maxflow
/// on the subjective graph. This is the production default.
class MaxflowBackend final : public ReputationBackend {
 public:
  explicit MaxflowBackend(ReputationEngine engine = ReputationEngine{})
      : engine_(engine) {}

  std::string_view name() const override { return "maxflow"; }
  double reputation(const SharedHistory& view,
                    PeerId subject) const override {
    return engine_.reputation(view, subject);
  }
  bool incremental_two_hop() const override {
    return engine_.config().mode == MaxflowMode::kTwoHopExact ||
           (engine_.config().mode == MaxflowMode::kBoundedFordFulkerson &&
            engine_.config().max_path_edges <= 2);
  }

  const ReputationEngine& engine() const { return engine_; }

 private:
  ReputationEngine engine_;
};

/// Version-keyed reputation cache bound to one SharedHistory. Reputations
/// are recomputed lazily (through the configured backend) when the
/// underlying view changed.
///
/// For backends confined to two-hop paths (MaxflowBackend in the
/// production kTwoHopExact mode, or kBoundedFordFulkerson with
/// max_path_edges <= 2) the cache validates entries against
/// SharedHistory::last_change(subject): an entry survives any mutation
/// outside the two-hop neighbourhood of its subject, instead of the whole
/// cache flushing on every version bump. Backends with global propagation
/// (and longer-path ablation modes) fall back to the exact-version check,
/// since a distant edge can then change any score.
class CachedReputation {
 public:
  /// Legacy maxflow form: wraps `engine` in a MaxflowBackend.
  CachedReputation(const SharedHistory& view, ReputationEngine engine)
      : CachedReputation(view, std::make_unique<MaxflowBackend>(engine)) {}

  /// Pluggable form: the cache owns the backend.
  CachedReputation(const SharedHistory& view,
                   std::unique_ptr<const ReputationBackend> backend)
      : view_(view),
        backend_(std::move(backend)),
        incremental_(backend_->incremental_two_hop()) {}

  double reputation(PeerId subject);

  const ReputationBackend& backend() const { return *backend_; }
  /// True when per-subject dirty tracking is in effect (see class comment).
  bool incremental() const { return incremental_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::uint64_t version = 0;
    double value = 0.0;
  };

  const SharedHistory& view_;
  std::unique_ptr<const ReputationBackend> backend_;
  bool incremental_;
  std::unordered_map<PeerId, Entry> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace bc::bartercast
