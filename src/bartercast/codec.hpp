// Wire format for BarterCast messages.
//
// A deployed client ships messages over UDP/TCP; this codec defines the
// byte format and implements bounds-checked encode/decode. The format is
// deliberately simple and versioned:
//
//   u8  magic      0xBC
//   u8  version    1
//   u32 sender
//   f64 sent_at
//   u16 record_count                  (hard-capped, see kMaxRecords)
//   repeated record_count times:
//     u32 subject
//     u32 other
//     u64 subject_to_other            (bytes)
//     u64 other_to_subject            (bytes)
//
// All integers little-endian. Decoding is total: any malformed input
// (truncation, bad magic/version, oversized count, negative amounts after
// casting) yields std::nullopt, never UB — the input is attacker-controlled
// by definition.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bartercast/message.hpp"

namespace bc::bartercast {

/// Upper bound on records per message. The protocol sends Nh + Nr <= ~20;
/// the cap keeps a malicious 64 KiB count from allocating gigabytes.
inline constexpr std::size_t kMaxRecords = 256;

inline constexpr std::uint8_t kWireMagic = 0xBC;
inline constexpr std::uint8_t kWireVersion = 1;

/// Serialized size in bytes of a message with `records` records.
std::size_t encoded_size(std::size_t records);

/// Encodes a message. Asserts records <= kMaxRecords and non-negative
/// amounts (the library never produces anything else).
std::vector<std::uint8_t> encode(const BarterCastMessage& message);

/// Decodes a message; std::nullopt on any malformed input. Trailing bytes
/// after a well-formed message are rejected (one datagram = one message).
std::optional<BarterCastMessage> decode(std::span<const std::uint8_t> data);

}  // namespace bc::bartercast
