#include "bartercast/node.hpp"

namespace bc::bartercast {

Node::Node(PeerId self, NodeConfig config)
    : self_(self),
      config_(config),
      history_(self),
      view_(self),
      cached_(view_, make_backend(config.backend, config.reputation,
                                  config.gossip)) {}

void Node::on_bytes_sent(PeerId remote, Bytes amount, Seconds now) {
  history_.record_upload(remote, amount, now);
  view_.record_local_upload(remote, amount);
}

void Node::on_bytes_received(PeerId remote, Bytes amount, Seconds now) {
  history_.record_download(remote, amount, now);
  view_.record_local_download(remote, amount);
}

void Node::on_peer_seen(PeerId remote, Seconds now) {
  history_.touch(remote, now);
}

BarterCastMessage Node::make_message(Seconds now) const {
  return build_message(history_, config_.selection, now);
}

SharedHistory::ApplyStats Node::receive_message(
    const BarterCastMessage& message) {
  return view_.apply_message(message);
}

}  // namespace bc::bartercast
