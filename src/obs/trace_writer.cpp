#include "obs/trace_writer.hpp"

#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace bc::obs {

namespace {

std::uint64_t to_micros(Seconds t) {
  BC_ASSERT_MSG(t >= 0.0, "trace timestamps are sim time, never negative");
  return static_cast<std::uint64_t>(std::llround(t * 1e6));
}

/// Shortest round-trippable representation; "%.17g" noise would bloat the
/// file and break golden-file stability for representable values.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Set from the signal handler, consumed at poll points. sig_atomic_t is
/// the only object a standard signal handler may write.
volatile std::sig_atomic_t g_dump_requested = 0;

void request_dump(int /*signum*/) { g_dump_requested = 1; }

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::push(TraceEvent ev) {
  if (ring_capacity_ == 0 || events_.size() < ring_capacity_) {
    events_.push_back(std::move(ev));
    return;
  }
  events_[head_] = std::move(ev);
  head_ = (head_ + 1) % ring_capacity_;
  ++dropped_;
}

void Tracer::set_ring_capacity(std::size_t cap) {
  BC_ASSERT_MSG(events_.empty(),
                "ring capacity must be configured before recording");
  ring_capacity_ = cap;
  if (cap > 0) events_.reserve(cap);
}

std::vector<TraceEvent> Tracer::chronological() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

bool Tracer::dump_now() const {
  if (dump_path_.empty()) return false;
  return write_file(dump_path_);
}

void Tracer::arm_signal_dump(int signum) {
  std::signal(signum, &request_dump);
}

bool Tracer::poll_signal_dump() {
  if (g_dump_requested == 0) return false;
  g_dump_requested = 0;
  return dump_now();
}

void Tracer::instant(std::string name, std::string category, Seconds t,
                     Args args) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'i';
  ev.ts_us = to_micros(t);
  ev.args = std::move(args);
  push(std::move(ev));
}

void Tracer::complete(std::string name, std::string category, Seconds start,
                      Seconds duration, Args args) {
  if (!enabled_) return;
  BC_ASSERT(duration >= 0.0);
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'X';
  ev.ts_us = to_micros(start);
  ev.dur_us = to_micros(duration);
  ev.args = std::move(args);
  push(std::move(ev));
}

void Tracer::counter(std::string name, Seconds t, double value) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = "metrics";
  ev.phase = 'C';
  ev.ts_us = to_micros(t);
  ev.value = value;
  push(std::move(ev));
}

void Tracer::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    // head_-relative walk resolves ring wrap-around; while unbounded,
    // head_ is 0 and this is plain insertion order.
    const TraceEvent& ev = events_[(head_ + i) % events_.size()];
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.category) << "\",\"ph\":\"" << ev.phase
       << "\",\"pid\":0,\"tid\":0,\"ts\":" << ev.ts_us;
    if (ev.phase == 'X') os << ",\"dur\":" << ev.dur_us;
    if (ev.phase == 'C') {
      os << ",\"args\":{\"value\":" << format_double(ev.value) << "}";
    } else if (!ev.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, val] : ev.args) {
        if (!first_arg) os << ',';
        first_arg = false;
        os << '"' << json_escape(key) << "\":\"" << json_escape(val) << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

}  // namespace bc::obs
