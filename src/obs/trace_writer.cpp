#include "obs/trace_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace bc::obs {

namespace {

std::uint64_t to_micros(Seconds t) {
  BC_ASSERT_MSG(t >= 0.0, "trace timestamps are sim time, never negative");
  return static_cast<std::uint64_t>(std::llround(t * 1e6));
}

/// Shortest round-trippable representation; "%.17g" noise would bloat the
/// file and break golden-file stability for representable values.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::instant(std::string name, std::string category, Seconds t,
                     Args args) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'i';
  ev.ts_us = to_micros(t);
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::complete(std::string name, std::string category, Seconds start,
                      Seconds duration, Args args) {
  if (!enabled_) return;
  BC_ASSERT(duration >= 0.0);
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.phase = 'X';
  ev.ts_us = to_micros(start);
  ev.dur_us = to_micros(duration);
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::counter(std::string name, Seconds t, double value) {
  if (!enabled_) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = "metrics";
  ev.phase = 'C';
  ev.ts_us = to_micros(t);
  ev.value = value;
  events_.push_back(std::move(ev));
}

void Tracer::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
       << json_escape(ev.category) << "\",\"ph\":\"" << ev.phase
       << "\",\"pid\":0,\"tid\":0,\"ts\":" << ev.ts_us;
    if (ev.phase == 'X') os << ",\"dur\":" << ev.dur_us;
    if (ev.phase == 'C') {
      os << ",\"args\":{\"value\":" << format_double(ev.value) << "}";
    } else if (!ev.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, val] : ev.args) {
        if (!first_arg) os << ',';
        first_arg = false;
        os << '"' << json_escape(key) << "\":\"" << json_escape(val) << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

}  // namespace bc::obs
