// Scoped wall-time profiling: per-site call counts and inclusive time.
//
// Usage — one macro at the top of a hot function or block:
//
//   void Engine::step() {
//     BC_OBS_SCOPE("sim.dispatch");
//     ...
//   }
//
// The macro resolves the site once (function-local static reference) and
// constructs a ScopedTimer. While the profiler is disabled — the default —
// the timer constructor is a single branch and no clock is read, keeping
// instrumented hot paths within noise of uninstrumented ones. Enabled, the
// cost is two steady_clock reads plus one short mutex section per scope.
//
// Sites aggregate *inclusive* wall time: a scope nested inside another
// contributes to both. Recursive re-entry of the same site counts every
// call but accumulates time only at the outermost level, so recursion does
// not multiply elapsed time.
//
// Thread safety: BC_OBS_SCOPE may run on bc::util::ThreadPool workers (the
// batch reputation sweeps profile maxflow per evaluator). The recursion
// guard is therefore *thread-local* — each thread tracks its own nesting
// depth per site, so two threads inside the same site do not corrupt each
// other's outermost-frame attribution — and the calls/nanos tallies are
// merged under the profiler's annotated Mutex in record(). Under a pool,
// `nanos` sums the wall time of every thread's outermost frames (total CPU
// attribution, not elapsed time). enabled() is a relaxed flag toggled
// during single-threaded setup.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/concurrency/atomic.hpp"
#include "util/concurrency/mutex.hpp"

namespace bc::obs {

struct ProfileSite {
  std::string name;
  /// calls/nanos are written through Profiler::record() under the owning
  /// profiler's mutex; read them directly only while no pool is running.
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;  // inclusive wall time, outermost frames only
  /// Process-unique slot in the thread-local recursion-depth table,
  /// assigned at creation and immutable afterwards (lock-free to read).
  std::uint32_t tls_slot = 0;
};

class Profiler {
 public:
  Profiler() = default;

  /// The process-wide profiler that BC_OBS_SCOPE sites register with.
  static Profiler& instance();

  bool enabled() const { return enabled_.load(); }
  /// Toggle while single-threaded (setup / between runs), like all
  /// configuration in this codebase.
  void set_enabled(bool on) { enabled_.store(on); }

  /// Finds or creates the named site; the reference stays valid for the
  /// profiler's lifetime (node-based storage).
  ProfileSite& site(std::string_view name);

  /// Merges one finished scope into `site`: always counts the call, adds
  /// the elapsed time only for a thread's outermost frame of that site.
  void record(ProfileSite& site, std::uint64_t elapsed_nanos, bool outermost);

  /// Value-copies of all sites, sorted by name (deterministic export).
  std::vector<ProfileSite> snapshot() const;

  std::size_t num_sites() const;

  /// Zeroes calls/time but keeps site registrations and references valid.
  void reset_values();

 private:
  mutable util::Mutex mu_;
  util::RelaxedBool enabled_;
  std::map<std::string, ProfileSite, std::less<>> sites_ BC_GUARDED_BY(mu_);
};

/// RAII accumulator for one site. Reads the profiler's enabled flag once,
/// at construction; a scope that straddles an enable/disable toggle is
/// attributed per the state at entry.
class ScopedTimer {
 public:
  ScopedTimer(ProfileSite& site, Profiler& profiler);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfileSite* site_ = nullptr;  // null when the profiler was disabled
  Profiler* profiler_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace bc::obs

#define BC_OBS_CONCAT_INNER(a, b) a##b
#define BC_OBS_CONCAT(a, b) BC_OBS_CONCAT_INNER(a, b)

/// Profiles the enclosing scope under `site_name` (a string literal).
#define BC_OBS_SCOPE(site_name)                                          \
  static ::bc::obs::ProfileSite& BC_OBS_CONCAT(bc_obs_site_, __LINE__) = \
      ::bc::obs::Profiler::instance().site(site_name);                   \
  const ::bc::obs::ScopedTimer BC_OBS_CONCAT(bc_obs_timer_, __LINE__)(   \
      BC_OBS_CONCAT(bc_obs_site_, __LINE__),                             \
      ::bc::obs::Profiler::instance())
