// Scoped wall-time profiling: per-site call counts and inclusive time.
//
// Usage — one macro at the top of a hot function or block:
//
//   void Engine::step() {
//     BC_OBS_SCOPE("sim.dispatch");
//     ...
//   }
//
// The macro resolves the site once (function-local static reference) and
// constructs a ScopedTimer. While the profiler is disabled — the default —
// the timer constructor is a single branch and no clock is read, keeping
// instrumented hot paths within noise of uninstrumented ones. Enabled, the
// cost is two steady_clock reads per scope.
//
// Sites aggregate *inclusive* wall time: a scope nested inside another
// contributes to both. Recursive re-entry of the same site counts every
// call but accumulates time only at the outermost level, so recursion does
// not multiply elapsed time (see ProfileSite::depth).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bc::obs {

struct ProfileSite {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;  // inclusive wall time
  std::uint32_t depth = 0;  // live nesting depth (recursion guard)
};

class Profiler {
 public:
  Profiler() = default;

  /// The process-wide profiler that BC_OBS_SCOPE sites register with.
  static Profiler& instance();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Finds or creates the named site; the reference stays valid for the
  /// profiler's lifetime (node-based storage).
  ProfileSite& site(std::string_view name);

  /// Value-copies of all sites, sorted by name (deterministic export).
  std::vector<ProfileSite> snapshot() const;

  std::size_t num_sites() const { return sites_.size(); }

  /// Zeroes calls/time but keeps site registrations and references valid.
  void reset_values();

 private:
  bool enabled_ = false;
  std::map<std::string, ProfileSite, std::less<>> sites_;
};

/// RAII accumulator for one site. Reads the profiler's enabled flag once,
/// at construction; a scope that straddles an enable/disable toggle is
/// attributed per the state at entry.
class ScopedTimer {
 public:
  ScopedTimer(ProfileSite& site, const Profiler& profiler);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfileSite* site_ = nullptr;  // null when the profiler was disabled
  std::uint64_t start_ = 0;
};

}  // namespace bc::obs

#define BC_OBS_CONCAT_INNER(a, b) a##b
#define BC_OBS_CONCAT(a, b) BC_OBS_CONCAT_INNER(a, b)

/// Profiles the enclosing scope under `site_name` (a string literal).
#define BC_OBS_SCOPE(site_name)                                          \
  static ::bc::obs::ProfileSite& BC_OBS_CONCAT(bc_obs_site_, __LINE__) = \
      ::bc::obs::Profiler::instance().site(site_name);                   \
  const ::bc::obs::ScopedTimer BC_OBS_CONCAT(bc_obs_timer_, __LINE__)(   \
      BC_OBS_CONCAT(bc_obs_site_, __LINE__),                             \
      ::bc::obs::Profiler::instance())
