#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/table.hpp"

namespace bc::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string metrics_json(const Registry& registry, const Profiler& profiler) {
  const Snapshot snap = registry.snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + format_double(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(h.name) + "\": {\"upper_edges\": [";
    for (std::size_t i = 0; i < h.upper_edges.size(); ++i) {
      if (i > 0) out += ", ";
      out += format_double(h.upper_edges[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"total\": " + std::to_string(h.total) +
           ", \"sum\": " + format_double(h.sum) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"log_histograms\": {";
  first = true;
  for (const auto& h : snap.log_histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(h.name) + "\": {\"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "[" + std::to_string(h.buckets[i].first) + ", " +
             std::to_string(h.buckets[i].second) + "]";
    }
    out += "], \"total\": " + std::to_string(h.total) +
           ", \"sum\": " + format_double(h.sum) +
           ", \"p50\": " + format_double(h.p50) +
           ", \"p90\": " + format_double(h.p90) +
           ", \"p99\": " + format_double(h.p99) +
           ", \"max\": " + format_double(h.max) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"profile\": {";
  first = true;
  for (const auto& site : profiler.snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(site.name) +
           "\": {\"calls\": " + std::to_string(site.calls) +
           ", \"total_ns\": " + std::to_string(site.nanos) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string metrics_csv(const Registry& registry) {
  const Snapshot snap = registry.snapshot();
  std::string out = "name,kind,value\n";
  for (const auto& [name, value] : snap.counters) {
    out += name + ",counter," + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += name + ",gauge," + format_double(value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string edge = i < h.upper_edges.size()
                                   ? format_double(h.upper_edges[i])
                                   : "inf";
      out += h.name + "[le=" + edge + "],histogram," +
             std::to_string(h.counts[i]) + "\n";
    }
  }
  for (const auto& h : snap.log_histograms) {
    for (const auto& [index, count] : h.buckets) {
      out += h.name + "[bucket=" + std::to_string(index) +
             "],log_histogram," + std::to_string(count) + "\n";
    }
    out += h.name + "[p50],log_histogram," + format_double(h.p50) + "\n";
    out += h.name + "[p99],log_histogram," + format_double(h.p99) + "\n";
  }
  return out;
}

std::string profile_report(const Profiler& profiler) {
  Table t({"site", "calls", "total_ms", "mean_us"});
  for (const auto& site : profiler.snapshot()) {
    const double total_ms = static_cast<double>(site.nanos) / 1e6;
    const double mean_us =
        site.calls > 0
            ? static_cast<double>(site.nanos) /
                  (1e3 * static_cast<double>(site.calls))
            : 0.0;
    t.add_row({site.name, std::to_string(site.calls), fmt(total_ms, 3),
               fmt(mean_us, 3)});
  }
  return t.to_string();
}

void snapshot_counters_to_trace(const Registry& registry, Tracer& tracer,
                                Seconds t) {
  if (!tracer.enabled()) return;
  for (const auto& [name, value] : registry.snapshot().counters) {
    tracer.counter(name, t, static_cast<double>(value));
  }
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return out.good();
}

}  // namespace bc::obs
