#include "obs/stream.hpp"

#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "obs/trace_writer.hpp"  // json_escape
#include "util/assert.hpp"

namespace bc::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// One log histogram's window: bucket-count deltas (ascending index) with
/// their value edges, plus exact integer total/sum deltas.
struct LogDelta {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  std::vector<double> edges;
  std::uint64_t total = 0;
  std::int64_t sum_units = 0;
  int sum_frac_bits = 0;
};

LogDelta diff_log(const LogHistogramSnapshot& cur,
                  const LogHistogramSnapshot* prev) {
  LogDelta d;
  d.sum_frac_bits = cur.sum_frac_bits;
  d.total = cur.total - (prev ? prev->total : 0);
  d.sum_units = cur.sum_units - (prev ? prev->sum_units : 0);
  std::size_t j = 0;  // cursor into prev->buckets (both ascending by index)
  for (std::size_t i = 0; i < cur.buckets.size(); ++i) {
    const auto [index, count] = cur.buckets[i];
    std::uint64_t before = 0;
    if (prev) {
      while (j < prev->buckets.size() && prev->buckets[j].first < index) ++j;
      if (j < prev->buckets.size() && prev->buckets[j].first == index) {
        before = prev->buckets[j].second;
      }
    }
    BC_DASSERT(count >= before);  // bucket counts are monotone
    if (count > before) {
      d.buckets.emplace_back(index, count - before);
      d.edges.push_back(cur.bucket_edges[i]);
    }
  }
  return d;
}

/// Quantile over the window's deltas: upper edge of the bucket holding
/// the ceil(q * total)-th windowed observation.
double delta_quantile(const LogDelta& d, double q) {
  if (d.total == 0) return 0.0;
  auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(d.total)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < d.buckets.size(); ++i) {
    cum += d.buckets[i].second;
    if (cum >= rank) return d.edges[i];
  }
  return d.edges.empty() ? 0.0 : d.edges.back();
}

}  // namespace

bool MetricsStream::open(const std::string& path, const Registry& registry) {
  BC_ASSERT_MSG(!out_.is_open(), "stream already open");
  out_.open(path, std::ios::trunc);
  if (!out_) return false;
  prev_ = registry.snapshot();  // windows cover activity after this point
  windows_ = 0;
  return true;
}

void MetricsStream::emit_window(const Registry& registry, Seconds t) {
  if (!out_.is_open()) return;
  Snapshot cur = registry.snapshot();

  std::string line = "{\"schema\":\"bc.metrics.window.v1\",\"seq\":" +
                     std::to_string(windows_) +
                     ",\"t\":" + format_double(t) + ",\"counters\":{";
  bool first = true;
  std::size_t j = 0;  // cursor into prev_.counters (both sorted by name)
  for (const auto& [name, value] : cur.counters) {
    std::uint64_t before = 0;
    while (j < prev_.counters.size() && prev_.counters[j].first < name) ++j;
    if (j < prev_.counters.size() && prev_.counters[j].first == name) {
      before = prev_.counters[j].second;
    }
    // Signed delta: store_total() may lawfully republish a smaller total
    // (e.g. after a reset); the stream records what happened either way.
    const auto delta =
        static_cast<std::int64_t>(value) - static_cast<std::int64_t>(before);
    if (delta == 0) continue;
    line += first ? "" : ",";
    first = false;
    line += "\"" + json_escape(name) + "\":" + std::to_string(delta);
  }

  line += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : cur.gauges) {
    line += first ? "" : ",";
    first = false;
    line += "\"" + json_escape(name) + "\":" + format_double(value);
  }

  line += "},\"log_histograms\":{";
  first = true;
  j = 0;  // cursor into prev_.log_histograms (both sorted by name)
  for (const auto& h : cur.log_histograms) {
    const LogHistogramSnapshot* before = nullptr;
    while (j < prev_.log_histograms.size() &&
           prev_.log_histograms[j].name < h.name) {
      ++j;
    }
    if (j < prev_.log_histograms.size() &&
        prev_.log_histograms[j].name == h.name) {
      before = &prev_.log_histograms[j];
    }
    const LogDelta d = diff_log(h, before);
    if (d.total == 0) continue;
    line += first ? "" : ",";
    first = false;
    line += "\"" + json_escape(h.name) + "\":{\"buckets\":[";
    for (std::size_t i = 0; i < d.buckets.size(); ++i) {
      if (i > 0) line += ",";
      line += "[" + std::to_string(d.buckets[i].first) + "," +
              std::to_string(d.buckets[i].second) + "]";
    }
    const double dsum =
        std::ldexp(static_cast<double>(d.sum_units), -d.sum_frac_bits);
    line += "],\"total\":" + std::to_string(d.total) +
            ",\"sum\":" + format_double(dsum) +
            ",\"p50\":" + format_double(delta_quantile(d, 0.5)) +
            ",\"p99\":" + format_double(delta_quantile(d, 0.99)) +
            ",\"max\":" +
            format_double(d.edges.empty() ? 0.0 : d.edges.back()) + "}";
  }
  line += "}}";

  out_ << line << '\n';
  out_.flush();  // keep the file tail-able mid-run
  prev_ = std::move(cur);
  ++windows_;
}

void MetricsStream::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace bc::obs
