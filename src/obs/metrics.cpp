#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/checked.hpp"

namespace bc::obs {

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), counts_(edges_.size() + 1, 0) {
  BC_ASSERT_MSG(!edges_.empty(), "histogram needs at least one bucket edge");
  BC_ASSERT_MSG(std::is_sorted(edges_.begin(), edges_.end()),
                "histogram edges must be ascending");
}

std::vector<double> Histogram::uniform_edges(double lo, double hi,
                                             std::size_t num_buckets) {
  BC_ASSERT(hi > lo && num_buckets > 0);
  std::vector<double> edges(num_buckets);
  const double width = (hi - lo) / static_cast<double>(num_buckets);
  for (std::size_t i = 0; i + 1 < num_buckets; ++i) {
    edges[i] = lo + width * static_cast<double>(i + 1);
  }
  // Exact top edge: accumulating widths would land slightly below hi and
  // push values equal to hi into the overflow bucket.
  edges[num_buckets - 1] = hi;
  return edges;
}

void Histogram::add(double value) {
  BC_ASSERT_MSG(!counts_.empty(), "histogram used before construction");
  // Serial-phase contract: fail fast (validate preset) when a pool chunk
  // or a foreign thread touches the double accumulator below.
  BC_DASSERT(util::current_shard_slot() == 0 &&
             util::current_thread_tag() == owner_);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  counts_[static_cast<std::size_t>(it - edges_.begin())] += 1;
  ++total_;
  sum_ += value;
}

double Histogram::upper_edge(std::size_t i) const {
  BC_ASSERT(i < counts_.size());
  if (i == edges_.size()) return std::numeric_limits<double>::infinity();
  return edges_[i];
}

std::uint64_t Histogram::count(std::size_t i) const {
  BC_ASSERT(i < counts_.size());
  return counts_[i];
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

LogHistogram::LogHistogram(const LogSpec& spec, std::size_t num_shards)
    : spec_(spec) {
  BC_ASSERT_MSG(spec.max_exp2 > spec.min_exp2,
                "log histogram needs at least one octave");
  BC_ASSERT_MSG(spec.sub_bits <= 8, "sub-bucket resolution capped at 2^8");
  BC_ASSERT_MSG(spec.sum_frac_bits >= 0 && spec.sum_frac_bits <= 40,
                "sum fixed-point quantum out of range");
  const auto octaves =
      static_cast<std::size_t>(spec.max_exp2 - spec.min_exp2);
  per_sign_ = octaves << spec.sub_bits;
  zero_index_ = spec.with_negative ? per_sign_ : 0;
  min_mag_ = std::ldexp(1.0, spec.min_exp2);
  counts_.assign(per_sign_ * (spec.with_negative ? 2 : 1) + 1, 0);
  enable_shards(num_shards);
}

std::size_t LogHistogram::index_of(double v) const {
  BC_DASSERT(!std::isnan(v));
  const bool neg = v < 0.0;
  // A negative value on an unsigned-spec histogram is a caller bug; in
  // release it degrades to the zero bucket rather than indexing out.
  BC_DASSERT(spec_.with_negative || !neg);
  const double a = neg ? -v : v;
  if (a < min_mag_ || (neg && !spec_.with_negative)) return zero_index_;
  int e = 0;
  const double m = std::frexp(a, &e);  // a = m * 2^e, m in [0.5, 1)
  const auto octaves = static_cast<long>(per_sign_ >> spec_.sub_bits);
  long oct = static_cast<long>(e) - 1 - spec_.min_exp2;
  std::size_t sub;
  const auto sub_count = static_cast<std::size_t>(1) << spec_.sub_bits;
  if (oct >= octaves) {
    oct = octaves - 1;
    sub = sub_count - 1;  // clamp into the top sub-bucket
  } else {
    // m - 0.5 and both scalings are exact binary-FP operations (sub_count
    // is a power of two), so the truncation is bit-deterministic.
    sub = static_cast<std::size_t>((m - 0.5) * 2.0 *
                                   static_cast<double>(sub_count));
  }
  const std::size_t k =
      (static_cast<std::size_t>(oct) << spec_.sub_bits) | sub;
  return neg ? zero_index_ - 1 - k : zero_index_ + 1 + k;
}

double LogHistogram::upper_edge(std::size_t i) const {
  BC_ASSERT(i < counts_.size());
  const auto sub_count = static_cast<std::size_t>(1) << spec_.sub_bits;
  if (i == zero_index_) return min_mag_;
  if (i > zero_index_) {
    const std::size_t k = i - zero_index_ - 1;
    const std::size_t oct = k >> spec_.sub_bits;
    const std::size_t sub = k & (sub_count - 1);
    return std::ldexp(1.0 + static_cast<double>(sub + 1) /
                                static_cast<double>(sub_count),
                      spec_.min_exp2 + static_cast<int>(oct));
  }
  const std::size_t k = zero_index_ - 1 - i;
  const std::size_t oct = k >> spec_.sub_bits;
  const std::size_t sub = k & (sub_count - 1);
  // Negative bucket k covers (-(lower + width), -lower]; its upper edge is
  // the magnitude *lower* bound, negated.
  return -std::ldexp(1.0 + static_cast<double>(sub) /
                               static_cast<double>(sub_count),
                     spec_.min_exp2 + static_cast<int>(oct));
}

std::int64_t LogHistogram::to_units(double v) const {
  return std::llround(std::ldexp(v, spec_.sum_frac_bits));
}

std::uint64_t LogHistogram::count(std::size_t i) const {
  BC_ASSERT(i < counts_.size());
  std::uint64_t c = counts_[i];
  for (const Shard& s : shards_) c += s.counts[i];
  return c;
}

std::uint64_t LogHistogram::total() const {
  std::uint64_t t = total_;
  for (const Shard& s : shards_) t += s.total;
  return t;
}

std::int64_t LogHistogram::sum_units() const {
  std::int64_t u = sum_units_;
  for (const Shard& s : shards_) u = util::saturating_add(u, s.sum_units);
  return u;
}

double LogHistogram::sum() const {
  return std::ldexp(static_cast<double>(sum_units()), -spec_.sum_frac_bits);
}

double LogHistogram::quantile(double q) const {
  BC_ASSERT(q >= 0.0 && q <= 1.0);
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  // 1-based rank of the target observation; ceil keeps q=1 at rank n and
  // the computation is one deterministic FP multiply.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += count(i);
    if (cum >= rank) return upper_edge(i);
  }
  return upper_edge(counts_.size() - 1);
}

double LogHistogram::max_value() const {
  for (std::size_t i = counts_.size(); i > 0; --i) {
    if (count(i - 1) > 0) return upper_edge(i - 1);
  }
  return 0.0;
}

void LogHistogram::fold_shards() {
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += s.counts[i];
      s.counts[i] = 0;
    }
    total_ += s.total;
    sum_units_ += s.sum_units;
    s.total = 0;
    s.sum_units = 0;
  }
}

void LogHistogram::enable_shards(std::size_t n) {
  while (shards_.size() < n) {
    Shard s;
    s.counts.assign(counts_.size(), 0);
    shards_.push_back(std::move(s));
  }
}

void LogHistogram::merge_from(const LogHistogram& other) {
  BC_ASSERT_MSG(other.counts_.size() == counts_.size() &&
                    other.zero_index_ == zero_index_ &&
                    other.spec_.min_exp2 == spec_.min_exp2 &&
                    other.spec_.sub_bits == spec_.sub_bits &&
                    other.spec_.sum_frac_bits == spec_.sum_frac_bits,
                "log-histogram merge requires identical geometry");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.count(i);
  }
  total_ += other.total();
  sum_units_ += other.sum_units();
}

void LogHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_units_ = 0;
  for (Shard& s : shards_) {
    std::fill(s.counts.begin(), s.counts.end(), 0);
    s.total = 0;
    s.sum_units = 0;
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  util::LockGuard lock(mu_);
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  // try_emplace: Counter owns an atomic and is therefore not copyable.
  Counter& c = counters_.try_emplace(std::string(name)).first->second;
  c.enable_shards(shard_slots_);
  return c;
}

Gauge& Registry::gauge(std::string_view name) {
  util::LockGuard lock(mu_);
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_edges) {
  util::LockGuard lock(mu_);
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_edges)))
      .first->second;
}

LogHistogram& Registry::log_histogram(std::string_view name,
                                      const LogSpec& spec) {
  util::LockGuard lock(mu_);
  if (auto it = log_histograms_.find(name); it != log_histograms_.end()) {
    return it->second;
  }
  return log_histograms_
      .try_emplace(std::string(name), spec, shard_slots_)
      .first->second;
}

void Registry::configure_shards(std::size_t n) {
  util::LockGuard lock(mu_);
  if (n <= shard_slots_) return;
  shard_slots_ = n;
  for (auto& [_, c] : counters_) c.enable_shards(n);
  for (auto& [_, h] : log_histograms_) h.enable_shards(n);
}

std::size_t Registry::shard_slots() const {
  util::LockGuard lock(mu_);
  return shard_slots_;
}

void Registry::fold_shards() {
  util::LockGuard lock(mu_);
  for (auto& [_, c] : counters_) c.fold_shards();
  for (auto& [_, h] : log_histograms_) h.fold_shards();
}

Snapshot Registry::snapshot() const {
  util::LockGuard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.upper_edges = h.edges();
    hs.counts.reserve(h.num_buckets());
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      hs.counts.push_back(h.count(i));
    }
    hs.total = h.total();
    hs.sum = h.sum();
    snap.histograms.push_back(std::move(hs));
  }
  snap.log_histograms.reserve(log_histograms_.size());
  for (const auto& [name, h] : log_histograms_) {
    LogHistogramSnapshot ls;
    ls.name = name;
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      const std::uint64_t c = h.count(i);
      if (c > 0) {
        ls.buckets.emplace_back(static_cast<std::uint32_t>(i), c);
        ls.bucket_edges.push_back(h.upper_edge(i));
      }
    }
    ls.total = h.total();
    ls.sum = h.sum();
    ls.sum_units = h.sum_units();
    ls.sum_frac_bits = h.spec().sum_frac_bits;
    ls.p50 = h.quantile(0.5);
    ls.p90 = h.quantile(0.9);
    ls.p99 = h.quantile(0.99);
    ls.max = h.max_value();
    snap.log_histograms.push_back(std::move(ls));
  }
  return snap;
}

std::size_t Registry::num_instruments() const {
  util::LockGuard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         log_histograms_.size();
}

void Registry::reset_values() {
  util::LockGuard lock(mu_);
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, g] : gauges_) g.reset();
  for (auto& [_, h] : histograms_) h.reset();
  for (auto& [_, h] : log_histograms_) h.reset();
}

}  // namespace bc::obs
