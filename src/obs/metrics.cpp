#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace bc::obs {

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), counts_(edges_.size() + 1, 0) {
  BC_ASSERT_MSG(!edges_.empty(), "histogram needs at least one bucket edge");
  BC_ASSERT_MSG(std::is_sorted(edges_.begin(), edges_.end()),
                "histogram edges must be ascending");
}

std::vector<double> Histogram::uniform_edges(double lo, double hi,
                                             std::size_t num_buckets) {
  BC_ASSERT(hi > lo && num_buckets > 0);
  std::vector<double> edges(num_buckets);
  const double width = (hi - lo) / static_cast<double>(num_buckets);
  for (std::size_t i = 0; i + 1 < num_buckets; ++i) {
    edges[i] = lo + width * static_cast<double>(i + 1);
  }
  // Exact top edge: accumulating widths would land slightly below hi and
  // push values equal to hi into the overflow bucket.
  edges[num_buckets - 1] = hi;
  return edges;
}

void Histogram::add(double value) {
  BC_ASSERT_MSG(!counts_.empty(), "histogram used before construction");
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  counts_[static_cast<std::size_t>(it - edges_.begin())] += 1;
  ++total_;
  sum_ += value;
}

double Histogram::upper_edge(std::size_t i) const {
  BC_ASSERT(i < counts_.size());
  if (i == edges_.size()) return std::numeric_limits<double>::infinity();
  return edges_[i];
}

std::uint64_t Histogram::count(std::size_t i) const {
  BC_ASSERT(i < counts_.size());
  return counts_[i];
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  util::LockGuard lock(mu_);
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  // try_emplace: Counter owns an atomic and is therefore not copyable.
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  util::LockGuard lock(mu_);
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_edges) {
  util::LockGuard lock(mu_);
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_edges)))
      .first->second;
}

Snapshot Registry::snapshot() const {
  util::LockGuard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.upper_edges = h.edges();
    hs.counts.reserve(h.num_buckets());
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      hs.counts.push_back(h.count(i));
    }
    hs.total = h.total();
    hs.sum = h.sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::size_t Registry::num_instruments() const {
  util::LockGuard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::reset_values() {
  util::LockGuard lock(mu_);
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, g] : gauges_) g.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

}  // namespace bc::obs
