#include "obs/profile.hpp"

#include <chrono>

namespace bc::obs {

namespace {

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

ProfileSite& Profiler::site(std::string_view name) {
  if (auto it = sites_.find(name); it != sites_.end()) {
    return it->second;
  }
  auto [it, _] = sites_.emplace(std::string(name), ProfileSite{});
  it->second.name = it->first;
  return it->second;
}

std::vector<ProfileSite> Profiler::snapshot() const {
  std::vector<ProfileSite> out;
  out.reserve(sites_.size());
  for (const auto& [_, site] : sites_) out.push_back(site);
  return out;
}

void Profiler::reset_values() {
  for (auto& [_, site] : sites_) {
    site.calls = 0;
    site.nanos = 0;
    site.depth = 0;
  }
}

ScopedTimer::ScopedTimer(ProfileSite& site, const Profiler& profiler) {
  if (!profiler.enabled()) return;
  site_ = &site;
  ++site.depth;
  start_ = now_nanos();
}

ScopedTimer::~ScopedTimer() {
  if (site_ == nullptr) return;
  const std::uint64_t elapsed = now_nanos() - start_;
  --site_->depth;
  ++site_->calls;
  // Outermost frame only: recursive re-entry must not multiply wall time.
  if (site_->depth == 0) site_->nanos += elapsed;
}

}  // namespace bc::obs
